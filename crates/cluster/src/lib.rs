//! Distributed serving for BDSM reduced-order models — the scale-out
//! tier over [`bdsm_rom::RomServer`].
//!
//! Three layers, std-only (no external dependencies, TCP via
//! `std::net`):
//!
//! * **Placement** ([`ShardPlan`]) — shard-by-model (each model wholly
//!   owned by one shard) or shard-by-frequency-band (one model's
//!   certified ω-envelope split into disjoint log-spaced bands, each
//!   owned by a shard). Every reply carries the plan digest, so routing
//!   is auditable end to end.
//! * **Transport** ([`wire`]) — length-prefixed binary frames with the
//!   artifact codec's conventions: magic, version, FNV-1a checksum,
//!   alloc-bounded reads, typed [`WireError`]. `f64`s travel as IEEE bit
//!   patterns, so values cross the wire bitwise-exactly.
//! * **Serving** ([`ShardNode`], [`ClusterClient`]) — a node is a thin
//!   TCP wrapper around `RomServer`; the client routes, batches
//!   (coalescing compatible queries into one frame per (shard, model)),
//!   admits (bounded in-flight, typed [`ClusterError::Overloaded`] —
//!   never a hang), retries with backoff across reconnects, and merges
//!   band-sharded sweep replies deterministically back into request
//!   ω-order.
//!
//! # Determinism contract
//!
//! Per-sample results in `RomServer` are independent and
//! bitwise-deterministic for any `BDSM_THREADS`; the wire moves bit
//! patterns; the merge is position-driven. Therefore a cluster reply is
//! **bitwise-equal to the single-process server** for any placement,
//! any shard count, and any thread count on either side — asserted at
//! n = 10⁴ by the loopback integration suite and gated in CI.

mod client;
mod node;
mod plan;
pub mod wire;

pub use client::{ClientConfig, ClusterClient, ClusterError, ClusterMetricsSnapshot};
pub use node::{NodeConfig, ShardNode};
pub use plan::{BandRange, Placement, PlanError, ShardPlan, ShardPlanBuilder, ShardSlice};
pub use wire::{RemoteErrorKind, WireError};
