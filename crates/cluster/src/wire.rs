//! The cluster wire protocol: length-prefixed binary frames on std TCP.
//!
//! Frames reuse the artifact codec's conventions — magic bytes, a
//! version word, little-endian integers, `f64` as IEEE bit patterns
//! (bitwise exactness survives the wire by construction), an FNV-1a
//! checksum, and alloc-bounded reads (a length prefix may never demand
//! more bytes than the frame actually carries, so a hostile or corrupt
//! length cannot trigger a huge allocation). Every malformation maps to
//! a typed [`WireError`]; decoding never panics.
//!
//! ```text
//! ┌──────────┬───────────┬──────┬─────────────┬─────────┬──────────┐
//! │ magic 8B │ version 4B│ kind │ payload len │ payload │ FNV-1a 8B│
//! │ BDSMWP01 │ u32 LE    │ 1B   │ u64 LE      │ ...     │ u64 LE   │
//! └──────────┴───────────┴──────┴─────────────┴─────────┴──────────┘
//! ```
//!
//! The checksum covers header + payload. Request kinds occupy 1–6,
//! response kinds 129–135 (high bit set), so a stream desync surfaces
//! as [`WireError::UnknownKind`] rather than a misparse.

use bdsm_core::transfer::CMatrix;
use bdsm_linalg::Complex64;
use std::io::{Read, Write};

/// First eight bytes of every frame.
pub const MAGIC: [u8; 8] = *b"BDSMWP01";
/// Protocol version this build speaks.
pub const VERSION: u32 = 1;
/// Hard upper bound on a frame payload (bytes) — caps the allocation a
/// length prefix can demand.
pub const MAX_PAYLOAD: u64 = 256 * 1024 * 1024;
/// Bytes before the payload: magic + version + kind + payload length.
pub const HEADER_LEN: usize = 8 + 4 + 1 + 8;

/// FNV-1a over a byte slice — same constants as the artifact codec.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Why a frame failed to read or decode.
#[derive(Debug)]
#[non_exhaustive]
pub enum WireError {
    /// Socket/stream failure (includes timeouts).
    Io(std::io::Error),
    /// The stream does not start with [`MAGIC`].
    BadMagic,
    /// The peer speaks a different protocol version.
    UnsupportedVersion {
        /// Version in the frame.
        found: u32,
        /// Version this build speaks.
        supported: u32,
    },
    /// A payload length exceeded [`MAX_PAYLOAD`].
    Oversized {
        /// The declared length.
        len: u64,
        /// The bound it broke.
        max: u64,
    },
    /// The frame ended before a field was complete.
    Truncated {
        /// Which field was being read.
        while_reading: &'static str,
    },
    /// The checksum did not match the frame body.
    ChecksumMismatch {
        /// Checksum recomputed over the received bytes.
        expected: u64,
        /// Checksum the frame carried.
        found: u64,
    },
    /// Structurally invalid payload content.
    Corrupt(&'static str),
    /// A frame kind outside the protocol.
    UnknownKind(u8),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "wire io error: {e}"),
            WireError::BadMagic => write!(f, "not a BDSM wire frame (bad magic)"),
            WireError::UnsupportedVersion { found, supported } => {
                write!(
                    f,
                    "wire version {found} unsupported (this build: {supported})"
                )
            }
            WireError::Oversized { len, max } => {
                write!(
                    f,
                    "frame payload of {len} bytes exceeds the {max}-byte bound"
                )
            }
            WireError::Truncated { while_reading } => {
                write!(f, "frame truncated while reading {while_reading}")
            }
            WireError::ChecksumMismatch { expected, found } => write!(
                f,
                "frame checksum mismatch (computed {expected:#018x}, carried {found:#018x})"
            ),
            WireError::Corrupt(what) => write!(f, "corrupt frame payload: {what}"),
            WireError::UnknownKind(k) => write!(f, "unknown frame kind {k}"),
        }
    }
}

impl std::error::Error for WireError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WireError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io(e)
    }
}

// ---------------------------------------------------------------------------
// Frame
// ---------------------------------------------------------------------------

/// One length-prefixed, checksummed protocol frame.
#[derive(Debug, Clone, PartialEq)]
pub struct Frame {
    /// Protocol kind byte (see [`Request`] / [`Response`] kinds).
    pub kind: u8,
    /// Raw payload bytes.
    pub payload: Vec<u8>,
}

impl Frame {
    /// Serializes the frame to its wire bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(HEADER_LEN + self.payload.len() + 8);
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.push(self.kind);
        out.extend_from_slice(&(self.payload.len() as u64).to_le_bytes());
        out.extend_from_slice(&self.payload);
        let sum = fnv1a(&out);
        out.extend_from_slice(&sum.to_le_bytes());
        out
    }

    /// Decodes exactly one frame from a byte buffer; trailing bytes are
    /// [`WireError::Corrupt`] (a framed stream never leaves residue).
    ///
    /// # Errors
    ///
    /// Any [`WireError`] variant except `Io`.
    pub fn decode(bytes: &[u8]) -> Result<Frame, WireError> {
        if bytes.len() < HEADER_LEN {
            return Err(WireError::Truncated {
                while_reading: "frame header",
            });
        }
        if bytes[..8] != MAGIC {
            return Err(WireError::BadMagic);
        }
        let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
        if version != VERSION {
            return Err(WireError::UnsupportedVersion {
                found: version,
                supported: VERSION,
            });
        }
        let kind = bytes[12];
        let len = u64::from_le_bytes(bytes[13..21].try_into().unwrap());
        if len > MAX_PAYLOAD {
            return Err(WireError::Oversized {
                len,
                max: MAX_PAYLOAD,
            });
        }
        let body_end = HEADER_LEN + len as usize;
        if bytes.len() < body_end + 8 {
            return Err(WireError::Truncated {
                while_reading: "frame payload",
            });
        }
        if bytes.len() > body_end + 8 {
            return Err(WireError::Corrupt("trailing bytes after frame"));
        }
        let carried = u64::from_le_bytes(bytes[body_end..body_end + 8].try_into().unwrap());
        let computed = fnv1a(&bytes[..body_end]);
        if carried != computed {
            return Err(WireError::ChecksumMismatch {
                expected: computed,
                found: carried,
            });
        }
        Ok(Frame {
            kind,
            payload: bytes[HEADER_LEN..body_end].to_vec(),
        })
    }

    /// Reads one frame off a stream (blocking; honors the stream's read
    /// timeout).
    ///
    /// # Errors
    ///
    /// [`WireError::Io`] on stream failure, otherwise as
    /// [`decode`](Self::decode).
    pub fn read_from(r: &mut impl Read) -> Result<Frame, WireError> {
        let mut header = [0u8; HEADER_LEN];
        r.read_exact(&mut header)?;
        if header[..8] != MAGIC {
            return Err(WireError::BadMagic);
        }
        let version = u32::from_le_bytes(header[8..12].try_into().unwrap());
        if version != VERSION {
            return Err(WireError::UnsupportedVersion {
                found: version,
                supported: VERSION,
            });
        }
        let kind = header[12];
        let len = u64::from_le_bytes(header[13..21].try_into().unwrap());
        if len > MAX_PAYLOAD {
            return Err(WireError::Oversized {
                len,
                max: MAX_PAYLOAD,
            });
        }
        let mut payload = vec![0u8; len as usize];
        r.read_exact(&mut payload)?;
        let mut sum = [0u8; 8];
        r.read_exact(&mut sum)?;
        let carried = u64::from_le_bytes(sum);
        let mut hashed = header.to_vec();
        hashed.extend_from_slice(&payload);
        let computed = fnv1a(&hashed);
        if carried != computed {
            return Err(WireError::ChecksumMismatch {
                expected: computed,
                found: carried,
            });
        }
        Ok(Frame { kind, payload })
    }

    /// Writes the frame to a stream and flushes it.
    ///
    /// # Errors
    ///
    /// [`WireError::Io`] on stream failure.
    pub fn write_to(&self, w: &mut impl Write) -> Result<(), WireError> {
        w.write_all(&self.encode())?;
        w.flush()?;
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Payload reader/writer
// ---------------------------------------------------------------------------

struct PayloadWriter {
    buf: Vec<u8>,
}

impl PayloadWriter {
    fn new() -> Self {
        PayloadWriter { buf: Vec::new() }
    }
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }
    fn complex(&mut self, v: Complex64) {
        self.f64(v.re);
        self.f64(v.im);
    }
    fn str(&mut self, s: &str) {
        self.u64(s.len() as u64);
        self.buf.extend_from_slice(s.as_bytes());
    }
    fn f64s(&mut self, vs: &[f64]) {
        self.u64(vs.len() as u64);
        for &v in vs {
            self.f64(v);
        }
    }
    fn matrix(&mut self, m: &CMatrix) {
        self.u64(m.nrows() as u64);
        self.u64(m.ncols() as u64);
        for i in 0..m.nrows() {
            for j in 0..m.ncols() {
                self.complex(m[(i, j)]);
            }
        }
    }
}

struct PayloadReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> PayloadReader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        PayloadReader { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn bytes(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated {
                while_reading: what,
            });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn u8(&mut self, what: &'static str) -> Result<u8, WireError> {
        Ok(self.bytes(1, what)?[0])
    }

    fn u32(&mut self, what: &'static str) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.bytes(4, what)?.try_into().unwrap()))
    }

    fn u64(&mut self, what: &'static str) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.bytes(8, what)?.try_into().unwrap()))
    }

    fn f64(&mut self, what: &'static str) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64(what)?))
    }

    fn complex(&mut self, what: &'static str) -> Result<Complex64, WireError> {
        let re = self.f64(what)?;
        let im = self.f64(what)?;
        Ok(Complex64 { re, im })
    }

    /// An element count, bounded so `n × elem_bytes` never exceeds the
    /// bytes actually present — the alloc-safety rule from the artifact
    /// codec.
    fn count(&mut self, elem_bytes: usize, what: &'static str) -> Result<usize, WireError> {
        let n = self.u64(what)?;
        let need = n
            .checked_mul(elem_bytes as u64)
            .ok_or(WireError::Corrupt(what))?;
        if need > self.remaining() as u64 {
            return Err(WireError::Truncated {
                while_reading: what,
            });
        }
        Ok(n as usize)
    }

    fn f64s(&mut self, what: &'static str) -> Result<Vec<f64>, WireError> {
        let n = self.count(8, what)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.f64(what)?);
        }
        Ok(out)
    }

    fn str(&mut self, what: &'static str) -> Result<String, WireError> {
        let n = self.count(1, what)?;
        let raw = self.bytes(n, what)?;
        String::from_utf8(raw.to_vec()).map_err(|_| WireError::Corrupt(what))
    }

    fn matrix(&mut self, what: &'static str) -> Result<CMatrix, WireError> {
        let nrows = self.u64(what)? as usize;
        let ncols = self.u64(what)?;
        let n = nrows
            .checked_mul(ncols as usize)
            .ok_or(WireError::Corrupt(what))?;
        if (n as u64).checked_mul(16).ok_or(WireError::Corrupt(what))? > self.remaining() as u64 {
            return Err(WireError::Truncated {
                while_reading: what,
            });
        }
        let mut m = CMatrix::zeros(nrows, ncols as usize);
        for i in 0..nrows {
            for j in 0..ncols as usize {
                m[(i, j)] = self.complex(what)?;
            }
        }
        Ok(m)
    }

    /// Payloads are exact: leftover bytes mean a desynced or tampered
    /// frame.
    fn finish(self) -> Result<(), WireError> {
        if self.remaining() != 0 {
            return Err(WireError::Corrupt("trailing payload bytes"));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------------

/// A query the router sends to one shard. Model ids are cluster-level
/// (the [`crate::ShardPlan`] keyspace), mapped to local `RomId`s by the
/// receiving node.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness probe; answered with [`Response::Pong`].
    Ping,
    /// Full transfer-matrix sweep over the listed frequencies.
    Sweep {
        /// Cluster model id.
        model: u64,
        /// Angular frequencies (rad/s).
        omegas: Vec<f64>,
    },
    /// One port pair's response over the listed frequencies.
    Port {
        /// Cluster model id.
        model: u64,
        /// Output port.
        out_port: u64,
        /// Input port.
        in_port: u64,
        /// Angular frequencies (rad/s).
        omegas: Vec<f64>,
    },
    /// One backward-Euler transient (per-step input vectors).
    Transient {
        /// Cluster model id.
        model: u64,
        /// Time step.
        h: f64,
        /// Input vector per step.
        inputs: Vec<Vec<f64>>,
    },
    /// The shard's `ServerMetricsSnapshot` JSON (for scrapes/audit).
    Metrics,
    /// Graceful shutdown of the node.
    Shutdown,
}

const KIND_PING: u8 = 1;
const KIND_SWEEP: u8 = 2;
const KIND_PORT: u8 = 3;
const KIND_TRANSIENT: u8 = 4;
const KIND_METRICS: u8 = 5;
const KIND_SHUTDOWN: u8 = 6;

impl Request {
    /// Encodes the request as a wire frame.
    pub fn to_frame(&self) -> Frame {
        let mut w = PayloadWriter::new();
        let kind = match self {
            Request::Ping => KIND_PING,
            Request::Sweep { model, omegas } => {
                w.u64(*model);
                w.f64s(omegas);
                KIND_SWEEP
            }
            Request::Port {
                model,
                out_port,
                in_port,
                omegas,
            } => {
                w.u64(*model);
                w.u64(*out_port);
                w.u64(*in_port);
                w.f64s(omegas);
                KIND_PORT
            }
            Request::Transient { model, h, inputs } => {
                w.u64(*model);
                w.f64(*h);
                w.u64(inputs.len() as u64);
                for row in inputs {
                    w.f64s(row);
                }
                KIND_TRANSIENT
            }
            Request::Metrics => KIND_METRICS,
            Request::Shutdown => KIND_SHUTDOWN,
        };
        Frame {
            kind,
            payload: w.buf,
        }
    }

    /// Decodes a request frame.
    ///
    /// # Errors
    ///
    /// [`WireError::UnknownKind`] for a non-request kind, otherwise
    /// truncation/corruption errors from the payload.
    pub fn from_frame(frame: &Frame) -> Result<Request, WireError> {
        let mut r = PayloadReader::new(&frame.payload);
        let req = match frame.kind {
            KIND_PING => Request::Ping,
            KIND_SWEEP => Request::Sweep {
                model: r.u64("sweep model")?,
                omegas: r.f64s("sweep frequencies")?,
            },
            KIND_PORT => Request::Port {
                model: r.u64("port model")?,
                out_port: r.u64("output port")?,
                in_port: r.u64("input port")?,
                omegas: r.f64s("port frequencies")?,
            },
            KIND_TRANSIENT => {
                let model = r.u64("transient model")?;
                let h = r.f64("transient step")?;
                let steps = r.count(8, "transient steps")?;
                let mut inputs = Vec::with_capacity(steps);
                for _ in 0..steps {
                    inputs.push(r.f64s("transient input row")?);
                }
                Request::Transient { model, h, inputs }
            }
            KIND_METRICS => Request::Metrics,
            KIND_SHUTDOWN => Request::Shutdown,
            k => return Err(WireError::UnknownKind(k)),
        };
        r.finish()?;
        Ok(req)
    }
}

// ---------------------------------------------------------------------------
// Responses
// ---------------------------------------------------------------------------

/// Coarse classification of a remote failure, carried by
/// [`Response::Error`]; mirrors the server's `RomError` families without
/// shipping the full enum over the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum RemoteErrorKind {
    /// Input validation / envelope refusal (`RomError::Query`).
    Query,
    /// The shard does not serve the requested model.
    UnknownModel,
    /// Numerical failure (singular shift, solver breakdown).
    Numerical,
    /// A contained panic on the shard.
    Internal,
    /// Artifact/persistence failure on the shard.
    Artifact,
    /// Anything else.
    Other,
}

impl RemoteErrorKind {
    fn code(self) -> u8 {
        match self {
            RemoteErrorKind::Query => 1,
            RemoteErrorKind::UnknownModel => 2,
            RemoteErrorKind::Numerical => 3,
            RemoteErrorKind::Internal => 4,
            RemoteErrorKind::Artifact => 5,
            RemoteErrorKind::Other => 6,
        }
    }

    fn from_code(c: u8) -> Result<Self, WireError> {
        Ok(match c {
            1 => RemoteErrorKind::Query,
            2 => RemoteErrorKind::UnknownModel,
            3 => RemoteErrorKind::Numerical,
            4 => RemoteErrorKind::Internal,
            5 => RemoteErrorKind::Artifact,
            6 => RemoteErrorKind::Other,
            _ => return Err(WireError::Corrupt("unknown remote error kind")),
        })
    }
}

/// Provenance stamp every shard reply opens with: which shard computed
/// it, under which placement plan — the audit trail the router verifies
/// against its own plan digest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplyStamp {
    /// The responding shard's index in the plan.
    pub shard: u32,
    /// [`crate::ShardPlan::digest`] of the plan the shard was launched
    /// with.
    pub plan_digest: u64,
}

/// A shard's answer to a [`Request`].
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Liveness answer.
    Pong(ReplyStamp),
    /// Transfer matrices, one per requested frequency, request order.
    Sweep(ReplyStamp, Vec<CMatrix>),
    /// Port-pair samples, one per requested frequency, request order.
    Port(ReplyStamp, Vec<Complex64>),
    /// Transient outputs, one vector per step.
    Transient(ReplyStamp, Vec<Vec<f64>>),
    /// The shard server's metrics snapshot as JSON.
    Metrics(ReplyStamp, String),
    /// The request failed on the shard.
    Error(ReplyStamp, RemoteErrorKind, String),
    /// Acknowledges a [`Request::Shutdown`].
    ShuttingDown(ReplyStamp),
}

const KIND_PONG: u8 = 129;
const KIND_SWEEP_REPLY: u8 = 130;
const KIND_PORT_REPLY: u8 = 131;
const KIND_TRANSIENT_REPLY: u8 = 132;
const KIND_METRICS_REPLY: u8 = 133;
const KIND_ERROR_REPLY: u8 = 134;
const KIND_SHUTTING_DOWN: u8 = 135;

impl Response {
    /// The provenance stamp common to every response.
    pub fn stamp(&self) -> ReplyStamp {
        match self {
            Response::Pong(s)
            | Response::Sweep(s, _)
            | Response::Port(s, _)
            | Response::Transient(s, _)
            | Response::Metrics(s, _)
            | Response::Error(s, _, _)
            | Response::ShuttingDown(s) => *s,
        }
    }

    /// Encodes the response as a wire frame.
    pub fn to_frame(&self) -> Frame {
        let mut w = PayloadWriter::new();
        let stamp = self.stamp();
        w.u32(stamp.shard);
        w.u64(stamp.plan_digest);
        let kind = match self {
            Response::Pong(_) => KIND_PONG,
            Response::Sweep(_, mats) => {
                w.u64(mats.len() as u64);
                for m in mats {
                    w.matrix(m);
                }
                KIND_SWEEP_REPLY
            }
            Response::Port(_, samples) => {
                w.u64(samples.len() as u64);
                for &s in samples {
                    w.complex(s);
                }
                KIND_PORT_REPLY
            }
            Response::Transient(_, rows) => {
                w.u64(rows.len() as u64);
                for row in rows {
                    w.f64s(row);
                }
                KIND_TRANSIENT_REPLY
            }
            Response::Metrics(_, json) => {
                w.str(json);
                KIND_METRICS_REPLY
            }
            Response::Error(_, kind, msg) => {
                w.u8(kind.code());
                w.str(msg);
                KIND_ERROR_REPLY
            }
            Response::ShuttingDown(_) => KIND_SHUTTING_DOWN,
        };
        Frame {
            kind,
            payload: w.buf,
        }
    }

    /// Decodes a response frame.
    ///
    /// # Errors
    ///
    /// [`WireError::UnknownKind`] for a non-response kind, otherwise
    /// truncation/corruption errors from the payload.
    pub fn from_frame(frame: &Frame) -> Result<Response, WireError> {
        // Kind before stamp: an unknown kind must not be masked by
        // whatever its payload happens (not) to contain.
        if !(KIND_PONG..=KIND_SHUTTING_DOWN).contains(&frame.kind) {
            return Err(WireError::UnknownKind(frame.kind));
        }
        let mut r = PayloadReader::new(&frame.payload);
        let stamp = ReplyStamp {
            shard: r.u32("reply shard")?,
            plan_digest: r.u64("reply plan digest")?,
        };
        let resp = match frame.kind {
            KIND_PONG => Response::Pong(stamp),
            KIND_SWEEP_REPLY => {
                // 16 bytes is the floor per matrix (its two dimension
                // words), which bounds the Vec allocation.
                let n = r.count(16, "sweep reply matrices")?;
                let mut mats = Vec::with_capacity(n);
                for _ in 0..n {
                    mats.push(r.matrix("sweep reply matrix")?);
                }
                Response::Sweep(stamp, mats)
            }
            KIND_PORT_REPLY => {
                let n = r.count(16, "port reply samples")?;
                let mut samples = Vec::with_capacity(n);
                for _ in 0..n {
                    samples.push(r.complex("port reply sample")?);
                }
                Response::Port(stamp, samples)
            }
            KIND_TRANSIENT_REPLY => {
                let n = r.count(8, "transient reply rows")?;
                let mut rows = Vec::with_capacity(n);
                for _ in 0..n {
                    rows.push(r.f64s("transient reply row")?);
                }
                Response::Transient(stamp, rows)
            }
            KIND_METRICS_REPLY => Response::Metrics(stamp, r.str("metrics json")?),
            KIND_ERROR_REPLY => {
                let kind = RemoteErrorKind::from_code(r.u8("remote error kind")?)?;
                let msg = r.str("remote error message")?;
                Response::Error(stamp, kind, msg)
            }
            KIND_SHUTTING_DOWN => Response::ShuttingDown(stamp),
            k => return Err(WireError::UnknownKind(k)),
        };
        r.finish()?;
        Ok(resp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stamp() -> ReplyStamp {
        ReplyStamp {
            shard: 2,
            plan_digest: 0xdead_beef_cafe_f00d,
        }
    }

    #[test]
    fn requests_round_trip() {
        let reqs = [
            Request::Ping,
            Request::Sweep {
                model: 7,
                omegas: vec![50.0, 4.0e3, -0.0],
            },
            Request::Port {
                model: 7,
                out_port: 1,
                in_port: 0,
                omegas: vec![100.0],
            },
            Request::Transient {
                model: 3,
                h: 1e-4,
                inputs: vec![vec![1.0, 2.0], vec![0.5, -0.5]],
            },
            Request::Metrics,
            Request::Shutdown,
        ];
        for req in reqs {
            let frame = req.to_frame();
            let bytes = frame.encode();
            let back = Frame::decode(&bytes).unwrap();
            assert_eq!(back, frame);
            assert_eq!(Request::from_frame(&back).unwrap(), req);
            // Stream path agrees with the buffer path.
            let mut cursor = std::io::Cursor::new(bytes);
            assert_eq!(Frame::read_from(&mut cursor).unwrap(), frame);
        }
    }

    #[test]
    fn responses_round_trip_bitwise() {
        let mut m = CMatrix::zeros(2, 3);
        // Awkward bit patterns: negative zero, subnormals, huge values.
        m[(0, 0)] = Complex64 {
            re: -0.0,
            im: 1.0e-310,
        };
        m[(1, 2)] = Complex64 {
            re: 1.0e300,
            im: -3.5,
        };
        let resps = [
            Response::Pong(stamp()),
            Response::Sweep(stamp(), vec![m.clone(), CMatrix::zeros(1, 1)]),
            Response::Port(stamp(), vec![Complex64 { re: 0.1, im: -0.2 }]),
            Response::Transient(stamp(), vec![vec![1.0], vec![2.0]]),
            Response::Metrics(stamp(), "{\"cache\": {}}".to_string()),
            Response::Error(stamp(), RemoteErrorKind::Query, "bad ω".to_string()),
            Response::ShuttingDown(stamp()),
        ];
        for resp in resps {
            let frame = resp.to_frame();
            let back = Response::from_frame(&Frame::decode(&frame.encode()).unwrap()).unwrap();
            assert_eq!(back, resp);
            assert_eq!(back.stamp(), stamp());
        }
        // Bitwise: -0.0 survives (PartialEq would conflate it with 0.0).
        let frame = Response::Sweep(stamp(), vec![m]).to_frame();
        let Response::Sweep(_, mats) =
            Response::from_frame(&Frame::decode(&frame.encode()).unwrap()).unwrap()
        else {
            panic!("wrong kind");
        };
        assert_eq!(mats[0][(0, 0)].re.to_bits(), (-0.0f64).to_bits());
    }

    #[test]
    fn malformed_frames_are_typed() {
        let good = Request::Sweep {
            model: 1,
            omegas: vec![1.0, 2.0],
        }
        .to_frame()
        .encode();
        // Bad magic.
        let mut bad = good.clone();
        bad[0] ^= 0xff;
        assert!(matches!(Frame::decode(&bad), Err(WireError::BadMagic)));
        // Bad version.
        let mut bad = good.clone();
        bad[8] = 99;
        assert!(matches!(
            Frame::decode(&bad),
            Err(WireError::UnsupportedVersion { found: 99, .. })
        ));
        // Oversized length prefix never allocates.
        let mut bad = good.clone();
        bad[13..21].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(matches!(
            Frame::decode(&bad),
            Err(WireError::Oversized { .. })
        ));
        // Truncation.
        assert!(matches!(
            Frame::decode(&good[..good.len() - 3]),
            Err(WireError::Truncated { .. })
        ));
        // Trailing garbage.
        let mut bad = good.clone();
        bad.push(0);
        assert!(matches!(Frame::decode(&bad), Err(WireError::Corrupt(_))));
        // Payload flip → checksum mismatch.
        let mut bad = good.clone();
        bad[HEADER_LEN] ^= 0x01;
        assert!(matches!(
            Frame::decode(&bad),
            Err(WireError::ChecksumMismatch { .. })
        ));
        // Unknown kind (checksum recomputed so it decodes to the kind check).
        let reframed = Frame {
            kind: 77,
            payload: vec![],
        };
        let frame = Frame::decode(&reframed.encode()).unwrap();
        assert!(matches!(
            Request::from_frame(&frame),
            Err(WireError::UnknownKind(77))
        ));
        assert!(matches!(
            Response::from_frame(&frame),
            Err(WireError::UnknownKind(77))
        ));
    }

    #[test]
    fn inner_list_bounds_are_enforced() {
        // A sweep whose frequency count claims more elements than bytes.
        let mut w_payload = Vec::new();
        w_payload.extend_from_slice(&1u64.to_le_bytes()); // model
        w_payload.extend_from_slice(&1000u64.to_le_bytes()); // n = 1000, no data
        let frame = Frame {
            kind: 2,
            payload: w_payload,
        };
        let frame = Frame::decode(&frame.encode()).unwrap();
        assert!(matches!(
            Request::from_frame(&frame),
            Err(WireError::Truncated { .. })
        ));
    }
}
