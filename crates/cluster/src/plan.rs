//! Shard placement: which shard answers which query.
//!
//! A [`ShardPlan`] maps every cluster-level model id to either a single
//! owning shard ([`Placement::Model`]) or a set of disjoint frequency
//! bands ([`Placement::Bands`]), each band owned by one shard. Band
//! sharding splits a model's certified ω-envelope so a wide sweep fans
//! out across machines; per-sample results are independent, so the
//! partition changes *where* a sample is computed, never its bytes.
//!
//! The plan is summarized by a [`digest`](ShardPlan::digest) — an FNV-1a
//! hash of the canonical placement encoding — which every shard stamps
//! into every reply. The router refuses replies whose digest differs
//! from its own plan, so a misconfigured or stale shard is a typed
//! error, not silent wrong routing.

use std::collections::BTreeMap;

/// One shard's slice of a band-sharded model: the half-open influence
/// range is resolved by [`ShardPlan::shard_for`], which clamps queries
/// below the first band and above the last to the edge shards.
#[derive(Debug, Clone, PartialEq)]
pub struct BandRange {
    /// Owning shard index.
    pub shard: u32,
    /// Inclusive lower edge (rad/s).
    pub lo: f64,
    /// Inclusive upper edge (rad/s).
    pub hi: f64,
}

/// Where one model's queries go.
#[derive(Debug, Clone, PartialEq)]
pub enum Placement {
    /// Every query for the model goes to one shard.
    Model(u32),
    /// Frequency-domain queries split over disjoint, ascending bands;
    /// non-frequency queries (transients) go to the first band's shard.
    Bands(Vec<BandRange>),
}

/// Why a plan was rejected at construction.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum PlanError {
    /// A plan must have at least one shard.
    NoShards,
    /// A placement referenced a shard index ≥ the shard count.
    ShardOutOfRange {
        /// The model whose placement is broken.
        model: u64,
        /// The offending shard index.
        shard: u32,
        /// Number of shards in the plan.
        shards: u32,
    },
    /// A band list was empty, unsorted, overlapping, or non-finite.
    BadBands {
        /// The model whose placement is broken.
        model: u64,
        /// What exactly was wrong.
        reason: &'static str,
    },
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::NoShards => write!(f, "shard plan has zero shards"),
            PlanError::ShardOutOfRange {
                model,
                shard,
                shards,
            } => write!(
                f,
                "model {model}: shard {shard} out of range (plan has {shards})"
            ),
            PlanError::BadBands { model, reason } => {
                write!(f, "model {model}: bad band list ({reason})")
            }
        }
    }
}

impl std::error::Error for PlanError {}

/// A validated placement of models onto shards. Construct with
/// [`by_model`](ShardPlan::by_model) / [`by_bands`](ShardPlan::by_bands)
/// or assemble piecewise via [`builder`](ShardPlan::builder).
#[derive(Debug, Clone, PartialEq)]
pub struct ShardPlan {
    shards: u32,
    placements: BTreeMap<u64, Placement>,
}

/// Piecewise [`ShardPlan`] assembly; validation happens in
/// [`build`](ShardPlanBuilder::build).
#[derive(Debug, Clone)]
pub struct ShardPlanBuilder {
    shards: u32,
    placements: BTreeMap<u64, Placement>,
}

impl ShardPlanBuilder {
    /// Routes every query for `model` to `shard`.
    pub fn place_model(mut self, model: u64, shard: u32) -> Self {
        self.placements.insert(model, Placement::Model(shard));
        self
    }

    /// Splits `model`'s frequency queries over explicit bands.
    pub fn place_bands(mut self, model: u64, bands: Vec<BandRange>) -> Self {
        self.placements.insert(model, Placement::Bands(bands));
        self
    }

    /// Validates every placement.
    ///
    /// # Errors
    ///
    /// [`PlanError`] on an empty shard count, an out-of-range shard
    /// index, or a band list that is empty, non-finite, unsorted, or
    /// overlapping.
    pub fn build(self) -> Result<ShardPlan, PlanError> {
        if self.shards == 0 {
            return Err(PlanError::NoShards);
        }
        for (&model, placement) in &self.placements {
            match placement {
                Placement::Model(shard) => {
                    if *shard >= self.shards {
                        return Err(PlanError::ShardOutOfRange {
                            model,
                            shard: *shard,
                            shards: self.shards,
                        });
                    }
                }
                Placement::Bands(bands) => {
                    if bands.is_empty() {
                        return Err(PlanError::BadBands {
                            model,
                            reason: "empty band list",
                        });
                    }
                    let mut prev_hi = f64::NEG_INFINITY;
                    for b in bands {
                        if b.shard >= self.shards {
                            return Err(PlanError::ShardOutOfRange {
                                model,
                                shard: b.shard,
                                shards: self.shards,
                            });
                        }
                        if !b.lo.is_finite() || !b.hi.is_finite() {
                            return Err(PlanError::BadBands {
                                model,
                                reason: "non-finite band edge",
                            });
                        }
                        if b.lo > b.hi {
                            return Err(PlanError::BadBands {
                                model,
                                reason: "band with lo > hi",
                            });
                        }
                        if b.lo <= prev_hi {
                            return Err(PlanError::BadBands {
                                model,
                                reason: "bands unsorted or overlapping",
                            });
                        }
                        prev_hi = b.hi;
                    }
                }
            }
        }
        Ok(ShardPlan {
            shards: self.shards,
            placements: self.placements,
        })
    }
}

impl ShardPlan {
    /// An empty builder over `shards` shards.
    pub fn builder(shards: u32) -> ShardPlanBuilder {
        ShardPlanBuilder {
            shards,
            placements: BTreeMap::new(),
        }
    }

    /// Shard-by-model: models round-robin over `shards`, each wholly
    /// owned by its shard.
    ///
    /// # Errors
    ///
    /// [`PlanError::NoShards`] when `shards` is zero.
    pub fn by_model(models: &[u64], shards: u32) -> Result<ShardPlan, PlanError> {
        if shards == 0 {
            return Err(PlanError::NoShards);
        }
        let mut b = ShardPlan::builder(shards);
        for (i, &m) in models.iter().enumerate() {
            b = b.place_model(m, (i % shards as usize) as u32);
        }
        b.build()
    }

    /// Shard-by-frequency-band: one model's certified envelope
    /// `[lo, hi]` split into `shards` log-spaced disjoint bands, band
    /// `k` owned by shard `k`. Log spacing matches how sweeps sample
    /// (decades, not linear), so bands see comparable load.
    ///
    /// # Errors
    ///
    /// [`PlanError`] for a zero shard count or a degenerate envelope
    /// (non-finite, non-positive, or `lo >= hi`).
    pub fn by_bands(model: u64, shards: u32, lo: f64, hi: f64) -> Result<ShardPlan, PlanError> {
        if shards == 0 {
            return Err(PlanError::NoShards);
        }
        if !(lo.is_finite() && hi.is_finite() && lo > 0.0 && lo < hi) {
            return Err(PlanError::BadBands {
                model,
                reason: "envelope must satisfy 0 < lo < hi, finite",
            });
        }
        let n = shards as usize;
        let ratio = hi / lo;
        let mut bands = Vec::with_capacity(n);
        let mut prev_hi = lo;
        for k in 0..n {
            let band_lo = prev_hi;
            let band_hi = if k + 1 == n {
                hi
            } else {
                lo * ratio.powf((k + 1) as f64 / n as f64)
            };
            bands.push(BandRange {
                shard: k as u32,
                lo: band_lo,
                hi: band_hi,
            });
            // Next band starts strictly above this one (next f64 up), so
            // validation's disjointness holds and routing is unambiguous.
            prev_hi = next_up(band_hi);
        }
        ShardPlan::builder(shards).place_bands(model, bands).build()
    }

    /// Number of shards the plan spans.
    pub fn num_shards(&self) -> u32 {
        self.shards
    }

    /// Model ids the plan places, ascending.
    pub fn models(&self) -> impl Iterator<Item = u64> + '_ {
        self.placements.keys().copied()
    }

    /// The placement for a model, if placed.
    pub fn placement(&self, model: u64) -> Option<&Placement> {
        self.placements.get(&model)
    }

    /// The shard owning one frequency sample of `model`: the owning
    /// shard for model-sharded placements; for band-sharded ones, the
    /// band containing `omega`, clamped to the edge bands outside the
    /// envelope (out-of-envelope queries stay servable — the shard's own
    /// `RomServer` envelope policy decides what to do with them).
    pub fn shard_for(&self, model: u64, omega: f64) -> Option<u32> {
        match self.placements.get(&model)? {
            Placement::Model(shard) => Some(*shard),
            Placement::Bands(bands) => {
                for b in bands {
                    if omega <= b.hi {
                        return Some(b.shard);
                    }
                }
                bands.last().map(|b| b.shard)
            }
        }
    }

    /// The shard answering `model`'s non-frequency queries (transients,
    /// metadata): the owning shard, or the first band's shard — a
    /// transient integrates the whole model and cannot be split by ω.
    pub fn home_shard(&self, model: u64) -> Option<u32> {
        match self.placements.get(&model)? {
            Placement::Model(shard) => Some(*shard),
            Placement::Bands(bands) => bands.first().map(|b| b.shard),
        }
    }

    /// Splits a sweep over shards: for each shard touched, the original
    /// sample indices and frequencies it owns, shards ascending and
    /// samples in request order within each. Reassembling replies by the
    /// carried indices reproduces request ω-order exactly.
    pub fn partition_sweep(&self, model: u64, omegas: &[f64]) -> Option<Vec<ShardSlice>> {
        self.placements.get(&model)?;
        let mut by_shard: BTreeMap<u32, ShardSlice> = BTreeMap::new();
        for (i, &w) in omegas.iter().enumerate() {
            let shard = self.shard_for(model, w)?;
            let slice = by_shard.entry(shard).or_insert_with(|| ShardSlice {
                shard,
                indices: Vec::new(),
                omegas: Vec::new(),
            });
            slice.indices.push(i);
            slice.omegas.push(w);
        }
        Some(by_shard.into_values().collect())
    }

    /// FNV-1a digest of the canonical placement encoding — the audit
    /// stamp shards echo in every reply.
    pub fn digest(&self) -> u64 {
        let mut bytes = Vec::with_capacity(64);
        bytes.extend_from_slice(&self.shards.to_le_bytes());
        for (&model, placement) in &self.placements {
            bytes.extend_from_slice(&model.to_le_bytes());
            match placement {
                Placement::Model(shard) => {
                    bytes.push(0);
                    bytes.extend_from_slice(&shard.to_le_bytes());
                }
                Placement::Bands(bands) => {
                    bytes.push(1);
                    bytes.extend_from_slice(&(bands.len() as u64).to_le_bytes());
                    for b in bands {
                        bytes.extend_from_slice(&b.shard.to_le_bytes());
                        bytes.extend_from_slice(&b.lo.to_bits().to_le_bytes());
                        bytes.extend_from_slice(&b.hi.to_bits().to_le_bytes());
                    }
                }
            }
        }
        crate::wire::fnv1a(&bytes)
    }
}

/// One shard's share of a partitioned sweep, from
/// [`ShardPlan::partition_sweep`].
#[derive(Debug, Clone, PartialEq)]
pub struct ShardSlice {
    /// The shard that computes these samples.
    pub shard: u32,
    /// Positions of the samples in the original request.
    pub indices: Vec<usize>,
    /// The frequencies themselves, in request order.
    pub omegas: Vec<f64>,
}

/// The next representable f64 above `x` (for strictly-increasing band
/// edges; `f64::next_up` is not yet stable on this toolchain).
fn next_up(x: f64) -> f64 {
    let bits = x.to_bits();
    f64::from_bits(if x >= 0.0 { bits + 1 } else { bits - 1 })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn by_model_round_robins_and_digest_is_stable() {
        let plan = ShardPlan::by_model(&[10, 11, 12], 2).unwrap();
        assert_eq!(plan.shard_for(10, 1.0), Some(0));
        assert_eq!(plan.shard_for(11, 1.0), Some(1));
        assert_eq!(plan.shard_for(12, 1.0), Some(0));
        assert_eq!(plan.home_shard(11), Some(1));
        assert_eq!(plan.shard_for(99, 1.0), None);
        let again = ShardPlan::by_model(&[10, 11, 12], 2).unwrap();
        assert_eq!(plan.digest(), again.digest());
        let different = ShardPlan::by_model(&[10, 11, 12], 3).unwrap();
        assert_ne!(plan.digest(), different.digest());
    }

    #[test]
    fn by_bands_covers_the_envelope_disjointly() {
        let plan = ShardPlan::by_bands(7, 4, 50.0, 4.0e3).unwrap();
        let Placement::Bands(bands) = plan.placement(7).unwrap() else {
            panic!("expected bands");
        };
        assert_eq!(bands.len(), 4);
        assert_eq!(bands[0].lo, 50.0);
        assert_eq!(bands[3].hi, 4.0e3);
        for w in [50.0, 200.0, 1.0e3, 4.0e3] {
            assert!(plan.shard_for(7, w).is_some());
        }
        // Outside the envelope clamps to the edge shards.
        assert_eq!(plan.shard_for(7, 1.0), Some(0));
        assert_eq!(plan.shard_for(7, 1.0e9), Some(3));
        // Transients go to the first band's shard.
        assert_eq!(plan.home_shard(7), Some(0));
    }

    #[test]
    fn partition_sweep_round_trips_indices() {
        let plan = ShardPlan::by_bands(1, 3, 10.0, 1.0e4).unwrap();
        let omegas = [5.0, 9.0e3, 40.0, 2.0e4, 300.0, 10.0];
        let slices = plan.partition_sweep(1, &omegas).unwrap();
        let mut seen = vec![false; omegas.len()];
        for s in &slices {
            assert_eq!(s.indices.len(), s.omegas.len());
            for (&i, &w) in s.indices.iter().zip(&s.omegas) {
                assert_eq!(w, omegas[i]);
                assert!(!seen[i], "sample {i} routed twice");
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "a sample was dropped");
        // Shards ascend across slices.
        for pair in slices.windows(2) {
            assert!(pair[0].shard < pair[1].shard);
        }
    }

    #[test]
    fn validation_rejects_bad_plans() {
        assert_eq!(
            ShardPlan::by_model(&[1], 0).unwrap_err(),
            PlanError::NoShards
        );
        assert!(matches!(
            ShardPlan::builder(2).place_model(5, 2).build().unwrap_err(),
            PlanError::ShardOutOfRange {
                model: 5,
                shard: 2,
                ..
            }
        ));
        assert!(matches!(
            ShardPlan::builder(2)
                .place_bands(5, vec![])
                .build()
                .unwrap_err(),
            PlanError::BadBands { model: 5, .. }
        ));
        let overlapping = vec![
            BandRange {
                shard: 0,
                lo: 1.0,
                hi: 10.0,
            },
            BandRange {
                shard: 1,
                lo: 5.0,
                hi: 20.0,
            },
        ];
        assert!(matches!(
            ShardPlan::builder(2)
                .place_bands(5, overlapping)
                .build()
                .unwrap_err(),
            PlanError::BadBands { .. }
        ));
        assert!(ShardPlan::by_bands(1, 2, -1.0, 10.0).is_err());
        assert!(ShardPlan::by_bands(1, 2, 10.0, 10.0).is_err());
    }
}
