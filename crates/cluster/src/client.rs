//! `ClusterClient`: the routing front end — placement, batching,
//! admission control, retry, and deterministic merge.
//!
//! Every public query (1) takes an admission permit — when
//! `max_in_flight` queries are already running the call fails *fast*
//! with [`ClusterError::Overloaded`], never queues unboundedly and never
//! hangs; (2) partitions its work over shards by the [`ShardPlan`];
//! (3) runs one RPC per touched shard on scoped threads, each RPC
//! retrying with exponential backoff across reconnects; (4) verifies
//! every reply's plan digest; and (5) scatters band-sharded sweep
//! replies back to their original sample indices — the merge is
//! position-driven, so reply arrival order (and therefore scheduling)
//! cannot affect the result. Per-sample results are independent in the
//! underlying server, which is why re-partitioning a sweep over shards
//! is bitwise-invisible.
//!
//! [`sweep_batch`](ClusterClient::sweep_batch) /
//! [`port_batch`](ClusterClient::port_batch) coalesce many compatible
//! queries into **one frame per (shard, model) per tick**, amortizing
//! round trips — the cluster's answer to high-QPS dashboard fan-in.

use crate::plan::ShardPlan;
use crate::wire::{Frame, RemoteErrorKind, Request, Response, WireError};
use bdsm_core::transfer::CMatrix;
use bdsm_linalg::Complex64;
use bdsm_obs::Counter;
use std::collections::BTreeMap;
use std::net::{SocketAddr, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};
use std::time::Duration;

/// Per-group coalescing state: concatenated ω samples plus, for each,
/// the (query index, position) it scatters back to.
type SliceHomes = (Vec<f64>, Vec<(usize, usize)>);

/// Router failure, typed end to end: every path out of a
/// [`ClusterClient`] query is one of these — never a hang, never a
/// panic.
#[derive(Debug)]
#[non_exhaustive]
pub enum ClusterError {
    /// Admission control refused the query: `max_in_flight` queries were
    /// already running.
    Overloaded {
        /// Queries in flight at refusal time.
        in_flight: usize,
        /// The configured bound.
        limit: usize,
    },
    /// A shard stayed unreachable through every retry.
    Unavailable {
        /// The shard that could not be reached.
        shard: u32,
        /// Connection attempts made (1 + retries).
        attempts: u32,
        /// The final attempt's failure.
        last: WireError,
    },
    /// A shard answered with a protocol violation (bad frame, wrong
    /// reply kind).
    Protocol {
        /// The misbehaving shard.
        shard: u32,
        /// What was wrong.
        error: WireError,
    },
    /// A shard runs a different placement plan than this client.
    PlanMismatch {
        /// The inconsistent shard.
        shard: u32,
        /// This client's plan digest.
        expected: u64,
        /// The digest the shard stamped.
        found: u64,
    },
    /// The shard executed the request and reported a server-side error.
    Remote {
        /// The reporting shard.
        shard: u32,
        /// Coarse failure class.
        kind: RemoteErrorKind,
        /// The shard's error message.
        message: String,
    },
    /// The plan does not place the requested model.
    UnknownModel(u64),
    /// A router worker panicked; contained at the public API.
    Internal(String),
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterError::Overloaded { in_flight, limit } => {
                write!(
                    f,
                    "cluster overloaded: {in_flight} queries in flight (limit {limit})"
                )
            }
            ClusterError::Unavailable {
                shard,
                attempts,
                last,
            } => write!(
                f,
                "shard {shard} unavailable after {attempts} attempts: {last}"
            ),
            ClusterError::Protocol { shard, error } => {
                write!(f, "protocol violation from shard {shard}: {error}")
            }
            ClusterError::PlanMismatch {
                shard,
                expected,
                found,
            } => write!(
                f,
                "shard {shard} runs plan {found:#018x}, client expects {expected:#018x}"
            ),
            ClusterError::Remote {
                shard,
                kind,
                message,
            } => write!(f, "shard {shard} error ({kind:?}): {message}"),
            ClusterError::UnknownModel(m) => write!(f, "model {m} not in the shard plan"),
            ClusterError::Internal(msg) => write!(f, "router internal error: {msg}"),
        }
    }
}

impl std::error::Error for ClusterError {}

/// Router tuning knobs.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Admission bound: queries beyond this fail with
    /// [`ClusterError::Overloaded`] instead of queueing.
    pub max_in_flight: usize,
    /// Reconnect attempts after the first failure, per RPC.
    pub max_retries: u32,
    /// Backoff before retry `k` is `backoff × 2^k`.
    pub backoff: Duration,
    /// Socket connect/read/write timeout.
    pub io_timeout: Duration,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            max_in_flight: 256,
            max_retries: 2,
            backoff: Duration::from_millis(20),
            io_timeout: Duration::from_secs(30),
        }
    }
}

/// Counters the router keeps (all relaxed atomics — see `bdsm-obs`).
#[derive(Debug, Default)]
struct ClusterMetrics {
    rpcs: Counter,
    coalesced_queries: Counter,
    retries: Counter,
    reconnects: Counter,
    overloaded: Counter,
    remote_errors: Counter,
    unavailable: Counter,
    worker_panics: Counter,
}

/// Point-in-time router counters, from [`ClusterClient::metrics`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterMetricsSnapshot {
    /// Wire round trips issued.
    pub rpcs: u64,
    /// Per-shard sub-queries folded into shared frames by the batch APIs
    /// (each frame carrying `k` sub-queries counts `k - 1` here).
    pub coalesced_queries: u64,
    /// RPC retry attempts after a failure.
    pub retries: u64,
    /// TCP reconnects (first connects excluded).
    pub reconnects: u64,
    /// Queries refused by admission control.
    pub overloaded: u64,
    /// Replies that carried a server-side error.
    pub remote_errors: u64,
    /// RPCs that exhausted every retry.
    pub unavailable: u64,
    /// Router worker panics contained at the public API.
    pub worker_panics: u64,
}

impl ClusterMetricsSnapshot {
    /// JSON object fragment (no trailing newline).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"rpcs\": {}, \"coalesced_queries\": {}, \"retries\": {}, \"reconnects\": {}, \
             \"overloaded\": {}, \"remote_errors\": {}, \"unavailable\": {}, \
             \"worker_panics\": {}}}",
            self.rpcs,
            self.coalesced_queries,
            self.retries,
            self.reconnects,
            self.overloaded,
            self.remote_errors,
            self.unavailable,
            self.worker_panics
        )
    }
}

/// One shard's connection slot: at most one pooled stream, lazily
/// (re)established under the lock.
struct ShardConn {
    addr: SocketAddr,
    stream: Mutex<Option<TcpStream>>,
    /// Whether this shard has ever connected — distinguishes a lazy
    /// first connect from a reconnect in the metrics.
    ever_connected: std::sync::atomic::AtomicBool,
}

fn lock_conn(m: &Mutex<Option<TcpStream>>) -> MutexGuard<'_, Option<TcpStream>> {
    // A panic while holding the slot can only leave a dead/absent stream,
    // which the reconnect path replaces — recovery is safe.
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// The cluster-side counterpart of `RomServer`: same query surface,
/// served by remote shards. See the module docs for the routing
/// pipeline and [`ClusterError`] for the failure contract.
pub struct ClusterClient {
    plan: ShardPlan,
    plan_digest: u64,
    shards: Vec<ShardConn>,
    cfg: ClientConfig,
    metrics: ClusterMetrics,
    in_flight: AtomicUsize,
}

/// RAII admission permit.
struct Permit<'a>(&'a AtomicUsize);

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

impl ClusterClient {
    /// A client over `plan`, shard `k` served at `addrs[k]`.
    ///
    /// # Errors
    ///
    /// [`ClusterError::Internal`] when the address list length does not
    /// match the plan's shard count. Connections are established lazily;
    /// construction does not touch the network.
    pub fn connect(
        plan: ShardPlan,
        addrs: &[SocketAddr],
        cfg: ClientConfig,
    ) -> Result<ClusterClient, ClusterError> {
        if addrs.len() != plan.num_shards() as usize {
            return Err(ClusterError::Internal(format!(
                "plan has {} shards but {} addresses were given",
                plan.num_shards(),
                addrs.len()
            )));
        }
        let plan_digest = plan.digest();
        Ok(ClusterClient {
            plan,
            plan_digest,
            shards: addrs
                .iter()
                .map(|&addr| ShardConn {
                    addr,
                    stream: Mutex::new(None),
                    ever_connected: std::sync::atomic::AtomicBool::new(false),
                })
                .collect(),
            cfg,
            metrics: ClusterMetrics::default(),
            in_flight: AtomicUsize::new(0),
        })
    }

    /// The placement plan this client routes by.
    pub fn plan(&self) -> &ShardPlan {
        &self.plan
    }

    /// A snapshot of the router's counters.
    pub fn metrics(&self) -> ClusterMetricsSnapshot {
        ClusterMetricsSnapshot {
            rpcs: self.metrics.rpcs.get(),
            coalesced_queries: self.metrics.coalesced_queries.get(),
            retries: self.metrics.retries.get(),
            reconnects: self.metrics.reconnects.get(),
            overloaded: self.metrics.overloaded.get(),
            remote_errors: self.metrics.remote_errors.get(),
            unavailable: self.metrics.unavailable.get(),
            worker_panics: self.metrics.worker_panics.get(),
        }
    }

    // -- admission + containment ------------------------------------------

    fn admit(&self) -> Result<Permit<'_>, ClusterError> {
        let limit = self.cfg.max_in_flight;
        let mut current = self.in_flight.load(Ordering::SeqCst);
        loop {
            if current >= limit {
                self.metrics.overloaded.inc();
                return Err(ClusterError::Overloaded {
                    in_flight: current,
                    limit,
                });
            }
            match self.in_flight.compare_exchange(
                current,
                current + 1,
                Ordering::SeqCst,
                Ordering::SeqCst,
            ) {
                Ok(_) => return Ok(Permit(&self.in_flight)),
                Err(now) => current = now,
            }
        }
    }

    /// Contains router panics (including scoped-worker panics, which
    /// propagate on join) as [`ClusterError::Internal`].
    fn contained<T>(&self, f: impl FnOnce() -> Result<T, ClusterError>) -> Result<T, ClusterError> {
        match catch_unwind(AssertUnwindSafe(f)) {
            Ok(out) => out,
            Err(payload) => {
                self.metrics.worker_panics.inc();
                let msg = if let Some(s) = payload.downcast_ref::<&str>() {
                    (*s).to_string()
                } else if let Some(s) = payload.downcast_ref::<String>() {
                    s.clone()
                } else {
                    "panic with non-string payload".to_string()
                };
                Err(ClusterError::Internal(msg))
            }
        }
    }

    // -- transport ---------------------------------------------------------

    /// One request/response round trip to a shard, reconnecting with
    /// exponential backoff across `max_retries + 1` attempts. The pooled
    /// stream is held (and its slot locked) for the duration, so one
    /// connection carries one RPC at a time; concurrent RPCs to the same
    /// shard serialize here, concurrent RPCs to different shards don't.
    fn rpc(&self, shard: u32, request: &Request) -> Result<Response, ClusterError> {
        let _span = bdsm_obs::span!("cluster.shard_rpc", shard = shard as u64);
        let conn = &self.shards[shard as usize];
        let frame = request.to_frame();
        let attempts = self.cfg.max_retries + 1;
        let mut slot = lock_conn(&conn.stream);
        let mut last = None;
        for attempt in 0..attempts {
            if attempt > 0 {
                self.metrics.retries.inc();
                std::thread::sleep(self.cfg.backoff * (1 << (attempt - 1).min(10)));
            }
            if slot.is_none() {
                if conn.ever_connected.load(Ordering::SeqCst) {
                    self.metrics.reconnects.inc();
                }
                match TcpStream::connect_timeout(&conn.addr, self.cfg.io_timeout) {
                    Ok(stream) => {
                        let _ = stream.set_read_timeout(Some(self.cfg.io_timeout));
                        let _ = stream.set_write_timeout(Some(self.cfg.io_timeout));
                        let _ = stream.set_nodelay(true);
                        conn.ever_connected.store(true, Ordering::SeqCst);
                        *slot = Some(stream);
                    }
                    Err(e) => {
                        last = Some(WireError::Io(e));
                        continue;
                    }
                }
            }
            let stream = slot.as_mut().expect("connected above");
            self.metrics.rpcs.inc();
            let result = frame
                .write_to(stream)
                .and_then(|()| Frame::read_from(stream));
            match result {
                Ok(reply_frame) => {
                    let response = Response::from_frame(&reply_frame)
                        .map_err(|error| ClusterError::Protocol { shard, error })?;
                    let stamp = response.stamp();
                    if stamp.plan_digest != self.plan_digest {
                        return Err(ClusterError::PlanMismatch {
                            shard,
                            expected: self.plan_digest,
                            found: stamp.plan_digest,
                        });
                    }
                    if let Response::Error(_, kind, message) = response {
                        self.metrics.remote_errors.inc();
                        return Err(ClusterError::Remote {
                            shard,
                            kind,
                            message,
                        });
                    }
                    return Ok(response);
                }
                // I/O mid-RPC: the stream is dead or desynced either way —
                // drop it and retry on a fresh connection.
                Err(WireError::Io(e)) => {
                    *slot = None;
                    last = Some(WireError::Io(e));
                }
                // Framing errors are not transient; retrying cannot help.
                Err(error) => {
                    *slot = None;
                    return Err(ClusterError::Protocol { shard, error });
                }
            }
        }
        self.metrics.unavailable.inc();
        Err(ClusterError::Unavailable {
            shard,
            attempts,
            last: last.unwrap_or(WireError::Corrupt("no attempt recorded")),
        })
    }

    /// Runs one RPC per (shard, request), shards in parallel on scoped
    /// threads, results in input order.
    fn fan_out(&self, work: Vec<(u32, Request)>) -> Vec<Result<Response, ClusterError>> {
        if work.len() <= 1 {
            return work
                .into_iter()
                .map(|(shard, req)| {
                    bdsm_obs::faultpoint!("cluster.router.worker");
                    self.rpc(shard, &req)
                })
                .collect();
        }
        let mut out: Vec<Option<Result<Response, ClusterError>>> =
            (0..work.len()).map(|_| None).collect();
        std::thread::scope(|scope| {
            for ((shard, req), slot) in work.into_iter().zip(out.iter_mut()) {
                scope.spawn(move || {
                    // Armed fault panics this worker; the scope propagates
                    // it on join and `contained` surfaces it as
                    // `ClusterError::Internal`.
                    bdsm_obs::faultpoint!("cluster.router.worker");
                    *slot = Some(self.rpc(shard, &req));
                });
            }
        });
        out.into_iter()
            .map(|r| r.expect("scope joined every worker"))
            .collect()
    }

    // -- queries -----------------------------------------------------------

    /// Liveness probe of one shard.
    ///
    /// # Errors
    ///
    /// Transport/protocol errors as [`ClusterError`].
    pub fn ping(&self, shard: u32) -> Result<(), ClusterError> {
        self.contained(|| {
            let _permit = self.admit()?;
            match self.rpc(shard, &Request::Ping)? {
                Response::Pong(_) => Ok(()),
                other => Err(unexpected_reply(shard, &other)),
            }
        })
    }

    /// A shard server's `ServerMetricsSnapshot` JSON (includes its
    /// shift-cache eviction counters).
    ///
    /// # Errors
    ///
    /// Transport/protocol errors as [`ClusterError`].
    pub fn shard_metrics(&self, shard: u32) -> Result<String, ClusterError> {
        self.contained(|| {
            let _permit = self.admit()?;
            match self.rpc(shard, &Request::Metrics)? {
                Response::Metrics(_, json) => Ok(json),
                other => Err(unexpected_reply(shard, &other)),
            }
        })
    }

    /// Asks every shard to shut down gracefully (used by orderly
    /// teardown; errors from already-dead shards are reported, not
    /// retried into).
    pub fn shutdown_all(&self) -> Vec<Result<(), ClusterError>> {
        (0..self.plan.num_shards())
            .map(|shard| {
                self.contained(|| match self.rpc(shard, &Request::Shutdown)? {
                    Response::ShuttingDown(_) => Ok(()),
                    other => Err(unexpected_reply(shard, &other)),
                })
            })
            .collect()
    }

    /// The distributed [`RomServer::transfer_sweep`]: partitions the
    /// sweep by the plan, queries every touched shard in parallel, and
    /// reassembles replies into request ω-order. Bitwise-equal to the
    /// single-process server for any placement and any `BDSM_THREADS`.
    ///
    /// [`RomServer::transfer_sweep`]: bdsm_rom::RomServer::transfer_sweep
    ///
    /// # Errors
    ///
    /// [`ClusterError`] on routing/transport failure or the first
    /// shard-reported error (ascending shard order).
    pub fn transfer_sweep(&self, model: u64, omegas: &[f64]) -> Result<Vec<CMatrix>, ClusterError> {
        self.contained(|| {
            let _span = bdsm_obs::timing_span!("cluster.route", freqs = omegas.len());
            let _permit = self.admit()?;
            let slices = self
                .plan
                .partition_sweep(model, omegas)
                .ok_or(ClusterError::UnknownModel(model))?;
            let work: Vec<(u32, Request)> = slices
                .iter()
                .map(|s| {
                    (
                        s.shard,
                        Request::Sweep {
                            model,
                            omegas: s.omegas.clone(),
                        },
                    )
                })
                .collect();
            let replies = self.fan_out(work);
            let mut out: Vec<Option<CMatrix>> = (0..omegas.len()).map(|_| None).collect();
            for (slice, reply) in slices.iter().zip(replies) {
                let mats = match reply? {
                    Response::Sweep(_, mats) => mats,
                    other => return Err(unexpected_reply(slice.shard, &other)),
                };
                scatter(&mut out, &slice.indices, mats, slice.shard)?;
            }
            collect_all(out)
        })
    }

    /// The distributed [`RomServer::port_response`]: band-routed like a
    /// sweep (a port sample is per-frequency), merged back to request
    /// order.
    ///
    /// [`RomServer::port_response`]: bdsm_rom::RomServer::port_response
    ///
    /// # Errors
    ///
    /// As [`transfer_sweep`](Self::transfer_sweep).
    pub fn port_response(
        &self,
        model: u64,
        out_port: usize,
        in_port: usize,
        omegas: &[f64],
    ) -> Result<Vec<Complex64>, ClusterError> {
        self.contained(|| {
            let _span = bdsm_obs::timing_span!("cluster.route", freqs = omegas.len());
            let _permit = self.admit()?;
            let slices = self
                .plan
                .partition_sweep(model, omegas)
                .ok_or(ClusterError::UnknownModel(model))?;
            let work: Vec<(u32, Request)> = slices
                .iter()
                .map(|s| {
                    (
                        s.shard,
                        Request::Port {
                            model,
                            out_port: out_port as u64,
                            in_port: in_port as u64,
                            omegas: s.omegas.clone(),
                        },
                    )
                })
                .collect();
            let replies = self.fan_out(work);
            let mut out: Vec<Option<Complex64>> = (0..omegas.len()).map(|_| None).collect();
            for (slice, reply) in slices.iter().zip(replies) {
                let samples = match reply? {
                    Response::Port(_, samples) => samples,
                    other => return Err(unexpected_reply(slice.shard, &other)),
                };
                scatter(&mut out, &slice.indices, samples, slice.shard)?;
            }
            collect_all(out)
        })
    }

    /// The distributed [`RomServer::transient`]: routed whole to the
    /// model's home shard (a transient integrates the full model and
    /// cannot be split by frequency).
    ///
    /// [`RomServer::transient`]: bdsm_rom::RomServer::transient
    ///
    /// # Errors
    ///
    /// [`ClusterError`] on routing/transport failure or a shard-reported
    /// error.
    pub fn transient(
        &self,
        model: u64,
        h: f64,
        inputs: &[Vec<f64>],
    ) -> Result<Vec<Vec<f64>>, ClusterError> {
        self.contained(|| {
            let _span = bdsm_obs::timing_span!("cluster.route", steps = inputs.len());
            let _permit = self.admit()?;
            let shard = self
                .plan
                .home_shard(model)
                .ok_or(ClusterError::UnknownModel(model))?;
            bdsm_obs::faultpoint!("cluster.router.worker");
            match self.rpc(
                shard,
                &Request::Transient {
                    model,
                    h,
                    inputs: inputs.to_vec(),
                },
            )? {
                Response::Transient(_, rows) => Ok(rows),
                other => Err(unexpected_reply(shard, &other)),
            }
        })
    }

    /// Batched sweeps with per-shard coalescing: all queries landing on
    /// the same (shard, model) share **one** wire frame, so a tick of
    /// `Q` dashboard queries costs at most `shards × models` round trips
    /// instead of `Q`. Results come back per query, in query order, each
    /// in its own request ω-order.
    ///
    /// # Errors
    ///
    /// [`ClusterError`] on admission/routing/transport failure or the
    /// first shard-reported error; one failure fails the batch (the
    /// batch is one admission unit).
    pub fn sweep_batch(
        &self,
        queries: &[(u64, Vec<f64>)],
    ) -> Result<Vec<Vec<CMatrix>>, ClusterError> {
        self.contained(|| {
            let _span = bdsm_obs::timing_span!("cluster.route_batch", queries = queries.len());
            let _permit = self.admit()?;
            // Coalesce: (shard, model) → concatenated ω plus, per sample,
            // its (query, position) home.
            let mut groups: BTreeMap<(u32, u64), SliceHomes> = BTreeMap::new();
            let mut slices_routed = 0u64;
            for (qi, (model, omegas)) in queries.iter().enumerate() {
                let slices = self
                    .plan
                    .partition_sweep(*model, omegas)
                    .ok_or(ClusterError::UnknownModel(*model))?;
                for slice in slices {
                    slices_routed += 1;
                    let entry = groups.entry((slice.shard, *model)).or_default();
                    for (&idx, &w) in slice.indices.iter().zip(&slice.omegas) {
                        entry.0.push(w);
                        entry.1.push((qi, idx));
                    }
                }
            }
            // One slice per (query, shard) after band routing; every slice
            // beyond the first in a group rode a shared frame.
            if slices_routed > groups.len() as u64 {
                self.metrics
                    .coalesced_queries
                    .add(slices_routed - groups.len() as u64);
            }
            let keys: Vec<(u32, u64)> = groups.keys().copied().collect();
            let work: Vec<(u32, Request)> = keys
                .iter()
                .map(|&(shard, model)| {
                    (
                        shard,
                        Request::Sweep {
                            model,
                            omegas: groups[&(shard, model)].0.clone(),
                        },
                    )
                })
                .collect();
            let replies = self.fan_out(work);
            let mut out: Vec<Vec<Option<CMatrix>>> = queries
                .iter()
                .map(|(_, omegas)| (0..omegas.len()).map(|_| None).collect())
                .collect();
            for (key, reply) in keys.iter().zip(replies) {
                let mats = match reply? {
                    Response::Sweep(_, mats) => mats,
                    other => return Err(unexpected_reply(key.0, &other)),
                };
                let homes = &groups[key].1;
                if mats.len() != homes.len() {
                    return Err(ClusterError::Protocol {
                        shard: key.0,
                        error: WireError::Corrupt("sweep reply length mismatch"),
                    });
                }
                for ((qi, idx), mat) in homes.iter().zip(mats) {
                    out[*qi][*idx] = Some(mat);
                }
            }
            out.into_iter().map(collect_all).collect()
        })
    }

    /// Batched port queries with the same per-(shard, model) coalescing
    /// as [`sweep_batch`](Self::sweep_batch). Queries must share a port
    /// pair to coalesce; the group key includes it.
    ///
    /// # Errors
    ///
    /// As [`sweep_batch`](Self::sweep_batch).
    pub fn port_batch(
        &self,
        queries: &[(u64, usize, usize, Vec<f64>)],
    ) -> Result<Vec<Vec<Complex64>>, ClusterError> {
        self.contained(|| {
            let _span = bdsm_obs::timing_span!("cluster.route_batch", queries = queries.len());
            let _permit = self.admit()?;
            type PortKey = (u32, u64, u64, u64);
            let mut groups: BTreeMap<PortKey, SliceHomes> = BTreeMap::new();
            let mut slices_routed = 0u64;
            for (qi, (model, out_port, in_port, omegas)) in queries.iter().enumerate() {
                let slices = self
                    .plan
                    .partition_sweep(*model, omegas)
                    .ok_or(ClusterError::UnknownModel(*model))?;
                for slice in slices {
                    slices_routed += 1;
                    let key = (slice.shard, *model, *out_port as u64, *in_port as u64);
                    let entry = groups.entry(key).or_default();
                    for (&idx, &w) in slice.indices.iter().zip(&slice.omegas) {
                        entry.0.push(w);
                        entry.1.push((qi, idx));
                    }
                }
            }
            if slices_routed > groups.len() as u64 {
                self.metrics
                    .coalesced_queries
                    .add(slices_routed - groups.len() as u64);
            }
            let keys: Vec<PortKey> = groups.keys().copied().collect();
            let work: Vec<(u32, Request)> = keys
                .iter()
                .map(|&(shard, model, out_port, in_port)| {
                    (
                        shard,
                        Request::Port {
                            model,
                            out_port,
                            in_port,
                            omegas: groups[&(shard, model, out_port, in_port)].0.clone(),
                        },
                    )
                })
                .collect();
            let replies = self.fan_out(work);
            let mut out: Vec<Vec<Option<Complex64>>> = queries
                .iter()
                .map(|(_, _, _, omegas)| (0..omegas.len()).map(|_| None).collect())
                .collect();
            for (key, reply) in keys.iter().zip(replies) {
                let samples = match reply? {
                    Response::Port(_, samples) => samples,
                    other => return Err(unexpected_reply(key.0, &other)),
                };
                let homes = &groups[key].1;
                if samples.len() != homes.len() {
                    return Err(ClusterError::Protocol {
                        shard: key.0,
                        error: WireError::Corrupt("port reply length mismatch"),
                    });
                }
                for ((qi, idx), sample) in homes.iter().zip(samples) {
                    out[*qi][*idx] = Some(sample);
                }
            }
            out.into_iter().map(collect_all).collect()
        })
    }
}

fn unexpected_reply(shard: u32, response: &Response) -> ClusterError {
    let _ = response;
    ClusterError::Protocol {
        shard,
        error: WireError::Corrupt("reply kind does not match the request"),
    }
}

/// Scatters one shard's reply items back to their original request
/// positions. Count mismatches are protocol violations, not panics.
fn scatter<T>(
    out: &mut [Option<T>],
    indices: &[usize],
    items: Vec<T>,
    shard: u32,
) -> Result<(), ClusterError> {
    if items.len() != indices.len() {
        return Err(ClusterError::Protocol {
            shard,
            error: WireError::Corrupt("reply length does not match the request"),
        });
    }
    for (&idx, item) in indices.iter().zip(items) {
        out[idx] = Some(item);
    }
    Ok(())
}

/// Every position must have been filled by exactly one shard slice —
/// guaranteed by `partition_sweep`'s index partition; a hole would be a
/// router bug and surfaces as `Internal`, not a panic.
fn collect_all<T>(out: Vec<Option<T>>) -> Result<Vec<T>, ClusterError> {
    out.into_iter()
        .map(|x| x.ok_or_else(|| ClusterError::Internal("unfilled merge position".to_string())))
        .collect()
}
