//! `ShardNode`: one shard process — a [`RomServer`] behind a TCP
//! listener speaking the [`crate::wire`] protocol.
//!
//! The node is deliberately thin: it maps cluster model ids to local
//! [`RomId`]s, decodes one request per frame, calls the corresponding
//! `RomServer` query (which already contains panics, validates inputs,
//! and enforces the certified envelope), and stamps every reply with its
//! shard index and plan digest. All numerical work — and therefore all
//! bitwise determinism — lives in the server; the wire layer moves bit
//! patterns (`f64::to_bits`) and cannot perturb results.
//!
//! One OS thread accepts connections; each connection gets its own
//! thread and processes requests sequentially (pipelining across
//! connections, ordering within one). Fault sites:
//! `cluster.node.accept` fires in the accept loop, and
//! `cluster.node.request` fires per request *outside* the server's panic
//! containment — an armed fault kills the connection thread, which the
//! client observes as a connection drop (the retry/failover path).

use crate::wire::{Frame, RemoteErrorKind, ReplyStamp, Request, Response, WireError};
use bdsm_rom::{RomError, RomId, RomServer};
use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// How a [`ShardNode`] identifies itself and times out its sockets.
#[derive(Debug, Clone)]
pub struct NodeConfig {
    /// This node's shard index in the cluster plan.
    pub shard_id: u32,
    /// [`crate::ShardPlan::digest`] of the plan the cluster runs under;
    /// stamped into every reply for audit.
    pub plan_digest: u64,
    /// Per-socket read/write timeout — a wedged peer can stall one
    /// connection thread for at most this long.
    pub io_timeout: Duration,
}

impl Default for NodeConfig {
    fn default() -> Self {
        NodeConfig {
            shard_id: 0,
            plan_digest: 0,
            io_timeout: Duration::from_secs(30),
        }
    }
}

/// A running shard: a [`RomServer`] serving the wire protocol on a local
/// TCP address. Shuts down gracefully on [`shutdown`](Self::shutdown) or
/// drop.
pub struct ShardNode {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_handle: Option<JoinHandle<()>>,
}

struct NodeInner {
    server: RomServer,
    models: HashMap<u64, RomId>,
    cfg: NodeConfig,
    stop: Arc<AtomicBool>,
}

impl ShardNode {
    /// Binds `bind_addr` (use port 0 for an OS-assigned port) and starts
    /// serving `server`'s models under the given cluster ids.
    ///
    /// # Errors
    ///
    /// `std::io::Error` when the listener cannot bind.
    pub fn spawn(
        server: RomServer,
        models: Vec<(u64, RomId)>,
        cfg: NodeConfig,
        bind_addr: &str,
    ) -> io::Result<ShardNode> {
        let listener = TcpListener::bind(bind_addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let inner = Arc::new(NodeInner {
            server,
            models: models.into_iter().collect(),
            cfg,
            stop: Arc::clone(&stop),
        });
        let accept_handle = std::thread::Builder::new()
            .name(format!("bdsm-shard-{}", inner.cfg.shard_id))
            .spawn(move || accept_loop(listener, inner))?;
        Ok(ShardNode {
            addr,
            stop,
            accept_handle: Some(accept_handle),
        })
    }

    /// The address the node is serving on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, unblocks the accept loop, and joins it. Idempotent.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock a blocked `accept` with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept_handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for ShardNode {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: TcpListener, inner: Arc<NodeInner>) {
    loop {
        // Armed fault here kills the accept thread: the node stops taking
        // new connections — the client sees `Unavailable` after retries.
        bdsm_obs::faultpoint!("cluster.node.accept");
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if inner.stop.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        if inner.stop.load(Ordering::SeqCst) {
            return;
        }
        let inner = Arc::clone(&inner);
        let _ = std::thread::Builder::new()
            .name(format!("bdsm-shard-{}-conn", inner.cfg.shard_id))
            .spawn(move || connection_loop(stream, inner));
    }
}

fn connection_loop(mut stream: TcpStream, inner: Arc<NodeInner>) {
    let _ = stream.set_read_timeout(Some(inner.cfg.io_timeout));
    let _ = stream.set_write_timeout(Some(inner.cfg.io_timeout));
    let _ = stream.set_nodelay(true);
    let stamp = ReplyStamp {
        shard: inner.cfg.shard_id,
        plan_digest: inner.cfg.plan_digest,
    };
    loop {
        if inner.stop.load(Ordering::SeqCst) {
            return;
        }
        let frame = match Frame::read_from(&mut stream) {
            Ok(f) => f,
            // Peer hung up or sent garbage: try to say why, then drop the
            // connection — a desynced stream cannot be re-framed.
            Err(WireError::Io(_)) => return,
            Err(e) => {
                let reply = Response::Error(stamp, RemoteErrorKind::Other, format!("{e}"));
                let _ = reply.to_frame().write_to(&mut stream);
                return;
            }
        };
        let request = match Request::from_frame(&frame) {
            Ok(r) => r,
            Err(e) => {
                let reply = Response::Error(stamp, RemoteErrorKind::Other, format!("{e}"));
                let _ = reply.to_frame().write_to(&mut stream);
                return;
            }
        };
        // Armed fault here panics the connection thread *outside* the
        // server's containment: the peer sees a dropped connection
        // mid-request — the nastiest failure shape the router handles.
        bdsm_obs::faultpoint!("cluster.node.request");
        let shutting_down = matches!(request, Request::Shutdown);
        let reply = handle(&inner, stamp, request);
        if reply.to_frame().write_to(&mut stream).is_err() {
            return;
        }
        if shutting_down {
            inner.stop.store(true, Ordering::SeqCst);
            // Unblock the accept loop so it observes the stop flag.
            let _ = TcpStream::connect(stream.local_addr().unwrap_or_else(|_| {
                // Loopback fallback; failing to unblock only delays exit
                // until the next incoming connection.
                SocketAddr::from(([127, 0, 0, 1], 0))
            }));
            return;
        }
    }
}

fn handle(inner: &NodeInner, stamp: ReplyStamp, request: Request) -> Response {
    let _span = bdsm_obs::span!("cluster.node.request", shard = stamp.shard as u64);
    match request {
        Request::Ping => Response::Pong(stamp),
        Request::Metrics => Response::Metrics(stamp, inner.server.metrics().to_json()),
        Request::Shutdown => Response::ShuttingDown(stamp),
        Request::Sweep { model, omegas } => {
            match lookup(inner, model).and_then(|id| inner.server.transfer_sweep(id, &omegas)) {
                Ok(mats) => Response::Sweep(stamp, mats),
                Err(e) => error_reply(stamp, &e),
            }
        }
        Request::Port {
            model,
            out_port,
            in_port,
            omegas,
        } => match lookup(inner, model).and_then(|id| {
            inner
                .server
                .port_response(id, out_port as usize, in_port as usize, &omegas)
        }) {
            Ok(samples) => Response::Port(stamp, samples),
            Err(e) => error_reply(stamp, &e),
        },
        Request::Transient { model, h, inputs } => {
            match lookup(inner, model).and_then(|id| inner.server.transient(id, h, &inputs)) {
                Ok(rows) => Response::Transient(stamp, rows),
                Err(e) => error_reply(stamp, &e),
            }
        }
    }
}

fn lookup(inner: &NodeInner, model: u64) -> Result<RomId, RomError> {
    inner
        .models
        .get(&model)
        .copied()
        .ok_or(RomError::UnknownModel(model as usize))
}

fn error_reply(stamp: ReplyStamp, e: &RomError) -> Response {
    let kind = match e {
        RomError::Query(_) => RemoteErrorKind::Query,
        RomError::UnknownModel(_) => RemoteErrorKind::UnknownModel,
        RomError::Linalg(_) => RemoteErrorKind::Numerical,
        RomError::Internal(_) => RemoteErrorKind::Internal,
        RomError::Io(_)
        | RomError::BadMagic
        | RomError::UnsupportedVersion { .. }
        | RomError::Truncated { .. }
        | RomError::Corrupt(_) => RemoteErrorKind::Artifact,
        _ => RemoteErrorKind::Other,
    };
    Response::Error(stamp, kind, format!("{e}"))
}
