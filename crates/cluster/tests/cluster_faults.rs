//! Fault-injection hardening of the distribution layer: armed
//! `faultpoint!` sites drop shard connections mid-request, kill the
//! accept loop, and panic router workers — every failure must surface
//! as a **typed [`ClusterError`]**, counted in the router metrics,
//! never a hang (admission + socket timeouts bound every path) and
//! never a panic across the public API.
//!
//! Fault sites are process-global (`bdsm_obs::fault`); every test
//! serializes on one lock.

use bdsm_cluster::{ClientConfig, ClusterClient, ClusterError, NodeConfig, ShardNode, ShardPlan};
use bdsm_core::synth::rc_grid;
use bdsm_rom::{Reducer, RomServer};
use std::sync::Mutex;
use std::time::Duration;

static FAULT_LOCK: Mutex<()> = Mutex::new(());

fn locked() -> std::sync::MutexGuard<'static, ()> {
    FAULT_LOCK.lock().unwrap_or_else(|p| p.into_inner())
}

const MODEL: u64 = 1;

fn grid_server() -> (RomServer, bdsm_rom::RomId) {
    let net = rc_grid(6, 8, 1.0, 1e-3, 2.0);
    let reducer = Reducer::builder()
        .blocks(3)
        .jomega_shifts(&[5.0e2, 2.0e3])
        .build()
        .expect("valid reducer");
    let artifact = reducer.reduce_to_artifact(&net).expect("reduce");
    let mut server = RomServer::new();
    let id = server.load_artifact(artifact);
    (server, id)
}

fn fast_config(max_retries: u32) -> ClientConfig {
    ClientConfig {
        max_in_flight: 16,
        max_retries,
        backoff: Duration::from_millis(5),
        io_timeout: Duration::from_millis(500),
    }
}

/// One single-shard loopback cluster over the small grid model.
fn one_shard_cluster(max_retries: u32) -> (ShardNode, ClusterClient, ShardPlan) {
    let (server, id) = grid_server();
    let plan = ShardPlan::by_model(&[MODEL], 1).expect("plan");
    let digest = plan.digest();
    let node = ShardNode::spawn(
        server,
        vec![(MODEL, id)],
        NodeConfig {
            shard_id: 0,
            plan_digest: digest,
            io_timeout: Duration::from_millis(500),
        },
        "127.0.0.1:0",
    )
    .expect("bind node");
    let addr = node.addr();
    let client =
        ClusterClient::connect(plan.clone(), &[addr], fast_config(max_retries)).expect("client");
    (node, client, plan)
}

fn sweep_omegas() -> Vec<f64> {
    (0..12).map(|i| 100.0 * 1.4_f64.powi(i)).collect()
}

#[test]
fn connection_drop_mid_request_is_unavailable_without_retries() {
    let _g = locked();
    let (_node, client, _plan) = one_shard_cluster(0);
    let omegas = sweep_omegas();
    // Warm the connection so the drop happens mid-stream, not at connect.
    client.ping(0).expect("warm ping");

    // `cluster.node.request` panics the connection thread after the
    // request is read and before any reply — the client sees its pooled
    // stream die mid-RPC. With zero retries that is a typed
    // `Unavailable`, never a hang (the socket timeout bounds the read).
    let guard = bdsm_obs::fault::arm("cluster.node.request");
    let err = client
        .transfer_sweep(MODEL, &omegas)
        .expect_err("dropped connection must fail the query");
    drop(guard);
    match err {
        ClusterError::Unavailable {
            shard: 0,
            attempts: 1,
            ..
        } => {}
        other => panic!("expected Unavailable after 1 attempt, got {other:?}"),
    }
    let m = client.metrics();
    assert_eq!(m.unavailable, 1, "failure must be counted: {m:?}");

    // The fault fired once; the next query reconnects and succeeds.
    let sweep = client.transfer_sweep(MODEL, &omegas).expect("recovered");
    assert_eq!(sweep.len(), omegas.len());
    assert!(client.metrics().reconnects >= 1);
}

#[test]
fn connection_drop_mid_request_recovers_via_retry() {
    let _g = locked();
    let (_node, client, _plan) = one_shard_cluster(2);
    let omegas = sweep_omegas();
    client.ping(0).expect("warm ping");

    let baseline = client
        .transfer_sweep(MODEL, &omegas)
        .expect("baseline sweep");
    let guard = bdsm_obs::fault::arm("cluster.node.request");
    // The first attempt dies mid-request; retry reconnects and the
    // replayed request succeeds — and the bytes are identical to the
    // undisturbed sweep (the fault can change timing, never results).
    let retried = client
        .transfer_sweep(MODEL, &omegas)
        .expect("retry must recover a dropped connection");
    drop(guard);
    assert_eq!(retried, baseline, "retry changed served bytes");
    let m = client.metrics();
    assert!(m.retries >= 1, "retry path must be counted: {m:?}");
    assert!(m.reconnects >= 1, "reconnect must be counted: {m:?}");
    assert_eq!(m.unavailable, 0);
}

#[test]
fn dead_accept_loop_is_unavailable_for_new_connections_only() {
    let _g = locked();
    let (node, client, plan) = one_shard_cluster(0);
    client.ping(0).expect("pooled connection established");

    // Arming `cluster.node.accept` kills the accept thread on its next
    // loop iteration — i.e. right after it accepts one more connection.
    let guard = bdsm_obs::fault::arm("cluster.node.accept");
    let fresh = ClusterClient::connect(plan.clone(), &[node.addr()], fast_config(0))
        .expect("second client");
    // This connection gets accepted, then the accept loop dies. (Timing
    // decides whether this ping also gets served; either outcome is
    // in-contract, so only the *next* client is asserted on.)
    let _ = fresh.ping(0);
    drop(guard);

    let third = ClusterClient::connect(plan, &[node.addr()], fast_config(0)).expect("third client");
    let err = third
        .ping(0)
        .expect_err("no accept loop: new connections must time out as typed errors");
    assert!(
        matches!(err, ClusterError::Unavailable { shard: 0, .. }),
        "got {err:?}"
    );

    // The pre-fault pooled connection keeps its own serving thread.
    client
        .ping(0)
        .expect("existing connections survive an accept-loop death");
}

#[test]
fn router_worker_panic_is_typed_and_counted_then_recovers() {
    let _g = locked();
    let (_node, client, _plan) = one_shard_cluster(1);
    let omegas = sweep_omegas();
    client.ping(0).expect("warm ping");

    let guard = bdsm_obs::fault::arm("cluster.router.worker");
    let err = client
        .transfer_sweep(MODEL, &omegas)
        .expect_err("injected router panic must fail the query");
    drop(guard);
    match err {
        ClusterError::Internal(msg) => {
            assert!(
                msg.contains("injected fault") || msg.contains("panicked"),
                "unexpected contained-panic message: {msg}"
            );
        }
        other => panic!("expected ClusterError::Internal, got {other:?}"),
    }
    let m = client.metrics();
    assert_eq!(m.worker_panics, 1, "contained panic must be counted: {m:?}");

    // Disarmed: the very same query succeeds.
    let sweep = client.transfer_sweep(MODEL, &omegas).expect("recovered");
    assert_eq!(sweep.len(), omegas.len());
    assert_eq!(client.metrics().worker_panics, 1);
}

#[test]
fn admission_control_fails_fast_as_overloaded() {
    let _g = locked();
    let (_node, _client, plan) = one_shard_cluster(0);
    // A zero-capacity client: every query must be refused immediately —
    // admission happens before any socket work, so this cannot block.
    let (node2, _, _) = one_shard_cluster(0);
    let choked = ClusterClient::connect(
        plan,
        &[node2.addr()],
        ClientConfig {
            max_in_flight: 0,
            ..fast_config(0)
        },
    )
    .expect("choked client");
    let err = choked
        .transfer_sweep(MODEL, &[1.0e3])
        .expect_err("zero in-flight budget must refuse");
    match err {
        ClusterError::Overloaded {
            in_flight: 0,
            limit: 0,
        } => {}
        other => panic!("expected Overloaded, got {other:?}"),
    }
    let m = choked.metrics();
    assert_eq!(m.overloaded, 1);
    assert_eq!(m.rpcs, 0, "admission must refuse before any RPC");
}

#[test]
fn remote_errors_stay_typed_end_to_end() {
    let _g = locked();
    let (_node, client, _plan) = one_shard_cluster(1);
    // Unknown model: typed at the plan level, no network touched.
    let err = client.transfer_sweep(99, &[1.0e3]).unwrap_err();
    assert!(matches!(err, ClusterError::UnknownModel(99)), "got {err:?}");
    // A malformed query crosses the wire and comes back as a typed
    // remote error, counted by the router.
    let err = client
        .transfer_sweep(MODEL, &[f64::NAN])
        .expect_err("NaN frequency must be refused by the shard");
    match err {
        ClusterError::Remote {
            shard: 0,
            kind,
            message,
        } => {
            assert_eq!(
                kind,
                bdsm_cluster::RemoteErrorKind::Query,
                "message: {message}"
            );
        }
        other => panic!("expected Remote(Query), got {other:?}"),
    }
    assert_eq!(client.metrics().remote_errors, 1);
    // The connection survives a remote error: next query serves.
    assert_eq!(client.transfer_sweep(MODEL, &[1.0e3]).unwrap().len(), 1);
}
