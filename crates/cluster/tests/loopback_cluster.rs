//! The distribution oracle at scale: a loopback cluster over a
//! 10,000-state grid whose replies must be **bitwise-equal** to a single
//! local `RomServer` — for shard-by-model and shard-by-frequency-band
//! placement, for sweep/port/transient queries, and for `BDSM_THREADS`
//! ∈ {1, 2, 5} (the stack's determinism contract makes the equality
//! exact, so any divergence in the wire, routing, or merge layers fails
//! loudly).
//!
//! The local oracle runs with a **bounded LRU shift cache**, so this
//! test simultaneously proves the PR-10 cache at 10⁴ end to end:
//! evictions occur, `misses == inserts` stays exact, the live count is
//! `inserts - evictions`, and none of it changes a single served byte.
//!
//! Single test in its own binary: it manipulates `BDSM_THREADS`.

use bdsm_cluster::{ClientConfig, ClusterClient, ClusterError, NodeConfig, ShardNode, ShardPlan};
use bdsm_core::engine::AdaptiveShiftOpts;
use bdsm_core::synth::rc_grid;
use bdsm_rom::{Reducer, RomArtifact, RomServer};
use std::time::Duration;

/// Pins `BDSM_THREADS` for a scope, restoring the prior value on drop.
struct Threads(Option<String>);

impl Threads {
    fn pin(n: &str) -> Self {
        let prev = std::env::var("BDSM_THREADS").ok();
        std::env::set_var("BDSM_THREADS", n);
        Threads(prev)
    }
}

impl Drop for Threads {
    fn drop(&mut self) {
        match self.0.take() {
            Some(v) => std::env::set_var("BDSM_THREADS", v),
            None => std::env::remove_var("BDSM_THREADS"),
        }
    }
}

const BIG_MODEL: u64 = 1;
const SMALL_MODEL: u64 = 2;

fn client_config() -> ClientConfig {
    ClientConfig {
        max_in_flight: 64,
        max_retries: 1,
        backoff: Duration::from_millis(10),
        io_timeout: Duration::from_secs(120),
    }
}

fn spawn_node(
    artifacts: &[(u64, &[u8])],
    shard_id: u32,
    plan_digest: u64,
) -> (ShardNode, std::net::SocketAddr) {
    let mut server = RomServer::new();
    let models = artifacts
        .iter()
        .map(|(model, bytes)| {
            let artifact = RomArtifact::from_bytes(bytes).expect("artifact bytes load");
            (*model, server.load_artifact(artifact))
        })
        .collect();
    let node = ShardNode::spawn(
        server,
        models,
        NodeConfig {
            shard_id,
            plan_digest,
            io_timeout: Duration::from_secs(120),
        },
        "127.0.0.1:0",
    )
    .expect("bind loopback shard");
    let addr = node.addr();
    (node, addr)
}

#[test]
fn loopback_cluster_replies_bitwise_equal_local_server_at_10k() {
    let _threads = Threads::pin("5");

    // ---- Build the 10⁴ headline model (adaptive + exact interfaces) and
    // a small sibling so shard-by-model has two models to place.
    let net = rc_grid(100, 100, 1.0, 1e-3, 2.0);
    let reducer = Reducer::builder()
        .blocks(4)
        .jomega_shifts(&[4.5e2])
        .moments(2)
        .budget(2000)
        .adaptive(AdaptiveShiftOpts {
            candidate_omegas: AdaptiveShiftOpts::log_grid(5.0e1, 4.0e3, 6),
            tol: 1e-6,
            max_shifts: 4,
        })
        .exact_interfaces()
        .sparse()
        .build()
        .expect("valid reducer");
    let (rm, report) = reducer.reduce_with_report(&net).expect("10k reduction");
    assert_eq!(rm.full_dim(), 10_000);
    let big = RomArtifact::from_model(&rm, Some(&report));
    let (env_lo, env_hi) = big
        .provenance
        .certificate
        .frequency_envelope()
        .expect("certified envelope");

    let small_net = rc_grid(6, 8, 1.0, 1e-3, 2.0);
    let small_reducer = Reducer::builder()
        .blocks(3)
        .jomega_shifts(&[5.0e2, 2.0e3])
        .build()
        .expect("valid small reducer");
    let small = small_reducer
        .reduce_to_artifact(&small_net)
        .expect("small reduce");

    let big_bytes = big.to_bytes();
    let small_bytes = small.to_bytes();

    // ---- Local oracle, with a bounded LRU cache (capacity 16 < the 64
    // frequencies each sweep touches → heavy eviction pressure).
    let mut local = RomServer::with_cache_capacity(16);
    let local_big = local.load_artifact(RomArtifact::from_bytes(&big_bytes).unwrap());
    let local_small = local.load_artifact(RomArtifact::from_bytes(&small_bytes).unwrap());

    // ---- Cluster A: shard-by-model over 2 shards.
    let plan_model = ShardPlan::by_model(&[BIG_MODEL, SMALL_MODEL], 2).expect("model plan");
    let digest_model = plan_model.digest();
    let (_node_m0, addr_m0) = spawn_node(&[(BIG_MODEL, &big_bytes)], 0, digest_model);
    let (_node_m1, addr_m1) = spawn_node(&[(SMALL_MODEL, &small_bytes)], 1, digest_model);
    let by_model = ClusterClient::connect(plan_model, &[addr_m0, addr_m1], client_config())
        .expect("by-model client");

    // ---- Cluster B: shard-by-frequency-band over 3 shards of the big
    // model's certified envelope; every shard holds the same artifact.
    let plan_band = ShardPlan::by_bands(BIG_MODEL, 3, env_lo, env_hi).expect("band plan");
    let digest_band = plan_band.digest();
    let band_nodes: Vec<(ShardNode, std::net::SocketAddr)> = (0..3)
        .map(|k| spawn_node(&[(BIG_MODEL, &big_bytes)], k, digest_band))
        .collect();
    let band_addrs: Vec<_> = band_nodes.iter().map(|(_, a)| *a).collect();
    let by_band =
        ClusterClient::connect(plan_band, &band_addrs, client_config()).expect("by-band client");

    // ---- Queries: the serve-path headline shapes.
    let omegas: Vec<f64> = (0..64)
        .map(|i| 50.0 * (4.0e3_f64 / 50.0).powf(i as f64 / 63.0))
        .collect();
    let m_inputs = big.num_inputs();
    let wave: Vec<Vec<f64>> = (0..50)
        .map(|s| vec![(0.11 * s as f64).sin(); m_inputs])
        .collect();
    let h = 1e-4;
    let small_omegas = [100.0, 1.0e3, 3.0e3];

    let mut reference: Option<(Vec<_>, Vec<_>, Vec<_>)> = None;
    for threads in ["1", "2", "5"] {
        let _t = Threads::pin(threads);

        let local_sweep = local
            .transfer_sweep(local_big, &omegas)
            .expect("local sweep");
        let local_port = local
            .port_response(local_big, 0, 0, &omegas)
            .expect("local port");
        let local_transient = local
            .transient(local_big, h, &wave)
            .expect("local transient");

        // Shard-by-model: the whole sweep lands on shard 0.
        let sweep_m = by_model
            .transfer_sweep(BIG_MODEL, &omegas)
            .expect("by-model sweep");
        assert_eq!(
            sweep_m, local_sweep,
            "by-model sweep differs from local at BDSM_THREADS={threads}"
        );
        // Shard-by-band: the sweep splits across all 3 shards and merges
        // back into ω-order.
        let sweep_b = by_band
            .transfer_sweep(BIG_MODEL, &omegas)
            .expect("by-band sweep");
        assert_eq!(
            sweep_b, local_sweep,
            "by-band sweep differs from local at BDSM_THREADS={threads}"
        );

        let port_m = by_model
            .port_response(BIG_MODEL, 0, 0, &omegas)
            .expect("by-model port");
        let port_b = by_band
            .port_response(BIG_MODEL, 0, 0, &omegas)
            .expect("by-band port");
        assert_eq!(port_m, local_port, "by-model port differs at {threads}");
        assert_eq!(port_b, local_port, "by-band port differs at {threads}");

        let tr_m = by_model
            .transient(BIG_MODEL, h, &wave)
            .expect("by-model transient");
        let tr_b = by_band
            .transient(BIG_MODEL, h, &wave)
            .expect("by-band transient");
        assert_eq!(
            tr_m, local_transient,
            "by-model transient differs at {threads}"
        );
        assert_eq!(
            tr_b, local_transient,
            "by-band transient differs at {threads}"
        );

        // And across thread counts: everything equals the first round.
        match &reference {
            None => reference = Some((local_sweep, local_port, local_transient)),
            Some((s, p, t)) => {
                assert_eq!(&local_sweep, s, "local sweep varies with threads");
                assert_eq!(&local_port, p, "local port varies with threads");
                assert_eq!(&local_transient, t, "local transient varies with threads");
            }
        }
    }

    // The second model answers through its own shard, equal to local.
    let local_small_sweep = local
        .transfer_sweep(local_small, &small_omegas)
        .expect("local small sweep");
    assert_eq!(
        by_model
            .transfer_sweep(SMALL_MODEL, &small_omegas)
            .expect("small sweep via shard 1"),
        local_small_sweep
    );

    // ---- Batched, coalesced queries reproduce the unbatched answers.
    let batch = by_band
        .sweep_batch(&[
            (BIG_MODEL, omegas[..20].to_vec()),
            (BIG_MODEL, omegas[20..].to_vec()),
            (BIG_MODEL, omegas.clone()),
        ])
        .expect("coalesced sweep batch");
    let (ref_sweep, ref_port, _) = reference.as_ref().unwrap();
    assert_eq!(batch[0], ref_sweep[..20]);
    assert_eq!(batch[1], ref_sweep[20..]);
    assert_eq!(batch[2][..], ref_sweep[..]);
    let port_batch = by_band
        .port_batch(&[
            (BIG_MODEL, 0, 0, omegas[..32].to_vec()),
            (BIG_MODEL, 0, 0, omegas[32..].to_vec()),
        ])
        .expect("coalesced port batch");
    assert_eq!(port_batch[0], ref_port[..32]);
    assert_eq!(port_batch[1], ref_port[32..]);
    let router = by_band.metrics();
    assert!(
        router.coalesced_queries > 0,
        "batch APIs must coalesce same-(shard, model) queries: {router:?}"
    );
    assert_eq!(router.worker_panics, 0);
    assert_eq!(router.remote_errors, 0);

    // ---- LRU e2e at 10⁴: the bounded oracle evicted heavily, kept the
    // accounting exact, and (proven by every equality above) never
    // changed a served byte.
    let lm = local.metrics();
    assert!(
        lm.cache.evictions > 0,
        "capacity 16 under 64-shift sweeps must evict"
    );
    assert_eq!(
        lm.cache.misses, lm.cache.inserts,
        "misses == inserts must stay exact"
    );
    let live = (local.cached_shifts(local_big).unwrap() + local.cached_shifts(local_small).unwrap())
        as u64;
    assert_eq!(
        live,
        lm.cache.inserts - lm.cache.evictions,
        "cached_shifts must equal inserts - evictions"
    );
    assert!(lm.to_json().contains("\"evictions\""));

    // ---- Audit: shard metrics are reachable over the wire, and a client
    // with the wrong plan is refused with a typed mismatch.
    let shard_json = by_band
        .shard_metrics(0)
        .expect("shard metrics over the wire");
    assert!(shard_json.contains("\"cache\""));
    let wrong_plan = ShardPlan::by_model(&[BIG_MODEL], 1).expect("wrong plan");
    let stray = ClusterClient::connect(wrong_plan, &[band_addrs[0]], client_config())
        .expect("stray client");
    match stray.transfer_sweep(BIG_MODEL, &small_omegas) {
        Err(ClusterError::PlanMismatch {
            shard: 0,
            expected,
            found,
        }) => {
            assert_eq!(found, digest_band);
            assert_ne!(expected, found);
        }
        other => panic!("expected PlanMismatch, got {other:?}"),
    }

    // ---- Orderly teardown over the wire.
    for result in by_band.shutdown_all() {
        result.expect("graceful shard shutdown");
    }
}
