//! Deterministic corruption fuzz of the cluster wire protocol, in the
//! artifact-fuzz style (PR 8): seeded byte flips, truncations, oversized
//! length prefixes, and trailing garbage over real request/response
//! frames must all surface as **typed [`WireError`]s** — zero panics —
//! and the pristine frames must still round-trip bitwise afterwards.
//!
//! Frame integrity math: magic/version/length are checked structurally
//! and everything through the payload is covered by the FNV-1a trailer,
//! so *any* single-bit flip inside a frame is rejected. Payload-level
//! decoders are fuzzed separately (with checksums recomputed so the
//! corruption reaches them): they may reject with a typed error or
//! decode a different-but-valid message, but they may never panic and
//! never over-allocate past the declared frame.

use bdsm_cluster::wire::{Frame, RemoteErrorKind, ReplyStamp, Request, Response, WireError};
use bdsm_cluster::WireError as ReexportedWireError;
use bdsm_core::transfer::CMatrix;
use bdsm_linalg::Complex64;

/// Deterministic xorshift64* — no clock or platform dependence.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

fn sample_frames() -> Vec<Frame> {
    let stamp = ReplyStamp {
        shard: 1,
        plan_digest: 0x0123_4567_89ab_cdef,
    };
    let mut m = CMatrix::zeros(3, 2);
    m[(0, 0)] = Complex64 {
        re: -0.0,
        im: 1.0e-310,
    };
    m[(2, 1)] = Complex64 {
        re: 6.25e11,
        im: -1.5,
    };
    vec![
        Request::Ping.to_frame(),
        Request::Sweep {
            model: 9,
            omegas: (0..48).map(|i| 50.0 * 1.1f64.powi(i)).collect(),
        }
        .to_frame(),
        Request::Port {
            model: 9,
            out_port: 2,
            in_port: 0,
            omegas: vec![1.0e3, 2.0e3],
        }
        .to_frame(),
        Request::Transient {
            model: 4,
            h: 1e-4,
            inputs: (0..20).map(|s| vec![s as f64, -(s as f64)]).collect(),
        }
        .to_frame(),
        Response::Sweep(stamp, vec![m, CMatrix::zeros(1, 4)]).to_frame(),
        Response::Port(stamp, vec![Complex64 { re: 0.5, im: -0.25 }; 7]).to_frame(),
        Response::Transient(stamp, vec![vec![1.0, 2.0], vec![]]).to_frame(),
        Response::Metrics(stamp, "{\"cache\": {\"evictions\": 3}}".into()).to_frame(),
        Response::Error(stamp, RemoteErrorKind::Numerical, "singular shift".into()).to_frame(),
    ]
}

/// Decode through both entry points (buffer and stream); both must agree
/// on rejection and neither may panic.
fn expect_typed_rejection(mutated: &[u8], what: &str) {
    for (path, result) in [
        (
            "decode",
            std::panic::catch_unwind(|| Frame::decode(mutated).map(|_| ())),
        ),
        (
            "read_from",
            std::panic::catch_unwind(|| {
                let mut cursor = std::io::Cursor::new(mutated.to_vec());
                // A truncated stream surfaces as Io(UnexpectedEof) here —
                // also typed, also fine.
                Frame::read_from(&mut cursor).map(|_| ())
            }),
        ),
    ] {
        let res = result.unwrap_or_else(|_| panic!("{path} panicked on {what}"));
        let err = res
            .err()
            .unwrap_or_else(|| panic!("{path} accepted corruption: {what}"));
        assert!(
            matches!(
                err,
                WireError::Io(_)
                    | WireError::BadMagic
                    | WireError::UnsupportedVersion { .. }
                    | WireError::Oversized { .. }
                    | WireError::Truncated { .. }
                    | WireError::ChecksumMismatch { .. }
                    | WireError::Corrupt(_)
                    | WireError::UnknownKind(_)
            ),
            "{path} / {what}: unexpected error class {err:?}"
        );
    }
}

#[test]
fn frame_corruption_yields_typed_errors_never_panics() {
    let mut rng = Rng(0xBD5_0C1A_57E4_F00D);
    for (fi, frame) in sample_frames().into_iter().enumerate() {
        let bytes = frame.encode();
        assert_eq!(Frame::decode(&bytes).unwrap(), frame, "baseline decodes");

        // Single-bit flips at 256 seeded positions plus both ends: every
        // byte is covered by a structural check or the checksum.
        let mut positions: Vec<usize> = (0..256)
            .map(|_| (rng.next() as usize) % bytes.len())
            .collect();
        positions.push(0);
        positions.push(bytes.len() - 1);
        for pos in positions {
            let flip = 1u8 << (rng.next() % 8) as u8;
            let mut mutated = bytes.clone();
            mutated[pos] ^= flip;
            expect_typed_rejection(&mutated, &format!("frame {fi}: flip {flip:#04x} at {pos}"));
        }

        // Truncations: all header prefixes + 128 seeded interior cuts +
        // one byte short of complete.
        for cut in
            (0..21.min(bytes.len())).chain((0..128).map(|_| (rng.next() as usize) % bytes.len()))
        {
            expect_typed_rejection(&bytes[..cut], &format!("frame {fi}: truncate to {cut}"));
        }
        expect_typed_rejection(
            &bytes[..bytes.len() - 1],
            &format!("frame {fi}: drop last byte"),
        );

        // Oversized length prefix: must reject *before* allocating.
        for oversized in [u64::MAX, 1 << 60, 256 * 1024 * 1024 + 1] {
            let mut mutated = bytes.clone();
            mutated[13..21].copy_from_slice(&oversized.to_le_bytes());
            expect_typed_rejection(&mutated, &format!("frame {fi}: length {oversized}"));
        }

        // Trailing garbage after a complete frame.
        let mut extended = bytes.clone();
        extended.extend_from_slice(&[0x5A; 9]);
        // Stream reads stop at the frame boundary, so only the buffer
        // path sees the residue — it must reject it.
        let res = std::panic::catch_unwind(|| Frame::decode(&extended));
        assert!(
            matches!(res, Ok(Err(WireError::Corrupt(_)))),
            "frame {fi}: trailing garbage accepted or panicked"
        );

        // And the pristine bytes still decode bitwise after all of that.
        let reloaded = Frame::decode(&bytes).unwrap();
        assert_eq!(reloaded, frame, "frame {fi}: pristine round-trip broke");
        assert_eq!(reloaded.encode(), bytes, "frame {fi}: re-encode differs");
    }
}

#[test]
fn payload_decoder_fuzz_never_panics_or_overallocates() {
    let mut rng = Rng(0xFEED_FACE_0BD5_0001);
    for frame in sample_frames() {
        let is_request = frame.kind < 128;
        // Flip payload bytes and *re-frame* (fresh checksum), so the
        // corruption reaches the typed decoders instead of the checksum.
        for _ in 0..200 {
            let mut payload = frame.payload.clone();
            if payload.is_empty() {
                break;
            }
            let pos = (rng.next() as usize) % payload.len();
            payload[pos] ^= 1u8 << (rng.next() % 8) as u8;
            let reframed = Frame {
                kind: frame.kind,
                payload,
            };
            let outcome = std::panic::catch_unwind(|| {
                if is_request {
                    Request::from_frame(&reframed).map(|_| ())
                } else {
                    Response::from_frame(&reframed).map(|_| ())
                }
            })
            .expect("payload decoder panicked");
            if let Err(err) = outcome {
                assert!(
                    matches!(
                        err,
                        WireError::Truncated { .. }
                            | WireError::Corrupt(_)
                            | WireError::UnknownKind(_)
                    ),
                    "payload fuzz: unexpected error class {err:?}"
                );
            }
        }
        // Truncated payloads (structure cut mid-field).
        for _ in 0..100 {
            let cut = (rng.next() as usize) % (frame.payload.len() + 1);
            let reframed = Frame {
                kind: frame.kind,
                payload: frame.payload[..cut].to_vec(),
            };
            let outcome = std::panic::catch_unwind(|| {
                if is_request {
                    Request::from_frame(&reframed).map(|_| ())
                } else {
                    Response::from_frame(&reframed).map(|_| ())
                }
            })
            .expect("payload decoder panicked on truncation");
            // A cut payload may still parse if it lands on a boundary of
            // a shorter valid message ONLY when every trailing byte is
            // consumed — the `finish()` rule makes most cuts Truncated or
            // Corrupt; either way, no panic is the contract.
            if let Err(err) = outcome {
                assert!(
                    matches!(
                        err,
                        WireError::Truncated { .. }
                            | WireError::Corrupt(_)
                            | WireError::UnknownKind(_)
                    ),
                    "truncation fuzz: unexpected error class {err:?}"
                );
            }
        }
    }
    // Inner length prefixes are alloc-bounded by the payload that is
    // actually present: a sweep claiming 2^40 frequencies in a 16-byte
    // payload must reject as Truncated without allocating.
    let mut payload = Vec::new();
    payload.extend_from_slice(&1u64.to_le_bytes());
    payload.extend_from_slice(&(1u64 << 40).to_le_bytes());
    let bomb = Frame { kind: 2, payload };
    assert!(matches!(
        Request::from_frame(&bomb),
        Err(WireError::Truncated { .. })
    ));
    // The same bound holds on the reply path (matrix dimension words).
    let mut payload = Vec::new();
    payload.extend_from_slice(&0u32.to_le_bytes()); // shard
    payload.extend_from_slice(&0u64.to_le_bytes()); // digest
    payload.extend_from_slice(&1u64.to_le_bytes()); // one matrix
    payload.extend_from_slice(&(1u64 << 50).to_le_bytes()); // nrows bomb
    payload.extend_from_slice(&(1u64 << 50).to_le_bytes()); // ncols bomb
    let bomb = Frame { kind: 130, payload };
    assert!(matches!(
        Response::from_frame(&bomb),
        Err(WireError::Truncated { .. } | WireError::Corrupt(_))
    ));
    // Type re-export sanity: the façade-visible error is the same type.
    let _: fn(ReexportedWireError) = |_| {};
}
