pub fn placeholder() {}
