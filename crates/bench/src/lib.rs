//! Dependency-free timing harness for BDSM hot paths.
//!
//! Criterion is not in the dependency set, so this crate provides a small
//! wall-clock harness with warmup and per-iteration statistics — enough to
//! compare full-vs-reduced evaluation cost and to track regressions until a
//! dedicated benchmark suite lands.

pub mod json;

use std::fmt;
use std::time::{Duration, Instant};

/// Timing result of one measured closure.
#[derive(Debug, Clone)]
pub struct Timing {
    /// Label of the measured operation.
    pub name: String,
    /// Number of measured iterations.
    pub iters: u32,
    /// Total wall-clock time across the measured iterations.
    pub total: Duration,
    /// Fastest single iteration.
    pub min: Duration,
    /// Slowest single iteration.
    pub max: Duration,
}

impl Timing {
    /// Mean time per iteration.
    pub fn per_iter(&self) -> Duration {
        self.total / self.iters.max(1)
    }
}

impl fmt::Display for Timing {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {:?}/iter (iters: {}, min {:?}, max {:?})",
            self.name,
            self.per_iter(),
            self.iters,
            self.min,
            self.max
        )
    }
}

/// Times `f` over `iters` iterations after `warmup` unmeasured runs.
///
/// # Panics
///
/// Panics if `iters == 0`.
pub fn time_with_warmup(name: &str, warmup: u32, iters: u32, mut f: impl FnMut()) -> Timing {
    assert!(iters > 0, "time_with_warmup: need at least one iteration");
    for _ in 0..warmup {
        f();
    }
    let mut total = Duration::ZERO;
    let mut min = Duration::MAX;
    let mut max = Duration::ZERO;
    for _ in 0..iters {
        let t0 = Instant::now();
        f();
        let dt = t0.elapsed();
        total += dt;
        min = min.min(dt);
        max = max.max(dt);
    }
    Timing {
        name: name.to_string(),
        iters,
        total,
        min,
        max,
    }
}

/// Times `f` over `iters` iterations with a single warmup run.
///
/// # Panics
///
/// Panics if `iters == 0`.
pub fn time(name: &str, iters: u32, f: impl FnMut()) -> Timing {
    time_with_warmup(name, 1, iters, f)
}

/// Formats a set of timings as an aligned report, one line per entry.
pub fn format_report(timings: &[Timing]) -> String {
    let width = timings.iter().map(|t| t.name.len()).max().unwrap_or(0);
    let mut out = String::new();
    for t in timings {
        out.push_str(&format!(
            "{:width$}  {:>12?}/iter  ({} iters)\n",
            t.name,
            t.per_iter(),
            t.iters,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timing_accumulates_and_bounds_hold() {
        let mut count = 0u64;
        let t = time_with_warmup("busy-loop", 2, 5, || {
            count += 1;
            std::hint::black_box((0..1000).sum::<u64>());
        });
        assert_eq!(count, 7); // 2 warmup + 5 measured
        assert_eq!(t.iters, 5);
        assert!(t.min <= t.per_iter() && t.per_iter() <= t.max);
        assert!(t.total >= t.min * 5);
        assert!(t.to_string().contains("busy-loop"));
    }

    #[test]
    fn reduction_speedup_is_measurable() {
        // The point of the whole exercise: evaluating the reduced transfer
        // function must be much cheaper than the full one.
        use bdsm_core::krylov::KrylovOpts;
        use bdsm_core::reduce::{reduce_network, ReductionOpts, SolverBackend};
        use bdsm_core::synth::rc_ladder;
        use bdsm_core::transfer::eval_transfer;
        use bdsm_linalg::Complex64;

        let net = rc_ladder(120, 1.0, 1e-3, 2.0);
        let opts = ReductionOpts {
            num_blocks: 4,
            krylov: KrylovOpts {
                expansion_points: vec![1.0e3],
                jomega_points: vec![],
                moments_per_point: 3,
                deflation_tol: 1e-12,
                ortho: Default::default(),
            },
            rank_tol: 1e-12,
            max_reduced_dim: None,
            backend: SolverBackend::Sparse,
            ..ReductionOpts::default()
        };
        let rm = reduce_network(&net, &opts).unwrap();
        let full = rm.full.to_dense();
        let s = Complex64::jomega(500.0);
        let t_full = time("full-eval", 3, || {
            std::hint::black_box(eval_transfer(&full.g, &full.c, &full.b, &full.l, s).unwrap());
        });
        let t_red = time("reduced-eval", 3, || {
            std::hint::black_box(eval_transfer(&rm.g, &rm.c, &rm.b, &rm.l, s).unwrap());
        });
        // n = 120 vs q ≈ 24: the dense O(n³) gap must show clearly.
        assert!(
            t_red.per_iter() < t_full.per_iter(),
            "reduced eval ({:?}) not faster than full ({:?})",
            t_red.per_iter(),
            t_full.per_iter()
        );
    }

    #[test]
    fn report_formats_all_entries() {
        let t1 = time("a", 1, || {});
        let t2 = time("longer-name", 1, || {});
        let rep = format_report(&[t1, t2]);
        assert!(rep.contains("a ") && rep.contains("longer-name"));
        assert_eq!(rep.lines().count(), 2);
    }

    #[test]
    #[should_panic(expected = "at least one iteration")]
    fn zero_iters_rejected() {
        time("nope", 0, || {});
    }
}
