//! Minimal JSON reader for the benchmark artifact trail.
//!
//! The dependency set has no serde, and the gate binary only needs to read
//! back the hand-rolled `BENCH_scaling.json` records, so this is a small
//! recursive-descent parser over the JSON grammar subset those files use
//! (objects, arrays, numbers, strings without escapes beyond `\"` and
//! `\\`, booleans, null). It is strict about structure — trailing garbage
//! and malformed values are errors, not best-effort guesses — because a
//! silently misparsed baseline would defeat the regression gate.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (always carried as `f64`; the bench records stay
    /// well inside its exact-integer range).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is irrelevant to the gate, so a sorted
    /// map keeps lookups simple.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Member lookup on an object, `None` elsewhere.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// Numeric value, `None` for non-numbers.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// Array items, `None` for non-arrays.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Convenience: `self[key]` as a number.
    pub fn num(&self, key: &str) -> Option<f64> {
        self.get(key).and_then(Json::as_f64)
    }
}

/// A parse failure with its byte offset.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What the parser expected.
    pub what: &'static str,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json parse error at byte {}: {}", self.at, self.what)
    }
}

impl std::error::Error for JsonError {}

/// Parses a complete JSON document (surrounding whitespace allowed).
///
/// # Errors
///
/// Returns [`JsonError`] on malformed input or trailing content.
pub fn parse(text: &str) -> Result<Json, JsonError> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(JsonError {
            at: pos,
            what: "end of input",
        });
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, ch: u8, what: &'static str) -> Result<(), JsonError> {
    if *pos < b.len() && b[*pos] == ch {
        *pos += 1;
        Ok(())
    } else {
        Err(JsonError { at: *pos, what })
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => parse_obj(b, pos),
        Some(b'[') => parse_arr(b, pos),
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, b"true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, b"false", Json::Bool(false)),
        Some(b'n') => parse_lit(b, pos, b"null", Json::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_num(b, pos),
        _ => Err(JsonError {
            at: *pos,
            what: "a JSON value",
        }),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &[u8], v: Json) -> Result<Json, JsonError> {
    if b.len() >= *pos + lit.len() && &b[*pos..*pos + lit.len()] == lit {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(JsonError {
            at: *pos,
            what: "a literal (true/false/null)",
        })
    }
}

fn parse_num(b: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len()
        && (b[*pos].is_ascii_digit() || matches!(b[*pos], b'.' | b'e' | b'E' | b'+' | b'-'))
    {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Json::Num)
        .ok_or(JsonError {
            at: start,
            what: "a number",
        })
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    let start = *pos;
    expect(b, pos, b'"', "an opening quote")?;
    // Accumulate raw bytes (multi-byte UTF-8 sequences pass through
    // intact) and validate once at the closing quote; escapes only ever
    // insert ASCII, so the result is valid whenever the source was.
    let mut out: Vec<u8> = Vec::new();
    while *pos < b.len() {
        match b[*pos] {
            b'"' => {
                *pos += 1;
                return String::from_utf8(out).map_err(|_| JsonError {
                    at: start,
                    what: "valid UTF-8 string content",
                });
            }
            b'\\' => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push(b'"'),
                    Some(b'\\') => out.push(b'\\'),
                    Some(b'n') => out.push(b'\n'),
                    Some(b't') => out.push(b'\t'),
                    _ => {
                        return Err(JsonError {
                            at: *pos,
                            what: "a supported escape",
                        })
                    }
                }
                *pos += 1;
            }
            c => {
                out.push(c);
                *pos += 1;
            }
        }
    }
    Err(JsonError {
        at: *pos,
        what: "a closing quote",
    })
}

fn parse_arr(b: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    expect(b, pos, b'[', "an opening bracket")?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => {
                return Err(JsonError {
                    at: *pos,
                    what: "',' or ']'",
                })
            }
        }
    }
}

fn parse_obj(b: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    expect(b, pos, b'{', "an opening brace")?;
    let mut map = BTreeMap::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(map));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':', "':' after an object key")?;
        let value = parse_value(b, pos)?;
        map.insert(key, value);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            _ => {
                return Err(JsonError {
                    at: *pos,
                    what: "',' or '}'",
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_bench_shaped_document() {
        let doc = r#"{
  "bench": "scaling",
  "omega": 450.0,
  "results": [
    {"n": 500, "t_reduce_us": 1234.5, "t_dense_factor_solve_us": null, "ok": true},
    {"n": 10000, "t_reduce_us": 9.5e4, "neg": -2}
  ]
}"#;
        let v = parse(doc).unwrap();
        assert_eq!(v.get("bench"), Some(&Json::Str("scaling".into())));
        assert_eq!(v.num("omega"), Some(450.0));
        let rows = v.get("results").unwrap().as_arr().unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].num("n"), Some(500.0));
        assert_eq!(rows[0].get("t_dense_factor_solve_us"), Some(&Json::Null));
        assert_eq!(rows[0].get("ok"), Some(&Json::Bool(true)));
        assert_eq!(rows[1].num("t_reduce_us"), Some(9.5e4));
        assert_eq!(rows[1].num("neg"), Some(-2.0));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1, 2",
            "{\"a\" 1}",
            "{\"a\": 1} trailing",
            "nope",
            "\"unterminated",
            "[1,]",
        ] {
            assert!(parse(bad).is_err(), "accepted malformed input: {bad:?}");
        }
    }

    #[test]
    fn string_escapes_round_trip() {
        let v = parse(r#""a\"b\\c\nd""#).unwrap();
        assert_eq!(v, Json::Str("a\"b\\c\nd".into()));
    }

    #[test]
    fn non_ascii_strings_survive() {
        let v = parse(r#""100×100 mesh — µs""#).unwrap();
        assert_eq!(v, Json::Str("100×100 mesh — µs".into()));
    }

    #[test]
    fn accessors_return_none_on_type_mismatch() {
        let v = parse("[1]").unwrap();
        assert!(v.get("x").is_none());
        assert!(v.as_f64().is_none());
        assert_eq!(v.as_arr().map(<[Json]>::len), Some(1));
        assert!(parse("3.5").unwrap().as_arr().is_none());
        let e = parse("{x}").unwrap_err();
        assert!(e.to_string().contains("byte"));
    }
}
