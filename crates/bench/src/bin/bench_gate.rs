//! Regression gate over the scaling-bench artifact.
//!
//! Compares a fresh `BENCH_scaling.json` against the checked-in baseline
//! and **fails (exit 1)** when the end-to-end reduce time at the gate size
//! (default `n = 10_000`) regresses by more than the allowed factor
//! (default 2×), or when the recorded parallel reduce speedup at
//! `n = 50_000` falls below `max(2.0, 0.4 × reduce_workers)` (skipped with
//! `n/a` on single-worker hosts, where the bench emits a `null` speedup).
//! When a `BENCH_cluster.json` record is present it is gated too:
//! distributed replies must be **bitwise-equal** to the local server
//! (exact — no noise allowance) and the batched cluster throughput must
//! reach ≥ 1.0× the single-server baseline (skipped on single-CPU hosts,
//! where the bench emits a `null` ratio).
//! Alongside the verdict it prints a GitHub-flavored markdown stage-time
//! comparison — including the per-point/merge split of the Krylov stage —
//! which CI appends to the job summary.
//!
//! Usage:
//! `bench_gate [current.json] [baseline.json]`
//! (defaults: `BENCH_scaling.json`,
//! `crates/bench/baseline/BENCH_scaling_baseline.json`).
//!
//! Environment knobs:
//! - `BENCH_GATE_N` — gate size (states) to compare at;
//! - `BENCH_GATE_FACTOR` — allowed `current / baseline` ratio before the
//!   gate fails (runner-to-runner noise is why this is 2×, not 1.1×).

use bdsm_bench::json::{parse, Json};
use std::process::ExitCode;

const DEFAULT_CURRENT: &str = "BENCH_scaling.json";
const DEFAULT_BASELINE: &str = "crates/bench/baseline/BENCH_scaling_baseline.json";
/// The distributed-serving record (no baseline: its bars are absolute).
const DEFAULT_CLUSTER: &str = "BENCH_cluster.json";

/// The per-stage fields shown in the comparison table, keyed by JSON name.
const STAGES: [(&str, &str); 11] = [
    ("stage_assemble_us", "assemble"),
    ("stage_partition_us", "partition"),
    ("stage_krylov_us", "krylov"),
    ("krylov_point_us", "krylov: per-point"),
    ("krylov_merge_us", "krylov: merge"),
    ("stage_svd_us", "svd"),
    ("stage_project_us", "project"),
    ("stage_certify_us", "certify"),
    ("t_sweep_us", "sweep (full model)"),
    ("t_sparse_factor_solve_us", "factor+solve"),
    ("t_reduce_us", "reduce (end-to-end)"),
];

/// Size whose parallel-speedup record the speedup gate reads: the largest
/// default sweep size, where the Krylov fan-out has the most grist.
const SPEEDUP_GATE_N: f64 = 50_000.0;

/// Gates the parallel reduce speedup at `n = 50_000`: the panel-blocked
/// merge tree and the pipelined shift factorizations must actually buy
/// wall-clock, so the recorded `reduce_parallel_speedup` is held to
/// `max(2.0, 0.4 × reduce_workers)`. A `null` speedup is the bench's
/// single-worker convention — there was no parallel/serial contrast — and
/// skips the gate (printed as `n/a`), as does an artifact whose size list
/// did not include 50k. Returns `false` when the bar is missed.
fn gate_parallel_speedup(current: &Json) -> bool {
    let row = match find_row(current, SPEEDUP_GATE_N) {
        Some(r) => r,
        None => {
            println!("\n(no record with n = {SPEEDUP_GATE_N}; parallel speedup not gated)");
            return true;
        }
    };
    let workers = row.num("reduce_workers").unwrap_or(1.0);
    let speedup = match row.get("reduce_parallel_speedup") {
        Some(Json::Null) | None => {
            println!(
                "\nparallel speedup gate at n = {SPEEDUP_GATE_N}: n/a \
                 (parallel leg ran on a single worker; nothing to gate)"
            );
            return true;
        }
        Some(s) => match s.as_f64() {
            Some(v) => v,
            None => {
                println!("\n(reduce_parallel_speedup not numeric; parallel speedup not gated)");
                return true;
            }
        },
    };
    let required = 2.0_f64.max(0.4 * workers);
    println!(
        "\nparallel speedup gate at n = {SPEEDUP_GATE_N}: {speedup:.2}x on {workers:.0} workers \
         (required ≥ {required:.2}x)"
    );
    if speedup < required {
        println!(
            "\n**GATE FAILED**: parallel reduce speedup {speedup:.2}x on {workers:.0} workers \
             is below the required {required:.2}x"
        );
        return false;
    }
    true
}

/// Gates the adaptive-selection record when both artifacts carry one:
/// the greedy engine's end-to-end time is held to the same regression
/// factor as the fixed reduce. Returns `false` on a regression.
fn gate_adaptive(current: &Json, baseline: &Json, factor: f64) -> bool {
    let (cur, base) = match (current.get("adaptive"), baseline.get("adaptive")) {
        (Some(c), Some(b)) if *c != Json::Null && *b != Json::Null => (c, b),
        _ => {
            println!("\n(adaptive record missing from one artifact; not gated)");
            return true;
        }
    };
    println!(
        "\n### Adaptive shift selection (n = {})\n",
        cur.num("n").unwrap_or(f64::NAN)
    );
    println!("| metric | baseline | current |");
    println!("|---|---:|---:|");
    // Residuals live at 1e-7 scale, times at 1e5 — pick the notation that
    // keeps both readable.
    let fmt = |v: f64| {
        if v != 0.0 && v.abs() < 1e-2 {
            format!("{v:.3e}")
        } else {
            format!("{v:.3}")
        }
    };
    for (key, label) in [
        ("t_adaptive_reduce_us", "adaptive reduce (µs)"),
        ("t_fixed_reduce_us", "fixed reduce (µs)"),
        ("t_certify_us", "certify stage (µs)"),
        ("rounds", "greedy rounds"),
        ("worst_residual", "final residual"),
        ("reduced_dim", "reduced dim"),
        ("cert_samples", "certificate samples"),
        ("cert_bands", "certificate error bands"),
    ] {
        println!(
            "| {label} | {} | {} |",
            base.num(key).map_or("n/a".into(), fmt),
            cur.num(key).map_or("n/a".into(), fmt),
        );
    }
    if let Some(Json::Str(status)) = cur.get("cert_status") {
        println!("| certificate status | — | {status} |");
    }
    let mut ok = true;
    match (
        base.num("t_adaptive_reduce_us"),
        cur.num("t_adaptive_reduce_us"),
    ) {
        (Some(b), Some(c)) if b > 0.0 => {
            let ratio = c / b;
            println!(
                "\nadaptive reduce: {c:.1} µs vs baseline {b:.1} µs \
                 ({ratio:.2}x, allowed ≤ {factor:.2}x)"
            );
            if ratio > factor {
                println!(
                    "\n**GATE FAILED**: adaptive reduce regressed {ratio:.2}x (> {factor:.2}x)"
                );
                ok = false;
            }
        }
        _ => {}
    }
    // The certify stage is gated like the reduce when both artifacts
    // record it (older baselines predate the certificate pipeline).
    match (base.num("t_certify_us"), cur.num("t_certify_us")) {
        (Some(b), Some(c)) if b > 0.0 => {
            let ratio = c / b;
            println!(
                "certify stage: {c:.1} µs vs baseline {b:.1} µs \
                 ({ratio:.2}x, allowed ≤ {factor:.2}x)"
            );
            if ratio > factor {
                println!("\n**GATE FAILED**: certify stage regressed {ratio:.2}x (> {factor:.2}x)");
                ok = false;
            }
        }
        _ => println!("(certify timing missing from one artifact; not gated)"),
    }
    ok
}

/// Gates the partitioner record when both artifacts carry one. Separator
/// sizes are deterministic — no timing noise — so the bar is exact:
/// the current nested-dissection separator must not exceed the
/// checked-in baseline's, and it must stay ≥ 25 % below BFS on the same
/// mesh. Returns `false` when either bar is missed.
fn gate_partition(current: &Json, baseline: &Json) -> bool {
    let (cur, base) = match (current.get("partition"), baseline.get("partition")) {
        (Some(c), Some(b)) if *c != Json::Null && *b != Json::Null => (c, b),
        _ => {
            println!("\n(partition record missing from one artifact; not gated)");
            return true;
        }
    };
    println!(
        "\n### Partitioner separators (n = {}, k = {})\n",
        cur.num("n").unwrap_or(f64::NAN),
        cur.num("blocks").unwrap_or(f64::NAN),
    );
    println!("| metric | baseline | current |");
    println!("|---|---:|---:|");
    for (key, label) in [
        ("bfs_interface_buses", "BFS separator (buses)"),
        ("nd_interface_buses", "ND separator (buses)"),
        ("nd_over_bfs_separator", "ND / BFS ratio"),
        ("bfs_exact_rom_dim", "BFS exact-interface ROM dim"),
        ("nd_exact_rom_dim", "ND exact-interface ROM dim"),
        ("t_nd_partition_us", "ND partition time (µs)"),
    ] {
        println!(
            "| {label} | {} | {} |",
            base.num(key).map_or("n/a".into(), |v| format!("{v:.4}")),
            cur.num(key).map_or("n/a".into(), |v| format!("{v:.4}")),
        );
    }
    let (Some(cur_nd), Some(cur_bfs), Some(base_nd)) = (
        cur.num("nd_interface_buses"),
        cur.num("bfs_interface_buses"),
        base.num("nd_interface_buses"),
    ) else {
        println!("\n(partition record incomplete; not gated)");
        return true;
    };
    let mut ok = true;
    if cur_nd > base_nd {
        println!(
            "\n**GATE FAILED**: ND separator grew to {cur_nd} buses (baseline {base_nd}) — \
             deterministic metric, no noise allowance"
        );
        ok = false;
    }
    if cur_nd * 4.0 > cur_bfs * 3.0 {
        println!(
            "\n**GATE FAILED**: ND separator {cur_nd} vs BFS {cur_bfs} — \
             less than the required 25 % reduction"
        );
        ok = false;
    }
    if ok {
        println!(
            "\nND separator {cur_nd} buses ≤ baseline {base_nd}, \
             {:.1} % below BFS (required ≥ 25 %)",
            100.0 * (1.0 - cur_nd / cur_bfs),
        );
    }
    ok
}

/// Gates the ROM serve record when both artifacts carry one: the cold
/// `RomServer` batch (artifact load + per-shift factorizations + the full
/// frequency × port sweep) is held to the same regression factor as the
/// reduce time. Returns `false` on a regression.
fn gate_serve(current: &Json, baseline: &Json, factor: f64) -> bool {
    let (cur, base) = match (current.get("serve"), baseline.get("serve")) {
        (Some(c), Some(b)) if *c != Json::Null && *b != Json::Null => (c, b),
        _ => {
            println!("\n(serve record missing from one artifact; not gated)");
            return true;
        }
    };
    println!(
        "\n### ROM serve (n = {}, {} freqs x {} port pairs)\n",
        cur.num("n").unwrap_or(f64::NAN),
        cur.num("sweep_frequencies").unwrap_or(f64::NAN),
        cur.num("port_pairs").unwrap_or(f64::NAN),
    );
    println!("| metric | baseline | current |");
    println!("|---|---:|---:|");
    for (key, label) in [
        ("t_artifact_load_us", "artifact load (µs)"),
        ("t_artifact_save_us", "artifact save (µs)"),
        ("artifact_bytes", "artifact size (bytes)"),
        ("t_serve_batch_us", "serve batch, cold (µs)"),
        ("t_serve_warm_us", "serve batch, warm (µs)"),
        ("queries_per_sec", "queries/sec (cold)"),
        ("queries_per_sec_warm", "queries/sec (warm)"),
    ] {
        println!(
            "| {label} | {} | {} |",
            base.num(key).map_or("n/a".into(), |v| format!("{v:.1}")),
            cur.num(key).map_or("n/a".into(), |v| format!("{v:.1}")),
        );
    }
    match (base.num("t_serve_batch_us"), cur.num("t_serve_batch_us")) {
        (Some(b), Some(c)) if b > 0.0 => {
            let ratio = c / b;
            println!(
                "\nserve batch: {c:.1} µs vs baseline {b:.1} µs \
                 ({ratio:.2}x, allowed ≤ {factor:.2}x)"
            );
            if ratio > factor {
                println!("\n**GATE FAILED**: serve batch regressed {ratio:.2}x (> {factor:.2}x)");
                return false;
            }
            true
        }
        _ => true,
    }
}

/// Gates the distributed-serving record (`BENCH_cluster.json`, written
/// by the scaling bench's cluster scenario; absent on non-at-scale runs,
/// which is not an error). Two bars:
///
/// 1. `bitwise_equal` must be literally `true` — the loopback cluster's
///    sweep replies matched the single local `RomServer` byte for byte.
///    Deterministic, so there is no noise allowance.
/// 2. The batched cluster throughput must reach ≥ 1.0× the single-server
///    baseline (`batched_over_local`). A `null` ratio is the bench's
///    single-CPU convention — shard threads time-sliced one core, so
///    there was no contrast to hold — and skips the bar (printed `n/a`).
///
/// Returns `false` when either bar is missed.
fn gate_cluster(path: &str) -> bool {
    let cur = match std::fs::read_to_string(path) {
        Ok(text) => match parse(&text) {
            Ok(v) => v,
            Err(e) => {
                println!("\n**GATE FAILED**: {path} is malformed ({e})");
                return false;
            }
        },
        Err(_) => {
            println!("\n({path} absent; distributed serving not gated)");
            return true;
        }
    };
    println!(
        "\n### Distributed serving (n = {}, {} shards, {} placement)\n",
        cur.num("n").unwrap_or(f64::NAN),
        cur.num("shards").unwrap_or(f64::NAN),
        match cur.get("placement") {
            Some(Json::Str(s)) => s.as_str(),
            _ => "?",
        },
    );
    println!("| metric | value |");
    println!("|---|---:|");
    for (key, label) in [
        ("qps_local", "local server (queries/s)"),
        ("qps_unbatched", "cluster, unbatched (queries/s)"),
        ("qps_batched", "cluster, batched (queries/s)"),
        ("batched_over_unbatched", "batched / unbatched"),
        ("router_overhead_us", "router ping floor (µs)"),
        ("rpcs", "wire round trips"),
        ("coalesced_queries", "coalesced sub-queries"),
        ("local_evictions", "LRU evictions, local"),
        ("shard_evictions", "LRU evictions, shards"),
    ] {
        println!(
            "| {label} | {} |",
            cur.num(key).map_or("n/a".into(), |v| format!("{v:.1}")),
        );
    }
    let mut ok = true;
    match cur.get("bitwise_equal") {
        Some(Json::Bool(true)) => {
            println!("\ndistributed replies bitwise-equal to the local server: yes");
        }
        other => {
            println!(
                "\n**GATE FAILED**: distributed replies must be bitwise-equal to the local \
                 server (bitwise_equal = {other:?}) — deterministic bar, no noise allowance"
            );
            ok = false;
        }
    }
    match cur.get("batched_over_local") {
        Some(Json::Null) => {
            println!(
                "batched throughput gate: n/a (single-CPU host; shard threads had no \
                 concurrency to buy the wire overhead back)"
            );
        }
        Some(v) => {
            match v.as_f64() {
                Some(ratio) if ratio >= 1.0 => {
                    println!("batched cluster throughput: {ratio:.3}x the local server (required ≥ 1.0x)");
                }
                Some(ratio) => {
                    println!(
                        "\n**GATE FAILED**: batched cluster throughput is {ratio:.3}x the local \
                     server (required ≥ 1.0x)"
                    );
                    ok = false;
                }
                None => {
                    println!("\n**GATE FAILED**: batched_over_local is not numeric");
                    ok = false;
                }
            }
        }
        None => {
            println!("\n**GATE FAILED**: batched_over_local missing from {path}");
            ok = false;
        }
    }
    ok
}

/// Prints the observability record of the current artifact — the
/// top-level span durations of the `BDSM_OBS=spans` reduce and the
/// `RomServer` cache accounting — next to the baseline's when it carries
/// one (older baselines predate the record; that is not an error). Purely
/// informational: the hard accounting bars (span coverage, exact cache
/// balance) are asserted inside the scaling binary itself.
fn show_obs(current: &Json, baseline: &Json) {
    let cur = match current.get("obs") {
        Some(o) if *o != Json::Null => o,
        _ => {
            println!("\n(obs record missing from current artifact; not shown)");
            return;
        }
    };
    let base = baseline.get("obs").filter(|o| **o != Json::Null);
    println!(
        "\n### Observability (n = {}, BDSM_OBS=spans, one worker)\n",
        cur.num("n").unwrap_or(f64::NAN),
    );
    println!("| top-level span | total (ms) |");
    println!("|---|---:|");
    for span in cur
        .get("top_spans")
        .and_then(Json::as_arr)
        .unwrap_or_default()
    {
        let name = match span.get("name") {
            Some(Json::Str(s)) => s.as_str(),
            _ => "?",
        };
        println!(
            "| {name} | {:.1} |",
            span.num("total_us").unwrap_or(f64::NAN) / 1e3
        );
    }
    println!("\n| metric | baseline | current |");
    println!("|---|---:|---:|");
    for (key, label) in [
        ("span_count", "spans recorded"),
        ("krylov_span_coverage", "krylov span coverage"),
        ("cache_hit_rate", "serve cache hit rate"),
        ("latency_p50_us", "serve latency p50 (µs)"),
        ("latency_p95_us", "serve latency p95 (µs)"),
        ("latency_p99_us", "serve latency p99 (µs)"),
    ] {
        println!(
            "| {label} | {} | {} |",
            base.and_then(|b| b.num(key))
                .map_or("n/a".into(), |v| format!("{v:.4}")),
            cur.num(key).map_or("n/a".into(), |v| format!("{v:.4}")),
        );
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let current_path = args.first().map_or(DEFAULT_CURRENT, String::as_str);
    let baseline_path = args.get(1).map_or(DEFAULT_BASELINE, String::as_str);
    let gate_n: f64 = env_num("BENCH_GATE_N", 10_000.0);
    let factor: f64 = env_num("BENCH_GATE_FACTOR", 2.0);

    let current = match load(current_path) {
        Ok(v) => v,
        Err(e) => return fail(&e),
    };
    let baseline = match load(baseline_path) {
        Ok(v) => v,
        Err(e) => return fail(&e),
    };
    let cur_row = match find_row(&current, gate_n) {
        Some(r) => r,
        None => return fail(&format!("{current_path}: no record with n = {gate_n}")),
    };
    let base_row = match find_row(&baseline, gate_n) {
        Some(r) => r,
        None => return fail(&format!("{baseline_path}: no record with n = {gate_n}")),
    };

    println!("### Scaling gate (n = {gate_n})\n");
    println!(
        "threads: current {} vs baseline {}\n",
        current.num("threads").unwrap_or(1.0),
        baseline.num("threads").unwrap_or(1.0)
    );
    println!("| stage | baseline (µs) | current (µs) | ratio |");
    println!("|---|---:|---:|---:|");
    for (key, label) in STAGES {
        let (b, c) = (base_row.num(key), cur_row.num(key));
        match (b, c) {
            (Some(b), Some(c)) if b > 0.0 => {
                println!("| {label} | {b:.1} | {c:.1} | {:.2}x |", c / b);
            }
            _ => println!("| {label} | n/a | n/a | n/a |"),
        }
    }

    let (base_reduce, cur_reduce) = match (base_row.num("t_reduce_us"), cur_row.num("t_reduce_us"))
    {
        (Some(b), Some(c)) if b > 0.0 => (b, c),
        _ => return fail("t_reduce_us missing from one of the records"),
    };
    let ratio = cur_reduce / base_reduce;
    println!(
        "\nend-to-end reduce at n = {gate_n}: {cur_reduce:.1} µs vs baseline {base_reduce:.1} µs \
         ({ratio:.2}x, allowed ≤ {factor:.2}x)"
    );
    match cur_row.get("reduce_parallel_speedup") {
        // A null speedup is the bench saying the parallel leg ran on one
        // worker — there was no parallel/serial contrast to report.
        Some(Json::Null) => {
            println!("parallel engine speedup: n/a (parallel leg ran on a single worker)");
        }
        Some(s) => {
            if let Some(s) = s.as_f64() {
                let workers = cur_row
                    .num("reduce_workers")
                    .map_or(String::new(), |w| format!(" on {w:.0} workers"));
                println!("parallel engine speedup (serial/parallel, same run): {s:.2}x{workers}");
            }
        }
        // Pre-obs artifact schema: derive it from the raw leg times.
        None => {
            if let (Some(serial), Some(parallel)) = (
                cur_row.num("t_reduce_serial_us"),
                cur_row.num("t_reduce_us"),
            ) {
                println!(
                    "parallel engine speedup (serial/parallel, same run): {:.2}x",
                    serial / parallel
                );
            }
        }
    }
    if ratio > factor {
        println!("\n**GATE FAILED**: reduce time regressed {ratio:.2}x (> {factor:.2}x)");
        return ExitCode::FAILURE;
    }
    if !gate_parallel_speedup(&current) {
        return ExitCode::FAILURE;
    }
    if !gate_partition(&current, &baseline) {
        return ExitCode::FAILURE;
    }
    if !gate_adaptive(&current, &baseline, factor) {
        return ExitCode::FAILURE;
    }
    if !gate_serve(&current, &baseline, factor) {
        return ExitCode::FAILURE;
    }
    if !gate_cluster(DEFAULT_CLUSTER) {
        return ExitCode::FAILURE;
    }
    show_obs(&current, &baseline);
    println!("\ngate passed");
    ExitCode::SUCCESS
}

fn env_num(key: &str, default: f64) -> f64 {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn load(path: &str) -> Result<Json, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    parse(&text).map_err(|e| format!("{path}: {e}"))
}

fn find_row(doc: &Json, n: f64) -> Option<&Json> {
    doc.get("results")?
        .as_arr()?
        .iter()
        .find(|r| r.num("n") == Some(n))
}

fn fail(msg: &str) -> ExitCode {
    eprintln!("bench_gate: {msg}");
    ExitCode::FAILURE
}
