//! Scaling benchmark: per-stage reduction cost, parallel-vs-serial engine
//! speedup, supernodal-vs-scalar kernel shootout, frequency-sweep fan-out,
//! a transient-at-scale scenario, adaptive-vs-fixed shift selection, and a
//! ROM **serve** scenario (artifact save/load + batched `RomServer`
//! queries) — emitted as `BENCH_scaling.json` for the CI artifact trail
//! (and consumed by the `bench_gate` binary).
//!
//! Usage: `cargo run --release -p bdsm-bench --bin scaling [n ...]`
//! (default sizes: 500 2000 10000 50000).
//!
//! Per size `n`, on a loaded RC ladder with `n` states:
//!
//! - `t_sparse_factor_solve_us` — supernodal sparse complex factorization
//!   of `G + jωC` (symbolic + workspace reused via `ShiftedPencil`) plus
//!   one solve; `t_factor_scalar_us` is the same through the scalar oracle
//!   kernel, so the blocked-kernel gain is visible per size (the active
//!   `dense::gemm` register blocking is recorded as
//!   `kernel_fused_rank1`);
//! - `t_dense_factor_solve_us` — the dense `ZLu` equivalent, only run for
//!   `n ≤ 2000` (the dense wall is the point of the exercise);
//! - `t_reduce_us` / `t_reduce_serial_us` — the full BDSM reduction
//!   (driven through the v1 `Reducer`) with the multi-shift/SVD fan-out on
//!   all workers vs pinned to one (`BDSM_THREADS=1`), with the per-stage
//!   breakdown from the parallel run;
//! - `t_sweep_us` / `t_sweep_serial_us` — a full-model sparse `jω` sweep
//!   (`sweep_frequencies` samples) with and without the per-frequency
//!   fan-out;
//! - `t_rom_eval_us`, `mem_*_bytes` — ROM sample cost and factor-storage
//!   proxies, as before.
//!
//! When the size list includes 10,000, four scenario records are added:
//! `transient` (full vs reduced backward-Euler on a 100×100 mesh),
//! `adaptive` (greedy shift selection vs the fixed 8-point set),
//! `serve` (adaptive+exact ROM → artifact save/load → 64-frequency ×
//! all-port `RomServer` batch, cold and cache-warm), and `obs`
//! (`BDSM_OBS=spans` reduce on one worker — asserts the per-point Krylov
//! spans sum to the krylov stage time within 5 %, saves the Chrome trace
//! as `BENCH_trace_10k.json`, and checks the `RomServer` cache accounting
//! exactly, dumping global + server metrics as `BENCH_metrics.json`).
//! A standalone `cluster` record (`BENCH_cluster.json`) also runs at
//! 10,000: the same ROM behind a 2-shard band-sharded loopback cluster
//! vs one local `RomServer`, batched and unbatched — `bench_gate` holds
//! its distributed-vs-local `bitwise_equal` verdict exactly.
//!
//! Every speedup field records the worker count the parallel leg actually
//! ran with (`par::worker_count`); on a single-worker host the parallel
//! and serial legs are the same experiment, so the speedup is emitted as
//! `null` rather than a fabricated 1.0x.

use bdsm_bench::{json, time_with_warmup};
use bdsm_circuit::{mna, partition_network_with, PartitionStrategy};
use bdsm_cluster::{ClientConfig, ClusterClient, NodeConfig, ShardNode, ShardPlan};
use bdsm_core::engine::AdaptiveShiftOpts;
use bdsm_core::reduce::StageTimings;
use bdsm_core::synth::{rc_grid, rc_ladder_loaded};
use bdsm_core::transfer::{eval_transfer, SparseTransferEvaluator, ZLu};
use bdsm_core::{par, ReducedModel};
use bdsm_linalg::{Complex64, KERNEL_SHAPE};
use bdsm_obs::ObsLevel;
use bdsm_rom::{Reducer, RomArtifact, RomServer};
use bdsm_sim::TransientSolver;
use bdsm_sparse::{LuWorkspace, NumericKernel, ShiftedPencil};
use std::fmt::Write as _;
use std::time::{Duration, Instant};

const OMEGA_MID: f64 = 4.5e2;
const DENSE_CEILING: usize = 2000;
/// Frequencies of the full-model sweep stage (log-spaced decades around
/// the expansion band).
const SWEEP_FREQS: [f64; 8] = [2.0e1, 6.0e1, 1.8e2, 5.4e2, 1.6e3, 4.9e3, 1.5e4, 4.4e4];
/// Transient scenario parameters (10⁴-state RC mesh).
const TRANSIENT_STEPS: usize = 400;
const TRANSIENT_H: f64 = 1e-4;
/// Frequencies per served batch in the serve scenario.
const SERVE_FREQS: usize = 64;

type BenchError = Box<dyn std::error::Error>;

struct Row {
    n: usize,
    nnz: usize,
    factor_nnz: usize,
    t_sparse_us: f64,
    t_scalar_us: f64,
    t_dense_us: Option<f64>,
    t_reduce_us: f64,
    t_reduce_serial_us: f64,
    reduce_workers: usize,
    stages: StageTimings,
    t_sweep_us: f64,
    t_sweep_serial_us: f64,
    sweep_workers: usize,
    t_rom_eval_us: f64,
    reduced_dim: usize,
}

struct TransientRow {
    n: usize,
    reduced_dim: usize,
    t_full_us: f64,
    t_rom_us: f64,
    max_rel_output_err: f64,
}

struct AdaptiveRow {
    n: usize,
    t_adaptive_us: f64,
    t_fixed_us: f64,
    rounds: usize,
    shifts: Vec<f64>,
    residual_trajectory: Vec<f64>,
    worst_residual: f64,
    certified: bool,
    reduced_dim: usize,
    reduced_dim_fixed: usize,
    basis_cols: usize,
    basis_cols_fixed: usize,
    t_certify_us: f64,
    cert_status: String,
    cert_samples: usize,
    cert_bands: usize,
}

struct PartitionRow {
    n: usize,
    blocks: usize,
    t_bfs_us: f64,
    t_nd_us: f64,
    bfs_interface_buses: usize,
    nd_interface_buses: usize,
    bfs_interface_states: usize,
    nd_interface_states: usize,
    bfs_exact_rom_dim: usize,
    nd_exact_rom_dim: usize,
}

struct ServeRow {
    n: usize,
    reduced_dim: usize,
    artifact_bytes: usize,
    t_build_us: f64,
    t_save_us: f64,
    t_load_us: f64,
    port_pairs: usize,
    t_serve_batch_us: f64,
    t_serve_warm_us: f64,
    queries_per_sec: f64,
    queries_per_sec_warm: f64,
}

struct ObsRow {
    n: usize,
    span_count: usize,
    top_spans: Vec<(&'static str, f64)>,
    stage_krylov_us: f64,
    krylov_span_coverage: f64,
    cache_hits: u64,
    cache_misses: u64,
    hit_rate: f64,
    latency_p50_us: f64,
    latency_p95_us: f64,
    latency_p99_us: f64,
}

/// Runs `f` with the fan-out pinned to one worker, restoring the previous
/// `BDSM_THREADS` afterwards — the serial baseline the parallel engine is
/// compared against.
fn with_serial_engine<T>(f: impl FnOnce() -> T) -> T {
    let prev = std::env::var("BDSM_THREADS").ok();
    std::env::set_var("BDSM_THREADS", "1");
    let out = f();
    match prev {
        Some(v) => std::env::set_var("BDSM_THREADS", v),
        None => std::env::remove_var("BDSM_THREADS"),
    }
    out
}

/// The size-parameterized fixed-shift reducer of the per-size rows: eight
/// `jω` points spanning the band, so the fan-out has enough grist to fill
/// 4–8 workers.
fn reducer_for(n: usize) -> Result<Reducer, BenchError> {
    Ok(Reducer::builder()
        .blocks(8)
        .jomega_shifts(&[2.0e1, 5.0e1, 1.5e2, OMEGA_MID, 1.5e3, 4.0e3, 1.2e4, 4.0e4])
        .moments(2)
        .deflation_tol(1e-12)
        .rank_tol(1e-12)
        .budget((n / 5).max(8))
        .sparse()
        .build()?)
}

fn main() -> Result<(), BenchError> {
    let sizes: Vec<usize> = {
        let args: Result<Vec<usize>, _> = std::env::args()
            .skip(1)
            .map(|a| a.parse::<usize>())
            .collect();
        let args = args?;
        if args.is_empty() {
            vec![500, 2000, 10_000, 50_000]
        } else {
            args
        }
    };
    let threads = par::max_threads();
    println!("parallel engine: up to {threads} worker thread(s)");

    let mut rows = Vec::new();
    for &n in &sizes {
        println!("--- n = {n} ---");
        let net = rc_ladder_loaded(n, 1.0, 1e-3, 5.0, 5);
        let desc = mna::assemble(&net)?;
        let (g, c) = (desc.g.to_csc(), desc.c.to_csc());
        let s = Complex64::jomega(OMEGA_MID);
        let b0: Vec<f64> = desc.b.to_dense().col(0);

        // Shifted factor + solve through both numeric kernels (symbolic
        // analysis and scratch workspace amortized in both).
        let pencil = ShiftedPencil::new(&g, &c)?;
        let pencil_scalar = pencil.clone().with_numeric_kernel(NumericKernel::Scalar);
        let iters = if n <= DENSE_CEILING { 5 } else { 2 };
        let mut factor_nnz = 0;
        let mut ws = LuWorkspace::new();
        let t_sparse = time_with_warmup("supernodal", 1, iters, || {
            let lu = pencil.factor_complex_with(s, &mut ws).expect("factor");
            factor_nnz = lu.factor_nnz();
            std::hint::black_box(lu.solve_real(&b0).expect("solve"));
        });
        let t_sparse_us = t_sparse.per_iter().as_secs_f64() * 1e6;
        let t_scalar = time_with_warmup("scalar-kernel", 1, iters, || {
            let lu = pencil_scalar
                .factor_complex_with(s, &mut ws)
                .expect("factor");
            std::hint::black_box(lu.solve_real(&b0).expect("solve"));
        });
        let t_scalar_us = t_scalar.per_iter().as_secs_f64() * 1e6;
        println!(
            "  factor+solve: supernodal {:?}/iter, scalar {:?}/iter ({:.2}x)",
            t_sparse.per_iter(),
            t_scalar.per_iter(),
            t_scalar_us / t_sparse_us
        );

        // Dense oracle, below the densification ceiling only.
        let t_dense_us = (n <= DENSE_CEILING).then(|| {
            let gd = g.to_dense();
            let cd = c.to_dense();
            let t = time_with_warmup("dense", 1, 3, || {
                let lu = ZLu::factor_shifted(&gd, &cd, s).expect("dense factor");
                std::hint::black_box(lu.solve_real(&b0).expect("dense solve"));
            });
            println!("  dense factor+solve:  {:?}/iter", t.per_iter());
            t.per_iter().as_secs_f64() * 1e6
        });

        // Full pipeline, serial then parallel: same workload, the only
        // difference is the fan-out worker count. One untimed warmup run
        // first, so neither measured path pays first-touch page faults or
        // cold-allocator cost (the serial run would otherwise absorb all
        // of it and inflate the reported parallel speedup).
        let reducer = reducer_for(n)?;
        // What the parallel leg actually fans out over: the per-shift
        // Krylov sweeps are the widest stage, so its worker count is the
        // honest one to attach to the speedup.
        let reduce_workers = par::worker_count(reducer.opts().krylov.jomega_points.len());
        std::hint::black_box(reducer.reduce_timed(&net)?);
        let t_reduce_serial_us = with_serial_engine(|| {
            let t0 = Instant::now();
            std::hint::black_box(reducer.reduce_timed(&net).expect("serial reduction"));
            t0.elapsed().as_secs_f64() * 1e6
        });
        let t0 = Instant::now();
        let (rm, stages) = reducer.reduce_timed(&net)?;
        let t_reduce_us = t0.elapsed().as_secs_f64() * 1e6;
        if reduce_workers > 1 {
            println!(
                "  reduce {n} -> {} states: {:.1} ms parallel vs {:.1} ms serial ({:.2}x on {} workers)",
                rm.reduced_dim(),
                t_reduce_us / 1e3,
                t_reduce_serial_us / 1e3,
                t_reduce_serial_us / t_reduce_us,
                reduce_workers,
            );
        } else {
            println!(
                "  reduce {n} -> {} states: {:.1} ms (single worker; no parallel/serial contrast)",
                rm.reduced_dim(),
                t_reduce_us / 1e3,
            );
        }
        println!(
            "    stages: assemble {:.1} ms, partition {:.1} ms, krylov {:.1} ms \
             (point {:.1} ms + merge {:.1} ms), svd {:.1} ms, project {:.1} ms",
            stages.assemble_us / 1e3,
            stages.partition_us / 1e3,
            stages.krylov_us / 1e3,
            stages.krylov_point_us / 1e3,
            stages.krylov_merge_us / 1e3,
            stages.svd_us / 1e3,
            stages.project_us / 1e3
        );

        // Full-model frequency sweep, serial vs fanned out.
        let full_ev = SparseTransferEvaluator::new(
            &rm.full.g,
            &rm.full.c,
            rm.full.b.clone(),
            rm.full.l.clone(),
        )?;
        // Same warmup discipline as the reduce comparison above.
        std::hint::black_box(full_ev.eval_jomega_sweep(&SWEEP_FREQS)?);
        let t_sweep_serial_us = with_serial_engine(|| {
            let t0 = Instant::now();
            std::hint::black_box(
                full_ev
                    .eval_jomega_sweep(&SWEEP_FREQS)
                    .expect("serial sweep"),
            );
            t0.elapsed().as_secs_f64() * 1e6
        });
        let t0 = Instant::now();
        std::hint::black_box(full_ev.eval_jomega_sweep(&SWEEP_FREQS)?);
        let t_sweep_us = t0.elapsed().as_secs_f64() * 1e6;
        let sweep_workers = par::worker_count(SWEEP_FREQS.len());
        if sweep_workers > 1 {
            println!(
                "  full sweep ({} freqs): {:.1} ms parallel vs {:.1} ms serial",
                SWEEP_FREQS.len(),
                t_sweep_us / 1e3,
                t_sweep_serial_us / 1e3
            );
        } else {
            println!(
                "  full sweep ({} freqs): {:.1} ms (single worker)",
                SWEEP_FREQS.len(),
                t_sweep_us / 1e3,
            );
        }

        let t_rom = time_with_warmup("rom-eval", 1, 5, || {
            std::hint::black_box(eval_transfer(&rm.g, &rm.c, &rm.b, &rm.l, s).expect("rom eval"));
        });
        let t_rom_eval_us = t_rom.per_iter().as_secs_f64() * 1e6;
        if let Some(td) = t_dense_us {
            println!("  sparse speedup vs dense: {:.1}x", td / t_sparse_us);
        }

        rows.push(Row {
            n,
            nnz: pencil.nnz(),
            factor_nnz,
            t_sparse_us,
            t_scalar_us,
            t_dense_us,
            t_reduce_us,
            t_reduce_serial_us,
            reduce_workers,
            stages,
            t_sweep_us,
            t_sweep_serial_us,
            sweep_workers,
            t_rom_eval_us,
            reduced_dim: rm.reduced_dim(),
        });
    }

    let at_scale = sizes.contains(&10_000);
    let partition = at_scale.then(partition_scenario).transpose()?;
    let transient = at_scale.then(transient_scenario).transpose()?;
    let adaptive = at_scale.then(adaptive_scenario).transpose()?;
    let serve = at_scale.then(serve_scenario).transpose()?;
    // Standalone record (BENCH_cluster.json), gated by `bench_gate`.
    at_scale.then(cluster_scenario).transpose()?;
    // Last: it flips the process-global obs level while it runs.
    let obs = at_scale.then(obs_scenario).transpose()?;

    let json = render_json(
        threads,
        &rows,
        partition.as_ref(),
        transient.as_ref(),
        serve.as_ref(),
        adaptive.as_ref(),
        obs.as_ref(),
    );
    std::fs::write("BENCH_scaling.json", &json)?;
    println!("wrote BENCH_scaling.json ({} sizes)", rows.len());
    Ok(())
}

/// Adaptive-vs-fixed shift selection at n = 10⁴: the greedy engine must
/// buy its automation cheaply, so the record tracks the shifts it chose,
/// the residual trajectory, and the wall-time against the 8-point fixed
/// configuration — and `bench_gate` gates the adaptive reduce time like
/// the fixed one.
fn adaptive_scenario() -> Result<AdaptiveRow, BenchError> {
    const N: usize = 10_000;
    println!("--- adaptive: n = {N} ladder, greedy shifts vs fixed 8-point set ---");
    let net = rc_ladder_loaded(N, 1.0, 1e-3, 5.0, 5);
    let fixed = reducer_for(N)?;
    let adaptive = Reducer::builder()
        .blocks(8)
        .jomega_shifts(&[OMEGA_MID])
        .moments(2)
        .deflation_tol(1e-12)
        .rank_tol(1e-12)
        .budget((N / 5).max(8))
        .adaptive(AdaptiveShiftOpts {
            candidate_omegas: SWEEP_FREQS.to_vec(),
            tol: 1e-6,
            max_shifts: 8,
        })
        .build()?;

    // Warm both paths once, then measure — the adaptive path has its own
    // cold-start surfaces (candidate-sweep evaluator, per-round ROM
    // sweeps) that must not inflate the gated metric. The adaptive warmup
    // doubles as the certify-stage measurement: run it traced at
    // `ObsLevel::Timings` so `StageTimings` carries `stage.certify`
    // wall-clock without perturbing the untraced timed runs below.
    std::hint::black_box(fixed.reduce_with_report(&net)?);
    let prev_level = bdsm_obs::level();
    bdsm_obs::set_level(ObsLevel::Timings);
    let warm = adaptive.reduce_traced(&net);
    bdsm_obs::set_level(prev_level);
    let (_, rep_warm, stages_warm) = warm?;
    let t_certify_us = stages_warm.certify_us;
    let cert = &rep_warm.certificate;
    let t0 = Instant::now();
    let (rm_fixed, rep_fixed) = fixed.reduce_with_report(&net)?;
    let t_fixed_us = t0.elapsed().as_secs_f64() * 1e6;
    let t0 = Instant::now();
    let (rm, rep) = adaptive.reduce_with_report(&net)?;
    let t_adaptive_us = t0.elapsed().as_secs_f64() * 1e6;

    let shifts: Vec<f64> = rep
        .shifts
        .iter()
        .map(|p| match *p {
            bdsm_core::ExpansionPoint::Real(s) => s,
            bdsm_core::ExpansionPoint::Jomega(w) => w,
        })
        .collect();
    let residual_trajectory: Vec<f64> = rep.rounds.iter().map(|r| r.worst_residual).collect();
    let worst_residual = residual_trajectory.last().copied().unwrap_or(f64::NAN);
    println!(
        "  adaptive {:.1} ms ({} rounds, {} shifts, residual {:.2e}) vs fixed {:.1} ms ({} shifts)",
        t_adaptive_us / 1e3,
        rep.rounds.len(),
        shifts.len(),
        worst_residual,
        t_fixed_us / 1e3,
        rep_fixed.shifts.len(),
    );
    println!(
        "  certify stage {:.1} ms -> {:?} ({} passivity samples, {} error bands)",
        t_certify_us / 1e3,
        cert.status,
        cert.passivity.sample_omegas.len(),
        cert.error_bands.len(),
    );
    Ok(AdaptiveRow {
        n: N,
        t_adaptive_us,
        t_fixed_us,
        rounds: rep.rounds.len(),
        shifts,
        residual_trajectory,
        worst_residual,
        certified: rep.certified,
        reduced_dim: rm.reduced_dim(),
        reduced_dim_fixed: rm_fixed.reduced_dim(),
        basis_cols: rep.basis_cols,
        basis_cols_fixed: rep_fixed.basis_cols,
        t_certify_us,
        cert_status: format!("{:?}", cert.status).to_lowercase(),
        cert_samples: cert.passivity.sample_omegas.len(),
        cert_bands: cert.error_bands.len(),
    })
}

/// Partitioner shootout at scale: BFS vs nested dissection on the
/// 100×100 RC mesh at k = 8 — separator sizes (interface buses), the
/// interface-state counts they induce, and what each costs in
/// exact-interface ROM dimension (one matched shift, one moment — the
/// cheapest reduce that still pays the full per-interface-state price).
/// The separator sizes are deterministic, so `bench_gate` holds them to
/// the checked-in baseline exactly, plus the ≥ 25 % ND-vs-BFS bar.
fn partition_scenario() -> Result<PartitionRow, BenchError> {
    const K: usize = 8;
    println!("--- partition: 100x100 RC mesh, BFS vs nested dissection at k = {K} ---");
    let net = rc_grid(100, 100, 1.0, 1e-3, 2.0);
    let t0 = Instant::now();
    let bfs = partition_network_with(&net, K, PartitionStrategy::Bfs)?;
    let t_bfs_us = t0.elapsed().as_secs_f64() * 1e6;
    let t0 = Instant::now();
    let nd = partition_network_with(&net, K, PartitionStrategy::NestedDissection)?;
    let t_nd_us = t0.elapsed().as_secs_f64() * 1e6;
    println!(
        "  separators: BFS {} buses ({:.1} ms), ND {} buses ({:.1} ms) — ratio {:.3}",
        bfs.interface.len(),
        t_bfs_us / 1e3,
        nd.interface.len(),
        t_nd_us / 1e3,
        nd.interface.len() as f64 / bfs.interface.len() as f64,
    );

    let exact_rom = |strategy: PartitionStrategy| -> Result<(usize, usize), BenchError> {
        let builder = match strategy {
            PartitionStrategy::Bfs => Reducer::builder().bfs_partition(),
            PartitionStrategy::NestedDissection => Reducer::builder().nested_dissection(),
        };
        let rm = builder
            .blocks(K)
            .jomega_shifts(&[OMEGA_MID])
            .moments(1)
            .exact_interfaces()
            .sparse()
            .build()?
            .reduce(&net)?;
        Ok((rm.interface_states.len(), rm.reduced_dim()))
    };
    let (bfs_interface_states, bfs_exact_rom_dim) = exact_rom(PartitionStrategy::Bfs)?;
    let (nd_interface_states, nd_exact_rom_dim) = exact_rom(PartitionStrategy::NestedDissection)?;
    println!(
        "  exact-interface ROM: BFS {bfs_interface_states} interface states -> dim {bfs_exact_rom_dim}, \
         ND {nd_interface_states} -> dim {nd_exact_rom_dim}"
    );
    Ok(PartitionRow {
        n: net.num_buses(),
        blocks: K,
        t_bfs_us,
        t_nd_us,
        bfs_interface_buses: bfs.interface.len(),
        nd_interface_buses: nd.interface.len(),
        bfs_interface_states,
        nd_interface_states,
        bfs_exact_rom_dim,
        nd_exact_rom_dim,
    })
}

/// Transient at scale: full vs reduced backward-Euler step response on a
/// 100×100 RC mesh (10⁴ states) — the time-domain counterpart of the
/// frequency-domain rows, closing the bench suite's coverage gap.
fn transient_scenario() -> Result<TransientRow, BenchError> {
    println!("--- transient: 100x100 RC mesh, {TRANSIENT_STEPS} steps of h = {TRANSIENT_H} ---");
    let net = rc_grid(100, 100, 1.0, 1e-3, 2.0);
    let reducer = Reducer::builder()
        .blocks(8)
        .jomega_shifts(&[5.0e1, OMEGA_MID, 4.0e3])
        .moments(2)
        .deflation_tol(1e-12)
        .rank_tol(1e-12)
        .budget(2000)
        .sparse()
        .build()?;
    let rm = reducer.reduce(&net)?;
    let (t_full_us, y_full) = run_transient(TransientSolver::for_full(&rm, TRANSIENT_H), &rm);
    let (t_rom_us, y_rom) = run_transient(TransientSolver::for_reduced(&rm, TRANSIENT_H), &rm);
    // Worst per-step output deviation, relative to the full response's
    // largest magnitude (outputs start at 0, so pointwise relative error
    // would blow up on the first steps).
    let y_scale = y_full
        .iter()
        .flatten()
        .fold(0.0_f64, |m, &v| m.max(v.abs()))
        .max(f64::MIN_POSITIVE);
    let max_rel_output_err = y_full
        .iter()
        .flatten()
        .zip(y_rom.iter().flatten())
        .fold(0.0_f64, |m, (&f, &r)| m.max((f - r).abs()))
        / y_scale;
    println!(
        "  full {:.1} ms vs reduced {:.1} ms ({:.1}x); worst rel output dev {:.2e}",
        t_full_us / 1e3,
        t_rom_us / 1e3,
        t_full_us / t_rom_us,
        max_rel_output_err
    );
    Ok(TransientRow {
        n: rm.full_dim(),
        reduced_dim: rm.reduced_dim(),
        t_full_us,
        t_rom_us,
        max_rel_output_err,
    })
}

/// The ROM serve lifecycle at scale: a 10⁴-state mesh reduced in the
/// headline mode (adaptive + exact interfaces), persisted as a versioned
/// artifact, loaded back, and queried through `RomServer` — a
/// `SERVE_FREQS`-frequency × all-port batch, cold (paying the per-shift
/// factorizations) and cache-warm (pure triangular solves). The cold
/// batch is the gated metric.
fn serve_scenario() -> Result<ServeRow, BenchError> {
    println!("--- serve: 100x100 RC mesh ROM artifact, {SERVE_FREQS}-frequency batch ---");
    let net = rc_grid(100, 100, 1.0, 1e-3, 2.0);
    let reducer = Reducer::builder()
        .blocks(4)
        .jomega_shifts(&[OMEGA_MID])
        .moments(2)
        .budget(2000)
        .adaptive(AdaptiveShiftOpts {
            candidate_omegas: AdaptiveShiftOpts::log_grid(5.0e1, 4.0e3, 6),
            tol: 1e-6,
            max_shifts: 4,
        })
        .exact_interfaces()
        .build()?;
    let t0 = Instant::now();
    let artifact = reducer.reduce_to_artifact(&net)?;
    let t_build_us = t0.elapsed().as_secs_f64() * 1e6;
    let artifact_bytes = artifact.to_bytes().len();

    // The n = 10⁴ certificate, dumped standalone for the CI artifact
    // trail: passivity/stability margins, per-band error bounds, and the
    // envelope the server will enforce.
    let cert = &artifact.provenance.certificate;
    std::fs::write("BENCH_certificate.json", format!("{}\n", cert.to_json()))?;
    println!(
        "  wrote BENCH_certificate.json (status {:?}, {} passivity samples, {} bands)",
        cert.status,
        cert.passivity.sample_omegas.len(),
        cert.error_bands.len(),
    );

    let path = std::env::temp_dir().join("bdsm_bench_serve.rom");
    let t0 = Instant::now();
    artifact.save(&path)?;
    let t_save_us = t0.elapsed().as_secs_f64() * 1e6;
    let t0 = Instant::now();
    let loaded = RomArtifact::load(&path)?;
    let t_load_us = t0.elapsed().as_secs_f64() * 1e6;
    std::fs::remove_file(&path).ok();
    assert!(artifact.bitwise_eq(&loaded), "serve artifact drifted");

    let port_pairs = loaded.num_outputs() * loaded.num_inputs();
    let reduced_dim = loaded.reduced_dim();
    let n = loaded.full_dim();
    let mut server = RomServer::new();
    let id = server.load_artifact(loaded);
    let omegas: Vec<f64> = (0..SERVE_FREQS)
        .map(|i| 50.0 * (4.0e3_f64 / 50.0).powf(i as f64 / (SERVE_FREQS - 1) as f64))
        .collect();
    let t0 = Instant::now();
    std::hint::black_box(server.transfer_sweep(id, &omegas)?);
    let t_serve_batch_us = t0.elapsed().as_secs_f64() * 1e6;
    let t0 = Instant::now();
    std::hint::black_box(server.transfer_sweep(id, &omegas)?);
    let t_serve_warm_us = t0.elapsed().as_secs_f64() * 1e6;
    let queries = (SERVE_FREQS * port_pairs) as f64;
    let queries_per_sec = queries / (t_serve_batch_us / 1e6);
    let queries_per_sec_warm = queries / (t_serve_warm_us / 1e6);
    println!(
        "  artifact {artifact_bytes} B: build {:.1} ms, save {:.2} ms, load {:.2} ms",
        t_build_us / 1e3,
        t_save_us / 1e3,
        t_load_us / 1e3,
    );
    println!(
        "  batch of {SERVE_FREQS} freqs x {port_pairs} port pairs: cold {:.1} ms ({:.0} q/s), \
         warm {:.1} ms ({:.0} q/s)",
        t_serve_batch_us / 1e3,
        queries_per_sec,
        t_serve_warm_us / 1e3,
        queries_per_sec_warm,
    );
    Ok(ServeRow {
        n,
        reduced_dim,
        artifact_bytes,
        t_build_us,
        t_save_us,
        t_load_us,
        port_pairs,
        t_serve_batch_us,
        t_serve_warm_us,
        queries_per_sec,
        queries_per_sec_warm,
    })
}

/// Distributed serving at scale: the 10⁴ serve-configuration ROM behind
/// a 2-shard band-sharded loopback cluster versus one local `RomServer`,
/// both with capacity-16 LRU shift caches — 64 distinct shifts per sweep
/// keep every pass deterministically all-miss, so the local and cluster
/// legs do identical factorization work and the contrast is pure
/// distribution cost/gain. The engine fan-out is pinned to one worker,
/// leaving shard concurrency (one connection thread per shard) as the
/// only parallelism. Emits `BENCH_cluster.json` for the CI artifact
/// trail; `bench_gate` holds its `bitwise_equal` verdict exactly and the
/// batched-over-local throughput ratio to ≥ 1.0× (`null`, skipped, on
/// single-CPU hosts where there is no concurrency to buy the wire
/// overhead back).
fn cluster_scenario() -> Result<(), BenchError> {
    const MODEL: u64 = 1;
    const SHARDS: u32 = 2;
    const QUERIES: usize = 4;
    const CACHE_CAP: usize = 16;
    println!("--- cluster: 100x100 mesh ROM behind {SHARDS} band shards vs one local server ---");
    let net = rc_grid(100, 100, 1.0, 1e-3, 2.0);
    let reducer = Reducer::builder()
        .blocks(4)
        .jomega_shifts(&[OMEGA_MID])
        .moments(2)
        .budget(2000)
        .adaptive(AdaptiveShiftOpts {
            candidate_omegas: AdaptiveShiftOpts::log_grid(5.0e1, 4.0e3, 6),
            tol: 1e-6,
            max_shifts: 4,
        })
        .exact_interfaces()
        .build()?;
    let artifact = reducer.reduce_to_artifact(&net)?;
    let (env_lo, env_hi) = artifact
        .provenance
        .certificate
        .frequency_envelope()
        .ok_or("cluster scenario needs a certified frequency envelope")?;
    let bytes = artifact.to_bytes();
    let reduced_dim = artifact.reduced_dim();
    let n = artifact.full_dim();

    let mut local = RomServer::with_cache_capacity(CACHE_CAP);
    let local_id = local.load_artifact(RomArtifact::from_bytes(&bytes)?);

    let plan = ShardPlan::by_bands(MODEL, SHARDS, env_lo, env_hi)?;
    let digest = plan.digest();
    let nodes: Vec<ShardNode> = (0..SHARDS)
        .map(|k| -> Result<ShardNode, BenchError> {
            let mut server = RomServer::with_cache_capacity(CACHE_CAP);
            let id = server.load_artifact(RomArtifact::from_bytes(&bytes)?);
            Ok(ShardNode::spawn(
                server,
                vec![(MODEL, id)],
                NodeConfig {
                    shard_id: k,
                    plan_digest: digest,
                    io_timeout: Duration::from_secs(120),
                },
                "127.0.0.1:0",
            )?)
        })
        .collect::<Result<_, _>>()?;
    let addrs: Vec<std::net::SocketAddr> = nodes.iter().map(ShardNode::addr).collect();
    let client = ClusterClient::connect(plan, &addrs, ClientConfig::default())?;

    let omegas: Vec<f64> = (0..SERVE_FREQS)
        .map(|i| 50.0 * (4.0e3_f64 / 50.0).powf(i as f64 / (SERVE_FREQS - 1) as f64))
        .collect();
    let batch: Vec<(u64, Vec<f64>)> = (0..QUERIES).map(|_| (MODEL, omegas.clone())).collect();

    let (t_local_us, t_unbatched_us, t_batched_us, bitwise_equal, router_overhead_us) =
        with_serial_engine(|| -> Result<(f64, f64, f64, bool, f64), BenchError> {
            // Reference pass: warms page faults and the pooled TCP
            // connections, and settles the bitwise verdict. The bounded
            // caches keep every later pass identically cold (all-miss),
            // so no further warmup discipline is needed.
            let local_ref: Vec<_> = (0..QUERIES)
                .map(|_| local.transfer_sweep(local_id, &omegas))
                .collect::<Result<_, _>>()?;
            let unbatched_ref: Vec<_> = (0..QUERIES)
                .map(|_| client.transfer_sweep(MODEL, &omegas))
                .collect::<Result<_, _>>()?;
            let batched_ref = client.sweep_batch(&batch)?;
            let bitwise_equal = (0..QUERIES)
                .all(|q| unbatched_ref[q] == local_ref[q] && batched_ref[q] == local_ref[q]);

            let best = |f: &mut dyn FnMut() -> Result<(), BenchError>| {
                let mut best = f64::INFINITY;
                for _ in 0..3 {
                    let t0 = Instant::now();
                    f()?;
                    best = best.min(t0.elapsed().as_secs_f64() * 1e6);
                }
                Ok::<f64, BenchError>(best)
            };
            let t_local_us = best(&mut || {
                for _ in 0..QUERIES {
                    std::hint::black_box(local.transfer_sweep(local_id, &omegas)?);
                }
                Ok(())
            })?;
            let t_unbatched_us = best(&mut || {
                for _ in 0..QUERIES {
                    std::hint::black_box(client.transfer_sweep(MODEL, &omegas)?);
                }
                Ok(())
            })?;
            let t_batched_us = best(&mut || {
                std::hint::black_box(client.sweep_batch(&batch)?);
                Ok(())
            })?;
            // Router + wire floor: the best ping round trip (frame codec,
            // routing, TCP loopback — no solve work at all).
            let mut ping_us = f64::INFINITY;
            for _ in 0..16 {
                let t0 = Instant::now();
                client.ping(0)?;
                ping_us = ping_us.min(t0.elapsed().as_secs_f64() * 1e6);
            }
            Ok((
                t_local_us,
                t_unbatched_us,
                t_batched_us,
                bitwise_equal,
                ping_us,
            ))
        })?;

    let cm = client.metrics();
    let local_evictions = local.metrics().cache.evictions;
    let mut shard_evictions = 0u64;
    for k in 0..SHARDS {
        let snapshot = json::parse(&client.shard_metrics(k)?)?;
        shard_evictions += snapshot
            .get("cache")
            .and_then(|c| c.num("evictions"))
            .unwrap_or(0.0) as u64;
    }
    for result in client.shutdown_all() {
        result?;
    }

    let samples = (QUERIES * SERVE_FREQS) as f64;
    let qps_local = samples / (t_local_us / 1e6);
    let qps_unbatched = samples / (t_unbatched_us / 1e6);
    let qps_batched = samples / (t_batched_us / 1e6);
    let host_cpus = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    // Same convention as the parallel-speedup records: on one CPU the
    // shard threads time-slice a single core, so there is no
    // distributed/local contrast to report — the ratio is `null` and the
    // gate skips it.
    let batched_over_local = if host_cpus >= 2 {
        format!("{:.3}", qps_batched / qps_local)
    } else {
        "null".to_string()
    };
    println!(
        "  {QUERIES} x {SERVE_FREQS}-freq sweeps: local {:.1} ms ({qps_local:.0} q/s), \
         cluster unbatched {:.1} ms ({qps_unbatched:.0} q/s), batched {:.1} ms ({qps_batched:.0} q/s)",
        t_local_us / 1e3,
        t_unbatched_us / 1e3,
        t_batched_us / 1e3,
    );
    println!(
        "  router ping floor {router_overhead_us:.1} µs; rpcs {}, coalesced {}, \
         evictions local {local_evictions} / shards {shard_evictions}; bitwise_equal {bitwise_equal}",
        cm.rpcs, cm.coalesced_queries,
    );

    let json_text = format!(
        "{{\n  \"bench\": \"cluster\",\n  \"topology\": \"rc_grid\",\n  \"n\": {n},\n  \
         \"reduced_dim\": {reduced_dim},\n  \"placement\": \"by_band\",\n  \
         \"shards\": {SHARDS},\n  \"host_cpus\": {host_cpus},\n  \"queries\": {QUERIES},\n  \
         \"sweep_frequencies\": {SERVE_FREQS},\n  \"cache_capacity\": {CACHE_CAP},\n  \
         \"t_local_us\": {t_local_us:.1},\n  \"t_cluster_unbatched_us\": {t_unbatched_us:.1},\n  \
         \"t_cluster_batched_us\": {t_batched_us:.1},\n  \"qps_local\": {qps_local:.1},\n  \
         \"qps_unbatched\": {qps_unbatched:.1},\n  \"qps_batched\": {qps_batched:.1},\n  \
         \"batched_over_local\": {batched_over_local},\n  \
         \"batched_over_unbatched\": {:.3},\n  \
         \"router_overhead_us\": {router_overhead_us:.1},\n  \"rpcs\": {},\n  \
         \"coalesced_queries\": {},\n  \"retries\": {},\n  \"worker_panics\": {},\n  \
         \"local_evictions\": {local_evictions},\n  \"shard_evictions\": {shard_evictions},\n  \
         \"bitwise_equal\": {bitwise_equal}\n}}\n",
        qps_batched / qps_unbatched,
        cm.rpcs,
        cm.coalesced_queries,
        cm.retries,
        cm.worker_panics,
    );
    std::fs::write("BENCH_cluster.json", json_text)?;
    println!("wrote BENCH_cluster.json ({SHARDS} shards, by-band placement)");
    Ok(())
}

/// Observability at scale: the n = 10⁴ reduce under `BDSM_OBS=spans`,
/// pinned to one worker so span self-times sum to stage wall-clock (with
/// `W` workers the per-point spans overlap and sum to ~`W×` the stage
/// time). Asserts the tentpole's accounting bars — the per-point Krylov
/// spans (`krylov.point` + `krylov.merge`) must sum to `stage_krylov_us`
/// within 5 %, and the `RomServer` cache counters must balance exactly —
/// then saves the Chrome trace (`BENCH_trace_10k.json`) and the global +
/// server metrics dump (`BENCH_metrics.json`) for the CI artifact trail.
fn obs_scenario() -> Result<ObsRow, BenchError> {
    const N: usize = 10_000;
    println!("--- obs: n = {N} ladder reduce + serve under BDSM_OBS=spans, one worker ---");
    let prev_level = bdsm_obs::level();
    bdsm_obs::set_level(ObsLevel::Spans);
    bdsm_obs::metrics().reset();
    let row = with_serial_engine(|| obs_scenario_body(N));
    bdsm_obs::set_level(prev_level);
    row
}

fn obs_scenario_body(n: usize) -> Result<ObsRow, BenchError> {
    let net = rc_ladder_loaded(n, 1.0, 1e-3, 5.0, 5);
    let reducer = reducer_for(n)?;
    let (rm, report, stages) = reducer.reduce_traced(&net)?;
    let trace = &report.trace;
    let per_point_us = trace.total_us("krylov.point") + trace.total_us("krylov.merge");
    let coverage = per_point_us / stages.krylov_us;
    trace.save_chrome("BENCH_trace_10k.json")?;
    println!(
        "  trace: {} spans -> BENCH_trace_10k.json; per-point krylov spans cover {:.1} % of stage_krylov_us",
        trace.len(),
        coverage * 100.0,
    );
    for (name, us) in trace.top_level_totals_us() {
        println!("    {name}: {:.1} ms", us / 1e3);
    }
    assert!(
        (0.95..=1.05).contains(&coverage),
        "krylov span accounting broke: per-point spans sum to {per_point_us:.1} µs \
         but stage_krylov_us is {:.1} µs (coverage {coverage:.3}, required within 5 %)",
        stages.krylov_us,
    );

    // Serve the freshly reduced ROM: one cold and one warm 64-frequency
    // batch, then hold the cache counters to their exact contract.
    let artifact = RomArtifact::from_model(&rm, Some(&report));
    let mut server = RomServer::new();
    let id = server.load_artifact(artifact);
    let omegas: Vec<f64> = (0..SERVE_FREQS)
        .map(|i| 50.0 * (4.0e3_f64 / 50.0).powf(i as f64 / (SERVE_FREQS - 1) as f64))
        .collect();
    std::hint::black_box(server.transfer_sweep(id, &omegas)?);
    std::hint::black_box(server.transfer_sweep(id, &omegas)?);
    let m = server.metrics();
    let cached = server.cached_shifts(id)?;
    assert_eq!(
        m.queries(),
        2 * SERVE_FREQS as u64,
        "every served sample must be classified hit-or-miss"
    );
    assert_eq!(
        m.cache.misses as usize, cached,
        "cache misses must equal distinct cached shifts"
    );
    assert_eq!(
        m.cache.misses as usize, SERVE_FREQS,
        "cold batch must miss exactly once per frequency"
    );
    assert_eq!(
        m.cache.inserts, m.cache.misses,
        "every miss must insert exactly once"
    );
    println!(
        "  serve: {} queries, hit rate {:.2}, latency p50 {:.1} µs / p95 {:.1} µs / p99 {:.1} µs",
        m.queries(),
        m.hit_rate(),
        m.latency_us.p50_us,
        m.latency_us.p95_us,
        m.latency_us.p99_us,
    );

    let global = bdsm_obs::metrics().snapshot();
    std::fs::write(
        "BENCH_metrics.json",
        format!(
            "{{\n  \"global\": {},\n  \"server\": {}\n}}\n",
            global.to_json(),
            m.to_json()
        ),
    )?;
    println!("  wrote BENCH_metrics.json (global counters + server cache/latency)");

    Ok(ObsRow {
        n,
        span_count: trace.len(),
        top_spans: trace.top_level_totals_us(),
        stage_krylov_us: stages.krylov_us,
        krylov_span_coverage: coverage,
        cache_hits: m.cache.hits,
        cache_misses: m.cache.misses,
        hit_rate: m.hit_rate(),
        latency_p50_us: m.latency_us.p50_us,
        latency_p95_us: m.latency_us.p95_us,
        latency_p99_us: m.latency_us.p99_us,
    })
}

fn run_transient(
    solver: Result<TransientSolver, bdsm_linalg::LinalgError>,
    rm: &ReducedModel,
) -> (f64, Vec<Vec<f64>>) {
    let mut solver = solver.expect("transient solver");
    let u = vec![1.0; rm.full.b.ncols()];
    let t0 = Instant::now();
    let ys = solver
        .run_constant(&u, TRANSIENT_STEPS)
        .expect("transient run");
    (t0.elapsed().as_secs_f64() * 1e6, ys)
}

fn render_f64_array(vals: &[f64]) -> String {
    let items: Vec<String> = vals.iter().map(|v| format!("{v:.6e}")).collect();
    format!("[{}]", items.join(", "))
}

/// Hand-rolled JSON (the dependency set has no serde): one record per size
/// plus the optional transient, serve, and adaptive records.
fn render_json(
    threads: usize,
    rows: &[Row],
    partition: Option<&PartitionRow>,
    transient: Option<&TransientRow>,
    serve: Option<&ServeRow>,
    adaptive: Option<&AdaptiveRow>,
    obs: Option<&ObsRow>,
) -> String {
    let mut out = format!(
        "{{\n  \"bench\": \"scaling\",\n  \"topology\": \"rc_ladder_loaded\",\n  \"omega\": {OMEGA_MID:.1},\n  \"threads\": {threads},\n  \"kernel_fused_rank1\": {},\n  \"results\": [\n",
        KERNEL_SHAPE.fused_rank1
    );
    for (i, r) in rows.iter().enumerate() {
        let dense = r
            .t_dense_us
            .map_or("null".to_string(), |v| format!("{v:.1}"));
        let speedup = r
            .t_dense_us
            .map_or("null".to_string(), |v| format!("{:.2}", v / r.t_sparse_us));
        let mem_sparse = 16 * r.factor_nnz;
        let mem_dense = 16usize.saturating_mul(r.n).saturating_mul(r.n);
        // With one worker the "parallel" and "serial" legs ran the same
        // code path — a speedup there would be fiction, so emit null.
        let reduce_speedup = if r.reduce_workers > 1 {
            format!("{:.2}", r.t_reduce_serial_us / r.t_reduce_us)
        } else {
            "null".to_string()
        };
        let sweep_speedup = if r.sweep_workers > 1 {
            format!("{:.2}", r.t_sweep_serial_us / r.t_sweep_us)
        } else {
            "null".to_string()
        };
        writeln!(
            out,
            "    {{\"n\": {}, \"nnz\": {}, \"factor_nnz\": {}, \
             \"t_sparse_factor_solve_us\": {:.1}, \"t_factor_scalar_us\": {:.1}, \
             \"t_dense_factor_solve_us\": {}, \"sparse_speedup\": {}, \
             \"t_reduce_us\": {:.1}, \"t_reduce_serial_us\": {:.1}, \
             \"reduce_workers\": {}, \"reduce_parallel_speedup\": {}, \
             \"stage_assemble_us\": {:.1}, \"stage_partition_us\": {:.1}, \
             \"stage_krylov_us\": {:.1}, \"krylov_point_us\": {:.1}, \
             \"krylov_merge_us\": {:.1}, \"stage_svd_us\": {:.1}, \
             \"stage_project_us\": {:.1}, \"stage_certify_us\": {:.1}, \
             \"t_sweep_us\": {:.1}, \"t_sweep_serial_us\": {:.1}, \
             \"sweep_workers\": {}, \"sweep_parallel_speedup\": {}, \"sweep_frequencies\": {}, \
             \"t_rom_eval_us\": {:.1}, \"reduced_dim\": {}, \
             \"mem_sparse_bytes\": {}, \"mem_dense_bytes\": {}}}{}",
            r.n,
            r.nnz,
            r.factor_nnz,
            r.t_sparse_us,
            r.t_scalar_us,
            dense,
            speedup,
            r.t_reduce_us,
            r.t_reduce_serial_us,
            r.reduce_workers,
            reduce_speedup,
            r.stages.assemble_us,
            r.stages.partition_us,
            r.stages.krylov_us,
            r.stages.krylov_point_us,
            r.stages.krylov_merge_us,
            r.stages.svd_us,
            r.stages.project_us,
            r.stages.certify_us,
            r.t_sweep_us,
            r.t_sweep_serial_us,
            r.sweep_workers,
            sweep_speedup,
            SWEEP_FREQS.len(),
            r.t_rom_eval_us,
            r.reduced_dim,
            mem_sparse,
            mem_dense,
            if i + 1 < rows.len() { "," } else { "" },
        )
        .expect("string write");
    }
    out.push_str("  ],\n");
    match partition {
        Some(p) => writeln!(
            out,
            "  \"partition\": {{\"topology\": \"rc_grid\", \"n\": {}, \"blocks\": {}, \
             \"t_bfs_partition_us\": {:.1}, \"t_nd_partition_us\": {:.1}, \
             \"bfs_interface_buses\": {}, \"nd_interface_buses\": {}, \
             \"nd_over_bfs_separator\": {:.4}, \
             \"bfs_interface_states\": {}, \"nd_interface_states\": {}, \
             \"bfs_exact_rom_dim\": {}, \"nd_exact_rom_dim\": {}}},",
            p.n,
            p.blocks,
            p.t_bfs_us,
            p.t_nd_us,
            p.bfs_interface_buses,
            p.nd_interface_buses,
            p.nd_interface_buses as f64 / p.bfs_interface_buses as f64,
            p.bfs_interface_states,
            p.nd_interface_states,
            p.bfs_exact_rom_dim,
            p.nd_exact_rom_dim,
        )
        .expect("string write"),
        None => out.push_str("  \"partition\": null,\n"),
    }
    match transient {
        Some(t) => writeln!(
            out,
            "  \"transient\": {{\"topology\": \"rc_grid\", \"n\": {}, \"steps\": {}, \
             \"h\": {:e}, \"reduced_dim\": {}, \"t_full_transient_us\": {:.1}, \
             \"t_rom_transient_us\": {:.1}, \"transient_speedup\": {:.2}, \
             \"max_rel_output_err\": {:.3e}}},",
            t.n,
            TRANSIENT_STEPS,
            TRANSIENT_H,
            t.reduced_dim,
            t.t_full_us,
            t.t_rom_us,
            t.t_full_us / t.t_rom_us,
            t.max_rel_output_err,
        )
        .expect("string write"),
        None => out.push_str("  \"transient\": null,\n"),
    }
    match serve {
        Some(s) => writeln!(
            out,
            "  \"serve\": {{\"topology\": \"rc_grid\", \"n\": {}, \"reduced_dim\": {}, \
             \"artifact_bytes\": {}, \"t_artifact_build_us\": {:.1}, \
             \"t_artifact_save_us\": {:.1}, \"t_artifact_load_us\": {:.1}, \
             \"sweep_frequencies\": {}, \"port_pairs\": {}, \
             \"t_serve_batch_us\": {:.1}, \"t_serve_warm_us\": {:.1}, \
             \"queries_per_sec\": {:.1}, \"queries_per_sec_warm\": {:.1}}},",
            s.n,
            s.reduced_dim,
            s.artifact_bytes,
            s.t_build_us,
            s.t_save_us,
            s.t_load_us,
            SERVE_FREQS,
            s.port_pairs,
            s.t_serve_batch_us,
            s.t_serve_warm_us,
            s.queries_per_sec,
            s.queries_per_sec_warm,
        )
        .expect("string write"),
        None => out.push_str("  \"serve\": null,\n"),
    }
    match adaptive {
        Some(a) => writeln!(
            out,
            "  \"adaptive\": {{\"topology\": \"rc_ladder_loaded\", \"n\": {}, \
             \"t_adaptive_reduce_us\": {:.1}, \"t_fixed_reduce_us\": {:.1}, \
             \"adaptive_overhead\": {:.2}, \"rounds\": {}, \"certified\": {}, \
             \"worst_residual\": {:.3e}, \"shifts_chosen\": {}, \
             \"residual_trajectory\": {}, \"reduced_dim\": {}, \
             \"reduced_dim_fixed\": {}, \"basis_cols\": {}, \"basis_cols_fixed\": {}, \
             \"t_certify_us\": {:.1}, \"cert_status\": \"{}\", \
             \"cert_samples\": {}, \"cert_bands\": {}}},",
            a.n,
            a.t_adaptive_us,
            a.t_fixed_us,
            a.t_adaptive_us / a.t_fixed_us,
            a.rounds,
            a.certified,
            a.worst_residual,
            render_f64_array(&a.shifts),
            render_f64_array(&a.residual_trajectory),
            a.reduced_dim,
            a.reduced_dim_fixed,
            a.basis_cols,
            a.basis_cols_fixed,
            a.t_certify_us,
            a.cert_status,
            a.cert_samples,
            a.cert_bands,
        )
        .expect("string write"),
        None => out.push_str("  \"adaptive\": null,\n"),
    }
    match obs {
        Some(o) => {
            let spans: Vec<String> = o
                .top_spans
                .iter()
                .map(|(name, us)| format!("{{\"name\": \"{name}\", \"total_us\": {us:.1}}}"))
                .collect();
            writeln!(
                out,
                "  \"obs\": {{\"topology\": \"rc_ladder_loaded\", \"n\": {}, \"level\": \"spans\", \
                 \"span_count\": {}, \"top_spans\": [{}], \
                 \"stage_krylov_us\": {:.1}, \"krylov_span_coverage\": {:.4}, \
                 \"cache_hits\": {}, \"cache_misses\": {}, \"cache_hit_rate\": {:.4}, \
                 \"latency_p50_us\": {:.1}, \"latency_p95_us\": {:.1}, \"latency_p99_us\": {:.1}}}",
                o.n,
                o.span_count,
                spans.join(", "),
                o.stage_krylov_us,
                o.krylov_span_coverage,
                o.cache_hits,
                o.cache_misses,
                o.hit_rate,
                o.latency_p50_us,
                o.latency_p95_us,
                o.latency_p99_us,
            )
            .expect("string write")
        }
        None => out.push_str("  \"obs\": null\n"),
    }
    out.push_str("}\n");
    out
}
