//! Scaling benchmark: full-vs-reduced build + solve cost and a sparse-vs-
//! dense shifted-solve shootout across grid sizes, emitted as
//! `BENCH_scaling.json` for the CI artifact trail.
//!
//! Usage: `cargo run --release -p bdsm-bench --bin scaling [n ...]`
//! (default sizes: 500 2000 10000 50000).
//!
//! Per size `n`, on a loaded RC ladder with `n` states:
//!
//! - `t_sparse_factor_solve_us` — sparse complex factorization of
//!   `G + jωC` (symbolic reused via `ShiftedPencil`) plus one solve;
//! - `t_dense_factor_solve_us`  — the dense `ZLu` equivalent, only run for
//!   `n ≤ 2000` (the dense wall is the point of the exercise);
//! - `t_reduce_us` / `t_rom_eval_us` — sparse-backend BDSM reduction and a
//!   reduced-model transfer sample;
//! - `mem_sparse_bytes` / `mem_dense_bytes` — factor storage proxies:
//!   16 bytes per stored complex factor entry vs `16·n²` dense.

use bdsm_bench::time_with_warmup;
use bdsm_circuit::mna;
use bdsm_core::krylov::KrylovOpts;
use bdsm_core::reduce::{reduce_network, ReductionOpts, SolverBackend};
use bdsm_core::synth::rc_ladder_loaded;
use bdsm_core::transfer::{eval_transfer, ZLu};
use bdsm_linalg::Complex64;
use bdsm_sparse::ShiftedPencil;
use std::fmt::Write as _;
use std::time::Instant;

const OMEGA_MID: f64 = 4.5e2;
const DENSE_CEILING: usize = 2000;

struct Row {
    n: usize,
    nnz: usize,
    factor_nnz: usize,
    t_sparse_us: f64,
    t_dense_us: Option<f64>,
    t_reduce_us: f64,
    t_rom_eval_us: f64,
    reduced_dim: usize,
}

fn main() {
    let sizes: Vec<usize> = {
        let args: Vec<usize> = std::env::args()
            .skip(1)
            .map(|a| a.parse().expect("sizes must be positive integers"))
            .collect();
        if args.is_empty() {
            vec![500, 2000, 10_000, 50_000]
        } else {
            args
        }
    };

    let mut rows = Vec::new();
    for &n in &sizes {
        println!("--- n = {n} ---");
        let net = rc_ladder_loaded(n, 1.0, 1e-3, 5.0, 5);
        let desc = mna::assemble(&net).expect("assembly");
        let (g, c) = (desc.g.to_csc(), desc.c.to_csc());
        let s = Complex64::jomega(OMEGA_MID);
        let b0: Vec<f64> = desc.b.to_dense().col(0);

        // Sparse shifted factor + solve (symbolic analysis amortized).
        let pencil = ShiftedPencil::new(&g, &c).expect("pencil");
        let iters = if n <= DENSE_CEILING { 5 } else { 2 };
        let mut factor_nnz = 0;
        let t_sparse = time_with_warmup("sparse", 1, iters, || {
            let lu = pencil.factor_complex(s).expect("sparse factor");
            factor_nnz = lu.factor_nnz();
            std::hint::black_box(lu.solve_real(&b0).expect("sparse solve"));
        });
        let t_sparse_us = t_sparse.per_iter().as_secs_f64() * 1e6;
        println!("  sparse factor+solve: {:?}/iter", t_sparse.per_iter());

        // Dense oracle, below the densification ceiling only.
        let t_dense_us = (n <= DENSE_CEILING).then(|| {
            let gd = g.to_dense();
            let cd = c.to_dense();
            let t = time_with_warmup("dense", 1, 3, || {
                let lu = ZLu::factor_shifted(&gd, &cd, s).expect("dense factor");
                std::hint::black_box(lu.solve_real(&b0).expect("dense solve"));
            });
            println!("  dense factor+solve:  {:?}/iter", t.per_iter());
            t.per_iter().as_secs_f64() * 1e6
        });

        // Full pipeline: sparse-backend reduction, then a ROM transfer
        // sample — the "build once, solve often" trade the ROM buys.
        let opts = ReductionOpts {
            num_blocks: 8,
            krylov: KrylovOpts {
                expansion_points: vec![],
                jomega_points: vec![5.0e1, OMEGA_MID, 4.0e3],
                moments_per_point: 2,
                deflation_tol: 1e-12,
            },
            rank_tol: 1e-12,
            max_reduced_dim: Some((n / 5).max(8)),
            backend: SolverBackend::Sparse,
        };
        let t0 = Instant::now();
        let rm = reduce_network(&net, &opts).expect("reduction");
        let t_reduce_us = t0.elapsed().as_secs_f64() * 1e6;
        let t_rom = time_with_warmup("rom-eval", 1, 5, || {
            std::hint::black_box(eval_transfer(&rm.g, &rm.c, &rm.b, &rm.l, s).expect("rom eval"));
        });
        let t_rom_eval_us = t_rom.per_iter().as_secs_f64() * 1e6;
        println!(
            "  reduce {n} -> {} states: {:.1} ms; ROM eval {:?}/iter",
            rm.reduced_dim(),
            t_reduce_us / 1e3,
            t_rom.per_iter()
        );
        if let Some(td) = t_dense_us {
            println!("  sparse speedup vs dense: {:.1}x", td / t_sparse_us);
        }

        rows.push(Row {
            n,
            nnz: pencil.nnz(),
            factor_nnz,
            t_sparse_us,
            t_dense_us,
            t_reduce_us,
            t_rom_eval_us,
            reduced_dim: rm.reduced_dim(),
        });
    }

    let json = render_json(&rows);
    std::fs::write("BENCH_scaling.json", &json).expect("write BENCH_scaling.json");
    println!("wrote BENCH_scaling.json ({} sizes)", rows.len());
}

/// Hand-rolled JSON (the dependency set has no serde): one record per size.
fn render_json(rows: &[Row]) -> String {
    let mut out = String::from("{\n  \"bench\": \"scaling\",\n  \"topology\": \"rc_ladder_loaded\",\n  \"omega\": 450.0,\n  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let dense = r
            .t_dense_us
            .map_or("null".to_string(), |v| format!("{v:.1}"));
        let speedup = r
            .t_dense_us
            .map_or("null".to_string(), |v| format!("{:.2}", v / r.t_sparse_us));
        let mem_sparse = 16 * r.factor_nnz;
        let mem_dense = 16usize.saturating_mul(r.n).saturating_mul(r.n);
        writeln!(
            out,
            "    {{\"n\": {}, \"nnz\": {}, \"factor_nnz\": {}, \
             \"t_sparse_factor_solve_us\": {:.1}, \"t_dense_factor_solve_us\": {}, \
             \"sparse_speedup\": {}, \"t_reduce_us\": {:.1}, \"t_rom_eval_us\": {:.1}, \
             \"reduced_dim\": {}, \"mem_sparse_bytes\": {}, \"mem_dense_bytes\": {}}}{}",
            r.n,
            r.nnz,
            r.factor_nnz,
            r.t_sparse_us,
            dense,
            speedup,
            r.t_reduce_us,
            r.t_rom_eval_us,
            r.reduced_dim,
            mem_sparse,
            mem_dense,
            if i + 1 < rows.len() { "," } else { "" },
        )
        .expect("string write");
    }
    out.push_str("  ]\n}\n");
    out
}
