//! Time-domain simulation of descriptor models `C ẋ + G x = B u`.
//!
//! The solver is the implicit (backward) Euler scheme
//!
//! ```text
//!     (C/h + G) x⁺ = (C/h) x + B u⁺,      y⁺ = L x⁺,
//! ```
//!
//! which is A-stable — the right default for stiff RC/RLC grids. The
//! left-hand side `C/h + G` is factored **once** at construction and the
//! factors are reused by every step; only the right-hand side changes per
//! step. Two backends share that contract: a dense LU for reduced models
//! (and small full models), and a sparse LU ([`TransientSolver::new_sparse`]
//! / [`TransientSolver::for_full`]) that keeps full `n ≫ 10⁴` grids inside
//! the same memory budget as their MNA stamp tables.
//!
//! # Examples
//!
//! ```
//! use bdsm_linalg::Matrix;
//! use bdsm_sim::TransientSolver;
//!
//! // One-pole RC: pole at g/c = 2 rad/s, DC gain 1/g = 0.5.
//! let g = Matrix::from_rows(&[&[2.0]]);
//! let c = Matrix::from_rows(&[&[1.0]]);
//! let b = Matrix::from_rows(&[&[1.0]]);
//! let l = Matrix::from_rows(&[&[1.0]]);
//! let mut sim = TransientSolver::new(&g, &c, &b, &l, 1e-3)?;
//! let mut y = Vec::new();
//! for _ in 0..5000 {
//!     y = sim.step(&[1.0])?;
//! }
//! assert!((y[0] - 0.5).abs() < 1e-3); // settled to the DC solution
//! # Ok::<(), bdsm_linalg::LinalgError>(())
//! ```

use bdsm_core::ReducedModel;
use bdsm_linalg::{DenseLu, LinalgError, Matrix, Result};
use bdsm_sparse::{CscMatrix, ShiftedPencil, SparseLu};

/// The factored left-hand side `C/h + G` plus the `C/h` needed per step.
///
/// Both variants are factored exactly once, at solver construction; a step
/// is one matvec and one pair of triangular solves.
#[derive(Debug, Clone)]
enum Stepper {
    Dense {
        /// `C / h`, kept for the right-hand side.
        c_over_h: Matrix,
        /// LU factors of `C/h + G`.
        lhs: DenseLu,
    },
    Sparse {
        /// `C / h`, kept for the right-hand side.
        c_over_h: CscMatrix<f64>,
        /// Sparse LU factors of `C/h + G`.
        lhs: SparseLu<f64>,
    },
}

impl Stepper {
    /// Advances the state: solves `(C/h + G) x⁺ = (C/h) x + bu`.
    fn advance(&self, x: &[f64], bu: &[f64]) -> Result<Vec<f64>> {
        match self {
            Stepper::Dense { c_over_h, lhs } => {
                let mut rhs = c_over_h.matvec(x)?;
                bdsm_linalg::vector::axpy(1.0, bu, &mut rhs);
                lhs.solve(&rhs)
            }
            Stepper::Sparse { c_over_h, lhs } => {
                let mut rhs = c_over_h.matvec(x)?;
                bdsm_linalg::vector::axpy(1.0, bu, &mut rhs);
                lhs.solve(&rhs)
            }
        }
    }
}

/// Backward-Euler transient solver for a descriptor model, with a dense or
/// sparse factorization backend behind one stepping API.
#[derive(Debug, Clone)]
pub struct TransientSolver {
    /// Input map.
    b: Matrix,
    /// Output map.
    l: Matrix,
    /// Factored left-hand side (factor once, reuse every step).
    stepper: Stepper,
    /// Current state.
    x: Vec<f64>,
    /// Step size `h`.
    h: f64,
}

impl TransientSolver {
    /// Builds a dense-backend solver with step size `h`, starting from the
    /// zero state.
    ///
    /// # Errors
    ///
    /// - [`LinalgError::InvalidArgument`] if `h` is not strictly positive or
    ///   the matrix shapes are inconsistent;
    /// - [`LinalgError::Singular`] if `C/h + G` cannot be factored.
    pub fn new(g: &Matrix, c: &Matrix, b: &Matrix, l: &Matrix, h: f64) -> Result<Self> {
        if !(h > 0.0 && h.is_finite()) {
            return Err(LinalgError::InvalidArgument {
                what: "transient: step size must be positive and finite",
            });
        }
        let n = g.nrows();
        if !g.is_square() || c.shape() != (n, n) || b.nrows() != n || l.ncols() != n {
            return Err(LinalgError::InvalidArgument {
                what: "transient: need G,C n×n, B n×m, L p×n",
            });
        }
        let c_over_h = c.scaled(1.0 / h);
        let lhs = DenseLu::factor(&c_over_h.add(g)?)?;
        Ok(TransientSolver {
            b: b.clone(),
            l: l.clone(),
            stepper: Stepper::Dense { c_over_h, lhs },
            x: vec![0.0; n],
            h,
        })
    }

    /// Builds a sparse-backend solver: `C/h + G` is assembled over the
    /// pattern union, ordered by AMD, and factored once by the sparse LU.
    ///
    /// # Errors
    ///
    /// Same as [`new`](Self::new).
    pub fn new_sparse(
        g: &CscMatrix<f64>,
        c: &CscMatrix<f64>,
        b: &Matrix,
        l: &Matrix,
        h: f64,
    ) -> Result<Self> {
        if !(h > 0.0 && h.is_finite()) {
            return Err(LinalgError::InvalidArgument {
                what: "transient: step size must be positive and finite",
            });
        }
        let n = g.nrows();
        if !g.is_square() || c.shape() != (n, n) || b.nrows() != n || l.ncols() != n {
            return Err(LinalgError::InvalidArgument {
                what: "transient: need G,C n×n, B n×m, L p×n",
            });
        }
        // G + (1/h)·C through the shifted pencil: the factorization reuses
        // the same symbolic machinery as the Krylov shifted solves.
        let lhs = ShiftedPencil::new(g, c)?.factor_real(1.0 / h)?;
        Ok(TransientSolver {
            b: b.clone(),
            l: l.clone(),
            stepper: Stepper::Sparse {
                c_over_h: c.scaled(1.0 / h),
                lhs,
            },
            x: vec![0.0; n],
            h,
        })
    }

    /// Builds a dense solver for the *reduced* model of a BDSM pipeline
    /// output (reduced systems are small and dense).
    ///
    /// # Errors
    ///
    /// Same as [`new`](Self::new).
    pub fn for_reduced(rm: &ReducedModel, h: f64) -> Result<Self> {
        TransientSolver::new(&rm.g, &rm.c, &rm.b, &rm.l, h)
    }

    /// Builds a sparse solver for the *full* (permuted) model of a BDSM
    /// pipeline output — the reference transient at grid scale.
    ///
    /// # Errors
    ///
    /// Same as [`new`](Self::new).
    pub fn for_full(rm: &ReducedModel, h: f64) -> Result<Self> {
        TransientSolver::new_sparse(&rm.full.g, &rm.full.c, &rm.full.b, &rm.full.l, h)
    }

    /// `true` when the sparse factorization backend is active.
    pub fn uses_sparse_backend(&self) -> bool {
        matches!(self.stepper, Stepper::Sparse { .. })
    }

    /// Step size `h`.
    pub fn step_size(&self) -> f64 {
        self.h
    }

    /// Current state vector.
    pub fn state(&self) -> &[f64] {
        &self.x
    }

    /// Overwrites the state (e.g. to start from a DC operating point).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::InvalidArgument`] on a length mismatch.
    pub fn set_state(&mut self, x: &[f64]) -> Result<()> {
        if x.len() != self.x.len() {
            return Err(LinalgError::InvalidArgument {
                what: "transient: state length mismatch",
            });
        }
        self.x.copy_from_slice(x);
        Ok(())
    }

    /// Advances one backward-Euler step with input `u_next` (the input at
    /// the *end* of the step) and returns the output `y = L x⁺`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `u_next` has the wrong
    /// length.
    pub fn step(&mut self, u_next: &[f64]) -> Result<Vec<f64>> {
        if u_next.len() != self.b.ncols() {
            return Err(LinalgError::ShapeMismatch {
                op: "transient-step",
                lhs: (self.b.nrows(), self.b.ncols()),
                rhs: (u_next.len(), 1),
            });
        }
        // rhs = (C/h) x + B u⁺, solved against the factors computed at
        // construction time.
        let bu = self.b.matvec(u_next)?;
        self.x = self.stepper.advance(&self.x, &bu)?;
        self.l.matvec(&self.x)
    }

    /// Runs `steps` steps with a constant input, returning the outputs of
    /// every step (row per step).
    ///
    /// # Errors
    ///
    /// Propagates the first failing step.
    pub fn run_constant(&mut self, u: &[f64], steps: usize) -> Result<Vec<Vec<f64>>> {
        (0..steps).map(|_| self.step(u)).collect()
    }

    /// Runs one step per entry of `inputs` — each an input vector `u⁺` for
    /// that step — returning the per-step outputs. This is the
    /// waveform-at-a-time shape the ROM query layer serves: a batch of
    /// input trajectories fans out over solver clones, each driven through
    /// this method.
    ///
    /// # Errors
    ///
    /// Propagates the first failing step.
    pub fn run_series(&mut self, inputs: &[Vec<f64>]) -> Result<Vec<Vec<f64>>> {
        inputs.iter().map(|u| self.step(u)).collect()
    }

    /// Resets the state to zero (the construction-time initial condition),
    /// so one factored solver can serve many independent transients.
    pub fn reset(&mut self) {
        self.x.iter_mut().for_each(|v| *v = 0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bdsm_core::krylov::KrylovOpts;
    use bdsm_core::reduce::{reduce_network, ReductionOpts};
    use bdsm_core::synth::rc_ladder;

    #[test]
    fn one_pole_matches_analytic_decay() {
        // ẋ = −2x + u with x(0) = 0, u = 1: x(t) = (1 − e^{−2t})/2.
        let g = Matrix::from_rows(&[&[2.0]]);
        let c = Matrix::from_rows(&[&[1.0]]);
        let b = Matrix::from_rows(&[&[1.0]]);
        let l = Matrix::from_rows(&[&[1.0]]);
        let h = 1e-4;
        let mut sim = TransientSolver::new(&g, &c, &b, &l, h).unwrap();
        let steps = 10_000; // t = 1.0
        let ys = sim.run_constant(&[1.0], steps).unwrap();
        let analytic = (1.0 - (-2.0_f64).exp()) / 2.0;
        let got = ys.last().unwrap()[0];
        assert!(
            (got - analytic).abs() < 1e-4,
            "backward Euler drifted: {got} vs {analytic}"
        );
    }

    #[test]
    fn reduced_ladder_transient_tracks_full_model() {
        // Step response of a 40-bus RC ladder: the ROM transient must track
        // the full-model transient at the ports.
        let net = rc_ladder(40, 1.0, 1e-3, 2.0);
        let opts = ReductionOpts {
            num_blocks: 4,
            krylov: KrylovOpts {
                expansion_points: vec![1.0e2],
                jomega_points: vec![],
                moments_per_point: 4,
                deflation_tol: 1e-12,
                ortho: Default::default(),
            },
            rank_tol: 1e-12,
            max_reduced_dim: None,
            backend: Default::default(),
            ..ReductionOpts::default()
        };
        let rm = reduce_network(&net, &opts).unwrap();
        let h = 1e-4;
        let mut full = TransientSolver::for_full(&rm, h).unwrap();
        assert!(full.uses_sparse_backend());
        let mut red = TransientSolver::for_reduced(&rm, h).unwrap();
        assert!(!red.uses_sparse_backend());
        let u = [1.0, 0.0];
        let mut worst = 0.0_f64;
        for _ in 0..400 {
            let yf = full.step(&u).unwrap();
            let yr = red.step(&u).unwrap();
            let denom = bdsm_linalg::vector::norm2(&yf).max(1e-9);
            let diff: Vec<f64> = yf.iter().zip(&yr).map(|(a, b)| a - b).collect();
            worst = worst.max(bdsm_linalg::vector::norm2(&diff) / denom);
        }
        assert!(worst < 1e-4, "ROM transient diverged: {worst}");
    }

    #[test]
    fn exact_interface_rom_exposes_boundary_voltages() {
        // Under InterfacePolicy::Exact the ROM state vector carries the
        // interface-bus voltages verbatim: during a transient, reading the
        // mapped ROM coordinate must track the full model's interface
        // state — no basis reconstruction required.
        use bdsm_core::projector::InterfacePolicy;
        let net = rc_ladder(60, 1.0, 1e-3, 2.0);
        let opts = ReductionOpts {
            num_blocks: 3,
            krylov: KrylovOpts {
                expansion_points: vec![1.0e2],
                jomega_points: vec![],
                moments_per_point: 4,
                deflation_tol: 1e-12,
                ortho: Default::default(),
            },
            rank_tol: 1e-12,
            max_reduced_dim: None,
            backend: Default::default(),
            interface_policy: InterfacePolicy::Exact,
            ..ReductionOpts::default()
        };
        let rm = reduce_network(&net, &opts).unwrap();
        let map = rm.interface_map().to_vec();
        assert!(!map.is_empty());
        let h = 1e-4;
        let mut full = TransientSolver::for_full(&rm, h).unwrap();
        let mut red = TransientSolver::for_reduced(&rm, h).unwrap();
        let u = [1.0, 0.0];
        let mut worst = 0.0_f64;
        for _ in 0..300 {
            full.step(&u).unwrap();
            red.step(&u).unwrap();
            let scale = full
                .state()
                .iter()
                .fold(0.0_f64, |m, &v| m.max(v.abs()))
                .max(1e-9);
            for &(row, col) in &map {
                worst = worst.max((red.state()[col] - full.state()[row]).abs() / scale);
            }
        }
        // Interior buses are less tightly matched than the ports the
        // moments target; 2e-3 relative still pins that the coordinate is
        // the boundary voltage and not an arbitrary mixed state.
        assert!(worst < 2e-3, "boundary trajectory diverged: {worst}");
    }

    #[test]
    fn sparse_and_dense_backends_step_identically() {
        // Same model through both factorizations: trajectories must agree
        // to solver roundoff, step for step.
        let net = rc_ladder(25, 1.0, 1e-3, 2.0);
        let desc = bdsm_circuit::mna::assemble(&net).unwrap();
        let (g, c) = (desc.g.to_csc(), desc.c.to_csc());
        let (b, l) = (desc.b.to_dense(), desc.l.to_dense());
        let h = 1e-3;
        let mut dense = TransientSolver::new(&g.to_dense(), &c.to_dense(), &b, &l, h).unwrap();
        let mut sparse = TransientSolver::new_sparse(&g, &c, &b, &l, h).unwrap();
        let u = [1.0, 0.0];
        for step in 0..100 {
            let yd = dense.step(&u).unwrap();
            let ys = sparse.step(&u).unwrap();
            let diff: Vec<f64> = yd.iter().zip(&ys).map(|(a, b)| a - b).collect();
            let denom = bdsm_linalg::vector::norm2(&yd).max(1e-12);
            assert!(
                bdsm_linalg::vector::norm2(&diff) / denom < 1e-10,
                "backends diverged at step {step}"
            );
        }
    }

    #[test]
    fn run_series_matches_stepwise_and_reset_restarts() {
        let g = Matrix::from_rows(&[&[2.0]]);
        let c = Matrix::from_rows(&[&[1.0]]);
        let b = Matrix::from_rows(&[&[1.0]]);
        let l = Matrix::from_rows(&[&[1.0]]);
        let inputs: Vec<Vec<f64>> = (0..50).map(|i| vec![(0.1 * i as f64).sin()]).collect();
        let mut a = TransientSolver::new(&g, &c, &b, &l, 1e-2).unwrap();
        let mut bsim = a.clone();
        let series = a.run_series(&inputs).unwrap();
        for (step, u) in inputs.iter().enumerate() {
            assert_eq!(series[step], bsim.step(u).unwrap(), "step {step}");
        }
        // Reset: rerunning the same waveform reproduces it bit for bit.
        a.reset();
        assert_eq!(a.state(), &[0.0]);
        assert_eq!(a.run_series(&inputs).unwrap(), series);
    }

    #[test]
    fn sparse_constructor_validates_inputs() {
        use bdsm_sparse::CscMatrix;
        let g = CscMatrix::from_dense(&Matrix::identity(2), 0.0);
        let c = CscMatrix::from_dense(&Matrix::identity(2), 0.0);
        let b = Matrix::from_fn(2, 1, |i, _| if i == 0 { 1.0 } else { 0.0 });
        let l = b.transpose();
        assert!(TransientSolver::new_sparse(&g, &c, &b, &l, 0.0).is_err());
        assert!(TransientSolver::new_sparse(&g, &c, &b, &Matrix::zeros(1, 3), 0.1).is_err());
        let c3 = CscMatrix::from_dense(&Matrix::identity(3), 0.0);
        assert!(TransientSolver::new_sparse(&g, &c3, &b, &l, 0.1).is_err());
    }

    #[test]
    fn state_accessors_and_validation() {
        let g = Matrix::identity(2);
        let c = Matrix::identity(2);
        let b = Matrix::from_fn(2, 1, |i, _| if i == 0 { 1.0 } else { 0.0 });
        let l = b.transpose();
        let mut sim = TransientSolver::new(&g, &c, &b, &l, 0.1).unwrap();
        assert_eq!(sim.step_size(), 0.1);
        assert_eq!(sim.state(), &[0.0, 0.0]);
        sim.set_state(&[1.0, -1.0]).unwrap();
        assert_eq!(sim.state(), &[1.0, -1.0]);
        assert!(sim.set_state(&[1.0]).is_err());
        assert!(sim.step(&[1.0, 2.0]).is_err());
        assert!(TransientSolver::new(&g, &c, &b, &l, 0.0).is_err());
        assert!(TransientSolver::new(&g, &c, &b, &Matrix::zeros(1, 3), 0.1).is_err());
    }
}
