//! The concurrent ROM query layer: load artifacts once, answer many
//! frequency- and time-domain queries cheaply.
//!
//! [`RomServer`] is a thread-safe handle over one or more loaded
//! [`RomArtifact`]s. Per model it keeps a **shift cache**: the dense
//! complex LU of `G_r + sC_r` at each queried shift, so a 64-frequency
//! sweep factors each frequency once ever, and repeated batches at the
//! same operating points are pure triangular solves. Batched queries fan
//! out over the [`bdsm_core::par`] substrate and inherit its determinism
//! contract: results are **bitwise-identical for any `BDSM_THREADS`**, and
//! — because cached and fresh factorizations run the very same
//! [`eval_transfer_factored`] code path — bitwise-identical to evaluating
//! the freshly built model.
//!
//! Loading (`&mut self`) is separated from serving (`&self`): share the
//! server behind an `Arc` and any number of threads can query it
//! concurrently while each batch also parallelizes internally.
//!
//! # Certified envelopes and failure containment
//!
//! Every query is validated up front (finite frequencies, positive finite
//! steps, non-empty batches) and checked against the model's **certified
//! envelope** — the frequency span its artifact certificate covers (see
//! `bdsm_core::certify`) and the matching transient-step floor. The
//! server-wide [`EnvelopePolicy`] decides what happens outside it:
//! refuse ([`QueryError::OutsideEnvelope`]), serve but count a flag (the
//! default), or ignore. Models whose certificate is `Unknown` (e.g. v2
//! artifacts) have no envelope and are never checked. Additionally, no
//! panic crosses the public query API: panics (including worker panics
//! inside a fan-out) are caught at the boundary and surface as
//! [`RomError::Internal`], counted in [`RomServer::metrics`].

use crate::artifact::{RomArtifact, RomError};
use bdsm_core::par;
use bdsm_core::transfer::{eval_transfer_factored, CMatrix, ZLu};
use bdsm_linalg::Complex64;
use bdsm_obs::{CacheStats, CacheStatsSnapshot, Counter, Histogram, HistogramSnapshot, ObsLevel};
use bdsm_sim::TransientSolver;
use std::collections::HashMap;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::Instant;

/// Why a query was rejected before any numerical work, carried by
/// [`RomError::Query`].
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum QueryError {
    /// A batched query carried no work items.
    EmptyBatch,
    /// A requested frequency was NaN or infinite.
    NonFiniteFrequency {
        /// The offending value.
        value: f64,
    },
    /// A transient step was NaN or infinite.
    NonFiniteStep {
        /// The offending value.
        value: f64,
    },
    /// A transient step was zero or negative.
    NonPositiveStep {
        /// The offending value.
        value: f64,
    },
    /// A port index exceeded the model's port count.
    PortOutOfRange {
        /// `"input"` or `"output"`.
        kind: &'static str,
        /// The requested port.
        port: usize,
        /// Ports the model actually has.
        available: usize,
    },
    /// The query left the model's certified envelope and the server runs
    /// under [`EnvelopePolicy::Strict`].
    OutsideEnvelope {
        /// First offending value (a frequency, or a transient step).
        value: f64,
        /// Certified lower bound.
        lo: f64,
        /// Certified upper bound.
        hi: f64,
        /// `"frequency"` or `"transient step"`.
        domain: &'static str,
    },
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::EmptyBatch => write!(f, "empty batch"),
            QueryError::NonFiniteFrequency { value } => {
                write!(f, "non-finite frequency {value}")
            }
            QueryError::NonFiniteStep { value } => write!(f, "non-finite transient step {value}"),
            QueryError::NonPositiveStep { value } => {
                write!(f, "non-positive transient step {value}")
            }
            QueryError::PortOutOfRange {
                kind,
                port,
                available,
            } => write!(f, "{kind} port {port} out of range (model has {available})"),
            QueryError::OutsideEnvelope {
                value,
                lo,
                hi,
                domain,
            } => write!(
                f,
                "{domain} {value} outside the certified envelope [{lo}, {hi}]"
            ),
        }
    }
}

/// What the server does with a query outside a model's certified
/// envelope.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EnvelopePolicy {
    /// Refuse with [`QueryError::OutsideEnvelope`]; the refusal is
    /// counted in [`RomServer::metrics`].
    Strict,
    /// Serve the query but count each out-of-envelope sample as a flag in
    /// [`RomServer::metrics`] — the default: graceful degradation with an
    /// explicit warning signal.
    #[default]
    Flag,
    /// Serve silently, pre-certificate behaviour.
    Ignore,
}

/// Handle to one loaded model inside a [`RomServer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RomId(usize);

impl RomId {
    /// The raw slot index (stable for the server's lifetime).
    pub fn index(&self) -> usize {
        self.0
    }
}

impl fmt::Display for RomId {
    /// Compact label (`rom#3`) for router logs and shard metrics.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rom#{}", self.0)
    }
}

/// Locks a cache mutex, recovering from poisoning: a panicked query
/// thread must not turn every later query on the model into a panic.
/// Recovery is safe because the cache only ever holds complete,
/// immutable entries — values are fully built before insertion, so no
/// half-written state can be observed.
fn lock_cache<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Per-server observability: shift-cache accounting plus the per-sample
/// query latency distribution.
///
/// Cache counters are always on (two relaxed atomic increments next to a
/// mutex-guarded map lookup — noise); the latency histogram records only
/// at `ObsLevel::Timings` and above, because it needs a clock read per
/// sample.
#[derive(Debug, Default)]
struct ServerMetrics {
    cache: CacheStats,
    query_latency_us: Histogram,
    /// Queries refused under [`EnvelopePolicy::Strict`] (one per refused
    /// call).
    envelope_refusals: Counter,
    /// Out-of-envelope samples served under [`EnvelopePolicy::Flag`]
    /// (one per sample).
    envelope_flags: Counter,
    /// Panics contained at the public API boundary.
    panics_recovered: Counter,
}

/// Point-in-time copy of a server's metrics, from [`RomServer::metrics`].
///
/// Invariants (exact, by construction): `cache.hits + cache.misses` is
/// the total number of per-frequency samples served, `cache.misses ==
/// cache.inserts` (a cold-shift race loser counts as a hit, since the
/// winner's entry served it), and `cache.inserts - cache.evictions`
/// equals the sum of [`RomServer::cached_shifts`] over all loaded
/// models. With the default unbounded cache `cache.evictions` is zero,
/// so the PR-7 contract `misses == inserts == cached_shifts` holds
/// verbatim; under a [`RomServer::set_cache_capacity`] bound the general
/// form is the exact one.
#[derive(Debug, Clone, PartialEq)]
pub struct ServerMetricsSnapshot {
    /// Shift-cache hits/misses/inserts across all models.
    pub cache: CacheStatsSnapshot,
    /// Per-sample query latency (µs); empty below `ObsLevel::Timings`.
    pub latency_us: HistogramSnapshot,
    /// Queries refused for leaving the certified envelope
    /// ([`EnvelopePolicy::Strict`]; one per refused call).
    pub envelope_refusals: u64,
    /// Out-of-envelope samples served with a warning
    /// ([`EnvelopePolicy::Flag`]; one per sample).
    pub envelope_flags: u64,
    /// Panics contained at the public API boundary (each surfaced as
    /// [`RomError::Internal`]).
    pub panics_recovered: u64,
}

impl ServerMetricsSnapshot {
    /// Total per-frequency samples served.
    pub fn queries(&self) -> u64 {
        self.cache.queries()
    }

    /// Shift-cache hit rate over all samples served.
    pub fn hit_rate(&self) -> f64 {
        self.cache.hit_rate()
    }

    /// JSON object fragment (no trailing newline).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"cache\": {{\"hits\": {}, \"misses\": {}, \"inserts\": {}, \"evictions\": {}, \
             \"hit_rate\": {}}}, \
             \"envelope\": {{\"refusals\": {}, \"flags\": {}}}, \"panics_recovered\": {}, \
             \"latency\": {}}}",
            self.cache.hits,
            self.cache.misses,
            self.cache.inserts,
            self.cache.evictions,
            self.hit_rate(),
            self.envelope_refusals,
            self.envelope_flags,
            self.panics_recovered,
            self.latency_us.to_json()
        )
    }
}

/// Independently locked segments of a model's shift cache: a hot
/// multi-threaded sweep spreads its lookups over eight mutexes instead of
/// serializing on one.
const CACHE_SEGMENTS: usize = 8;

/// One cached factorization plus its LRU stamp. Stamps come from the
/// owning segment's monotonic clock — bumped on every touch, so they are
/// unique within a segment and the eviction victim is unambiguous.
struct CacheSlot {
    lu: Arc<ZLu>,
    last_used: u64,
}

#[derive(Default)]
struct CacheSegment {
    map: HashMap<(u64, u64), CacheSlot>,
    clock: u64,
}

impl CacheSegment {
    /// Evicts least-recently-used slots until at most `cap - room` remain,
    /// counting each displaced entry.
    fn evict_down_to(&mut self, cap: usize, room: usize, stats: &CacheStats) {
        while self.map.len() + room > cap {
            let victim = self
                .map
                .iter()
                .min_by_key(|(_, slot)| slot.last_used)
                .map(|(k, _)| *k)
                .expect("segment over capacity is nonempty");
            self.map.remove(&victim);
            stats.evictions.inc();
        }
    }
}

/// A model's per-shift factorization cache: [`CACHE_SEGMENTS`]
/// independently locked LRU segments, keyed by the shift's bit pattern
/// (so `jω` and any complex shift cache alike). A capacity bound is
/// enforced per segment (the server-wide knob divided over segments,
/// rounded up), so the live-entry count never exceeds
/// `CACHE_SEGMENTS × ⌈capacity / CACHE_SEGMENTS⌉`. Eviction only ever
/// discards a completed factorization — re-deriving it later is pure and
/// bitwise-identical, so bounded caches change wall-clock, never bytes.
struct ShardedShiftCache {
    segments: [Mutex<CacheSegment>; CACHE_SEGMENTS],
    /// Max entries per segment; `None` is unbounded (the default).
    per_segment_cap: Option<usize>,
}

impl ShardedShiftCache {
    fn new(capacity: Option<usize>) -> Self {
        ShardedShiftCache {
            segments: std::array::from_fn(|_| Mutex::new(CacheSegment::default())),
            per_segment_cap: capacity.map(per_segment_cap),
        }
    }

    /// Which segment owns a shift key (splitmix-style bit mix, so nearby
    /// frequencies spread instead of clustering on one lock).
    fn segment_of(key: (u64, u64)) -> usize {
        let mut h = key.0 ^ key.1.rotate_left(32);
        h ^= h >> 30;
        h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        h ^= h >> 27;
        (h % CACHE_SEGMENTS as u64) as usize
    }

    /// Distinct shifts currently cached across all segments.
    fn len(&self) -> usize {
        self.segments.iter().map(|s| lock_cache(s).map.len()).sum()
    }

    /// Re-bounds the cache, trimming oversized segments immediately (each
    /// trimmed entry is counted as an eviction).
    fn set_capacity(&mut self, capacity: Option<usize>, stats: &CacheStats) {
        self.per_segment_cap = capacity.map(per_segment_cap);
        if let Some(cap) = self.per_segment_cap {
            for seg in &self.segments {
                lock_cache(seg).evict_down_to(cap, 0, stats);
            }
        }
    }
}

/// The per-segment share of a server-wide capacity knob: rounded up, and
/// never below one entry per segment.
fn per_segment_cap(capacity: usize) -> usize {
    capacity.div_ceil(CACHE_SEGMENTS).max(1)
}

/// One loaded artifact plus its sharded per-shift factorization cache.
struct ServedRom {
    artifact: RomArtifact,
    cache: ShardedShiftCache,
}

impl ServedRom {
    /// The cached factorization of `G_r + sC_r`, computing and inserting
    /// it on first use — a double-checked insert that **never holds a
    /// cache lock across the factorization**, so one slow cold shift
    /// cannot serialize every concurrent query on the model. Two workers
    /// racing on the same fresh shift both factor — identical, pure
    /// results — and the first insert wins; the loser is accounted as a
    /// hit, which keeps `misses == inserts` exact. A full segment evicts
    /// its least-recently-used entry before inserting.
    fn factored(&self, s: Complex64, stats: &CacheStats) -> Result<Arc<ZLu>, RomError> {
        let key = (s.re.to_bits(), s.im.to_bits());
        let segment = &self.cache.segments[ShardedShiftCache::segment_of(key)];
        {
            let mut guard = lock_cache(segment);
            // Fault site while the lock is held: an injected panic here
            // poisons the segment mutex, which is exactly the condition
            // `lock_cache`'s recovery (and its tests) exercise.
            bdsm_obs::faultpoint!("rom.cache.locked");
            guard.clock += 1;
            let tick = guard.clock;
            if let Some(slot) = guard.map.get_mut(&key) {
                slot.last_used = tick;
                stats.hits.inc();
                return Ok(Arc::clone(&slot.lu));
            }
        }
        let lu = Arc::new(ZLu::factor_shifted(&self.artifact.g, &self.artifact.c, s)?);
        let mut guard = lock_cache(segment);
        guard.clock += 1;
        let tick = guard.clock;
        if let Some(slot) = guard.map.get_mut(&key) {
            slot.last_used = tick;
            stats.hits.inc();
            return Ok(Arc::clone(&slot.lu));
        }
        stats.misses.inc();
        stats.inserts.inc();
        if let Some(cap) = self.cache.per_segment_cap {
            guard.evict_down_to(cap, 1, stats);
        }
        guard.map.insert(
            key,
            CacheSlot {
                lu: Arc::clone(&lu),
                last_used: tick,
            },
        );
        Ok(lu)
    }

    /// One transfer sample `H(s)` through the cache — the exact
    /// [`eval_transfer_factored`] path a fresh evaluation takes.
    fn eval(&self, s: Complex64, metrics: &ServerMetrics) -> Result<CMatrix, RomError> {
        let _span = bdsm_obs::span!("serve.query", re = s.re, omega = s.im);
        let t = bdsm_obs::enabled(ObsLevel::Timings).then(Instant::now);
        let lu = self.factored(s, &metrics.cache)?;
        let out = eval_transfer_factored(&lu, &self.artifact.b, &self.artifact.l)?;
        if let Some(t) = t {
            metrics.query_latency_us.record_duration(t.elapsed());
        }
        Ok(out)
    }
}

/// Thread-safe, multi-model ROM query server. See the module docs for the
/// caching and determinism contract.
#[derive(Default)]
pub struct RomServer {
    models: Vec<ServedRom>,
    metrics: ServerMetrics,
    envelope_policy: EnvelopePolicy,
    /// Server-wide per-model shift-cache bound; `None` is unbounded.
    cache_capacity: Option<usize>,
}

impl RomServer {
    /// An empty server; load models with
    /// [`load_artifact`](Self::load_artifact) / [`load_file`](Self::load_file).
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty server whose per-model shift caches hold at most
    /// `capacity` factorizations each, evicting least-recently-used
    /// entries beyond that. Eviction trades recomputation for memory and
    /// never changes served bytes. The bound is enforced per lock segment
    /// (`⌈capacity / 8⌉` each), so up to seven entries of rounding slack
    /// may remain live above `capacity`.
    pub fn with_cache_capacity(capacity: usize) -> Self {
        RomServer {
            cache_capacity: Some(capacity),
            ..Self::default()
        }
    }

    /// The per-model shift-cache bound; `None` is unbounded.
    pub fn cache_capacity(&self) -> Option<usize> {
        self.cache_capacity
    }

    /// Re-bounds every model's shift cache (and future loads). Shrinking
    /// below the live entry count trims least-recently-used entries
    /// immediately, counting each as an eviction in
    /// [`metrics`](Self::metrics).
    pub fn set_cache_capacity(&mut self, capacity: Option<usize>) {
        self.cache_capacity = capacity;
        for model in &mut self.models {
            model.cache.set_capacity(capacity, &self.metrics.cache);
        }
    }

    /// Registers an in-memory artifact, returning its handle.
    pub fn load_artifact(&mut self, artifact: RomArtifact) -> RomId {
        self.models.push(ServedRom {
            artifact,
            cache: ShardedShiftCache::new(self.cache_capacity),
        });
        RomId(self.models.len() - 1)
    }

    /// Loads a binary artifact file and registers it.
    ///
    /// # Errors
    ///
    /// Propagates [`RomArtifact::load`] failures; I/O failures carry the
    /// offending path in their message.
    pub fn load_file(&mut self, path: impl AsRef<Path>) -> Result<RomId, RomError> {
        let path = path.as_ref();
        let artifact = RomArtifact::load(path).map_err(|e| match e {
            RomError::Io(io) => RomError::Io(std::io::Error::new(
                io.kind(),
                format!("{}: {io}", path.display()),
            )),
            other => other,
        })?;
        Ok(self.load_artifact(artifact))
    }

    /// Number of loaded models.
    pub fn num_models(&self) -> usize {
        self.models.len()
    }

    /// The active out-of-envelope policy.
    pub fn envelope_policy(&self) -> EnvelopePolicy {
        self.envelope_policy
    }

    /// Sets the out-of-envelope policy for every subsequent query
    /// (server-wide; the default is [`EnvelopePolicy::Flag`]).
    pub fn set_envelope_policy(&mut self, policy: EnvelopePolicy) {
        self.envelope_policy = policy;
    }

    /// The artifact behind a handle.
    ///
    /// # Errors
    ///
    /// [`RomError::UnknownModel`] for a stale or foreign id.
    pub fn artifact(&self, id: RomId) -> Result<&RomArtifact, RomError> {
        self.models
            .get(id.0)
            .map(|m| &m.artifact)
            .ok_or(RomError::UnknownModel(id.0))
    }

    fn served(&self, id: RomId) -> Result<&ServedRom, RomError> {
        self.models.get(id.0).ok_or(RomError::UnknownModel(id.0))
    }

    /// Distinct shifts currently cached for a model.
    ///
    /// # Errors
    ///
    /// [`RomError::UnknownModel`] for a stale or foreign id.
    pub fn cached_shifts(&self, id: RomId) -> Result<usize, RomError> {
        Ok(self.served(id)?.cache.len())
    }

    /// A snapshot of this server's observability counters: shift-cache
    /// hits/misses/inserts across all models and the per-sample query
    /// latency histogram. See [`ServerMetricsSnapshot`] for the exact
    /// accounting invariants.
    pub fn metrics(&self) -> ServerMetricsSnapshot {
        ServerMetricsSnapshot {
            cache: self.metrics.cache.snapshot(),
            latency_us: self.metrics.query_latency_us.snapshot(),
            envelope_refusals: self.metrics.envelope_refusals.get(),
            envelope_flags: self.metrics.envelope_flags.get(),
            panics_recovered: self.metrics.panics_recovered.get(),
        }
    }

    /// Contains any panic escaping a query body: the public API surfaces
    /// it as [`RomError::Internal`] instead of unwinding into the caller.
    /// Sound to recover from because query bodies only read the immutable
    /// artifact and the poison-tolerant shift cache — there is no
    /// half-mutated server state a panic could leave behind.
    fn contained<T>(&self, f: impl FnOnce() -> Result<T, RomError>) -> Result<T, RomError> {
        match catch_unwind(AssertUnwindSafe(f)) {
            Ok(out) => out,
            Err(payload) => {
                self.metrics.panics_recovered.inc();
                let msg = if let Some(s) = payload.downcast_ref::<&str>() {
                    (*s).to_string()
                } else if let Some(s) = payload.downcast_ref::<String>() {
                    s.clone()
                } else {
                    "panic with non-string payload".to_string()
                };
                Err(RomError::Internal(msg))
            }
        }
    }

    /// Validates a frequency batch and applies the envelope policy.
    /// Refusals count once per call; flags count once per offending
    /// sample.
    fn admit_frequencies(&self, a: &RomArtifact, omegas: &[f64]) -> Result<(), RomError> {
        for &w in omegas {
            if !w.is_finite() {
                return Err(RomError::Query(QueryError::NonFiniteFrequency { value: w }));
            }
        }
        if self.envelope_policy == EnvelopePolicy::Ignore {
            return Ok(());
        }
        let Some((lo, hi)) = a.provenance.certificate.frequency_envelope() else {
            return Ok(()); // no certificate evidence: nothing to enforce
        };
        let mut outside = 0u64;
        let mut first = 0.0;
        for &w in omegas {
            if w < lo || w > hi {
                if outside == 0 {
                    first = w;
                }
                outside += 1;
            }
        }
        if outside == 0 {
            return Ok(());
        }
        match self.envelope_policy {
            EnvelopePolicy::Strict => {
                self.metrics.envelope_refusals.inc();
                Err(RomError::Query(QueryError::OutsideEnvelope {
                    value: first,
                    lo,
                    hi,
                    domain: "frequency",
                }))
            }
            EnvelopePolicy::Flag => {
                self.metrics.envelope_flags.add(outside);
                Ok(())
            }
            EnvelopePolicy::Ignore => unreachable!("handled above"),
        }
    }

    /// Validates a transient step and applies the envelope policy: a
    /// backward-Euler step below the certified floor `1/ω_hi` queries the
    /// model above its certified band.
    fn admit_step(&self, a: &RomArtifact, h: f64) -> Result<(), RomError> {
        if !h.is_finite() {
            return Err(RomError::Query(QueryError::NonFiniteStep { value: h }));
        }
        if h <= 0.0 {
            return Err(RomError::Query(QueryError::NonPositiveStep { value: h }));
        }
        if self.envelope_policy == EnvelopePolicy::Ignore {
            return Ok(());
        }
        let Some(h_min) = a.provenance.certificate.min_transient_step() else {
            return Ok(());
        };
        if h >= h_min {
            return Ok(());
        }
        match self.envelope_policy {
            EnvelopePolicy::Strict => {
                self.metrics.envelope_refusals.inc();
                Err(RomError::Query(QueryError::OutsideEnvelope {
                    value: h,
                    lo: h_min,
                    hi: f64::INFINITY,
                    domain: "transient step",
                }))
            }
            EnvelopePolicy::Flag => {
                self.metrics.envelope_flags.inc();
                Ok(())
            }
            EnvelopePolicy::Ignore => unreachable!("handled above"),
        }
    }

    /// Evaluates the full `p × m` transfer matrix `H(jω)` at every listed
    /// angular frequency, fanning the samples out over workers. First
    /// contact with a frequency factors and caches it; subsequent batches
    /// reuse the factors.
    ///
    /// # Errors
    ///
    /// [`RomError::UnknownModel`], [`RomError::Query`] for non-finite or
    /// (under [`EnvelopePolicy::Strict`]) out-of-envelope frequencies, or
    /// the first per-frequency failure in frequency order (e.g. a query
    /// hitting a pole).
    pub fn transfer_sweep(&self, id: RomId, omegas: &[f64]) -> Result<Vec<CMatrix>, RomError> {
        self.contained(|| {
            let _span = bdsm_obs::timing_span!("serve.sweep", freqs = omegas.len());
            let served = self.served(id)?;
            self.admit_frequencies(&served.artifact, omegas)?;
            let metrics = &self.metrics;
            par::parallel_map(omegas, |_, &w| served.eval(Complex64::jomega(w), metrics))
                .into_iter()
                .collect()
        })
    }

    /// One output/input port pair's response `H[out, in](jω)` over a
    /// frequency batch — the narrow query shape of dashboard-style
    /// consumers. Runs on the same factorization cache as
    /// [`transfer_sweep`](Self::transfer_sweep) but solves only the
    /// queried input column and contracts only the queried output row,
    /// so a sample costs one triangular solve instead of `m`. The entry
    /// is computed with exactly the operations
    /// [`transfer_sweep`](Self::transfer_sweep) would perform for it, so
    /// the two queries agree bitwise.
    ///
    /// # Errors
    ///
    /// [`RomError::Query`] for an out-of-range port, otherwise as
    /// [`transfer_sweep`](Self::transfer_sweep).
    pub fn port_response(
        &self,
        id: RomId,
        out_port: usize,
        in_port: usize,
        omegas: &[f64],
    ) -> Result<Vec<Complex64>, RomError> {
        self.contained(|| {
            let _span = bdsm_obs::timing_span!("serve.port", freqs = omegas.len());
            let served = self.served(id)?;
            let a = &served.artifact;
            if out_port >= a.num_outputs() {
                return Err(RomError::Query(QueryError::PortOutOfRange {
                    kind: "output",
                    port: out_port,
                    available: a.num_outputs(),
                }));
            }
            if in_port >= a.num_inputs() {
                return Err(RomError::Query(QueryError::PortOutOfRange {
                    kind: "input",
                    port: in_port,
                    available: a.num_inputs(),
                }));
            }
            self.admit_frequencies(a, omegas)?;
            let b_col = a.b.col(in_port);
            let metrics = &self.metrics;
            par::parallel_map(omegas, |_, &w| -> Result<Complex64, RomError> {
                let s = Complex64::jomega(w);
                let _span = bdsm_obs::span!("serve.query", re = s.re, omega = s.im);
                let t = bdsm_obs::enabled(ObsLevel::Timings).then(Instant::now);
                let lu = served.factored(s, &metrics.cache)?;
                // One column solve + one row contraction, in the same
                // operation order as `eval_transfer_factored`'s (i, j) entry.
                let x = lu.solve_real(&b_col)?;
                let mut acc = Complex64::ZERO;
                for (lv, xv) in a.l.row(out_port).iter().zip(&x) {
                    acc += *xv * *lv;
                }
                if let Some(t) = t {
                    metrics.query_latency_us.record_duration(t.elapsed());
                }
                Ok(acc)
            })
            .into_iter()
            .collect()
        })
    }

    /// Runs one backward-Euler transient over the served ROM: `inputs`
    /// holds the input vector `u⁺` of every step. The left-hand side is
    /// factored once per call.
    ///
    /// # Errors
    ///
    /// [`RomError::UnknownModel`] / [`RomError::Query`] on a bad request,
    /// [`RomError::Linalg`] when the step system cannot be factored or an
    /// input has the wrong width.
    pub fn transient(
        &self,
        id: RomId,
        h: f64,
        inputs: &[Vec<f64>],
    ) -> Result<Vec<Vec<f64>>, RomError> {
        self.contained(|| {
            let _span = bdsm_obs::timing_span!("serve.transient", steps = inputs.len());
            let a = self.artifact(id)?;
            self.admit_step(a, h)?;
            let mut solver = TransientSolver::new(&a.g, &a.c, &a.b, &a.l, h)?;
            Ok(solver.run_series(inputs)?)
        })
    }

    /// A batch of independent transients (one input waveform each), fanned
    /// out over workers. The step system is factored **once** and each
    /// worker drives a reset clone, so a batch of `W` waveforms costs one
    /// factorization plus `W` triangular-solve streams.
    ///
    /// # Errors
    ///
    /// Same as [`transient`](Self::transient); the first failing waveform
    /// (in batch order) is reported.
    pub fn transient_batch(
        &self,
        id: RomId,
        h: f64,
        waveforms: &[Vec<Vec<f64>>],
    ) -> Result<Vec<Vec<Vec<f64>>>, RomError> {
        self.contained(|| {
            let _span =
                bdsm_obs::timing_span!("serve.transient_batch", waveforms = waveforms.len());
            let a = self.artifact(id)?;
            if waveforms.is_empty() {
                return Err(RomError::Query(QueryError::EmptyBatch));
            }
            self.admit_step(a, h)?;
            let proto = TransientSolver::new(&a.g, &a.c, &a.b, &a.l, h)?;
            par::parallel_map_with(
                waveforms,
                || proto.clone(),
                |solver, _, w| {
                    solver.reset();
                    solver.run_series(w).map_err(RomError::from)
                },
            )
            .into_iter()
            .collect()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Reducer;
    use bdsm_core::synth::rc_grid;
    use bdsm_core::transfer::eval_transfer;

    fn grid_artifact() -> (bdsm_core::ReducedModel, RomArtifact) {
        let net = rc_grid(6, 8, 1.0, 1e-3, 2.0);
        let reducer = Reducer::builder()
            .blocks(3)
            .jomega_shifts(&[5.0e2, 2.0e3])
            .build()
            .unwrap();
        let (rm, report) = reducer.reduce_with_report(&net).unwrap();
        let artifact = RomArtifact::from_model(&rm, Some(&report));
        (rm, artifact)
    }

    #[test]
    fn sweep_matches_fresh_model_bitwise_and_caches() {
        let (rm, artifact) = grid_artifact();
        let mut server = RomServer::new();
        let id = server.load_artifact(artifact);
        let omegas: Vec<f64> = (0..16).map(|i| 40.0 * 1.5_f64.powi(i)).collect();
        let sweep = server.transfer_sweep(id, &omegas).unwrap();
        for (k, &w) in omegas.iter().enumerate() {
            let fresh = eval_transfer(&rm.g, &rm.c, &rm.b, &rm.l, Complex64::jomega(w)).unwrap();
            assert_eq!(sweep[k], fresh, "served sample at ω={w} differs");
        }
        assert_eq!(server.cached_shifts(id).unwrap(), omegas.len());
        // A second batch reuses every factorization and reproduces itself.
        let again = server.transfer_sweep(id, &omegas).unwrap();
        assert_eq!(again, sweep);
        assert_eq!(server.cached_shifts(id).unwrap(), omegas.len());
        // Cache accounting is exact: every sample is a hit or a miss, and
        // misses == inserts == distinct cached shifts.
        let m = server.metrics();
        assert_eq!(m.queries(), 2 * omegas.len() as u64);
        assert_eq!(m.cache.misses, omegas.len() as u64);
        assert_eq!(m.cache.inserts, m.cache.misses);
        assert_eq!(m.cache.hits, omegas.len() as u64);
        assert!((m.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn port_response_extracts_the_sweep_entry() {
        let (_, artifact) = grid_artifact();
        let mut server = RomServer::new();
        let id = server.load_artifact(artifact);
        let omegas = [100.0, 1000.0];
        let sweep = server.transfer_sweep(id, &omegas).unwrap();
        let h01 = server.port_response(id, 0, 1, &omegas).unwrap();
        for k in 0..omegas.len() {
            assert_eq!(h01[k], sweep[k][(0, 1)]);
        }
        assert!(matches!(
            server.port_response(id, 9, 0, &omegas),
            Err(RomError::Query(_))
        ));
    }

    #[test]
    fn transient_matches_direct_solver_and_batches() {
        let (rm, artifact) = grid_artifact();
        let mut server = RomServer::new();
        let id = server.load_artifact(artifact);
        let h = 1e-4;
        let m = rm.b.ncols();
        let wave: Vec<Vec<f64>> = (0..50).map(|_| vec![1.0; m]).collect();
        let served = server.transient(id, h, &wave).unwrap();
        let mut direct = TransientSolver::new(&rm.g, &rm.c, &rm.b, &rm.l, h).unwrap();
        assert_eq!(served, direct.run_series(&wave).unwrap());
        // Batch: every waveform equals its standalone run.
        let wave2: Vec<Vec<f64>> = (0..50).map(|s| vec![(0.2 * s as f64).sin(); m]).collect();
        let batch = server
            .transient_batch(id, h, &[wave.clone(), wave2.clone()])
            .unwrap();
        assert_eq!(batch[0], served);
        assert_eq!(batch[1], server.transient(id, h, &wave2).unwrap());
        assert!(matches!(
            server.transient_batch(id, h, &[]),
            Err(RomError::Query(_))
        ));
    }

    #[test]
    fn bounded_cache_evicts_lru_and_accounts_exactly() {
        let (_, artifact) = grid_artifact();
        // Capacity 8 over 8 segments = 1 slot per segment: every segment
        // collision evicts, so eviction pressure is maximal.
        let mut server = RomServer::with_cache_capacity(8);
        assert_eq!(server.cache_capacity(), Some(8));
        let id = server.load_artifact(artifact);
        let omegas: Vec<f64> = (0..32).map(|i| 40.0 * 1.3_f64.powi(i)).collect();
        let sweep = server.transfer_sweep(id, &omegas).unwrap();
        let m = server.metrics();
        // Every sample was cold → a miss and an insert; the bound only
        // changes what stays resident, never the arithmetic.
        assert_eq!(m.cache.misses, omegas.len() as u64);
        assert_eq!(m.cache.inserts, m.cache.misses);
        assert!(
            m.cache.evictions > 0,
            "32 shifts through 8 slots must evict"
        );
        // The generalized PR-7 contract: live entries == inserts - evictions.
        let live = server.cached_shifts(id).unwrap() as u64;
        assert_eq!(live, m.cache.inserts - m.cache.evictions);
        assert!(live <= 8, "cache exceeded its bound: {live}");
        // Evicted shifts refactor to bitwise-identical results.
        let again = server.transfer_sweep(id, &omegas).unwrap();
        assert_eq!(again, sweep);
    }

    #[test]
    fn warm_entries_survive_eviction_pressure() {
        let (_, artifact) = grid_artifact();
        let mut server = RomServer::new();
        let id = server.load_artifact(artifact);
        let omegas: Vec<f64> = (0..24).map(|i| 40.0 * 1.4_f64.powi(i)).collect();
        server.transfer_sweep(id, &omegas).unwrap();
        assert_eq!(server.cached_shifts(id).unwrap(), omegas.len());
        // Keep the first four hot, then shrink: the hot set was touched
        // after everything else, so LRU trimming must spare it.
        let hot = &omegas[..4];
        server.transfer_sweep(id, hot).unwrap();
        server.set_cache_capacity(Some(8));
        let m = server.metrics();
        assert_eq!(
            server.cached_shifts(id).unwrap() as u64,
            m.cache.inserts - m.cache.evictions
        );
        let before = server.metrics();
        let warm = server.transfer_sweep(id, hot).unwrap();
        let after = server.metrics();
        assert_eq!(
            after.cache.misses, before.cache.misses,
            "hot shifts were evicted despite being most recently used"
        );
        assert_eq!(after.cache.hits, before.cache.hits + hot.len() as u64);
        assert!(!warm.is_empty());
    }

    #[test]
    fn unbounded_cache_never_evicts_and_capacity_roundtrips() {
        let (_, artifact) = grid_artifact();
        let mut server = RomServer::new();
        assert_eq!(server.cache_capacity(), None);
        let id = server.load_artifact(artifact);
        let omegas: Vec<f64> = (0..16).map(|i| 40.0 * 1.5_f64.powi(i)).collect();
        server.transfer_sweep(id, &omegas).unwrap();
        let m = server.metrics();
        assert_eq!(m.cache.evictions, 0);
        assert_eq!(m.cache.misses, m.cache.inserts);
        assert_eq!(m.cache.inserts, server.cached_shifts(id).unwrap() as u64);
        // Lifting the bound back off keeps everything resident.
        server.set_cache_capacity(Some(64));
        server.set_cache_capacity(None);
        assert_eq!(server.cache_capacity(), None);
        assert_eq!(server.metrics().cache.evictions, 0);
        // JSON dump carries the eviction counter.
        assert!(server.metrics().to_json().contains("\"evictions\": 0"));
    }

    #[test]
    fn rom_id_displays_compactly() {
        let (_, artifact) = grid_artifact();
        let mut server = RomServer::new();
        let id = server.load_artifact(artifact);
        assert_eq!(format!("{id}"), "rom#0");
    }

    #[test]
    fn load_file_error_names_the_path() {
        let mut server = RomServer::new();
        let err = server
            .load_file("/nonexistent/bdsm/missing.rom")
            .unwrap_err();
        let msg = format!("{err}");
        assert!(
            msg.contains("/nonexistent/bdsm/missing.rom"),
            "I/O error lost its path: {msg}"
        );
    }

    #[test]
    fn unknown_model_is_typed() {
        let server = RomServer::new();
        assert!(matches!(
            server.transfer_sweep(RomId(3), &[1.0]),
            Err(RomError::UnknownModel(3))
        ));
        let (_, artifact) = grid_artifact();
        let mut server = RomServer::new();
        let id = server.load_artifact(artifact);
        assert_eq!(id.index(), 0);
        assert_eq!(server.num_models(), 1);
        assert!(server.artifact(id).is_ok());
    }
}
