//! The builder-style front door of the reduction pipeline.
//!
//! [`Reducer`] subsumes the sprawling `ReductionOpts` / `KrylovOpts`
//! literals of the engine layer behind a typed builder that validates the
//! whole configuration **at build time**: every inconsistency the engine
//! would surface mid-pipeline (or an example would turn into a panic) is a
//! [`BuildError`] from [`ReducerBuilder::build`] instead. A built
//! [`Reducer`] is immutable and reusable — reduce any number of networks
//! with it, or go straight to a persistable artifact with
//! [`Reducer::reduce_to_artifact`].

use crate::artifact::{RomArtifact, RomError};
use bdsm_circuit::{Network, PartitionStrategy};
use bdsm_core::engine::{AdaptiveShiftOpts, EngineReport, ShiftStrategy};
use bdsm_core::krylov::KrylovOpts;
use bdsm_core::projector::InterfacePolicy;
use bdsm_core::reduce::{
    self, ReducedModel, ReductionOpts, Result as CoreResult, SolverBackend, StageTimings,
};
use std::fmt;

/// A validated reduction configuration: the typed, high-level entry point
/// of the BDSM pipeline. Construct with [`Reducer::builder`].
///
/// ```
/// use bdsm_rom::Reducer;
/// use bdsm_core::synth::rc_grid;
///
/// let reducer = Reducer::builder()
///     .blocks(4)
///     .jomega_shifts(&[5.0e2, 2.0e3])
///     .moments(2)
///     .sparse()
///     .build()?;
/// let rm = reducer.reduce(&rc_grid(8, 10, 1.0, 1e-3, 2.0))?;
/// assert!(rm.reduced_dim() < rm.full_dim());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct Reducer {
    opts: ReductionOpts,
}

/// Typed configuration errors surfaced by [`ReducerBuilder::build`] —
/// everything that used to reach callers as an engine-level
/// `InvalidOptions` (or a panic in example code) is caught here, before
/// any factorization work starts.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum BuildError {
    /// The partition must have at least one block.
    ZeroBlocks,
    /// At least one block moment must be matched per expansion point.
    ZeroMoments,
    /// The fixed shift strategy needs at least one expansion point (the
    /// adaptive strategy seeds itself from its candidate grid).
    NoShifts,
    /// An expansion point is NaN or infinite.
    NonFiniteShift {
        /// The offending value.
        value: f64,
    },
    /// A tolerance that must be positive and finite is not.
    InvalidTolerance {
        /// Which tolerance.
        what: &'static str,
    },
    /// The reduced-dimension budget cannot hold one state per block.
    BudgetBelowBlocks {
        /// The requested budget.
        budget: usize,
        /// The requested block count.
        blocks: usize,
    },
    /// An inconsistency in the adaptive greedy configuration.
    Adaptive {
        /// What is wrong.
        what: &'static str,
    },
    /// [`ReducerBuilder::keep_buses`] was given an empty bus list.
    /// (Out-of-range indices are network-dependent, so they surface at
    /// reduce time as a circuit-layer error instead.)
    EmptyReductionSet,
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::ZeroBlocks => write!(f, "reducer: need at least one partition block"),
            BuildError::ZeroMoments => {
                write!(f, "reducer: need at least one moment per expansion point")
            }
            BuildError::NoShifts => write!(
                f,
                "reducer: fixed strategy needs at least one expansion point \
                 (real or jω); use adaptive() to let the engine choose"
            ),
            BuildError::NonFiniteShift { value } => {
                write!(f, "reducer: expansion point {value} is not finite")
            }
            BuildError::InvalidTolerance { what } => {
                write!(f, "reducer: {what} must be positive and finite")
            }
            BuildError::BudgetBelowBlocks { budget, blocks } => write!(
                f,
                "reducer: budget {budget} cannot hold one state for each of {blocks} blocks"
            ),
            BuildError::Adaptive { what } => write!(f, "reducer: adaptive {what}"),
            BuildError::EmptyReductionSet => {
                write!(f, "reducer: keep_buses needs at least one bus to keep")
            }
        }
    }
}

impl std::error::Error for BuildError {}

impl Reducer {
    /// Starts a builder with the defaults: 4 blocks, 2 moments per point,
    /// sparse backend, fixed shifts (none yet — the build fails until
    /// shifts are given or [`ReducerBuilder::adaptive`] is selected),
    /// folded interfaces, `1e-12` rank and deflation tolerances.
    pub fn builder() -> ReducerBuilder {
        ReducerBuilder::default()
    }

    /// Wraps already-assembled low-level [`ReductionOpts`], running the
    /// same validation as the builder — the bridge for callers migrating
    /// from the engine-layer literals.
    ///
    /// # Errors
    ///
    /// Same as [`ReducerBuilder::build`].
    pub fn from_opts(opts: ReductionOpts) -> Result<Reducer, BuildError> {
        validate(&opts)?;
        Ok(Reducer { opts })
    }

    /// The validated engine options this reducer runs with.
    pub fn opts(&self) -> &ReductionOpts {
        &self.opts
    }

    /// Runs the reduction pipeline on a network.
    ///
    /// # Errors
    ///
    /// Propagates engine failures (assembly, partitioning, singular
    /// shifted factorizations); configuration errors were already caught
    /// at build time.
    pub fn reduce(&self, net: &Network) -> CoreResult<ReducedModel> {
        reduce::reduce_network(net, &self.opts)
    }

    /// [`reduce`](Self::reduce) with the per-stage wall-clock breakdown.
    ///
    /// # Errors
    ///
    /// Same as [`reduce`](Self::reduce).
    pub fn reduce_timed(&self, net: &Network) -> CoreResult<(ReducedModel, StageTimings)> {
        reduce::reduce_network_timed(net, &self.opts)
    }

    /// [`reduce`](Self::reduce) with the engine's audit report (final
    /// shifts, residual trajectory, certification flag).
    ///
    /// # Errors
    ///
    /// Same as [`reduce`](Self::reduce).
    pub fn reduce_with_report(&self, net: &Network) -> CoreResult<(ReducedModel, EngineReport)> {
        reduce::reduce_network_with_report(net, &self.opts)
    }

    /// [`reduce`](Self::reduce) with the full observability bundle: the
    /// audit report (carrying the span trace of the run on
    /// [`EngineReport::trace`], at whatever detail the ambient
    /// `bdsm_obs` level recorded) plus the [`StageTimings`] view derived
    /// from that trace.
    ///
    /// # Errors
    ///
    /// Same as [`reduce`](Self::reduce).
    pub fn reduce_traced(
        &self,
        net: &Network,
    ) -> CoreResult<(ReducedModel, EngineReport, StageTimings)> {
        reduce::reduce_network_traced(net, &self.opts)
    }

    /// Builds the network's ROM and captures it — reduced system, block
    /// structure, interface map, and full provenance — as a persistable
    /// [`RomArtifact`]: the build-once → save → serve entry point.
    ///
    /// # Errors
    ///
    /// Propagates engine failures as [`RomError::Core`].
    pub fn reduce_to_artifact(&self, net: &Network) -> Result<RomArtifact, RomError> {
        let (rm, report) = self.reduce_with_report(net)?;
        let mut artifact = RomArtifact::from_model(&rm, Some(&report));
        // `from_model` can only infer the policy from the interface map;
        // here the configured policy is in hand, so record it exactly
        // (an Exact build of an interface-free partition would otherwise
        // be mislabelled Folded in the provenance). Same for the partition
        // strategy and the kept-bus designation.
        artifact.provenance.interface_policy = self.opts.interface_policy;
        artifact.provenance.partition_strategy = self.opts.partition_strategy;
        artifact.provenance.kept_buses = self.opts.kept_buses.clone().unwrap_or_default();
        Ok(artifact)
    }
}

/// Builder for [`Reducer`]; every setter is chainable and the final
/// [`build`](Self::build) validates the whole configuration at once.
#[derive(Debug, Clone)]
pub struct ReducerBuilder {
    opts: ReductionOpts,
}

impl Default for ReducerBuilder {
    fn default() -> Self {
        ReducerBuilder {
            opts: ReductionOpts {
                num_blocks: 4,
                krylov: KrylovOpts {
                    expansion_points: Vec::new(),
                    jomega_points: Vec::new(),
                    moments_per_point: 2,
                    deflation_tol: 1e-12,
                    ortho: Default::default(),
                },
                rank_tol: 1e-12,
                max_reduced_dim: None,
                backend: SolverBackend::Sparse,
                shift_strategy: ShiftStrategy::Fixed,
                interface_policy: InterfacePolicy::Folded,
                partition_strategy: PartitionStrategy::Bfs,
                kept_buses: None,
                certify: bdsm_core::certify::CertifyOpts::default(),
            },
        }
    }
}

impl ReducerBuilder {
    /// Number of partition blocks `k`.
    #[must_use]
    pub fn blocks(mut self, k: usize) -> Self {
        self.opts.num_blocks = k;
        self
    }

    /// Real expansion points `s₀` (replaces any previously set).
    #[must_use]
    pub fn real_shifts(mut self, points: &[f64]) -> Self {
        self.opts.krylov.expansion_points = points.to_vec();
        self
    }

    /// Imaginary-axis expansion points `s₀ = jω₀`, as angular frequencies
    /// (replaces any previously set). Under [`adaptive`](Self::adaptive)
    /// these form the coarse initial set the greedy loop grows from.
    #[must_use]
    pub fn jomega_shifts(mut self, omegas: &[f64]) -> Self {
        self.opts.krylov.jomega_points = omegas.to_vec();
        self
    }

    /// Block moments matched per expansion point.
    #[must_use]
    pub fn moments(mut self, per_point: usize) -> Self {
        self.opts.krylov.moments_per_point = per_point;
        self
    }

    /// Relative norm threshold for deflating dependent Krylov directions.
    #[must_use]
    pub fn deflation_tol(mut self, tol: f64) -> Self {
        self.opts.krylov.deflation_tol = tol;
        self
    }

    /// Relative singular-value threshold for per-block rank truncation.
    #[must_use]
    pub fn rank_tol(mut self, tol: f64) -> Self {
        self.opts.rank_tol = tol;
        self
    }

    /// Total reduced-dimension budget `q_max` (per-block cap `q_max / k`;
    /// under exact interfaces the cap applies to the appended Krylov
    /// directions only).
    #[must_use]
    pub fn budget(mut self, q_max: usize) -> Self {
        self.opts.max_reduced_dim = Some(q_max);
        self
    }

    /// Removes the reduced-dimension budget (the default).
    #[must_use]
    pub fn unbudgeted(mut self) -> Self {
        self.opts.max_reduced_dim = None;
        self
    }

    /// Sparse factorization backend (the default; the only route past
    /// `n ≈ 10³`).
    #[must_use]
    pub fn sparse(mut self) -> Self {
        self.opts.backend = SolverBackend::Sparse;
        self
    }

    /// Dense oracle backend (verification only).
    #[must_use]
    pub fn dense(mut self) -> Self {
        self.opts.backend = SolverBackend::Dense;
        self
    }

    /// Adaptive greedy shift selection: the engine grows the shift set
    /// from the configured points (or the grid's geometric middle when
    /// none are given), promoting worst-residual candidates until `tol`
    /// or the shift budget is reached.
    #[must_use]
    pub fn adaptive(mut self, opts: AdaptiveShiftOpts) -> Self {
        self.opts.shift_strategy = ShiftStrategy::Adaptive(opts);
        self
    }

    /// Fixed expansion points (the default): the configured shifts are
    /// used verbatim.
    #[must_use]
    pub fn fixed_shifts(mut self) -> Self {
        self.opts.shift_strategy = ShiftStrategy::Fixed;
        self
    }

    /// Preserve interface-bus voltages exactly: identity columns on the
    /// boundary rows, and the ROM state carries each boundary voltage
    /// verbatim ([`RomArtifact::interface_map`] names the coordinates).
    #[must_use]
    pub fn exact_interfaces(mut self) -> Self {
        self.opts.interface_policy = InterfacePolicy::Exact;
        self
    }

    /// Fold interface states into the block SVD bases (the default).
    #[must_use]
    pub fn folded_interfaces(mut self) -> Self {
        self.opts.interface_policy = InterfacePolicy::Folded;
        self
    }

    /// Separator-minimising nested-dissection partitioning — smaller
    /// interface sets on meshes, directly shrinking the exact-interface
    /// ROM dimension. Ignored when [`keep_buses`](Self::keep_buses) is set.
    #[must_use]
    pub fn nested_dissection(mut self) -> Self {
        self.opts.partition_strategy = PartitionStrategy::NestedDissection;
        self
    }

    /// BFS-growth partitioning (the default).
    #[must_use]
    pub fn bfs_partition(mut self) -> Self {
        self.opts.partition_strategy = PartitionStrategy::Bfs;
        self
    }

    /// User-designated reduction region: keep exactly these buses
    /// (duplicates are dropped, order is irrelevant) and eliminate every
    /// other bus. The partition is derived from the kept set instead of
    /// `blocks`/the partition strategy, and the interface policy switches
    /// to exact so kept boundary voltages are ROM coordinates verbatim —
    /// call [`folded_interfaces`](Self::folded_interfaces) afterwards to
    /// override that.
    ///
    /// Bus indices are validated against the concrete network at reduce
    /// time (a [`bdsm_circuit::CircuitError::InvalidReductionSet`] wrapped
    /// in the engine error); an empty list fails at
    /// [`build`](Self::build) with [`BuildError::EmptyReductionSet`].
    #[must_use]
    pub fn keep_buses(mut self, buses: &[usize]) -> Self {
        let mut kept = buses.to_vec();
        kept.sort_unstable();
        kept.dedup();
        self.opts.kept_buses = Some(kept);
        self.opts.interface_policy = InterfacePolicy::Exact;
        self
    }

    /// Validates the configuration and produces the immutable [`Reducer`].
    ///
    /// # Errors
    ///
    /// Any [`BuildError`] variant; see each for the rule it enforces.
    pub fn build(self) -> Result<Reducer, BuildError> {
        validate(&self.opts)?;
        Ok(Reducer { opts: self.opts })
    }
}

/// The one validation routine behind [`ReducerBuilder::build`] and
/// [`Reducer::from_opts`].
fn validate(opts: &ReductionOpts) -> Result<(), BuildError> {
    if opts.num_blocks == 0 {
        return Err(BuildError::ZeroBlocks);
    }
    if opts.krylov.moments_per_point == 0 {
        return Err(BuildError::ZeroMoments);
    }
    for &s in opts
        .krylov
        .expansion_points
        .iter()
        .chain(&opts.krylov.jomega_points)
    {
        if !s.is_finite() {
            return Err(BuildError::NonFiniteShift { value: s });
        }
    }
    if !(opts.rank_tol > 0.0 && opts.rank_tol.is_finite()) {
        return Err(BuildError::InvalidTolerance { what: "rank_tol" });
    }
    if !(opts.krylov.deflation_tol > 0.0 && opts.krylov.deflation_tol.is_finite()) {
        return Err(BuildError::InvalidTolerance {
            what: "deflation_tol",
        });
    }
    if let Some(budget) = opts.max_reduced_dim {
        if budget < opts.num_blocks {
            return Err(BuildError::BudgetBelowBlocks {
                budget,
                blocks: opts.num_blocks,
            });
        }
    }
    if let Some(kept) = &opts.kept_buses {
        if kept.is_empty() {
            return Err(BuildError::EmptyReductionSet);
        }
    }
    let have_points =
        !(opts.krylov.expansion_points.is_empty() && opts.krylov.jomega_points.is_empty());
    match &opts.shift_strategy {
        ShiftStrategy::Fixed => {
            if !have_points {
                return Err(BuildError::NoShifts);
            }
        }
        ShiftStrategy::Adaptive(a) => {
            if a.candidate_omegas.is_empty() {
                return Err(BuildError::Adaptive {
                    what: "candidate frequency grid is empty",
                });
            }
            if a.candidate_omegas.iter().any(|w| !w.is_finite()) {
                return Err(BuildError::Adaptive {
                    what: "candidate frequency grid contains a non-finite value",
                });
            }
            if !(a.tol > 0.0 && a.tol.is_finite()) {
                return Err(BuildError::Adaptive {
                    what: "residual tolerance must be positive and finite",
                });
            }
            if a.max_shifts == 0 {
                return Err(BuildError::Adaptive {
                    what: "shift budget must be at least 1",
                });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_build_fails_without_shifts() {
        assert_eq!(
            Reducer::builder().build().unwrap_err(),
            BuildError::NoShifts
        );
    }

    #[test]
    fn every_validation_rule_fires() {
        let base = || Reducer::builder().jomega_shifts(&[1.0e2]);
        assert_eq!(
            base().blocks(0).build().unwrap_err(),
            BuildError::ZeroBlocks
        );
        assert_eq!(
            base().moments(0).build().unwrap_err(),
            BuildError::ZeroMoments
        );
        assert!(matches!(
            base().real_shifts(&[f64::NAN]).build().unwrap_err(),
            BuildError::NonFiniteShift { .. }
        ));
        assert_eq!(
            base().rank_tol(0.0).build().unwrap_err(),
            BuildError::InvalidTolerance { what: "rank_tol" }
        );
        assert_eq!(
            base().deflation_tol(f64::INFINITY).build().unwrap_err(),
            BuildError::InvalidTolerance {
                what: "deflation_tol"
            }
        );
        assert_eq!(
            base().blocks(6).budget(5).build().unwrap_err(),
            BuildError::BudgetBelowBlocks {
                budget: 5,
                blocks: 6
            }
        );
        let bad_adaptive = |a: AdaptiveShiftOpts| {
            Reducer::builder()
                .adaptive(a)
                .build()
                .expect_err("adaptive config must be rejected")
        };
        assert!(matches!(
            bad_adaptive(AdaptiveShiftOpts {
                candidate_omegas: vec![],
                ..AdaptiveShiftOpts::default()
            }),
            BuildError::Adaptive { .. }
        ));
        assert!(matches!(
            bad_adaptive(AdaptiveShiftOpts {
                tol: -1.0,
                ..AdaptiveShiftOpts::default()
            }),
            BuildError::Adaptive { .. }
        ));
        assert!(matches!(
            bad_adaptive(AdaptiveShiftOpts {
                max_shifts: 0,
                ..AdaptiveShiftOpts::default()
            }),
            BuildError::Adaptive { .. }
        ));
    }

    #[test]
    fn adaptive_without_explicit_shifts_builds() {
        // The greedy loop self-seeds from the candidate grid.
        let r = Reducer::builder()
            .adaptive(AdaptiveShiftOpts::default())
            .exact_interfaces()
            .build()
            .unwrap();
        assert!(matches!(
            r.opts().shift_strategy,
            ShiftStrategy::Adaptive(_)
        ));
        assert_eq!(r.opts().interface_policy, InterfacePolicy::Exact);
    }

    #[test]
    fn keep_buses_switches_to_exact_and_rejects_empty() {
        let r = Reducer::builder()
            .jomega_shifts(&[1.0e3])
            .keep_buses(&[7, 3, 3, 5])
            .build()
            .unwrap();
        assert_eq!(r.opts().kept_buses.as_deref(), Some(&[3, 5, 7][..]));
        assert_eq!(r.opts().interface_policy, InterfacePolicy::Exact);
        assert_eq!(
            Reducer::builder()
                .jomega_shifts(&[1.0e3])
                .keep_buses(&[])
                .build()
                .unwrap_err(),
            BuildError::EmptyReductionSet
        );
    }

    #[test]
    fn partition_strategy_is_recorded() {
        let r = Reducer::builder()
            .jomega_shifts(&[1.0e3])
            .nested_dissection()
            .build()
            .unwrap();
        assert_eq!(
            r.opts().partition_strategy,
            bdsm_circuit::PartitionStrategy::NestedDissection
        );
    }

    #[test]
    fn from_opts_validates_like_the_builder() {
        let mut opts = ReductionOpts::default();
        opts.krylov.expansion_points.clear();
        assert_eq!(Reducer::from_opts(opts).unwrap_err(), BuildError::NoShifts);
        let ok = Reducer::from_opts(ReductionOpts::default()).unwrap();
        assert_eq!(ok.opts().num_blocks, 4);
    }

    #[test]
    fn artifact_records_configured_policy_even_without_interfaces() {
        // A single-block partition has no interface buses, so the map is
        // empty — but the provenance must still say Exact was configured.
        use bdsm_core::projector::InterfacePolicy;
        let net = bdsm_core::synth::rc_ladder(12, 1.0, 1e-3, 2.0);
        let artifact = Reducer::builder()
            .blocks(1)
            .jomega_shifts(&[1.0e3])
            .exact_interfaces()
            .build()
            .unwrap()
            .reduce_to_artifact(&net)
            .unwrap();
        assert!(artifact.interface_map.is_empty());
        assert_eq!(artifact.provenance.interface_policy, InterfacePolicy::Exact);
    }

    #[test]
    fn display_messages_name_the_problem() {
        assert!(BuildError::NoShifts.to_string().contains("expansion point"));
        assert!(BuildError::BudgetBelowBlocks {
            budget: 2,
            blocks: 3
        }
        .to_string()
        .contains("budget 2"));
    }
}
