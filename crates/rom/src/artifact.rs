//! Versioned, self-describing persistence for reduced models.
//!
//! A [`RomArtifact`] captures everything needed to *serve* a ROM long
//! after the build: the reduced descriptor `(G_r, C_r, B_r, L_r)`, the
//! block structure and state permutation, the interface map of exactly
//! preserved boundary voltages, and build provenance (engine version,
//! shifts chosen, residual trajectory, certification flag).
//!
//! The binary format is deliberately boring: a magic tag, a format
//! version, length-prefixed sections, every `f64` stored as its IEEE-754
//! bit pattern (`to_bits`), and a trailing FNV-1a checksum. Round-trips
//! are **bitwise-exact** — `save` → `load` reproduces every float bit for
//! bit, which is what lets a served artifact answer queries with exactly
//! the numbers the freshly built model would produce. A JSON debug dump
//! ([`RomArtifact::to_json`]) mirrors the same content human-readably.

use crate::server::QueryError;
use bdsm_circuit::{Partition, PartitionStrategy};
use bdsm_core::certify::{
    CertStatus, Certificate, CheckOutcome, ErrorBand, PassivityCertificate, StabilityCertificate,
};
use bdsm_core::engine::EngineReport;
use bdsm_core::krylov::ExpansionPoint;
use bdsm_core::projector::InterfacePolicy;
use bdsm_core::reduce::{CoreError, ReducedModel, SolverBackend};
use bdsm_linalg::{LinalgError, Matrix};
use std::fmt;
use std::fmt::Write as _;
use std::path::Path;

/// Leading magic of every artifact file.
pub const MAGIC: [u8; 8] = *b"BDSMROM\0";

/// Format version this build writes. Bump on any layout change; readers
/// accept [`MIN_FORMAT_VERSION`]..=[`FORMAT_VERSION`] and reject
/// everything else loudly.
///
/// History: v1 — initial layout; v2 — provenance gained the partition
/// strategy tag and the user-designated kept-bus list; v3 — provenance
/// gained the typed property certificate (a v2 artifact still loads,
/// reporting `CertStatus::Unknown`).
pub const FORMAT_VERSION: u32 = 3;

/// Oldest format version this build still reads.
pub const MIN_FORMAT_VERSION: u32 = 2;

/// Build provenance carried inside an artifact — the audit trail that
/// makes a loaded ROM explainable: which engine built it, from which
/// shifts, and how the adaptive residual converged.
#[derive(Debug, Clone, PartialEq)]
pub struct Provenance {
    /// `bdsm-core` version that ran the reduction.
    pub engine_version: String,
    /// Expansion points of the final basis, in merge order.
    pub shifts: Vec<ExpansionPoint>,
    /// Columns of the final global Krylov basis.
    pub basis_cols: usize,
    /// Whether the adaptive loop certified its residual tolerance.
    pub certified: bool,
    /// Worst candidate-grid residual per greedy round (empty for fixed
    /// shifts).
    pub residual_trajectory: Vec<f64>,
    /// Backend that carried the full-model solves.
    pub backend: SolverBackend,
    /// How interface buses were treated by the projector.
    pub interface_policy: InterfacePolicy,
    /// How the bus graph was partitioned into blocks.
    pub partition_strategy: PartitionStrategy,
    /// User-designated kept buses the partition was derived from (empty
    /// when the partition came from a plain strategy run instead of a
    /// reduction set).
    pub kept_buses: Vec<usize>,
    /// Typed property certificate of the reduced pencil (passivity,
    /// stability, error bands). [`CertStatus::Unknown`] for artifacts
    /// written before format v3 and for reports without a Certify run.
    pub certificate: Certificate,
}

/// A persistable reduced-order model: reduced descriptor + block
/// structure + interface map + provenance. Build one with
/// [`RomArtifact::from_model`] (or [`crate::Reducer::reduce_to_artifact`]),
/// persist with [`save`](Self::save) / [`load`](Self::load), and serve it
/// through [`crate::RomServer`].
#[derive(Debug, Clone, PartialEq)]
pub struct RomArtifact {
    /// Full states per block of the permuted full model.
    pub block_sizes: Vec<usize>,
    /// Reduced states per block (`qᵢ`; sums to the reduced dimension).
    pub block_dims: Vec<usize>,
    /// State permutation (`new_of_old`) the build applied before
    /// projection.
    pub state_order: Vec<usize>,
    /// The bus partition behind the block structure.
    pub partition: Partition,
    /// Interface states of the permuted full model (sorted).
    pub interface_states: Vec<usize>,
    /// `(full state row, reduced column)` pairs of exactly preserved
    /// boundary voltages (empty under folded interfaces).
    pub interface_map: Vec<(usize, usize)>,
    /// Reduced conductance `VᵀGV`.
    pub g: Matrix,
    /// Reduced storage `VᵀCV`.
    pub c: Matrix,
    /// Reduced input map `VᵀB`.
    pub b: Matrix,
    /// Reduced output map `LV`.
    pub l: Matrix,
    /// Build provenance.
    pub provenance: Provenance,
}

/// Errors of the artifact and serving layers.
#[derive(Debug)]
#[non_exhaustive]
pub enum RomError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// The file does not start with the artifact magic.
    BadMagic,
    /// The file's format version is not the one this build reads.
    UnsupportedVersion {
        /// Version found in the file.
        found: u32,
        /// Version this build supports.
        supported: u32,
    },
    /// The file ends mid-section.
    Truncated {
        /// Which section was being read.
        while_reading: &'static str,
    },
    /// Structurally invalid content (bad checksum, inconsistent shapes,
    /// trailing bytes, …).
    Corrupt(&'static str),
    /// A query named a model id the server has not loaded.
    UnknownModel(usize),
    /// A query was malformed or refused (port out of range, empty batch,
    /// non-finite input, outside the certified envelope, …).
    Query(QueryError),
    /// A panic crossed into the serving layer and was contained at the
    /// public API boundary; the payload is the panic message.
    Internal(String),
    /// Numerical failure while serving (e.g. a query frequency hits a
    /// pole of the ROM).
    Linalg(LinalgError),
    /// Reduction-engine failure while building an artifact.
    Core(CoreError),
}

impl fmt::Display for RomError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RomError::Io(e) => write!(f, "artifact io error: {e}"),
            RomError::BadMagic => write!(f, "not a BDSM ROM artifact (bad magic)"),
            RomError::UnsupportedVersion { found, supported } => write!(
                f,
                "artifact format version {found} unsupported (this build reads {supported})"
            ),
            RomError::Truncated { while_reading } => {
                write!(f, "artifact truncated while reading {while_reading}")
            }
            RomError::Corrupt(what) => write!(f, "artifact corrupt: {what}"),
            RomError::UnknownModel(id) => write!(f, "no model with id {id} is loaded"),
            RomError::Query(what) => write!(f, "bad query: {what}"),
            RomError::Internal(what) => write!(f, "internal serving failure: {what}"),
            RomError::Linalg(e) => write!(f, "serving failed: {e}"),
            RomError::Core(e) => write!(f, "reduction failed: {e}"),
        }
    }
}

impl std::error::Error for RomError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RomError::Io(e) => Some(e),
            RomError::Linalg(e) => Some(e),
            RomError::Core(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for RomError {
    fn from(e: std::io::Error) -> Self {
        RomError::Io(e)
    }
}

impl From<LinalgError> for RomError {
    fn from(e: LinalgError) -> Self {
        RomError::Linalg(e)
    }
}

impl From<CoreError> for RomError {
    fn from(e: CoreError) -> Self {
        RomError::Core(e)
    }
}

impl RomArtifact {
    /// Captures a freshly built [`ReducedModel`] (and, when available, the
    /// engine's audit report) as a persistable artifact. The reduced
    /// matrices are copied verbatim — no rounding, no reformatting — so
    /// the artifact serves exactly the numbers the in-memory model would.
    pub fn from_model(rm: &ReducedModel, report: Option<&EngineReport>) -> Self {
        let interface_map = rm.interface_map().to_vec();
        let provenance = Provenance {
            engine_version: bdsm_core::ENGINE_VERSION.to_string(),
            shifts: report.map(|r| r.shifts.clone()).unwrap_or_default(),
            basis_cols: report.map_or(0, |r| r.basis_cols),
            certified: report.is_some_and(|r| r.certified),
            residual_trajectory: report
                .map(|r| r.rounds.iter().map(|x| x.worst_residual).collect())
                .unwrap_or_default(),
            backend: rm.backend,
            // A `ReducedModel` does not carry its policy, so infer it
            // from the interface map (non-empty ⇔ boundaries preserved).
            // `Reducer::reduce_to_artifact` overwrites this with the
            // actually-configured policy.
            interface_policy: if interface_map.is_empty() {
                InterfacePolicy::Folded
            } else {
                InterfacePolicy::Exact
            },
            // Likewise unknown to a bare `ReducedModel`; the builder path
            // overwrites both with the configured values.
            partition_strategy: PartitionStrategy::Bfs,
            kept_buses: Vec::new(),
            certificate: report.map(|r| r.certificate.clone()).unwrap_or_default(),
        };
        RomArtifact {
            block_sizes: rm.block_sizes.clone(),
            block_dims: rm.projector.block_dims(),
            state_order: rm.state_order.clone(),
            partition: rm.partition.clone(),
            interface_states: rm.interface_states.clone(),
            interface_map,
            g: rm.g.clone(),
            c: rm.c.clone(),
            b: rm.b.clone(),
            l: rm.l.clone(),
            provenance,
        }
    }

    /// Full state dimension `n` of the model this ROM reduces.
    pub fn full_dim(&self) -> usize {
        self.block_sizes.iter().sum()
    }

    /// Reduced state dimension `q`.
    pub fn reduced_dim(&self) -> usize {
        self.g.nrows()
    }

    /// Number of input ports `m`.
    pub fn num_inputs(&self) -> usize {
        self.b.ncols()
    }

    /// Number of output ports `p`.
    pub fn num_outputs(&self) -> usize {
        self.l.nrows()
    }

    /// Number of partition blocks `k`.
    pub fn num_blocks(&self) -> usize {
        self.block_sizes.len()
    }

    /// `true` when every float, index, and string of the two artifacts is
    /// identical — the round-trip acceptance predicate (floats compared
    /// via their bit patterns, so `-0.0` and NaN payloads count).
    pub fn bitwise_eq(&self, other: &RomArtifact) -> bool {
        self.to_bytes() == other.to_bytes()
    }

    /// Serializes to the compact binary format (current version).
    pub fn to_bytes(&self) -> Vec<u8> {
        self.to_bytes_versioned(FORMAT_VERSION)
    }

    /// Serializes to the **v2** layout (no certificate section) — kept so
    /// compatibility tests can fabricate genuine old-format bytes. The
    /// certificate is simply not persisted; loading the result reports
    /// [`CertStatus::Unknown`].
    #[doc(hidden)]
    pub fn to_bytes_v2(&self) -> Vec<u8> {
        self.to_bytes_versioned(MIN_FORMAT_VERSION)
    }

    fn to_bytes_versioned(&self, version: u32) -> Vec<u8> {
        let mut w = Writer::new();
        w.bytes(&MAGIC);
        w.u32(version);
        w.str(&self.provenance.engine_version);
        w.usizes(&self.block_sizes);
        w.usizes(&self.block_dims);
        w.usizes(&self.state_order);
        w.usizes_raw(&self.partition.pack());
        w.usizes(&self.interface_states);
        w.u64(self.interface_map.len() as u64);
        for &(row, col) in &self.interface_map {
            w.u64(row as u64);
            w.u64(col as u64);
        }
        for m in [&self.g, &self.c, &self.b, &self.l] {
            w.matrix(m);
        }
        w.u64(self.provenance.shifts.len() as u64);
        for s in &self.provenance.shifts {
            match *s {
                ExpansionPoint::Real(v) => {
                    w.u8(0);
                    w.f64(v);
                }
                ExpansionPoint::Jomega(v) => {
                    w.u8(1);
                    w.f64(v);
                }
            }
        }
        w.u64(self.provenance.basis_cols as u64);
        w.u8(self.provenance.certified as u8);
        w.u64(self.provenance.residual_trajectory.len() as u64);
        for &r in &self.provenance.residual_trajectory {
            w.f64(r);
        }
        w.u8(match self.provenance.backend {
            SolverBackend::Sparse => 0,
            SolverBackend::Dense => 1,
        });
        w.u8(match self.provenance.interface_policy {
            InterfacePolicy::Folded => 0,
            InterfacePolicy::Exact => 1,
        });
        w.u8(match self.provenance.partition_strategy {
            PartitionStrategy::Bfs => 0,
            PartitionStrategy::NestedDissection => 1,
        });
        w.usizes(&self.provenance.kept_buses);
        if version >= 3 {
            write_certificate(&mut w, &self.provenance.certificate);
        }
        w.finish()
    }

    /// Deserializes the binary format, validating magic, version,
    /// checksum, and structural consistency.
    ///
    /// # Errors
    ///
    /// [`RomError::BadMagic`], [`RomError::UnsupportedVersion`],
    /// [`RomError::Truncated`], or [`RomError::Corrupt`].
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, RomError> {
        let mut r = Reader::new(bytes)?;
        let engine_version = r.str("engine version")?;
        let block_sizes = r.usizes("block sizes")?;
        let block_dims = r.usizes("block dims")?;
        let state_order = r.usizes("state order")?;
        let partition_words = r.u64s("partition")?;
        let partition = Partition::unpack(&partition_words)
            .map_err(|_| RomError::Corrupt("partition encoding invalid"))?;
        let interface_states = r.usizes("interface states")?;
        let n_map = r.len("interface map", 16)?;
        let mut interface_map = Vec::with_capacity(n_map);
        for _ in 0..n_map {
            let row = r.u64("interface map")? as usize;
            let col = r.u64("interface map")? as usize;
            interface_map.push((row, col));
        }
        let g = r.matrix("G")?;
        let c = r.matrix("C")?;
        let b = r.matrix("B")?;
        let l = r.matrix("L")?;
        let n_shifts = r.len("shifts", 9)?;
        let mut shifts = Vec::with_capacity(n_shifts);
        for _ in 0..n_shifts {
            let tag = r.u8("shift tag")?;
            let v = r.f64("shift value")?;
            shifts.push(match tag {
                0 => ExpansionPoint::Real(v),
                1 => ExpansionPoint::Jomega(v),
                _ => return Err(RomError::Corrupt("unknown expansion-point tag")),
            });
        }
        let basis_cols = r.u64("basis cols")? as usize;
        let certified = match r.u8("certified flag")? {
            0 => false,
            1 => true,
            _ => return Err(RomError::Corrupt("certified flag not boolean")),
        };
        let n_resid = r.len("residual trajectory", 8)?;
        let mut residual_trajectory = Vec::with_capacity(n_resid);
        for _ in 0..n_resid {
            residual_trajectory.push(r.f64("residual trajectory")?);
        }
        let backend = match r.u8("backend tag")? {
            0 => SolverBackend::Sparse,
            1 => SolverBackend::Dense,
            _ => return Err(RomError::Corrupt("unknown backend tag")),
        };
        let interface_policy = match r.u8("interface policy tag")? {
            0 => InterfacePolicy::Folded,
            1 => InterfacePolicy::Exact,
            _ => return Err(RomError::Corrupt("unknown interface-policy tag")),
        };
        let partition_strategy = match r.u8("partition strategy tag")? {
            0 => PartitionStrategy::Bfs,
            1 => PartitionStrategy::NestedDissection,
            _ => return Err(RomError::Corrupt("unknown partition-strategy tag")),
        };
        let kept_buses = r.usizes("kept buses")?;
        let certificate = if r.version >= 3 {
            read_certificate(&mut r)?
        } else {
            Certificate::unknown()
        };
        r.finish()?;

        let artifact = RomArtifact {
            block_sizes,
            block_dims,
            state_order,
            partition,
            interface_states,
            interface_map,
            g,
            c,
            b,
            l,
            provenance: Provenance {
                engine_version,
                shifts,
                basis_cols,
                certified,
                residual_trajectory,
                backend,
                interface_policy,
                partition_strategy,
                kept_buses,
                certificate,
            },
        };
        artifact.validate()?;
        Ok(artifact)
    }

    /// Structural consistency of a deserialized artifact: shapes agree
    /// with the block structure and every index is in range.
    fn validate(&self) -> Result<(), RomError> {
        let q = self.g.nrows();
        let n = self.full_dim();
        if !self.g.is_square() || self.c.shape() != (q, q) {
            return Err(RomError::Corrupt("reduced G/C not square and consistent"));
        }
        if self.b.nrows() != q || self.l.ncols() != q {
            return Err(RomError::Corrupt("reduced B/L shapes inconsistent"));
        }
        if self.block_dims.iter().sum::<usize>() != q {
            return Err(RomError::Corrupt("block dims do not sum to reduced dim"));
        }
        if self.block_dims.len() != self.block_sizes.len() {
            return Err(RomError::Corrupt("block dim/size counts differ"));
        }
        if self.state_order.len() != n {
            return Err(RomError::Corrupt("state order length mismatch"));
        }
        if self.interface_states.iter().any(|&s| s >= n) {
            return Err(RomError::Corrupt("interface state out of range"));
        }
        if self
            .interface_map
            .iter()
            .any(|&(row, col)| row >= n || col >= q)
        {
            return Err(RomError::Corrupt("interface map entry out of range"));
        }
        let num_buses = self.partition.block_of_node.len();
        if self.provenance.kept_buses.iter().any(|&b| b >= num_buses) {
            return Err(RomError::Corrupt("kept bus out of range"));
        }
        Ok(())
    }

    /// Saves the binary artifact to a file.
    ///
    /// # Errors
    ///
    /// [`RomError::Io`] on filesystem failure.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), RomError> {
        Ok(std::fs::write(path, self.to_bytes())?)
    }

    /// Loads a binary artifact from a file.
    ///
    /// # Errors
    ///
    /// Same as [`from_bytes`](Self::from_bytes), plus [`RomError::Io`].
    pub fn load(path: impl AsRef<Path>) -> Result<Self, RomError> {
        Self::from_bytes(&std::fs::read(path)?)
    }

    /// Human-readable JSON mirror of the artifact (floats printed with 17
    /// significant digits — enough to reconstruct every bit — but the
    /// binary format remains the round-trip authority).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"format_version\": {FORMAT_VERSION},");
        let _ = writeln!(
            out,
            "  \"engine_version\": \"{}\",",
            self.provenance.engine_version
        );
        let _ = writeln!(out, "  \"full_dim\": {},", self.full_dim());
        let _ = writeln!(out, "  \"reduced_dim\": {},", self.reduced_dim());
        let _ = writeln!(out, "  \"block_sizes\": {:?},", self.block_sizes);
        let _ = writeln!(out, "  \"block_dims\": {:?},", self.block_dims);
        let _ = writeln!(out, "  \"interface_states\": {:?},", self.interface_states);
        let map: Vec<String> = self
            .interface_map
            .iter()
            .map(|&(r, c)| format!("[{r}, {c}]"))
            .collect();
        let _ = writeln!(out, "  \"interface_map\": [{}],", map.join(", "));
        for (name, m) in [
            ("g", &self.g),
            ("c", &self.c),
            ("b", &self.b),
            ("l", &self.l),
        ] {
            let _ = writeln!(out, "  \"{name}\": {},", json_matrix(m));
        }
        let shifts: Vec<String> = self
            .provenance
            .shifts
            .iter()
            .map(|s| match *s {
                ExpansionPoint::Real(v) => format!("{{\"real\": {v:.17e}}}"),
                ExpansionPoint::Jomega(v) => format!("{{\"jomega\": {v:.17e}}}"),
            })
            .collect();
        let resid: Vec<String> = self
            .provenance
            .residual_trajectory
            .iter()
            .map(|r| format!("{r:.17e}"))
            .collect();
        let _ = writeln!(
            out,
            "  \"provenance\": {{\"shifts\": [{}], \"basis_cols\": {}, \
             \"certified\": {}, \"residual_trajectory\": [{}], \
             \"backend\": \"{:?}\", \"interface_policy\": \"{:?}\", \
             \"partition_strategy\": \"{:?}\", \"kept_buses\": {:?}}},",
            shifts.join(", "),
            self.provenance.basis_cols,
            self.provenance.certified,
            resid.join(", "),
            self.provenance.backend,
            self.provenance.interface_policy,
            self.provenance.partition_strategy,
            self.provenance.kept_buses,
        );
        let _ = writeln!(
            out,
            "  \"certificate\": {}",
            self.provenance.certificate.to_json()
        );
        out.push('}');
        out.push('\n');
        out
    }

    /// Writes the JSON debug dump next to (or instead of) the binary.
    ///
    /// # Errors
    ///
    /// [`RomError::Io`] on filesystem failure.
    pub fn save_json(&self, path: impl AsRef<Path>) -> Result<(), RomError> {
        Ok(std::fs::write(path, self.to_json())?)
    }
}

fn json_matrix(m: &Matrix) -> String {
    let rows: Vec<String> = (0..m.nrows())
        .map(|i| {
            let cells: Vec<String> = m.row(i).iter().map(|v| format!("{v:.17e}")).collect();
            format!("[{}]", cells.join(", "))
        })
        .collect();
    format!(
        "{{\"nrows\": {}, \"ncols\": {}, \"rows\": [{}]}}",
        m.nrows(),
        m.ncols(),
        rows.join(", ")
    )
}

fn outcome_tag(o: CheckOutcome) -> u8 {
    match o {
        CheckOutcome::Pass => 0,
        CheckOutcome::Fail => 1,
        CheckOutcome::Skipped => 2,
    }
}

fn outcome_from_tag(tag: u8) -> Result<CheckOutcome, RomError> {
    match tag {
        0 => Ok(CheckOutcome::Pass),
        1 => Ok(CheckOutcome::Fail),
        2 => Ok(CheckOutcome::Skipped),
        _ => Err(RomError::Corrupt("unknown check-outcome tag")),
    }
}

/// The v3 certificate section, appended after the kept-bus list.
fn write_certificate(w: &mut Writer, cert: &Certificate) {
    w.u8(match cert.status {
        CertStatus::Certified => 0,
        CertStatus::Violated => 1,
        CertStatus::Unknown => 2,
    });
    let p = &cert.passivity;
    w.f64(p.tol);
    w.f64(p.g_sym_min_eig);
    w.f64(p.c_min_eig);
    w.f64s(&p.sample_omegas);
    w.f64s(&p.sample_min_eigs);
    w.usizes(&p.violations);
    w.u8(outcome_tag(p.outcome));
    let s = &cert.stability;
    w.f64(s.lyapunov_margin_g);
    w.f64(s.lyapunov_margin_c);
    match s.spectral_abscissa {
        Some(a) => {
            w.u8(1);
            w.f64(a);
        }
        None => w.u8(0),
    }
    w.u8(outcome_tag(s.outcome));
    w.u64(cert.error_bands.len() as u64);
    for b in &cert.error_bands {
        w.f64(b.omega_lo);
        w.f64(b.omega_hi);
        w.f64(b.worst_residual);
        w.u64(b.samples as u64);
    }
}

fn read_certificate(r: &mut Reader<'_>) -> Result<Certificate, RomError> {
    let status = match r.u8("certificate status")? {
        0 => CertStatus::Certified,
        1 => CertStatus::Violated,
        2 => CertStatus::Unknown,
        _ => return Err(RomError::Corrupt("unknown certificate-status tag")),
    };
    let tol = r.f64("passivity tol")?;
    let g_sym_min_eig = r.f64("passivity g margin")?;
    let c_min_eig = r.f64("passivity c margin")?;
    let sample_omegas = r.f64s("passivity sample omegas")?;
    let sample_min_eigs = r.f64s("passivity sample eigs")?;
    let violations = r.usizes("passivity violations")?;
    if sample_min_eigs.len() != sample_omegas.len() {
        return Err(RomError::Corrupt("passivity sample lists disagree"));
    }
    if violations.iter().any(|&i| i >= sample_omegas.len()) {
        return Err(RomError::Corrupt("passivity violation index out of range"));
    }
    let passivity_outcome = outcome_from_tag(r.u8("passivity outcome")?)?;
    let lyapunov_margin_g = r.f64("stability g margin")?;
    let lyapunov_margin_c = r.f64("stability c margin")?;
    let spectral_abscissa = match r.u8("spectral abscissa tag")? {
        0 => None,
        1 => Some(r.f64("spectral abscissa")?),
        _ => return Err(RomError::Corrupt("spectral-abscissa tag not boolean")),
    };
    let stability_outcome = outcome_from_tag(r.u8("stability outcome")?)?;
    let n_bands = r.len("error bands", 32)?;
    let mut error_bands = Vec::with_capacity(n_bands);
    for _ in 0..n_bands {
        error_bands.push(ErrorBand {
            omega_lo: r.f64("error band")?,
            omega_hi: r.f64("error band")?,
            worst_residual: r.f64("error band")?,
            samples: r.u64("error band")? as usize,
        });
    }
    Ok(Certificate {
        passivity: PassivityCertificate {
            tol,
            g_sym_min_eig,
            c_min_eig,
            sample_omegas,
            sample_min_eigs,
            violations,
            outcome: passivity_outcome,
        },
        stability: StabilityCertificate {
            lyapunov_margin_g,
            lyapunov_margin_c,
            spectral_abscissa,
            outcome: stability_outcome,
        },
        error_bands,
        status,
    })
}

/// FNV-1a over a byte stream — the artifact's corruption tripwire (not a
/// cryptographic seal).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325_u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Little-endian section writer.
struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn new() -> Self {
        Writer { buf: Vec::new() }
    }

    fn bytes(&mut self, b: &[u8]) {
        self.buf.extend_from_slice(b);
    }

    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    fn str(&mut self, s: &str) {
        self.u64(s.len() as u64);
        self.bytes(s.as_bytes());
    }

    fn usizes(&mut self, vs: &[usize]) {
        self.u64(vs.len() as u64);
        for &v in vs {
            self.u64(v as u64);
        }
    }

    fn f64s(&mut self, vs: &[f64]) {
        self.u64(vs.len() as u64);
        for &v in vs {
            self.f64(v);
        }
    }

    fn usizes_raw(&mut self, vs: &[u64]) {
        self.u64(vs.len() as u64);
        for &v in vs {
            self.u64(v);
        }
    }

    fn matrix(&mut self, m: &Matrix) {
        self.u64(m.nrows() as u64);
        self.u64(m.ncols() as u64);
        for &v in m.as_slice() {
            self.f64(v);
        }
    }

    fn finish(mut self) -> Vec<u8> {
        let checksum = fnv1a(&self.buf);
        self.u64(checksum);
        self.buf
    }
}

/// Little-endian section reader over a checksum-verified payload.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
    /// End of the checksummed payload (exclusive of the trailing digest).
    end: usize,
    /// Format version declared by the file (within the supported range).
    version: u32,
}

impl<'a> Reader<'a> {
    /// Verifies magic, version, and checksum, leaving the cursor at the
    /// first payload section.
    fn new(buf: &'a [u8]) -> Result<Self, RomError> {
        if buf.len() < MAGIC.len() {
            return Err(RomError::Truncated {
                while_reading: "magic",
            });
        }
        if buf[..MAGIC.len()] != MAGIC {
            return Err(RomError::BadMagic);
        }
        if buf.len() < MAGIC.len() + 4 {
            return Err(RomError::Truncated {
                while_reading: "format version",
            });
        }
        let version = u32::from_le_bytes(buf[MAGIC.len()..MAGIC.len() + 4].try_into().unwrap());
        if !(MIN_FORMAT_VERSION..=FORMAT_VERSION).contains(&version) {
            return Err(RomError::UnsupportedVersion {
                found: version,
                supported: FORMAT_VERSION,
            });
        }
        if buf.len() < MAGIC.len() + 4 + 8 {
            return Err(RomError::Truncated {
                while_reading: "checksum",
            });
        }
        let end = buf.len() - 8;
        let stored = u64::from_le_bytes(buf[end..].try_into().unwrap());
        if fnv1a(&buf[..end]) != stored {
            return Err(RomError::Corrupt("checksum mismatch"));
        }
        Ok(Reader {
            buf,
            pos: MAGIC.len() + 4,
            end,
            version,
        })
    }

    fn take(&mut self, n: usize, while_reading: &'static str) -> Result<&'a [u8], RomError> {
        if self.pos + n > self.end {
            return Err(RomError::Truncated { while_reading });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn u8(&mut self, what: &'static str) -> Result<u8, RomError> {
        Ok(self.take(1, what)?[0])
    }

    fn u64(&mut self, what: &'static str) -> Result<u64, RomError> {
        Ok(u64::from_le_bytes(self.take(8, what)?.try_into().unwrap()))
    }

    fn f64(&mut self, what: &'static str) -> Result<f64, RomError> {
        Ok(f64::from_bits(self.u64(what)?))
    }

    /// Reads a section length, bounding it by the bytes actually left so
    /// a corrupt length cannot trigger a huge allocation.
    fn len(&mut self, what: &'static str, elem_bytes: usize) -> Result<usize, RomError> {
        let n = self.u64(what)?;
        let remaining = (self.end - self.pos) as u64;
        if n.saturating_mul(elem_bytes as u64) > remaining {
            return Err(RomError::Truncated {
                while_reading: what,
            });
        }
        Ok(n as usize)
    }

    fn str(&mut self, what: &'static str) -> Result<String, RomError> {
        let n = self.len(what, 1)?;
        String::from_utf8(self.take(n, what)?.to_vec())
            .map_err(|_| RomError::Corrupt("string not valid UTF-8"))
    }

    fn u64s(&mut self, what: &'static str) -> Result<Vec<u64>, RomError> {
        let n = self.len(what, 8)?;
        (0..n).map(|_| self.u64(what)).collect()
    }

    fn usizes(&mut self, what: &'static str) -> Result<Vec<usize>, RomError> {
        Ok(self.u64s(what)?.into_iter().map(|v| v as usize).collect())
    }

    fn f64s(&mut self, what: &'static str) -> Result<Vec<f64>, RomError> {
        let n = self.len(what, 8)?;
        (0..n).map(|_| self.f64(what)).collect()
    }

    fn matrix(&mut self, what: &'static str) -> Result<Matrix, RomError> {
        let nrows = self.u64(what)? as usize;
        let ncols = self.u64(what)? as usize;
        let total = nrows
            .checked_mul(ncols)
            .ok_or(RomError::Corrupt("matrix extent overflow"))?;
        if total.saturating_mul(8) > self.end - self.pos {
            return Err(RomError::Truncated {
                while_reading: what,
            });
        }
        let data: Vec<f64> = (0..total)
            .map(|_| self.f64(what))
            .collect::<Result<_, _>>()?;
        Matrix::from_vec(nrows, ncols, data)
            .map_err(|_| RomError::Corrupt("matrix extents inconsistent"))
    }

    /// The payload must be fully consumed — leftovers mean the writer and
    /// reader disagree about the layout.
    fn finish(self) -> Result<(), RomError> {
        if self.pos != self.end {
            return Err(RomError::Corrupt("trailing bytes after last section"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_artifact() -> RomArtifact {
        RomArtifact {
            block_sizes: vec![2, 2],
            block_dims: vec![1, 2],
            state_order: vec![0, 1, 2, 3],
            partition: Partition {
                block_of_node: vec![0, 0, 1, 1],
                blocks: vec![vec![0, 1], vec![2, 3]],
                interface: vec![1, 2],
            },
            interface_states: vec![1, 2],
            interface_map: vec![(1, 0), (2, 1)],
            g: Matrix::from_fn(3, 3, |i, j| (i * 3 + j) as f64 * 0.25 - 1.0),
            c: Matrix::from_fn(3, 3, |i, j| if i == j { 1e-3 } else { -0.0 }),
            b: Matrix::from_fn(3, 2, |i, j| (i + j) as f64),
            l: Matrix::from_fn(2, 3, |i, j| i as f64 - j as f64),
            provenance: Provenance {
                engine_version: "0.1.0".into(),
                shifts: vec![ExpansionPoint::Real(0.5), ExpansionPoint::Jomega(450.0)],
                basis_cols: 7,
                certified: true,
                residual_trajectory: vec![1e-2, 3.5e-5, 9.9e-8],
                backend: SolverBackend::Sparse,
                interface_policy: InterfacePolicy::Exact,
                partition_strategy: PartitionStrategy::NestedDissection,
                kept_buses: vec![1, 2],
                certificate: tiny_certificate(),
            },
        }
    }

    fn tiny_certificate() -> Certificate {
        Certificate {
            passivity: PassivityCertificate {
                tol: 1e-8,
                g_sym_min_eig: 0.125,
                c_min_eig: 1e-3,
                sample_omegas: vec![1.0e2, 4.5e2, 2.0e3],
                sample_min_eigs: vec![0.5, 0.25, -0.0],
                violations: vec![2],
                outcome: CheckOutcome::Pass,
            },
            stability: StabilityCertificate {
                lyapunov_margin_g: 0.125,
                lyapunov_margin_c: 1e-3,
                spectral_abscissa: Some(-42.5),
                outcome: CheckOutcome::Pass,
            },
            error_bands: vec![ErrorBand {
                omega_lo: 1.0e2,
                omega_hi: 2.0e3,
                worst_residual: 9.9e-8,
                samples: 3,
            }],
            status: CertStatus::Certified,
        }
    }

    #[test]
    fn bytes_round_trip_bitwise() {
        // -0.0 in C exercises the bit-pattern (not value) equality.
        let a = tiny_artifact();
        let back = RomArtifact::from_bytes(&a.to_bytes()).unwrap();
        assert!(a.bitwise_eq(&back));
        assert_eq!(a, back);
        assert_eq!(back.c[(0, 1)].to_bits(), (-0.0_f64).to_bits());
    }

    #[test]
    fn version_mismatch_is_typed() {
        let mut bytes = tiny_artifact().to_bytes();
        bytes[8] = FORMAT_VERSION as u8 + 1;
        assert!(matches!(
            RomArtifact::from_bytes(&bytes),
            Err(RomError::UnsupportedVersion { found, supported })
                if found == FORMAT_VERSION + 1 && supported == FORMAT_VERSION
        ));
    }

    #[test]
    fn bad_magic_and_truncation_are_typed() {
        let bytes = tiny_artifact().to_bytes();
        let mut wrong = bytes.clone();
        wrong[0] = b'X';
        assert!(matches!(
            RomArtifact::from_bytes(&wrong),
            Err(RomError::BadMagic)
        ));
        // Every proper prefix must fail loudly, never panic.
        for cut in [0, 4, MAGIC.len() + 2, MAGIC.len() + 4, bytes.len() / 2] {
            assert!(
                RomArtifact::from_bytes(&bytes[..cut]).is_err(),
                "prefix of {cut} bytes accepted"
            );
        }
    }

    #[test]
    fn v2_bytes_still_load_with_unknown_certificate() {
        let a = tiny_artifact();
        let old = a.to_bytes_v2();
        assert_eq!(old[8], MIN_FORMAT_VERSION as u8);
        let back = RomArtifact::from_bytes(&old).unwrap();
        // Everything except the (un-persisted) certificate survives.
        assert_eq!(back.provenance.certificate, Certificate::unknown());
        assert_eq!(
            back.provenance.certificate.status,
            bdsm_core::certify::CertStatus::Unknown
        );
        let mut expect = a.clone();
        expect.provenance.certificate = Certificate::unknown();
        assert_eq!(back, expect);
        // Re-saving an upgraded artifact writes the current version.
        assert_eq!(back.to_bytes()[8], FORMAT_VERSION as u8);
    }

    #[test]
    fn corrupt_certificate_tags_are_typed() {
        let a = tiny_artifact();
        let clean = a.to_bytes();
        // The status byte sits right after the kept-bus section: find it
        // by serializing v2 (same prefix) and diffing lengths.
        let v2_len = a.to_bytes_v2().len();
        let status_pos = v2_len - 8; // v2 ends with the 8-byte checksum
        let mut bytes = clean.clone();
        bytes[status_pos] = 9; // not a valid CertStatus tag
        let patched = restamp_checksum(bytes);
        assert!(matches!(
            RomArtifact::from_bytes(&patched),
            Err(RomError::Corrupt("unknown certificate-status tag"))
        ));
    }

    fn restamp_checksum(mut bytes: Vec<u8>) -> Vec<u8> {
        let end = bytes.len() - 8;
        let sum = fnv1a(&bytes[..end]);
        bytes[end..].copy_from_slice(&sum.to_le_bytes());
        bytes
    }

    #[test]
    fn payload_corruption_trips_the_checksum() {
        let mut bytes = tiny_artifact().to_bytes();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        assert!(matches!(
            RomArtifact::from_bytes(&bytes),
            Err(RomError::Corrupt("checksum mismatch"))
        ));
    }

    #[test]
    fn json_dump_names_the_structure() {
        let j = tiny_artifact().to_json();
        for needle in [
            "\"format_version\": 3",
            "\"certificate\": {\"status\": \"certified\"",
            "\"spectral_abscissa\": -4.25e1",
            "\"reduced_dim\": 3",
            "\"interface_map\": [[1, 0], [2, 1]]",
            "\"certified\": true",
            "\"jomega\"",
            "\"partition_strategy\": \"NestedDissection\"",
            "\"kept_buses\": [1, 2]",
        ] {
            assert!(j.contains(needle), "JSON dump missing {needle}:\n{j}");
        }
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("bdsm_rom_artifact_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tiny.rom");
        let a = tiny_artifact();
        a.save(&path).unwrap();
        let back = RomArtifact::load(&path).unwrap();
        assert!(a.bitwise_eq(&back));
        a.save_json(dir.join("tiny.json")).unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
