//! # bdsm-rom — the public API v1 of the BDSM pipeline
//!
//! The paper's economics are *build once, evaluate forever*: a
//! block-diagonal ROM is expensive to construct and nearly free to query.
//! This crate makes that lifecycle the first-class object, in three types:
//!
//! 1. [`Reducer`] — a typed builder over the staged reduction engine.
//!    Configuration is validated at [`ReducerBuilder::build`] time and
//!    surfaces as a [`BuildError`], not as a mid-pipeline failure:
//!
//!    ```no_run
//!    # use bdsm_rom::Reducer;
//!    # use bdsm_core::engine::AdaptiveShiftOpts;
//!    let reducer = Reducer::builder()
//!        .blocks(4)
//!        .adaptive(AdaptiveShiftOpts::default())
//!        .exact_interfaces()
//!        .sparse()
//!        .build()?;
//!    # Ok::<(), bdsm_rom::BuildError>(())
//!    ```
//!
//! 2. [`RomArtifact`] — a versioned, self-describing serialization of the
//!    reduced model: magic + format version, the reduced descriptor, block
//!    structure, interface map, and provenance (engine version, shifts
//!    chosen, residual trajectory). Round-trips are bitwise-exact (every
//!    `f64` via its bit pattern) and guarded by a checksum.
//!
//! 3. [`RomServer`] — a thread-safe handle over loaded artifacts that
//!    caches per-shift ROM factorizations and serves batched
//!    [`transfer_sweep`](RomServer::transfer_sweep),
//!    [`port_response`](RomServer::port_response), and
//!    [`transient`](RomServer::transient) queries concurrently on the
//!    `bdsm-core` parallel substrate — bitwise-deterministic for any
//!    `BDSM_THREADS`, and bitwise-equal to evaluating the freshly built
//!    model. Queries are validated up front (typed [`QueryError`]s),
//!    checked against the artifact's certified frequency envelope per
//!    [`EnvelopePolicy`], and contained: a panic anywhere inside a query
//!    surfaces as [`RomError::Internal`], never across the API boundary.
//!
//! The engine-layer free functions (`bdsm_core::reduce::reduce_network*`)
//! remain available as the low-level path underneath this API.

pub mod artifact;
pub mod builder;
pub mod server;

pub use artifact::{Provenance, RomArtifact, RomError, FORMAT_VERSION, MAGIC};
pub use builder::{BuildError, Reducer, ReducerBuilder};
pub use server::{EnvelopePolicy, QueryError, RomId, RomServer, ServerMetricsSnapshot};

// The certificate types travel inside every v3 artifact; re-export them so
// downstream users of the serving layer need not depend on `bdsm-core`
// directly to inspect provenance.
pub use bdsm_core::certify::{
    CertStatus, Certificate, CheckOutcome, ErrorBand, PassivityCertificate, StabilityCertificate,
};
