//! Fault-injection hardening of the serving layer: induced panics,
//! poisoned locks, malformed queries, and corrupted artifact bytes must
//! all surface as **typed [`RomError`]s** — no panic ever crosses the
//! public API, and no corruption ever decodes into a wrong-but-valid
//! model.
//!
//! Fault sites are process-global (`bdsm_obs::fault`), and some tests pin
//! `BDSM_THREADS`; everything in this file serializes on one lock.

use bdsm_linalg::Complex64;
use bdsm_rom::{QueryError, Reducer, RomArtifact, RomError, RomServer};
use std::sync::Mutex;

static FAULT_LOCK: Mutex<()> = Mutex::new(());

fn locked() -> std::sync::MutexGuard<'static, ()> {
    FAULT_LOCK.lock().unwrap_or_else(|p| p.into_inner())
}

/// Pins `BDSM_THREADS` for one test body, restoring the prior value on
/// drop (also on assertion failure).
struct Threads(Option<String>);

impl Threads {
    fn pin(n: &str) -> Self {
        let prev = std::env::var("BDSM_THREADS").ok();
        std::env::set_var("BDSM_THREADS", n);
        Threads(prev)
    }
}

impl Drop for Threads {
    fn drop(&mut self) {
        match self.0.take() {
            Some(v) => std::env::set_var("BDSM_THREADS", v),
            None => std::env::remove_var("BDSM_THREADS"),
        }
    }
}

fn grid_server() -> (RomServer, bdsm_rom::RomId) {
    let net = bdsm_core::synth::rc_grid(6, 8, 1.0, 1e-3, 2.0);
    let reducer = Reducer::builder()
        .blocks(3)
        .jomega_shifts(&[5.0e2, 2.0e3])
        .build()
        .expect("valid reducer");
    let artifact = reducer.reduce_to_artifact(&net).expect("reduce");
    let mut server = RomServer::new();
    let id = server.load_artifact(artifact);
    (server, id)
}

fn sweep_omegas() -> Vec<f64> {
    (0..12).map(|i| 100.0 * 1.4_f64.powi(i)).collect()
}

#[test]
fn worker_panic_surfaces_as_internal_error_then_serving_recovers() {
    let _g = locked();
    let (server, id) = grid_server();
    let omegas = sweep_omegas();

    // Both the serial short-circuit and the fan-out workers pass through
    // the `par.item` fault site; exercise each thread shape.
    for threads in ["1", "4"] {
        let _t = Threads::pin(threads);
        let before = server.metrics().panics_recovered;
        let guard = bdsm_obs::fault::arm("par.item");
        let err = server
            .transfer_sweep(id, &omegas)
            .expect_err("injected worker panic must fail the query");
        match err {
            RomError::Internal(msg) => {
                assert!(
                    msg.contains("injected fault") || msg.contains("panicked"),
                    "unexpected contained-panic message: {msg}"
                );
            }
            other => panic!("expected RomError::Internal, got {other:?}"),
        }
        assert_eq!(
            server.metrics().panics_recovered,
            before + 1,
            "each contained panic is counted exactly once"
        );
        drop(guard);
        // Disarmed: the very same query now succeeds.
        let sweep = server.transfer_sweep(id, &omegas).expect("recovered sweep");
        assert_eq!(sweep.len(), omegas.len());
    }
}

#[test]
fn poisoned_cache_lock_recovers_with_exact_cache_accounting() {
    let _g = locked();
    let _t = Threads::pin("1");
    let (server, id) = grid_server();
    let omegas = sweep_omegas();

    // `rom.cache.locked` fires while the shift-cache mutex is held, so the
    // injected panic poisons the lock before any counter moves.
    let guard = bdsm_obs::fault::arm("rom.cache.locked");
    let err = server
        .transfer_sweep(id, &omegas)
        .expect_err("panic while holding the cache lock must fail the query");
    assert!(matches!(err, RomError::Internal(_)), "got {err:?}");
    drop(guard);

    // The lock is now poisoned; `lock_cache` recovery must keep every
    // later query working with the cache invariants intact: misses ==
    // inserts == cached shifts, and a warm re-sweep is pure hits.
    let cold = server
        .transfer_sweep(id, &omegas)
        .expect("post-poison sweep");
    let warm = server.transfer_sweep(id, &omegas).expect("warm sweep");
    assert_eq!(cold, warm, "poison recovery changed served bytes");
    let m = server.metrics();
    let n = omegas.len() as u64;
    assert_eq!(m.cache.misses, n);
    assert_eq!(m.cache.inserts, n);
    assert_eq!(m.cache.hits, n);
    assert_eq!(server.cached_shifts(id).unwrap(), omegas.len());
    assert_eq!(m.panics_recovered, 1);
}

#[test]
fn malformed_queries_are_typed_never_panics() {
    let _g = locked();
    let (server, id) = grid_server();
    let nports = server.artifact(id).unwrap().num_outputs();

    let err = server.transfer_sweep(id, &[1.0, f64::NAN]).unwrap_err();
    assert!(
        matches!(
            err,
            RomError::Query(QueryError::NonFiniteFrequency { value }) if value.is_nan()
        ),
        "got {err:?}"
    );
    let err = server
        .port_response(id, nports + 3, 0, &[1.0e3])
        .unwrap_err();
    assert!(
        matches!(
            err,
            RomError::Query(QueryError::PortOutOfRange {
                kind: "output",
                port,
                available,
            }) if port == nports + 3 && available == nports
        ),
        "got {err:?}"
    );
    let err = server.transient_batch(id, 1e-4, &[]).unwrap_err();
    assert!(
        matches!(err, RomError::Query(QueryError::EmptyBatch)),
        "got {err:?}"
    );
    let step = vec![vec![1.0; server.artifact(id).unwrap().num_inputs()]];
    let err = server.transient(id, f64::INFINITY, &step).unwrap_err();
    assert!(
        matches!(err, RomError::Query(QueryError::NonFiniteStep { .. })),
        "got {err:?}"
    );
    let err = server.transient(id, 0.0, &step).unwrap_err();
    assert!(
        matches!(err, RomError::Query(QueryError::NonPositiveStep { value }) if value == 0.0),
        "got {err:?}"
    );
    let err = server.transient(id, -2.5, &step).unwrap_err();
    assert!(
        matches!(err, RomError::Query(QueryError::NonPositiveStep { .. })),
        "got {err:?}"
    );
    // Valid queries still pass after all the refusals above.
    assert!(server.transfer_sweep(id, &[1.0e3]).is_ok());
    assert!(server.transient(id, 1e-4, &step).is_ok());
}

/// Deterministic xorshift64* — seeds the corruption fuzz without any
/// clock or platform dependence.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

#[test]
fn artifact_corruption_fuzz_yields_typed_errors_never_panics() {
    let _g = locked();
    let net = bdsm_core::synth::rc_grid(5, 5, 1.0, 1e-3, 2.0);
    let reducer = Reducer::builder()
        .blocks(2)
        .jomega_shifts(&[8.0e2])
        .build()
        .expect("valid reducer");
    let artifact = reducer.reduce_to_artifact(&net).expect("reduce");
    let bytes = artifact.to_bytes();
    assert!(RomArtifact::from_bytes(&bytes).is_ok(), "baseline decodes");

    let decode = |mutated: Vec<u8>, what: String| {
        let out = std::panic::catch_unwind(|| RomArtifact::from_bytes(&mutated));
        let res = out.unwrap_or_else(|_| panic!("from_bytes panicked on {what}"));
        // Every byte of the stream — magic, version, payload, checksum —
        // is covered by magic/version checks or the trailing checksum, so
        // any single corruption must be rejected with a typed error.
        let err = res
            .err()
            .unwrap_or_else(|| panic!("corruption accepted as a valid model: {what}"));
        assert!(
            matches!(
                err,
                RomError::BadMagic
                    | RomError::UnsupportedVersion { .. }
                    | RomError::Truncated { .. }
                    | RomError::Corrupt(_)
            ),
            "{what}: unexpected error class {err:?}"
        );
    };

    // Single-byte flips at 512 deterministic positions (plus both ends).
    let mut rng = Rng(0x5EED_CAFE_F00D_D00D);
    let mut positions: Vec<usize> = (0..512)
        .map(|_| (rng.next() as usize) % bytes.len())
        .collect();
    positions.push(0);
    positions.push(bytes.len() - 1);
    for pos in positions {
        let flip = 1u8 << (rng.next() % 8) as u8;
        let mut mutated = bytes.clone();
        mutated[pos] ^= flip;
        decode(mutated, format!("flip bit {flip:#04x} at byte {pos}"));
    }

    // Truncations: every prefix of the header region, then 256
    // deterministic interior cuts, then the one-byte-short stream.
    for cut in (0..64.min(bytes.len())).chain((0..256).map(|_| (rng.next() as usize) % bytes.len()))
    {
        decode(bytes[..cut].to_vec(), format!("truncate to {cut} bytes"));
    }
    decode(
        bytes[..bytes.len() - 1].to_vec(),
        "truncate the checksum".to_string(),
    );

    // Appended garbage must be rejected too (trailing bytes are corrupt).
    let mut extended = bytes.clone();
    extended.extend_from_slice(&[0xAB; 7]);
    decode(extended, "append 7 trailing bytes".to_string());

    // And the pristine bytes still decode bitwise after all that.
    let reloaded = RomArtifact::from_bytes(&bytes).expect("pristine decode");
    assert!(artifact.bitwise_eq(&reloaded));
    // Corrupt inputs never touch serving either: a server loaded from the
    // pristine bytes still answers.
    let mut server = RomServer::new();
    let id = server.load_artifact(reloaded);
    let resp = server
        .transfer_sweep(id, &[8.0e2])
        .expect("serve after fuzz");
    assert_eq!(resp.len(), 1);
    assert!(resp[0][(0, 0)] != Complex64::ZERO);
}
