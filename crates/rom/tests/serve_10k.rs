//! Scale acceptance for the serve path: a 10,000-state grid reduced in
//! the headline mode (adaptive greedy shifts + exact interfaces), its
//! artifact — certificate included — round-tripped bitwise, and a
//! 64-frequency `RomServer` sweep over the **loaded** artifact matching
//! the freshly built model bit for bit under every `BDSM_OBS` level ×
//! `BDSM_THREADS` ∈ {1, 2, 5} combination — observability must change
//! wall-clock, never bytes. Also covered here: v2 bytes still load (with
//! an `Unknown` certificate), the certificate itself is
//! thread-count-invariant, and the envelope policies refuse/flag
//! out-of-envelope queries with exact metric counts.
//!
//! This file holds a single test because it manipulates `BDSM_THREADS`
//! and the process-global obs level; keeping it alone in its binary
//! avoids races with sibling tests.

use bdsm_core::engine::AdaptiveShiftOpts;
use bdsm_core::synth::rc_grid;
use bdsm_core::transfer::eval_transfer;
use bdsm_linalg::Complex64;
use bdsm_obs::ObsLevel;
use bdsm_rom::{CertStatus, EnvelopePolicy, QueryError, Reducer, RomArtifact, RomError, RomServer};

#[test]
fn adaptive_exact_10k_artifact_roundtrips_and_serves_bitwise() {
    // 100 × 100 RC mesh → 10,000 states; same headline configuration as
    // the engine's adaptive acceptance test, built through the v1 API.
    let net = rc_grid(100, 100, 1.0, 1e-3, 2.0);
    let reducer = Reducer::builder()
        .blocks(4)
        .jomega_shifts(&[4.5e2])
        .moments(2)
        .budget(2000)
        .adaptive(AdaptiveShiftOpts {
            candidate_omegas: AdaptiveShiftOpts::log_grid(5.0e1, 4.0e3, 6),
            tol: 1e-6,
            max_shifts: 4,
        })
        .exact_interfaces()
        .sparse()
        .build()
        .expect("valid reducer");
    let prev = std::env::var("BDSM_THREADS").ok();
    std::env::set_var("BDSM_THREADS", "5");
    let (rm, report) = reducer.reduce_with_report(&net).expect("10k reduction");
    assert_eq!(rm.full_dim(), 10_000);
    assert!(report.certified, "adaptive loop did not certify");

    // The Certify stage produced a full certificate on the passive RC
    // model, with a posteriori error bands from the adaptive sweep.
    let cert = &report.certificate;
    assert_eq!(cert.status, CertStatus::Certified, "cert: {cert:?}");
    assert!(
        !cert.error_bands.is_empty(),
        "adaptive run must carry bands"
    );
    let (env_lo, env_hi) = cert
        .frequency_envelope()
        .expect("certified model has an envelope");
    assert!(env_lo > 0.0 && env_hi > env_lo);

    // The certificate — like the reduced model — is bitwise-identical
    // for any worker count.
    for threads in ["1", "2"] {
        std::env::set_var("BDSM_THREADS", threads);
        let (_, rep) = reducer.reduce_with_report(&net).expect("re-reduction");
        assert_eq!(
            rep.certificate, report.certificate,
            "certificate differs with BDSM_THREADS={threads}"
        );
    }
    std::env::set_var("BDSM_THREADS", "5");

    // Bitwise artifact round-trip through bytes and through a file — the
    // certificate travels inside the v3 format and must survive intact.
    let artifact = RomArtifact::from_model(&rm, Some(&report));
    assert!(!artifact.interface_map.is_empty());
    assert_eq!(&artifact.provenance.certificate, cert);
    let path = std::env::temp_dir().join("bdsm_serve_10k.rom");
    artifact.save(&path).expect("save artifact");
    let loaded = RomArtifact::load(&path).expect("load artifact");
    std::fs::remove_file(&path).ok();
    assert!(
        artifact.bitwise_eq(&loaded),
        "10k adaptive+exact artifact round-trip is not bitwise"
    );
    assert_eq!(
        &loaded.provenance.certificate, cert,
        "certificate did not round-trip bitwise through the v3 format"
    );

    // Pre-certificate (v2) bytes still load; the certificate degrades to
    // Unknown and the model has no envelope to enforce.
    let v2 = RomArtifact::from_bytes(&artifact.to_bytes_v2()).expect("v2 bytes load");
    assert_eq!(v2.provenance.certificate.status, CertStatus::Unknown);
    assert!(v2.provenance.certificate.frequency_envelope().is_none());
    assert_eq!(
        v2.to_bytes_v2(),
        artifact.to_bytes_v2(),
        "v2 payload differs beyond the certificate"
    );

    // 64-frequency sweep over the loaded artifact, under every obs level
    // × worker count combination: every batch must be byte-identical, and
    // equal to fresh evaluations of the pre-save model.
    let omegas: Vec<f64> = (0..64)
        .map(|i| 50.0 * (4.0e3_f64 / 50.0).powf(i as f64 / 63.0))
        .collect();
    let mut server = RomServer::new();
    let id = server.load_artifact(loaded);

    let prev_level = bdsm_obs::level();
    let mut sweeps = Vec::new();
    for level in [ObsLevel::Off, ObsLevel::Timings, ObsLevel::Spans] {
        bdsm_obs::set_level(level);
        for threads in ["1", "2", "5"] {
            std::env::set_var("BDSM_THREADS", threads);
            sweeps.push((
                level,
                threads,
                server.transfer_sweep(id, &omegas).expect("sweep"),
            ));
        }
    }
    bdsm_obs::set_level(prev_level);
    let (_, _, reference) = &sweeps[0];
    for (level, threads, sweep) in &sweeps[1..] {
        assert_eq!(
            sweep, reference,
            "served sweep differs at obs level {level:?} with {threads} workers"
        );
    }
    for (k, &w) in omegas.iter().enumerate() {
        let fresh =
            eval_transfer(&rm.g, &rm.c, &rm.b, &rm.l, Complex64::jomega(w)).expect("fresh sample");
        assert_eq!(
            reference[k], fresh,
            "served sample at ω={w} differs from the freshly built model"
        );
    }
    // The cache holds exactly the 64 queried shifts, across all batches,
    // and the cache counters balance exactly: 9 sweeps × 64 samples, of
    // which only the cold batch's 64 missed (and inserted).
    assert_eq!(server.cached_shifts(id).unwrap(), omegas.len());
    let m = server.metrics();
    assert_eq!(m.queries(), 9 * omegas.len() as u64);
    assert_eq!(m.cache.misses, omegas.len() as u64);
    assert_eq!(m.cache.inserts, m.cache.misses);
    assert_eq!(m.cache.hits, 8 * omegas.len() as u64);

    // ---- Envelope enforcement over the certified band [env_lo, env_hi].
    let m0 = server.metrics();
    let inside = 0.5 * (env_lo + env_hi);
    let outside1 = env_hi * 2.0;
    let outside2 = env_hi * 4.0;

    // The default policy is Flag: out-of-envelope samples are served,
    // each counted once.
    assert_eq!(server.envelope_policy(), EnvelopePolicy::Flag);
    let served = server
        .transfer_sweep(id, &[inside, outside1, outside2])
        .expect("flagged sweep is still served");
    assert_eq!(served.len(), 3);
    let m1 = server.metrics();
    assert_eq!(m1.envelope_flags, m0.envelope_flags + 2);
    assert_eq!(m1.envelope_refusals, m0.envelope_refusals);

    // Strict: the same query is refused with the envelope spelled out,
    // and so is a transient step finer than the certified floor 1/ω_hi.
    server.set_envelope_policy(EnvelopePolicy::Strict);
    let err = server
        .transfer_sweep(id, &[inside, outside1])
        .expect_err("strict refusal");
    match err {
        RomError::Query(QueryError::OutsideEnvelope {
            value,
            lo,
            hi,
            domain,
        }) => {
            assert_eq!(value, outside1);
            assert_eq!((lo, hi), (env_lo, env_hi));
            assert_eq!(domain, "frequency");
        }
        other => panic!("expected OutsideEnvelope, got {other:?}"),
    }
    let h_min = cert.min_transient_step().expect("certified step floor");
    let err = server
        .transient(id, 0.5 * h_min, &[])
        .expect_err("too-fine step refused under Strict");
    assert!(
        matches!(
            err,
            RomError::Query(QueryError::OutsideEnvelope {
                domain: "transient step",
                ..
            })
        ),
        "got {err:?}"
    );
    let m2 = server.metrics();
    assert_eq!(m2.envelope_refusals, m1.envelope_refusals + 2);
    assert_eq!(m2.envelope_flags, m1.envelope_flags);
    // In-envelope queries under Strict still serve.
    assert!(server.transfer_sweep(id, &[inside]).is_ok());

    // Ignore: pre-certificate behaviour, no counters move.
    server.set_envelope_policy(EnvelopePolicy::Ignore);
    assert!(server.transfer_sweep(id, &[outside2]).is_ok());
    let m3 = server.metrics();
    assert_eq!(m3.envelope_refusals, m2.envelope_refusals);
    assert_eq!(m3.envelope_flags, m2.envelope_flags);

    match prev {
        Some(v) => std::env::set_var("BDSM_THREADS", v),
        None => std::env::remove_var("BDSM_THREADS"),
    }
}
