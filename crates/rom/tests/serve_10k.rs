//! Scale acceptance for the serve path: a 10,000-state grid reduced in
//! the headline mode (adaptive greedy shifts + exact interfaces), its
//! artifact round-tripped bitwise, and a 64-frequency `RomServer` sweep
//! over the **loaded** artifact matching the freshly built model bit for
//! bit under every `BDSM_OBS` level × `BDSM_THREADS` ∈ {1, 5}
//! combination — observability must change wall-clock, never bytes.
//!
//! This file holds a single test because it manipulates `BDSM_THREADS`
//! and the process-global obs level; keeping it alone in its binary
//! avoids races with sibling tests.

use bdsm_core::engine::AdaptiveShiftOpts;
use bdsm_core::synth::rc_grid;
use bdsm_core::transfer::eval_transfer;
use bdsm_linalg::Complex64;
use bdsm_obs::ObsLevel;
use bdsm_rom::{Reducer, RomArtifact, RomServer};

#[test]
fn adaptive_exact_10k_artifact_roundtrips_and_serves_bitwise() {
    // 100 × 100 RC mesh → 10,000 states; same headline configuration as
    // the engine's adaptive acceptance test, built through the v1 API.
    let net = rc_grid(100, 100, 1.0, 1e-3, 2.0);
    let reducer = Reducer::builder()
        .blocks(4)
        .jomega_shifts(&[4.5e2])
        .moments(2)
        .budget(2000)
        .adaptive(AdaptiveShiftOpts {
            candidate_omegas: AdaptiveShiftOpts::log_grid(5.0e1, 4.0e3, 6),
            tol: 1e-6,
            max_shifts: 4,
        })
        .exact_interfaces()
        .sparse()
        .build()
        .expect("valid reducer");
    let (rm, report) = reducer.reduce_with_report(&net).expect("10k reduction");
    assert_eq!(rm.full_dim(), 10_000);
    assert!(report.certified, "adaptive loop did not certify");

    // Bitwise artifact round-trip through bytes and through a file.
    let artifact = RomArtifact::from_model(&rm, Some(&report));
    assert!(!artifact.interface_map.is_empty());
    let path = std::env::temp_dir().join("bdsm_serve_10k.rom");
    artifact.save(&path).expect("save artifact");
    let loaded = RomArtifact::load(&path).expect("load artifact");
    std::fs::remove_file(&path).ok();
    assert!(
        artifact.bitwise_eq(&loaded),
        "10k adaptive+exact artifact round-trip is not bitwise"
    );

    // 64-frequency sweep over the loaded artifact, under every obs level
    // × worker count combination: every batch must be byte-identical, and
    // equal to fresh evaluations of the pre-save model.
    let omegas: Vec<f64> = (0..64)
        .map(|i| 50.0 * (4.0e3_f64 / 50.0).powf(i as f64 / 63.0))
        .collect();
    let mut server = RomServer::new();
    let id = server.load_artifact(loaded);

    let prev = std::env::var("BDSM_THREADS").ok();
    let prev_level = bdsm_obs::level();
    let mut sweeps = Vec::new();
    for level in [ObsLevel::Off, ObsLevel::Timings, ObsLevel::Spans] {
        bdsm_obs::set_level(level);
        for threads in ["1", "5"] {
            std::env::set_var("BDSM_THREADS", threads);
            sweeps.push((
                level,
                threads,
                server.transfer_sweep(id, &omegas).expect("sweep"),
            ));
        }
    }
    bdsm_obs::set_level(prev_level);
    match prev {
        Some(v) => std::env::set_var("BDSM_THREADS", v),
        None => std::env::remove_var("BDSM_THREADS"),
    }
    let (_, _, reference) = &sweeps[0];
    for (level, threads, sweep) in &sweeps[1..] {
        assert_eq!(
            sweep, reference,
            "served sweep differs at obs level {level:?} with {threads} workers"
        );
    }
    for (k, &w) in omegas.iter().enumerate() {
        let fresh =
            eval_transfer(&rm.g, &rm.c, &rm.b, &rm.l, Complex64::jomega(w)).expect("fresh sample");
        assert_eq!(
            reference[k], fresh,
            "served sample at ω={w} differs from the freshly built model"
        );
    }
    // The cache holds exactly the 64 queried shifts, across all batches,
    // and the cache counters balance exactly: 6 sweeps × 64 samples, of
    // which only the cold batch's 64 missed (and inserted).
    assert_eq!(server.cached_shifts(id).unwrap(), omegas.len());
    let m = server.metrics();
    assert_eq!(m.queries(), 6 * omegas.len() as u64);
    assert_eq!(m.cache.misses, omegas.len() as u64);
    assert_eq!(m.cache.inserts, m.cache.misses);
    assert_eq!(m.cache.hits, 5 * omegas.len() as u64);
}
