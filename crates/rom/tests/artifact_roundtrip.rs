//! Property coverage of the artifact round-trip: every topology ×
//! strategy × interface-policy combination must serialize and come back
//! **bitwise-identical** — plus the typed error paths for version
//! mismatch and truncation, and server results that don't drift from the
//! in-memory model.

use bdsm_circuit::Network;
use bdsm_core::engine::AdaptiveShiftOpts;
use bdsm_core::synth::{ieee_like_feeder, rc_grid, rc_ladder};
use bdsm_core::transfer::eval_transfer;
use bdsm_linalg::Complex64;
use bdsm_rom::{Reducer, ReducerBuilder, RomArtifact, RomError, RomServer, FORMAT_VERSION};

fn topologies() -> Vec<(&'static str, Network)> {
    vec![
        ("ladder", rc_ladder(60, 1.0, 1e-3, 2.0)),
        ("grid", rc_grid(7, 9, 1.0, 1e-3, 2.0)),
        ("feeder", ieee_like_feeder(4, 12, 0.8, 1e-3, 1e-5, 3.0)),
    ]
}

fn configs() -> Vec<(&'static str, ReducerBuilder)> {
    let fixed = || Reducer::builder().blocks(3).jomega_shifts(&[2.0e2, 2.0e3]);
    let adaptive = || {
        Reducer::builder().blocks(3).adaptive(AdaptiveShiftOpts {
            candidate_omegas: AdaptiveShiftOpts::log_grid(5.0e1, 4.0e3, 6),
            tol: 1e-6,
            max_shifts: 3,
        })
    };
    vec![
        ("fixed+folded", fixed()),
        ("fixed+exact", fixed().exact_interfaces()),
        ("adaptive+folded", adaptive()),
        ("adaptive+exact", adaptive().exact_interfaces()),
        // A truncating budget exercises the capped block dims.
        ("fixed+exact+budget", fixed().exact_interfaces().budget(30)),
    ]
}

#[test]
fn every_topology_and_config_round_trips_bitwise() {
    let dir = std::env::temp_dir().join("bdsm_rom_roundtrip_prop");
    std::fs::create_dir_all(&dir).unwrap();
    for (tname, net) in topologies() {
        for (cname, builder) in configs() {
            let reducer = builder.build().unwrap_or_else(|e| {
                panic!("config {cname} failed to build: {e}");
            });
            let artifact = reducer
                .reduce_to_artifact(&net)
                .unwrap_or_else(|e| panic!("{tname}/{cname}: reduction failed: {e}"));
            // In-memory byte round-trip.
            let back = RomArtifact::from_bytes(&artifact.to_bytes())
                .unwrap_or_else(|e| panic!("{tname}/{cname}: deserialize failed: {e}"));
            assert!(
                artifact.bitwise_eq(&back),
                "{tname}/{cname}: byte round-trip not bitwise"
            );
            // File round-trip.
            let path = dir.join(format!("{tname}_{cname}.rom"));
            artifact.save(&path).unwrap();
            let loaded = RomArtifact::load(&path).unwrap();
            assert!(
                artifact.bitwise_eq(&loaded),
                "{tname}/{cname}: file round-trip not bitwise"
            );
            // Structure sanity: exact policies carry an interface map,
            // folded ones don't, and provenance names the engine.
            if cname.contains("exact") {
                assert!(
                    !loaded.interface_map.is_empty(),
                    "{tname}/{cname}: exact policy lost its interface map"
                );
            } else {
                assert!(loaded.interface_map.is_empty());
            }
            if cname.contains("adaptive") {
                assert!(
                    !loaded.provenance.residual_trajectory.is_empty(),
                    "{tname}/{cname}: adaptive run recorded no residual trajectory"
                );
            }
            assert!(!loaded.provenance.shifts.is_empty());
            assert_eq!(loaded.provenance.engine_version, bdsm_core::ENGINE_VERSION);
        }
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn version_mismatch_and_truncation_fail_typed() {
    let net = rc_ladder(30, 1.0, 1e-3, 2.0);
    let artifact = Reducer::builder()
        .blocks(2)
        .jomega_shifts(&[1.0e3])
        .build()
        .unwrap()
        .reduce_to_artifact(&net)
        .unwrap();
    let bytes = artifact.to_bytes();

    let mut future = bytes.clone();
    future[8] = (FORMAT_VERSION + 7) as u8;
    assert!(matches!(
        RomArtifact::from_bytes(&future),
        Err(RomError::UnsupportedVersion { found, supported })
            if found == FORMAT_VERSION + 7 && supported == FORMAT_VERSION
    ));

    // Every prefix is rejected without panicking: header cuts report
    // truncation/magic, payload cuts trip the checksum.
    for frac in [0, 1, 3, 7, 11, 50, 98] {
        let cut = bytes.len() * frac / 100;
        let err = RomArtifact::from_bytes(&bytes[..cut])
            .expect_err(&format!("prefix of {cut} bytes accepted"));
        assert!(
            matches!(
                err,
                RomError::Truncated { .. } | RomError::Corrupt(_) | RomError::BadMagic
            ),
            "unexpected error kind for {cut}-byte prefix: {err}"
        );
    }
}

#[test]
fn served_queries_match_the_inmemory_model() {
    // One end-to-end pass per topology: build → save → load → serve, and
    // the served sweep must equal fresh evaluations of the pre-save model
    // bit for bit.
    for (tname, net) in topologies() {
        let reducer = Reducer::builder()
            .blocks(3)
            .jomega_shifts(&[2.0e2, 2.0e3])
            .exact_interfaces()
            .build()
            .unwrap();
        let (rm, report) = reducer.reduce_with_report(&net).unwrap();
        let artifact = RomArtifact::from_model(&rm, Some(&report));
        let restored = RomArtifact::from_bytes(&artifact.to_bytes()).unwrap();
        let mut server = RomServer::new();
        let id = server.load_artifact(restored);
        let omegas: Vec<f64> = (0..24).map(|i| 30.0 * 1.4_f64.powi(i)).collect();
        let sweep = server.transfer_sweep(id, &omegas).unwrap();
        for (k, &w) in omegas.iter().enumerate() {
            let fresh = eval_transfer(&rm.g, &rm.c, &rm.b, &rm.l, Complex64::jomega(w)).unwrap();
            assert_eq!(sweep[k], fresh, "{tname}: served sample at ω={w} drifted");
        }
    }
}
