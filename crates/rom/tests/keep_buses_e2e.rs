//! End-to-end contract of the reduction-region API: marking buses to
//! keep via `ReducerBuilder::keep_buses` must (1) carry every kept
//! boundary bus into the ROM as an exact-interface state, (2) reproduce
//! the full model's boundary voltages to ≤ 1e-10 at a matched shift, and
//! (3) record the region in artifact provenance across a binary
//! round-trip.

use bdsm_circuit::ReductionSet;
use bdsm_core::synth::rc_grid;
use bdsm_core::transfer::ZLu;
use bdsm_linalg::Complex64;
use bdsm_rom::{Reducer, RomArtifact};
use bdsm_sparse::ShiftedPencil;

#[test]
fn kept_boundary_voltages_match_full_model() {
    let net = rc_grid(20, 25, 1.0, 1e-3, 2.0);
    // Keep the first mesh row plus an interior probe bus — a connected
    // region and a detached single, so the eliminated remainder wraps
    // around both.
    let mut kept: Vec<usize> = (0..25).collect();
    kept.push(12 * 25 + 13);

    let reducer = Reducer::builder()
        .keep_buses(&kept)
        .jomega_shifts(&[4.5e2])
        .moments(2)
        .sparse()
        .build()
        .expect("keep_buses config validates");
    let rm = reducer.reduce(&net).expect("region-marked reduction");

    // Every kept boundary bus is an exact-interface state: its basis row
    // is a unit vector, recorded in the interface map. (rc_grid drives
    // current sources only, so state index == bus index.)
    let set = ReductionSet::keep_buses(&net, &kept).unwrap();
    let boundary = set.boundary();
    let rows: Vec<usize> = rm.interface_map().iter().map(|&(r, _)| r).collect();
    for &b in boundary {
        assert!(rows.contains(&b), "kept boundary bus {b} not exact in ROM");
    }

    // Boundary voltages at the matched shift: ROM coordinate == full
    // solution entry to solver roundoff.
    let s = Complex64::jomega(4.5e2);
    let full_lu = ShiftedPencil::new(&rm.full.g, &rm.full.c)
        .unwrap()
        .factor_complex(s)
        .unwrap();
    let rom_lu = ZLu::factor_shifted(&rm.g, &rm.c, s).unwrap();
    for input in 0..rm.full.b.ncols() {
        let x_full = full_lu.solve_real(&rm.full.b.col(input)).unwrap();
        let x_rom = rom_lu.solve_real(&rm.b.col(input)).unwrap();
        let scale = x_full
            .iter()
            .map(|z| z.abs())
            .fold(0.0_f64, f64::max)
            .max(f64::MIN_POSITIVE);
        for &(row, col) in rm.interface_map() {
            let err = (x_rom[col] - x_full[row]).abs() / scale;
            assert!(
                err <= 1e-10,
                "boundary voltage at state {row} off by {err:.3e} (input {input})"
            );
        }
    }
}

#[test]
fn reduction_region_survives_artifact_round_trip() {
    let net = rc_grid(8, 9, 1.0, 1e-3, 2.0);
    let kept = vec![0, 1, 2, 40];
    let reducer = Reducer::builder()
        .keep_buses(&kept)
        .jomega_shifts(&[2.0e2, 2.0e3])
        .moments(2)
        .build()
        .unwrap();
    let artifact = reducer.reduce_to_artifact(&net).unwrap();
    assert_eq!(artifact.provenance.kept_buses, kept);

    let restored = RomArtifact::from_bytes(&artifact.to_bytes()).unwrap();
    assert!(artifact.bitwise_eq(&restored));
    assert_eq!(restored.provenance.kept_buses, kept);
}
