//! Fill-reducing symmetric orderings.
//!
//! Sparse LU fill-in is governed by the elimination order. Two orderings
//! are provided, both operating on the symmetrized sparsity pattern
//! `A + Aᵀ` (MNA matrices are structurally symmetric, so nothing is lost):
//!
//! - [`amd_order`] — approximate minimum degree on the quotient
//!   (elimination) graph: eliminate the variable of smallest approximate
//!   degree, replace its neighbourhood by a clique represented implicitly
//!   as an *element*, absorb the elements it covers. The degree bound
//!   `|A(v)| + Σ(|L(e)| − 1)` over adjacent elements is the classic AMD
//!   upper bound — cheap to maintain and close enough to exact degree to
//!   reproduce its fill quality on grid-like networks.
//! - [`rcm_order`] — reverse Cuthill–McKee, a bandwidth-minimizing BFS from
//!   a pseudo-peripheral vertex. Simpler and fully predictable; the
//!   fallback when profile (banded) structure is preferable to general
//!   fill reduction.
//!
//! All orderings return `old_of_new` permutations: `perm[k]` is the
//! original index eliminated at step `k`.

use crate::csc::CscMatrix;
use crate::scalar::Scalar;
use bdsm_linalg::{LinalgError, Result};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Which fill-reducing ordering the factorization applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FillOrdering {
    /// Approximate minimum degree (default; best general fill reduction).
    #[default]
    Amd,
    /// Reverse Cuthill–McKee (bandwidth/profile reduction).
    Rcm,
    /// Identity ordering — factor in the given order.
    Natural,
}

/// Symmetrized pattern adjacency of a square sparse matrix: neighbour
/// lists of `A + Aᵀ` without self-loops, each sorted ascending.
///
/// # Errors
///
/// Returns [`LinalgError::NotSquare`] for non-square input.
pub fn pattern_adjacency<T: Scalar>(a: &CscMatrix<T>) -> Result<Vec<Vec<usize>>> {
    if !a.is_square() {
        return Err(LinalgError::NotSquare { shape: a.shape() });
    }
    let n = a.nrows();
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for j in 0..n {
        for &i in a.col_rows(j) {
            if i != j {
                adj[i].push(j);
                adj[j].push(i);
            }
        }
    }
    for list in &mut adj {
        list.sort_unstable();
        list.dedup();
    }
    Ok(adj)
}

/// Computes the ordering of `a`'s symmetrized pattern.
///
/// # Errors
///
/// Returns [`LinalgError::NotSquare`] for non-square input.
pub fn order<T: Scalar>(a: &CscMatrix<T>, kind: FillOrdering) -> Result<Vec<usize>> {
    match kind {
        FillOrdering::Natural => {
            if !a.is_square() {
                return Err(LinalgError::NotSquare { shape: a.shape() });
            }
            Ok((0..a.nrows()).collect())
        }
        FillOrdering::Rcm => Ok(rcm_order(&pattern_adjacency(a)?)),
        FillOrdering::Amd => Ok(amd_order(&pattern_adjacency(a)?)),
    }
}

/// Reverse Cuthill–McKee ordering of an undirected graph.
///
/// Each connected component is traversed by BFS from a pseudo-peripheral
/// vertex (found by a double BFS from a minimum-degree seed), visiting
/// neighbours in order of increasing degree; the concatenated order is then
/// reversed.
pub fn rcm_order(adj: &[Vec<usize>]) -> Vec<usize> {
    let n = adj.len();
    let mut visited = vec![false; n];
    let mut order = Vec::with_capacity(n);
    let mut queue = std::collections::VecDeque::new();
    while order.len() < n {
        // Min-degree unvisited seed, pushed to the component's far end.
        let seed = (0..n)
            .filter(|&v| !visited[v])
            .min_by_key(|&v| (adj[v].len(), v))
            .expect("unvisited vertex exists");
        let start = bfs_far_vertex(adj, seed);

        let begin = order.len();
        visited[start] = true;
        queue.push_back(start);
        while let Some(u) = queue.pop_front() {
            order.push(u);
            let mut nbrs: Vec<usize> = adj[u].iter().copied().filter(|&v| !visited[v]).collect();
            nbrs.sort_unstable_by_key(|&v| (adj[v].len(), v));
            for v in nbrs {
                visited[v] = true;
                queue.push_back(v);
            }
        }
        order[begin..].reverse();
    }
    order
}

/// Last vertex of a BFS level structure — a pseudo-peripheral vertex after
/// one re-rooting, which is what RCM's bandwidth bound wants.
fn bfs_far_vertex(adj: &[Vec<usize>], seed: usize) -> usize {
    let mut far = seed;
    for _ in 0..2 {
        let mut dist = vec![usize::MAX; adj.len()];
        dist[far] = 0;
        let mut queue = std::collections::VecDeque::from([far]);
        let mut last = far;
        while let Some(u) = queue.pop_front() {
            last = u;
            for &v in &adj[u] {
                if dist[v] == usize::MAX {
                    dist[v] = dist[u] + 1;
                    queue.push_back(v);
                }
            }
        }
        // Among the deepest level, prefer minimum degree (ties → index).
        let dmax = dist[last];
        far = (0..adj.len())
            .filter(|&v| dist[v] == dmax)
            .min_by_key(|&v| (adj[v].len(), v))
            .unwrap_or(last);
    }
    far
}

/// Approximate minimum degree ordering of an undirected graph.
pub fn amd_order(adj: &[Vec<usize>]) -> Vec<usize> {
    let n = adj.len();
    // Quotient-graph state. A variable `v` sees plain variable neighbours
    // (`var_adj`) plus *elements* — cliques left behind by eliminations —
    // through `elem_adj`; an element's vertex set lives in `elem_vars`,
    // indexed by the variable whose elimination created it.
    let mut var_adj: Vec<Vec<usize>> = adj.to_vec();
    let mut elem_adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut elem_vars: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut eliminated = vec![false; n];
    let mut degree: Vec<usize> = var_adj.iter().map(Vec::len).collect();

    let mut heap: BinaryHeap<Reverse<(usize, usize)>> =
        (0..n).map(|v| Reverse((degree[v], v))).collect();
    // Stamped scratch for set unions: mark[v] == stamp ⇔ v in current set.
    let mut mark = vec![0usize; n];
    let mut stamp = 0usize;

    let mut order = Vec::with_capacity(n);
    while let Some(Reverse((d, v))) = heap.pop() {
        if eliminated[v] || d != degree[v] {
            continue; // stale heap entry
        }
        order.push(v);
        eliminated[v] = true;
        stamp += 1;

        // Exact neighbourhood L(v): plain neighbours plus the variables of
        // every adjacent element. Eliminated vertices are pruned from the
        // element lists in passing so they never accumulate.
        let mut le: Vec<usize> = Vec::new();
        mark[v] = stamp;
        for &u in &var_adj[v] {
            if !eliminated[u] && mark[u] != stamp {
                mark[u] = stamp;
                le.push(u);
            }
        }
        for &e in &elem_adj[v] {
            for &u in &elem_vars[e] {
                if !eliminated[u] && mark[u] != stamp {
                    mark[u] = stamp;
                    le.push(u);
                }
            }
        }
        le.sort_unstable();

        // Absorb the elements v covered: every variable referencing them is
        // in L(v), so after the filter below nothing points at them.
        let absorbed = std::mem::take(&mut elem_adj[v]);
        stamp += 1;
        for &e in &absorbed {
            mark[e] = stamp;
            elem_vars[e] = Vec::new();
        }

        for &u in &le {
            // Drop v, absorbed elements, and now-redundant variable edges
            // inside L(v) (the new element covers them).
            elem_adj[u].retain(|&e| mark[e] != stamp);
            elem_adj[u].push(v);
            var_adj[u].retain(|&w| w != v && !eliminated[w] && le.binary_search(&w).is_err());
            // AMD's approximate degree: plain neighbours plus element sizes
            // (minus self), an upper bound on the true degree. `elem_vars[v]`
            // is still empty here, so the loop counts only the old elements;
            // the new element contributes `|L(v)| − 1`.
            let mut dd = var_adj[u].len() + le.len().saturating_sub(1);
            for &e in &elem_adj[u] {
                dd += elem_vars[e].len().saturating_sub(1);
            }
            degree[u] = dd.min(n - order.len());
            heap.push(Reverse((degree[u], u)));
        }
        elem_vars[v] = le;
        var_adj[v] = Vec::new();
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_adj(n: usize) -> Vec<Vec<usize>> {
        (0..n)
            .map(|i| {
                let mut v = Vec::new();
                if i > 0 {
                    v.push(i - 1);
                }
                if i + 1 < n {
                    v.push(i + 1);
                }
                v
            })
            .collect()
    }

    fn grid_adj(rows: usize, cols: usize) -> Vec<Vec<usize>> {
        let at = |i: usize, j: usize| i * cols + j;
        let mut adj = vec![Vec::new(); rows * cols];
        for i in 0..rows {
            for j in 0..cols {
                if j + 1 < cols {
                    adj[at(i, j)].push(at(i, j + 1));
                    adj[at(i, j + 1)].push(at(i, j));
                }
                if i + 1 < rows {
                    adj[at(i, j)].push(at(i + 1, j));
                    adj[at(i + 1, j)].push(at(i, j));
                }
            }
        }
        adj
    }

    fn assert_permutation(perm: &[usize], n: usize) {
        assert_eq!(perm.len(), n);
        let mut seen = vec![false; n];
        for &p in perm {
            assert!(p < n && !seen[p], "not a permutation: {perm:?}");
            seen[p] = true;
        }
    }

    #[test]
    fn rcm_is_permutation_on_path_and_grid() {
        assert_permutation(&rcm_order(&path_adj(17)), 17);
        assert_permutation(&rcm_order(&grid_adj(6, 7)), 42);
    }

    #[test]
    fn amd_is_permutation_on_path_and_grid() {
        assert_permutation(&amd_order(&path_adj(17)), 17);
        assert_permutation(&amd_order(&grid_adj(6, 7)), 42);
    }

    #[test]
    fn handles_disconnected_graphs_and_isolated_vertices() {
        let mut adj = path_adj(4);
        adj.push(Vec::new()); // isolated vertex 4
        adj.push(vec![6]);
        adj.push(vec![5]); // separate edge 5–6
        assert_permutation(&rcm_order(&adj), 7);
        assert_permutation(&amd_order(&adj), 7);
    }

    #[test]
    fn rcm_keeps_path_bandwidth_one() {
        // On a path graph RCM must recover a bandwidth-1 ordering: every
        // edge connects consecutive positions.
        let adj = path_adj(25);
        let perm = rcm_order(&adj);
        let mut pos = [0usize; 25];
        for (k, &v) in perm.iter().enumerate() {
            pos[v] = k;
        }
        for (u, nbrs) in adj.iter().enumerate() {
            for &v in nbrs {
                assert!(pos[u].abs_diff(pos[v]) == 1, "path bandwidth broken");
            }
        }
    }

    #[test]
    fn empty_graph_orders_trivially() {
        assert!(rcm_order(&[]).is_empty());
        assert!(amd_order(&[]).is_empty());
    }

    #[test]
    fn order_dispatches_and_validates() {
        let a = CscMatrix::from_triplets(3, 3, &[(0, 1, 1.0), (1, 0, 1.0), (2, 2, 1.0)]).unwrap();
        assert_eq!(order(&a, FillOrdering::Natural).unwrap(), vec![0, 1, 2]);
        assert_permutation(&order(&a, FillOrdering::Rcm).unwrap(), 3);
        assert_permutation(&order(&a, FillOrdering::Amd).unwrap(), 3);
        let rect = CscMatrix::<f64>::from_triplets(2, 3, &[]).unwrap();
        assert!(order(&rect, FillOrdering::Amd).is_err());
        assert!(order(&rect, FillOrdering::Natural).is_err());
    }
}
