//! Scalar abstraction shared by the real and complex sparse kernels.
//!
//! The sparse LU factors either `f64` systems (real expansion points,
//! transient left-hand sides) or [`Complex64`] systems (`G + jωC` shifted
//! solves), so the CSC type and the factorization are generic over this
//! small trait instead of being duplicated per scalar.

use bdsm_linalg::Complex64;
use std::fmt::Debug;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// A field scalar the sparse kernels can factor with.
///
/// The `Default` bound (additive identity) is what lets the scalar satisfy
/// [`bdsm_linalg::GemmScalar`], so the supernodal kernel can hand packed
/// panels straight to the blocked dense micro-kernels.
pub trait Scalar:
    Copy
    + Debug
    + Default
    + PartialEq
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
{
    /// Additive identity.
    const ZERO: Self;
    /// Multiplicative identity.
    const ONE: Self;

    /// Embeds a real number.
    fn from_real(re: f64) -> Self;

    /// Squared magnitude `|z|²` — the pivot-selection metric (avoids the
    /// square root of a full `abs`).
    fn abs_sq(self) -> f64;

    /// Scales by a real factor.
    fn scale(self, k: f64) -> Self;

    /// `true` for the exact additive identity.
    #[inline]
    fn is_zero(self) -> bool {
        self == Self::ZERO
    }
}

impl Scalar for f64 {
    const ZERO: f64 = 0.0;
    const ONE: f64 = 1.0;

    #[inline]
    fn from_real(re: f64) -> f64 {
        re
    }

    #[inline]
    fn abs_sq(self) -> f64 {
        self * self
    }

    #[inline]
    fn scale(self, k: f64) -> f64 {
        self * k
    }
}

impl Scalar for Complex64 {
    const ZERO: Complex64 = Complex64::ZERO;
    const ONE: Complex64 = Complex64::ONE;

    #[inline]
    fn from_real(re: f64) -> Complex64 {
        Complex64::from_real(re)
    }

    #[inline]
    fn abs_sq(self) -> f64 {
        Complex64::abs_sq(self)
    }

    #[inline]
    fn scale(self, k: f64) -> Complex64 {
        Complex64::scale(self, k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn real_scalar_contract() {
        assert_eq!(f64::from_real(2.5), 2.5);
        assert_eq!((-3.0f64).abs_sq(), 9.0);
        assert!(f64::ZERO.is_zero());
        assert!(!f64::ONE.is_zero());
        assert_eq!(2.0f64.scale(1.5), 3.0);
    }

    #[test]
    fn complex_scalar_contract() {
        let z = Complex64::new(3.0, 4.0);
        assert_eq!(Scalar::abs_sq(z), 25.0);
        assert_eq!(Complex64::from_real(1.0), Complex64::ONE);
        assert!(Scalar::is_zero(Complex64::ZERO));
        assert_eq!(Scalar::scale(z, 2.0), Complex64::new(6.0, 8.0));
    }
}
