//! Sparse factorization subsystem for the BDSM reproduction.
//!
//! Everything upstream of this crate assembles MNA descriptors as sparse
//! stamp tables, but until now every factorization densified first — an
//! `O(n²)` memory and `O(n³)` time wall around a thousand states. This
//! crate removes that wall with three layers, all dependency-free and
//! generic over real (`f64`) and complex ([`bdsm_linalg::Complex64`])
//! scalars:
//!
//! - [`CscMatrix`] — compressed sparse column storage with COO→CSC
//!   conversion (duplicate summing), transpose, matvec, and permutation;
//! - [`ordering`] — fill-reducing symmetric orderings: approximate minimum
//!   degree ([`ordering::amd_order`]) with reverse Cuthill–McKee
//!   ([`ordering::rcm_order`]) as the banded-profile fallback;
//! - [`SparseLu`] — left-looking (Gilbert–Peierls) sparse LU with
//!   threshold partial pivoting, and [`ShiftedPencil`], which computes the
//!   pattern union and ordering of `G + sC` once and refactors numerically
//!   per shift — the shape of Krylov multi-point solves, `jω` sweeps, and
//!   transient time stepping.
//!
//! # Examples
//!
//! Assemble a small conductance matrix from triplets, factor it, and
//! solve — the CSC→LU→solve path every hot loop in the workspace takes:
//!
//! ```
//! use bdsm_sparse::{CscMatrix, ShiftedPencil, SparseLu};
//!
//! // 1D resistor chain with grounded ends: tridiagonal, SPD.
//! let n = 8;
//! let mut triplets = Vec::new();
//! for i in 0..n {
//!     triplets.push((i, i, 2.0));
//!     if i + 1 < n {
//!         triplets.push((i, i + 1, -1.0));
//!         triplets.push((i + 1, i, -1.0));
//!     }
//! }
//! let g = CscMatrix::from_triplets(n, n, &triplets)?;
//! assert_eq!(g.nnz(), 3 * n - 2);
//!
//! // Factor (with AMD ordering) and solve G x = b.
//! let b = vec![1.0; n];
//! let x = SparseLu::factor(&g)?.solve(&b)?;
//! let r = g.matvec(&x)?;
//! assert!(r.iter().zip(&b).all(|(ri, bi)| (ri - bi).abs() < 1e-12));
//!
//! // Shifted solves G + sC reuse the symbolic analysis across shifts.
//! let c = CscMatrix::from_triplets(n, n, &(0..n).map(|i| (i, i, 1e-3)).collect::<Vec<_>>())?;
//! let pencil = ShiftedPencil::new(&g, &c)?;
//! for s in [0.0, 1.0e2, 1.0e4] {
//!     let lu = pencil.factor_real(s)?;
//!     assert_eq!(lu.dim(), n);
//! }
//! # Ok::<(), bdsm_linalg::LinalgError>(())
//! ```

// Sparse kernels are written as explicit index loops over col_ptr/row_idx
// buffers; the iterator rewrites clippy suggests obscure the CSC access
// patterns (same policy as bdsm-linalg).
#![allow(clippy::needless_range_loop)]

pub mod csc;
pub mod lu;
pub mod ordering;
pub mod scalar;

pub use csc::CscMatrix;
pub use lu::{LuWorkspace, NumericKernel, ShiftedPencil, SparseLu};
pub use ordering::FillOrdering;
pub use scalar::Scalar;
