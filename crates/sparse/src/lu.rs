//! Left-looking sparse LU with partial pivoting, and the shifted pencil
//! `A(s) = G + sC` whose symbolic work is shared across shifts.
//!
//! The factorization is the Gilbert–Peierls scheme: for each column it
//! computes the reach of the column's pattern through the graph of `L`
//! (symbolic step), eliminates the reached pivots in order (numeric step),
//! and then pivots by threshold partial pivoting with a preference for the
//! diagonal entry of the fill-reducing ordering — keeping the AMD/RCM
//! quality intact unless a pivot is genuinely too small.
//!
//! [`ShiftedPencil`] is the reuse story for the Krylov and transient hot
//! paths: the pattern union of `G` and `C` and its fill-reducing ordering
//! are computed once, after which every shift `s` (real or `jω`) is a pure
//! numeric refactorization.

use crate::csc::CscMatrix;
use crate::ordering::{order, FillOrdering};
use crate::scalar::Scalar;
use bdsm_linalg::{Complex64, LinalgError, Result};

/// Diagonal-preference threshold for partial pivoting: the diagonal entry
/// of the ordered matrix is kept as pivot whenever its magnitude is at
/// least `PIVOT_THRESHOLD` times the column maximum.
const PIVOT_THRESHOLD: f64 = 0.1;

/// Sparse LU factorization `A·Q = Pᵀ·L·U` of a square sparse matrix,
/// with a fill-reducing column ordering `Q` and row pivoting `P`.
#[derive(Debug, Clone)]
pub struct SparseLu<T: Scalar> {
    n: usize,
    /// Below-diagonal entries of each `L` column as `(original row, value)`;
    /// the unit diagonal is implicit.
    l_cols: Vec<Vec<(usize, T)>>,
    /// Above-diagonal entries of each `U` column as `(pivot step k, value)`.
    u_cols: Vec<Vec<(usize, T)>>,
    /// Diagonal of `U`, one pivot per step.
    u_diag: Vec<T>,
    /// `prow[j]` = original row chosen as pivot at step `j`.
    prow: Vec<usize>,
    /// Inverse of `prow`: `pinv[original row]` = pivot step. Kept so
    /// solves (one per Krylov vector / time step / frequency) skip an
    /// `O(n)` rebuild.
    pinv: Vec<usize>,
    /// `q[j]` = original column factored at step `j`.
    q: Vec<usize>,
}

impl<T: Scalar> SparseLu<T> {
    /// Factors with the default AMD fill-reducing ordering.
    ///
    /// # Errors
    ///
    /// - [`LinalgError::NotSquare`] for non-square input;
    /// - [`LinalgError::Singular`] when a column has no usable pivot.
    pub fn factor(a: &CscMatrix<T>) -> Result<Self> {
        let q = order(a, FillOrdering::Amd)?;
        Self::factor_with_ordering(a, &q)
    }

    /// Factors with a caller-chosen ordering kind.
    ///
    /// # Errors
    ///
    /// Same as [`factor`](Self::factor).
    pub fn factor_ordered(a: &CscMatrix<T>, kind: FillOrdering) -> Result<Self> {
        let q = order(a, kind)?;
        Self::factor_with_ordering(a, &q)
    }

    /// Factors using an explicit column ordering `q` (`old_of_new`).
    ///
    /// # Errors
    ///
    /// - [`LinalgError::NotSquare`] / [`LinalgError::InvalidArgument`] on a
    ///   bad shape or a `q` that is not a permutation;
    /// - [`LinalgError::Singular`] when a column has no usable pivot.
    pub fn factor_with_ordering(a: &CscMatrix<T>, q: &[usize]) -> Result<Self> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare { shape: a.shape() });
        }
        let n = a.nrows();
        if q.len() != n || !is_permutation(q, n) {
            return Err(LinalgError::InvalidArgument {
                what: "sparse-lu: column ordering is not a permutation",
            });
        }

        let mut l_cols: Vec<Vec<(usize, T)>> = Vec::with_capacity(n);
        let mut u_cols: Vec<Vec<(usize, T)>> = Vec::with_capacity(n);
        let mut u_diag: Vec<T> = Vec::with_capacity(n);
        let mut prow = vec![usize::MAX; n];
        // pinv[original row] = pivot step, MAX while still unpivoted.
        let mut pinv = vec![usize::MAX; n];

        // Dense scatter workspace with stamp-based membership.
        let mut x = vec![T::ZERO; n];
        let mut mark = vec![0usize; n];
        let mut pattern: Vec<usize> = Vec::new();
        let mut pivots: Vec<usize> = Vec::new();

        for j in 0..n {
            let aj = q[j];
            let stamp = j + 1;
            // Symbolic: scatter A[:, q[j]] and close the pattern over L.
            // Every reached row that is already pivotal injects its L column
            // (the classic reach-in-the-graph-of-L step); processing the
            // pattern as a worklist computes the transitive closure.
            pattern.clear();
            for (&r, &v) in a.col_rows(aj).iter().zip(a.col_values(aj)) {
                x[r] = v;
                mark[r] = stamp;
                pattern.push(r);
            }
            let mut idx = 0;
            while idx < pattern.len() {
                let r = pattern[idx];
                idx += 1;
                let k = pinv[r];
                if k != usize::MAX {
                    for &(r2, _) in &l_cols[k] {
                        if mark[r2] != stamp {
                            mark[r2] = stamp;
                            x[r2] = T::ZERO;
                            pattern.push(r2);
                        }
                    }
                }
            }

            // Numeric: eliminate reached pivots in increasing step order.
            pivots.clear();
            pivots.extend(
                pattern
                    .iter()
                    .filter(|&&r| pinv[r] != usize::MAX)
                    .map(|&r| pinv[r]),
            );
            pivots.sort_unstable();
            for &k in &pivots {
                let ukj = x[prow[k]];
                if ukj.is_zero() {
                    continue;
                }
                for &(r2, lv) in &l_cols[k] {
                    x[r2] -= lv * ukj;
                }
            }

            // Pivot: largest magnitude among unpivoted rows, but keep the
            // ordering's diagonal when it is within PIVOT_THRESHOLD of it.
            let mut best = usize::MAX;
            let mut best_mag = 0.0f64;
            for &r in &pattern {
                if pinv[r] == usize::MAX {
                    let mag = x[r].abs_sq();
                    if mag > best_mag {
                        best_mag = mag;
                        best = r;
                    }
                }
            }
            if best == usize::MAX || best_mag == 0.0 {
                return Err(LinalgError::Singular { at: j });
            }
            let diag_ok = mark[aj] == stamp
                && pinv[aj] == usize::MAX
                && x[aj].abs_sq() >= PIVOT_THRESHOLD * PIVOT_THRESHOLD * best_mag;
            let piv_row = if diag_ok { aj } else { best };
            let piv_val = x[piv_row];

            u_cols.push(
                pivots
                    .iter()
                    .filter_map(|&k| {
                        let v = x[prow[k]];
                        (!v.is_zero()).then_some((k, v))
                    })
                    .collect(),
            );
            u_diag.push(piv_val);
            prow[j] = piv_row;
            pinv[piv_row] = j;
            l_cols.push(
                pattern
                    .iter()
                    .filter_map(|&r| {
                        if r == piv_row || pinv[r] != usize::MAX {
                            return None;
                        }
                        let v = x[r];
                        (!v.is_zero()).then_some((r, v / piv_val))
                    })
                    .collect(),
            );
        }

        // pinv served as the "already pivotal" marker above; completed, it
        // is exactly the inverse row permutation the solves need.
        Ok(SparseLu {
            n,
            l_cols,
            u_cols,
            u_diag,
            prow,
            pinv,
            q: q.to_vec(),
        })
    }

    /// Dimension of the factored matrix.
    #[inline]
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Stored entries in `L` and `U` (including both diagonals) — the
    /// memory proxy used by the scaling benchmarks.
    pub fn factor_nnz(&self) -> usize {
        let l: usize = self.l_cols.iter().map(Vec::len).sum();
        let u: usize = self.u_cols.iter().map(Vec::len).sum();
        l + u + 2 * self.n
    }

    /// Solves `A x = b`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] on a length mismatch.
    pub fn solve(&self, b: &[T]) -> Result<Vec<T>> {
        let n = self.n;
        if b.len() != n {
            return Err(LinalgError::ShapeMismatch {
                op: "sparse-lu-solve",
                lhs: (n, n),
                rhs: (b.len(), 1),
            });
        }
        // y lives in pivot-step coordinates.
        let pinv = &self.pinv;
        let mut y = vec![T::ZERO; n];
        for j in 0..n {
            y[j] = b[self.prow[j]];
        }
        // Forward: L is unit lower triangular in pivot order.
        for j in 0..n {
            let yj = y[j];
            if yj.is_zero() {
                continue;
            }
            for &(r, lv) in &self.l_cols[j] {
                y[pinv[r]] -= lv * yj;
            }
        }
        // Backward through U, undoing the column ordering at the end.
        let mut out = vec![T::ZERO; n];
        for j in (0..n).rev() {
            let xj = y[j] / self.u_diag[j];
            out[self.q[j]] = xj;
            if xj.is_zero() {
                continue;
            }
            for &(k, uv) in &self.u_cols[j] {
                y[k] -= uv * xj;
            }
        }
        Ok(out)
    }

    /// Solves with a real right-hand side (embedding into `T`).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] on a length mismatch.
    pub fn solve_real(&self, b: &[f64]) -> Result<Vec<T>> {
        let tb: Vec<T> = b.iter().map(|&v| T::from_real(v)).collect();
        self.solve(&tb)
    }
}

fn is_permutation(q: &[usize], n: usize) -> bool {
    let mut seen = vec![false; n];
    q.iter().all(|&p| {
        if p < n && !seen[p] {
            seen[p] = true;
            true
        } else {
            false
        }
    })
}

/// The shifted pencil `A(s) = G + sC` with shared symbolic structure.
///
/// Construction computes the pattern union of `G` and `C` and an AMD
/// fill-reducing ordering of it **once**; every
/// [`factor_real`](Self::factor_real) / [`factor_complex`](Self::factor_complex)
/// call is then a numeric-only refactorization at a new shift — the shape
/// of the Krylov multi-point loop, the `jω` frequency sweep, and the
/// transient left-hand side `G + C/h`.
#[derive(Debug, Clone)]
pub struct ShiftedPencil {
    n: usize,
    /// Union pattern in CSC layout (`col_ptr`/`row_idx`), with the values
    /// of `G` and `C` aligned slot by slot.
    col_ptr: Vec<usize>,
    row_idx: Vec<usize>,
    gv: Vec<f64>,
    cv: Vec<f64>,
    /// Fill-reducing column ordering shared by every factorization.
    q: Vec<usize>,
}

impl ShiftedPencil {
    /// Builds the pencil with the default AMD ordering.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::NotSquare`] / [`LinalgError::ShapeMismatch`]
    /// on inconsistent shapes.
    pub fn new(g: &CscMatrix<f64>, c: &CscMatrix<f64>) -> Result<Self> {
        Self::with_ordering(g, c, FillOrdering::Amd)
    }

    /// Builds the pencil with an explicit ordering kind.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::NotSquare`] / [`LinalgError::ShapeMismatch`]
    /// on inconsistent shapes.
    pub fn with_ordering(
        g: &CscMatrix<f64>,
        c: &CscMatrix<f64>,
        kind: FillOrdering,
    ) -> Result<Self> {
        if !g.is_square() {
            return Err(LinalgError::NotSquare { shape: g.shape() });
        }
        if c.shape() != g.shape() {
            return Err(LinalgError::ShapeMismatch {
                op: "shifted-pencil",
                lhs: g.shape(),
                rhs: c.shape(),
            });
        }
        let n = g.nrows();
        let mut col_ptr = Vec::with_capacity(n + 1);
        let mut row_idx = Vec::new();
        let mut gv = Vec::new();
        let mut cv = Vec::new();
        col_ptr.push(0);
        for j in 0..n {
            // Merge the two sorted row lists of column j.
            let (gr, gvals) = (g.col_rows(j), g.col_values(j));
            let (cr, cvals) = (c.col_rows(j), c.col_values(j));
            let (mut a, mut b) = (0, 0);
            while a < gr.len() || b < cr.len() {
                let ra = gr.get(a).copied().unwrap_or(usize::MAX);
                let rb = cr.get(b).copied().unwrap_or(usize::MAX);
                if ra < rb {
                    row_idx.push(ra);
                    gv.push(gvals[a]);
                    cv.push(0.0);
                    a += 1;
                } else if rb < ra {
                    row_idx.push(rb);
                    gv.push(0.0);
                    cv.push(cvals[b]);
                    b += 1;
                } else {
                    row_idx.push(ra);
                    gv.push(gvals[a]);
                    cv.push(cvals[b]);
                    a += 1;
                    b += 1;
                }
            }
            col_ptr.push(row_idx.len());
        }
        // Ordering of the union pattern: the merge above already produced
        // sorted, deduplicated CSC arrays, so wrap them directly (values
        // are irrelevant to the ordering — any nonzero placeholder works).
        let union_pattern = CscMatrix::from_sorted_parts(
            n,
            n,
            col_ptr.clone(),
            row_idx.clone(),
            vec![1.0; row_idx.len()],
        );
        let q = order(&union_pattern, kind)?;
        Ok(ShiftedPencil {
            n,
            col_ptr,
            row_idx,
            gv,
            cv,
            q,
        })
    }

    /// Dimension of the pencil.
    #[inline]
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Stored entries of the union pattern.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.row_idx.len()
    }

    /// The shared fill-reducing column ordering.
    pub fn ordering(&self) -> &[usize] {
        &self.q
    }

    /// Assembles `G + sC` over the union pattern for a scalar type `T`.
    ///
    /// The stored pattern is already deduplicated CSC with sorted columns,
    /// so this is a straight value map — no per-shift re-sorting.
    fn assemble<T: Scalar>(&self, s: T) -> CscMatrix<T> {
        let values: Vec<T> = self
            .gv
            .iter()
            .zip(&self.cv)
            .map(|(&g, &c)| T::from_real(g) + s * T::from_real(c))
            .collect();
        CscMatrix::from_sorted_parts(
            self.n,
            self.n,
            self.col_ptr.clone(),
            self.row_idx.clone(),
            values,
        )
    }

    /// Numeric refactorization at a real shift `s`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Singular`] if `G + sC` is singular.
    pub fn factor_real(&self, s: f64) -> Result<SparseLu<f64>> {
        SparseLu::factor_with_ordering(&self.assemble(s), &self.q)
    }

    /// Numeric refactorization at a complex shift `s` (e.g. `jω`).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Singular`] if `G + sC` is singular.
    pub fn factor_complex(&self, s: Complex64) -> Result<SparseLu<Complex64>> {
        SparseLu::factor_with_ordering(&self.assemble(s), &self.q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bdsm_linalg::DenseLu;

    /// Tridiagonal test matrix with an off-band entry to force pivot work.
    fn test_matrix(n: usize) -> CscMatrix<f64> {
        let mut t = Vec::new();
        for i in 0..n {
            t.push((i, i, 2.5 + 0.1 * i as f64));
            if i + 1 < n {
                t.push((i, i + 1, -1.0));
                t.push((i + 1, i, -1.2));
            }
        }
        t.push((0, n - 1, 0.3));
        t.push((n - 1, 0, 0.4));
        CscMatrix::from_triplets(n, n, &t).unwrap()
    }

    #[test]
    fn factor_solve_matches_dense() {
        let n = 30;
        let a = test_matrix(n);
        let xref: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).sin() + 1.0).collect();
        let b = a.matvec(&xref).unwrap();
        for kind in [FillOrdering::Amd, FillOrdering::Rcm, FillOrdering::Natural] {
            let lu = SparseLu::factor_ordered(&a, kind).unwrap();
            assert_eq!(lu.dim(), n);
            assert!(lu.factor_nnz() >= a.nnz());
            let x = lu.solve(&b).unwrap();
            let rel = bdsm_linalg::vector::rel_err(&x, &xref, 1e-30);
            assert!(rel < 1e-12, "{kind:?} solve error {rel}");
        }
    }

    #[test]
    fn pivoting_handles_zero_diagonal() {
        // Saddle-point-style structure: zero (1,1) diagonal forces a swap.
        let a = CscMatrix::from_triplets(
            2,
            2,
            &[(0, 0, 1e-14), (0, 1, 1.0), (1, 0, 1.0)], // a[1][1] = 0
        )
        .unwrap();
        let lu = SparseLu::factor_ordered(&a, FillOrdering::Natural).unwrap();
        let x = lu.solve(&[1.0, 2.0]).unwrap();
        let r = a.matvec(&x).unwrap();
        assert!((r[0] - 1.0).abs() < 1e-12 && (r[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn singular_matrix_reported() {
        // Second column is a multiple of the first.
        let a =
            CscMatrix::from_triplets(2, 2, &[(0, 0, 1.0), (1, 0, 2.0), (0, 1, 3.0), (1, 1, 6.0)])
                .unwrap();
        assert!(matches!(
            SparseLu::factor(&a),
            Err(LinalgError::Singular { .. })
        ));
        // Structurally singular: an empty column.
        let b = CscMatrix::from_triplets(2, 2, &[(0, 0, 1.0), (1, 0, 1.0)]).unwrap();
        assert!(matches!(
            SparseLu::factor(&b),
            Err(LinalgError::Singular { .. })
        ));
    }

    #[test]
    fn rejects_bad_inputs() {
        let rect = CscMatrix::<f64>::from_triplets(2, 3, &[]).unwrap();
        assert!(matches!(
            SparseLu::factor(&rect),
            Err(LinalgError::NotSquare { .. })
        ));
        let a = test_matrix(4);
        assert!(SparseLu::factor_with_ordering(&a, &[0, 1]).is_err());
        assert!(SparseLu::factor_with_ordering(&a, &[0, 1, 2, 2]).is_err());
        let lu = SparseLu::factor(&a).unwrap();
        assert!(lu.solve(&[1.0]).is_err());
    }

    #[test]
    fn complex_factor_matches_dense_zlu() {
        let n = 12;
        let a = test_matrix(n);
        let c = {
            let t: Vec<(usize, usize, f64)> =
                (0..n).map(|i| (i, i, 1.0 + 0.05 * i as f64)).collect();
            CscMatrix::from_triplets(n, n, &t).unwrap()
        };
        let pencil = ShiftedPencil::new(&a, &c).unwrap();
        let s = Complex64::new(0.4, 2.0);
        let lu = pencil.factor_complex(s).unwrap();
        let b: Vec<f64> = (0..n).map(|i| 1.0 / (1.0 + i as f64)).collect();
        let x = lu.solve_real(&b).unwrap();
        // Residual (G + sC)x − b must vanish.
        let gd = a.to_dense();
        let cd = c.to_dense();
        for i in 0..n {
            let mut acc = Complex64::ZERO;
            for j in 0..n {
                acc += x[j] * (Complex64::from_real(gd[(i, j)]) + s * cd[(i, j)]);
            }
            assert!((acc - Complex64::from_real(b[i])).abs() < 1e-12);
        }
    }

    #[test]
    fn pencil_reuses_ordering_across_shifts() {
        let n = 20;
        let g = test_matrix(n);
        let c = {
            let t: Vec<(usize, usize, f64)> = (0..n).map(|i| (i, i, 1e-3)).collect();
            CscMatrix::from_triplets(n, n, &t).unwrap()
        };
        let pencil = ShiftedPencil::new(&g, &c).unwrap();
        assert_eq!(pencil.dim(), n);
        assert!(pencil.nnz() >= g.nnz());
        let q0 = pencil.ordering().to_vec();
        let xref: Vec<f64> = (0..n).map(|i| (i as f64).cos()).collect();
        for &s in &[0.0, 10.0, 1.0e3] {
            let lu = pencil.factor_real(s).unwrap();
            let gd = g.to_dense().add(&c.to_dense().scaled(s)).unwrap();
            let b = gd.matvec(&xref).unwrap();
            let x = lu.solve(&b).unwrap();
            assert!(bdsm_linalg::vector::rel_err(&x, &xref, 1e-30) < 1e-11);
            assert_eq!(pencil.ordering(), &q0[..], "symbolic ordering changed");
        }
    }

    #[test]
    fn pencil_rejects_shape_mismatch() {
        let g = test_matrix(4);
        let c = test_matrix(5);
        assert!(matches!(
            ShiftedPencil::new(&g, &c),
            Err(LinalgError::ShapeMismatch { .. })
        ));
        let rect = CscMatrix::<f64>::from_triplets(2, 3, &[]).unwrap();
        assert!(ShiftedPencil::new(&rect, &rect).is_err());
    }

    #[test]
    fn dense_comparison_on_random_pattern() {
        // Pseudo-random sparse matrix; cross-check against DenseLu.
        let n = 60;
        let mut seed = 0x2545f4914f6cdd1du64;
        let mut rng = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            (seed >> 11) as f64 / (1u64 << 53) as f64
        };
        let mut t = Vec::new();
        for i in 0..n {
            t.push((i, i, 3.0 + rng()));
            for _ in 0..3 {
                let j = (rng() * n as f64) as usize % n;
                if j != i {
                    t.push((i, j, rng() - 0.5));
                }
            }
        }
        let a = CscMatrix::from_triplets(n, n, &t).unwrap();
        let ad = a.to_dense();
        let b: Vec<f64> = (0..n).map(|i| rng() + 0.1 * i as f64).collect();
        let xs = SparseLu::factor(&a).unwrap().solve(&b).unwrap();
        let xd = DenseLu::factor(&ad).unwrap().solve(&b).unwrap();
        assert!(bdsm_linalg::vector::rel_err(&xs, &xd, 1e-30) < 1e-10);
    }
}
