//! Left-looking sparse LU with partial pivoting — scalar and supernodal
//! numeric kernels — and the shifted pencil `A(s) = G + sC` whose symbolic
//! work and scratch allocations are shared across shifts.
//!
//! The factorization is the Gilbert–Peierls scheme: for each column it
//! computes the reach of the column's pattern through the graph of `L`
//! (symbolic step), eliminates the reached pivots in order (numeric step),
//! and then pivots by threshold partial pivoting with a preference for the
//! diagonal entry of the fill-reducing ordering — keeping the AMD/RCM
//! quality intact unless a pivot is genuinely too small.
//!
//! Two numeric kernels implement the elimination ([`NumericKernel`]):
//!
//! - [`NumericKernel::Scalar`] walks each reached pivot's `L` column as a
//!   scattered axpy — the verification oracle;
//! - [`NumericKernel::Supernodal`] (default) detects **supernodes** —
//!   runs of consecutive pivot columns with identical below-diagonal
//!   structure — as columns complete, packs them into dense column-major
//!   panels, and eliminates whole supernodes at once with the blocked
//!   dense micro-kernels of `bdsm-linalg` (`trsv_unit_lower` on the
//!   diagonal block, `gemm_sub` on the below-panel). On matrices with any
//!   meaningful fill the packed panels turn the indirection-chasing inner
//!   loop into contiguous streams.
//!
//! [`ShiftedPencil`] is the reuse story for the Krylov and transient hot
//! paths: the pattern union of `G` and `C` and its fill-reducing ordering
//! are computed once, after which every shift `s` (real or `jω`) is a pure
//! numeric refactorization. The `factor_*_with` variants additionally
//! recycle a caller-owned [`LuWorkspace`] so a shift sweep performs no
//! per-shift symbolic work **and** no per-shift scratch allocation.

use crate::csc::CscMatrix;
use crate::ordering::{order, FillOrdering};
use crate::scalar::Scalar;
use bdsm_linalg::{gemm_sub, trsv_unit_lower, Complex64, LinalgError, Result};

/// Diagonal-preference threshold for partial pivoting: the diagonal entry
/// of the ordered matrix is kept as pivot whenever its magnitude is at
/// least `PIVOT_THRESHOLD` times the column maximum.
const PIVOT_THRESHOLD: f64 = 0.1;

/// Widest supernode the packed panels will grow to. Bounds the dense
/// panel footprint (`rows × cols`) while leaving plenty of room for the
/// fronts that fill-in actually produces on grid matrices.
const SNODE_MAX_COLS: usize = 48;

/// Columns with fewer below-diagonal entries than this never open a
/// supernode: on quasi-1D matrices (ladders, tridiagonals) the packed
/// panels would all be width-1 slivers and the bookkeeping would only be
/// overhead, so those columns stay on the scalar path at zero cost.
const SNODE_MIN_BELOW: usize = 4;

/// `snode_of_step` sentinel for columns that opted out of supernode
/// packing.
const NO_SNODE: usize = usize::MAX;

/// Which numeric elimination kernel [`SparseLu`] runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum NumericKernel {
    /// Per-pivot scattered axpys over the stored `L` columns. Kept as the
    /// oracle the supernodal kernel is cross-checked against.
    Scalar,
    /// Supernode-packed panels eliminated with blocked dense kernels
    /// (`bdsm_linalg::trsv_unit_lower` + `bdsm_linalg::gemm_sub`).
    #[default]
    Supernodal,
}

/// Reusable scratch for sparse factorizations.
///
/// One workspace serves any number of [`SparseLu::factor_with`] /
/// [`ShiftedPencil::factor_real_with`] / [`ShiftedPencil::factor_complex_with`]
/// calls of the same scalar type; buffers grow to the largest dimension
/// seen and are never shrunk or reallocated between identical-size calls.
/// A workspace is cheap to create, so per-thread workspaces are the
/// intended pattern for multi-shift fan-out.
#[derive(Debug, Clone, Default)]
pub struct LuWorkspace<T: Scalar> {
    /// Dense scatter target for the active column.
    x: Vec<T>,
    /// Stamp-based membership marks for `x`.
    mark: Vec<usize>,
    /// Monotone stamp; survives across calls so `mark` never needs clearing.
    stamp: usize,
    /// Reached rows of the active column (worklist + final pattern).
    pattern: Vec<usize>,
    /// Reached pivot steps of the active column, sorted.
    pivots: Vec<usize>,
    /// Shifted pencil values `G + sC`, assembled in place per shift.
    avals: Vec<T>,
    /// row → position inside the *open* supernode (`usize::MAX` outside).
    snode_pos: Vec<usize>,
    /// Dense gather panel for supernodal updates (`u` block then below block).
    dwork: Vec<T>,
    /// Supernode panel pool: entries `[..snodes_used)` belong to the
    /// current factorization; the rest keep their `rows`/`vals` capacity
    /// from earlier calls so panel packing allocates nothing per shift.
    snodes: Vec<Supernode<T>>,
    /// Entries of `snodes` in use by the current factorization.
    snodes_used: usize,
    /// pivot step → supernode id ([`NO_SNODE`] for opted-out columns).
    snode_of_step: Vec<usize>,
}

impl<T: Scalar> LuWorkspace<T> {
    /// Creates an empty workspace; buffers are sized on first use.
    pub fn new() -> Self {
        Self::default()
    }

    fn ensure(&mut self, n: usize) {
        if self.x.len() < n {
            self.x.resize(n, T::ZERO);
            self.mark.resize(n, 0);
            self.snode_pos.resize(n, usize::MAX);
            self.dwork.resize(n, T::ZERO);
        }
        self.pattern.clear();
        self.pivots.clear();
        self.snode_of_step.clear();
        self.snodes_used = 0;
    }
}

/// One detected supernode: `ncols` consecutive pivot steps (starting at
/// `start`) whose `L` columns share the same below-diagonal row set,
/// packed as a dense column-major panel.
///
/// `rows[0..ncols]` are the pivot rows in step order (the unit-diagonal
/// block), `rows[ncols..]` the shared below-diagonal rows. `vals` is
/// `rows.len() × ncols` column-major; entries above the in-panel diagonal
/// are structural zeros and the diagonal itself is stored as `1`.
#[derive(Debug, Clone, Default)]
struct Supernode<T> {
    start: usize,
    ncols: usize,
    rows: Vec<usize>,
    vals: Vec<T>,
}

/// One supernode panel retained for blocked forward **and** backward
/// substitution: `ncols` consecutive pivot steps (starting at `start`)
/// whose `L` columns share the same below-diagonal row set.
///
/// Forward (`L`) side: `diag` is the `w × w` unit-lower diagonal block,
/// column-major (entries on/above the in-panel diagonal are structural
/// zeros and never read). `below_t` stores `L(below, S)ᵀ`: for each shared
/// below row, its `w` panel values contiguously (`w × below`,
/// column-major, `ld = w`) — the layout the solve's transposed panel GEMM
/// consumes directly. `below_steps` are the below rows as **pivot steps**
/// (all `≥ start + w`), the forward pass's target coordinates.
///
/// Backward (`U`) side, mirroring the same supernode's pivot steps:
/// `udiag` is the `w × w` upper-triangular block of `U` over the panel
/// steps (column-major; diagonal = the pivots, entries below it structural
/// zeros and never read). `above_steps` are the union of the panel
/// columns' above-panel `U` row steps (all `< start`, ascending), and
/// `above_t` stores `U(above, S)` row-contiguously (`w × above`,
/// column-major, `ld = w`; structural zeros where a column has no entry) —
/// the backward pass's transposed panel GEMM operand.
#[derive(Debug, Clone)]
struct SolvePanel<T> {
    start: usize,
    ncols: usize,
    diag: Vec<T>,
    below_steps: Vec<usize>,
    below_t: Vec<T>,
    udiag: Vec<T>,
    above_steps: Vec<usize>,
    above_t: Vec<T>,
}

/// Borrowed CSC parts of the matrix being factored — lets the shifted
/// pencil hand over its union pattern plus freshly assembled values
/// without constructing a `CscMatrix` (and cloning the pattern) per shift.
struct CscView<'a, T> {
    col_ptr: &'a [usize],
    row_idx: &'a [usize],
    values: &'a [T],
}

impl<'a, T> CscView<'a, T> {
    #[inline]
    fn col(&self, j: usize) -> (&'a [usize], &'a [T]) {
        let span = self.col_ptr[j]..self.col_ptr[j + 1];
        (&self.row_idx[span.clone()], &self.values[span])
    }
}

/// The in-progress factorization state shared by the column loop and the
/// supernode bookkeeping.
struct Partial<T> {
    l_cols: Vec<Vec<(usize, T)>>,
    u_cols: Vec<Vec<(usize, T)>>,
    u_diag: Vec<T>,
    prow: Vec<usize>,
    pinv: Vec<usize>,
}

/// Sparse LU factorization `A·Q = Pᵀ·L·U` of a square sparse matrix,
/// with a fill-reducing column ordering `Q` and row pivoting `P`.
#[derive(Debug, Clone)]
pub struct SparseLu<T: Scalar> {
    n: usize,
    /// Below-diagonal entries of each `L` column as `(original row, value)`;
    /// the unit diagonal is implicit.
    l_cols: Vec<Vec<(usize, T)>>,
    /// Above-diagonal entries of each `U` column as `(pivot step k, value)`.
    u_cols: Vec<Vec<(usize, T)>>,
    /// Diagonal of `U`, one pivot per step.
    u_diag: Vec<T>,
    /// `prow[j]` = original row chosen as pivot at step `j`.
    prow: Vec<usize>,
    /// Inverse of `prow`: `pinv[original row]` = pivot step. Kept so
    /// solves (one per Krylov vector / time step / frequency) skip an
    /// `O(n)` rebuild.
    pinv: Vec<usize>,
    /// `q[j]` = original column factored at step `j`.
    q: Vec<usize>,
    /// Supernode panels retained from the (supernodal) factorization, in
    /// ascending `start` order — the blocked fast path of the forward
    /// substitution. Empty for scalar-kernel factorizations.
    panels: Vec<SolvePanel<T>>,
}

impl<T: Scalar> SparseLu<T> {
    /// Factors with the default AMD fill-reducing ordering and the default
    /// (supernodal) numeric kernel.
    ///
    /// # Errors
    ///
    /// - [`LinalgError::NotSquare`] for non-square input;
    /// - [`LinalgError::Singular`] when a column has no usable pivot.
    pub fn factor(a: &CscMatrix<T>) -> Result<Self> {
        let q = order(a, FillOrdering::Amd)?;
        Self::factor_with_ordering(a, &q)
    }

    /// Factors with a caller-chosen ordering kind.
    ///
    /// # Errors
    ///
    /// Same as [`factor`](Self::factor).
    pub fn factor_ordered(a: &CscMatrix<T>, kind: FillOrdering) -> Result<Self> {
        let q = order(a, kind)?;
        Self::factor_with_ordering(a, &q)
    }

    /// Factors using an explicit column ordering `q` (`old_of_new`).
    ///
    /// # Errors
    ///
    /// - [`LinalgError::NotSquare`] / [`LinalgError::InvalidArgument`] on a
    ///   bad shape or a `q` that is not a permutation;
    /// - [`LinalgError::Singular`] when a column has no usable pivot.
    pub fn factor_with_ordering(a: &CscMatrix<T>, q: &[usize]) -> Result<Self> {
        Self::factor_with(a, q, NumericKernel::default(), &mut LuWorkspace::new())
    }

    /// Factors with an explicit ordering, numeric kernel, and reusable
    /// workspace — the fully-parameterized entry point behind every other
    /// `factor_*` constructor.
    ///
    /// # Errors
    ///
    /// Same as [`factor_with_ordering`](Self::factor_with_ordering).
    pub fn factor_with(
        a: &CscMatrix<T>,
        q: &[usize],
        kernel: NumericKernel,
        ws: &mut LuWorkspace<T>,
    ) -> Result<Self> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare { shape: a.shape() });
        }
        let (col_ptr, row_idx, values) = a.parts();
        factor_parts(
            a.nrows(),
            CscView {
                col_ptr,
                row_idx,
                values,
            },
            q,
            kernel,
            ws,
        )
    }

    /// Dimension of the factored matrix.
    #[inline]
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Stored entries in `L` and `U` (including both diagonals) — the
    /// memory proxy used by the scaling benchmarks.
    pub fn factor_nnz(&self) -> usize {
        let l: usize = self.l_cols.iter().map(Vec::len).sum();
        let u: usize = self.u_cols.iter().map(Vec::len).sum();
        l + u + 2 * self.n
    }

    /// Solves `A x = b`.
    ///
    /// Both triangular passes run blocked over the supernode panels
    /// retained from a supernodal factorization (see
    /// [`solve_multi`](Self::solve_multi) for the shared substitutions and
    /// their parity contract); scalar-kernel factorizations walk the
    /// stored `L`/`U` columns as before.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] on a length mismatch.
    pub fn solve(&self, b: &[T]) -> Result<Vec<T>> {
        let n = self.n;
        if b.len() != n {
            return Err(LinalgError::ShapeMismatch {
                op: "sparse-lu-solve",
                lhs: (n, n),
                rhs: (b.len(), 1),
            });
        }
        // y lives in pivot-step coordinates.
        let mut y: Vec<T> = self.prow.iter().map(|&p| b[p]).collect();
        self.forward_substitute(&mut y, 1);
        self.backward_substitute(&mut y, 1);
        // Undo the column ordering.
        let mut out = vec![T::ZERO; n];
        for (j, &xj) in y.iter().enumerate() {
            out[self.q[j]] = xj;
        }
        Ok(out)
    }

    /// Number of supernode panels the triangular substitutions run blocked
    /// over — zero for scalar-kernel factorizations and for quasi-1D
    /// matrices whose columns opted out of packing. Each retained panel
    /// serves both the forward (`L`) and backward (`U`) pass.
    pub fn solve_panel_count(&self) -> usize {
        self.panels.len()
    }

    /// Shared forward pass `L y = y` over an RHS-contiguous buffer (`m`
    /// values per pivot step). Retained supernode panels run blocked —
    /// sequential diagonal-block substitution plus one transposed panel
    /// GEMM over the shared below rows — and every other column walks its
    /// stored `L` entries with the historical zero-skip guard.
    ///
    /// Whether a right-hand side takes a panel's blocked path is decided
    /// **per system** on panel entry (all of its `w` panel components
    /// nonzero), so each system's operation sequence is a pure function of
    /// that system alone. That is the parity contract:
    /// [`solve_multi`](Self::solve_multi) is bitwise-identical to `m`
    /// separate [`solve`](Self::solve)s because both funnel through this
    /// routine and make identical per-system decisions.
    fn forward_substitute(&self, y: &mut [T], m: usize) {
        let n = self.n;
        let pinv = &self.pinv;
        let mut mask: Vec<bool> = Vec::new();
        let mut gathered_b: Vec<T> = Vec::new();
        let mut gathered_c: Vec<T> = Vec::new();
        let mut panels = self.panels.iter().peekable();
        let mut j = 0;
        while j < n {
            if let Some(&p) = panels.peek() {
                if p.start == j {
                    self.forward_panel(p, y, m, &mut mask, &mut gathered_b, &mut gathered_c);
                    j += p.ncols;
                    panels.next();
                    continue;
                }
            }
            if !self.l_cols[j].is_empty() {
                let (head, tail) = y.split_at_mut((j + 1) * m);
                let yj = &head[j * m..];
                // A zero component must be skipped exactly like `solve`
                // historically skipped a zero scalar RHS, so the kernel
                // path is reserved for fully nonzero slices.
                let all_nonzero = yj.iter().all(|v| !v.is_zero());
                for &(r, lv) in &self.l_cols[j] {
                    let t = (pinv[r] - j - 1) * m;
                    let row = &mut tail[t..t + m];
                    if all_nonzero {
                        gemm_sub(1, 1, m, &[lv], 1, yj, 1, row, 1);
                    } else {
                        for (rk, &vk) in row.iter_mut().zip(yj) {
                            if !vk.is_zero() {
                                *rk -= lv * vk;
                            }
                        }
                    }
                }
            }
            j += 1;
        }
    }

    /// One retained panel of the forward pass. Systems whose `w` panel
    /// components are all nonzero on entry commit to the blocked path: the
    /// unit-lower diagonal block is substituted in scalar column order,
    /// then the shared below rows take a single transposed GEMM
    /// `Yᵀ(below) -= Yᵀ(S) · L(below, S)ᵀ` at panel width — whose fused
    /// accumulation consumes the panel columns in the same order for one
    /// system as for any batch, keeping multi- and single-RHS solves
    /// bitwise-identical. Systems with a zero panel component replay the
    /// scalar column walk verbatim (per-component zero-skip included).
    fn forward_panel(
        &self,
        p: &SolvePanel<T>,
        y: &mut [T],
        m: usize,
        mask: &mut Vec<bool>,
        gathered_b: &mut Vec<T>,
        gathered_c: &mut Vec<T>,
    ) {
        let w = p.ncols;
        let base = p.start * m;
        mask.clear();
        mask.resize(m, false);
        let mut e = 0;
        for (k, ok) in mask.iter_mut().enumerate() {
            *ok = (0..w).all(|t| !y[base + t * m + k].is_zero());
            if *ok {
                e += 1;
            }
        }
        if e < m {
            // Scalar replay for the ineligible systems, walking the stored
            // L columns exactly as a standalone solve would.
            for t in 0..w {
                let j = p.start + t;
                for k in (0..m).filter(|&k| !mask[k]) {
                    let yjk = y[j * m + k];
                    if yjk.is_zero() {
                        continue;
                    }
                    for &(r, lv) in &self.l_cols[j] {
                        y[self.pinv[r] * m + k] -= lv * yjk;
                    }
                }
            }
        }
        if e == 0 {
            return;
        }
        // Diagonal block in scalar column order; the entry commit replaces
        // the per-component zero-skip for the committed systems (part of
        // the shared op-sequence definition).
        for t in 0..w {
            for s in (t + 1)..w {
                let d = p.diag[t * w + s];
                let (head, tail) = y.split_at_mut(base + s * m);
                let yt = &head[base + t * m..base + t * m + m];
                let ys = &mut tail[..m];
                if e == m {
                    gemm_sub(1, 1, m, &[d], 1, yt, 1, ys, 1);
                } else {
                    for (k, (sv, &tv)) in ys.iter_mut().zip(yt).enumerate() {
                        if mask[k] {
                            *sv -= d * tv;
                        }
                    }
                }
            }
        }
        let below = p.below_steps.len();
        if below == 0 {
            return;
        }
        if e == m {
            // The panel block of `y` is already the (m × w) column-major
            // left operand; only the scattered below rows need gathering.
            gathered_c.clear();
            for &bs in &p.below_steps {
                gathered_c.extend_from_slice(&y[bs * m..bs * m + m]);
            }
            gemm_sub(
                m,
                w,
                below,
                &y[base..base + w * m],
                m,
                &p.below_t,
                w,
                gathered_c,
                m,
            );
            for (i, &bs) in p.below_steps.iter().enumerate() {
                y[bs * m..bs * m + m].copy_from_slice(&gathered_c[i * m..(i + 1) * m]);
            }
        } else {
            gathered_b.clear();
            for t in 0..w {
                for k in (0..m).filter(|&k| mask[k]) {
                    gathered_b.push(y[base + t * m + k]);
                }
            }
            gathered_c.clear();
            for &bs in &p.below_steps {
                for k in (0..m).filter(|&k| mask[k]) {
                    gathered_c.push(y[bs * m + k]);
                }
            }
            gemm_sub(e, w, below, gathered_b, e, &p.below_t, w, gathered_c, e);
            let mut idx = 0;
            for &bs in &p.below_steps {
                for k in (0..m).filter(|&k| mask[k]) {
                    y[bs * m + k] = gathered_c[idx];
                    idx += 1;
                }
            }
        }
    }

    /// Shared backward pass `U x = y` over an RHS-contiguous buffer (`m`
    /// values per pivot step), leaving `x` in pivot-step coordinates (the
    /// caller scatters through `q`). Retained supernode panels run blocked
    /// — sequential substitution through the packed upper-triangular block
    /// plus one transposed panel GEMM over the gathered above rows — and
    /// every other step walks its stored `U` entries with the historical
    /// zero-skip guard.
    ///
    /// The per-system commit decision mirrors
    /// [`forward_substitute`](Self::forward_substitute) exactly, so the
    /// solve/solve_multi bitwise-parity contract extends end to end.
    fn backward_substitute(&self, y: &mut [T], m: usize) {
        let n = self.n;
        let mut mask: Vec<bool> = Vec::new();
        let mut gathered_b: Vec<T> = Vec::new();
        let mut gathered_c: Vec<T> = Vec::new();
        let mut panels = self.panels.iter().rev().peekable();
        let mut j = n;
        while j > 0 {
            if let Some(&p) = panels.peek() {
                if p.start + p.ncols == j {
                    self.backward_panel(p, y, m, &mut mask, &mut gathered_b, &mut gathered_c);
                    j = p.start;
                    panels.next();
                    continue;
                }
            }
            j -= 1;
            let (head, tail) = y.split_at_mut(j * m);
            let xj = &mut tail[..m];
            for x in xj.iter_mut() {
                *x = *x / self.u_diag[j];
            }
            if self.u_cols[j].is_empty() {
                continue;
            }
            // A zero component must be skipped exactly like the historical
            // scalar backward walk skipped a zero solution value, so the
            // kernel path is reserved for fully nonzero slices.
            let all_nonzero = xj.iter().all(|v| !v.is_zero());
            for &(k, uv) in &self.u_cols[j] {
                let row = &mut head[k * m..k * m + m];
                if all_nonzero {
                    gemm_sub(1, 1, m, &[uv], 1, xj, 1, row, 1);
                } else {
                    for (rk, &vk) in row.iter_mut().zip(xj.iter()) {
                        if !vk.is_zero() {
                            *rk -= uv * vk;
                        }
                    }
                }
            }
        }
    }

    /// One retained panel of the backward pass. Systems whose `w` panel
    /// components are all nonzero on entry commit to the blocked path: the
    /// upper-triangular block is substituted in scalar (descending) column
    /// order, then the gathered above rows take a single transposed GEMM
    /// `Yᵀ(above) -= Xᵀ(S) · U(above, S)ᵀ` at panel width — whose fused
    /// accumulation consumes the panel columns in the same order for one
    /// system as for any batch, keeping multi- and single-RHS solves
    /// bitwise-identical. Systems with a zero panel component replay the
    /// scalar step walk verbatim (per-component zero-skip included).
    fn backward_panel(
        &self,
        p: &SolvePanel<T>,
        y: &mut [T],
        m: usize,
        mask: &mut Vec<bool>,
        gathered_b: &mut Vec<T>,
        gathered_c: &mut Vec<T>,
    ) {
        let w = p.ncols;
        let base = p.start * m;
        mask.clear();
        mask.resize(m, false);
        let mut e = 0;
        for (k, ok) in mask.iter_mut().enumerate() {
            *ok = (0..w).all(|t| !y[base + t * m + k].is_zero());
            if *ok {
                e += 1;
            }
        }
        if e < m {
            // Scalar replay for the ineligible systems, walking the stored
            // U entries exactly as a standalone solve would.
            for t in (0..w).rev() {
                let j = p.start + t;
                for k in (0..m).filter(|&k| !mask[k]) {
                    let xjk = y[j * m + k] / self.u_diag[j];
                    y[j * m + k] = xjk;
                    if xjk.is_zero() {
                        continue;
                    }
                    for &(kstep, uv) in &self.u_cols[j] {
                        y[kstep * m + k] -= uv * xjk;
                    }
                }
            }
        }
        if e == 0 {
            return;
        }
        // Upper-triangular block in scalar (descending) column order; the
        // entry commit replaces the per-component zero-skip for the
        // committed systems (part of the shared op-sequence definition).
        for t in (0..w).rev() {
            let j = p.start + t;
            {
                let xt = &mut y[base + t * m..base + (t + 1) * m];
                if e == m {
                    for x in xt.iter_mut() {
                        *x = *x / self.u_diag[j];
                    }
                } else {
                    for (k, x) in xt.iter_mut().enumerate() {
                        if mask[k] {
                            *x = *x / self.u_diag[j];
                        }
                    }
                }
            }
            for s in 0..t {
                let d = p.udiag[t * w + s];
                let (head, tail) = y.split_at_mut(base + t * m);
                let xt = &tail[..m];
                let ys = &mut head[base + s * m..base + s * m + m];
                if e == m {
                    gemm_sub(1, 1, m, &[d], 1, xt, 1, ys, 1);
                } else {
                    for (k, (sv, &tv)) in ys.iter_mut().zip(xt).enumerate() {
                        if mask[k] {
                            *sv -= d * tv;
                        }
                    }
                }
            }
        }
        let above = p.above_steps.len();
        if above == 0 {
            return;
        }
        if e == m {
            // The panel block of `y` is already the (m × w) column-major
            // left operand; only the scattered above rows need gathering.
            gathered_c.clear();
            for &us in &p.above_steps {
                gathered_c.extend_from_slice(&y[us * m..us * m + m]);
            }
            gemm_sub(
                m,
                w,
                above,
                &y[base..base + w * m],
                m,
                &p.above_t,
                w,
                gathered_c,
                m,
            );
            for (i, &us) in p.above_steps.iter().enumerate() {
                y[us * m..us * m + m].copy_from_slice(&gathered_c[i * m..(i + 1) * m]);
            }
        } else {
            gathered_b.clear();
            for t in 0..w {
                for k in (0..m).filter(|&k| mask[k]) {
                    gathered_b.push(y[base + t * m + k]);
                }
            }
            gathered_c.clear();
            for &us in &p.above_steps {
                for k in (0..m).filter(|&k| mask[k]) {
                    gathered_c.push(y[us * m + k]);
                }
            }
            gemm_sub(e, w, above, gathered_b, e, &p.above_t, w, gathered_c, e);
            let mut idx = 0;
            for &us in &p.above_steps {
                for k in (0..m).filter(|&k| mask[k]) {
                    y[us * m + k] = gathered_c[idx];
                    idx += 1;
                }
            }
        }
    }

    /// Solves with a real right-hand side (embedding into `T`).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] on a length mismatch.
    pub fn solve_real(&self, b: &[f64]) -> Result<Vec<T>> {
        let tb: Vec<T> = b.iter().map(|&v| T::from_real(v)).collect();
        self.solve(&tb)
    }

    /// Solves `A X = B` for `m` right-hand sides at once, over column-major
    /// `n × m` panels — the blocked shape of Krylov start blocks and
    /// multi-port transfer samples.
    ///
    /// The panel is transposed into RHS-contiguous layout so both
    /// triangular passes traverse the `L`/`U` index structure **once** for
    /// all `m` systems. Both passes additionally run **blocked over the
    /// retained supernode panels**: the packed triangular block is
    /// substituted in place and the shared below (forward) / above
    /// (backward) rows take one [`bdsm_linalg::gemm_sub`] panel update of
    /// width `w × m` instead of `w` scattered column walks. Each system
    /// performs exactly the
    /// floating-point operations a standalone [`solve`](Self::solve) would
    /// perform, in the same order — both entry points share one
    /// substitution routine and make identical per-system path decisions —
    /// so `solve_multi` is bitwise-identical to `m` separate solves (a
    /// property the reduction engine's determinism relies on).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `rhs.len() != n·m` or
    /// `m == 0`.
    pub fn solve_multi(&self, rhs: &[T], m: usize) -> Result<Vec<T>> {
        let n = self.n;
        if m == 0 || rhs.len() != n * m {
            return Err(LinalgError::ShapeMismatch {
                op: "sparse-lu-solve-multi",
                lhs: (n, m),
                rhs: (rhs.len(), 1),
            });
        }
        let _s = bdsm_obs::span!("lu.solve", n = n, rhs = m);
        // RHS-contiguous scratch: the m values of pivot step j live at
        // y[j*m .. (j+1)*m], permuted into pivot order up front.
        let mut y = vec![T::ZERO; n * m];
        for j in 0..n {
            let src = self.prow[j];
            for k in 0..m {
                y[j * m + k] = rhs[k * n + src];
            }
        }
        self.forward_substitute(&mut y, m);
        self.backward_substitute(&mut y, m);
        // Undo the column ordering.
        let mut out = vec![T::ZERO; n * m];
        for j in 0..n {
            let qj = self.q[j];
            for k in 0..m {
                out[k * n + qj] = y[j * m + k];
            }
        }
        Ok(out)
    }

    /// [`solve_multi`](Self::solve_multi) with a real column-major panel
    /// (embedding into `T`).
    ///
    /// # Errors
    ///
    /// Same as [`solve_multi`](Self::solve_multi).
    pub fn solve_multi_real(&self, rhs: &[f64], m: usize) -> Result<Vec<T>> {
        let tb: Vec<T> = rhs.iter().map(|&v| T::from_real(v)).collect();
        self.solve_multi(&tb, m)
    }
}

/// Factors a matrix given as raw CSC parts. Validates the ordering, runs
/// the column loop, and — success or failure — leaves the workspace clean
/// for reuse.
fn factor_parts<T: Scalar>(
    n: usize,
    a: CscView<'_, T>,
    q: &[usize],
    kernel: NumericKernel,
    ws: &mut LuWorkspace<T>,
) -> Result<SparseLu<T>> {
    if q.len() != n || !is_permutation(q, n) {
        return Err(LinalgError::InvalidArgument {
            what: "sparse-lu: column ordering is not a permutation",
        });
    }
    let mut span = bdsm_obs::span!("lu.factor", n = n);
    ws.ensure(n);
    let mut st = Partial {
        l_cols: Vec::with_capacity(n),
        u_cols: Vec::with_capacity(n),
        u_diag: Vec::with_capacity(n),
        prow: vec![usize::MAX; n],
        pinv: vec![usize::MAX; n],
    };
    let res = factor_columns(n, &a, q, kernel, ws, &mut st);
    // The open supernode's row→position scratch must be cleared on *every*
    // exit path (including Singular), or the next factorization through
    // this workspace would read stale positions.
    if ws.snodes_used > 0 {
        for &r in &ws.snodes[ws.snodes_used - 1].rows {
            ws.snode_pos[r] = usize::MAX;
        }
    }
    res?;
    // Retain the supernodes (width ≥ 2) as solve panels: the `L` diagonal
    // block verbatim, the below block transposed into the row-contiguous
    // layout the forward pass's panel GEMM reads, the below rows mapped to
    // their (now final) pivot steps — and the matching `U` panel (packed
    // upper-triangular block plus the gathered above rows) so the backward
    // pass runs blocked over the same pivot steps.
    let mut panels = Vec::new();
    for sn in &ws.snodes[..ws.snodes_used] {
        if sn.ncols < 2 {
            continue;
        }
        let (w, nr) = (sn.ncols, sn.rows.len());
        let below = nr - w;
        let mut diag = vec![T::ZERO; w * w];
        for t in 0..w {
            diag[t * w + t..(t + 1) * w].copy_from_slice(&sn.vals[t * nr + t..t * nr + w]);
        }
        let mut below_steps = Vec::with_capacity(below);
        let mut below_t = vec![T::ZERO; w * below];
        for i in 0..below {
            below_steps.push(st.pinv[sn.rows[w + i]]);
            for t in 0..w {
                below_t[i * w + t] = sn.vals[t * nr + w + i];
            }
        }
        // Upper side: `u_cols` already stores targets as pivot steps, so
        // the panel's U structure splits by step against `sn.start`.
        let mut udiag = vec![T::ZERO; w * w];
        let mut above_steps: Vec<usize> = Vec::new();
        for t in 0..w {
            let j = sn.start + t;
            udiag[t * w + t] = st.u_diag[j];
            for &(k, uv) in &st.u_cols[j] {
                if k >= sn.start {
                    udiag[t * w + (k - sn.start)] = uv;
                } else {
                    above_steps.push(k);
                }
            }
        }
        above_steps.sort_unstable();
        above_steps.dedup();
        let mut above_t = vec![T::ZERO; w * above_steps.len()];
        for t in 0..w {
            for &(k, uv) in &st.u_cols[sn.start + t] {
                if k < sn.start {
                    let i = above_steps
                        .binary_search(&k)
                        .expect("above step collected above");
                    above_t[i * w + t] = uv;
                }
            }
        }
        panels.push(SolvePanel {
            start: sn.start,
            ncols: w,
            diag,
            below_steps,
            below_t,
            udiag,
            above_steps,
            above_t,
        });
    }
    let lu = SparseLu {
        n,
        l_cols: st.l_cols,
        u_cols: st.u_cols,
        u_diag: st.u_diag,
        prow: st.prow,
        pinv: st.pinv,
        q: q.to_vec(),
        panels,
    };
    let count_metrics = bdsm_obs::enabled(bdsm_obs::ObsLevel::Timings);
    if count_metrics || span.is_recording() {
        let nnz = lu.factor_nnz();
        span.attr("nnz", nnz);
        span.attr("panels", lu.panels.len());
        if count_metrics {
            let m = bdsm_obs::metrics();
            m.lu_factorizations.inc();
            m.lu_supernode_panels.add(lu.panels.len() as u64);
            m.factor_nnz.set(nnz as u64);
        }
    }
    Ok(lu)
}

/// The Gilbert–Peierls column loop: symbolic reach, numeric elimination
/// (scalar or supernodal), threshold pivoting, and supernode maintenance.
fn factor_columns<T: Scalar>(
    n: usize,
    a: &CscView<'_, T>,
    q: &[usize],
    kernel: NumericKernel,
    ws: &mut LuWorkspace<T>,
    st: &mut Partial<T>,
) -> Result<()> {
    for j in 0..n {
        let aj = q[j];
        ws.stamp += 1;
        let stamp = ws.stamp;
        // Symbolic: scatter A[:, q[j]] and close the pattern over L.
        // Every reached row that is already pivotal injects its L column
        // (the classic reach-in-the-graph-of-L step); processing the
        // pattern as a worklist computes the transitive closure.
        ws.pattern.clear();
        let (rows, vals) = a.col(aj);
        for (&r, &v) in rows.iter().zip(vals) {
            ws.x[r] = v;
            ws.mark[r] = stamp;
            ws.pattern.push(r);
        }
        let mut idx = 0;
        while idx < ws.pattern.len() {
            let r = ws.pattern[idx];
            idx += 1;
            let k = st.pinv[r];
            if k != usize::MAX {
                for &(r2, _) in &st.l_cols[k] {
                    if ws.mark[r2] != stamp {
                        ws.mark[r2] = stamp;
                        ws.x[r2] = T::ZERO;
                        ws.pattern.push(r2);
                    }
                }
            }
        }

        // Numeric: eliminate reached pivots in increasing step order.
        ws.pivots.clear();
        for &r in &ws.pattern {
            if st.pinv[r] != usize::MAX {
                ws.pivots.push(st.pinv[r]);
            }
        }
        ws.pivots.sort_unstable();
        match kernel {
            NumericKernel::Scalar => {
                eliminate_scalar(&mut ws.x, &st.l_cols, &st.prow, &ws.pivots);
            }
            NumericKernel::Supernodal => {
                eliminate_supernodal(ws, &st.l_cols, &st.prow);
            }
        }

        // Pivot: largest magnitude among unpivoted rows, but keep the
        // ordering's diagonal when it is within PIVOT_THRESHOLD of it.
        let mut best = usize::MAX;
        let mut best_mag = 0.0f64;
        for &r in &ws.pattern {
            if st.pinv[r] == usize::MAX {
                let mag = ws.x[r].abs_sq();
                if mag > best_mag {
                    best_mag = mag;
                    best = r;
                }
            }
        }
        if best == usize::MAX || best_mag == 0.0 {
            return Err(LinalgError::Singular { at: j });
        }
        let diag_ok = ws.mark[aj] == stamp
            && st.pinv[aj] == usize::MAX
            && ws.x[aj].abs_sq() >= PIVOT_THRESHOLD * PIVOT_THRESHOLD * best_mag;
        let piv_row = if diag_ok { aj } else { best };
        let piv_val = ws.x[piv_row];

        st.u_cols.push(
            ws.pivots
                .iter()
                .filter_map(|&k| {
                    let v = ws.x[st.prow[k]];
                    (!v.is_zero()).then_some((k, v))
                })
                .collect(),
        );
        st.u_diag.push(piv_val);
        st.prow[j] = piv_row;
        st.pinv[piv_row] = j;
        let l_col: Vec<(usize, T)> = ws
            .pattern
            .iter()
            .filter_map(|&r| {
                if r == piv_row || st.pinv[r] != usize::MAX {
                    return None;
                }
                let v = ws.x[r];
                (!v.is_zero()).then_some((r, v / piv_val))
            })
            .collect();
        if kernel == NumericKernel::Supernodal {
            absorb_column(j, piv_row, &l_col, ws);
        }
        st.l_cols.push(l_col);
    }
    Ok(())
}

/// Oracle elimination: one scattered axpy per reached pivot.
fn eliminate_scalar<T: Scalar>(
    x: &mut [T],
    l_cols: &[Vec<(usize, T)>],
    prow: &[usize],
    pivots: &[usize],
) {
    for &k in pivots {
        let ukj = x[prow[k]];
        if ukj.is_zero() {
            continue;
        }
        for &(r2, lv) in &l_cols[k] {
            x[r2] -= lv * ukj;
        }
    }
}

/// Supernodal elimination: reached pivots are grouped by supernode; each
/// group is (provably) a contiguous run ending at its supernode's last
/// column, eliminated as one dense triangular solve plus one panel
/// multiply-subtract. Runs that fail the structural invariant (or are too
/// narrow to benefit) fall back to the scalar axpys.
fn eliminate_supernodal<T: Scalar>(
    ws: &mut LuWorkspace<T>,
    l_cols: &[Vec<(usize, T)>],
    prow: &[usize],
) {
    // Field-level split of the workspace: the panel pool and step map are
    // read while the scatter vector and dense panel are written.
    let LuWorkspace {
        x,
        pivots,
        dwork,
        snodes,
        snode_of_step,
        ..
    } = ws;
    let pivots: &[usize] = pivots;
    let mut idx = 0;
    while idx < pivots.len() {
        let sid = snode_of_step[pivots[idx]];
        let mut end = idx + 1;
        while end < pivots.len() && snode_of_step[pivots[end]] == sid {
            end += 1;
        }
        let run = &pivots[idx..end];
        if sid == NO_SNODE {
            // Columns that opted out of packing eliminate the scalar way.
            eliminate_scalar(x, l_cols, prow, run);
            idx = end;
            continue;
        }
        let sn = &snodes[sid];
        let wr = run.len();
        // Structure guarantees the run is the supernode's trailing columns:
        // any reached column scatters the pivot rows of all later columns
        // in its supernode. Verify cheaply and fall back if violated.
        let contiguous = run[wr - 1] - run[0] + 1 == wr && run[wr - 1] == sn.start + sn.ncols - 1;
        if wr >= 2 && contiguous {
            let kf = run[0];
            let off = kf - sn.start;
            let nr = sn.rows.len();
            let below = nr - sn.ncols;
            // Gather the right-hand side (the nascent U segment) and the
            // below-panel slice of x into the dense workspace.
            let (u, rest) = dwork.split_at_mut(wr);
            for (t, ut) in u.iter_mut().enumerate() {
                *ut = x[prow[kf + t]];
            }
            // Diagonal block: u ← L(S,S)⁻¹ u (unit lower triangular).
            trsv_unit_lower(wr, nr, &sn.vals[off * nr + off..], u);
            for (t, ut) in u.iter().enumerate() {
                x[prow[kf + t]] = *ut;
            }
            if below > 0 {
                let y = &mut rest[..below];
                for (i, yi) in y.iter_mut().enumerate() {
                    *yi = x[sn.rows[sn.ncols + i]];
                }
                // Panel update: x(below) -= L(below, S) · u.
                gemm_sub(
                    below,
                    wr,
                    1,
                    &sn.vals[off * nr + sn.ncols..],
                    nr,
                    u,
                    wr,
                    y,
                    below,
                );
                for (i, yi) in y.iter().enumerate() {
                    x[sn.rows[sn.ncols + i]] = *yi;
                }
            }
        } else {
            eliminate_scalar(x, l_cols, prow, run);
        }
        idx = end;
    }
}

/// Supernode maintenance after column `j` pivots: the column joins the
/// open supernode when its below-diagonal row set equals the supernode's
/// remaining below set (the packed panel then grows by one column, with a
/// row swap keeping pivot rows in step order); otherwise it opens a new
/// supernode of its own.
fn absorb_column<T: Scalar>(
    j: usize,
    piv_row: usize,
    l_col: &[(usize, T)],
    ws: &mut LuWorkspace<T>,
) {
    let LuWorkspace {
        snodes,
        snodes_used,
        snode_of_step,
        snode_pos,
        ..
    } = ws;
    let joins = match (*snodes_used > 0).then(|| &snodes[*snodes_used - 1]) {
        Some(open) => {
            let nr = open.rows.len();
            open.ncols < SNODE_MAX_COLS
                && snode_pos[piv_row] != usize::MAX
                && snode_pos[piv_row] >= open.ncols
                && l_col.len() + 1 == nr - open.ncols
                && l_col
                    .iter()
                    .all(|&(r, _)| snode_pos[r] != usize::MAX && snode_pos[r] >= open.ncols)
        }
        None => false,
    };
    if joins {
        let open = &mut snodes[*snodes_used - 1];
        let nr = open.rows.len();
        let c = open.ncols;
        let p = snode_pos[piv_row];
        if p != c {
            // Keep invariant rows[c] == pivot row of the supernode's
            // (c+1)-th column: swap the row slots in every packed column.
            let displaced = open.rows[c];
            open.rows.swap(p, c);
            snode_pos[piv_row] = c;
            snode_pos[displaced] = p;
            for t in 0..c {
                open.vals.swap(t * nr + p, t * nr + c);
            }
        }
        let base = open.vals.len();
        open.vals.resize(base + nr, T::ZERO);
        open.vals[base + c] = T::ONE;
        for &(r, v) in l_col {
            open.vals[base + snode_pos[r]] = v;
        }
        open.ncols += 1;
        snode_of_step.push(*snodes_used - 1);
        return;
    }
    // Close the open supernode (clearing its scratch positions); then
    // either stay scalar (skinny column) or open a fresh supernode seeded
    // by this column.
    if *snodes_used > 0 {
        for &r in &snodes[*snodes_used - 1].rows {
            snode_pos[r] = usize::MAX;
        }
    }
    if l_col.len() < SNODE_MIN_BELOW {
        // Re-clearing an already-closed supernode later is an idempotent
        // no-op, so no placeholder is needed for the skipped step.
        snode_of_step.push(NO_SNODE);
        return;
    }
    // Acquire a pool entry: reuse a prior call's panel buffers when one is
    // available (this is what keeps refactorization allocation-free after
    // the first factorization through a workspace).
    if *snodes_used == snodes.len() {
        snodes.push(Supernode::default());
    }
    let sn = &mut snodes[*snodes_used];
    sn.start = j;
    sn.ncols = 1;
    sn.rows.clear();
    sn.rows.push(piv_row);
    sn.rows.extend(l_col.iter().map(|&(r, _)| r));
    sn.vals.clear();
    sn.vals.resize(sn.rows.len(), T::ZERO);
    sn.vals[0] = T::ONE;
    for (i, &(_, v)) in l_col.iter().enumerate() {
        sn.vals[1 + i] = v;
    }
    for (p, &r) in sn.rows.iter().enumerate() {
        snode_pos[r] = p;
    }
    snode_of_step.push(*snodes_used);
    *snodes_used += 1;
}

fn is_permutation(q: &[usize], n: usize) -> bool {
    let mut seen = vec![false; n];
    q.iter().all(|&p| {
        if p < n && !seen[p] {
            seen[p] = true;
            true
        } else {
            false
        }
    })
}

/// The shifted pencil `A(s) = G + sC` with shared symbolic structure.
///
/// Construction computes the pattern union of `G` and `C` and an AMD
/// fill-reducing ordering of it **once**; every
/// [`factor_real`](Self::factor_real) / [`factor_complex`](Self::factor_complex)
/// call is then a numeric-only refactorization at a new shift — the shape
/// of the Krylov multi-point loop, the `jω` frequency sweep, and the
/// transient left-hand side `G + C/h`. The `_with` variants reuse a
/// caller-owned [`LuWorkspace`] so shift sweeps also skip all scratch
/// allocation; the plain variants allocate a throwaway workspace.
#[derive(Debug, Clone)]
pub struct ShiftedPencil {
    n: usize,
    /// Union pattern in CSC layout (`col_ptr`/`row_idx`), with the values
    /// of `G` and `C` aligned slot by slot.
    col_ptr: Vec<usize>,
    row_idx: Vec<usize>,
    gv: Vec<f64>,
    cv: Vec<f64>,
    /// Fill-reducing column ordering shared by every factorization.
    q: Vec<usize>,
    /// Numeric kernel every refactorization runs.
    kernel: NumericKernel,
}

impl ShiftedPencil {
    /// Builds the pencil with the default AMD ordering.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::NotSquare`] / [`LinalgError::ShapeMismatch`]
    /// on inconsistent shapes.
    pub fn new(g: &CscMatrix<f64>, c: &CscMatrix<f64>) -> Result<Self> {
        Self::with_ordering(g, c, FillOrdering::Amd)
    }

    /// Builds the pencil with an explicit ordering kind.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::NotSquare`] / [`LinalgError::ShapeMismatch`]
    /// on inconsistent shapes.
    pub fn with_ordering(
        g: &CscMatrix<f64>,
        c: &CscMatrix<f64>,
        kind: FillOrdering,
    ) -> Result<Self> {
        if !g.is_square() {
            return Err(LinalgError::NotSquare { shape: g.shape() });
        }
        if c.shape() != g.shape() {
            return Err(LinalgError::ShapeMismatch {
                op: "shifted-pencil",
                lhs: g.shape(),
                rhs: c.shape(),
            });
        }
        let n = g.nrows();
        let mut col_ptr = Vec::with_capacity(n + 1);
        let mut row_idx = Vec::new();
        let mut gv = Vec::new();
        let mut cv = Vec::new();
        col_ptr.push(0);
        for j in 0..n {
            // Merge the two sorted row lists of column j.
            let (gr, gvals) = (g.col_rows(j), g.col_values(j));
            let (cr, cvals) = (c.col_rows(j), c.col_values(j));
            let (mut a, mut b) = (0, 0);
            while a < gr.len() || b < cr.len() {
                let ra = gr.get(a).copied().unwrap_or(usize::MAX);
                let rb = cr.get(b).copied().unwrap_or(usize::MAX);
                if ra < rb {
                    row_idx.push(ra);
                    gv.push(gvals[a]);
                    cv.push(0.0);
                    a += 1;
                } else if rb < ra {
                    row_idx.push(rb);
                    gv.push(0.0);
                    cv.push(cvals[b]);
                    b += 1;
                } else {
                    row_idx.push(ra);
                    gv.push(gvals[a]);
                    cv.push(cvals[b]);
                    a += 1;
                    b += 1;
                }
            }
            col_ptr.push(row_idx.len());
        }
        // Ordering of the union pattern: the merge above already produced
        // sorted, deduplicated CSC arrays, so wrap them directly (values
        // are irrelevant to the ordering — any nonzero placeholder works).
        let union_pattern = CscMatrix::from_sorted_parts(
            n,
            n,
            col_ptr.clone(),
            row_idx.clone(),
            vec![1.0; row_idx.len()],
        );
        let q = order(&union_pattern, kind)?;
        Ok(ShiftedPencil {
            n,
            col_ptr,
            row_idx,
            gv,
            cv,
            q,
            kernel: NumericKernel::default(),
        })
    }

    /// Selects the numeric kernel every refactorization will run
    /// (builder-style; the default is [`NumericKernel::Supernodal`]).
    #[must_use]
    pub fn with_numeric_kernel(mut self, kernel: NumericKernel) -> Self {
        self.kernel = kernel;
        self
    }

    /// The numeric kernel refactorizations run.
    #[inline]
    pub fn numeric_kernel(&self) -> NumericKernel {
        self.kernel
    }

    /// Dimension of the pencil.
    #[inline]
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Stored entries of the union pattern.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.row_idx.len()
    }

    /// The shared fill-reducing column ordering.
    pub fn ordering(&self) -> &[usize] {
        &self.q
    }

    /// Assembles `G + sC` into the workspace and factors it — the shared
    /// engine of the real and complex paths. The only per-shift work is
    /// the value map and the numeric factorization; pattern, ordering, and
    /// all scratch buffers are reused.
    fn factor_shift_with<T: Scalar>(&self, s: T, ws: &mut LuWorkspace<T>) -> Result<SparseLu<T>> {
        let mut avals = std::mem::take(&mut ws.avals);
        avals.clear();
        avals.extend(
            self.gv
                .iter()
                .zip(&self.cv)
                .map(|(&g, &c)| T::from_real(g) + s * T::from_real(c)),
        );
        let res = factor_parts(
            self.n,
            CscView {
                col_ptr: &self.col_ptr,
                row_idx: &self.row_idx,
                values: &avals,
            },
            &self.q,
            self.kernel,
            ws,
        );
        ws.avals = avals;
        res
    }

    /// Numeric refactorization at a real shift `s`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Singular`] if `G + sC` is singular.
    pub fn factor_real(&self, s: f64) -> Result<SparseLu<f64>> {
        self.factor_real_with(s, &mut LuWorkspace::new())
    }

    /// Numeric refactorization at a real shift `s`, reusing `ws` for all
    /// scratch (and the assembled shifted values).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Singular`] if `G + sC` is singular.
    pub fn factor_real_with(&self, s: f64, ws: &mut LuWorkspace<f64>) -> Result<SparseLu<f64>> {
        self.factor_shift_with(s, ws)
    }

    /// Numeric refactorization at a complex shift `s` (e.g. `jω`).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Singular`] if `G + sC` is singular.
    pub fn factor_complex(&self, s: Complex64) -> Result<SparseLu<Complex64>> {
        self.factor_complex_with(s, &mut LuWorkspace::new())
    }

    /// Numeric refactorization at a complex shift, reusing `ws`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Singular`] if `G + sC` is singular.
    pub fn factor_complex_with(
        &self,
        s: Complex64,
        ws: &mut LuWorkspace<Complex64>,
    ) -> Result<SparseLu<Complex64>> {
        self.factor_shift_with(s, ws)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bdsm_linalg::DenseLu;

    /// Tridiagonal test matrix with an off-band entry to force pivot work.
    fn test_matrix(n: usize) -> CscMatrix<f64> {
        let mut t = Vec::new();
        for i in 0..n {
            t.push((i, i, 2.5 + 0.1 * i as f64));
            if i + 1 < n {
                t.push((i, i + 1, -1.0));
                t.push((i + 1, i, -1.2));
            }
        }
        t.push((0, n - 1, 0.3));
        t.push((n - 1, 0, 0.4));
        CscMatrix::from_triplets(n, n, &t).unwrap()
    }

    #[test]
    fn factor_solve_matches_dense() {
        let n = 30;
        let a = test_matrix(n);
        let xref: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).sin() + 1.0).collect();
        let b = a.matvec(&xref).unwrap();
        for kind in [FillOrdering::Amd, FillOrdering::Rcm, FillOrdering::Natural] {
            let lu = SparseLu::factor_ordered(&a, kind).unwrap();
            assert_eq!(lu.dim(), n);
            assert!(lu.factor_nnz() >= a.nnz());
            let x = lu.solve(&b).unwrap();
            let rel = bdsm_linalg::vector::rel_err(&x, &xref, 1e-30);
            assert!(rel < 1e-12, "{kind:?} solve error {rel}");
        }
    }

    #[test]
    fn pivoting_handles_zero_diagonal() {
        // Saddle-point-style structure: zero (1,1) diagonal forces a swap.
        let a = CscMatrix::from_triplets(
            2,
            2,
            &[(0, 0, 1e-14), (0, 1, 1.0), (1, 0, 1.0)], // a[1][1] = 0
        )
        .unwrap();
        let lu = SparseLu::factor_ordered(&a, FillOrdering::Natural).unwrap();
        let x = lu.solve(&[1.0, 2.0]).unwrap();
        let r = a.matvec(&x).unwrap();
        assert!((r[0] - 1.0).abs() < 1e-12 && (r[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn singular_matrix_reported() {
        // Second column is a multiple of the first.
        let a =
            CscMatrix::from_triplets(2, 2, &[(0, 0, 1.0), (1, 0, 2.0), (0, 1, 3.0), (1, 1, 6.0)])
                .unwrap();
        assert!(matches!(
            SparseLu::factor(&a),
            Err(LinalgError::Singular { .. })
        ));
        // Structurally singular: an empty column.
        let b = CscMatrix::from_triplets(2, 2, &[(0, 0, 1.0), (1, 0, 1.0)]).unwrap();
        assert!(matches!(
            SparseLu::factor(&b),
            Err(LinalgError::Singular { .. })
        ));
    }

    #[test]
    fn rejects_bad_inputs() {
        let rect = CscMatrix::<f64>::from_triplets(2, 3, &[]).unwrap();
        assert!(matches!(
            SparseLu::factor(&rect),
            Err(LinalgError::NotSquare { .. })
        ));
        let a = test_matrix(4);
        assert!(SparseLu::factor_with_ordering(&a, &[0, 1]).is_err());
        assert!(SparseLu::factor_with_ordering(&a, &[0, 1, 2, 2]).is_err());
        let lu = SparseLu::factor(&a).unwrap();
        assert!(lu.solve(&[1.0]).is_err());
    }

    #[test]
    fn complex_factor_matches_dense_zlu() {
        let n = 12;
        let a = test_matrix(n);
        let c = {
            let t: Vec<(usize, usize, f64)> =
                (0..n).map(|i| (i, i, 1.0 + 0.05 * i as f64)).collect();
            CscMatrix::from_triplets(n, n, &t).unwrap()
        };
        let pencil = ShiftedPencil::new(&a, &c).unwrap();
        let s = Complex64::new(0.4, 2.0);
        let lu = pencil.factor_complex(s).unwrap();
        let b: Vec<f64> = (0..n).map(|i| 1.0 / (1.0 + i as f64)).collect();
        let x = lu.solve_real(&b).unwrap();
        // Residual (G + sC)x − b must vanish.
        let gd = a.to_dense();
        let cd = c.to_dense();
        for i in 0..n {
            let mut acc = Complex64::ZERO;
            for j in 0..n {
                acc += x[j] * (Complex64::from_real(gd[(i, j)]) + s * cd[(i, j)]);
            }
            assert!((acc - Complex64::from_real(b[i])).abs() < 1e-12);
        }
    }

    #[test]
    fn pencil_reuses_ordering_across_shifts() {
        let n = 20;
        let g = test_matrix(n);
        let c = {
            let t: Vec<(usize, usize, f64)> = (0..n).map(|i| (i, i, 1e-3)).collect();
            CscMatrix::from_triplets(n, n, &t).unwrap()
        };
        let pencil = ShiftedPencil::new(&g, &c).unwrap();
        assert_eq!(pencil.dim(), n);
        assert!(pencil.nnz() >= g.nnz());
        let q0 = pencil.ordering().to_vec();
        let xref: Vec<f64> = (0..n).map(|i| (i as f64).cos()).collect();
        for &s in &[0.0, 10.0, 1.0e3] {
            let lu = pencil.factor_real(s).unwrap();
            let gd = g.to_dense().add(&c.to_dense().scaled(s)).unwrap();
            let b = gd.matvec(&xref).unwrap();
            let x = lu.solve(&b).unwrap();
            assert!(bdsm_linalg::vector::rel_err(&x, &xref, 1e-30) < 1e-11);
            assert_eq!(pencil.ordering(), &q0[..], "symbolic ordering changed");
        }
    }

    #[test]
    fn pencil_rejects_shape_mismatch() {
        let g = test_matrix(4);
        let c = test_matrix(5);
        assert!(matches!(
            ShiftedPencil::new(&g, &c),
            Err(LinalgError::ShapeMismatch { .. })
        ));
        let rect = CscMatrix::<f64>::from_triplets(2, 3, &[]).unwrap();
        assert!(ShiftedPencil::new(&rect, &rect).is_err());
    }

    #[test]
    fn dense_comparison_on_random_pattern() {
        // Pseudo-random sparse matrix; cross-check against DenseLu.
        let n = 60;
        let mut seed = 0x2545f4914f6cdd1du64;
        let mut rng = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            (seed >> 11) as f64 / (1u64 << 53) as f64
        };
        let mut t = Vec::new();
        for i in 0..n {
            t.push((i, i, 3.0 + rng()));
            for _ in 0..3 {
                let j = (rng() * n as f64) as usize % n;
                if j != i {
                    t.push((i, j, rng() - 0.5));
                }
            }
        }
        let a = CscMatrix::from_triplets(n, n, &t).unwrap();
        let ad = a.to_dense();
        let b: Vec<f64> = (0..n).map(|i| rng() + 0.1 * i as f64).collect();
        let xs = SparseLu::factor(&a).unwrap().solve(&b).unwrap();
        let xd = DenseLu::factor(&ad).unwrap().solve(&b).unwrap();
        assert!(bdsm_linalg::vector::rel_err(&xs, &xd, 1e-30) < 1e-10);
    }

    /// Denser pseudo-random matrix whose fill-in actually grows supernodes.
    fn filled_matrix(n: usize, per_row: usize, seed: u64) -> CscMatrix<f64> {
        let mut s = seed | 1;
        let mut rng = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s >> 11) as f64 / (1u64 << 53) as f64
        };
        let mut t = Vec::new();
        for i in 0..n {
            t.push((i, i, 4.0 + rng()));
            for _ in 0..per_row {
                let j = (rng() * n as f64) as usize % n;
                if j != i {
                    t.push((i, j, rng() - 0.5));
                }
            }
        }
        CscMatrix::from_triplets(n, n, &t).unwrap()
    }

    #[test]
    fn supernodal_matches_scalar_kernel() {
        for &(n, per_row) in &[(40usize, 2usize), (80, 5), (120, 8)] {
            let a = filled_matrix(n, per_row, 0x5eed ^ n as u64);
            let q = order(&a, FillOrdering::Amd).unwrap();
            let lu_s =
                SparseLu::factor_with(&a, &q, NumericKernel::Scalar, &mut LuWorkspace::new())
                    .unwrap();
            let lu_b =
                SparseLu::factor_with(&a, &q, NumericKernel::Supernodal, &mut LuWorkspace::new())
                    .unwrap();
            assert_eq!(lu_s.factor_nnz(), lu_b.factor_nnz(), "n={n}");
            let b: Vec<f64> = (0..n).map(|i| (0.3 * i as f64).sin() + 0.5).collect();
            let xs = lu_s.solve(&b).unwrap();
            let xb = lu_b.solve(&b).unwrap();
            let rel = bdsm_linalg::vector::rel_err(&xb, &xs, 1e-30);
            assert!(rel <= 1e-10, "kernels disagree at n={n}: {rel}");
        }
    }

    #[test]
    fn supernodal_complex_matches_scalar_kernel() {
        let n = 70;
        let g = filled_matrix(n, 4, 0xc0ffee);
        let c = CscMatrix::from_triplets(
            n,
            n,
            &(0..n)
                .map(|i| (i, i, 1e-3 * (1.0 + i as f64)))
                .collect::<Vec<_>>(),
        )
        .unwrap();
        let s = Complex64::jomega(300.0);
        let b: Vec<f64> = (0..n).map(|i| 1.0 / (2.0 + i as f64)).collect();
        let base = ShiftedPencil::new(&g, &c).unwrap();
        let scalar = base.clone().with_numeric_kernel(NumericKernel::Scalar);
        assert_eq!(scalar.numeric_kernel(), NumericKernel::Scalar);
        let xs = scalar.factor_complex(s).unwrap().solve_real(&b).unwrap();
        let xb = base.factor_complex(s).unwrap().solve_real(&b).unwrap();
        let num: f64 = xs
            .iter()
            .zip(&xb)
            .map(|(p, q)| (*p - *q).abs_sq())
            .sum::<f64>()
            .sqrt();
        let den: f64 = xs.iter().map(|z| z.abs_sq()).sum::<f64>().sqrt();
        assert!(
            num / den <= 1e-10,
            "complex kernels disagree: {}",
            num / den
        );
    }

    #[test]
    fn workspace_reuse_is_stable_across_identical_shifts() {
        // Regression guard for the per-shift reallocation bug: repeated
        // refactorizations at the *same* shift through one workspace must
        // produce identical factors — same nnz (no symbolic drift, no
        // workspace-state leakage) and bitwise-equal solves.
        let n = 50;
        let g = filled_matrix(n, 4, 0xfeedbeef);
        let c = CscMatrix::from_triplets(n, n, &(0..n).map(|i| (i, i, 2e-3)).collect::<Vec<_>>())
            .unwrap();
        let pencil = ShiftedPencil::new(&g, &c).unwrap();
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.11).cos()).collect();
        let mut ws = LuWorkspace::<f64>::new();
        let first = pencil.factor_real_with(7.5, &mut ws).unwrap();
        let (nnz0, x0) = (first.factor_nnz(), first.solve(&b).unwrap());
        // Interleave a different shift to dirty the workspace in between.
        for &s in &[7.5, 0.0, 7.5, 123.0, 7.5] {
            let lu = pencil.factor_real_with(s, &mut ws).unwrap();
            if s == 7.5 {
                assert_eq!(
                    lu.factor_nnz(),
                    nnz0,
                    "factor nnz grew between identical shifts"
                );
                assert_eq!(lu.solve(&b).unwrap(), x0, "refactorization drifted");
            }
        }
    }

    #[test]
    fn solve_multi_is_bitwise_identical_to_column_solves() {
        // Real panel, including an all-zero column and a column with
        // scattered zeros, to exercise the guarded (non-kernel) path.
        let n = 40;
        let a = filled_matrix(n, 4, 0xabc123);
        let lu = SparseLu::factor(&a).unwrap();
        let m = 4;
        let mut rhs = vec![0.0f64; n * m];
        for i in 0..n {
            rhs[i] = (0.37 * i as f64).sin() + 0.2; // column 0: dense
            rhs[n + i] = if i % 3 == 0 {
                0.0
            } else {
                1.0 / (1.0 + i as f64)
            };
            // column 2 stays all-zero; column 3: a single spike.
        }
        rhs[3 * n + 7] = 2.5;
        let multi = lu.solve_multi(&rhs, m).unwrap();
        for k in 0..m {
            let one = lu.solve(&rhs[k * n..(k + 1) * n]).unwrap();
            assert_eq!(
                &multi[k * n..(k + 1) * n],
                &one[..],
                "solve_multi column {k} drifted from solve"
            );
        }
    }

    #[test]
    fn solve_multi_complex_matches_column_solves() {
        let n = 30;
        let g = filled_matrix(n, 4, 0xdecaf);
        let c = CscMatrix::from_triplets(n, n, &(0..n).map(|i| (i, i, 1e-3)).collect::<Vec<_>>())
            .unwrap();
        let pencil = ShiftedPencil::new(&g, &c).unwrap();
        let lu = pencil.factor_complex(Complex64::jomega(120.0)).unwrap();
        let m = 3;
        let rhs: Vec<f64> = (0..n * m).map(|i| ((i as f64) * 0.21).cos()).collect();
        let multi = lu.solve_multi_real(&rhs, m).unwrap();
        for k in 0..m {
            let one = lu.solve_real(&rhs[k * n..(k + 1) * n]).unwrap();
            assert_eq!(&multi[k * n..(k + 1) * n], &one[..], "column {k}");
        }
    }

    /// The historical forward/backward substitution, written against the
    /// stored `L`/`U` columns — the oracle the panel-blocked solve is
    /// checked against.
    fn reference_solve<T: Scalar>(lu: &SparseLu<T>, b: &[T]) -> Vec<T> {
        let n = lu.n;
        let mut y: Vec<T> = lu.prow.iter().map(|&p| b[p]).collect();
        for j in 0..n {
            let yj = y[j];
            if yj.is_zero() {
                continue;
            }
            for &(r, lv) in &lu.l_cols[j] {
                y[lu.pinv[r]] -= lv * yj;
            }
        }
        let mut out = vec![T::ZERO; n];
        for j in (0..n).rev() {
            let xj = y[j] / lu.u_diag[j];
            out[lu.q[j]] = xj;
            if xj.is_zero() {
                continue;
            }
            for &(k, uv) in &lu.u_cols[j] {
                y[k] -= uv * xj;
            }
        }
        out
    }

    #[test]
    fn panel_blocked_solve_matches_scalar_reference_walk() {
        // The retained panels must encode exactly the stored L and U
        // columns: the blocked solve (both triangular passes) agrees with a
        // scalar column walk over the same factors to fused-sum roundoff.
        let n = 120;
        let a = filled_matrix(n, 8, 0x9a7e15);
        let lu = SparseLu::factor(&a).unwrap();
        assert!(
            lu.solve_panel_count() > 0,
            "fill did not produce supernode panels; densify the test matrix"
        );
        let b: Vec<f64> = (0..n).map(|i| (0.23 * i as f64).sin() + 0.4).collect();
        let x = lu.solve(&b).unwrap();
        let xref = reference_solve(&lu, &b);
        let rel = bdsm_linalg::vector::rel_err(&x, &xref, 1e-30);
        assert!(rel < 1e-12, "blocked solve drifted from scalar walk: {rel}");
        // And it still solves the system.
        let r = a.matvec(&x).unwrap();
        let rel = bdsm_linalg::vector::rel_err(&r, &b, 1e-30);
        assert!(rel < 1e-10, "blocked solve residual {rel}");
    }

    #[test]
    fn solve_multi_with_panels_is_bitwise_identical_to_solves() {
        // Panel-rich factors plus right-hand sides that split the per-system
        // path decision: dense columns commit to the blocked path, the
        // all-zero and scattered-zero columns replay the scalar walk — and
        // every column must still equal its standalone solve bit for bit.
        let n = 120;
        let a = filled_matrix(n, 8, 0x51e3e ^ 0xbeef);
        let lu = SparseLu::factor(&a).unwrap();
        assert!(lu.solve_panel_count() > 0, "no panels retained");
        let m = 5;
        let mut rhs = vec![0.0f64; n * m];
        for i in 0..n {
            rhs[i] = (0.29 * i as f64).sin() + 0.4;
            rhs[n + i] = if i % 4 == 0 {
                0.0
            } else {
                0.7 - 1.0 / (1.0 + i as f64)
            };
            // Column 2 stays all-zero; column 3 is a single spike.
            rhs[4 * n + i] = -(0.17 * i as f64).cos();
        }
        rhs[3 * n + 11] = 1.5;
        let multi = lu.solve_multi(&rhs, m).unwrap();
        for k in 0..m {
            let one = lu.solve(&rhs[k * n..(k + 1) * n]).unwrap();
            assert_eq!(
                &multi[k * n..(k + 1) * n],
                &one[..],
                "panel solve_multi column {k} drifted from solve"
            );
        }
    }

    #[test]
    fn solve_multi_complex_with_panels_matches_column_solves() {
        let n = 90;
        let g = filled_matrix(n, 7, 0x7a111);
        let c = CscMatrix::from_triplets(
            n,
            n,
            &(0..n)
                .map(|i| (i, i, 1e-3 * (1.0 + i as f64)))
                .collect::<Vec<_>>(),
        )
        .unwrap();
        let pencil = ShiftedPencil::new(&g, &c).unwrap();
        let lu = pencil.factor_complex(Complex64::jomega(250.0)).unwrap();
        assert!(lu.solve_panel_count() > 0, "no complex panels retained");
        let m = 3;
        let mut rhs: Vec<f64> = (0..n * m).map(|i| ((i as f64) * 0.19).sin()).collect();
        // Second system: mostly zero, so it must replay the scalar walk.
        for (i, v) in rhs[n..2 * n].iter_mut().enumerate() {
            if i % 5 != 0 {
                *v = 0.0;
            }
        }
        let multi = lu.solve_multi_real(&rhs, m).unwrap();
        for k in 0..m {
            let one = lu.solve_real(&rhs[k * n..(k + 1) * n]).unwrap();
            assert_eq!(&multi[k * n..(k + 1) * n], &one[..], "complex column {k}");
        }
    }

    #[test]
    fn panel_blocked_complex_solve_matches_scalar_reference_walk() {
        // Backward-pass coverage for the complex scalar: the U panels of a
        // shifted factorization must agree with the historical scalar
        // backward walk to fused-sum roundoff.
        let n = 110;
        let g = filled_matrix(n, 8, 0xface7);
        let c = CscMatrix::from_triplets(
            n,
            n,
            &(0..n)
                .map(|i| (i, i, 1e-3 * (1.0 + i as f64)))
                .collect::<Vec<_>>(),
        )
        .unwrap();
        let pencil = ShiftedPencil::new(&g, &c).unwrap();
        let lu = pencil.factor_complex(Complex64::jomega(420.0)).unwrap();
        assert!(lu.solve_panel_count() > 0, "no complex panels retained");
        let b: Vec<Complex64> = (0..n)
            .map(|i| Complex64::new((0.13 * i as f64).sin(), 0.2 + (0.07 * i as f64).cos()))
            .collect();
        let x = lu.solve(&b).unwrap();
        let xref = reference_solve(&lu, &b);
        let num: f64 = x
            .iter()
            .zip(&xref)
            .map(|(p, q)| (*p - *q).abs_sq())
            .sum::<f64>()
            .sqrt();
        let den: f64 = xref.iter().map(|z| z.abs_sq()).sum::<f64>().sqrt();
        assert!(
            num / den < 1e-12,
            "complex blocked solve drifted from scalar walk: {}",
            num / den
        );
    }

    #[test]
    fn backward_panels_exercise_above_rows_on_mixed_rhs() {
        // The supernodal factors must actually retain upper structure (a
        // panel with above-panel U rows feeding the backward GEMM), and the
        // full mixed-sparsity parity contract must hold across it: dense
        // systems commit to both blocked passes, sparse ones replay the
        // scalar walks, and every column of solve_multi equals its
        // standalone solve bit for bit while staying within fused-sum
        // roundoff of the reference walk.
        let n = 140;
        let a = filled_matrix(n, 9, 0x0ddba11);
        let lu = SparseLu::factor(&a).unwrap();
        assert!(
            lu.panels.iter().any(|p| !p.above_steps.is_empty()),
            "no panel retained above-panel U rows; densify the test matrix"
        );
        let m = 4;
        let mut rhs = vec![0.0f64; n * m];
        for i in 0..n {
            rhs[i] = (0.41 * i as f64).sin() - 0.3;
            // Column 1: scattered zeros; column 2 all-zero; column 3 a
            // two-entry spike deep in the elimination order.
            rhs[n + i] = if i % 6 == 0 {
                0.0
            } else {
                (0.05 * i as f64).cos()
            };
        }
        rhs[3 * n + n - 2] = 0.9;
        rhs[3 * n + 5] = -1.1;
        let multi = lu.solve_multi(&rhs, m).unwrap();
        for k in 0..m {
            let col = &rhs[k * n..(k + 1) * n];
            let one = lu.solve(col).unwrap();
            assert_eq!(
                &multi[k * n..(k + 1) * n],
                &one[..],
                "backward-panel solve_multi column {k} drifted from solve"
            );
            let xref = reference_solve(&lu, col);
            let rel = bdsm_linalg::vector::rel_err(&one, &xref, 1e-30);
            assert!(rel < 1e-12, "column {k} drifted from scalar walk: {rel}");
        }
    }

    #[test]
    fn scalar_kernel_retains_no_panels() {
        let a = filled_matrix(60, 6, 0xfade);
        let q = order(&a, FillOrdering::Amd).unwrap();
        let lu =
            SparseLu::factor_with(&a, &q, NumericKernel::Scalar, &mut LuWorkspace::new()).unwrap();
        assert_eq!(lu.solve_panel_count(), 0);
        let b: Vec<f64> = (0..60).map(|i| (0.31 * i as f64).cos()).collect();
        let x = lu.solve(&b).unwrap();
        assert_eq!(x, reference_solve(&lu, &b), "panel-free solve changed");
    }

    #[test]
    fn solve_multi_rejects_bad_shapes() {
        let a = test_matrix(5);
        let lu = SparseLu::factor(&a).unwrap();
        assert!(lu.solve_multi(&[1.0; 10], 0).is_err());
        assert!(lu.solve_multi(&[1.0; 9], 2).is_err());
        assert!(lu.solve_multi_real(&[1.0; 5], 2).is_err());
    }

    #[test]
    fn workspace_survives_singular_failure() {
        // A singular factorization must not poison the workspace for the
        // next (regular) factorization.
        let sing =
            CscMatrix::from_triplets(3, 3, &[(0, 0, 1.0), (1, 0, 2.0), (2, 0, 1.0), (1, 1, 1.0)])
                .unwrap();
        let good = test_matrix(3);
        let q = [0, 1, 2];
        let mut ws = LuWorkspace::<f64>::new();
        assert!(matches!(
            SparseLu::factor_with(&sing, &q, NumericKernel::Supernodal, &mut ws),
            Err(LinalgError::Singular { .. })
        ));
        let lu = SparseLu::factor_with(&good, &q, NumericKernel::Supernodal, &mut ws).unwrap();
        let x = lu.solve(&[1.0, 0.0, 0.0]).unwrap();
        let r = good.matvec(&x).unwrap();
        assert!((r[0] - 1.0).abs() < 1e-12 && r[1].abs() < 1e-12 && r[2].abs() < 1e-12);
    }
}
