//! Compressed sparse column (CSC) storage.
//!
//! CSC is the native layout of left-looking LU: the factorization walks
//! columns of `A` and appends columns of `L` and `U`, and triangular solves
//! stream through columns with unit stride. Construction goes through
//! triplets (the MNA stamp format) with duplicate summing, so the circuit
//! layer's COO matrices convert losslessly.

use crate::scalar::Scalar;
use bdsm_linalg::{Complex64, LinalgError, Matrix, Result};

/// A sparse matrix in compressed sparse column format.
///
/// Within each column the row indices are strictly increasing; explicit
/// zeros created by duplicate cancellation are dropped at construction.
#[derive(Debug, Clone, PartialEq)]
pub struct CscMatrix<T: Scalar> {
    nrows: usize,
    ncols: usize,
    /// `col_ptr[j]..col_ptr[j + 1]` spans column `j` in `row_idx`/`values`.
    col_ptr: Vec<usize>,
    row_idx: Vec<usize>,
    values: Vec<T>,
}

impl<T: Scalar> CscMatrix<T> {
    /// Builds from triplets, summing duplicates and dropping exact zeros.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::InvalidArgument`] if any triplet is out of
    /// bounds.
    pub fn from_triplets(
        nrows: usize,
        ncols: usize,
        triplets: &[(usize, usize, T)],
    ) -> Result<Self> {
        for &(i, j, _) in triplets {
            if i >= nrows || j >= ncols {
                return Err(LinalgError::InvalidArgument {
                    what: "csc: triplet position out of bounds",
                });
            }
        }
        // Count per column, prefix-sum, then counting-sort the triplets.
        let mut counts = vec![0usize; ncols + 1];
        for &(_, j, _) in triplets {
            counts[j + 1] += 1;
        }
        for j in 0..ncols {
            counts[j + 1] += counts[j];
        }
        let mut rows = vec![0usize; triplets.len()];
        let mut vals = vec![T::ZERO; triplets.len()];
        let mut next = counts.clone();
        for &(i, j, v) in triplets {
            let slot = next[j];
            next[j] += 1;
            rows[slot] = i;
            vals[slot] = v;
        }
        // Sort each column by row and merge duplicates.
        let mut col_ptr = vec![0usize; ncols + 1];
        let mut row_idx = Vec::with_capacity(triplets.len());
        let mut values = Vec::with_capacity(triplets.len());
        let mut scratch: Vec<(usize, T)> = Vec::new();
        for j in 0..ncols {
            scratch.clear();
            scratch.extend(
                rows[counts[j]..counts[j + 1]]
                    .iter()
                    .copied()
                    .zip(vals[counts[j]..counts[j + 1]].iter().copied()),
            );
            scratch.sort_unstable_by_key(|&(r, _)| r);
            let mut k = 0;
            while k < scratch.len() {
                let (r, mut acc) = scratch[k];
                k += 1;
                while k < scratch.len() && scratch[k].0 == r {
                    acc += scratch[k].1;
                    k += 1;
                }
                if !acc.is_zero() {
                    row_idx.push(r);
                    values.push(acc);
                }
            }
            col_ptr[j + 1] = row_idx.len();
        }
        Ok(CscMatrix {
            nrows,
            ncols,
            col_ptr,
            row_idx,
            values,
        })
    }

    /// Builds directly from validated CSC parts: `col_ptr` monotone with
    /// `ncols + 1` entries, each column's rows strictly increasing. Used by
    /// the shifted-pencil hot path, where the pattern is already in CSC
    /// form and re-sorting per shift would be pure waste. Unlike
    /// [`from_triplets`](Self::from_triplets), explicit zero values are
    /// kept (the pattern must stay shift-independent).
    pub(crate) fn from_sorted_parts(
        nrows: usize,
        ncols: usize,
        col_ptr: Vec<usize>,
        row_idx: Vec<usize>,
        values: Vec<T>,
    ) -> Self {
        debug_assert_eq!(col_ptr.len(), ncols + 1);
        debug_assert_eq!(row_idx.len(), values.len());
        debug_assert_eq!(*col_ptr.last().unwrap_or(&0), row_idx.len());
        debug_assert!((0..ncols).all(|j| {
            col_ptr[j] <= col_ptr[j + 1]
                && row_idx[col_ptr[j]..col_ptr[j + 1]]
                    .windows(2)
                    .all(|w| w[0] < w[1])
                && row_idx[col_ptr[j]..col_ptr[j + 1]]
                    .iter()
                    .all(|&i| i < nrows)
        }));
        CscMatrix {
            nrows,
            ncols,
            col_ptr,
            row_idx,
            values,
        }
    }

    /// Borrows the raw CSC arrays `(col_ptr, row_idx, values)` — the
    /// zero-copy handoff to the factorization kernels.
    #[inline]
    pub(crate) fn parts(&self) -> (&[usize], &[usize], &[T]) {
        (&self.col_ptr, &self.row_idx, &self.values)
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// `(nrows, ncols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.nrows, self.ncols)
    }

    /// Number of stored (structurally nonzero) entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.row_idx.len()
    }

    /// `true` if the matrix is square.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.nrows == self.ncols
    }

    /// Row indices of column `j` (strictly increasing).
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range.
    #[inline]
    pub fn col_rows(&self, j: usize) -> &[usize] {
        &self.row_idx[self.col_ptr[j]..self.col_ptr[j + 1]]
    }

    /// Values of column `j`, aligned with [`col_rows`](Self::col_rows).
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range.
    #[inline]
    pub fn col_values(&self, j: usize) -> &[T] {
        &self.values[self.col_ptr[j]..self.col_ptr[j + 1]]
    }

    /// Value at `(i, j)`, zero when not stored.
    ///
    /// # Panics
    ///
    /// Panics if the position is out of bounds.
    pub fn get(&self, i: usize, j: usize) -> T {
        assert!(i < self.nrows && j < self.ncols, "csc: get out of bounds");
        match self.col_rows(j).binary_search(&i) {
            Ok(pos) => self.col_values(j)[pos],
            Err(_) => T::ZERO,
        }
    }

    /// Sparse matrix–vector product `y = A x`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `x.len() != ncols`.
    pub fn matvec(&self, x: &[T]) -> Result<Vec<T>> {
        if x.len() != self.ncols {
            return Err(LinalgError::ShapeMismatch {
                op: "csc-matvec",
                lhs: (self.nrows, self.ncols),
                rhs: (x.len(), 1),
            });
        }
        let mut y = vec![T::ZERO; self.nrows];
        for j in 0..self.ncols {
            let xj = x[j];
            if xj.is_zero() {
                continue;
            }
            for (&i, &v) in self.col_rows(j).iter().zip(self.col_values(j)) {
                y[i] += v * xj;
            }
        }
        Ok(y)
    }

    /// Transpose (also the conversion between CSC and CSR views).
    pub fn transpose(&self) -> CscMatrix<T> {
        let mut counts = vec![0usize; self.nrows + 1];
        for &i in &self.row_idx {
            counts[i + 1] += 1;
        }
        for i in 0..self.nrows {
            counts[i + 1] += counts[i];
        }
        let col_ptr = counts.clone();
        let mut next = counts;
        let mut row_idx = vec![0usize; self.nnz()];
        let mut values = vec![T::ZERO; self.nnz()];
        // Walking source columns in order leaves each transposed column
        // already sorted by (source-column) row index.
        for j in 0..self.ncols {
            for (&i, &v) in self.col_rows(j).iter().zip(self.col_values(j)) {
                let slot = next[i];
                next[i] += 1;
                row_idx[slot] = j;
                values[slot] = v;
            }
        }
        CscMatrix {
            nrows: self.ncols,
            ncols: self.nrows,
            col_ptr,
            row_idx,
            values,
        }
    }

    /// Copy with every value scaled by a real factor.
    pub fn scaled(&self, k: f64) -> CscMatrix<T> {
        let mut out = self.clone();
        for v in &mut out.values {
            *v = v.scale(k);
        }
        out
    }

    /// Symmetric renumbering of a square matrix: entry `(i, j)` moves to
    /// `(new_of_old[i], new_of_old[j])`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::NotSquare`] for non-square matrices and
    /// [`LinalgError::InvalidArgument`] on a length mismatch.
    pub fn permute_symmetric(&self, new_of_old: &[usize]) -> Result<CscMatrix<T>> {
        if !self.is_square() {
            return Err(LinalgError::NotSquare {
                shape: self.shape(),
            });
        }
        if new_of_old.len() != self.nrows {
            return Err(LinalgError::InvalidArgument {
                what: "csc: permutation length mismatch",
            });
        }
        let mut triplets = Vec::with_capacity(self.nnz());
        for j in 0..self.ncols {
            for (&i, &v) in self.col_rows(j).iter().zip(self.col_values(j)) {
                triplets.push((new_of_old[i], new_of_old[j], v));
            }
        }
        CscMatrix::from_triplets(self.nrows, self.ncols, &triplets)
    }

    /// Iterates over all stored entries as `(row, col, value)`.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, T)> + '_ {
        (0..self.ncols).flat_map(move |j| {
            self.col_rows(j)
                .iter()
                .zip(self.col_values(j))
                .map(move |(&i, &v)| (i, j, v))
        })
    }
}

impl CscMatrix<f64> {
    /// Converts a dense matrix, keeping entries with `|aᵢⱼ| > drop_tol`.
    pub fn from_dense(a: &Matrix, drop_tol: f64) -> CscMatrix<f64> {
        let mut triplets = Vec::new();
        for i in 0..a.nrows() {
            for j in 0..a.ncols() {
                if a[(i, j)].abs() > drop_tol {
                    triplets.push((i, j, a[(i, j)]));
                }
            }
        }
        CscMatrix::from_triplets(a.nrows(), a.ncols(), &triplets)
            .expect("triplets from a dense matrix are in bounds")
    }

    /// Densifies into a `bdsm_linalg::Matrix`.
    pub fn to_dense(&self) -> Matrix {
        let mut m = Matrix::zeros(self.nrows, self.ncols);
        for (i, j, v) in self.iter() {
            m[(i, j)] = v;
        }
        m
    }

    /// Real-matrix × complex-vector product, the `C·v` step of shifted
    /// Krylov recurrences at `s = jω`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `x.len() != ncols`.
    pub fn matvec_complex(&self, x: &[Complex64]) -> Result<Vec<Complex64>> {
        if x.len() != self.ncols {
            return Err(LinalgError::ShapeMismatch {
                op: "csc-matvec-complex",
                lhs: (self.nrows, self.ncols),
                rhs: (x.len(), 1),
            });
        }
        let mut y = vec![Complex64::ZERO; self.nrows];
        for j in 0..self.ncols {
            let xj = x[j];
            for (&i, &v) in self.col_rows(j).iter().zip(self.col_values(j)) {
                y[i] += xj * v;
            }
        }
        Ok(y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo() -> CscMatrix<f64> {
        // [[2, 0, 1], [0, 3, 0], [4, 0, -1]]
        CscMatrix::from_triplets(
            3,
            3,
            &[
                (0, 0, 2.0),
                (2, 0, 4.0),
                (1, 1, 3.0),
                (0, 2, 1.0),
                (2, 2, -1.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn triplets_sum_duplicates_and_drop_zeros() {
        let a =
            CscMatrix::from_triplets(2, 2, &[(0, 0, 1.5), (0, 0, 2.5), (1, 1, 1.0), (1, 1, -1.0)])
                .unwrap();
        assert_eq!(a.nnz(), 1); // the (1,1) pair cancelled exactly
        assert_eq!(a.get(0, 0), 4.0);
        assert_eq!(a.get(1, 1), 0.0);
    }

    #[test]
    fn out_of_bounds_triplet_rejected() {
        assert!(CscMatrix::from_triplets(2, 2, &[(2, 0, 1.0)]).is_err());
        assert!(CscMatrix::from_triplets(2, 2, &[(0, 5, 1.0)]).is_err());
    }

    #[test]
    fn rows_sorted_within_columns() {
        let a = CscMatrix::from_triplets(4, 1, &[(3, 0, 1.0), (0, 0, 2.0), (2, 0, 3.0)]).unwrap();
        assert_eq!(a.col_rows(0), &[0, 2, 3]);
        assert_eq!(a.col_values(0), &[2.0, 3.0, 1.0]);
    }

    #[test]
    fn matvec_matches_dense() {
        let a = demo();
        let x = [1.0, 2.0, 3.0];
        let y = a.matvec(&x).unwrap();
        assert_eq!(y, a.to_dense().matvec(&x).unwrap());
        assert!(a.matvec(&[1.0]).is_err());
    }

    #[test]
    fn transpose_roundtrip() {
        let a = demo();
        let att = a.transpose().transpose();
        assert_eq!(a, att);
        let at = a.transpose();
        for (i, j, v) in a.iter() {
            assert_eq!(at.get(j, i), v);
        }
    }

    #[test]
    fn dense_roundtrip_and_scaling() {
        let a = demo();
        let back = CscMatrix::from_dense(&a.to_dense(), 0.0);
        assert_eq!(a, back);
        assert_eq!(a.scaled(2.0).get(2, 0), 8.0);
    }

    #[test]
    fn symmetric_permutation_moves_entries() {
        let a = demo();
        let p = a.permute_symmetric(&[2, 1, 0]).unwrap();
        for (i, j, v) in a.iter() {
            assert_eq!(p.get(2 - i, 2 - j), v);
        }
        assert!(a.permute_symmetric(&[0, 1]).is_err());
        let rect = CscMatrix::<f64>::from_triplets(2, 3, &[]).unwrap();
        assert!(rect.permute_symmetric(&[0, 1]).is_err());
    }

    #[test]
    fn complex_matvec_applies_real_matrix() {
        let a = demo();
        let x = [
            Complex64::new(1.0, 1.0),
            Complex64::new(0.0, 2.0),
            Complex64::new(-1.0, 0.0),
        ];
        let y = a.matvec_complex(&x).unwrap();
        // Row 0: 2·(1+i) + 1·(−1) = 1 + 2i.
        assert_eq!(y[0], Complex64::new(1.0, 2.0));
        // Row 2: 4·(1+i) − 1·(−1) = 5 + 4i.
        assert_eq!(y[2], Complex64::new(5.0, 4.0));
        assert!(a.matvec_complex(&x[..2]).is_err());
    }
}
