//! Ignored-by-default perf probe: scalar vs supernodal kernel wall time on
//! matrices with genuinely different fill profiles. Run explicitly with
//!
//! ```text
//! cargo test --release -p bdsm-sparse --test kernel_perf -- --ignored --nocapture
//! ```
//!
//! The assertion is deliberately loose (the supernodal kernel must not be
//! catastrophically slower anywhere); the printed numbers are the point.

use bdsm_sparse::{CscMatrix, LuWorkspace, NumericKernel, ShiftedPencil};
use std::time::Instant;

/// 2D 5-point mesh Laplacian with shunt terms — the rc_grid structure,
/// where AMD ordering produces fronts with real supernode width.
fn mesh(rows: usize, cols: usize) -> (CscMatrix<f64>, CscMatrix<f64>) {
    let n = rows * cols;
    let idx = |r: usize, c: usize| r * cols + c;
    let mut tg = Vec::new();
    let mut tc = Vec::new();
    for r in 0..rows {
        for c in 0..cols {
            let i = idx(r, c);
            let mut deg = 0.05; // shunt load keeps G regular
            for (rr, cc) in [
                (r.wrapping_sub(1), c),
                (r + 1, c),
                (r, c.wrapping_sub(1)),
                (r, c + 1),
            ] {
                if rr < rows && cc < cols {
                    tg.push((i, idx(rr, cc), -1.0));
                    deg += 1.0;
                }
            }
            tg.push((i, i, deg));
            tc.push((i, i, 1e-3 * (1.0 + 0.1 * (i % 7) as f64)));
        }
    }
    (
        CscMatrix::from_triplets(n, n, &tg).unwrap(),
        CscMatrix::from_triplets(n, n, &tc).unwrap(),
    )
}

/// Quasi-1D ladder — the no-fill worst case for supernode detection.
fn ladder(n: usize) -> (CscMatrix<f64>, CscMatrix<f64>) {
    let mut tg = Vec::new();
    let mut tc = Vec::new();
    for i in 0..n {
        let mut deg = 0.2;
        if i > 0 {
            tg.push((i, i - 1, -1.0));
            deg += 1.0;
        }
        if i + 1 < n {
            tg.push((i, i + 1, -1.0));
            deg += 1.0;
        }
        tg.push((i, i, deg));
        tc.push((i, i, 1e-3));
    }
    (
        CscMatrix::from_triplets(n, n, &tg).unwrap(),
        CscMatrix::from_triplets(n, n, &tc).unwrap(),
    )
}

fn time_kernel(pencil: &ShiftedPencil, iters: usize) -> f64 {
    let mut ws = LuWorkspace::<f64>::new();
    let _ = pencil.factor_real_with(3.0, &mut ws).unwrap(); // warmup
    let t0 = Instant::now();
    for k in 0..iters {
        std::hint::black_box(pencil.factor_real_with(3.0 + k as f64, &mut ws).unwrap());
    }
    t0.elapsed().as_secs_f64() * 1e3 / iters as f64
}

#[test]
#[ignore = "perf probe, run with --ignored --nocapture in release"]
fn kernel_shootout() {
    for (name, g, c, iters) in [
        {
            let (g, c) = mesh(120, 120);
            ("mesh 120x120", g, c, 5usize)
        },
        {
            let (g, c) = mesh(60, 60);
            ("mesh 60x60", g, c, 20)
        },
        {
            let (g, c) = ladder(20_000);
            ("ladder 20k", g, c, 10)
        },
    ] {
        let blocked = ShiftedPencil::new(&g, &c).unwrap();
        let scalar = blocked.clone().with_numeric_kernel(NumericKernel::Scalar);
        let tb = time_kernel(&blocked, iters);
        let ts = time_kernel(&scalar, iters);
        println!(
            "{name}: supernodal {tb:.3} ms, scalar {ts:.3} ms, speedup {:.2}x",
            ts / tb
        );
        assert!(tb < ts * 3.0, "{name}: supernodal catastrophically slow");
    }
}
