//! Householder reduction to upper Hessenberg form and shifted Hessenberg
//! solves.
//!
//! Evaluating a dense ROM transfer matrix `H_r(s) = L_r (s C_r − G_r)⁻¹ B_r`
//! at many frequency points is `O(q³)` per point if done naively. Reducing
//! `A = C_r⁻¹ G_r` to Hessenberg form **once** makes every subsequent point an
//! `O(q²)` shifted-Hessenberg solve — the standard trick this module provides.

use super::matrix::Matrix;
use crate::complex::Complex64;
use crate::error::{LinalgError, Result};

/// Result of a Hessenberg reduction `A = Q H Qᵀ`.
#[derive(Debug, Clone)]
pub struct Hessenberg {
    /// Upper Hessenberg factor `H`.
    pub h: Matrix,
    /// Orthogonal accumulation `Q`.
    pub q: Matrix,
}

/// Reduces a square matrix to upper Hessenberg form with Householder
/// reflections, accumulating the orthogonal transformation.
///
/// # Errors
///
/// Returns [`LinalgError::NotSquare`] if the input is not square.
pub fn hessenberg(a: &Matrix) -> Result<Hessenberg> {
    if !a.is_square() {
        return Err(LinalgError::NotSquare { shape: a.shape() });
    }
    let n = a.nrows();
    let mut h = a.clone();
    let mut ort = vec![0.0; n];
    let (low, high) = (0usize, n.saturating_sub(1));

    for m in (low + 1)..high {
        // Scale column m-1 below the diagonal.
        let mut scale = 0.0;
        for i in m..=high {
            scale += h[(i, m - 1)].abs();
        }
        if scale == 0.0 {
            continue;
        }
        let mut hsum = 0.0;
        for i in (m..=high).rev() {
            ort[i] = h[(i, m - 1)] / scale;
            hsum += ort[i] * ort[i];
        }
        let mut g = hsum.sqrt();
        if ort[m] > 0.0 {
            g = -g;
        }
        hsum -= ort[m] * g;
        ort[m] -= g;
        // Apply the Householder reflection: H ← (I − u uᵀ/h) H (I − u uᵀ/h).
        for j in m..n {
            let mut f = 0.0;
            for i in (m..=high).rev() {
                f += ort[i] * h[(i, j)];
            }
            f /= hsum;
            for i in m..=high {
                h[(i, j)] -= f * ort[i];
            }
        }
        for i in 0..=high {
            let mut f = 0.0;
            for j in (m..=high).rev() {
                f += ort[j] * h[(i, j)];
            }
            f /= hsum;
            for j in m..=high {
                h[(i, j)] -= f * ort[j];
            }
        }
        ort[m] *= scale;
        h[(m, m - 1)] = scale * g;
    }

    // Accumulate the orthogonal transformation Q.
    let mut q = Matrix::identity(n);
    for m in ((low + 1)..high).rev() {
        if h[(m, m - 1)] != 0.0 && ort[m] != 0.0 {
            // Recover the reflector stored in column m-1 below row m.
            let mut u = vec![0.0; n];
            u[m] = ort[m];
            for i in (m + 1)..=high {
                u[i] = h[(i, m - 1)];
            }
            let denom = h[(m, m - 1)] * ort[m];
            for j in m..=high {
                let mut g = 0.0;
                for i in m..=high {
                    g += u[i] * q[(i, j)];
                }
                g /= denom;
                for i in m..=high {
                    q[(i, j)] += g * u[i];
                }
            }
        }
    }

    // Zero out the below-subdiagonal entries (numerical noise from the
    // reflector storage).
    for i in 2..n {
        for j in 0..(i - 1) {
            h[(i, j)] = 0.0;
        }
    }
    Ok(Hessenberg { h, q })
}

/// Solves `(s·I − H) x = b` for upper Hessenberg `H` and complex shift `s`
/// in `O(n²)` using Gaussian elimination with partial pivoting on the single
/// subdiagonal.
///
/// # Errors
///
/// - [`LinalgError::NotSquare`] if `h` is not square.
/// - [`LinalgError::ShapeMismatch`] if `b.len()` differs from the dimension.
/// - [`LinalgError::Singular`] if `s` is an eigenvalue of `H` (zero pivot).
pub fn solve_shifted_hessenberg(
    h: &Matrix,
    s: Complex64,
    b: &[Complex64],
) -> Result<Vec<Complex64>> {
    if !h.is_square() {
        return Err(LinalgError::NotSquare { shape: h.shape() });
    }
    let n = h.nrows();
    if b.len() != n {
        return Err(LinalgError::ShapeMismatch {
            op: "hessenberg-solve",
            lhs: (n, n),
            rhs: (b.len(), 1),
        });
    }
    // Build M = s I − H as complex rows; only the Hessenberg band is nonzero
    // but elimination fills the upper triangle anyway, so dense rows are fine.
    let mut m: Vec<Vec<Complex64>> = (0..n)
        .map(|i| {
            (0..n)
                .map(|j| {
                    let mut v = Complex64::from_real(-h[(i, j)]);
                    if i == j {
                        v += s;
                    }
                    v
                })
                .collect()
        })
        .collect();
    let mut x = b.to_vec();
    // Eliminate the subdiagonal with partial pivoting between rows k, k+1.
    for k in 0..n.saturating_sub(1) {
        if m[k + 1][k].abs() > m[k][k].abs() {
            m.swap(k, k + 1);
            x.swap(k, k + 1);
        }
        let pivot = m[k][k];
        if pivot.abs() == 0.0 {
            return Err(LinalgError::Singular { at: k });
        }
        let factor = m[k + 1][k] / pivot;
        if factor.abs() != 0.0 {
            for j in k..n {
                let mkj = m[k][j];
                m[k + 1][j] -= factor * mkj;
            }
            let xk = x[k];
            x[k + 1] -= factor * xk;
        }
    }
    // Back substitution.
    for i in (0..n).rev() {
        let mut sum = x[i];
        for j in (i + 1)..n {
            sum -= m[i][j] * x[j];
        }
        let d = m[i][i];
        if d.abs() == 0.0 {
            return Err(LinalgError::Singular { at: i });
        }
        x[i] = sum / d;
    }
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vector::rel_err;

    fn test_matrix(n: usize) -> Matrix {
        let mut m = Matrix::from_fn(n, n, |i, j| ((i * n + j) as f64 * 0.7).sin());
        for i in 0..n {
            m[(i, i)] += 3.0;
        }
        m
    }

    #[test]
    fn hessenberg_structure() {
        let a = test_matrix(8);
        let hes = hessenberg(&a).unwrap();
        for i in 2..8 {
            for j in 0..(i - 1) {
                assert_eq!(hes.h[(i, j)], 0.0, "H[{i}][{j}] not zero");
            }
        }
    }

    #[test]
    fn hessenberg_similarity() {
        let a = test_matrix(7);
        let hes = hessenberg(&a).unwrap();
        // Q H Qᵀ = A
        let back = hes
            .q
            .matmul(&hes.h)
            .unwrap()
            .matmul(&hes.q.transpose())
            .unwrap();
        assert!(back.sub(&a).unwrap().norm_max() < 1e-12);
        // Q orthogonal
        let qtq = hes.q.transpose().matmul(&hes.q).unwrap();
        assert!(qtq.sub(&Matrix::identity(7)).unwrap().norm_max() < 1e-13);
    }

    #[test]
    fn hessenberg_of_small_matrices() {
        for n in 0..3 {
            let a = Matrix::identity(n);
            let hes = hessenberg(&a).unwrap();
            assert_eq!(hes.h, a);
        }
    }

    #[test]
    fn shifted_solve_matches_dense_solve() {
        let a = test_matrix(6);
        let hes = hessenberg(&a).unwrap();
        let s = Complex64::new(0.3, 2.0);
        let b: Vec<Complex64> = (0..6)
            .map(|i| Complex64::new(i as f64, 1.0 - i as f64))
            .collect();
        let x = solve_shifted_hessenberg(&hes.h, s, &b).unwrap();
        // Verify (sI − H) x = b by explicit residual.
        let n = 6;
        let mut res_re = vec![0.0; n];
        let mut res_im = vec![0.0; n];
        for i in 0..n {
            let mut acc = Complex64::ZERO;
            for j in 0..n {
                let mut mij = Complex64::from_real(-hes.h[(i, j)]);
                if i == j {
                    mij += s;
                }
                acc += mij * x[j];
            }
            res_re[i] = acc.re;
            res_im[i] = acc.im - b[i].im;
        }
        let bre: Vec<f64> = b.iter().map(|z| z.re).collect();
        assert!(rel_err(&res_re, &bre, 1.0) < 1e-12);
        assert!(crate::vector::norm2(&res_im) < 1e-10);
    }

    #[test]
    fn shifted_solve_detects_eigenvalue_shift() {
        // H = diag(1, 2): shifting by exactly 1 makes it singular.
        let h = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 2.0]]);
        let b = [Complex64::ONE, Complex64::ONE];
        let r = solve_shifted_hessenberg(&h, Complex64::from_real(1.0), &b);
        assert!(matches!(r, Err(LinalgError::Singular { .. })));
    }

    #[test]
    fn shifted_solve_validates_shapes() {
        let h = Matrix::identity(3);
        assert!(solve_shifted_hessenberg(&h, Complex64::I, &[Complex64::ONE]).is_err());
        let w = Matrix::zeros(2, 3);
        assert!(solve_shifted_hessenberg(&w, Complex64::I, &[]).is_err());
    }

    #[test]
    fn pivoting_in_hessenberg_solve() {
        // Small diagonal forces the row swap path.
        let h = Matrix::from_rows(&[&[1e-18, 1.0], &[1.0, 1.0]]);
        let b = [Complex64::ONE, Complex64::ZERO];
        let x = solve_shifted_hessenberg(&h, Complex64::ZERO, &b).unwrap();
        // (0·I − H)x = b  →  -Hx = b. Solve by hand: x0 = 1-? Let's just
        // check the residual.
        for i in 0..2 {
            let mut acc = Complex64::ZERO;
            for j in 0..2 {
                acc += Complex64::from_real(-h[(i, j)]) * x[j];
            }
            assert!((acc - b[i]).abs() < 1e-12);
        }
    }
}
