//! Householder QR factorization.

use super::matrix::Matrix;
use crate::error::{LinalgError, Result};

/// Thin QR factorization `A = Q R` of an `m × n` matrix with `m ≥ n`,
/// computed with Householder reflections.
///
/// The MOR layer uses modified Gram–Schmidt for its incremental Krylov bases
/// (as the paper's Algorithm 1 does); this Householder QR provides a
/// backwards-stable reference factorization for tests, for re-orthogonalizing
/// multi-point bases, and for least-squares solves.
#[derive(Debug, Clone)]
pub struct DenseQr {
    /// Householder vectors stored below the diagonal; R on and above.
    qr: Matrix,
    /// Scalar coefficients β of each reflector `H = I − β v vᵀ`.
    beta: Vec<f64>,
}

impl DenseQr {
    /// Factors `a` (must have `nrows ≥ ncols`).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::InvalidArgument`] if `nrows < ncols`.
    pub fn factor(a: &Matrix) -> Result<Self> {
        let (m, n) = a.shape();
        if m < n {
            return Err(LinalgError::InvalidArgument {
                what: "qr: nrows must be >= ncols",
            });
        }
        let mut qr = a.clone();
        let mut beta = vec![0.0; n];
        for k in 0..n {
            // Build the Householder vector for column k.
            let mut alpha = 0.0;
            for i in k..m {
                alpha += qr[(i, k)] * qr[(i, k)];
            }
            alpha = alpha.sqrt();
            if alpha == 0.0 {
                beta[k] = 0.0;
                continue;
            }
            if qr[(k, k)] > 0.0 {
                alpha = -alpha;
            }
            // v = x - alpha * e1, normalized so v[k] = 1.
            let vk = qr[(k, k)] - alpha;
            for i in (k + 1)..m {
                qr[(i, k)] /= vk;
            }
            beta[k] = -vk / alpha;
            qr[(k, k)] = alpha;
            // Apply H to the trailing columns.
            for j in (k + 1)..n {
                let mut s = qr[(k, j)];
                for i in (k + 1)..m {
                    s += qr[(i, k)] * qr[(i, j)];
                }
                s *= beta[k];
                qr[(k, j)] -= s;
                for i in (k + 1)..m {
                    let vik = qr[(i, k)];
                    qr[(i, j)] -= s * vik;
                }
            }
        }
        Ok(DenseQr { qr, beta })
    }

    /// The upper-triangular factor `R` (`n × n`).
    pub fn r(&self) -> Matrix {
        let n = self.qr.ncols();
        Matrix::from_fn(n, n, |i, j| if j >= i { self.qr[(i, j)] } else { 0.0 })
    }

    /// The thin orthonormal factor `Q` (`m × n`).
    pub fn thin_q(&self) -> Matrix {
        let (m, n) = self.qr.shape();
        let mut q = Matrix::zeros(m, n);
        for j in 0..n {
            q[(j, j)] = 1.0;
        }
        // Accumulate Q = H_0 H_1 ... H_{n-1} * [I; 0] applying reflectors
        // in reverse order.
        for k in (0..n).rev() {
            if self.beta[k] == 0.0 {
                continue;
            }
            for j in 0..n {
                let mut s = q[(k, j)];
                for i in (k + 1)..m {
                    s += self.qr[(i, k)] * q[(i, j)];
                }
                s *= self.beta[k];
                q[(k, j)] -= s;
                for i in (k + 1)..m {
                    let vik = self.qr[(i, k)];
                    q[(i, j)] -= s * vik;
                }
            }
        }
        q
    }

    /// Applies `Qᵀ` to a vector of length `m`, returning length `m`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] on a length mismatch.
    pub fn qt_mul(&self, b: &[f64]) -> Result<Vec<f64>> {
        let (m, n) = self.qr.shape();
        if b.len() != m {
            return Err(LinalgError::ShapeMismatch {
                op: "qr-qt-mul",
                lhs: (m, n),
                rhs: (b.len(), 1),
            });
        }
        let mut y = b.to_vec();
        for k in 0..n {
            if self.beta[k] == 0.0 {
                continue;
            }
            let mut s = y[k];
            for i in (k + 1)..m {
                s += self.qr[(i, k)] * y[i];
            }
            s *= self.beta[k];
            y[k] -= s;
            for i in (k + 1)..m {
                y[i] -= s * self.qr[(i, k)];
            }
        }
        Ok(y)
    }

    /// Least-squares solve: minimizes `‖A x − b‖₂`.
    ///
    /// # Errors
    ///
    /// - [`LinalgError::ShapeMismatch`] on a length mismatch.
    /// - [`LinalgError::Singular`] if `R` has a zero diagonal (rank-deficient).
    pub fn solve_least_squares(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.qr.ncols();
        let y = self.qt_mul(b)?;
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut s = y[i];
            for j in (i + 1)..n {
                s -= self.qr[(i, j)] * x[j];
            }
            let d = self.qr[(i, i)];
            if d == 0.0 {
                return Err(LinalgError::Singular { at: i });
            }
            x[i] = s / d;
        }
        Ok(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_orthonormal(q: &Matrix, tol: f64) {
        let qtq = q.transpose().matmul(q).unwrap();
        let err = qtq.sub(&Matrix::identity(q.ncols())).unwrap().norm_max();
        assert!(err < tol, "QᵀQ deviates from identity by {err}");
    }

    #[test]
    fn reconstructs_a_square() {
        let a = Matrix::from_rows(&[
            &[12.0, -51.0, 4.0],
            &[6.0, 167.0, -68.0],
            &[-4.0, 24.0, -41.0],
        ]);
        let qr = DenseQr::factor(&a).unwrap();
        let q = qr.thin_q();
        let r = qr.r();
        assert_orthonormal(&q, 1e-13);
        let back = q.matmul(&r).unwrap();
        assert!(back.sub(&a).unwrap().norm_max() < 1e-11);
    }

    #[test]
    fn reconstructs_a_tall() {
        let a = Matrix::from_fn(7, 3, |i, j| ((i * 3 + j) as f64).cos());
        let qr = DenseQr::factor(&a).unwrap();
        let back = qr.thin_q().matmul(&qr.r()).unwrap();
        assert!(back.sub(&a).unwrap().norm_max() < 1e-13);
        assert_orthonormal(&qr.thin_q(), 1e-13);
    }

    #[test]
    fn r_is_upper_triangular() {
        let a = Matrix::from_fn(5, 4, |i, j| {
            (i + j * 2) as f64 + if i == j { 3.0 } else { 0.0 }
        });
        let r = DenseQr::factor(&a).unwrap().r();
        for i in 0..4 {
            for j in 0..i {
                assert_eq!(r[(i, j)], 0.0);
            }
        }
    }

    #[test]
    fn least_squares_matches_normal_equations() {
        // Fit y = c0 + c1 x to 4 points; known closed form.
        let a = Matrix::from_rows(&[&[1.0, 0.0], &[1.0, 1.0], &[1.0, 2.0], &[1.0, 3.0]]);
        let b = [1.0, 2.2, 2.8, 4.1];
        let x = DenseQr::factor(&a)
            .unwrap()
            .solve_least_squares(&b)
            .unwrap();
        // Normal equations solution computed externally: slope ~ 1.01, icpt ~1.01
        let at = a.transpose();
        let ata = at.matmul(&a).unwrap();
        let atb = at.matvec(&b).unwrap();
        let xref = crate::dense::DenseLu::factor(&ata)
            .unwrap()
            .solve(&atb)
            .unwrap();
        for (u, v) in x.iter().zip(&xref) {
            assert!((u - v).abs() < 1e-12);
        }
    }

    #[test]
    fn wide_matrix_rejected() {
        let a = Matrix::zeros(2, 3);
        assert!(DenseQr::factor(&a).is_err());
    }

    #[test]
    fn rank_deficient_detected_in_solve() {
        let a = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 1.0], &[1.0, 1.0]]);
        let qr = DenseQr::factor(&a).unwrap();
        assert!(matches!(
            qr.solve_least_squares(&[1.0, 1.0, 1.0]),
            Err(LinalgError::Singular { .. })
        ));
    }

    #[test]
    fn qt_mul_preserves_norm() {
        let a = Matrix::from_fn(6, 4, |i, j| {
            ((i + 2 * j) as f64).sin() + if i == j { 2.0 } else { 0.0 }
        });
        let qr = DenseQr::factor(&a).unwrap();
        let b: Vec<f64> = (0..6).map(|i| i as f64 - 2.5).collect();
        let y = qr.qt_mul(&b).unwrap();
        let nb = crate::vector::norm2(&b);
        let ny = crate::vector::norm2(&y);
        assert!((nb - ny).abs() < 1e-12 * nb.max(1.0));
    }
}
