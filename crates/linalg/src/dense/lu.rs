//! Dense LU factorization with partial pivoting.

use super::matrix::Matrix;
use crate::error::{LinalgError, Result};

/// LU factorization `P A = L U` of a square dense matrix with partial
/// (row) pivoting.
///
/// Used for the small ROM-side systems: converting descriptor ROMs to
/// standard state space (`C_ir⁻¹ G_ir`, Sec. III-D) and solving projected
/// systems during transient simulation.
///
/// # Examples
///
/// ```
/// use bdsm_linalg::{Matrix, DenseLu};
///
/// let a = Matrix::from_rows(&[&[0.0, 2.0], &[1.0, 1.0]]);
/// let lu = DenseLu::factor(&a)?;
/// let x = lu.solve(&[2.0, 2.0])?;
/// assert!((x[0] - 1.0).abs() < 1e-14 && (x[1] - 1.0).abs() < 1e-14);
/// # Ok::<(), bdsm_linalg::LinalgError>(())
/// ```
#[derive(Debug, Clone)]
pub struct DenseLu {
    /// Packed LU factors: unit-lower L below the diagonal, U on and above.
    lu: Matrix,
    /// Row permutation: row `i` of `U` came from row `perm[i]` of `A`.
    perm: Vec<usize>,
    /// Sign of the permutation, for determinants.
    perm_sign: f64,
}

impl DenseLu {
    /// Factors a square matrix.
    ///
    /// # Errors
    ///
    /// - [`LinalgError::NotSquare`] if `a` is not square.
    /// - [`LinalgError::Singular`] if a pivot is exactly zero.
    pub fn factor(a: &Matrix) -> Result<Self> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare { shape: a.shape() });
        }
        let n = a.nrows();
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut sign = 1.0;
        for k in 0..n {
            // Partial pivoting: largest magnitude in column k at/below row k.
            let mut piv = k;
            let mut pmax = lu[(k, k)].abs();
            for i in (k + 1)..n {
                let v = lu[(i, k)].abs();
                if v > pmax {
                    pmax = v;
                    piv = i;
                }
            }
            if pmax == 0.0 {
                return Err(LinalgError::Singular { at: k });
            }
            if piv != k {
                perm.swap(k, piv);
                sign = -sign;
                for j in 0..n {
                    let t = lu[(k, j)];
                    lu[(k, j)] = lu[(piv, j)];
                    lu[(piv, j)] = t;
                }
            }
            let inv_piv = 1.0 / lu[(k, k)];
            for i in (k + 1)..n {
                let lik = lu[(i, k)] * inv_piv;
                lu[(i, k)] = lik;
                if lik != 0.0 {
                    for j in (k + 1)..n {
                        let u = lu[(k, j)];
                        lu[(i, j)] -= lik * u;
                    }
                }
            }
        }
        Ok(DenseLu {
            lu,
            perm,
            perm_sign: sign,
        })
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.lu.nrows()
    }

    /// Solves `A x = b`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `b.len()` differs from the
    /// matrix dimension.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::ShapeMismatch {
                op: "lu-solve",
                lhs: (n, n),
                rhs: (b.len(), 1),
            });
        }
        // Apply permutation, then forward/backward substitution.
        let mut x: Vec<f64> = self.perm.iter().map(|&p| b[p]).collect();
        for i in 1..n {
            let mut s = x[i];
            for j in 0..i {
                s -= self.lu[(i, j)] * x[j];
            }
            x[i] = s;
        }
        for i in (0..n).rev() {
            let mut s = x[i];
            for j in (i + 1)..n {
                s -= self.lu[(i, j)] * x[j];
            }
            x[i] = s / self.lu[(i, i)];
        }
        Ok(x)
    }

    /// Solves `A X = B` column by column.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `b.nrows()` differs from the
    /// matrix dimension.
    pub fn solve_matrix(&self, b: &Matrix) -> Result<Matrix> {
        let n = self.dim();
        if b.nrows() != n {
            return Err(LinalgError::ShapeMismatch {
                op: "lu-solve-matrix",
                lhs: (n, n),
                rhs: b.shape(),
            });
        }
        let mut out = Matrix::zeros(n, b.ncols());
        for j in 0..b.ncols() {
            let col = self.solve(&b.col(j))?;
            out.set_col(j, &col);
        }
        Ok(out)
    }

    /// Explicit inverse `A⁻¹` (use sparingly; prefer `solve`).
    ///
    /// # Errors
    ///
    /// Propagates solve errors (cannot occur after a successful factorization
    /// of a well-shaped identity).
    pub fn inverse(&self) -> Result<Matrix> {
        self.solve_matrix(&Matrix::identity(self.dim()))
    }

    /// Determinant of `A`, as the product of pivots times the permutation sign.
    pub fn det(&self) -> f64 {
        let mut d = self.perm_sign;
        for i in 0..self.dim() {
            d *= self.lu[(i, i)];
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vector::rel_err;

    #[test]
    fn solves_known_system() {
        let a = Matrix::from_rows(&[&[2.0, 1.0, 1.0], &[4.0, -6.0, 0.0], &[-2.0, 7.0, 2.0]]);
        let b = [5.0, -2.0, 9.0];
        let lu = DenseLu::factor(&a).unwrap();
        let x = lu.solve(&b).unwrap();
        let bx = a.matvec(&x).unwrap();
        assert!(rel_err(&bx, &b, 1e-30) < 1e-13);
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let lu = DenseLu::factor(&a).unwrap();
        let x = lu.solve(&[3.0, 7.0]).unwrap();
        assert_eq!(x, vec![7.0, 3.0]);
    }

    #[test]
    fn singular_detected() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert!(matches!(
            DenseLu::factor(&a),
            Err(LinalgError::Singular { .. })
        ));
    }

    #[test]
    fn non_square_rejected() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(
            DenseLu::factor(&a),
            Err(LinalgError::NotSquare { .. })
        ));
    }

    #[test]
    fn det_matches_known_values() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let lu = DenseLu::factor(&a).unwrap();
        assert!((lu.det() + 2.0).abs() < 1e-14);
        let i = Matrix::identity(4);
        assert!((DenseLu::factor(&i).unwrap().det() - 1.0).abs() < 1e-15);
    }

    #[test]
    fn inverse_times_matrix_is_identity() {
        let a = Matrix::from_rows(&[&[4.0, 7.0], &[2.0, 6.0]]);
        let inv = DenseLu::factor(&a).unwrap().inverse().unwrap();
        let prod = a.matmul(&inv).unwrap();
        let err = prod.sub(&Matrix::identity(2)).unwrap().norm_max();
        assert!(err < 1e-14);
    }

    #[test]
    fn solve_matrix_multiple_rhs() {
        let a = Matrix::from_rows(&[&[3.0, 1.0], &[1.0, 2.0]]);
        let b = Matrix::from_rows(&[&[9.0, 4.0], &[8.0, 3.0]]);
        let x = DenseLu::factor(&a).unwrap().solve_matrix(&b).unwrap();
        let r = a.matmul(&x).unwrap().sub(&b).unwrap().norm_max();
        assert!(r < 1e-13);
    }

    #[test]
    fn solve_rejects_wrong_length() {
        let a = Matrix::identity(3);
        let lu = DenseLu::factor(&a).unwrap();
        assert!(lu.solve(&[1.0, 2.0]).is_err());
    }

    #[test]
    fn random_roundtrip_moderate_size() {
        // Deterministic pseudo-random fill; condition stays moderate thanks to
        // diagonal boost.
        let n = 40;
        let mut seed = 0x9e3779b97f4a7c15u64;
        let mut rng = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            (seed as f64 / u64::MAX as f64) - 0.5
        };
        let mut a = Matrix::from_fn(n, n, |_, _| rng());
        for i in 0..n {
            a[(i, i)] += 4.0;
        }
        let xref: Vec<f64> = (0..n).map(|i| (i as f64).sin() + 1.5).collect();
        let b = a.matvec(&xref).unwrap();
        let x = DenseLu::factor(&a).unwrap().solve(&b).unwrap();
        assert!(rel_err(&x, &xref, 1e-30) < 1e-11);
    }
}
