//! Dense kernels: matrix storage, factorizations, and spectral routines.

pub mod blockqr;
pub mod eig_sym;
pub mod gemm;
pub mod hessenberg;
pub mod lu;
pub mod matrix;
pub mod qr;
pub mod svd;

pub use blockqr::{block_project, gemm_tn_acc};
pub use eig_sym::{sym_eig_extremes, sym_min_eig, SymEig};
pub use gemm::{gemm_acc, gemm_sub, trsv_unit_lower, GemmScalar, KernelShape, KERNEL_SHAPE};
pub use hessenberg::{hessenberg, solve_shifted_hessenberg, Hessenberg};
pub use lu::DenseLu;
pub use matrix::Matrix;
pub use qr::DenseQr;
pub use svd::Svd;
