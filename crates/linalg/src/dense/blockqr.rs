//! Panel-blocked orthogonalization kernels (block classical Gram–Schmidt).
//!
//! The Krylov basis merge orthogonalizes *panels* of candidate columns
//! against an accumulated orthonormal basis `Q`. Doing that column by
//! column (MGS) is a chain of `dot`/`axpy` passes over `Q` — O(n·k) loads
//! per candidate with no reuse. The blocked formulation hoists the whole
//! panel into two GEMM-shaped passes:
//!
//! ```text
//! H  = Qᵀ V        (gemm_tn_acc — the only transposed product we need)
//! V -= Q  H        (gemm_sub — the existing panel kernel)
//! ```
//!
//! run twice (block classical Gram–Schmidt with reorthogonalization,
//! "BCGS2"), after which the panel is orthogonal to `Q` to working
//! precision and only a small intra-panel pass remains. Both kernels
//! consume `Q` column-major and contiguously, so each basis column is
//! streamed once per pass instead of once per candidate.
//!
//! Everything here is sequential and deterministic: accumulation order
//! depends only on panel shapes, never on how callers schedule panels
//! across workers.

#![allow(clippy::too_many_arguments)]

use super::gemm::{gemm_sub, GemmScalar};

/// `C += Aᵀ·B` on column-major panels: `A` is `n × p` (lda), `B` is
/// `n × q` (ldb), `C` is `p × q` (ldc). The transposed-left product the
/// plain [`gemm_acc`](super::gemm::gemm_acc) kernel cannot express —
/// `C[i,j]` accumulates the dot of `A` column `i` with `B` column `j`
/// over rows in order, so results are independent of panel blocking.
///
/// # Panics
///
/// Panics (via slice indexing) if a panel is smaller than its
/// `leading dimension × extent` footprint.
pub fn gemm_tn_acc<T: GemmScalar>(
    n: usize,
    p: usize,
    q: usize,
    a: &[T],
    lda: usize,
    b: &[T],
    ldb: usize,
    c: &mut [T],
    ldc: usize,
) {
    if n == 0 || p == 0 || q == 0 {
        return;
    }
    debug_assert!(lda >= n && ldb >= n && ldc >= p);
    for j in 0..q {
        let bj = &b[j * ldb..j * ldb + n];
        let cj = &mut c[j * ldc..j * ldc + p];
        for (i, ci) in cj.iter_mut().enumerate().take(p) {
            let ai = &a[i * lda..i * lda + n];
            // Four-lane fused accumulation: fixed order (lane sums then a
            // left-to-right combine), so the result is reproducible and
            // the loop still vectorizes.
            let mut acc = [T::default(); 4];
            let mut r = 0;
            while r + 4 <= n {
                for (u, s) in acc.iter_mut().enumerate() {
                    *s += ai[r + u] * bj[r + u];
                }
                r += 4;
            }
            let mut t = ((acc[0] + acc[1]) + acc[2]) + acc[3];
            while r < n {
                t += ai[r] * bj[r];
                r += 1;
            }
            *ci += t;
        }
    }
}

/// One block classical Gram–Schmidt pass: projects the `n × pc` panel `v`
/// (column-major, leading dimension `n`) against the orthonormal `n × qc`
/// basis panel `q` (column-major, leading dimension `n`):
/// `H = Qᵀ·V; V -= Q·H`. `h` is caller-owned scratch, resized and
/// overwritten; callers run the pass twice for reorthogonalization.
pub fn block_project<T: GemmScalar>(
    n: usize,
    qc: usize,
    q: &[T],
    pc: usize,
    v: &mut [T],
    h: &mut Vec<T>,
) {
    if qc == 0 || pc == 0 || n == 0 {
        return;
    }
    h.clear();
    h.resize(qc * pc, T::default());
    gemm_tn_acc(n, qc, pc, q, n, v, n, h, qc);
    gemm_sub(n, qc, pc, q, n, h, qc, v, n);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fill(len: usize, seed: u64) -> Vec<f64> {
        let mut s = seed | 1;
        (0..len)
            .map(|_| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                (s >> 11) as f64 / (1u64 << 53) as f64 - 0.5
            })
            .collect()
    }

    #[test]
    fn gemm_tn_matches_naive_over_shapes() {
        // Row counts straddle the 4-lane fused width, including remainders.
        for &(n, p, q) in &[(1, 1, 1), (3, 2, 2), (4, 3, 1), (11, 5, 4), (32, 7, 3)] {
            let a = fill(n * p, 0x51 + (n * p) as u64);
            let b = fill(n * q, 0x52 + (n * q) as u64);
            let mut c = fill(p * q, 0x53);
            let mut cref = c.clone();
            gemm_tn_acc(n, p, q, &a, n, &b, n, &mut c, p);
            for j in 0..q {
                for i in 0..p {
                    let mut t = 0.0;
                    for r in 0..n {
                        t += a[i * n + r] * b[j * n + r];
                    }
                    cref[j * p + i] += t;
                }
            }
            for (x, y) in c.iter().zip(&cref) {
                assert!((x - y).abs() < 1e-13, "tn mismatch at ({n},{p},{q})");
            }
        }
    }

    #[test]
    fn gemm_tn_respects_leading_dimensions() {
        let (n, p, q) = (5, 2, 3);
        let (lda, ldb, ldc) = (7, 6, 4);
        let a = fill(lda * p, 1);
        let b = fill(ldb * q, 2);
        let mut c = fill(ldc * q, 3);
        let mut cref = c.clone();
        gemm_tn_acc(n, p, q, &a, lda, &b, ldb, &mut c, ldc);
        for j in 0..q {
            for i in 0..p {
                let mut t = 0.0;
                for r in 0..n {
                    t += a[i * lda + r] * b[j * ldb + r];
                }
                cref[j * ldc + i] += t;
            }
        }
        for (x, y) in c.iter().zip(&cref) {
            assert!((x - y).abs() < 1e-13);
        }
        // Rows p..ldc of each C column are untouched padding.
        for j in 0..q {
            for i in p..ldc {
                assert_eq!(c[j * ldc + i], cref[j * ldc + i]);
            }
        }
    }

    #[test]
    fn block_project_annihilates_basis_components() {
        // Q = orthonormalized random columns; after two projection passes
        // every panel column is orthogonal to every Q column to ~1e-14.
        let n = 40;
        let qc = 5;
        let mut q = fill(n * qc, 0xabc);
        for j in 0..qc {
            for i in 0..j {
                let h: f64 = (0..n).map(|r| q[i * n + r] * q[j * n + r]).sum();
                for r in 0..n {
                    q[j * n + r] -= h * q[i * n + r];
                }
            }
            let nrm: f64 = (0..n)
                .map(|r| q[j * n + r] * q[j * n + r])
                .sum::<f64>()
                .sqrt();
            for r in 0..n {
                q[j * n + r] /= nrm;
            }
        }
        let pc = 3;
        let mut v = fill(n * pc, 0xdef);
        let mut h = Vec::new();
        block_project(n, qc, &q, pc, &mut v, &mut h);
        block_project(n, qc, &q, pc, &mut v, &mut h);
        for j in 0..pc {
            for i in 0..qc {
                let d: f64 = (0..n).map(|r| q[i * n + r] * v[j * n + r]).sum();
                assert!(d.abs() < 1e-13, "residual component q{i}·v{j} = {d}");
            }
        }
    }

    #[test]
    fn empty_extents_are_noops() {
        let a = [1.0];
        let mut c = [3.0];
        gemm_tn_acc(0, 1, 1, &a, 1, &a, 1, &mut c, 1);
        gemm_tn_acc(1, 0, 1, &a, 1, &a, 1, &mut c, 1);
        gemm_tn_acc(1, 1, 0, &a, 1, &a, 1, &mut c, 1);
        assert_eq!(c[0], 3.0);
        let mut h = Vec::new();
        block_project(1, 0, &a, 1, &mut c, &mut h);
        assert_eq!(c[0], 3.0);
    }
}
