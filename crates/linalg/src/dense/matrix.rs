//! Row-major dense real matrix.

use crate::error::{LinalgError, Result};
use crate::vector;
use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense, row-major `f64` matrix.
///
/// This type carries the ROM-side dense math of the reproduction: congruence
/// products `Vᵀ A V`, projected input/output matrices, and the small
/// factorizations of Sec. III-D. It favours clarity and predictable memory
/// layout over BLAS-level tuning; the sizes involved (≤ a few thousand) keep
/// the naive triple loop adequate.
///
/// # Examples
///
/// ```
/// use bdsm_linalg::Matrix;
///
/// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// let b = Matrix::identity(2);
/// let c = a.matmul(&b).unwrap();
/// assert_eq!(c, a);
/// ```
#[derive(Clone, PartialEq)]
pub struct Matrix {
    nrows: usize,
    ncols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates an `nrows × ncols` matrix of zeros.
    pub fn zeros(nrows: usize, ncols: usize) -> Self {
        Matrix {
            nrows,
            ncols,
            data: vec![0.0; nrows * ncols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix by evaluating `f(row, col)` at every position.
    pub fn from_fn(nrows: usize, ncols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut m = Matrix::zeros(nrows, ncols);
        for i in 0..nrows {
            for j in 0..ncols {
                m[(i, j)] = f(i, j);
            }
        }
        m
    }

    /// Builds a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows have inconsistent lengths.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let nrows = rows.len();
        let ncols = rows.first().map_or(0, |r| r.len());
        let mut m = Matrix::zeros(nrows, ncols);
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(r.len(), ncols, "from_rows: ragged rows");
            m.row_mut(i).copy_from_slice(r);
        }
        m
    }

    /// Builds a matrix whose columns are the given vectors.
    ///
    /// This is the natural constructor for Krylov bases assembled column by
    /// column.
    ///
    /// # Panics
    ///
    /// Panics if the columns have inconsistent lengths.
    pub fn from_cols(cols: &[Vec<f64>]) -> Self {
        let ncols = cols.len();
        let nrows = cols.first().map_or(0, |c| c.len());
        let mut m = Matrix::zeros(nrows, ncols);
        for (j, c) in cols.iter().enumerate() {
            assert_eq!(c.len(), nrows, "from_cols: ragged columns");
            for i in 0..nrows {
                m[(i, j)] = c[i];
            }
        }
        m
    }

    /// Builds a matrix from a flat row-major buffer.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::InvalidArgument`] if `data.len() != nrows * ncols`.
    pub fn from_vec(nrows: usize, ncols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != nrows * ncols {
            return Err(LinalgError::InvalidArgument {
                what: "from_vec: buffer length must equal nrows * ncols",
            });
        }
        Ok(Matrix { nrows, ncols, data })
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// `(nrows, ncols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.nrows, self.ncols)
    }

    /// `true` when the matrix is square.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.nrows == self.ncols
    }

    /// Immutable view of row `i`.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.ncols..(i + 1) * self.ncols]
    }

    /// Mutable view of row `i`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.ncols..(i + 1) * self.ncols]
    }

    /// Copies column `j` into a new vector.
    pub fn col(&self, j: usize) -> Vec<f64> {
        (0..self.nrows).map(|i| self[(i, j)]).collect()
    }

    /// Overwrites column `j` with `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != nrows`.
    pub fn set_col(&mut self, j: usize, v: &[f64]) {
        assert_eq!(v.len(), self.nrows, "set_col: length mismatch");
        for i in 0..self.nrows {
            self[(i, j)] = v[i];
        }
    }

    /// Underlying row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable underlying row-major buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.ncols, self.nrows);
        for i in 0..self.nrows {
            for j in 0..self.ncols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Matrix product `self * rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] when the inner dimensions differ.
    pub fn matmul(&self, rhs: &Matrix) -> Result<Matrix> {
        if self.ncols != rhs.nrows {
            return Err(LinalgError::ShapeMismatch {
                op: "matmul",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let mut out = Matrix::zeros(self.nrows, rhs.ncols);
        // Row-major C = A·B is column-major Cᵀ = Bᵀ·Aᵀ, and a row-major
        // buffer *is* its transpose read column-major — so the blocked
        // column-major kernel applies directly with swapped operands.
        let (m, k, n) = (self.nrows, self.ncols, rhs.ncols);
        crate::dense::gemm::gemm_acc(
            n,
            k,
            m,
            rhs.as_slice(),
            n,
            self.as_slice(),
            k,
            out.as_mut_slice(),
            n,
        );
        Ok(out)
    }

    /// Matrix–vector product `self * x`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] when `x.len() != ncols`.
    pub fn matvec(&self, x: &[f64]) -> Result<Vec<f64>> {
        if x.len() != self.ncols {
            return Err(LinalgError::ShapeMismatch {
                op: "matvec",
                lhs: self.shape(),
                rhs: (x.len(), 1),
            });
        }
        Ok((0..self.nrows)
            .map(|i| vector::dot(self.row(i), x))
            .collect())
    }

    /// Transposed matrix–vector product `selfᵀ * x`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] when `x.len() != nrows`.
    pub fn tr_matvec(&self, x: &[f64]) -> Result<Vec<f64>> {
        if x.len() != self.nrows {
            return Err(LinalgError::ShapeMismatch {
                op: "tr_matvec",
                lhs: self.shape(),
                rhs: (x.len(), 1),
            });
        }
        let mut y = vec![0.0; self.ncols];
        for i in 0..self.nrows {
            vector::axpy(x[i], self.row(i), &mut y);
        }
        Ok(y)
    }

    /// Sum `self + rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] when shapes differ.
    pub fn add(&self, rhs: &Matrix) -> Result<Matrix> {
        if self.shape() != rhs.shape() {
            return Err(LinalgError::ShapeMismatch {
                op: "add",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let mut out = self.clone();
        for (o, r) in out.data.iter_mut().zip(&rhs.data) {
            *o += r;
        }
        Ok(out)
    }

    /// Difference `self - rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] when shapes differ.
    pub fn sub(&self, rhs: &Matrix) -> Result<Matrix> {
        if self.shape() != rhs.shape() {
            return Err(LinalgError::ShapeMismatch {
                op: "sub",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let mut out = self.clone();
        for (o, r) in out.data.iter_mut().zip(&rhs.data) {
            *o -= r;
        }
        Ok(out)
    }

    /// Scaled copy `alpha * self`.
    pub fn scaled(&self, alpha: f64) -> Matrix {
        let mut out = self.clone();
        for v in out.data.iter_mut() {
            *v *= alpha;
        }
        out
    }

    /// Frobenius norm.
    pub fn norm_fro(&self) -> f64 {
        vector::norm2(&self.data)
    }

    /// Maximum absolute entry.
    pub fn norm_max(&self) -> f64 {
        vector::norm_inf(&self.data)
    }

    /// Number of entries with `|a_ij| > tol`.
    ///
    /// Fig. 4 of the paper compares ROM sparsity; this is the measurement
    /// primitive behind it.
    pub fn count_nonzeros(&self, tol: f64) -> usize {
        self.data.iter().filter(|v| v.abs() > tol).count()
    }

    /// Extracts the contiguous submatrix with rows `r0..r1` and columns `c0..c1`.
    ///
    /// # Panics
    ///
    /// Panics if the ranges exceed the matrix dimensions.
    pub fn submatrix(&self, r0: usize, r1: usize, c0: usize, c1: usize) -> Matrix {
        assert!(r1 <= self.nrows && c1 <= self.ncols && r0 <= r1 && c0 <= c1);
        Matrix::from_fn(r1 - r0, c1 - c0, |i, j| self[(r0 + i, c0 + j)])
    }

    /// Writes `block` into this matrix with its top-left corner at `(r0, c0)`.
    ///
    /// # Panics
    ///
    /// Panics if the block does not fit.
    pub fn set_block(&mut self, r0: usize, c0: usize, block: &Matrix) {
        assert!(r0 + block.nrows <= self.nrows && c0 + block.ncols <= self.ncols);
        for i in 0..block.nrows {
            for j in 0..block.ncols {
                self[(r0 + i, c0 + j)] = block[(i, j)];
            }
        }
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.nrows && j < self.ncols);
        &self.data[i * self.ncols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.nrows && j < self.ncols);
        &mut self.data[i * self.ncols + j]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.nrows, self.ncols)?;
        let show_rows = self.nrows.min(8);
        for i in 0..show_rows {
            write!(f, "  [")?;
            let show_cols = self.ncols.min(8);
            for j in 0..show_cols {
                write!(f, "{:>12.4e}", self[(i, j)])?;
                if j + 1 < show_cols {
                    write!(f, ", ")?;
                }
            }
            if self.ncols > 8 {
                write!(f, ", ...")?;
            }
            writeln!(f, "]")?;
        }
        if self.nrows > 8 {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_identity_shape() {
        let z = Matrix::zeros(2, 3);
        assert_eq!(z.shape(), (2, 3));
        assert!(!z.is_square());
        let i = Matrix::identity(3);
        assert_eq!(i[(0, 0)], 1.0);
        assert_eq!(i[(0, 1)], 0.0);
        assert!(i.is_square());
    }

    #[test]
    fn from_rows_and_cols_agree() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_cols(&[vec![1.0, 3.0], vec![2.0, 4.0]]);
        assert_eq!(a, b);
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(Matrix::from_vec(2, 2, vec![1.0; 3]).is_err());
        let m = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(m[(1, 0)], 3.0);
    }

    #[test]
    fn matmul_identity_and_known_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let i = Matrix::identity(2);
        assert_eq!(a.matmul(&i).unwrap(), a);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b).unwrap();
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn matmul_shape_error() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(matches!(
            a.matmul(&b),
            Err(LinalgError::ShapeMismatch { op: "matmul", .. })
        ));
    }

    #[test]
    fn matvec_and_transpose_matvec() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        assert_eq!(a.matvec(&[1.0, 1.0]).unwrap(), vec![3.0, 7.0, 11.0]);
        assert_eq!(a.tr_matvec(&[1.0, 1.0, 1.0]).unwrap(), vec![9.0, 12.0]);
        assert!(a.matvec(&[1.0]).is_err());
        assert!(a.tr_matvec(&[1.0]).is_err());
    }

    #[test]
    fn transpose_involutive() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose()[(2, 1)], 6.0);
    }

    #[test]
    fn add_sub_scaled() {
        let a = Matrix::from_rows(&[&[1.0, 2.0]]);
        let b = Matrix::from_rows(&[&[3.0, 5.0]]);
        assert_eq!(a.add(&b).unwrap(), Matrix::from_rows(&[&[4.0, 7.0]]));
        assert_eq!(b.sub(&a).unwrap(), Matrix::from_rows(&[&[2.0, 3.0]]));
        assert_eq!(a.scaled(2.0), Matrix::from_rows(&[&[2.0, 4.0]]));
        assert!(a.add(&Matrix::zeros(2, 2)).is_err());
    }

    #[test]
    fn col_accessors() {
        let mut a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(a.col(1), vec![2.0, 4.0]);
        a.set_col(0, &[9.0, 8.0]);
        assert_eq!(a.col(0), vec![9.0, 8.0]);
    }

    #[test]
    fn norms_and_nnz() {
        let a = Matrix::from_rows(&[&[3.0, 0.0], &[0.0, 4.0]]);
        assert_eq!(a.norm_fro(), 5.0);
        assert_eq!(a.norm_max(), 4.0);
        assert_eq!(a.count_nonzeros(0.0), 2);
        assert_eq!(a.count_nonzeros(3.5), 1);
    }

    #[test]
    fn submatrix_and_set_block() {
        let a = Matrix::from_fn(4, 4, |i, j| (i * 4 + j) as f64);
        let s = a.submatrix(1, 3, 2, 4);
        assert_eq!(s, Matrix::from_rows(&[&[6.0, 7.0], &[10.0, 11.0]]));
        let mut z = Matrix::zeros(4, 4);
        z.set_block(2, 2, &s);
        assert_eq!(z[(2, 2)], 6.0);
        assert_eq!(z[(3, 3)], 11.0);
        assert_eq!(z[(0, 0)], 0.0);
    }

    #[test]
    fn debug_output_is_nonempty() {
        let a = Matrix::identity(2);
        let s = format!("{a:?}");
        assert!(s.contains("Matrix 2x2"));
    }
}
