//! Symmetric eigendecomposition via the cyclic Jacobi method.

use super::matrix::Matrix;
use crate::error::{LinalgError, Result};

/// Eigendecomposition `A = Q Λ Qᵀ` of a symmetric matrix.
///
/// Used for the positive-real tests in the passivity toolkit (checking
/// `Re H(jω) ⪰ 0` requires the eigenvalues of a small symmetric matrix per
/// frequency sample) and as a well-conditioned reference in tests.
#[derive(Debug, Clone)]
pub struct SymEig {
    /// Eigenvalues in ascending order.
    pub values: Vec<f64>,
    /// Orthonormal eigenvectors as columns, matching `values` order.
    pub vectors: Matrix,
}

impl SymEig {
    /// Computes the eigendecomposition of a symmetric matrix.
    ///
    /// Only the lower triangle is read; no symmetry check is performed beyond
    /// a debug assertion.
    ///
    /// # Errors
    ///
    /// - [`LinalgError::NotSquare`] if the input is not square.
    /// - [`LinalgError::NotConverged`] if Jacobi sweeps fail (practically
    ///   unreachable for finite symmetric inputs).
    pub fn compute(a: &Matrix) -> Result<Self> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare { shape: a.shape() });
        }
        let n = a.nrows();
        let mut m = symmetrize(a);
        let mut q = Matrix::identity(n);
        let max_sweeps = 50;
        let mut converged = n <= 1;
        for _ in 0..max_sweeps {
            let mut off = 0.0_f64;
            for p in 0..n {
                for r in (p + 1)..n {
                    off += m[(p, r)] * m[(p, r)];
                }
            }
            if off.sqrt() <= 1e-14 * (m.norm_fro() + 1e-300) {
                converged = true;
                break;
            }
            for p in 0..n {
                for r in (p + 1)..n {
                    let apq = m[(p, r)];
                    if apq == 0.0 {
                        continue;
                    }
                    let app = m[(p, p)];
                    let aqq = m[(r, r)];
                    let theta = (aqq - app) / (2.0 * apq);
                    let t = theta.signum() / (theta.abs() + (1.0 + theta * theta).sqrt());
                    let c = 1.0 / (1.0 + t * t).sqrt();
                    let s = t * c;
                    // Update rows/columns p and r of the symmetric matrix.
                    for k in 0..n {
                        let mkp = m[(k, p)];
                        let mkq = m[(k, r)];
                        m[(k, p)] = c * mkp - s * mkq;
                        m[(k, r)] = s * mkp + c * mkq;
                    }
                    for k in 0..n {
                        let mpk = m[(p, k)];
                        let mqk = m[(r, k)];
                        m[(p, k)] = c * mpk - s * mqk;
                        m[(r, k)] = s * mpk + c * mqk;
                    }
                    for k in 0..n {
                        let qkp = q[(k, p)];
                        let qkq = q[(k, r)];
                        q[(k, p)] = c * qkp - s * qkq;
                        q[(k, r)] = s * qkp + c * qkq;
                    }
                }
            }
        }
        if !converged {
            return Err(LinalgError::NotConverged {
                method: "jacobi-sym-eig",
                iterations: max_sweeps,
                residual: f64::NAN,
            });
        }
        // Sort ascending, permute vectors to match.
        let mut order: Vec<usize> = (0..n).collect();
        let diag: Vec<f64> = (0..n).map(|i| m[(i, i)]).collect();
        order.sort_by(|&i, &j| diag[i].partial_cmp(&diag[j]).unwrap());
        let values: Vec<f64> = order.iter().map(|&i| diag[i]).collect();
        let mut vectors = Matrix::zeros(n, n);
        for (dst, &src) in order.iter().enumerate() {
            for i in 0..n {
                vectors[(i, dst)] = q[(i, src)];
            }
        }
        Ok(SymEig { values, vectors })
    }

    /// Smallest eigenvalue (`None` for a 0×0 input).
    pub fn min(&self) -> Option<f64> {
        self.values.first().copied()
    }
}

fn symmetrize(a: &Matrix) -> Matrix {
    let n = a.nrows();
    Matrix::from_fn(n, n, |i, j| 0.5 * (a[(i, j)] + a[(j, i)]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diagonal_matrix() {
        let a = Matrix::from_rows(&[&[3.0, 0.0], &[0.0, -1.0]]);
        let e = SymEig::compute(&a).unwrap();
        assert!((e.values[0] + 1.0).abs() < 1e-14);
        assert!((e.values[1] - 3.0).abs() < 1e-14);
        assert_eq!(e.min(), Some(e.values[0]));
    }

    #[test]
    fn known_2x2() {
        // [[2,1],[1,2]] has eigenvalues 1 and 3.
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]);
        let e = SymEig::compute(&a).unwrap();
        assert!((e.values[0] - 1.0).abs() < 1e-13);
        assert!((e.values[1] - 3.0).abs() < 1e-13);
    }

    #[test]
    fn reconstruction_and_orthogonality() {
        let n = 8;
        let a = Matrix::from_fn(n, n, |i, j| 1.0 / (1.0 + (i as f64 - j as f64).abs()));
        let e = SymEig::compute(&a).unwrap();
        // Q Λ Qᵀ = A
        let mut lam = Matrix::zeros(n, n);
        for i in 0..n {
            lam[(i, i)] = e.values[i];
        }
        let back = e
            .vectors
            .matmul(&lam)
            .unwrap()
            .matmul(&e.vectors.transpose())
            .unwrap();
        assert!(back.sub(&a).unwrap().norm_max() < 1e-12);
        let qtq = e.vectors.transpose().matmul(&e.vectors).unwrap();
        assert!(qtq.sub(&Matrix::identity(n)).unwrap().norm_max() < 1e-12);
    }

    #[test]
    fn eigenvalues_sorted_ascending() {
        let a = Matrix::from_fn(6, 6, |i, j| ((i + j) as f64).sin());
        let e = SymEig::compute(&a).unwrap();
        for w in e.values.windows(2) {
            assert!(w[0] <= w[1] + 1e-14);
        }
    }

    #[test]
    fn spd_matrix_has_positive_eigenvalues() {
        // Laplacian of a path + I is SPD.
        let n = 10;
        let a = Matrix::from_fn(n, n, |i, j| {
            if i == j {
                3.0
            } else if i.abs_diff(j) == 1 {
                -1.0
            } else {
                0.0
            }
        });
        let e = SymEig::compute(&a).unwrap();
        assert!(e.min().unwrap() > 0.0);
    }

    #[test]
    fn non_square_rejected() {
        assert!(SymEig::compute(&Matrix::zeros(2, 3)).is_err());
    }

    #[test]
    fn trace_equals_sum_of_eigenvalues() {
        let a = Matrix::from_fn(5, 5, |i, j| ((i * j) as f64).cos());
        let e = SymEig::compute(&a).unwrap();
        let tr: f64 = (0..5).map(|i| a[(i, i)]).sum();
        let sum: f64 = e.values.iter().sum();
        assert!((tr - sum).abs() < 1e-12);
    }
}
