//! Symmetric eigendecomposition via the cyclic Jacobi method.

use super::matrix::Matrix;
use crate::error::{LinalgError, Result};

/// Eigendecomposition `A = Q Λ Qᵀ` of a symmetric matrix.
///
/// Used for the positive-real tests in the passivity toolkit (checking
/// `Re H(jω) ⪰ 0` requires the eigenvalues of a small symmetric matrix per
/// frequency sample) and as a well-conditioned reference in tests.
#[derive(Debug, Clone)]
pub struct SymEig {
    /// Eigenvalues in ascending order.
    pub values: Vec<f64>,
    /// Orthonormal eigenvectors as columns, matching `values` order.
    pub vectors: Matrix,
}

impl SymEig {
    /// Computes the eigendecomposition of a symmetric matrix.
    ///
    /// Only the lower triangle is read; no symmetry check is performed beyond
    /// a debug assertion.
    ///
    /// # Errors
    ///
    /// - [`LinalgError::NotSquare`] if the input is not square.
    /// - [`LinalgError::NotConverged`] if Jacobi sweeps fail (practically
    ///   unreachable for finite symmetric inputs).
    pub fn compute(a: &Matrix) -> Result<Self> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare { shape: a.shape() });
        }
        let n = a.nrows();
        let mut m = symmetrize(a);
        let mut q = Matrix::identity(n);
        let max_sweeps = 50;
        let mut converged = n <= 1;
        for _ in 0..max_sweeps {
            let mut off = 0.0_f64;
            for p in 0..n {
                for r in (p + 1)..n {
                    off += m[(p, r)] * m[(p, r)];
                }
            }
            if off.sqrt() <= 1e-14 * (m.norm_fro() + 1e-300) {
                converged = true;
                break;
            }
            for p in 0..n {
                for r in (p + 1)..n {
                    let apq = m[(p, r)];
                    if apq == 0.0 {
                        continue;
                    }
                    let app = m[(p, p)];
                    let aqq = m[(r, r)];
                    let theta = (aqq - app) / (2.0 * apq);
                    let t = theta.signum() / (theta.abs() + (1.0 + theta * theta).sqrt());
                    let c = 1.0 / (1.0 + t * t).sqrt();
                    let s = t * c;
                    // Update rows/columns p and r of the symmetric matrix.
                    for k in 0..n {
                        let mkp = m[(k, p)];
                        let mkq = m[(k, r)];
                        m[(k, p)] = c * mkp - s * mkq;
                        m[(k, r)] = s * mkp + c * mkq;
                    }
                    for k in 0..n {
                        let mpk = m[(p, k)];
                        let mqk = m[(r, k)];
                        m[(p, k)] = c * mpk - s * mqk;
                        m[(r, k)] = s * mpk + c * mqk;
                    }
                    for k in 0..n {
                        let qkp = q[(k, p)];
                        let qkq = q[(k, r)];
                        q[(k, p)] = c * qkp - s * qkq;
                        q[(k, r)] = s * qkp + c * qkq;
                    }
                }
            }
        }
        if !converged {
            return Err(LinalgError::NotConverged {
                method: "jacobi-sym-eig",
                iterations: max_sweeps,
                residual: f64::NAN,
            });
        }
        // Sort ascending, permute vectors to match.
        let mut order: Vec<usize> = (0..n).collect();
        let diag: Vec<f64> = (0..n).map(|i| m[(i, i)]).collect();
        order.sort_by(|&i, &j| diag[i].partial_cmp(&diag[j]).unwrap());
        let values: Vec<f64> = order.iter().map(|&i| diag[i]).collect();
        let mut vectors = Matrix::zeros(n, n);
        for (dst, &src) in order.iter().enumerate() {
            for i in 0..n {
                vectors[(i, dst)] = q[(i, src)];
            }
        }
        Ok(SymEig { values, vectors })
    }

    /// Smallest eigenvalue (`None` for a 0×0 input).
    pub fn min(&self) -> Option<f64> {
        self.values.first().copied()
    }
}

fn symmetrize(a: &Matrix) -> Matrix {
    let n = a.nrows();
    Matrix::from_fn(n, n, |i, j| 0.5 * (a[(i, j)] + a[(j, i)]))
}

/// Extremal eigenvalues `(λ_min, λ_max)` of a symmetric matrix.
///
/// Householder tridiagonalization (no orthogonal accumulation) followed by
/// Sturm-count bisection on the tridiagonal — `O(n³)` with a far smaller
/// constant than the full Jacobi decomposition, which is what makes
/// semidefiniteness margins on large reduced pencils affordable inside the
/// `Certify` stage. Only the lower triangle is read (the matrix is
/// symmetrized first, like [`SymEig::compute`]). Fully deterministic: fixed
/// bisection schedule, no data-dependent pivoting.
///
/// # Errors
///
/// - [`LinalgError::NotSquare`] if the input is not square.
/// - [`LinalgError::InvalidArgument`] for an empty (0×0) matrix.
pub fn sym_eig_extremes(a: &Matrix) -> Result<(f64, f64)> {
    if !a.is_square() {
        return Err(LinalgError::NotSquare { shape: a.shape() });
    }
    let n = a.nrows();
    if n == 0 {
        return Err(LinalgError::InvalidArgument {
            what: "empty matrix has no eigenvalues",
        });
    }
    let (d, e) = tridiagonalize(&symmetrize(a));
    let lo = sturm_min(&d, &e);
    let neg_d: Vec<f64> = d.iter().map(|&v| -v).collect();
    let hi = -sturm_min(&neg_d, &e);
    Ok((lo, hi))
}

/// Smallest eigenvalue of a symmetric matrix — see [`sym_eig_extremes`].
///
/// # Errors
///
/// Same as [`sym_eig_extremes`].
pub fn sym_min_eig(a: &Matrix) -> Result<f64> {
    sym_eig_extremes(a).map(|(lo, _)| lo)
}

/// Householder reduction of a symmetric matrix to tridiagonal form,
/// returning `(diag, subdiag)` with `subdiag.len() == n - 1`. Classic
/// EISPACK `tred1` shape: reflectors are applied but never accumulated.
fn tridiagonalize(a: &Matrix) -> (Vec<f64>, Vec<f64>) {
    let n = a.nrows();
    let mut m = a.clone();
    let mut e = vec![0.0_f64; n];
    for i in (1..n).rev() {
        let l = i - 1;
        if l == 0 {
            e[i] = m[(i, 0)];
            continue;
        }
        let mut scale = 0.0;
        for k in 0..i {
            scale += m[(i, k)].abs();
        }
        if scale == 0.0 {
            e[i] = 0.0;
            continue;
        }
        let mut v: Vec<f64> = (0..i).map(|k| m[(i, k)] / scale).collect();
        let mut h: f64 = v.iter().map(|x| x * x).sum();
        let f = v[l];
        let g = if f > 0.0 { -h.sqrt() } else { h.sqrt() };
        e[i] = scale * g;
        h -= f * g;
        v[l] = f - g;
        // p = A·v / h over the leading i×i block, then the rank-2 update
        // A ← A − v pᵀ − p vᵀ restricted to the lower triangle.
        let mut p = vec![0.0_f64; i];
        for j in 0..i {
            let mut acc = 0.0;
            for k in 0..=j {
                acc += m[(j, k)] * v[k];
            }
            for k in (j + 1)..i {
                acc += m[(k, j)] * v[k];
            }
            p[j] = acc / h;
        }
        let kk: f64 = p.iter().zip(&v).map(|(p, v)| p * v).sum::<f64>() / (2.0 * h);
        for j in 0..i {
            p[j] -= kk * v[j];
        }
        for j in 0..i {
            for k in 0..=j {
                m[(j, k)] -= v[j] * p[k] + p[j] * v[k];
            }
        }
    }
    let d: Vec<f64> = (0..n).map(|i| m[(i, i)]).collect();
    (d, e.split_off(1))
}

/// Number of eigenvalues of the tridiagonal `(d, e)` strictly below `x`,
/// by the Sturm sequence of leading-principal-minor pivots.
fn sturm_count(d: &[f64], e: &[f64], x: f64, guard: f64) -> usize {
    let mut count = 0;
    let mut q = 1.0_f64;
    for i in 0..d.len() {
        let ei2 = if i == 0 { 0.0 } else { e[i - 1] * e[i - 1] };
        if q.abs() < guard {
            q = if q < 0.0 { -guard } else { guard };
        }
        q = d[i] - x - ei2 / q;
        if q < 0.0 {
            count += 1;
        }
    }
    count
}

/// Bisection for the smallest eigenvalue of the tridiagonal `(d, e)`,
/// bracketed by Gershgorin bounds. A fixed 120-step schedule drives the
/// bracket to full `f64` resolution deterministically.
fn sturm_min(d: &[f64], e: &[f64]) -> f64 {
    let n = d.len();
    let radius = |i: usize| {
        let left = if i > 0 { e[i - 1].abs() } else { 0.0 };
        let right = if i + 1 < n { e[i].abs() } else { 0.0 };
        left + right
    };
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for i in 0..n {
        lo = lo.min(d[i] - radius(i));
        hi = hi.max(d[i] + radius(i));
    }
    let span = (hi - lo).max(lo.abs()).max(hi.abs()).max(1.0);
    let guard = (span * f64::EPSILON).max(f64::MIN_POSITIVE);
    // Invariant: count(lo) == 0, count(hi) >= 1.
    let mut lo = lo - guard;
    let mut hi = hi + guard;
    for _ in 0..120 {
        let mid = 0.5 * (lo + hi);
        if mid <= lo || mid >= hi {
            break;
        }
        if sturm_count(d, e, mid, guard) >= 1 {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    0.5 * (lo + hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diagonal_matrix() {
        let a = Matrix::from_rows(&[&[3.0, 0.0], &[0.0, -1.0]]);
        let e = SymEig::compute(&a).unwrap();
        assert!((e.values[0] + 1.0).abs() < 1e-14);
        assert!((e.values[1] - 3.0).abs() < 1e-14);
        assert_eq!(e.min(), Some(e.values[0]));
    }

    #[test]
    fn known_2x2() {
        // [[2,1],[1,2]] has eigenvalues 1 and 3.
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]);
        let e = SymEig::compute(&a).unwrap();
        assert!((e.values[0] - 1.0).abs() < 1e-13);
        assert!((e.values[1] - 3.0).abs() < 1e-13);
    }

    #[test]
    fn reconstruction_and_orthogonality() {
        let n = 8;
        let a = Matrix::from_fn(n, n, |i, j| 1.0 / (1.0 + (i as f64 - j as f64).abs()));
        let e = SymEig::compute(&a).unwrap();
        // Q Λ Qᵀ = A
        let mut lam = Matrix::zeros(n, n);
        for i in 0..n {
            lam[(i, i)] = e.values[i];
        }
        let back = e
            .vectors
            .matmul(&lam)
            .unwrap()
            .matmul(&e.vectors.transpose())
            .unwrap();
        assert!(back.sub(&a).unwrap().norm_max() < 1e-12);
        let qtq = e.vectors.transpose().matmul(&e.vectors).unwrap();
        assert!(qtq.sub(&Matrix::identity(n)).unwrap().norm_max() < 1e-12);
    }

    #[test]
    fn eigenvalues_sorted_ascending() {
        let a = Matrix::from_fn(6, 6, |i, j| ((i + j) as f64).sin());
        let e = SymEig::compute(&a).unwrap();
        for w in e.values.windows(2) {
            assert!(w[0] <= w[1] + 1e-14);
        }
    }

    #[test]
    fn spd_matrix_has_positive_eigenvalues() {
        // Laplacian of a path + I is SPD.
        let n = 10;
        let a = Matrix::from_fn(n, n, |i, j| {
            if i == j {
                3.0
            } else if i.abs_diff(j) == 1 {
                -1.0
            } else {
                0.0
            }
        });
        let e = SymEig::compute(&a).unwrap();
        assert!(e.min().unwrap() > 0.0);
    }

    #[test]
    fn non_square_rejected() {
        assert!(SymEig::compute(&Matrix::zeros(2, 3)).is_err());
    }

    #[test]
    fn extremes_match_full_decomposition() {
        for n in [1, 2, 3, 8, 17, 40] {
            let a = Matrix::from_fn(n, n, |i, j| {
                ((i * 31 + j * 17) as f64 * 0.37).sin() + if i == j { 2.5 } else { 0.0 }
            });
            let full = SymEig::compute(&a).unwrap();
            let (lo, hi) = sym_eig_extremes(&a).unwrap();
            let scale = full.values.iter().fold(1.0_f64, |m, v| m.max(v.abs()));
            assert!(
                (lo - full.values[0]).abs() <= 1e-11 * scale,
                "n={n}: λ_min {lo} vs jacobi {}",
                full.values[0]
            );
            assert!(
                (hi - full.values[n - 1]).abs() <= 1e-11 * scale,
                "n={n}: λ_max {hi} vs jacobi {}",
                full.values[n - 1]
            );
            assert_eq!(sym_min_eig(&a).unwrap(), lo);
        }
    }

    #[test]
    fn extremes_on_spd_and_indefinite() {
        // Path Laplacian + I: SPD with known spectrum 3 - 2cos(kπ/(n+1)).
        let n = 12;
        let a = Matrix::from_fn(n, n, |i, j| {
            if i == j {
                3.0
            } else if i.abs_diff(j) == 1 {
                -1.0
            } else {
                0.0
            }
        });
        let (lo, hi) = sym_eig_extremes(&a).unwrap();
        let expect_lo = 3.0 - 2.0 * (std::f64::consts::PI / (n as f64 + 1.0)).cos();
        let expect_hi = 3.0 - 2.0 * (n as f64 * std::f64::consts::PI / (n as f64 + 1.0)).cos();
        assert!((lo - expect_lo).abs() < 1e-12);
        assert!((hi - expect_hi).abs() < 1e-12);
        // Indefinite: diag(-4, 9).
        let b = Matrix::from_rows(&[&[-4.0, 0.0], &[0.0, 9.0]]);
        let (lo, hi) = sym_eig_extremes(&b).unwrap();
        assert!((lo + 4.0).abs() < 1e-12 && (hi - 9.0).abs() < 1e-12);
    }

    #[test]
    fn extremes_reject_bad_shapes() {
        assert!(sym_eig_extremes(&Matrix::zeros(2, 3)).is_err());
        assert!(sym_eig_extremes(&Matrix::zeros(0, 0)).is_err());
        let one = Matrix::from_rows(&[&[7.0]]);
        assert_eq!(sym_eig_extremes(&one).unwrap(), (7.0, 7.0));
    }

    #[test]
    fn trace_equals_sum_of_eigenvalues() {
        let a = Matrix::from_fn(5, 5, |i, j| ((i * j) as f64).cos());
        let e = SymEig::compute(&a).unwrap();
        let tr: f64 = (0..5).map(|i| a[(i, i)]).sum();
        let sum: f64 = e.values.iter().sum();
        assert!((tr - sum).abs() < 1e-12);
    }
}
