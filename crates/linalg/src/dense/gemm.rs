//! Cache/register-blocked dense GEMM-style micro-kernels.
//!
//! These are the flop engines behind the supernodal sparse LU
//! (`bdsm-sparse`): once a supernode's columns are packed into a
//! column-major panel, eliminating it against a target column is one unit
//! lower-triangular solve ([`trsv_unit_lower`]) plus one panel
//! multiply-subtract ([`gemm_sub`]) — contiguous, branch-free inner loops
//! instead of the scalar kernel's indirection-chasing scattered axpys.
//! [`crate::Matrix::matmul`] runs on the same kernel, so the projector's
//! congruence products and Gram matrices share the blocking.
//!
//! All panels are **column-major** with an explicit leading dimension, the
//! natural layout of CSC factors (row-major callers pass their buffers as
//! transposes — see `Matrix::matmul`). The kernel is generic over the
//! scalar so the real and complex (`G + jωC`) factorization paths compile
//! to separately optimized loops.

// BLAS-style panel signatures (extents + leading dimensions per operand)
// are the domain convention; bundling them into structs would only obscure
// the m/k/n contract every caller already knows.
#![allow(clippy::too_many_arguments)]

use std::ops::{Add, AddAssign, Mul, SubAssign};

/// Scalars the blocked kernels operate on (`f64` and
/// [`crate::Complex64`] in practice). `Default` supplies the additive
/// identity so the trait stays a pure alias over std bounds.
pub trait GemmScalar:
    Copy + Default + Add<Output = Self> + AddAssign + SubAssign + Mul<Output = Self>
{
}

impl<T> GemmScalar for T where
    T: Copy + Default + Add<Output = T> + AddAssign + SubAssign + Mul<Output = T>
{
}

/// `C += A·B` on column-major panels: `A` is `m × k` with leading
/// dimension `lda`, `B` is `k × n` (ldb), `C` is `m × n` (ldc).
///
/// # Panics
///
/// Panics (via slice indexing) if a panel is smaller than its
/// `leading dimension × extent` footprint.
#[inline]
pub fn gemm_acc<T: GemmScalar>(
    m: usize,
    k: usize,
    n: usize,
    a: &[T],
    lda: usize,
    b: &[T],
    ldb: usize,
    c: &mut [T],
    ldc: usize,
) {
    gemm_kernel::<T, false>(m, k, n, a, lda, b, ldb, c, ldc);
}

/// `C -= A·B`, same panel conventions as [`gemm_acc`]. This is the
/// supernodal elimination update `x(below) -= L(below, S) · u(S)`.
#[inline]
pub fn gemm_sub<T: GemmScalar>(
    m: usize,
    k: usize,
    n: usize,
    a: &[T],
    lda: usize,
    b: &[T],
    ldb: usize,
    c: &mut [T],
    ldc: usize,
) {
    gemm_kernel::<T, true>(m, k, n, a, lda, b, ldb, c, ldc);
}

/// Compile-time register-blocking parameters of the micro-kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelShape {
    /// Rank-1 updates fused per pass over a `C` column: each fused pass
    /// broadcasts this many `B` values and streams as many unit-stride `A`
    /// columns, so widening it deepens the register blocking without
    /// touching the loop structure.
    pub fused_rank1: usize,
}

/// The active kernel shape — retune the scalar unroll in this one line.
pub const KERNEL_SHAPE: KernelShape = KernelShape { fused_rank1: 8 };

/// Shared implementation: per output column, rank-1 updates are fused
/// [`KERNEL_SHAPE`]`.fused_rank1` at a time so each pass over the `C`
/// column amortizes that many broadcast `B` values
/// and unit-stride `A` streams — the register blocking — while `k` is
/// consumed in order, keeping results independent of the blocking factor
/// up to the usual fused-sum rounding.
#[allow(clippy::too_many_arguments)]
fn gemm_kernel<T: GemmScalar, const SUB: bool>(
    m: usize,
    k: usize,
    n: usize,
    a: &[T],
    lda: usize,
    b: &[T],
    ldb: usize,
    c: &mut [T],
    ldc: usize,
) {
    const FUSED: usize = KERNEL_SHAPE.fused_rank1;
    if m == 0 || k == 0 || n == 0 {
        return;
    }
    debug_assert!(lda >= m && ldc >= m && ldb >= k);
    for j in 0..n {
        let cj = &mut c[j * ldc..j * ldc + m];
        let bj = &b[j * ldb..j * ldb + k];
        let mut p = 0;
        while p + FUSED <= k {
            let bb: [T; FUSED] = std::array::from_fn(|t| bj[p + t]);
            let acols: [&[T]; FUSED] =
                std::array::from_fn(|t| &a[(p + t) * lda..(p + t) * lda + m]);
            for i in 0..m {
                let mut t = acols[0][i] * bb[0];
                for u in 1..FUSED {
                    t += acols[u][i] * bb[u];
                }
                if SUB {
                    cj[i] -= t;
                } else {
                    cj[i] += t;
                }
            }
            p += FUSED;
        }
        while p < k {
            let bp = bj[p];
            let ap = &a[p * lda..p * lda + m];
            for i in 0..m {
                let t = ap[i] * bp;
                if SUB {
                    cj[i] -= t;
                } else {
                    cj[i] += t;
                }
            }
            p += 1;
        }
    }
}

/// In-place solve `L x = b` where `L` is the `w × w` **unit** lower
/// triangle of a column-major panel with leading dimension `lda`
/// (entries on and above the diagonal are ignored).
///
/// This is the diagonal-block step of a supernodal elimination: the
/// gathered right-hand side becomes the supernode's `U` column segment.
///
/// # Panics
///
/// Panics (via slice indexing) if the panel or `x` is too small.
pub fn trsv_unit_lower<T: GemmScalar>(w: usize, lda: usize, l: &[T], x: &mut [T]) {
    for j in 0..w {
        let xj = x[j];
        let lj = &l[j * lda..j * lda + w];
        for i in (j + 1)..w {
            let t = lj[i] * xj;
            x[i] -= t;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Complex64;

    /// Reference `C ±= A·B` in the same column-major convention.
    fn naive<T: GemmScalar>(
        m: usize,
        k: usize,
        n: usize,
        a: &[T],
        lda: usize,
        b: &[T],
        ldb: usize,
        c: &mut [T],
        ldc: usize,
        sub: bool,
    ) {
        for j in 0..n {
            for p in 0..k {
                for i in 0..m {
                    let t = a[p * lda + i] * b[j * ldb + p];
                    if sub {
                        c[j * ldc + i] -= t;
                    } else {
                        c[j * ldc + i] += t;
                    }
                }
            }
        }
    }

    fn fill(len: usize, seed: u64) -> Vec<f64> {
        let mut s = seed | 1;
        (0..len)
            .map(|_| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                (s >> 11) as f64 / (1u64 << 53) as f64 - 0.5
            })
            .collect()
    }

    #[test]
    fn gemm_matches_naive_over_shapes() {
        // Shapes straddle the fused width: k < fused, k == fused, and
        // k > 2·fused with a remainder.
        for &(m, k, n) in &[
            (1, 1, 1),
            (3, 5, 2),
            (8, 4, 4),
            (17, 9, 5),
            (6, 13, 1),
            (4, KERNEL_SHAPE.fused_rank1, 2),
            (5, 2 * KERNEL_SHAPE.fused_rank1 + 3, 3),
        ] {
            let a = fill(m * k, 0x11 + (m * k) as u64);
            let b = fill(k * n, 0x22 + (k * n) as u64);
            let mut c = fill(m * n, 0x33);
            let mut cref = c.clone();
            gemm_acc(m, k, n, &a, m, &b, k, &mut c, m);
            naive(m, k, n, &a, m, &b, k, &mut cref, m, false);
            for (x, y) in c.iter().zip(&cref) {
                assert!((x - y).abs() < 1e-13, "acc mismatch at ({m},{k},{n})");
            }
            gemm_sub(m, k, n, &a, m, &b, k, &mut c, m);
            naive(m, k, n, &a, m, &b, k, &mut cref, m, true);
            for (x, y) in c.iter().zip(&cref) {
                assert!((x - y).abs() < 1e-13, "sub mismatch at ({m},{k},{n})");
            }
        }
    }

    #[test]
    fn leading_dimensions_are_respected() {
        // Panels embedded in larger buffers: lda/ldb/ldc > extents.
        let (m, k, n) = (3, 6, 2);
        let (lda, ldb, ldc) = (5, 8, 4);
        let a = fill(lda * k, 1);
        let b = fill(ldb * n, 2);
        let mut c = fill(ldc * n, 3);
        let mut cref = c.clone();
        gemm_sub(m, k, n, &a, lda, &b, ldb, &mut c, ldc);
        naive(m, k, n, &a, lda, &b, ldb, &mut cref, ldc, true);
        for (x, y) in c.iter().zip(&cref) {
            assert!((x - y).abs() < 1e-14);
        }
        // Rows m..ldc of each C column are untouched padding.
        for j in 0..n {
            for i in m..ldc {
                assert_eq!(c[j * ldc + i], cref[j * ldc + i]);
            }
        }
    }

    #[test]
    fn complex_gemm_matches_naive() {
        let (m, k, n) = (5, 7, 3);
        let re = fill(m * k, 7);
        let im = fill(m * k, 8);
        let a: Vec<Complex64> = re
            .iter()
            .zip(&im)
            .map(|(&r, &i)| Complex64::new(r, i))
            .collect();
        let bre = fill(k * n, 9);
        let b: Vec<Complex64> = bre.iter().map(|&r| Complex64::new(r, -r)).collect();
        let mut c = vec![Complex64::ZERO; m * n];
        let mut cref = c.clone();
        gemm_acc(m, k, n, &a, m, &b, k, &mut c, m);
        naive(m, k, n, &a, m, &b, k, &mut cref, m, false);
        for (x, y) in c.iter().zip(&cref) {
            assert!((*x - *y).abs() < 1e-13);
        }
    }

    #[test]
    fn trsv_solves_unit_lower_system() {
        // Build L (unit lower, lda > w), pick x, compute b = L x, solve.
        let w = 6;
        let lda = 9;
        let mut l = vec![0.0f64; lda * w];
        let rnd = fill(w * w, 42);
        for j in 0..w {
            for i in (j + 1)..w {
                l[j * lda + i] = rnd[j * w + i];
            }
            // Garbage on/above the diagonal must be ignored.
            l[j * lda + j] = 777.0;
        }
        let xref = fill(w, 5);
        let mut b = xref.clone();
        // b = L x with unit diagonal: b[i] = x[i] + Σ_{j<i} L[i,j] x[j].
        for i in (0..w).rev() {
            let mut acc = xref[i];
            for j in 0..i {
                acc += l[j * lda + i] * xref[j];
            }
            b[i] = acc;
        }
        trsv_unit_lower(w, lda, &l, &mut b);
        for (x, y) in b.iter().zip(&xref) {
            assert!((x - y).abs() < 1e-13);
        }
    }

    #[test]
    fn empty_extents_are_noops() {
        let a = [1.0];
        let b = [2.0];
        let mut c = [3.0];
        gemm_acc(0, 1, 1, &a, 1, &b, 1, &mut c, 1);
        gemm_acc(1, 0, 1, &a, 1, &b, 1, &mut c, 1);
        gemm_acc(1, 1, 0, &a, 1, &b, 1, &mut c, 1);
        assert_eq!(c[0], 3.0);
        trsv_unit_lower(0, 1, &a, &mut c);
        assert_eq!(c[0], 3.0);
    }
}
