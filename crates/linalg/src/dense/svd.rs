//! Singular value decomposition via the one-sided Jacobi method.

use super::matrix::Matrix;
use crate::error::{LinalgError, Result};
use crate::vector;

/// Thin SVD `A = U Σ Vᵀ` of an `m × n` matrix (`m ≥ n` internally; wide
/// inputs are transposed transparently).
///
/// The SVDMOR baseline ([11] in the paper) compresses terminals by taking
/// the SVD of the DC moment matrix `M₀ = −L G⁻¹ B`; sizes there are
/// `p × m` (tens to ~1.5k), well within reach of one-sided Jacobi, which is
/// simple and very accurate for small singular values.
#[derive(Debug, Clone)]
pub struct Svd {
    /// Left singular vectors, `m × r` with `r = min(m, n)`.
    pub u: Matrix,
    /// Singular values, descending.
    pub sigma: Vec<f64>,
    /// Right singular vectors, `n × r` (columns, not transposed).
    pub v: Matrix,
}

impl Svd {
    /// Computes the thin SVD of `a`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::NotConverged`] if Jacobi sweeps fail to reduce
    /// off-diagonal correlation below tolerance (practically unreachable for
    /// finite inputs).
    pub fn compute(a: &Matrix) -> Result<Self> {
        let (m, n) = a.shape();
        if m >= n {
            Self::compute_tall(a)
        } else {
            // A = U Σ Vᵀ  ⇔  Aᵀ = V Σ Uᵀ.
            let t = Self::compute_tall(&a.transpose())?;
            Ok(Svd {
                u: t.v,
                sigma: t.sigma,
                v: t.u,
            })
        }
    }

    fn compute_tall(a: &Matrix) -> Result<Self> {
        let (m, n) = a.shape();
        debug_assert!(m >= n);
        // Work on columns of W = A; V accumulates the right rotations.
        let mut w: Vec<Vec<f64>> = (0..n).map(|j| a.col(j)).collect();
        let mut v = Matrix::identity(n);
        let max_sweeps = 60;
        let tol = 1e-14;
        let mut converged = false;
        for _ in 0..max_sweeps {
            let mut off = 0.0_f64;
            for p in 0..n {
                for q in (p + 1)..n {
                    let alpha = vector::dot(&w[p], &w[p]);
                    let beta = vector::dot(&w[q], &w[q]);
                    let gamma = vector::dot(&w[p], &w[q]);
                    // A rank-deficient input (e.g. an interface-zeroed
                    // projector slice) drives redundant columns denormal;
                    // once `α·β` underflows the pair is numerically null —
                    // treat it as orthogonal instead of letting `γ/denom`
                    // turn into 0/0 and poison the convergence metric.
                    let denom = (alpha * beta).sqrt();
                    if !(denom > 0.0 && denom.is_finite()) {
                        continue;
                    }
                    off = off.max(gamma.abs() / denom);
                    if gamma.abs() <= tol * denom {
                        continue;
                    }
                    // Jacobi rotation zeroing the (p,q) correlation. For
                    // huge |ζ| (a null column against a dominant one —
                    // routine for rank-deficient inputs) `ζ²` overflows to
                    // ∞ and the textbook formula degenerates to t = 0, an
                    // identity rotation that stalls the sweep; use the
                    // asymptote t → 1/(2ζ) there instead.
                    let zeta = (beta - alpha) / (2.0 * gamma);
                    let t = if zeta.abs() > 1.0e150 {
                        0.5 / zeta
                    } else {
                        zeta.signum() / (zeta.abs() + (1.0 + zeta * zeta).sqrt())
                    };
                    let c = 1.0 / (1.0 + t * t).sqrt();
                    let s = c * t;
                    let (wp, wq) = split_two(&mut w, p, q);
                    for (xp, xq) in wp.iter_mut().zip(wq.iter_mut()) {
                        let tp = *xp;
                        *xp = c * tp - s * *xq;
                        *xq = s * tp + c * *xq;
                    }
                    for i in 0..n {
                        let vp = v[(i, p)];
                        let vq = v[(i, q)];
                        v[(i, p)] = c * vp - s * vq;
                        v[(i, q)] = s * vp + c * vq;
                    }
                }
            }
            if off <= tol {
                converged = true;
                break;
            }
        }
        if !converged {
            return Err(LinalgError::NotConverged {
                method: "jacobi-svd",
                iterations: max_sweeps,
                residual: f64::NAN,
            });
        }
        // Column norms are the singular values.
        let mut order: Vec<usize> = (0..n).collect();
        let norms: Vec<f64> = w.iter().map(|c| vector::norm2(c)).collect();
        order.sort_by(|&i, &j| norms[j].partial_cmp(&norms[i]).unwrap());
        let mut u = Matrix::zeros(m, n);
        let mut vv = Matrix::zeros(n, n);
        let mut sigma = Vec::with_capacity(n);
        for (dst, &src) in order.iter().enumerate() {
            let s = norms[src];
            sigma.push(s);
            if s > 0.0 {
                for i in 0..m {
                    u[(i, dst)] = w[src][i] / s;
                }
            } else {
                // Null direction: leave the column zero (rank-deficient).
            }
            for i in 0..n {
                vv[(i, dst)] = v[(i, src)];
            }
        }
        Ok(Svd { u, sigma, v: vv })
    }

    /// Numerical rank: number of σᵢ > `tol * σ₀`.
    pub fn rank(&self, tol: f64) -> usize {
        let s0 = self.sigma.first().copied().unwrap_or(0.0);
        self.sigma.iter().filter(|&&s| s > tol * s0).count()
    }

    /// Reconstructs `A ≈ U_k Σ_k V_kᵀ` keeping the leading `k` singular triplets.
    pub fn truncate(&self, k: usize) -> Matrix {
        let k = k.min(self.sigma.len());
        let m = self.u.nrows();
        let n = self.v.nrows();
        let mut out = Matrix::zeros(m, n);
        for t in 0..k {
            let s = self.sigma[t];
            for i in 0..m {
                let uis = self.u[(i, t)] * s;
                if uis == 0.0 {
                    continue;
                }
                for j in 0..n {
                    out[(i, j)] += uis * self.v[(j, t)];
                }
            }
        }
        out
    }
}

/// Borrows two distinct elements of a slice mutably.
fn split_two<T>(v: &mut [T], p: usize, q: usize) -> (&mut T, &mut T) {
    debug_assert!(p < q);
    let (lo, hi) = v.split_at_mut(q);
    (&mut lo[p], &mut hi[0])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_orthonormal_cols(q: &Matrix, k: usize, tol: f64) {
        for a in 0..k {
            for b in a..k {
                let d = vector::dot(&q.col(a), &q.col(b));
                let want = if a == b { 1.0 } else { 0.0 };
                assert!((d - want).abs() < tol, "col {a}·col {b} = {d}");
            }
        }
    }

    #[test]
    fn diagonal_matrix_svd() {
        let a = Matrix::from_rows(&[&[3.0, 0.0], &[0.0, 5.0], &[0.0, 0.0]]);
        let svd = Svd::compute(&a).unwrap();
        assert!((svd.sigma[0] - 5.0).abs() < 1e-13);
        assert!((svd.sigma[1] - 3.0).abs() < 1e-13);
    }

    #[test]
    fn reconstruction_tall() {
        let a = Matrix::from_fn(6, 4, |i, j| ((i as f64 + 1.0) * (j as f64 + 0.5)).sin());
        let svd = Svd::compute(&a).unwrap();
        let back = svd.truncate(4);
        assert!(back.sub(&a).unwrap().norm_max() < 1e-12);
        assert_orthonormal_cols(&svd.u, svd.rank(1e-12), 1e-12);
        assert_orthonormal_cols(&svd.v, 4, 1e-12);
    }

    #[test]
    fn reconstruction_wide() {
        let a = Matrix::from_fn(3, 7, |i, j| {
            (i * 7 + j) as f64 * 0.1 + if i == j { 1.0 } else { 0.0 }
        });
        let svd = Svd::compute(&a).unwrap();
        let back = svd.truncate(3);
        assert!(back.sub(&a).unwrap().norm_max() < 1e-12);
    }

    #[test]
    fn rank_one_matrix() {
        // a = u vᵀ with u = [1,2,3]ᵀ, v = [4,5]ᵀ.
        let a = Matrix::from_rows(&[&[4.0, 5.0], &[8.0, 10.0], &[12.0, 15.0]]);
        let svd = Svd::compute(&a).unwrap();
        assert_eq!(svd.rank(1e-10), 1);
        let expect = (14.0_f64 * 41.0).sqrt(); // ‖u‖‖v‖
        assert!((svd.sigma[0] - expect).abs() < 1e-12);
        let back = svd.truncate(1);
        assert!(back.sub(&a).unwrap().norm_max() < 1e-12);
    }

    #[test]
    fn singular_values_are_descending() {
        let a = Matrix::from_fn(8, 5, |i, j| ((3 * i + 2 * j) as f64).cos() * 2.0);
        let svd = Svd::compute(&a).unwrap();
        for w in svd.sigma.windows(2) {
            assert!(w[0] >= w[1] - 1e-15);
        }
    }

    #[test]
    fn truncation_error_bounded_by_next_sigma() {
        let a = Matrix::from_fn(6, 6, |i, j| 1.0 / (1.0 + i as f64 + j as f64));
        let svd = Svd::compute(&a).unwrap();
        for k in 1..6 {
            let err = svd.truncate(k).sub(&a).unwrap();
            // Spectral norm ≥ max entry; σ_{k+1} bounds the spectral norm of
            // the remainder, so the max entry must be ≤ σ_{k+1} (+ slack).
            let next = svd.sigma.get(k).copied().unwrap_or(0.0);
            assert!(err.norm_max() <= next + 1e-12, "k={k}");
        }
    }

    #[test]
    fn zero_matrix() {
        let a = Matrix::zeros(4, 3);
        let svd = Svd::compute(&a).unwrap();
        assert!(svd.sigma.iter().all(|&s| s == 0.0));
        assert_eq!(svd.rank(1e-10), 0);
    }
}
