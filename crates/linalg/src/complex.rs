//! A self-contained double-precision complex number.
//!
//! The allowed dependency set for this reproduction does not include
//! `num-complex`, so the frequency-domain layers (transfer-function
//! evaluation at `s = jω`, complex dense LU, eigenvalues of non-symmetric
//! ROM matrices) use this minimal but complete implementation.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` real and imaginary parts.
///
/// # Examples
///
/// ```
/// use bdsm_linalg::Complex64;
///
/// let s = Complex64::new(0.0, 2.0e9); // s = jω
/// let z = (s * s).sqrt();
/// assert!((z.abs() - 2.0e9).abs() < 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex64 {
    /// The additive identity `0 + 0i`.
    pub const ZERO: Complex64 = Complex64 { re: 0.0, im: 0.0 };
    /// The multiplicative identity `1 + 0i`.
    pub const ONE: Complex64 = Complex64 { re: 1.0, im: 0.0 };
    /// The imaginary unit `i`.
    pub const I: Complex64 = Complex64 { re: 0.0, im: 1.0 };

    /// Creates a complex number from real and imaginary parts.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Complex64 { re, im }
    }

    /// Creates a purely real complex number.
    #[inline]
    pub const fn from_real(re: f64) -> Self {
        Complex64 { re, im: 0.0 }
    }

    /// Creates `jω`, the standard Laplace evaluation point on the imaginary
    /// axis used for frequency sweeps.
    #[inline]
    pub const fn jomega(omega: f64) -> Self {
        Complex64 { re: 0.0, im: omega }
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Complex64::new(self.re, -self.im)
    }

    /// Magnitude `|z|`, computed with `hypot` for overflow safety.
    #[inline]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Squared magnitude `|z|²` (cheaper than [`abs`](Self::abs) when only
    /// comparisons are needed).
    #[inline]
    pub fn abs_sq(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Argument (phase angle) in radians, in `(-π, π]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Multiplicative inverse `1/z`, using Smith's algorithm to avoid
    /// intermediate overflow.
    pub fn recip(self) -> Self {
        let (a, b) = (self.re, self.im);
        if a.abs() >= b.abs() {
            let r = b / a;
            let d = a + b * r;
            Complex64::new(1.0 / d, -r / d)
        } else {
            let r = a / b;
            let d = a * r + b;
            Complex64::new(r / d, -1.0 / d)
        }
    }

    /// Principal square root.
    pub fn sqrt(self) -> Self {
        if self.re == 0.0 && self.im == 0.0 {
            return Complex64::ZERO;
        }
        let m = self.abs();
        let re = ((m + self.re) / 2.0).sqrt();
        let im_mag = ((m - self.re) / 2.0).sqrt();
        Complex64::new(re, if self.im >= 0.0 { im_mag } else { -im_mag })
    }

    /// Complex exponential `e^z`.
    pub fn exp(self) -> Self {
        let r = self.re.exp();
        Complex64::new(r * self.im.cos(), r * self.im.sin())
    }

    /// Returns `true` if both parts are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }

    /// Scales by a real factor.
    #[inline]
    pub fn scale(self, k: f64) -> Self {
        Complex64::new(self.re * k, self.im * k)
    }
}

impl From<f64> for Complex64 {
    #[inline]
    fn from(re: f64) -> Self {
        Complex64::from_real(re)
    }
}

impl fmt::Display for Complex64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

impl Neg for Complex64 {
    type Output = Complex64;
    #[inline]
    fn neg(self) -> Complex64 {
        Complex64::new(-self.re, -self.im)
    }
}

impl Add for Complex64 {
    type Output = Complex64;
    #[inline]
    fn add(self, rhs: Complex64) -> Complex64 {
        Complex64::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for Complex64 {
    type Output = Complex64;
    #[inline]
    fn sub(self, rhs: Complex64) -> Complex64 {
        Complex64::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: Complex64) -> Complex64 {
        Complex64::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Div for Complex64 {
    type Output = Complex64;
    #[inline]
    #[allow(clippy::suspicious_arithmetic_impl)] // z / w = z * w⁻¹ by definition
    fn div(self, rhs: Complex64) -> Complex64 {
        self * rhs.recip()
    }
}

impl Add<f64> for Complex64 {
    type Output = Complex64;
    #[inline]
    fn add(self, rhs: f64) -> Complex64 {
        Complex64::new(self.re + rhs, self.im)
    }
}

impl Sub<f64> for Complex64 {
    type Output = Complex64;
    #[inline]
    fn sub(self, rhs: f64) -> Complex64 {
        Complex64::new(self.re - rhs, self.im)
    }
}

impl Mul<f64> for Complex64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: f64) -> Complex64 {
        self.scale(rhs)
    }
}

impl Div<f64> for Complex64 {
    type Output = Complex64;
    #[inline]
    fn div(self, rhs: f64) -> Complex64 {
        Complex64::new(self.re / rhs, self.im / rhs)
    }
}

impl Mul<Complex64> for f64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: Complex64) -> Complex64 {
        rhs.scale(self)
    }
}

impl AddAssign for Complex64 {
    #[inline]
    fn add_assign(&mut self, rhs: Complex64) {
        *self = *self + rhs;
    }
}

impl SubAssign for Complex64 {
    #[inline]
    fn sub_assign(&mut self, rhs: Complex64) {
        *self = *self - rhs;
    }
}

impl MulAssign for Complex64 {
    #[inline]
    fn mul_assign(&mut self, rhs: Complex64) {
        *self = *self * rhs;
    }
}

impl DivAssign for Complex64 {
    #[inline]
    fn div_assign(&mut self, rhs: Complex64) {
        *self = *self / rhs;
    }
}

impl Sum for Complex64 {
    fn sum<I: Iterator<Item = Complex64>>(iter: I) -> Complex64 {
        iter.fold(Complex64::ZERO, |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: Complex64, b: Complex64, tol: f64) -> bool {
        (a - b).abs() <= tol
    }

    #[test]
    fn construction_and_constants() {
        assert_eq!(Complex64::new(1.0, 2.0).re, 1.0);
        assert_eq!(Complex64::I * Complex64::I, Complex64::from_real(-1.0));
        assert_eq!(Complex64::from(3.0), Complex64::new(3.0, 0.0));
        assert_eq!(Complex64::jomega(5.0), Complex64::new(0.0, 5.0));
    }

    #[test]
    fn field_axioms_spot_checks() {
        let a = Complex64::new(1.5, -2.0);
        let b = Complex64::new(-0.5, 3.0);
        let c = Complex64::new(4.0, 1.0);
        assert!(close(a * (b + c), a * b + a * c, 1e-12));
        assert!(close((a * b) * c, a * (b * c), 1e-12));
        assert!(close(a + (-a), Complex64::ZERO, 0.0));
    }

    #[test]
    fn division_and_recip() {
        let a = Complex64::new(3.0, 4.0);
        assert!(close(a * a.recip(), Complex64::ONE, 1e-15));
        let b = Complex64::new(-1.0, 7.0);
        assert!(close(a / b * b, a, 1e-12));
    }

    #[test]
    fn recip_avoids_overflow() {
        let a = Complex64::new(1e300, 1e300);
        let r = a.recip();
        assert!(r.is_finite());
        assert!(close(a * r, Complex64::ONE, 1e-12));
    }

    #[test]
    fn sqrt_roundtrips() {
        for &(re, im) in &[(4.0, 0.0), (0.0, 2.0), (-1.0, 0.0), (3.0, -4.0), (0.0, 0.0)] {
            let z = Complex64::new(re, im);
            let r = z.sqrt();
            assert!(close(r * r, z, 1e-12), "sqrt failed for {z}");
            assert!(r.re >= 0.0, "principal branch violated for {z}");
        }
    }

    #[test]
    fn exp_of_imaginary_is_on_unit_circle() {
        let z = Complex64::new(0.0, std::f64::consts::PI);
        assert!(close(z.exp(), Complex64::from_real(-1.0), 1e-15));
    }

    #[test]
    fn abs_and_arg() {
        let z = Complex64::new(1.0, 1.0);
        assert!((z.abs() - std::f64::consts::SQRT_2).abs() < 1e-15);
        assert!((z.arg() - std::f64::consts::FRAC_PI_4).abs() < 1e-15);
        assert_eq!(z.abs_sq(), 2.0);
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(Complex64::new(1.0, 2.0).to_string(), "1+2i");
        assert_eq!(Complex64::new(1.0, -2.0).to_string(), "1-2i");
    }

    #[test]
    fn sum_iterator() {
        let s: Complex64 = (0..4).map(|k| Complex64::new(k as f64, 1.0)).sum();
        assert_eq!(s, Complex64::new(6.0, 4.0));
    }

    #[test]
    fn real_scalar_ops() {
        let z = Complex64::new(2.0, -1.0);
        assert_eq!(z + 1.0, Complex64::new(3.0, -1.0));
        assert_eq!(z - 1.0, Complex64::new(1.0, -1.0));
        assert_eq!(z * 2.0, Complex64::new(4.0, -2.0));
        assert_eq!(z / 2.0, Complex64::new(1.0, -0.5));
        assert_eq!(2.0 * z, z * 2.0);
    }
}
