//! Dense vector kernels shared by the dense and sparse layers.
//!
//! These free functions operate on `&[f64]` slices so they compose with both
//! [`crate::dense::Matrix`] columns and ad-hoc work buffers without forcing a
//! particular container type.

/// Dot product `xᵀ y`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[inline]
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "dot: length mismatch");
    x.iter().zip(y).map(|(a, b)| a * b).sum()
}

/// Euclidean norm `‖x‖₂`, guarded against overflow by scaling.
pub fn norm2(x: &[f64]) -> f64 {
    let amax = x.iter().fold(0.0_f64, |m, v| m.max(v.abs()));
    if amax == 0.0 || !amax.is_finite() {
        return amax;
    }
    let mut sum = 0.0;
    for &v in x {
        let t = v / amax;
        sum += t * t;
    }
    amax * sum.sqrt()
}

/// Infinity norm `max |xᵢ|`.
pub fn norm_inf(x: &[f64]) -> f64 {
    x.iter().fold(0.0_f64, |m, v| m.max(v.abs()))
}

/// 1-norm `Σ|xᵢ|`.
pub fn norm1(x: &[f64]) -> f64 {
    x.iter().map(|v| v.abs()).sum()
}

/// `y ← y + alpha * x`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// `x ← alpha * x`.
#[inline]
pub fn scale(alpha: f64, x: &mut [f64]) {
    for v in x.iter_mut() {
        *v *= alpha;
    }
}

/// Normalizes `x` in place and returns its original 2-norm.
///
/// If the norm is below `tiny` the vector is left untouched and the norm is
/// still returned, letting callers implement deflation policies.
pub fn normalize(x: &mut [f64], tiny: f64) -> f64 {
    let n = norm2(x);
    if n > tiny {
        let inv = 1.0 / n;
        scale(inv, x);
    }
    n
}

/// Elementwise copy, `y ← x`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[inline]
pub fn copy(x: &[f64], y: &mut [f64]) {
    y.copy_from_slice(x);
}

/// Fills `x` with zeros.
#[inline]
pub fn zero(x: &mut [f64]) {
    for v in x.iter_mut() {
        *v = 0.0;
    }
}

/// Relative difference `‖x − y‖₂ / max(‖y‖₂, floor)`.
///
/// Used pervasively by tests and by the accuracy experiments (Fig. 5b of the
/// paper reports exactly this quantity per frequency point).
pub fn rel_err(x: &[f64], y: &[f64], floor: f64) -> f64 {
    assert_eq!(x.len(), y.len(), "rel_err: length mismatch");
    let mut diff = 0.0_f64;
    for (a, b) in x.iter().zip(y) {
        let d = a - b;
        diff += d * d;
    }
    diff.sqrt() / norm2(y).max(floor)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_basic() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_mismatch_panics() {
        dot(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn norm2_is_scaled_against_overflow() {
        let big = 1e200;
        let x = [big, big];
        let n = norm2(&x);
        assert!((n - big * std::f64::consts::SQRT_2).abs() / n < 1e-14);
    }

    #[test]
    fn norm2_zero_vector() {
        assert_eq!(norm2(&[0.0, 0.0]), 0.0);
        assert_eq!(norm2(&[]), 0.0);
    }

    #[test]
    fn norms_agree_on_simple_vector() {
        let x = [3.0, -4.0];
        assert_eq!(norm2(&x), 5.0);
        assert_eq!(norm_inf(&x), 4.0);
        assert_eq!(norm1(&x), 7.0);
    }

    #[test]
    fn axpy_accumulates() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[3.0, -1.0], &mut y);
        assert_eq!(y, vec![7.0, -1.0]);
    }

    #[test]
    fn normalize_returns_norm_and_unit_result() {
        let mut x = vec![3.0, 4.0];
        let n = normalize(&mut x, 1e-300);
        assert_eq!(n, 5.0);
        assert!((norm2(&x) - 1.0).abs() < 1e-15);
    }

    #[test]
    fn normalize_leaves_tiny_vectors() {
        let mut x = vec![1e-320, 0.0];
        let n = normalize(&mut x, 1e-200);
        assert!(n < 1e-200);
        assert_eq!(x[0], 1e-320);
    }

    #[test]
    fn rel_err_zero_for_identical() {
        let x = [1.0, 2.0];
        assert_eq!(rel_err(&x, &x, 1e-30), 0.0);
    }

    #[test]
    fn rel_err_uses_floor_for_zero_reference() {
        let e = rel_err(&[1.0], &[0.0], 1e-3);
        assert!((e - 1000.0).abs() < 1e-9);
    }
}
