//! Dense linear-algebra substrate for the BDSM reproduction.
//!
//! This crate carries all of the scalar-level math the reduction pipeline
//! needs: a row-major dense [`Matrix`], real LU/QR factorizations, Jacobi
//! SVD and symmetric eigendecomposition, Hessenberg reduction with shifted
//! complex solves, and a self-contained [`Complex64`] type (the dependency
//! set does not include `num-complex`).
//!
//! # Examples
//!
//! ```
//! use bdsm_linalg::{Complex64, DenseLu, Matrix};
//!
//! let a = Matrix::from_rows(&[&[4.0, 1.0], &[1.0, 3.0]]);
//! let x = DenseLu::factor(&a)?.solve(&[1.0, 2.0])?;
//! let r = a.matvec(&x)?;
//! assert!((r[0] - 1.0).abs() < 1e-14 && (r[1] - 2.0).abs() < 1e-14);
//!
//! let s = Complex64::jomega(2.0e3);
//! assert_eq!(s.conj(), Complex64::new(0.0, -2.0e3));
//! # Ok::<(), bdsm_linalg::LinalgError>(())
//! ```

// Numeric kernels here are written as explicit index loops over
// factor-in-place buffers; the iterator rewrites clippy suggests obscure the
// triangular access patterns.
#![allow(clippy::needless_range_loop)]

pub mod complex;
pub mod dense;
pub mod error;
pub mod vector;

pub use complex::Complex64;
pub use dense::{
    block_project, gemm_acc, gemm_sub, gemm_tn_acc, hessenberg, solve_shifted_hessenberg,
    sym_eig_extremes, sym_min_eig, trsv_unit_lower, DenseLu, DenseQr, GemmScalar, Hessenberg,
    KernelShape, Matrix, Svd, SymEig, KERNEL_SHAPE,
};
pub use error::{LinalgError, Result};
