//! Error types for the linear-algebra substrate.

use std::fmt;

/// Errors produced by dense and sparse linear-algebra routines.
///
/// All numerical kernels in this crate report failure through this type so
/// that higher layers (MOR, simulation) can attach circuit-level context.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum LinalgError {
    /// Operand shapes are incompatible (e.g. mat-mul inner dimensions).
    ShapeMismatch {
        /// Human-readable description of the operation that failed.
        op: &'static str,
        /// Shape of the left/first operand.
        lhs: (usize, usize),
        /// Shape of the right/second operand.
        rhs: (usize, usize),
    },
    /// A factorization encountered an (numerically) singular matrix.
    Singular {
        /// Pivot index at which singularity was detected.
        at: usize,
    },
    /// An iterative method failed to reach the requested tolerance.
    NotConverged {
        /// Name of the iterative method.
        method: &'static str,
        /// Number of iterations performed.
        iterations: usize,
        /// Residual norm (or off-diagonal norm) at the final iteration.
        residual: f64,
    },
    /// The matrix is not square but the operation requires it.
    NotSquare {
        /// Actual shape encountered.
        shape: (usize, usize),
    },
    /// Invalid argument (bad tolerance, zero dimension where forbidden, ...).
    InvalidArgument {
        /// Description of the offending argument.
        what: &'static str,
    },
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::ShapeMismatch { op, lhs, rhs } => write!(
                f,
                "shape mismatch in {op}: left is {}x{}, right is {}x{}",
                lhs.0, lhs.1, rhs.0, rhs.1
            ),
            LinalgError::Singular { at } => {
                write!(f, "matrix is singular (zero pivot at index {at})")
            }
            LinalgError::NotConverged {
                method,
                iterations,
                residual,
            } => write!(
                f,
                "{method} did not converge after {iterations} iterations (residual {residual:.3e})"
            ),
            LinalgError::NotSquare { shape } => {
                write!(f, "matrix is {}x{} but must be square", shape.0, shape.1)
            }
            LinalgError::InvalidArgument { what } => write!(f, "invalid argument: {what}"),
        }
    }
}

impl std::error::Error for LinalgError {}

/// Convenient result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, LinalgError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_shape_mismatch() {
        let e = LinalgError::ShapeMismatch {
            op: "matmul",
            lhs: (2, 3),
            rhs: (4, 5),
        };
        assert_eq!(
            e.to_string(),
            "shape mismatch in matmul: left is 2x3, right is 4x5"
        );
    }

    #[test]
    fn display_singular() {
        let e = LinalgError::Singular { at: 7 };
        assert!(e.to_string().contains("index 7"));
    }

    #[test]
    fn display_not_converged() {
        let e = LinalgError::NotConverged {
            method: "gmres",
            iterations: 100,
            residual: 1e-3,
        };
        let s = e.to_string();
        assert!(s.contains("gmres") && s.contains("100"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error + Send + Sync + 'static>() {}
        assert_err::<LinalgError>();
    }
}
