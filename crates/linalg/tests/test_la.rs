//! Integration tests for the linalg kernels the reduction engine leans on:
//! LU solves against known systems, QR orthogonality, SVD reconstruction,
//! and symmetric-eigen residuals.

use bdsm_linalg::{DenseLu, DenseQr, Matrix, Svd, SymEig};

/// Deterministic pseudo-random matrix with a diagonal boost that keeps the
/// condition number moderate.
fn pseudo_random(n: usize, m: usize, seed: u64, boost: f64) -> Matrix {
    let mut state = seed;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state as f64 / u64::MAX as f64) - 0.5
    };
    let mut a = Matrix::from_fn(n, m, |_, _| next());
    for i in 0..n.min(m) {
        a[(i, i)] += boost;
    }
    a
}

#[test]
fn lu_solves_hilbert_like_system_to_high_accuracy() {
    // Mildly ill-conditioned but known solution via residual check.
    let n = 24;
    let a = Matrix::from_fn(n, n, |i, j| {
        1.0 / ((i + j + 1) as f64) + if i == j { 1.0 } else { 0.0 }
    });
    let xref: Vec<f64> = (0..n).map(|i| ((i as f64) * 0.37).cos()).collect();
    let b = a.matvec(&xref).unwrap();
    let x = DenseLu::factor(&a).unwrap().solve(&b).unwrap();
    let rel = bdsm_linalg::vector::rel_err(&x, &xref, 1e-30);
    assert!(rel < 1e-12, "LU solve error {rel}");
}

#[test]
fn lu_determinant_of_block_triangular_product() {
    // det(AB) = det(A)·det(B).
    let a = pseudo_random(6, 6, 0x1234_5678_9abc_def0, 3.0);
    let b = pseudo_random(6, 6, 0x0fed_cba9_8765_4321, 3.0);
    let da = DenseLu::factor(&a).unwrap().det();
    let db = DenseLu::factor(&b).unwrap().det();
    let dab = DenseLu::factor(&a.matmul(&b).unwrap()).unwrap().det();
    assert!((dab - da * db).abs() < 1e-10 * dab.abs().max(1.0));
}

#[test]
fn qr_q_is_orthonormal_and_reconstructs() {
    let a = pseudo_random(30, 12, 0xdead_beef_cafe_f00d, 2.0);
    let qr = DenseQr::factor(&a).unwrap();
    let q = qr.thin_q();
    // QᵀQ = I.
    let qtq = q.transpose().matmul(&q).unwrap();
    let orth = qtq.sub(&Matrix::identity(12)).unwrap().norm_max();
    assert!(orth < 1e-13, "QᵀQ − I = {orth}");
    // QR = A.
    let back = q.matmul(&qr.r()).unwrap();
    let rec = back.sub(&a).unwrap().norm_fro() / a.norm_fro();
    assert!(rec < 1e-14, "QR reconstruction error {rec}");
}

#[test]
fn svd_reconstructs_and_orders_singular_values() {
    let a = pseudo_random(20, 9, 0x0123_4567_89ab_cdef, 0.0);
    let svd = Svd::compute(&a).unwrap();
    // Descending, non-negative singular values.
    for w in svd.sigma.windows(2) {
        assert!(w[0] >= w[1] && w[1] >= 0.0);
    }
    // A = U Σ Vᵀ.
    let sigma = Matrix::from_fn(svd.sigma.len(), svd.sigma.len(), |i, j| {
        if i == j {
            svd.sigma[i]
        } else {
            0.0
        }
    });
    let back = svd
        .u
        .matmul(&sigma)
        .unwrap()
        .matmul(&svd.v.transpose())
        .unwrap();
    let rec = back.sub(&a).unwrap().norm_fro() / a.norm_fro();
    assert!(rec < 1e-12, "SVD reconstruction error {rec}");
    // Both factors orthonormal.
    for m in [&svd.u, &svd.v] {
        let gram = m.transpose().matmul(m).unwrap();
        let err = gram.sub(&Matrix::identity(m.ncols())).unwrap().norm_max();
        assert!(err < 1e-12);
    }
}

#[test]
fn svd_rank_detects_constructed_rank_deficiency() {
    // Outer product of two vectors + tiny noise → numerical rank 1.
    let u: Vec<f64> = (0..15).map(|i| (i as f64 * 0.3).sin() + 1.5).collect();
    let v: Vec<f64> = (0..7).map(|j| (j as f64 * 0.7).cos() + 2.0).collect();
    let a = Matrix::from_fn(15, 7, |i, j| u[i] * v[j]);
    let svd = Svd::compute(&a).unwrap();
    assert_eq!(svd.rank(1e-10 * svd.sigma[0]), 1);
}

#[test]
fn sym_eig_residual_and_orthogonality() {
    let n = 16;
    let raw = pseudo_random(n, n, 0x5555_aaaa_5555_aaaa, 0.0);
    // Symmetrize: A = (R + Rᵀ)/2 + diag boost.
    let mut a = raw.add(&raw.transpose()).unwrap().scaled(0.5);
    for i in 0..n {
        a[(i, i)] += 2.0;
    }
    let eig = SymEig::compute(&a).unwrap();
    // Ascending eigenvalues.
    for w in eig.values.windows(2) {
        assert!(w[0] <= w[1]);
    }
    // ‖A q_i − λ_i q_i‖ small for every pair.
    for (i, &lambda) in eig.values.iter().enumerate() {
        let q = eig.vectors.col(i);
        let aq = a.matvec(&q).unwrap();
        let resid: Vec<f64> = aq.iter().zip(&q).map(|(av, qv)| av - lambda * qv).collect();
        let rn = bdsm_linalg::vector::norm2(&resid);
        assert!(
            rn < 1e-11 * lambda.abs().max(1.0),
            "eigpair {i} residual {rn}"
        );
    }
    // Qᵀ Q = I.
    let gram = eig.vectors.transpose().matmul(&eig.vectors).unwrap();
    assert!(gram.sub(&Matrix::identity(n)).unwrap().norm_max() < 1e-12);
}

#[test]
fn sym_eig_trace_and_determinant_invariants() {
    let a = {
        let raw = pseudo_random(8, 8, 0x9876_5432_10ab_cdef, 0.0);
        let mut s = raw.add(&raw.transpose()).unwrap().scaled(0.5);
        for i in 0..8 {
            s[(i, i)] += 4.0;
        }
        s
    };
    let eig = SymEig::compute(&a).unwrap();
    let trace: f64 = (0..8).map(|i| a[(i, i)]).sum();
    let eig_sum: f64 = eig.values.iter().sum();
    assert!((trace - eig_sum).abs() < 1e-11 * trace.abs());
    let det = DenseLu::factor(&a).unwrap().det();
    let eig_prod: f64 = eig.values.iter().product();
    assert!((det - eig_prod).abs() < 1e-9 * det.abs().max(1.0));
}
