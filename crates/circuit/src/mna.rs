//! Modified nodal analysis (MNA): network → descriptor form `(G, C, B, L)`.
//!
//! The assembled system is the standard passive descriptor model
//!
//! ```text
//!     C ẋ + G x = B u,      y = L x,
//! ```
//!
//! with state `x = [node voltages | inductor currents | v-source currents]`.
//! Element stamps follow the symmetric/skew convention that keeps `C`
//! symmetric positive semi-definite and `G = [[Gᵣ, E], [−Eᵀ, 0]]`, so a
//! congruence projection preserves passivity for RC/RLC grids:
//!
//! - resistor `g = 1/R` between `a, b`: `G[a,a] += g`, `G[b,b] += g`,
//!   `G[a,b] −= g`, `G[b,a] −= g`;
//! - capacitor: same pattern into `C`;
//! - inductor with current state `q`: branch row `L di/dt − (v_a − v_b) = 0`
//!   gives `C[q,q] = L`, `G[q,a] = −1`, `G[q,b] = +1`; KCL columns
//!   `G[a,q] = +1`, `G[b,q] = −1`;
//! - current source into `a`: `B[a, input] = 1`;
//! - voltage source with current state `q`: KCL columns `G[plus,q] = +1`,
//!   `G[minus,q] = −1`; branch row `−(v_plus − v_minus) = −u` gives
//!   `G[q,plus] = −1`, `G[q,minus] = +1`, `B[q, input] = −1`;
//! - probe at `a`: `L[output, a] = 1`.
//!
//! Ground terminals simply drop their stamps.

use crate::network::{ElementKind, Network, Result, GROUND};
use crate::sparse::CooMatrix;

/// Where a descriptor state comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StateKind {
    /// Voltage of the given bus.
    NodeVoltage(usize),
    /// Current through the inductor at the given element index.
    InductorCurrent(usize),
    /// Current through the given voltage source.
    VsourceCurrent(usize),
}

/// Descriptor-form model `(G, C, B, L)` produced by MNA assembly.
#[derive(Debug, Clone)]
pub struct Descriptor {
    /// Conductance/incidence matrix `G` (n × n).
    pub g: CooMatrix,
    /// Storage matrix `C` (n × n), symmetric PSD.
    pub c: CooMatrix,
    /// Input map `B` (n × m).
    pub b: CooMatrix,
    /// Output map `L` (p × n).
    pub l: CooMatrix,
    /// Origin of each state, indexed by state number.
    pub states: Vec<StateKind>,
}

impl Descriptor {
    /// State dimension `n`.
    pub fn dim(&self) -> usize {
        self.states.len()
    }

    /// Number of inputs `m`.
    pub fn num_inputs(&self) -> usize {
        self.b.ncols()
    }

    /// Number of outputs `p`.
    pub fn num_outputs(&self) -> usize {
        self.l.nrows()
    }
}

/// Assembles the MNA descriptor model of a network.
///
/// # Errors
///
/// Returns [`crate::CircuitError::EmptyNetwork`] if the network has no buses.
pub fn assemble(net: &Network) -> Result<Descriptor> {
    if net.num_buses() == 0 {
        return Err(crate::network::CircuitError::EmptyNetwork);
    }
    let nb = net.num_buses();
    let inductors: Vec<usize> = net
        .elements()
        .iter()
        .enumerate()
        .filter_map(|(i, e)| matches!(e.kind, ElementKind::Inductor(_)).then_some(i))
        .collect();
    let n = nb + inductors.len() + net.voltage_sources().len();
    let m = net.num_inputs();
    let p = net.num_outputs();

    let mut states: Vec<StateKind> = (0..nb).map(StateKind::NodeVoltage).collect();
    states.extend(inductors.iter().map(|&e| StateKind::InductorCurrent(e)));
    states.extend((0..net.voltage_sources().len()).map(StateKind::VsourceCurrent));

    let mut g = CooMatrix::new(n, n);
    let mut c = CooMatrix::new(n, n);
    let mut b = CooMatrix::new(n, m);
    let mut l = CooMatrix::new(p, n);

    // Conductance-pattern stamp: M[a,a] += v, M[b,b] += v, M[a,b] -= v, ...
    let stamp_pair = |mat: &mut CooMatrix, a: usize, bn: usize, v: f64| {
        if a != GROUND {
            mat.push(a, a, v);
        }
        if bn != GROUND {
            mat.push(bn, bn, v);
        }
        if a != GROUND && bn != GROUND {
            mat.push(a, bn, -v);
            mat.push(bn, a, -v);
        }
    };

    let mut next_branch_state = nb;
    for (ei, e) in net.elements().iter().enumerate() {
        match e.kind {
            ElementKind::Resistor(r) => stamp_pair(&mut g, e.a, e.b, 1.0 / r),
            ElementKind::Capacitor(cap) => stamp_pair(&mut c, e.a, e.b, cap),
            ElementKind::Inductor(ind) => {
                let q = next_branch_state;
                next_branch_state += 1;
                debug_assert_eq!(states[q], StateKind::InductorCurrent(ei));
                c.push(q, q, ind);
                if e.a != GROUND {
                    g.push(q, e.a, -1.0);
                    g.push(e.a, q, 1.0);
                }
                if e.b != GROUND {
                    g.push(q, e.b, 1.0);
                    g.push(e.b, q, -1.0);
                }
            }
        }
    }

    for (si, src) in net.current_sources().iter().enumerate() {
        b.push(src.node, si, 1.0);
    }
    let m_offset = net.current_sources().len();
    for (si, src) in net.voltage_sources().iter().enumerate() {
        let q = next_branch_state;
        next_branch_state += 1;
        debug_assert_eq!(states[q], StateKind::VsourceCurrent(si));
        if src.plus != GROUND {
            g.push(src.plus, q, 1.0);
            g.push(q, src.plus, -1.0);
        }
        if src.minus != GROUND {
            g.push(src.minus, q, -1.0);
            g.push(q, src.minus, 1.0);
        }
        b.push(q, m_offset + si, -1.0);
    }

    for (pi, probe) in net.probes().iter().enumerate() {
        l.push(pi, probe.node, 1.0);
    }

    Ok(Descriptor { g, c, b, l, states })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::Network;

    /// Two-node RC: port at node 0, R to node 1, C to ground, load R to ground.
    fn rc_pair() -> (Network, Descriptor) {
        let mut net = Network::new();
        let a = net.add_bus("a");
        let b = net.add_bus("b");
        net.add_resistor(a, b, 2.0).unwrap();
        net.add_capacitor(b, GROUND, 3.0).unwrap();
        net.add_resistor(b, GROUND, 4.0).unwrap();
        net.add_port(a).unwrap();
        let d = assemble(&net).unwrap();
        (net, d)
    }

    #[test]
    fn rc_stamps_match_hand_calculation() {
        let (_, d) = rc_pair();
        assert_eq!(d.dim(), 2);
        let g = d.g.to_dense();
        let c = d.c.to_dense();
        // G = [[1/2, -1/2], [-1/2, 1/2 + 1/4]]
        assert_eq!(g[(0, 0)], 0.5);
        assert_eq!(g[(0, 1)], -0.5);
        assert_eq!(g[(1, 0)], -0.5);
        assert!((g[(1, 1)] - 0.75).abs() < 1e-15);
        // C = diag(0, 3)
        assert_eq!(c[(0, 0)], 0.0);
        assert_eq!(c[(1, 1)], 3.0);
        let b = d.b.to_dense();
        let l = d.l.to_dense();
        assert_eq!(b[(0, 0)], 1.0);
        assert_eq!(l[(0, 0)], 1.0);
    }

    #[test]
    fn inductor_adds_state_with_skew_coupling() {
        let mut net = Network::new();
        let a = net.add_bus("a");
        let b = net.add_bus("b");
        net.add_inductor(a, b, 5.0).unwrap();
        net.add_capacitor(b, GROUND, 1.0).unwrap();
        net.add_port(a).unwrap();
        let d = assemble(&net).unwrap();
        assert_eq!(d.dim(), 3);
        assert_eq!(d.states[2], StateKind::InductorCurrent(0));
        let g = d.g.to_dense();
        let c = d.c.to_dense();
        assert_eq!(c[(2, 2)], 5.0);
        // KCL column and branch row are skew: G[a,q] = -G[q,a].
        assert_eq!(g[(0, 2)], 1.0);
        assert_eq!(g[(2, 0)], -1.0);
        assert_eq!(g[(1, 2)], -1.0);
        assert_eq!(g[(2, 1)], 1.0);
    }

    #[test]
    fn voltage_source_forces_node_voltage() {
        // V-source at node a, R to ground: solve G x = B u at DC.
        let mut net = Network::new();
        let a = net.add_bus("a");
        net.add_resistor(a, GROUND, 2.0).unwrap();
        net.add_voltage_source(a, GROUND).unwrap();
        net.add_probe(a).unwrap();
        let d = assemble(&net).unwrap();
        assert_eq!(d.dim(), 2);
        let g = d.g.to_dense();
        let b = d.b.to_dense();
        // States [v_a, i_V]: G = [[1/2, 1], [-1, 0]], B = [0, -1]ᵀ.
        // DC solve for u = 1: second row gives -v_a = -1 → v_a = 1. ✓
        let lu = bdsm_linalg::DenseLu::factor(&g).unwrap();
        let x = lu.solve(&b.col(0)).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-14);
        // Source current: v_a/R = 0.5 flows out of the source.
        assert!((x[1] + 0.5).abs() < 1e-14);
    }

    #[test]
    fn empty_network_rejected() {
        let net = Network::new();
        assert!(matches!(
            assemble(&net),
            Err(crate::network::CircuitError::EmptyNetwork)
        ));
    }

    #[test]
    fn c_matrix_is_symmetric_psd_for_rc() {
        let (_, d) = rc_pair();
        let c = d.c.to_dense();
        let ct = c.transpose();
        assert!(c.sub(&ct).unwrap().norm_max() == 0.0);
        let eig = bdsm_linalg::SymEig::compute(&c).unwrap();
        assert!(eig.min().unwrap() >= -1e-15);
    }
}
