//! Graph partitioning of a network into `k` connected blocks.
//!
//! The BDSM scheme projects each block with its own basis, so the partition
//! is the load-bearing structural decision: blocks must be connected (a
//! disconnected "block" wastes basis vectors on decoupled dynamics) and the
//! interface set — buses with at least one neighbour in a different block —
//! is what the paper's error analysis ties the coupling strength to.
//!
//! Two strategies are offered (see [`PartitionStrategy`]):
//!
//! * **BFS growth** (the default, and the oracle the rest of the test suite
//!   is anchored to): grow each block from a peripheral
//!   (minimum-unassigned-degree) bus until it reaches an adaptive target
//!   size, then start the next block. Blocks are connected by construction;
//!   on connected graphs with reasonable `k` the result is exactly `k`
//!   near-balanced blocks.
//! * **Nested dissection**: recursive bisection with boundary-minimising
//!   level cuts, sharpened by Fiduccia–Mattheyses-style refinement that
//!   optimises the *vertex* boundary (the metric the ROM dimension actually
//!   pays for) and is aware of already-paid separator vertices, followed by
//!   a global k-way polish. On meshes this produces markedly smaller
//!   separators than BFS growth — directly shrinking the exact-interface
//!   ROM dimension — at the cost of more work per partition.
//!
//! Both strategies are deterministic single-threaded procedures: the same
//! network and `k` always produce the identical partition, independent of
//! `BDSM_THREADS`. Disconnected networks are handled by partitioning each
//! connected component separately, with block counts allocated to
//! components proportionally to their size (every component gets at least
//! one block, so singleton buses become singleton blocks).

use crate::mna::{Descriptor, StateKind};
use crate::network::{CircuitError, Network, Result, GROUND};
use std::collections::VecDeque;

/// A partition of the network's buses into connected blocks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    /// `block_of_node[bus] = block index`.
    pub block_of_node: Vec<usize>,
    /// Bus indices per block, each sorted ascending.
    pub blocks: Vec<Vec<usize>>,
    /// Buses with at least one neighbour in a different block, sorted.
    pub interface: Vec<usize>,
}

impl Partition {
    /// Number of blocks.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Flat `u64` encoding `[num_buses, num_blocks, block_of_node…,
    /// interface_len, interface…]` — the serialization surface the ROM
    /// artifact layer persists so a loaded artifact still knows which bus
    /// sits in which block and which buses are boundary.
    pub fn pack(&self) -> Vec<u64> {
        let mut out = Vec::with_capacity(self.block_of_node.len() + self.interface.len() + 3);
        out.push(self.block_of_node.len() as u64);
        out.push(self.blocks.len() as u64);
        out.extend(self.block_of_node.iter().map(|&b| b as u64));
        out.push(self.interface.len() as u64);
        out.extend(self.interface.iter().map(|&b| b as u64));
        out
    }

    /// Inverse of [`pack`](Self::pack), revalidating the structure (block
    /// assignments in range, every block non-empty, interface sorted,
    /// unique, and in range).
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::InvalidPartition`] on any malformed or
    /// truncated encoding.
    pub fn unpack(words: &[u64]) -> Result<Partition> {
        let bad = |what| Err(CircuitError::InvalidPartition { what });
        let Some((&nb, rest)) = words.split_first() else {
            return bad("packed partition is empty");
        };
        let Some((&k, rest)) = rest.split_first() else {
            return bad("packed partition missing block count");
        };
        if nb > rest.len() as u64 {
            return bad("packed partition truncated in block assignments");
        }
        let (n, k) = (nb as usize, k as usize);
        if rest.len() < n + 1 {
            return bad("packed partition truncated in block assignments");
        }
        let (assign, rest) = rest.split_at(n);
        if k == 0 || n == 0 {
            return bad("packed partition has no buses or no blocks");
        }
        // Every block must end up non-empty, so k > n can never validate;
        // reject before allocating k block vectors (a crafted encoding
        // must not drive a huge allocation).
        if k > n {
            return bad("packed partition has more blocks than buses");
        }
        let mut blocks: Vec<Vec<usize>> = vec![Vec::new(); k];
        let mut block_of_node = Vec::with_capacity(n);
        for (bus, &b) in assign.iter().enumerate() {
            let b = b as usize;
            if b >= k {
                return bad("packed partition has out-of-range block index");
            }
            block_of_node.push(b);
            blocks[b].push(bus); // buses ascend, so each block stays sorted
        }
        if blocks.iter().any(Vec::is_empty) {
            return bad("packed partition has an empty block");
        }
        let (&ni, rest) = rest.split_first().expect("length checked above");
        if rest.len() != ni as usize {
            return bad("packed partition interface length mismatch");
        }
        let interface: Vec<usize> = rest.iter().map(|&b| b as usize).collect();
        let sorted_unique = interface.windows(2).all(|w| w[0] < w[1]);
        if !sorted_unique || interface.iter().any(|&b| b >= n) {
            return bad("packed partition interface not sorted/unique/in-range");
        }
        Ok(Partition {
            block_of_node,
            blocks,
            interface,
        })
    }
}

/// Strategy for splitting the bus graph into blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PartitionStrategy {
    /// BFS growth from peripheral seeds — the original scheme, kept as the
    /// default-compatible oracle. Fast and near-balanced, but frontiers on
    /// meshes are ragged, so separators are larger than necessary.
    #[default]
    Bfs,
    /// Recursive bisection: a pseudo-peripheral BFS level cut chosen to
    /// minimise the separator within a balance window, sharpened by
    /// Fiduccia–Mattheyses-style vertex-boundary refinement (with rollback
    /// to the best state seen) and a final k-way polish. Produces
    /// measurably smaller interface sets on meshes (≳25 % on a 100×100
    /// grid at `k = 8`).
    NestedDissection,
}

/// Splits the network into (at least) `k` connected blocks using the
/// default [`PartitionStrategy::Bfs`] strategy.
///
/// On a connected graph this produces exactly `k` blocks; if the network
/// graph is disconnected, every connected component receives at least one
/// block of its own (so the result can have up to
/// `max(k, #components)` blocks) and no block ever spans two components.
///
/// # Errors
///
/// Returns [`CircuitError::InvalidPartition`] if `k` is zero or exceeds the
/// number of buses, or [`CircuitError::EmptyNetwork`] on an empty network.
pub fn partition_network(net: &Network, k: usize) -> Result<Partition> {
    partition_network_with(net, k, PartitionStrategy::Bfs)
}

/// Splits the network into (at least) `k` connected blocks with an explicit
/// [`PartitionStrategy`].
///
/// Both strategies are deterministic and single-threaded; disconnected
/// networks are partitioned per connected component with block counts
/// allocated proportionally to component size (minimum one each).
///
/// # Errors
///
/// Returns [`CircuitError::InvalidPartition`] if `k` is zero or exceeds the
/// number of buses, or [`CircuitError::EmptyNetwork`] on an empty network.
pub fn partition_network_with(
    net: &Network,
    k: usize,
    strategy: PartitionStrategy,
) -> Result<Partition> {
    let n = net.num_buses();
    if n == 0 {
        return Err(CircuitError::EmptyNetwork);
    }
    if k == 0 {
        return Err(CircuitError::InvalidPartition {
            what: "number of blocks must be at least 1",
        });
    }
    if k > n {
        return Err(CircuitError::InvalidPartition {
            what: "more blocks than buses",
        });
    }

    let adj = net.adjacency();
    let comps = connected_components(&adj, n);
    let alloc = allocate_blocks(&comps, k.max(comps.len()));

    let mut block_of_node = vec![usize::MAX; n];
    let mut blocks: Vec<Vec<usize>> = Vec::new();
    for (comp, &kc) in comps.iter().zip(&alloc) {
        match strategy {
            PartitionStrategy::Bfs => {
                bfs_grow_component(&adj, comp, kc, &mut block_of_node, &mut blocks);
            }
            PartitionStrategy::NestedDissection => {
                let mut sets = Vec::with_capacity(kc);
                let mut paid = vec![false; n];
                nd_recurse(&adj, comp.clone(), kc, &mut paid, &mut sets);
                for mut members in sets {
                    let id = blocks.len();
                    for &u in &members {
                        block_of_node[u] = id;
                    }
                    members.sort_unstable();
                    blocks.push(members);
                }
            }
        }
    }

    if strategy == PartitionStrategy::NestedDissection {
        // Recursive bisection pays for every cut separately, but the final
        // interface is a *union*: a vertex adjacent to two cuts is counted
        // once. A k-way polish on the exact union objective lets cuts
        // migrate onto already-paid boundary (wedges sharing junctions),
        // which pairwise refinement cannot see.
        kway_refine(&adj, &mut block_of_node, blocks.len());
        for blk in &mut blocks {
            blk.clear();
        }
        for (u, &b) in block_of_node.iter().enumerate() {
            blocks[b].push(u); // ascending u keeps each block sorted
        }
    }

    Ok(finish_partition(&adj, block_of_node, blocks))
}

/// Computes the interface set and assembles the final [`Partition`].
fn finish_partition(
    adj: &[Vec<usize>],
    block_of_node: Vec<usize>,
    blocks: Vec<Vec<usize>>,
) -> Partition {
    let n = block_of_node.len();
    let mut interface: Vec<usize> = (0..n)
        .filter(|&u| adj[u].iter().any(|&v| block_of_node[v] != block_of_node[u]))
        .collect();
    interface.sort_unstable();
    Partition {
        block_of_node,
        blocks,
        interface,
    }
}

/// Connected components of the bus graph, each sorted ascending, ordered by
/// their smallest member.
fn connected_components(adj: &[Vec<usize>], n: usize) -> Vec<Vec<usize>> {
    let mut comp_of = vec![usize::MAX; n];
    let mut comps: Vec<Vec<usize>> = Vec::new();
    for s in 0..n {
        if comp_of[s] != usize::MAX {
            continue;
        }
        let id = comps.len();
        let mut members = vec![s];
        comp_of[s] = id;
        let mut queue = VecDeque::from([s]);
        while let Some(u) = queue.pop_front() {
            for &v in &adj[u] {
                if comp_of[v] == usize::MAX {
                    comp_of[v] = id;
                    members.push(v);
                    queue.push_back(v);
                }
            }
        }
        members.sort_unstable();
        comps.push(members);
    }
    comps
}

/// Distributes `k_total` blocks over components proportionally to size:
/// every component gets one block, then remaining blocks go greedily to the
/// component with the largest per-block load (ties → lowest component
/// index), never exceeding the component's bus count.
fn allocate_blocks(comps: &[Vec<usize>], k_total: usize) -> Vec<usize> {
    let mut alloc = vec![1usize; comps.len()];
    let mut remaining = k_total.saturating_sub(comps.len());
    while remaining > 0 {
        let best = (0..comps.len())
            .filter(|&c| alloc[c] < comps[c].len())
            .max_by(|&a, &b| {
                // Compare loads size/alloc by cross-multiplication (exact),
                // breaking ties toward the lower component index.
                let la = comps[a].len() * alloc[b];
                let lb = comps[b].len() * alloc[a];
                la.cmp(&lb).then(b.cmp(&a))
            });
        match best {
            Some(c) => alloc[c] += 1,
            None => break, // every component already at one block per bus
        }
        remaining -= 1;
    }
    alloc
}

/// BFS growth of `kc` blocks inside one connected component. On a network
/// with a single component this reproduces the original global algorithm
/// bit for bit.
fn bfs_grow_component(
    adj: &[Vec<usize>],
    comp: &[usize],
    kc: usize,
    block_of_node: &mut [usize],
    blocks: &mut Vec<Vec<usize>>,
) {
    let csize = comp.len();
    let mut assigned = 0usize;
    let mut local_blocks = 0usize;
    while assigned < csize {
        // Adaptive target keeps later blocks from starving when earlier BFS
        // growth stopped short (the unassigned region can fragment once
        // earlier blocks carve pieces out of the component).
        let remaining_blocks = kc.saturating_sub(local_blocks).max(1);
        let target = (csize - assigned).div_ceil(remaining_blocks);

        // Seed at a peripheral bus: the unassigned bus with the fewest
        // unassigned neighbours (ties → lowest index). Growing inward from
        // the periphery keeps chains and radial feeders contiguous instead
        // of flooding outward from a hub and stranding disconnected tails.
        let seed = comp
            .iter()
            .copied()
            .filter(|&u| block_of_node[u] == usize::MAX)
            .min_by_key(|&u| {
                let deg = adj[u]
                    .iter()
                    .filter(|&&v| block_of_node[v] == usize::MAX)
                    .count();
                (deg, u)
            })
            .expect("unassigned bus exists while assigned < component size");
        let block_id = blocks.len();
        let mut members = Vec::with_capacity(target);
        let mut queue = VecDeque::from([seed]);
        block_of_node[seed] = block_id;
        while let Some(u) = queue.pop_front() {
            members.push(u);
            if members.len() + queue.len() >= target {
                // Drain what's already claimed for this block, then stop.
                while let Some(v) = queue.pop_front() {
                    members.push(v);
                }
                break;
            }
            for &v in &adj[u] {
                if block_of_node[v] == usize::MAX {
                    block_of_node[v] = block_id;
                    queue.push_back(v);
                }
            }
        }
        assigned += members.len();
        members.sort_unstable();
        blocks.push(members);
        local_blocks += 1;
    }
}

/// Recursive bisection of `nodes` into `kp` blocks, appended to `out` in
/// recursion order (first half fully before second half).
///
/// `paid` marks vertices already known to end up on the partition
/// interface from earlier cuts. The final interface is a union, so a cut
/// that runs through paid vertices adds nothing for them — threading this
/// through the recursion steers sub-cuts to anchor on existing boundary
/// (wedges sharing junctions) instead of paying for fresh separator.
fn nd_recurse(
    adj: &[Vec<usize>],
    mut nodes: Vec<usize>,
    kp: usize,
    paid: &mut [bool],
    out: &mut Vec<Vec<usize>>,
) {
    nodes.sort_unstable();
    if kp <= 1 || nodes.len() <= 1 {
        out.push(nodes);
        return;
    }
    if kp >= nodes.len() {
        // One bus per block; can only happen on tiny inputs.
        for u in nodes {
            out.push(vec![u]);
        }
        return;
    }
    // A side handed down by an earlier cut may be disconnected (repair is
    // best-effort); split per component with proportional block counts.
    let comps = components_within(adj, &nodes);
    if comps.len() > 1 {
        let alloc = allocate_blocks(&comps, kp.max(comps.len()));
        for (comp, &kc) in comps.into_iter().zip(&alloc) {
            nd_recurse(adj, comp, kc, paid, out);
        }
        return;
    }

    let total = nodes.len();
    let (a, b) = bisect(adj, &nodes, paid);
    // The cut just made is permanent: both sides stay in different blocks,
    // so every vertex adjacent across it is now paid interface.
    let mut in_a = vec![false; adj.len()];
    for &u in &a {
        in_a[u] = true;
    }
    let mut in_set = vec![false; adj.len()];
    for &u in &a {
        in_set[u] = true;
    }
    for &u in &b {
        in_set[u] = true;
    }
    for &u in a.iter().chain(b.iter()) {
        if adj[u].iter().any(|&v| in_set[v] && in_a[v] != in_a[u]) {
            paid[u] = true;
        }
    }
    // Apportion blocks to the actual split (the cut settles wherever the
    // boundary is cheapest inside the balance window), so block sizes still
    // converge to ~n/k even when individual cuts are uneven.
    let k1 = ((kp * a.len() + total / 2) / total).clamp(1, kp - 1);
    let k2 = kp - k1;
    nd_recurse(adj, a, k1, paid, out);
    nd_recurse(adj, b, k2, paid, out);
}

/// Connected components of the subgraph induced by `nodes` (assumed
/// sorted), each sorted, ordered by smallest member.
fn components_within(adj: &[Vec<usize>], nodes: &[usize]) -> Vec<Vec<usize>> {
    let n = adj.len();
    let mut in_set = vec![false; n];
    for &u in nodes {
        in_set[u] = true;
    }
    let mut seen = vec![false; n];
    let mut comps: Vec<Vec<usize>> = Vec::new();
    for &s in nodes {
        if seen[s] {
            continue;
        }
        seen[s] = true;
        let mut members = vec![s];
        let mut queue = VecDeque::from([s]);
        while let Some(u) = queue.pop_front() {
            for &v in &adj[u] {
                if in_set[v] && !seen[v] {
                    seen[v] = true;
                    members.push(v);
                    queue.push_back(v);
                }
            }
        }
        members.sort_unstable();
        comps.push(members);
    }
    comps
}

/// Bisects the connected node set `nodes` into two non-empty sides with a
/// small vertex boundary, letting the split settle anywhere inside a
/// 35–65 % balance window (the caller apportions block counts to the
/// actual side sizes, so looser balance here does not skew final blocks).
///
/// Procedure: find a pseudo-peripheral start by repeated BFS, build the BFS
/// level structure, seed with the cheapest in-window level cut, then refine
/// with Fiduccia–Mattheyses-style passes on the vertex-boundary objective
/// itself (plateau and uphill moves permitted, each vertex moves once per
/// pass, the pass rolls back to the best state it saw) and repair side
/// connectivity best-effort.
fn bisect(adj: &[Vec<usize>], nodes: &[usize], paid: &[bool]) -> (Vec<usize>, Vec<usize>) {
    let n = adj.len();
    let mut in_set = vec![false; n];
    for &u in nodes {
        in_set[u] = true;
    }

    // Pseudo-peripheral start: min (in-set degree, index), then hop to the
    // farthest vertex of a BFS twice — on meshes this lands on a boundary
    // extreme, so level sets sweep across the short direction.
    let mut start = nodes
        .iter()
        .copied()
        .min_by_key(|&u| (adj[u].iter().filter(|&&v| in_set[v]).count(), u))
        .expect("bisect called with non-empty set");
    let mut level_of = vec![usize::MAX; n];
    for _ in 0..2 {
        let levels = bfs_levels(adj, &in_set, start, &mut level_of);
        let last = levels.last().expect("start level always exists");
        start = last[0]; // levels are built in ascending index order
    }
    let levels = bfs_levels(adj, &in_set, start, &mut level_of);

    // Candidate level cuts: side A = levels[..cut]. Cost = vertices on
    // either side of the cut with a neighbour across it, not counting
    // vertices already paid for by earlier cuts (exactly the *new*
    // contribution to the partition's interface set).
    let sizes: Vec<usize> = levels.iter().map(Vec::len).collect();
    let total: usize = sizes.iter().sum();
    debug_assert_eq!(total, nodes.len());
    let target_a = total / 2;
    let lo = (total * 2 / 10).max(1);
    let hi = (total * 8 / 10).min(total - 1);
    // In-window cuts compete on (cost, balance); if the window is empty
    // (one giant level straddles it), fall back to the best-balanced cut.
    let mut best_in: Option<(usize, usize, usize)> = None; // (cost, dist, cut)
    let mut best_out: Option<(usize, usize, usize)> = None; // (dist, cost, cut)
    let mut prefix = 0usize;
    for cut in 1..levels.len() {
        prefix += sizes[cut - 1];
        let size_a = prefix;
        // Every vertex of levels[cut] has a parent above, so all of it is
        // boundary; in levels[cut-1] only vertices with a child below are.
        let mut cost = levels[cut].iter().filter(|&&u| !paid[u]).count();
        cost += levels[cut - 1]
            .iter()
            .filter(|&&u| !paid[u] && adj[u].iter().any(|&v| in_set[v] && level_of[v] == cut))
            .count();
        let dist = size_a.abs_diff(target_a);
        if size_a >= lo && size_a <= hi {
            let cand = (cost, dist, cut);
            if best_in.is_none_or(|b| cand < b) {
                best_in = Some(cand);
            }
        } else {
            let cand = (dist, cost, cut);
            if best_out.is_none_or(|b| cand < b) {
                best_out = Some(cand);
            }
        }
    }
    let cut = best_in
        .or(best_out)
        .expect("a connected set of ≥2 nodes has ≥2 levels")
        .2;

    // side[u]: 0 = A (levels < cut), 1 = B. Only meaningful where in_set.
    let mut side = vec![0u8; n];
    let mut size_a = 0usize;
    for &u in nodes {
        if level_of[u] >= cut {
            side[u] = 1;
        } else {
            size_a += 1;
        }
    }

    fm_refine(adj, nodes, &in_set, paid, &mut side, &mut size_a, lo, hi);

    // Connectivity repair: refinement can pinch a side into fragments; keep
    // each side's largest fragment (ties → the one with the smallest bus)
    // and push the rest across. Two rounds are enough in practice; blocks
    // stay connected on meshes, and `nd_recurse` tolerates stragglers.
    for _ in 0..2 {
        let mut changed = false;
        for s in 0..2u8 {
            let members: Vec<usize> = nodes.iter().copied().filter(|&u| side[u] == s).collect();
            if members.is_empty() {
                continue;
            }
            let frags = components_within_side(adj, &members, &in_set, &side, s);
            if frags.len() <= 1 {
                continue;
            }
            let keep = frags
                .iter()
                .enumerate()
                .max_by_key(|(i, f)| (f.len(), usize::MAX - f[0], usize::MAX - i))
                .map(|(i, _)| i)
                .expect("at least one fragment");
            for (i, frag) in frags.iter().enumerate() {
                if i == keep {
                    continue;
                }
                for &u in frag {
                    side[u] ^= 1;
                    size_a = if side[u] == 0 { size_a + 1 } else { size_a - 1 };
                }
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    let a: Vec<usize> = nodes.iter().copied().filter(|&u| side[u] == 0).collect();
    let b: Vec<usize> = nodes.iter().copied().filter(|&u| side[u] == 1).collect();
    if a.is_empty() || b.is_empty() {
        // Repair degenerated into one side (possible only on adversarial
        // graphs); fall back to the raw level cut, which is never empty.
        let a: Vec<usize> = nodes
            .iter()
            .copied()
            .filter(|&u| level_of[u] < cut)
            .collect();
        let b: Vec<usize> = nodes
            .iter()
            .copied()
            .filter(|&u| level_of[u] >= cut)
            .collect();
        return (a, b);
    }
    (a, b)
}

/// Is `w` on the boundary of its side (≥ 1 in-set neighbour across)?
fn on_boundary(adj: &[Vec<usize>], in_set: &[bool], side: &[u8], w: usize) -> bool {
    adj[w].iter().any(|&x| in_set[x] && side[x] != side[w])
}

/// Change in the unpaid vertex-boundary count if `u` switches sides.
/// Vertices already `paid` by earlier cuts are on the final interface
/// regardless, so the cut may run through them for free.
fn move_delta(
    adj: &[Vec<usize>],
    in_set: &[bool],
    paid: &[bool],
    side: &mut [u8],
    u: usize,
) -> i64 {
    let count = |adj: &[Vec<usize>], side: &[u8]| -> i64 {
        let mut c = (!paid[u] && on_boundary(adj, in_set, side, u)) as i64;
        for &v in &adj[u] {
            if in_set[v] && !paid[v] {
                c += on_boundary(adj, in_set, side, v) as i64;
            }
        }
        c
    };
    let before = count(adj, side);
    side[u] ^= 1;
    let after = count(adj, side);
    side[u] ^= 1;
    after - before
}

/// Fiduccia–Mattheyses-style refinement of a bisection, minimising the
/// vertex boundary (the partition-interface contribution) directly rather
/// than the edge cut — on 4-connected meshes diagonal and axis-aligned
/// cuts tie on vertex count, so edge-cut gains would chase the wrong
/// objective.
///
/// Each pass tentatively applies the best available move (smallest boundary
/// delta, ties → lowest bus index; plateau and uphill moves included, every
/// vertex at most once per pass, side sizes confined to `[lo, hi]`), then
/// rolls back to the best state seen. Passes repeat until one fails to
/// improve. Fully deterministic: strict total order on moves, no RNG.
#[allow(clippy::too_many_arguments)] // internal: the bisection state tuple
fn fm_refine(
    adj: &[Vec<usize>],
    nodes: &[usize],
    in_set: &[bool],
    paid: &[bool],
    side: &mut [u8],
    size_a: &mut usize,
    lo: usize,
    hi: usize,
) {
    let mut moved = vec![false; adj.len()];
    for _pass in 0..16 {
        for &u in nodes {
            moved[u] = false;
        }
        let boundary_now = nodes
            .iter()
            .filter(|&&u| on_boundary(adj, in_set, side, u))
            .count();
        // Enough steps to wander across plateaus, bounded so a pass stays
        // O(set · boundary) even on adversarial graphs.
        let step_cap = (8 * boundary_now + 64).min(nodes.len());
        let mut history: Vec<usize> = Vec::new();
        let (mut cur, mut best, mut best_len) = (0i64, 0i64, 0usize);
        for _step in 0..step_cap {
            let mut pick: Option<(i64, usize)> = None;
            for &u in nodes {
                if moved[u] || !on_boundary(adj, in_set, side, u) {
                    continue;
                }
                let new_size_a = if side[u] == 0 {
                    *size_a - 1
                } else {
                    *size_a + 1
                };
                if new_size_a < lo || new_size_a > hi {
                    continue;
                }
                let cand = (move_delta(adj, in_set, paid, side, u), u);
                if pick.is_none_or(|p| cand < p) {
                    pick = Some(cand);
                }
            }
            let Some((delta, u)) = pick else { break };
            side[u] ^= 1;
            *size_a = if side[u] == 0 {
                *size_a + 1
            } else {
                *size_a - 1
            };
            moved[u] = true;
            history.push(u);
            cur += delta;
            if cur < best {
                best = cur;
                best_len = history.len();
            }
        }
        for &u in history[best_len..].iter().rev() {
            side[u] ^= 1;
            *size_a = if side[u] == 0 {
                *size_a + 1
            } else {
                *size_a - 1
            };
        }
        if best == 0 {
            break;
        }
    }
}

/// Is `w` adjacent to any vertex outside its block (full-graph version)?
fn kway_bnd(adj: &[Vec<usize>], block_of_node: &[usize], w: usize) -> bool {
    adj[w].iter().any(|&x| block_of_node[x] != block_of_node[w])
}

/// Change in the total interface count if `u` moves to block `tgt`.
fn kway_delta(adj: &[Vec<usize>], block_of_node: &mut [usize], u: usize, tgt: usize) -> i64 {
    let count = |bon: &[usize]| -> i64 {
        let mut c = kway_bnd(adj, bon, u) as i64;
        for &v in &adj[u] {
            c += kway_bnd(adj, bon, v) as i64;
        }
        c
    };
    let before = count(block_of_node);
    let old = block_of_node[u];
    block_of_node[u] = tgt;
    let after = count(block_of_node);
    block_of_node[u] = old;
    after - before
}

/// K-way polish of a partition on the exact interface objective
/// (`#{v : v has a cross-block neighbour}`), FM-style: best-move steps with
/// plateau/uphill tolerance and rollback to the best state of each pass.
///
/// Block sizes are confined to `[max(1, s₀/2), 2·s₀]` of each block's
/// starting size, so no block can empty out and balance cannot drift far.
/// Moves only ever target a block adjacent to the vertex, so blocks never
/// jump across connected components. Deterministic: candidates are ranked
/// by `(delta, bus, target)` with no randomness.
fn kway_refine(adj: &[Vec<usize>], block_of_node: &mut [usize], k: usize) {
    let n = adj.len();
    if k < 2 {
        return;
    }
    let mut sizes = vec![0usize; k];
    for &b in block_of_node.iter() {
        sizes[b] += 1;
    }
    // Each block may shed up to two thirds of what it arrived with —
    // imbalance is a legitimate separator-shrinking lever for block-Krylov
    // reduction — but never below a quarter of the ideal size, so no block
    // is hollowed out into a sliver.
    let ideal = n.div_ceil(k);
    let floor = (ideal / 4).max(1);
    let lo: Vec<usize> = sizes.iter().map(|&s| (s / 3).max(floor)).collect();
    let hi: Vec<usize> = sizes.iter().map(|&s| (s * 3).min(n)).collect();

    let mut bnd: std::collections::BTreeSet<usize> = (0..n)
        .filter(|&u| kway_bnd(adj, block_of_node, u))
        .collect();
    let mut moved = vec![false; n];
    let mut touched: Vec<usize> = Vec::new();

    for _pass in 0..16 {
        for f in moved.iter_mut() {
            *f = false;
        }
        let step_cap = (8 * bnd.len() + 64).min(n);
        let mut history: Vec<(usize, usize)> = Vec::new(); // (bus, old block)
        let (mut cur, mut best, mut best_len) = (0i64, 0i64, 0usize);
        for _step in 0..step_cap {
            let mut pick: Option<(i64, usize, usize)> = None; // (delta, u, tgt)
            for &u in &bnd {
                if moved[u] {
                    continue;
                }
                let from = block_of_node[u];
                if sizes[from] <= lo[from] {
                    continue;
                }
                for (i, &x) in adj[u].iter().enumerate() {
                    let t = block_of_node[x];
                    if t == from || sizes[t] >= hi[t] {
                        continue;
                    }
                    if adj[u][..i].iter().any(|&y| block_of_node[y] == t) {
                        continue; // target already evaluated for this u
                    }
                    let cand = (kway_delta(adj, block_of_node, u, t), u, t);
                    if pick.is_none_or(|p| cand < p) {
                        pick = Some(cand);
                    }
                }
            }
            let Some((delta, u, tgt)) = pick else { break };
            let from = block_of_node[u];
            block_of_node[u] = tgt;
            sizes[from] -= 1;
            sizes[tgt] += 1;
            moved[u] = true;
            history.push((u, from));
            touched.clear();
            touched.push(u);
            touched.extend_from_slice(&adj[u]);
            for &w in &touched {
                if kway_bnd(adj, block_of_node, w) {
                    bnd.insert(w);
                } else {
                    bnd.remove(&w);
                }
            }
            cur += delta;
            if cur < best {
                best = cur;
                best_len = history.len();
            }
        }
        for &(u, from) in history[best_len..].iter().rev() {
            let t = block_of_node[u];
            block_of_node[u] = from;
            sizes[t] -= 1;
            sizes[from] += 1;
            touched.clear();
            touched.push(u);
            touched.extend_from_slice(&adj[u]);
            for &w in &touched {
                if kway_bnd(adj, block_of_node, w) {
                    bnd.insert(w);
                } else {
                    bnd.remove(&w);
                }
            }
        }
        if best == 0 {
            break;
        }
    }
}

/// BFS level structure of the in-set subgraph from `start`; fills
/// `level_of` (scratch, reset for the set) and returns per-level member
/// lists in ascending index order.
fn bfs_levels(
    adj: &[Vec<usize>],
    in_set: &[bool],
    start: usize,
    level_of: &mut [usize],
) -> Vec<Vec<usize>> {
    for (u, flag) in in_set.iter().enumerate() {
        if *flag {
            level_of[u] = usize::MAX;
        }
    }
    level_of[start] = 0;
    let mut frontier = vec![start];
    let mut levels = Vec::new();
    let mut depth = 0usize;
    while !frontier.is_empty() {
        levels.push(frontier.clone());
        depth += 1;
        let mut next = Vec::new();
        for &u in &frontier {
            for &v in &adj[u] {
                if in_set[v] && level_of[v] == usize::MAX {
                    level_of[v] = depth;
                    next.push(v);
                }
            }
        }
        next.sort_unstable();
        next.dedup();
        frontier = next;
    }
    levels
}

/// Connected fragments of one side of a bisection, ordered by smallest
/// member; `members` is the side's node list (ascending).
fn components_within_side(
    adj: &[Vec<usize>],
    members: &[usize],
    in_set: &[bool],
    side: &[u8],
    s: u8,
) -> Vec<Vec<usize>> {
    let mut seen = vec![false; adj.len()];
    let mut frags: Vec<Vec<usize>> = Vec::new();
    for &m in members {
        if seen[m] {
            continue;
        }
        seen[m] = true;
        let mut frag = vec![m];
        let mut queue = VecDeque::from([m]);
        while let Some(u) = queue.pop_front() {
            for &v in &adj[u] {
                if in_set[v] && side[v] == s && !seen[v] {
                    seen[v] = true;
                    frag.push(v);
                    queue.push_back(v);
                }
            }
        }
        frag.sort_unstable();
        frags.push(frag);
    }
    frags
}

/// Groups descriptor states by partition block.
///
/// Node-voltage states follow their bus's block; inductor and voltage-source
/// current states follow the block of their first non-ground terminal.
///
/// Returns `(new_of_old, block_sizes)`: `new_of_old[old_state] = new_state`
/// is the symmetric permutation that makes the descriptor block-contiguous,
/// and `block_sizes[i]` is the number of states in block `i` after grouping.
pub fn grouped_state_order(
    net: &Network,
    desc: &Descriptor,
    part: &Partition,
) -> (Vec<usize>, Vec<usize>) {
    let block_of_state = |s: &StateKind| -> usize {
        match *s {
            StateKind::NodeVoltage(bus) => part.block_of_node[bus],
            StateKind::InductorCurrent(ei) => {
                let e = &net.elements()[ei];
                let anchor = if e.a != GROUND { e.a } else { e.b };
                part.block_of_node[anchor]
            }
            StateKind::VsourceCurrent(si) => {
                let v = &net.voltage_sources()[si];
                let anchor = if v.plus != GROUND { v.plus } else { v.minus };
                part.block_of_node[anchor]
            }
        }
    };

    let k = part.num_blocks();
    let mut new_of_old = vec![0usize; desc.dim()];
    let mut block_sizes = vec![0usize; k];
    let mut next = 0usize;
    for (blk, size) in block_sizes.iter_mut().enumerate() {
        for (old, s) in desc.states.iter().enumerate() {
            if block_of_state(s) == blk {
                new_of_old[old] = next;
                next += 1;
                *size += 1;
            }
        }
    }
    debug_assert_eq!(next, desc.dim());
    (new_of_old, block_sizes)
}

/// Interface **states** of the block-grouped descriptor: the node-voltage
/// states of interface buses (buses with a neighbour in another block),
/// expressed as indices into the *permuted* state order and sorted
/// ascending.
///
/// This is the index set the paper's exact boundary treatment preserves:
/// the projector can pin these rows to unit vectors so interface voltages
/// survive the reduction verbatim. Inductor and voltage-source current
/// states never qualify — the boundary quantities of the scheme are bus
/// voltages, and branch currents always follow their anchor bus's block.
pub fn interface_state_indices(
    desc: &Descriptor,
    part: &Partition,
    new_of_old: &[usize],
) -> Vec<usize> {
    let mut is_interface = vec![false; part.block_of_node.len()];
    for &bus in &part.interface {
        is_interface[bus] = true;
    }
    let mut states: Vec<usize> = desc
        .states
        .iter()
        .enumerate()
        .filter_map(|(old, s)| match *s {
            StateKind::NodeVoltage(bus) if is_interface[bus] => Some(new_of_old[old]),
            _ => None,
        })
        .collect();
    states.sort_unstable();
    states
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mna::assemble;
    use crate::network::Network;

    fn chain(n: usize) -> Network {
        let mut net = Network::new();
        let buses: Vec<usize> = (0..n).map(|i| net.add_bus(format!("b{i}"))).collect();
        for w in buses.windows(2) {
            net.add_resistor(w[0], w[1], 1.0).unwrap();
        }
        for &b in &buses {
            net.add_capacitor(b, GROUND, 1.0).unwrap();
        }
        net
    }

    fn grid(rows: usize, cols: usize) -> Network {
        let mut net = Network::new();
        let mut id = vec![vec![0usize; cols]; rows];
        for (r, row) in id.iter_mut().enumerate() {
            for (c, cell) in row.iter_mut().enumerate() {
                *cell = net.add_bus(format!("n{r}_{c}"));
            }
        }
        for r in 0..rows {
            for c in 0..cols {
                if c + 1 < cols {
                    net.add_resistor(id[r][c], id[r][c + 1], 1.0).unwrap();
                }
                if r + 1 < rows {
                    net.add_resistor(id[r][c], id[r + 1][c], 1.0).unwrap();
                }
                net.add_capacitor(id[r][c], GROUND, 1.0).unwrap();
            }
        }
        net
    }

    #[test]
    fn chain_splits_into_contiguous_blocks() {
        let net = chain(12);
        let p = partition_network(&net, 3).unwrap();
        assert_eq!(p.num_blocks(), 3);
        assert_eq!(p.blocks[0], (0..4).collect::<Vec<_>>());
        assert_eq!(p.blocks[1], (4..8).collect::<Vec<_>>());
        assert_eq!(p.blocks[2], (8..12).collect::<Vec<_>>());
        // Interface = the four buses adjacent to a cut.
        assert_eq!(p.interface, vec![3, 4, 7, 8]);
    }

    #[test]
    fn every_block_is_connected() {
        let net = chain(20);
        let p = partition_network(&net, 4).unwrap();
        let adj = net.adjacency();
        for blk in &p.blocks {
            // BFS restricted to the block must reach every member.
            let inside: std::collections::HashSet<_> = blk.iter().copied().collect();
            let mut seen = std::collections::HashSet::from([blk[0]]);
            let mut q = VecDeque::from([blk[0]]);
            while let Some(u) = q.pop_front() {
                for &v in &adj[u] {
                    if inside.contains(&v) && seen.insert(v) {
                        q.push_back(v);
                    }
                }
            }
            assert_eq!(seen.len(), blk.len(), "block {blk:?} is disconnected");
        }
    }

    #[test]
    fn disconnected_components_get_own_blocks() {
        let mut net = chain(6);
        // An isolated island of two buses.
        let x = net.add_bus("x");
        let y = net.add_bus("y");
        net.add_resistor(x, y, 1.0).unwrap();
        let p = partition_network(&net, 2).unwrap();
        assert!(p.num_blocks() >= 2);
        let covered: usize = p.blocks.iter().map(Vec::len).sum();
        assert_eq!(covered, net.num_buses());
        // The island must not share a block with the chain.
        assert_eq!(p.block_of_node[x], p.block_of_node[y]);
        assert_ne!(p.block_of_node[x], p.block_of_node[0]);
    }

    #[test]
    fn singleton_buses_become_singleton_blocks() {
        // Three isolated buses plus a chain; every strategy must give each
        // island its own block, never a panic or a block spanning islands.
        for strategy in [PartitionStrategy::Bfs, PartitionStrategy::NestedDissection] {
            let mut net = chain(5);
            let s1 = net.add_bus("s1");
            let s2 = net.add_bus("s2");
            let s3 = net.add_bus("s3");
            let p = partition_network_with(&net, 2, strategy).unwrap();
            let covered: usize = p.blocks.iter().map(Vec::len).sum();
            assert_eq!(covered, net.num_buses());
            for &s in &[s1, s2, s3] {
                assert_eq!(p.blocks[p.block_of_node[s]], vec![s], "{strategy:?}");
            }
            // Isolated buses touch nothing, so they are never interface.
            for &s in &[s1, s2, s3] {
                assert!(!p.interface.contains(&s), "{strategy:?}");
            }
        }
    }

    #[test]
    fn block_allocation_is_proportional() {
        // One 9-bus chain and one 3-bus chain, k = 4: the big component
        // should get 3 blocks, the small one 1.
        let mut net = chain(9);
        let a = net.add_bus("a");
        let b = net.add_bus("b");
        let c = net.add_bus("c");
        net.add_resistor(a, b, 1.0).unwrap();
        net.add_resistor(b, c, 1.0).unwrap();
        let p = partition_network(&net, 4).unwrap();
        assert_eq!(p.num_blocks(), 4);
        let big_blocks: std::collections::HashSet<_> = (0..9).map(|u| p.block_of_node[u]).collect();
        assert_eq!(big_blocks.len(), 3);
        assert_eq!(p.block_of_node[a], p.block_of_node[c]);
    }

    #[test]
    fn nested_dissection_invariants_on_grid() {
        let net = grid(12, 12);
        let p = partition_network_with(&net, 4, PartitionStrategy::NestedDissection).unwrap();
        assert_eq!(p.num_blocks(), 4);
        let covered: usize = p.blocks.iter().map(Vec::len).sum();
        assert_eq!(covered, net.num_buses());
        // Imbalance is a deliberate separator-shrinking lever (the bisection
        // balance window is 20–80 %), but no block may degenerate to a
        // sliver or swallow nearly the whole mesh.
        for blk in &p.blocks {
            assert!(
                blk.len() >= 6 && blk.len() <= 120,
                "block size {}",
                blk.len()
            );
        }
        // Interface set matches cross-block adjacency exactly.
        let adj = net.adjacency();
        let expect: Vec<usize> = (0..net.num_buses())
            .filter(|&u| {
                adj[u]
                    .iter()
                    .any(|&v| p.block_of_node[v] != p.block_of_node[u])
            })
            .collect();
        assert_eq!(p.interface, expect);
    }

    /// Fast smoke guard on a small mesh. The authoritative ≥ 25 % separator
    /// reduction is asserted at n = 10⁴ in `tests/partition_invariants.rs`
    /// and gated by the scaling benchmark; small meshes leave the FM
    /// refinement less room, so the bar here is looser.
    #[test]
    fn nested_dissection_beats_bfs_on_mesh_separators() {
        let net = grid(40, 40);
        let bfs = partition_network_with(&net, 8, PartitionStrategy::Bfs).unwrap();
        let nd = partition_network_with(&net, 8, PartitionStrategy::NestedDissection).unwrap();
        assert!(
            nd.interface.len() * 20 <= bfs.interface.len() * 17,
            "nd separator {} not ≤ 85% of bfs {}",
            nd.interface.len(),
            bfs.interface.len()
        );
    }

    #[test]
    fn strategies_are_deterministic() {
        let net = grid(15, 17);
        for strategy in [PartitionStrategy::Bfs, PartitionStrategy::NestedDissection] {
            let p1 = partition_network_with(&net, 6, strategy).unwrap();
            let p2 = partition_network_with(&net, 6, strategy).unwrap();
            assert_eq!(p1, p2, "{strategy:?}");
        }
    }

    #[test]
    fn invalid_k_rejected() {
        let net = chain(3);
        assert!(partition_network(&net, 0).is_err());
        assert!(partition_network(&net, 4).is_err());
        assert!(partition_network(&Network::new(), 1).is_err());
        let nd = PartitionStrategy::NestedDissection;
        assert!(partition_network_with(&net, 0, nd).is_err());
        assert!(partition_network_with(&net, 4, nd).is_err());
    }

    #[test]
    fn interface_states_are_voltage_states_of_interface_buses() {
        let mut net = chain(12);
        // An inductor whose current state anchors at an interface bus must
        // still be excluded: only node voltages are boundary quantities.
        net.add_inductor(3, 4, 1e-3).unwrap();
        net.add_port(0).unwrap();
        let d = assemble(&net).unwrap();
        let p = partition_network(&net, 3).unwrap();
        assert_eq!(p.interface, vec![3, 4, 7, 8]);
        let (new_of_old, sizes) = grouped_state_order(&net, &d, &p);
        let states = interface_state_indices(&d, &p, &new_of_old);
        assert_eq!(states.len(), 4);
        // Every returned index is the permuted position of one interface
        // bus's voltage state, and the list is sorted.
        for w in states.windows(2) {
            assert!(w[0] < w[1]);
        }
        for (old, s) in d.states.iter().enumerate() {
            if let StateKind::NodeVoltage(bus) = *s {
                let expect = p.interface.contains(&bus);
                assert_eq!(states.contains(&new_of_old[old]), expect, "bus {bus}");
            } else {
                assert!(!states.contains(&new_of_old[old]), "current state leaked");
            }
        }
        // All interface states fall inside valid block ranges.
        let n: usize = sizes.iter().sum();
        assert!(states.iter().all(|&s| s < n));
    }

    #[test]
    fn grouped_state_order_is_block_contiguous() {
        let mut net = chain(8);
        // Add an inductor anchored in the second half.
        net.add_inductor(6, 7, 1e-3).unwrap();
        net.add_port(0).unwrap();
        let d = assemble(&net).unwrap();
        let p = partition_network(&net, 2).unwrap();
        let (new_of_old, sizes) = grouped_state_order(&net, &d, &p);
        assert_eq!(sizes.iter().sum::<usize>(), d.dim());
        assert_eq!(sizes.len(), 2);
        // The inductor current state (last old state) anchors at bus 6 → block 1.
        assert_eq!(sizes, vec![4, 5]);
        // Permutation is a bijection.
        let mut seen = vec![false; d.dim()];
        for &v in &new_of_old {
            assert!(!seen[v]);
            seen[v] = true;
        }
        // States of block 0 come first.
        for &pos in &new_of_old[0..4] {
            assert!(pos < 4);
        }
    }

    #[test]
    fn pack_unpack_round_trips() {
        let mut net = Network::new();
        for i in 0..12 {
            net.add_bus(format!("b{i}"));
        }
        for i in 0..11 {
            net.add_resistor(i, i + 1, 1.0).unwrap();
        }
        net.add_port(0).unwrap();
        let p = partition_network(&net, 3).unwrap();
        let packed = p.pack();
        let back = Partition::unpack(&packed).unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn unpack_rejects_malformed_encodings() {
        let mut net = Network::new();
        for i in 0..8 {
            net.add_bus(format!("b{i}"));
        }
        for i in 0..7 {
            net.add_resistor(i, i + 1, 1.0).unwrap();
        }
        net.add_port(0).unwrap();
        let good = partition_network(&net, 2).unwrap().pack();
        // Empty, truncated, out-of-range block, unsorted interface.
        assert!(Partition::unpack(&[]).is_err());
        assert!(Partition::unpack(&good[..good.len() - 1]).is_err());
        let mut bad_block = good.clone();
        bad_block[2] = 99;
        assert!(Partition::unpack(&bad_block).is_err());
        let mut bad_iface = good.clone();
        let ni = good[2 + 8] as usize;
        if ni >= 1 {
            bad_iface[2 + 8 + 1] = 1000; // interface bus out of range
            assert!(Partition::unpack(&bad_iface).is_err());
        }
        // A crafted huge block count (or bus count) must be rejected
        // before any allocation sized by it.
        let mut huge_k = good.clone();
        huge_k[1] = 1 << 40;
        assert!(Partition::unpack(&huge_k).is_err());
        assert!(Partition::unpack(&[1 << 40, 2, 0]).is_err());
    }
}
