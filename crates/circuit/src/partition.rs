//! Graph partitioning of a network into `k` connected blocks.
//!
//! The BDSM scheme projects each block with its own basis, so the partition
//! is the load-bearing structural decision: blocks must be connected (a
//! disconnected "block" wastes basis vectors on decoupled dynamics) and the
//! interface set — buses with at least one neighbour in a different block —
//! is what the paper's error analysis ties the coupling strength to.
//!
//! The partitioner here is a deterministic BFS-growth heuristic: grow each
//! block from a peripheral (minimum-unassigned-degree) bus until it reaches
//! an adaptive target size, then start the next block. Blocks are connected
//! by construction; on connected graphs with reasonable `k` the result is
//! exactly `k` near-balanced blocks.

use crate::mna::{Descriptor, StateKind};
use crate::network::{CircuitError, Network, Result, GROUND};
use std::collections::VecDeque;

/// A partition of the network's buses into connected blocks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    /// `block_of_node[bus] = block index`.
    pub block_of_node: Vec<usize>,
    /// Bus indices per block, each sorted ascending.
    pub blocks: Vec<Vec<usize>>,
    /// Buses with at least one neighbour in a different block, sorted.
    pub interface: Vec<usize>,
}

impl Partition {
    /// Number of blocks.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Flat `u64` encoding `[num_buses, num_blocks, block_of_node…,
    /// interface_len, interface…]` — the serialization surface the ROM
    /// artifact layer persists so a loaded artifact still knows which bus
    /// sits in which block and which buses are boundary.
    pub fn pack(&self) -> Vec<u64> {
        let mut out = Vec::with_capacity(self.block_of_node.len() + self.interface.len() + 3);
        out.push(self.block_of_node.len() as u64);
        out.push(self.blocks.len() as u64);
        out.extend(self.block_of_node.iter().map(|&b| b as u64));
        out.push(self.interface.len() as u64);
        out.extend(self.interface.iter().map(|&b| b as u64));
        out
    }

    /// Inverse of [`pack`](Self::pack), revalidating the structure (block
    /// assignments in range, every block non-empty, interface sorted,
    /// unique, and in range).
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::InvalidPartition`] on any malformed or
    /// truncated encoding.
    pub fn unpack(words: &[u64]) -> Result<Partition> {
        let bad = |what| Err(CircuitError::InvalidPartition { what });
        let Some((&nb, rest)) = words.split_first() else {
            return bad("packed partition is empty");
        };
        let Some((&k, rest)) = rest.split_first() else {
            return bad("packed partition missing block count");
        };
        if nb > rest.len() as u64 {
            return bad("packed partition truncated in block assignments");
        }
        let (n, k) = (nb as usize, k as usize);
        if rest.len() < n + 1 {
            return bad("packed partition truncated in block assignments");
        }
        let (assign, rest) = rest.split_at(n);
        if k == 0 || n == 0 {
            return bad("packed partition has no buses or no blocks");
        }
        // Every block must end up non-empty, so k > n can never validate;
        // reject before allocating k block vectors (a crafted encoding
        // must not drive a huge allocation).
        if k > n {
            return bad("packed partition has more blocks than buses");
        }
        let mut blocks: Vec<Vec<usize>> = vec![Vec::new(); k];
        let mut block_of_node = Vec::with_capacity(n);
        for (bus, &b) in assign.iter().enumerate() {
            let b = b as usize;
            if b >= k {
                return bad("packed partition has out-of-range block index");
            }
            block_of_node.push(b);
            blocks[b].push(bus); // buses ascend, so each block stays sorted
        }
        if blocks.iter().any(Vec::is_empty) {
            return bad("packed partition has an empty block");
        }
        let (&ni, rest) = rest.split_first().expect("length checked above");
        if rest.len() != ni as usize {
            return bad("packed partition interface length mismatch");
        }
        let interface: Vec<usize> = rest.iter().map(|&b| b as usize).collect();
        let sorted_unique = interface.windows(2).all(|w| w[0] < w[1]);
        if !sorted_unique || interface.iter().any(|&b| b >= n) {
            return bad("packed partition interface not sorted/unique/in-range");
        }
        Ok(Partition {
            block_of_node,
            blocks,
            interface,
        })
    }
}

/// Splits the network into (at least) `k` connected blocks.
///
/// On a connected graph this produces exactly `k` blocks; if the network
/// graph is disconnected, each extra component can add a block.
///
/// # Errors
///
/// Returns [`CircuitError::InvalidPartition`] if `k` is zero or exceeds the
/// number of buses, or [`CircuitError::EmptyNetwork`] on an empty network.
pub fn partition_network(net: &Network, k: usize) -> Result<Partition> {
    let n = net.num_buses();
    if n == 0 {
        return Err(CircuitError::EmptyNetwork);
    }
    if k == 0 {
        return Err(CircuitError::InvalidPartition {
            what: "number of blocks must be at least 1",
        });
    }
    if k > n {
        return Err(CircuitError::InvalidPartition {
            what: "more blocks than buses",
        });
    }

    let adj = net.adjacency();
    let mut block_of_node = vec![usize::MAX; n];
    let mut blocks: Vec<Vec<usize>> = Vec::new();
    let mut assigned = 0usize;

    while assigned < n {
        // Adaptive target keeps later blocks from starving when earlier BFS
        // growth stopped short at a component boundary.
        let remaining_blocks = k.saturating_sub(blocks.len()).max(1);
        let target = (n - assigned).div_ceil(remaining_blocks);

        // Seed at a peripheral bus: the unassigned bus with the fewest
        // unassigned neighbours (ties → lowest index). Growing inward from
        // the periphery keeps chains and radial feeders contiguous instead
        // of flooding outward from a hub and stranding disconnected tails.
        let seed = (0..n)
            .filter(|&u| block_of_node[u] == usize::MAX)
            .min_by_key(|&u| {
                let deg = adj[u]
                    .iter()
                    .filter(|&&v| block_of_node[v] == usize::MAX)
                    .count();
                (deg, u)
            })
            .expect("unassigned bus exists while assigned < n");
        let block_id = blocks.len();
        let mut members = Vec::with_capacity(target);
        let mut queue = VecDeque::from([seed]);
        block_of_node[seed] = block_id;
        while let Some(u) = queue.pop_front() {
            members.push(u);
            if members.len() + queue.len() >= target {
                // Drain what's already claimed for this block, then stop.
                while let Some(v) = queue.pop_front() {
                    members.push(v);
                }
                break;
            }
            for &v in &adj[u] {
                if block_of_node[v] == usize::MAX {
                    block_of_node[v] = block_id;
                    queue.push_back(v);
                }
            }
        }
        assigned += members.len();
        members.sort_unstable();
        blocks.push(members);
    }

    let mut interface: Vec<usize> = (0..n)
        .filter(|&u| adj[u].iter().any(|&v| block_of_node[v] != block_of_node[u]))
        .collect();
    interface.sort_unstable();

    Ok(Partition {
        block_of_node,
        blocks,
        interface,
    })
}

/// Groups descriptor states by partition block.
///
/// Node-voltage states follow their bus's block; inductor and voltage-source
/// current states follow the block of their first non-ground terminal.
///
/// Returns `(new_of_old, block_sizes)`: `new_of_old[old_state] = new_state`
/// is the symmetric permutation that makes the descriptor block-contiguous,
/// and `block_sizes[i]` is the number of states in block `i` after grouping.
pub fn grouped_state_order(
    net: &Network,
    desc: &Descriptor,
    part: &Partition,
) -> (Vec<usize>, Vec<usize>) {
    let block_of_state = |s: &StateKind| -> usize {
        match *s {
            StateKind::NodeVoltage(bus) => part.block_of_node[bus],
            StateKind::InductorCurrent(ei) => {
                let e = &net.elements()[ei];
                let anchor = if e.a != GROUND { e.a } else { e.b };
                part.block_of_node[anchor]
            }
            StateKind::VsourceCurrent(si) => {
                let v = &net.voltage_sources()[si];
                let anchor = if v.plus != GROUND { v.plus } else { v.minus };
                part.block_of_node[anchor]
            }
        }
    };

    let k = part.num_blocks();
    let mut new_of_old = vec![0usize; desc.dim()];
    let mut block_sizes = vec![0usize; k];
    let mut next = 0usize;
    for (blk, size) in block_sizes.iter_mut().enumerate() {
        for (old, s) in desc.states.iter().enumerate() {
            if block_of_state(s) == blk {
                new_of_old[old] = next;
                next += 1;
                *size += 1;
            }
        }
    }
    debug_assert_eq!(next, desc.dim());
    (new_of_old, block_sizes)
}

/// Interface **states** of the block-grouped descriptor: the node-voltage
/// states of interface buses (buses with a neighbour in another block),
/// expressed as indices into the *permuted* state order and sorted
/// ascending.
///
/// This is the index set the paper's exact boundary treatment preserves:
/// the projector can pin these rows to unit vectors so interface voltages
/// survive the reduction verbatim. Inductor and voltage-source current
/// states never qualify — the boundary quantities of the scheme are bus
/// voltages, and branch currents always follow their anchor bus's block.
pub fn interface_state_indices(
    desc: &Descriptor,
    part: &Partition,
    new_of_old: &[usize],
) -> Vec<usize> {
    let mut is_interface = vec![false; part.block_of_node.len()];
    for &bus in &part.interface {
        is_interface[bus] = true;
    }
    let mut states: Vec<usize> = desc
        .states
        .iter()
        .enumerate()
        .filter_map(|(old, s)| match *s {
            StateKind::NodeVoltage(bus) if is_interface[bus] => Some(new_of_old[old]),
            _ => None,
        })
        .collect();
    states.sort_unstable();
    states
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mna::assemble;
    use crate::network::Network;

    fn chain(n: usize) -> Network {
        let mut net = Network::new();
        let buses: Vec<usize> = (0..n).map(|i| net.add_bus(format!("b{i}"))).collect();
        for w in buses.windows(2) {
            net.add_resistor(w[0], w[1], 1.0).unwrap();
        }
        for &b in &buses {
            net.add_capacitor(b, GROUND, 1.0).unwrap();
        }
        net
    }

    #[test]
    fn chain_splits_into_contiguous_blocks() {
        let net = chain(12);
        let p = partition_network(&net, 3).unwrap();
        assert_eq!(p.num_blocks(), 3);
        assert_eq!(p.blocks[0], (0..4).collect::<Vec<_>>());
        assert_eq!(p.blocks[1], (4..8).collect::<Vec<_>>());
        assert_eq!(p.blocks[2], (8..12).collect::<Vec<_>>());
        // Interface = the four buses adjacent to a cut.
        assert_eq!(p.interface, vec![3, 4, 7, 8]);
    }

    #[test]
    fn every_block_is_connected() {
        let net = chain(20);
        let p = partition_network(&net, 4).unwrap();
        let adj = net.adjacency();
        for blk in &p.blocks {
            // BFS restricted to the block must reach every member.
            let inside: std::collections::HashSet<_> = blk.iter().copied().collect();
            let mut seen = std::collections::HashSet::from([blk[0]]);
            let mut q = VecDeque::from([blk[0]]);
            while let Some(u) = q.pop_front() {
                for &v in &adj[u] {
                    if inside.contains(&v) && seen.insert(v) {
                        q.push_back(v);
                    }
                }
            }
            assert_eq!(seen.len(), blk.len(), "block {blk:?} is disconnected");
        }
    }

    #[test]
    fn disconnected_components_get_own_blocks() {
        let mut net = chain(6);
        // An isolated island of two buses.
        let x = net.add_bus("x");
        let y = net.add_bus("y");
        net.add_resistor(x, y, 1.0).unwrap();
        let p = partition_network(&net, 2).unwrap();
        assert!(p.num_blocks() >= 2);
        let covered: usize = p.blocks.iter().map(Vec::len).sum();
        assert_eq!(covered, net.num_buses());
        // The island must not share a block with the chain.
        assert_eq!(p.block_of_node[x], p.block_of_node[y]);
        assert_ne!(p.block_of_node[x], p.block_of_node[0]);
    }

    #[test]
    fn invalid_k_rejected() {
        let net = chain(3);
        assert!(partition_network(&net, 0).is_err());
        assert!(partition_network(&net, 4).is_err());
        assert!(partition_network(&Network::new(), 1).is_err());
    }

    #[test]
    fn interface_states_are_voltage_states_of_interface_buses() {
        let mut net = chain(12);
        // An inductor whose current state anchors at an interface bus must
        // still be excluded: only node voltages are boundary quantities.
        net.add_inductor(3, 4, 1e-3).unwrap();
        net.add_port(0).unwrap();
        let d = assemble(&net).unwrap();
        let p = partition_network(&net, 3).unwrap();
        assert_eq!(p.interface, vec![3, 4, 7, 8]);
        let (new_of_old, sizes) = grouped_state_order(&net, &d, &p);
        let states = interface_state_indices(&d, &p, &new_of_old);
        assert_eq!(states.len(), 4);
        // Every returned index is the permuted position of one interface
        // bus's voltage state, and the list is sorted.
        for w in states.windows(2) {
            assert!(w[0] < w[1]);
        }
        for (old, s) in d.states.iter().enumerate() {
            if let StateKind::NodeVoltage(bus) = *s {
                let expect = p.interface.contains(&bus);
                assert_eq!(states.contains(&new_of_old[old]), expect, "bus {bus}");
            } else {
                assert!(!states.contains(&new_of_old[old]), "current state leaked");
            }
        }
        // All interface states fall inside valid block ranges.
        let n: usize = sizes.iter().sum();
        assert!(states.iter().all(|&s| s < n));
    }

    #[test]
    fn grouped_state_order_is_block_contiguous() {
        let mut net = chain(8);
        // Add an inductor anchored in the second half.
        net.add_inductor(6, 7, 1e-3).unwrap();
        net.add_port(0).unwrap();
        let d = assemble(&net).unwrap();
        let p = partition_network(&net, 2).unwrap();
        let (new_of_old, sizes) = grouped_state_order(&net, &d, &p);
        assert_eq!(sizes.iter().sum::<usize>(), d.dim());
        assert_eq!(sizes.len(), 2);
        // The inductor current state (last old state) anchors at bus 6 → block 1.
        assert_eq!(sizes, vec![4, 5]);
        // Permutation is a bijection.
        let mut seen = vec![false; d.dim()];
        for &v in &new_of_old {
            assert!(!seen[v]);
            seen[v] = true;
        }
        // States of block 0 come first.
        for &pos in &new_of_old[0..4] {
            assert!(pos < 4);
        }
    }

    #[test]
    fn pack_unpack_round_trips() {
        let mut net = Network::new();
        for i in 0..12 {
            net.add_bus(format!("b{i}"));
        }
        for i in 0..11 {
            net.add_resistor(i, i + 1, 1.0).unwrap();
        }
        net.add_port(0).unwrap();
        let p = partition_network(&net, 3).unwrap();
        let packed = p.pack();
        let back = Partition::unpack(&packed).unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn unpack_rejects_malformed_encodings() {
        let mut net = Network::new();
        for i in 0..8 {
            net.add_bus(format!("b{i}"));
        }
        for i in 0..7 {
            net.add_resistor(i, i + 1, 1.0).unwrap();
        }
        net.add_port(0).unwrap();
        let good = partition_network(&net, 2).unwrap().pack();
        // Empty, truncated, out-of-range block, unsorted interface.
        assert!(Partition::unpack(&[]).is_err());
        assert!(Partition::unpack(&good[..good.len() - 1]).is_err());
        let mut bad_block = good.clone();
        bad_block[2] = 99;
        assert!(Partition::unpack(&bad_block).is_err());
        let mut bad_iface = good.clone();
        let ni = good[2 + 8] as usize;
        if ni >= 1 {
            bad_iface[2 + 8 + 1] = 1000; // interface bus out of range
            assert!(Partition::unpack(&bad_iface).is_err());
        }
        // A crafted huge block count (or bus count) must be rejected
        // before any allocation sized by it.
        let mut huge_k = good.clone();
        huge_k[1] = 1 << 40;
        assert!(Partition::unpack(&huge_k).is_err());
        assert!(Partition::unpack(&[1 << 40, 2, 0]).is_err());
    }
}
