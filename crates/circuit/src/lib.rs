//! Power-grid circuit layer of the BDSM reproduction.
//!
//! Three stages live here, feeding the reduction engine in `bdsm-core`:
//!
//! 1. [`Network`] — buses, R/L/C branches, current/voltage sources, ports;
//! 2. [`mna::assemble`] — MNA stamping into descriptor form `(G, C, B, L)`
//!    over a lightweight COO sparse representation;
//! 3. [`partition::partition_network`] — BFS growth of `k` connected blocks
//!    with the interface (boundary) bus set, the paper's block structure.
//!
//! # Examples
//!
//! ```
//! use bdsm_circuit::{mna, partition, Network, GROUND};
//!
//! let mut net = Network::new();
//! let buses: Vec<usize> = (0..6).map(|i| net.add_bus(format!("b{i}"))).collect();
//! for w in buses.windows(2) {
//!     net.add_resistor(w[0], w[1], 10.0)?;
//! }
//! for &b in &buses {
//!     net.add_capacitor(b, GROUND, 1e-6)?;
//! }
//! net.add_port(buses[0])?;
//!
//! let desc = mna::assemble(&net)?;
//! assert_eq!(desc.dim(), 6);
//! let part = partition::partition_network(&net, 2)?;
//! assert_eq!(part.num_blocks(), 2);
//! # Ok::<(), bdsm_circuit::CircuitError>(())
//! ```

pub mod mna;
pub mod network;
pub mod partition;
pub mod reduction;
pub mod sparse;

pub use mna::{Descriptor, StateKind};
pub use network::{CircuitError, Element, ElementKind, Network, Result, GROUND};
pub use partition::{
    grouped_state_order, interface_state_indices, partition_network, partition_network_with,
    Partition, PartitionStrategy,
};
pub use reduction::ReductionSet;
pub use sparse::CooMatrix;
