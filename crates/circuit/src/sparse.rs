//! Minimal coordinate-format (COO) sparse matrix.
//!
//! MNA stamping is naturally additive — each circuit element contributes a
//! handful of `(row, col, value)` triplets — so the assembly layer works in
//! COO and converts at the factorization boundary: [`CooMatrix::to_csc`]
//! feeds the sparse kernels of `bdsm_sparse` (the scalable path), while
//! [`CooMatrix::to_dense`] feeds the dense oracle kernels of `bdsm_linalg`.
//! Duplicate triplets are allowed and sum implicitly, exactly like the
//! classic SPICE stamp table.

use bdsm_linalg::Matrix;
use bdsm_sparse::CscMatrix;

/// A sparse matrix stored as unsorted, possibly-duplicated triplets.
#[derive(Debug, Clone, PartialEq)]
pub struct CooMatrix {
    nrows: usize,
    ncols: usize,
    triplets: Vec<(usize, usize, f64)>,
}

impl CooMatrix {
    /// Creates an empty `nrows × ncols` matrix.
    pub fn new(nrows: usize, ncols: usize) -> Self {
        CooMatrix {
            nrows,
            ncols,
            triplets: Vec::new(),
        }
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// `(nrows, ncols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.nrows, self.ncols)
    }

    /// Number of stored triplets (duplicates counted separately).
    #[inline]
    pub fn nnz(&self) -> usize {
        self.triplets.len()
    }

    /// Adds `value` at `(row, col)`; duplicates accumulate.
    ///
    /// Zero values are skipped so element loops can stamp unconditionally.
    ///
    /// # Panics
    ///
    /// Panics if the position is out of bounds.
    pub fn push(&mut self, row: usize, col: usize, value: f64) {
        assert!(
            row < self.nrows && col < self.ncols,
            "CooMatrix::push: ({row}, {col}) out of bounds for {}x{}",
            self.nrows,
            self.ncols
        );
        if value != 0.0 {
            self.triplets.push((row, col, value));
        }
    }

    /// Iterates over stored triplets.
    pub fn iter(&self) -> impl Iterator<Item = &(usize, usize, f64)> {
        self.triplets.iter()
    }

    /// Densifies into a `bdsm_linalg::Matrix`, summing duplicates.
    pub fn to_dense(&self) -> Matrix {
        let mut m = Matrix::zeros(self.nrows, self.ncols);
        for &(i, j, v) in &self.triplets {
            m[(i, j)] += v;
        }
        m
    }

    /// Converts to compressed sparse column form, summing duplicates —
    /// the entry point of the sparse factorization path.
    pub fn to_csc(&self) -> CscMatrix<f64> {
        CscMatrix::from_triplets(self.nrows, self.ncols, &self.triplets)
            .expect("COO triplets are bounds-checked at push time")
    }

    /// Sparse matrix–vector product `y = A x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != ncols`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.ncols, "CooMatrix::matvec: length mismatch");
        let mut y = vec![0.0; self.nrows];
        for &(i, j, v) in &self.triplets {
            y[i] += v * x[j];
        }
        y
    }

    /// Returns a copy with rows renumbered: new row index = `new_of_old[row]`.
    ///
    /// # Panics
    ///
    /// Panics if `new_of_old.len() != nrows`.
    pub fn permute_rows(&self, new_of_old: &[usize]) -> CooMatrix {
        assert_eq!(
            new_of_old.len(),
            self.nrows,
            "permute_rows: length mismatch"
        );
        let triplets = self
            .triplets
            .iter()
            .map(|&(i, j, v)| (new_of_old[i], j, v))
            .collect();
        CooMatrix {
            nrows: self.nrows,
            ncols: self.ncols,
            triplets,
        }
    }

    /// Returns a copy with columns renumbered: new col index = `new_of_old[col]`.
    ///
    /// # Panics
    ///
    /// Panics if `new_of_old.len() != ncols`.
    pub fn permute_cols(&self, new_of_old: &[usize]) -> CooMatrix {
        assert_eq!(
            new_of_old.len(),
            self.ncols,
            "permute_cols: length mismatch"
        );
        let triplets = self
            .triplets
            .iter()
            .map(|&(i, j, v)| (i, new_of_old[j], v))
            .collect();
        CooMatrix {
            nrows: self.nrows,
            ncols: self.ncols,
            triplets,
        }
    }

    /// Symmetric renumbering of a square matrix (rows and columns together),
    /// the operation that groups descriptor states by partition block.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn permute_symmetric(&self, new_of_old: &[usize]) -> CooMatrix {
        assert_eq!(self.nrows, self.ncols, "permute_symmetric: must be square");
        self.permute_rows(new_of_old).permute_cols(new_of_old)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_accumulates_duplicates() {
        let mut a = CooMatrix::new(2, 2);
        a.push(0, 0, 1.5);
        a.push(0, 0, 2.5);
        a.push(1, 0, -1.0);
        a.push(1, 1, 0.0); // dropped
        assert_eq!(a.nnz(), 3);
        let d = a.to_dense();
        assert_eq!(d[(0, 0)], 4.0);
        assert_eq!(d[(1, 0)], -1.0);
        assert_eq!(d[(1, 1)], 0.0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn push_rejects_out_of_bounds() {
        let mut a = CooMatrix::new(1, 1);
        a.push(1, 0, 1.0);
    }

    #[test]
    fn to_csc_sums_duplicates_like_to_dense() {
        let mut a = CooMatrix::new(3, 3);
        a.push(0, 0, 1.5);
        a.push(0, 0, 2.5);
        a.push(2, 1, -1.0);
        a.push(1, 2, 3.0);
        let csc = a.to_csc();
        assert_eq!(csc.nnz(), 3);
        let dense = a.to_dense();
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(csc.get(i, j), dense[(i, j)]);
            }
        }
    }

    #[test]
    fn matvec_matches_dense() {
        let mut a = CooMatrix::new(3, 2);
        a.push(0, 0, 2.0);
        a.push(1, 1, 3.0);
        a.push(2, 0, 1.0);
        a.push(2, 1, -1.0);
        let x = [1.0, 2.0];
        assert_eq!(a.matvec(&x), a.to_dense().matvec(&x).unwrap());
    }

    #[test]
    fn symmetric_permutation_reorders_diagonal() {
        let mut a = CooMatrix::new(3, 3);
        a.push(0, 0, 1.0);
        a.push(1, 1, 2.0);
        a.push(2, 2, 3.0);
        a.push(0, 2, 9.0);
        // Reverse the ordering.
        let p = a.permute_symmetric(&[2, 1, 0]).to_dense();
        assert_eq!(p[(2, 2)], 1.0);
        assert_eq!(p[(1, 1)], 2.0);
        assert_eq!(p[(0, 0)], 3.0);
        assert_eq!(p[(2, 0)], 9.0);
    }

    #[test]
    fn row_and_col_permutations_are_independent() {
        let mut b = CooMatrix::new(2, 3);
        b.push(0, 1, 5.0);
        let rb = b.permute_rows(&[1, 0]).to_dense();
        assert_eq!(rb[(1, 1)], 5.0);
        let cb = b.permute_cols(&[2, 0, 1]).to_dense();
        assert_eq!(cb[(0, 0)], 5.0);
    }
}
