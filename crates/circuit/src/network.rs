//! Power-grid network model: buses, R/L/C branches, sources, and ports.
//!
//! The model deliberately mirrors how the paper's benchmark circuits are
//! described: a set of buses (nodes), two-terminal R/L/C branches between
//! buses or to ground, independent current/voltage sources acting as model
//! inputs, and voltage probes acting as model outputs. A *port* in the MOR
//! sense is a current injection paired with a voltage probe at the same bus.

use std::fmt;

/// Sentinel node index denoting the ground (reference) node.
///
/// Ground is not a state: stamps touching it are dropped during assembly.
pub const GROUND: usize = usize::MAX;

/// Errors produced while building or processing a network.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CircuitError {
    /// A bus index is neither a valid bus nor [`GROUND`].
    InvalidNode {
        /// The offending index.
        node: usize,
        /// Number of buses in the network.
        num_buses: usize,
    },
    /// Both terminals of an element are grounded (the element is dangling).
    FloatingElement,
    /// Both terminals of an element are the same bus (a self-loop stamps to
    /// nothing and makes voltage-source rows structurally singular).
    SelfLoop {
        /// The bus both terminals touch.
        node: usize,
    },
    /// An element value that must be strictly positive is not.
    NonPositiveValue {
        /// Which element kind was being added.
        what: &'static str,
        /// The offending value.
        value: f64,
    },
    /// The network has no buses.
    EmptyNetwork,
    /// The operation needs at least one input and one output port.
    NoPorts,
    /// A partition request that cannot be satisfied.
    InvalidPartition {
        /// Human-readable description.
        what: &'static str,
    },
    /// A reduction-set request (kept/eliminated buses) that cannot be
    /// satisfied — empty keep set, nothing to eliminate, or an
    /// out-of-range bus index.
    InvalidReductionSet {
        /// Human-readable description.
        what: &'static str,
    },
}

impl fmt::Display for CircuitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CircuitError::InvalidNode { node, num_buses } => {
                write!(
                    f,
                    "invalid node index {node} (network has {num_buses} buses)"
                )
            }
            CircuitError::FloatingElement => {
                write!(f, "element has both terminals grounded")
            }
            CircuitError::SelfLoop { node } => {
                write!(f, "element connects bus {node} to itself")
            }
            CircuitError::NonPositiveValue { what, value } => {
                write!(f, "{what} value must be positive, got {value}")
            }
            CircuitError::EmptyNetwork => write!(f, "network has no buses"),
            CircuitError::NoPorts => {
                write!(
                    f,
                    "operation requires at least one input and one output port"
                )
            }
            CircuitError::InvalidPartition { what } => write!(f, "invalid partition: {what}"),
            CircuitError::InvalidReductionSet { what } => {
                write!(f, "invalid reduction set: {what}")
            }
        }
    }
}

impl std::error::Error for CircuitError {}

/// Result alias for circuit-level operations.
pub type Result<T> = std::result::Result<T, CircuitError>;

/// The physical kind (and value) of a two-terminal branch element.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ElementKind {
    /// Resistance in ohms.
    Resistor(f64),
    /// Capacitance in farads.
    Capacitor(f64),
    /// Inductance in henries.
    Inductor(f64),
}

/// A two-terminal branch between buses `a` and `b` (either may be [`GROUND`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Element {
    /// First terminal.
    pub a: usize,
    /// Second terminal.
    pub b: usize,
    /// Kind and value.
    pub kind: ElementKind,
}

/// An independent current source injecting the input `u` into a bus.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CurrentSource {
    /// Bus receiving the injected current.
    pub node: usize,
}

/// An independent voltage source forcing `v_plus − v_minus = u`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VoltageSource {
    /// Positive terminal (may be a bus only, not ground-checked here).
    pub plus: usize,
    /// Negative terminal (often [`GROUND`]).
    pub minus: usize,
}

/// A voltage probe: the model output is the voltage at `node`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Probe {
    /// Bus being observed.
    pub node: usize,
}

/// A power-grid network: buses + branches + sources + probes.
///
/// `PartialEq` compares the full structural content (bus names, elements,
/// sources, probes, all in insertion order) — the equality the netlist
/// round-trip guarantee in `bdsm-io` is stated against.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Network {
    bus_names: Vec<String>,
    elements: Vec<Element>,
    current_sources: Vec<CurrentSource>,
    voltage_sources: Vec<VoltageSource>,
    probes: Vec<Probe>,
}

impl Network {
    /// Creates an empty network.
    pub fn new() -> Self {
        Network::default()
    }

    /// Adds a bus and returns its index.
    pub fn add_bus(&mut self, name: impl Into<String>) -> usize {
        self.bus_names.push(name.into());
        self.bus_names.len() - 1
    }

    /// Number of buses (excluding ground).
    pub fn num_buses(&self) -> usize {
        self.bus_names.len()
    }

    /// Name of bus `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn bus_name(&self, i: usize) -> &str {
        &self.bus_names[i]
    }

    fn check_node(&self, node: usize) -> Result<()> {
        if node == GROUND || node < self.num_buses() {
            Ok(())
        } else {
            Err(CircuitError::InvalidNode {
                node,
                num_buses: self.num_buses(),
            })
        }
    }

    fn check_pair(&self, a: usize, b: usize) -> Result<()> {
        self.check_node(a)?;
        self.check_node(b)?;
        if a == GROUND && b == GROUND {
            return Err(CircuitError::FloatingElement);
        }
        if a == b {
            return Err(CircuitError::SelfLoop { node: a });
        }
        Ok(())
    }

    fn add_element(&mut self, a: usize, b: usize, kind: ElementKind) -> Result<usize> {
        self.check_pair(a, b)?;
        let (what, value) = match kind {
            ElementKind::Resistor(v) => ("resistor", v),
            ElementKind::Capacitor(v) => ("capacitor", v),
            ElementKind::Inductor(v) => ("inductor", v),
        };
        if !(value > 0.0 && value.is_finite()) {
            return Err(CircuitError::NonPositiveValue { what, value });
        }
        self.elements.push(Element { a, b, kind });
        Ok(self.elements.len() - 1)
    }

    /// Adds a resistor of `ohms` between `a` and `b`; returns the element index.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError`] on invalid nodes or a non-positive value.
    pub fn add_resistor(&mut self, a: usize, b: usize, ohms: f64) -> Result<usize> {
        self.add_element(a, b, ElementKind::Resistor(ohms))
    }

    /// Adds a capacitor of `farads` between `a` and `b`; returns the element index.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError`] on invalid nodes or a non-positive value.
    pub fn add_capacitor(&mut self, a: usize, b: usize, farads: f64) -> Result<usize> {
        self.add_element(a, b, ElementKind::Capacitor(farads))
    }

    /// Adds an inductor of `henries` between `a` and `b`; returns the element index.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError`] on invalid nodes or a non-positive value.
    pub fn add_inductor(&mut self, a: usize, b: usize, henries: f64) -> Result<usize> {
        self.add_element(a, b, ElementKind::Inductor(henries))
    }

    /// Adds a current-source input injecting into `node`; returns the input index.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::InvalidNode`] if `node` is invalid or ground.
    pub fn add_current_source(&mut self, node: usize) -> Result<usize> {
        self.check_node(node)?;
        if node == GROUND {
            return Err(CircuitError::InvalidNode {
                node,
                num_buses: self.num_buses(),
            });
        }
        self.current_sources.push(CurrentSource { node });
        Ok(self.current_sources.len() - 1)
    }

    /// Adds a voltage-source input between `plus` and `minus`; returns the
    /// index of this source among voltage sources.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError`] on invalid nodes or both terminals grounded.
    pub fn add_voltage_source(&mut self, plus: usize, minus: usize) -> Result<usize> {
        self.check_pair(plus, minus)?;
        self.voltage_sources.push(VoltageSource { plus, minus });
        Ok(self.voltage_sources.len() - 1)
    }

    /// Adds a voltage-probe output at `node`; returns the output index.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::InvalidNode`] if `node` is invalid or ground.
    pub fn add_probe(&mut self, node: usize) -> Result<usize> {
        self.check_node(node)?;
        if node == GROUND {
            return Err(CircuitError::InvalidNode {
                node,
                num_buses: self.num_buses(),
            });
        }
        self.probes.push(Probe { node });
        Ok(self.probes.len() - 1)
    }

    /// Adds a classic MOR port at `node`: a current injection input paired
    /// with a voltage probe output. Returns `(input_index, output_index)`.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::InvalidNode`] if `node` is invalid or ground.
    pub fn add_port(&mut self, node: usize) -> Result<(usize, usize)> {
        let input = self.add_current_source(node)?;
        let output = self.add_probe(node)?;
        Ok((input, output))
    }

    /// Branch elements in insertion order.
    pub fn elements(&self) -> &[Element] {
        &self.elements
    }

    /// Current sources in insertion order (first inputs of the model).
    pub fn current_sources(&self) -> &[CurrentSource] {
        &self.current_sources
    }

    /// Voltage sources in insertion order (inputs after current sources).
    pub fn voltage_sources(&self) -> &[VoltageSource] {
        &self.voltage_sources
    }

    /// Voltage probes in insertion order (the model outputs).
    pub fn probes(&self) -> &[Probe] {
        &self.probes
    }

    /// Number of model inputs (current sources + voltage sources).
    pub fn num_inputs(&self) -> usize {
        self.current_sources.len() + self.voltage_sources.len()
    }

    /// Number of model outputs (probes).
    pub fn num_outputs(&self) -> usize {
        self.probes.len()
    }

    /// Bus adjacency lists induced by branch elements and voltage sources
    /// (ground connections do not create edges).
    ///
    /// This is the graph the partitioner works on.
    pub fn adjacency(&self) -> Vec<Vec<usize>> {
        let mut adj = vec![Vec::new(); self.num_buses()];
        let connect = |a: usize, b: usize, adj: &mut Vec<Vec<usize>>| {
            if a != GROUND && b != GROUND {
                adj[a].push(b);
                adj[b].push(a);
            }
        };
        for e in &self.elements {
            connect(e.a, e.b, &mut adj);
        }
        for v in &self.voltage_sources {
            connect(v.plus, v.minus, &mut adj);
        }
        for list in &mut adj {
            list.sort_unstable();
            list.dedup();
        }
        adj
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_small_network() {
        let mut net = Network::new();
        let a = net.add_bus("a");
        let b = net.add_bus("b");
        net.add_resistor(a, b, 1.0).unwrap();
        net.add_capacitor(b, GROUND, 1e-6).unwrap();
        let (inp, out) = net.add_port(a).unwrap();
        assert_eq!((inp, out), (0, 0));
        assert_eq!(net.num_buses(), 2);
        assert_eq!(net.num_inputs(), 1);
        assert_eq!(net.num_outputs(), 1);
        assert_eq!(net.bus_name(0), "a");
    }

    #[test]
    fn rejects_bad_nodes_and_values() {
        let mut net = Network::new();
        let a = net.add_bus("a");
        assert!(matches!(
            net.add_resistor(a, 5, 1.0),
            Err(CircuitError::InvalidNode { node: 5, .. })
        ));
        assert!(matches!(
            net.add_resistor(GROUND, GROUND, 1.0),
            Err(CircuitError::FloatingElement)
        ));
        assert!(matches!(
            net.add_capacitor(a, GROUND, -1.0),
            Err(CircuitError::NonPositiveValue { .. })
        ));
        assert!(matches!(
            net.add_inductor(a, GROUND, 0.0),
            Err(CircuitError::NonPositiveValue { .. })
        ));
        assert!(net.add_current_source(GROUND).is_err());
        assert!(net.add_probe(GROUND).is_err());
        assert!(matches!(
            net.add_resistor(a, a, 1.0),
            Err(CircuitError::SelfLoop { node }) if node == a
        ));
        assert!(matches!(
            net.add_voltage_source(a, a),
            Err(CircuitError::SelfLoop { .. })
        ));
    }

    #[test]
    fn adjacency_ignores_ground_and_dedups() {
        let mut net = Network::new();
        let a = net.add_bus("a");
        let b = net.add_bus("b");
        let c = net.add_bus("c");
        net.add_resistor(a, b, 1.0).unwrap();
        net.add_capacitor(a, b, 1e-6).unwrap(); // duplicate edge
        net.add_resistor(b, c, 1.0).unwrap();
        net.add_capacitor(c, GROUND, 1e-6).unwrap();
        let adj = net.adjacency();
        assert_eq!(adj[0], vec![1]);
        assert_eq!(adj[1], vec![0, 2]);
        assert_eq!(adj[2], vec![1]);
    }

    #[test]
    fn error_display_is_informative() {
        let e = CircuitError::NonPositiveValue {
            what: "resistor",
            value: -2.0,
        };
        assert!(e.to_string().contains("resistor"));
        let e = CircuitError::InvalidNode {
            node: 9,
            num_buses: 3,
        };
        assert!(e.to_string().contains('9'));
    }
}
