//! User-designated reduction regions: keep these buses, eliminate the rest.
//!
//! Practical grid equivalencing starts from the opposite end of the
//! pipeline than a generic partitioner: the user knows which part of the
//! network they are studying (the *internal* system, in power-systems
//! vocabulary) and wants everything else (the *external* system) collapsed
//! into an equivalent. [`ReductionSet`] captures that designation and
//! derives the classic three-way bus classification from graph adjacency:
//!
//! * **external** — the eliminated buses, absorbed into the reduced model;
//! * **boundary** — kept buses with at least one external neighbour; these
//!   are where the equivalent attaches, and with
//!   `InterfacePolicy::Exact` their voltages are ROM coordinates verbatim;
//! * **internal** — kept buses with no external neighbour.
//!
//! [`ReductionSet::to_partition`] maps the designation onto the engine's
//! [`Partition`]: kept and eliminated regions become separate blocks (one
//! per connected component, so blocks stay connected), which puts every
//! boundary bus on the partition interface — exactly the set the engine's
//! exact-interface projection pins.

use crate::network::{CircuitError, Network, Result};
use crate::partition::Partition;
use std::collections::VecDeque;

/// A user-designated split of the buses into *kept* and *eliminated* sets,
/// with the derived boundary/internal classification.
///
/// Construct with [`keep_buses`](ReductionSet::keep_buses) or
/// [`eliminate_buses`](ReductionSet::eliminate_buses); both validate
/// against the network and classify immediately.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReductionSet {
    num_buses: usize,
    kept: Vec<usize>,
    eliminated: Vec<usize>,
    boundary: Vec<usize>,
    internal: Vec<usize>,
}

impl ReductionSet {
    /// Marks `kept` (deduplicated) as the buses to keep; every other bus is
    /// eliminated.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::InvalidReductionSet`] if the keep set is
    /// empty, covers every bus (nothing to eliminate), or contains an
    /// out-of-range index; [`CircuitError::EmptyNetwork`] on an empty
    /// network.
    pub fn keep_buses(net: &Network, kept: &[usize]) -> Result<Self> {
        let keep = Self::flags(net, kept, true)?;
        Self::from_keep_flags(net, keep)
    }

    /// Marks `eliminated` (deduplicated) as the buses to eliminate; every
    /// other bus is kept.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::InvalidReductionSet`] if the eliminate set
    /// is empty, covers every bus (nothing to keep), or contains an
    /// out-of-range index; [`CircuitError::EmptyNetwork`] on an empty
    /// network.
    pub fn eliminate_buses(net: &Network, eliminated: &[usize]) -> Result<Self> {
        let keep = Self::flags(net, eliminated, false)?;
        Self::from_keep_flags(net, keep)
    }

    fn flags(net: &Network, marked: &[usize], mark_means_keep: bool) -> Result<Vec<bool>> {
        let n = net.num_buses();
        if n == 0 {
            return Err(CircuitError::EmptyNetwork);
        }
        let mut keep = vec![!mark_means_keep; n];
        for &b in marked {
            if b >= n {
                return Err(CircuitError::InvalidReductionSet {
                    what: "bus index out of range",
                });
            }
            keep[b] = mark_means_keep;
        }
        Ok(keep)
    }

    fn from_keep_flags(net: &Network, keep: Vec<bool>) -> Result<Self> {
        let kept: Vec<usize> = (0..keep.len()).filter(|&b| keep[b]).collect();
        let eliminated: Vec<usize> = (0..keep.len()).filter(|&b| !keep[b]).collect();
        if kept.is_empty() {
            return Err(CircuitError::InvalidReductionSet {
                what: "keep set is empty",
            });
        }
        if eliminated.is_empty() {
            return Err(CircuitError::InvalidReductionSet {
                what: "keep set covers every bus — nothing to eliminate",
            });
        }
        let adj = net.adjacency();
        let (mut boundary, mut internal) = (Vec::new(), Vec::new());
        for &b in &kept {
            if adj[b].iter().any(|&v| !keep[v]) {
                boundary.push(b);
            } else {
                internal.push(b);
            }
        }
        Ok(ReductionSet {
            num_buses: keep.len(),
            kept,
            eliminated,
            boundary,
            internal,
        })
    }

    /// Kept buses, sorted ascending.
    pub fn kept(&self) -> &[usize] {
        &self.kept
    }

    /// Eliminated (external) buses, sorted ascending.
    pub fn eliminated(&self) -> &[usize] {
        &self.eliminated
    }

    /// Kept buses with at least one eliminated neighbour, sorted ascending.
    /// These land on the partition interface, so the engine's exact
    /// boundary treatment preserves their voltages verbatim.
    pub fn boundary(&self) -> &[usize] {
        &self.boundary
    }

    /// Kept buses with no eliminated neighbour, sorted ascending.
    pub fn internal(&self) -> &[usize] {
        &self.internal
    }

    /// Maps the designation onto a [`Partition`]: one block per connected
    /// component of the kept subgraph (in ascending discovery order),
    /// followed by one per component of the eliminated subgraph. Every
    /// boundary bus has an eliminated neighbour in another block, so
    /// `boundary ⊆ interface` by construction.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::InvalidReductionSet`] if `net` does not have
    /// the bus count this set was built against.
    pub fn to_partition(&self, net: &Network) -> Result<Partition> {
        if net.num_buses() != self.num_buses {
            return Err(CircuitError::InvalidReductionSet {
                what: "network bus count differs from the one the set was built for",
            });
        }
        let adj = net.adjacency();
        let mut keep = vec![false; self.num_buses];
        for &b in &self.kept {
            keep[b] = true;
        }
        let mut block_of_node = vec![usize::MAX; self.num_buses];
        let mut blocks: Vec<Vec<usize>> = Vec::new();
        for region in [&self.kept, &self.eliminated] {
            let inside = keep[region[0]];
            for &s in region.iter() {
                if block_of_node[s] != usize::MAX {
                    continue;
                }
                let id = blocks.len();
                block_of_node[s] = id;
                let mut members = vec![s];
                let mut queue = VecDeque::from([s]);
                while let Some(u) = queue.pop_front() {
                    for &v in &adj[u] {
                        if keep[v] == inside && block_of_node[v] == usize::MAX {
                            block_of_node[v] = id;
                            members.push(v);
                            queue.push_back(v);
                        }
                    }
                }
                members.sort_unstable();
                blocks.push(members);
            }
        }
        let mut interface: Vec<usize> = (0..self.num_buses)
            .filter(|&u| adj[u].iter().any(|&v| block_of_node[v] != block_of_node[u]))
            .collect();
        interface.sort_unstable();
        Ok(Partition {
            block_of_node,
            blocks,
            interface,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::GROUND;

    /// 3×4 resistor grid with grounded capacitors.
    fn grid() -> Network {
        let (rows, cols) = (3, 4);
        let mut net = Network::new();
        let mut id = vec![vec![0usize; cols]; rows];
        for (r, row) in id.iter_mut().enumerate() {
            for (c, cell) in row.iter_mut().enumerate() {
                *cell = net.add_bus(format!("n{r}_{c}"));
            }
        }
        for r in 0..rows {
            for c in 0..cols {
                if c + 1 < cols {
                    net.add_resistor(id[r][c], id[r][c + 1], 1.0).unwrap();
                }
                if r + 1 < rows {
                    net.add_resistor(id[r][c], id[r + 1][c], 1.0).unwrap();
                }
                net.add_capacitor(id[r][c], GROUND, 1.0).unwrap();
            }
        }
        net
    }

    #[test]
    fn classification_matches_adjacency() {
        // Keep the left two columns of the 3×4 grid (buses r*4, r*4+1).
        let net = grid();
        let kept: Vec<usize> = (0..3).flat_map(|r| [r * 4, r * 4 + 1]).collect();
        let rs = ReductionSet::keep_buses(&net, &kept).unwrap();
        let mut sorted = kept.clone();
        sorted.sort_unstable();
        assert_eq!(rs.kept(), sorted.as_slice());
        // Boundary = column 1 (adjacent to eliminated column 2).
        assert_eq!(rs.boundary(), &[1, 5, 9]);
        assert_eq!(rs.internal(), &[0, 4, 8]);
        assert_eq!(rs.eliminated(), &[2, 3, 6, 7, 10, 11]);
        // eliminate_buses with the complement gives the same set.
        let rs2 = ReductionSet::eliminate_buses(&net, rs.eliminated()).unwrap();
        assert_eq!(rs, rs2);
    }

    #[test]
    fn to_partition_puts_boundary_on_interface() {
        let net = grid();
        let kept: Vec<usize> = (0..3).flat_map(|r| [r * 4, r * 4 + 1]).collect();
        let rs = ReductionSet::keep_buses(&net, &kept).unwrap();
        let p = rs.to_partition(&net).unwrap();
        // Kept region connected, eliminated region connected → 2 blocks.
        assert_eq!(p.num_blocks(), 2);
        assert_eq!(p.blocks[0], rs.kept());
        assert_eq!(p.blocks[1], rs.eliminated());
        for &b in rs.boundary() {
            assert!(
                p.interface.contains(&b),
                "boundary bus {b} not on interface"
            );
        }
        // Internal kept buses never leak onto the interface.
        for &b in rs.internal() {
            assert!(!p.interface.contains(&b));
        }
    }

    #[test]
    fn disconnected_regions_become_separate_blocks() {
        // Keep the two outer columns: the kept subgraph has 2 components.
        let net = grid();
        let kept: Vec<usize> = (0..3).flat_map(|r| [r * 4, r * 4 + 3]).collect();
        let rs = ReductionSet::keep_buses(&net, &kept).unwrap();
        let p = rs.to_partition(&net).unwrap();
        assert_eq!(p.num_blocks(), 3); // left col, right col, middle
        assert_ne!(p.block_of_node[0], p.block_of_node[3]);
        // All kept buses touch the middle, so all are boundary/interface.
        assert_eq!(rs.boundary(), rs.kept());
        assert!(rs.internal().is_empty());
    }

    #[test]
    fn invalid_sets_rejected() {
        let net = grid();
        assert!(matches!(
            ReductionSet::keep_buses(&net, &[]),
            Err(CircuitError::InvalidReductionSet { .. })
        ));
        let all: Vec<usize> = (0..net.num_buses()).collect();
        assert!(matches!(
            ReductionSet::keep_buses(&net, &all),
            Err(CircuitError::InvalidReductionSet { .. })
        ));
        assert!(matches!(
            ReductionSet::keep_buses(&net, &[0, 99]),
            Err(CircuitError::InvalidReductionSet { .. })
        ));
        assert!(matches!(
            ReductionSet::eliminate_buses(&net, &all),
            Err(CircuitError::InvalidReductionSet { .. })
        ));
        assert!(ReductionSet::keep_buses(&Network::new(), &[0]).is_err());
        // Duplicates in the marked list are fine.
        assert!(ReductionSet::keep_buses(&net, &[0, 0, 1]).is_ok());
        // Mismatched network at partition time.
        let rs = ReductionSet::keep_buses(&net, &[0, 1]).unwrap();
        let other = {
            let mut m = Network::new();
            m.add_bus("a");
            m
        };
        assert!(rs.to_partition(&other).is_err());
    }
}
