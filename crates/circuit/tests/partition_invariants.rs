//! Structural invariants every `PartitionStrategy` must uphold, plus the
//! authoritative separator-quality bar for nested dissection: on the
//! n = 10⁴ mesh the paper's scaling experiments use, the boundary-aware
//! partitioner must produce interface sets ≥ 25 % smaller than the BFS
//! oracle. (The in-crate unit tests keep a fast smoke version of this on
//! a 40×40 mesh; this is the binding check, mirrored by the scaling
//! benchmark's `partition` record and its gate.)

use bdsm_circuit::{partition_network_with, Network, Partition, PartitionStrategy, GROUND};

fn grid(rows: usize, cols: usize) -> Network {
    let mut net = Network::new();
    let mut id = vec![vec![0usize; cols]; rows];
    for (r, row) in id.iter_mut().enumerate() {
        for (c, cell) in row.iter_mut().enumerate() {
            *cell = net.add_bus(format!("n{r}_{c}"));
        }
    }
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                net.add_resistor(id[r][c], id[r][c + 1], 1.0).unwrap();
            }
            if r + 1 < rows {
                net.add_resistor(id[r][c], id[r + 1][c], 1.0).unwrap();
            }
            net.add_capacitor(id[r][c], GROUND, 1.0).unwrap();
        }
    }
    net
}

/// Two disconnected meshes plus an isolated singleton bus — the shapes
/// that used to trip BFS seeding.
fn disconnected(rows: usize, cols: usize) -> Network {
    let mut net = grid(rows, cols);
    let offset = net.num_buses();
    let mut id = vec![vec![0usize; cols]; rows];
    for (r, row) in id.iter_mut().enumerate() {
        for (c, cell) in row.iter_mut().enumerate() {
            *cell = net.add_bus(format!("m{r}_{c}"));
        }
    }
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                net.add_resistor(id[r][c], id[r][c + 1], 1.0).unwrap();
            }
            if r + 1 < rows {
                net.add_resistor(id[r][c], id[r + 1][c], 1.0).unwrap();
            }
        }
    }
    let lone = net.add_bus("floating");
    net.add_capacitor(lone, GROUND, 1.0).unwrap();
    assert_eq!(net.num_buses(), 2 * offset + 1);
    net
}

/// The invariants every strategy must satisfy on every network:
/// blocks form an exact partition of the buses, `block_of_node` agrees
/// with `blocks`, and `interface` is precisely the set of buses with a
/// neighbour in a different block.
fn check_invariants(net: &Network, part: &Partition) {
    let n = net.num_buses();
    assert_eq!(part.block_of_node.len(), n);

    // Exact partition: every bus in exactly one block, blocks sorted.
    let mut seen = vec![false; n];
    for (bi, blk) in part.blocks.iter().enumerate() {
        assert!(!blk.is_empty(), "block {bi} is empty");
        assert!(blk.windows(2).all(|w| w[0] < w[1]), "block {bi} unsorted");
        for &bus in blk {
            assert!(!seen[bus], "bus {bus} in two blocks");
            seen[bus] = true;
            assert_eq!(part.block_of_node[bus], bi);
        }
    }
    assert!(seen.iter().all(|&s| s), "some bus missing from all blocks");

    // Interface = cross-block adjacency, exactly, and sorted.
    let adj = net.adjacency();
    let mut expect: Vec<usize> = (0..n)
        .filter(|&u| {
            adj[u]
                .iter()
                .any(|&v| part.block_of_node[v] != part.block_of_node[u])
        })
        .collect();
    expect.sort_unstable();
    assert_eq!(part.interface, expect, "interface ≠ cross-block adjacency");
}

#[test]
fn invariants_hold_for_both_strategies_on_meshes() {
    for (rows, cols, k) in [(12, 12, 4), (15, 17, 6), (40, 40, 8)] {
        let net = grid(rows, cols);
        for strategy in [PartitionStrategy::Bfs, PartitionStrategy::NestedDissection] {
            let part = partition_network_with(&net, k, strategy).unwrap();
            // The documented contract is *at least* k connected blocks.
            assert!(part.num_blocks() >= k, "{strategy:?} gave < {k} blocks");
            check_invariants(&net, &part);
        }
    }
}

#[test]
fn invariants_hold_on_disconnected_networks_and_singletons() {
    let net = disconnected(8, 9);
    for strategy in [PartitionStrategy::Bfs, PartitionStrategy::NestedDissection] {
        for k in [2, 4, 7] {
            let part = partition_network_with(&net, k, strategy).unwrap();
            // Three components (two meshes + a singleton) force ≥ 3 blocks
            // even when k = 2; beyond that, at least k.
            assert!(part.num_blocks() >= k.max(3));
            check_invariants(&net, &part);
        }
    }
}

#[test]
fn partitions_are_deterministic() {
    let net = grid(23, 19);
    for strategy in [PartitionStrategy::Bfs, PartitionStrategy::NestedDissection] {
        let a = partition_network_with(&net, 6, strategy).unwrap();
        let b = partition_network_with(&net, 6, strategy).unwrap();
        assert_eq!(a.pack(), b.pack(), "{strategy:?} not deterministic");
    }
}

/// The binding separator-quality bar: nested dissection beats BFS by at
/// least 25 % on the 100×100 mesh at k = 8 — the configuration the
/// scaling benchmark records and `bench_gate` enforces.
#[test]
fn nested_dissection_separators_beat_bfs_by_quarter_at_n_1e4() {
    let net = grid(100, 100);
    let bfs = partition_network_with(&net, 8, PartitionStrategy::Bfs).unwrap();
    let nd = partition_network_with(&net, 8, PartitionStrategy::NestedDissection).unwrap();
    check_invariants(&net, &bfs);
    check_invariants(&net, &nd);
    assert!(
        nd.interface.len() * 4 <= bfs.interface.len() * 3,
        "ND separator {} vs BFS {} — less than 25 % smaller",
        nd.interface.len(),
        bfs.interface.len(),
    );
}
