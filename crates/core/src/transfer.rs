//! Frequency-domain transfer-function evaluation
//! `H(s) = L (G + sC)⁻¹ B`, for both full and reduced descriptor models.
//!
//! Three paths are provided:
//!
//! - a dense complex LU ([`ZLu`]) that factors `G + sC` per frequency —
//!   always applicable, and cheap for reduced models;
//! - a Hessenberg fast path for the common power-grid case where `C` is
//!   diagonal and positive (every bus carries a shunt capacitor): with
//!   `A = −C⁻¹G = QHQᵀ`, each frequency costs one `O(n²)` shifted solve
//!   through `bdsm_linalg::solve_shifted_hessenberg` instead of `O(n³)`;
//! - a sparse path ([`SparseTransferEvaluator`]) that analyses the
//!   `G + sC` pattern once and runs one sparse complex LU per frequency —
//!   the only route that scales to full models with `n ≫ 10⁴` states.

use bdsm_linalg::dense::hessenberg::{hessenberg, solve_shifted_hessenberg};
use bdsm_linalg::{Complex64, LinalgError, Matrix, Result};
use bdsm_sparse::{CscMatrix, LuWorkspace, ShiftedPencil};
use std::ops::{Index, IndexMut};

/// A small dense complex matrix (row-major), used for transfer samples.
#[derive(Debug, Clone, PartialEq)]
pub struct CMatrix {
    nrows: usize,
    ncols: usize,
    data: Vec<Complex64>,
}

impl CMatrix {
    /// Creates an `nrows × ncols` zero matrix.
    pub fn zeros(nrows: usize, ncols: usize) -> Self {
        CMatrix {
            nrows,
            ncols,
            data: vec![Complex64::ZERO; nrows * ncols],
        }
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Entry-wise difference `self − rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] when shapes differ.
    pub fn sub(&self, rhs: &CMatrix) -> Result<CMatrix> {
        if (self.nrows, self.ncols) != (rhs.nrows, rhs.ncols) {
            return Err(LinalgError::ShapeMismatch {
                op: "cmatrix-sub",
                lhs: (self.nrows, self.ncols),
                rhs: (rhs.nrows, rhs.ncols),
            });
        }
        let mut out = self.clone();
        for (o, r) in out.data.iter_mut().zip(&rhs.data) {
            *o -= *r;
        }
        Ok(out)
    }

    /// Frobenius norm.
    pub fn norm_fro(&self) -> f64 {
        self.data.iter().map(|z| z.abs_sq()).sum::<f64>().sqrt()
    }
}

impl Index<(usize, usize)> for CMatrix {
    type Output = Complex64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &Complex64 {
        debug_assert!(i < self.nrows && j < self.ncols);
        &self.data[i * self.ncols + j]
    }
}

impl IndexMut<(usize, usize)> for CMatrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut Complex64 {
        debug_assert!(i < self.nrows && j < self.ncols);
        &mut self.data[i * self.ncols + j]
    }
}

/// Dense complex LU factorization of `G + sC` with partial pivoting.
#[derive(Debug, Clone)]
pub struct ZLu {
    n: usize,
    /// Packed factors, row-major: unit-lower L below, U on/above the diagonal.
    lu: Vec<Complex64>,
    /// Row `i` of the factors came from row `perm[i]` of the input.
    perm: Vec<usize>,
}

impl ZLu {
    /// Factors `A = G + sC` for real matrices `G, C` and complex shift `s`.
    ///
    /// # Errors
    ///
    /// - [`LinalgError::NotSquare`] / [`LinalgError::ShapeMismatch`] on bad
    ///   shapes.
    /// - [`LinalgError::Singular`] if a pivot vanishes (e.g. `s` hits a
    ///   generalized eigenvalue of the pencil).
    pub fn factor_shifted(g: &Matrix, c: &Matrix, s: Complex64) -> Result<Self> {
        if !g.is_square() {
            return Err(LinalgError::NotSquare { shape: g.shape() });
        }
        if c.shape() != g.shape() {
            return Err(LinalgError::ShapeMismatch {
                op: "zlu-shift",
                lhs: g.shape(),
                rhs: c.shape(),
            });
        }
        let n = g.nrows();
        let _span = bdsm_obs::span!("lu.factor", n = n, backend = "dense-z");
        let mut lu: Vec<Complex64> = Vec::with_capacity(n * n);
        for i in 0..n {
            for j in 0..n {
                lu.push(Complex64::from_real(g[(i, j)]) + s * c[(i, j)]);
            }
        }
        let mut perm: Vec<usize> = (0..n).collect();
        for k in 0..n {
            let mut piv = k;
            let mut pmax = lu[k * n + k].abs_sq();
            for i in (k + 1)..n {
                let v = lu[i * n + k].abs_sq();
                if v > pmax {
                    pmax = v;
                    piv = i;
                }
            }
            if pmax == 0.0 {
                return Err(LinalgError::Singular { at: k });
            }
            if piv != k {
                perm.swap(k, piv);
                for j in 0..n {
                    lu.swap(k * n + j, piv * n + j);
                }
            }
            let inv_piv = lu[k * n + k].recip();
            for i in (k + 1)..n {
                let lik = lu[i * n + k] * inv_piv;
                lu[i * n + k] = lik;
                if lik.abs_sq() != 0.0 {
                    for j in (k + 1)..n {
                        let u = lu[k * n + j];
                        lu[i * n + j] -= lik * u;
                    }
                }
            }
        }
        Ok(ZLu { n, lu, perm })
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Solves `(G + sC) x = b` for a complex right-hand side.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] on a length mismatch.
    #[allow(clippy::needless_range_loop)] // triangular substitution reads clearest indexed
    pub fn solve(&self, b: &[Complex64]) -> Result<Vec<Complex64>> {
        let n = self.n;
        if b.len() != n {
            return Err(LinalgError::ShapeMismatch {
                op: "zlu-solve",
                lhs: (n, n),
                rhs: (b.len(), 1),
            });
        }
        let mut x: Vec<Complex64> = self.perm.iter().map(|&p| b[p]).collect();
        for i in 1..n {
            let mut s = x[i];
            for j in 0..i {
                s -= self.lu[i * n + j] * x[j];
            }
            x[i] = s;
        }
        for i in (0..n).rev() {
            let mut s = x[i];
            for j in (i + 1)..n {
                s -= self.lu[i * n + j] * x[j];
            }
            x[i] = s / self.lu[i * n + i];
        }
        Ok(x)
    }

    /// Solves with a real right-hand side.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] on a length mismatch.
    pub fn solve_real(&self, b: &[f64]) -> Result<Vec<Complex64>> {
        let zb: Vec<Complex64> = b.iter().map(|&v| Complex64::from_real(v)).collect();
        self.solve(&zb)
    }
}

/// Evaluates `H(s) = L (G + sC)⁻¹ B` with a fresh complex LU factorization.
///
/// # Errors
///
/// Propagates shape and singularity errors from [`ZLu`].
pub fn eval_transfer(
    g: &Matrix,
    c: &Matrix,
    b: &Matrix,
    l: &Matrix,
    s: Complex64,
) -> Result<CMatrix> {
    check_descriptor_shapes(g, c, b, l)?;
    let lu = ZLu::factor_shifted(g, c, s)?;
    eval_transfer_factored(&lu, b, l)
}

/// Evaluates `H = L A⁻¹ B` against an already-factored `A = G + sC` — the
/// amortized shape of the ROM query layer, where one cached [`ZLu`] serves
/// many port responses at the same shift. [`eval_transfer`] runs through
/// this routine, so cached and freshly-factored evaluations are
/// bitwise-identical.
///
/// # Errors
///
/// Returns [`LinalgError::ShapeMismatch`] when `B`/`L` do not match the
/// factored dimension.
pub fn eval_transfer_factored(lu: &ZLu, b: &Matrix, l: &Matrix) -> Result<CMatrix> {
    if b.nrows() != lu.dim() || l.ncols() != lu.dim() {
        return Err(LinalgError::ShapeMismatch {
            op: "eval-transfer-factored",
            lhs: (lu.dim(), lu.dim()),
            rhs: (b.nrows(), l.ncols()),
        });
    }
    let mut h = CMatrix::zeros(l.nrows(), b.ncols());
    for j in 0..b.ncols() {
        let x = lu.solve_real(&b.col(j))?;
        for i in 0..l.nrows() {
            let row = l.row(i);
            let mut acc = Complex64::ZERO;
            for (lv, xv) in row.iter().zip(&x) {
                acc += *xv * *lv;
            }
            h[(i, j)] = acc;
        }
    }
    Ok(h)
}

fn check_descriptor_shapes(g: &Matrix, c: &Matrix, b: &Matrix, l: &Matrix) -> Result<()> {
    let n = g.nrows();
    if !g.is_square() {
        return Err(LinalgError::NotSquare { shape: g.shape() });
    }
    if c.shape() != (n, n) || b.nrows() != n || l.ncols() != n {
        return Err(LinalgError::InvalidArgument {
            what: "descriptor shapes inconsistent: need G,C n×n, B n×m, L p×n",
        });
    }
    Ok(())
}

enum EvalPath {
    /// `A = −C⁻¹G = QHQᵀ` precomputed; per-frequency `O(n²)` solves.
    Hessenberg {
        h: Matrix,
        /// `L·Q` (`p × n`).
        lq: Matrix,
        /// `Qᵀ·C⁻¹·B` (`n × m`).
        qt_cinv_b: Matrix,
    },
    /// Fresh complex LU per frequency over the stored descriptor.
    Dense {
        g: Matrix,
        c: Matrix,
        b: Matrix,
        l: Matrix,
    },
}

/// Reusable evaluator of `H(s)` for a fixed descriptor model.
///
/// Construction inspects `C`: when it is diagonal with strictly positive
/// diagonal (the RC/RLC grid case), a one-time Hessenberg reduction makes
/// every subsequent [`eval`](Self::eval) an `O(n²)` shifted solve; otherwise
/// evaluation falls back to a dense complex LU per call.
pub struct TransferEvaluator {
    path: EvalPath,
}

impl TransferEvaluator {
    /// Builds the evaluator, choosing the fastest applicable path.
    ///
    /// # Errors
    ///
    /// Returns shape errors for inconsistent descriptor matrices and
    /// propagates Hessenberg-reduction failures.
    pub fn new(g: Matrix, c: Matrix, b: Matrix, l: Matrix) -> Result<Self> {
        check_descriptor_shapes(&g, &c, &b, &l)?;
        let path = if is_positive_diagonal(&c) {
            let n = g.nrows();
            // A = −C⁻¹G, so that G + sC = C (sI − A); row-scale by −1/cᵢ.
            let a = Matrix::from_fn(n, n, |i, j| -g[(i, j)] / c[(i, i)]);
            let hes = hessenberg(&a)?;
            let cinv_b = Matrix::from_fn(n, b.ncols(), |i, j| b[(i, j)] / c[(i, i)]);
            let lq = l.matmul(&hes.q)?;
            let qt_cinv_b = hes.q.transpose().matmul(&cinv_b)?;
            EvalPath::Hessenberg {
                h: hes.h,
                lq,
                qt_cinv_b,
            }
        } else {
            EvalPath::Dense { g, c, b, l }
        };
        Ok(TransferEvaluator { path })
    }

    /// `true` when the `O(n²)`-per-frequency Hessenberg path is active.
    pub fn uses_fast_path(&self) -> bool {
        matches!(self.path, EvalPath::Hessenberg { .. })
    }

    /// Evaluates `H(s)` (`p × m`).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Singular`] if `s` is a pole of the model.
    pub fn eval(&self, s: Complex64) -> Result<CMatrix> {
        match &self.path {
            EvalPath::Dense { g, c, b, l } => eval_transfer(g, c, b, l, s),
            EvalPath::Hessenberg { h, lq, qt_cinv_b } => {
                let (p, m) = (lq.nrows(), qt_cinv_b.ncols());
                let mut out = CMatrix::zeros(p, m);
                for j in 0..m {
                    let rhs: Vec<Complex64> = qt_cinv_b
                        .col(j)
                        .iter()
                        .map(|&v| Complex64::from_real(v))
                        .collect();
                    let z = solve_shifted_hessenberg(h, s, &rhs)?;
                    for i in 0..p {
                        let row = lq.row(i);
                        let mut acc = Complex64::ZERO;
                        for (lv, zv) in row.iter().zip(&z) {
                            acc += *zv * *lv;
                        }
                        out[(i, j)] = acc;
                    }
                }
                Ok(out)
            }
        }
    }

    /// Evaluates `H(jω)` at each angular frequency, fanning the samples
    /// out over [`crate::par`] workers (each sample is an independent
    /// factorization, so the sweep is embarrassingly parallel and the
    /// result is bitwise-identical for any worker count).
    ///
    /// # Errors
    ///
    /// Propagates the first evaluation failure (in frequency order).
    pub fn eval_jomega_sweep(&self, omegas: &[f64]) -> Result<Vec<CMatrix>> {
        crate::par::parallel_map(omegas, |_, &w| {
            let _s = bdsm_obs::span!("sweep.freq", omega = w, backend = "dense");
            self.eval(Complex64::jomega(w))
        })
        .into_iter()
        .collect()
    }
}

/// Sparse full-model evaluator of `H(s) = L (G + sC)⁻¹ B`.
///
/// Construction builds the shifted pencil once (pattern union of `G` and
/// `C` plus an AMD fill-reducing ordering); every [`eval`](Self::eval) is a
/// numeric sparse complex refactorization and `m` triangular solves. This
/// is the full-model path for grids far beyond the dense ceiling.
pub struct SparseTransferEvaluator {
    pencil: ShiftedPencil,
    b: Matrix,
    /// `B` pre-packed as a column-major panel: each frequency sample runs
    /// one blocked multi-RHS triangular pass over all inputs at once.
    b_panel: Vec<f64>,
    l: Matrix,
}

impl SparseTransferEvaluator {
    /// Builds the evaluator from sparse `G`, `C` and dense (thin) `B`, `L`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::InvalidArgument`] /
    /// [`LinalgError::ShapeMismatch`] for inconsistent descriptor shapes.
    pub fn new(g: &CscMatrix<f64>, c: &CscMatrix<f64>, b: Matrix, l: Matrix) -> Result<Self> {
        let n = g.nrows();
        if !g.is_square() || c.shape() != (n, n) || b.nrows() != n || l.ncols() != n {
            return Err(LinalgError::InvalidArgument {
                what: "descriptor shapes inconsistent: need G,C n×n, B n×m, L p×n",
            });
        }
        let pencil = ShiftedPencil::new(g, c)?;
        let mut b_panel = Vec::with_capacity(n * b.ncols());
        for j in 0..b.ncols() {
            b_panel.extend_from_slice(&b.col(j));
        }
        Ok(SparseTransferEvaluator {
            pencil,
            b,
            b_panel,
            l,
        })
    }

    /// State dimension `n`.
    pub fn dim(&self) -> usize {
        self.pencil.dim()
    }

    /// Evaluates `H(s)` (`p × m`).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Singular`] if `s` is a pole of the model.
    pub fn eval(&self, s: Complex64) -> Result<CMatrix> {
        self.eval_with(s, &mut LuWorkspace::new())
    }

    /// Evaluates `H(s)` reusing a caller-owned factorization workspace —
    /// the allocation-free shape of a frequency sweep. All `m` inputs go
    /// through one blocked multi-RHS solve
    /// ([`bdsm_sparse::SparseLu::solve_multi`]), which traverses the
    /// factors once instead of once per port.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Singular`] if `s` is a pole of the model.
    pub fn eval_with(&self, s: Complex64, ws: &mut LuWorkspace<Complex64>) -> Result<CMatrix> {
        let lu = self.pencil.factor_complex_with(s, ws)?;
        let (n, m) = (self.dim(), self.b.ncols());
        let mut h = CMatrix::zeros(self.l.nrows(), m);
        if m == 0 {
            return Ok(h);
        }
        let x = lu.solve_multi_real(&self.b_panel, m)?;
        for j in 0..m {
            let xj = &x[j * n..(j + 1) * n];
            for i in 0..self.l.nrows() {
                let row = self.l.row(i);
                let mut acc = Complex64::ZERO;
                for (lv, xv) in row.iter().zip(xj) {
                    acc += *xv * *lv;
                }
                h[(i, j)] = acc;
            }
        }
        Ok(h)
    }

    /// Evaluates `H(jω)` at each angular frequency — one sparse numeric
    /// refactorization per sample, fanned out over [`crate::par`] workers
    /// that each reuse a private [`LuWorkspace`].
    ///
    /// # Errors
    ///
    /// Propagates the first evaluation failure (in frequency order).
    pub fn eval_jomega_sweep(&self, omegas: &[f64]) -> Result<Vec<CMatrix>> {
        crate::par::parallel_map_with(omegas, LuWorkspace::new, |ws, _, &w| {
            let _s = bdsm_obs::span!("sweep.freq", omega = w, backend = "sparse");
            self.eval_with(Complex64::jomega(w), ws)
        })
        .into_iter()
        .collect()
    }
}

fn is_positive_diagonal(c: &Matrix) -> bool {
    if !c.is_square() {
        return false;
    }
    for i in 0..c.nrows() {
        for j in 0..c.ncols() {
            let v = c[(i, j)];
            if i == j {
                if v <= 0.0 {
                    return false;
                }
            } else if v != 0.0 {
                return false;
            }
        }
    }
    true
}

/// Relative error `‖H_full − H_red‖_F / ‖H_full‖_F` of one frequency sample.
pub fn transfer_rel_err(h_full: &CMatrix, h_red: &CMatrix) -> f64 {
    let denom = h_full.norm_fro().max(f64::MIN_POSITIVE);
    match h_full.sub(h_red) {
        Ok(diff) => diff.norm_fro() / denom,
        Err(_) => f64::INFINITY,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scalar_rc() -> (Matrix, Matrix, Matrix, Matrix) {
        // One-state RC: H(s) = 1 / (g + s c).
        let g = Matrix::from_rows(&[&[2.0]]);
        let c = Matrix::from_rows(&[&[0.5]]);
        let b = Matrix::from_rows(&[&[1.0]]);
        let l = Matrix::from_rows(&[&[1.0]]);
        (g, c, b, l)
    }

    #[test]
    fn scalar_model_matches_closed_form() {
        let (g, c, b, l) = scalar_rc();
        let s = Complex64::jomega(3.0);
        let h = eval_transfer(&g, &c, &b, &l, s).unwrap();
        let expected = (Complex64::from_real(2.0) + s * 0.5).recip();
        assert!((h[(0, 0)] - expected).abs() < 1e-15);
    }

    #[test]
    fn zlu_solves_complex_system() {
        let g = Matrix::from_rows(&[&[3.0, 1.0], &[1.0, 2.0]]);
        let c = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 4.0]]);
        let s = Complex64::new(0.5, 2.0);
        let lu = ZLu::factor_shifted(&g, &c, s).unwrap();
        assert_eq!(lu.dim(), 2);
        let b = [Complex64::new(1.0, -1.0), Complex64::new(0.0, 2.0)];
        let x = lu.solve(&b).unwrap();
        // Residual check: (G + sC) x == b.
        for i in 0..2 {
            let mut acc = Complex64::ZERO;
            for j in 0..2 {
                acc += (Complex64::from_real(g[(i, j)]) + s * c[(i, j)]) * x[j];
            }
            assert!((acc - b[i]).abs() < 1e-13);
        }
    }

    #[test]
    fn zlu_detects_singular_pencil() {
        // G = 0, C = I, s = 0 → A = 0.
        let g = Matrix::zeros(2, 2);
        let c = Matrix::identity(2);
        assert!(matches!(
            ZLu::factor_shifted(&g, &c, Complex64::ZERO),
            Err(LinalgError::Singular { .. })
        ));
    }

    #[test]
    fn hessenberg_path_matches_dense_path() {
        // Diagonal C → fast path; compare against the dense LU result.
        let n = 12;
        let g = Matrix::from_fn(n, n, |i, j| {
            if i == j {
                3.0 + 0.2 * i as f64
            } else if i.abs_diff(j) == 1 {
                -1.0
            } else {
                0.0
            }
        });
        let c = Matrix::from_fn(
            n,
            n,
            |i, j| if i == j { 1.0 + 0.05 * i as f64 } else { 0.0 },
        );
        let b = Matrix::from_fn(n, 2, |i, j| if i == j { 1.0 } else { 0.0 });
        let l = Matrix::from_fn(2, n, |i, j| if j == n - 1 - i { 1.0 } else { 0.0 });
        let ev = TransferEvaluator::new(g.clone(), c.clone(), b.clone(), l.clone()).unwrap();
        assert!(ev.uses_fast_path());
        for &w in &[0.1, 1.0, 10.0] {
            let s = Complex64::jomega(w);
            let fast = ev.eval(s).unwrap();
            let dense = eval_transfer(&g, &c, &b, &l, s).unwrap();
            let rel = transfer_rel_err(&dense, &fast);
            assert!(rel < 1e-12, "paths disagree at ω={w}: {rel}");
        }
    }

    #[test]
    fn non_diagonal_c_uses_dense_path() {
        let g = Matrix::identity(3);
        let mut c = Matrix::identity(3);
        c[(0, 1)] = 0.5;
        c[(1, 0)] = 0.5;
        let b = Matrix::from_fn(3, 1, |i, _| if i == 0 { 1.0 } else { 0.0 });
        let l = b.transpose();
        let ev = TransferEvaluator::new(g, c, b, l).unwrap();
        assert!(!ev.uses_fast_path());
        let h = ev.eval(Complex64::jomega(2.0)).unwrap();
        assert!(h[(0, 0)].is_finite());
    }

    #[test]
    fn sparse_evaluator_matches_dense_paths() {
        let n = 15;
        let g = Matrix::from_fn(n, n, |i, j| {
            if i == j {
                2.0 + 0.3 * i as f64
            } else if i.abs_diff(j) == 1 {
                -0.8
            } else {
                0.0
            }
        });
        let c = Matrix::from_fn(
            n,
            n,
            |i, j| if i == j { 1e-3 * (1.0 + i as f64) } else { 0.0 },
        );
        let b = Matrix::from_fn(n, 2, |i, j| if i == j * (n - 1) { 1.0 } else { 0.0 });
        let l = b.transpose();
        let ev = SparseTransferEvaluator::new(
            &CscMatrix::from_dense(&g, 0.0),
            &CscMatrix::from_dense(&c, 0.0),
            b.clone(),
            l.clone(),
        )
        .unwrap();
        assert_eq!(ev.dim(), n);
        let sweeps = ev.eval_jomega_sweep(&[10.0, 100.0, 1000.0]).unwrap();
        for (k, &w) in [10.0, 100.0, 1000.0].iter().enumerate() {
            let dense = eval_transfer(&g, &c, &b, &l, Complex64::jomega(w)).unwrap();
            let rel = transfer_rel_err(&dense, &sweeps[k]);
            assert!(rel < 1e-12, "sparse/dense paths disagree at ω={w}: {rel}");
        }
    }

    #[test]
    fn sparse_evaluator_rejects_bad_shapes() {
        let g = CscMatrix::from_dense(&Matrix::identity(3), 0.0);
        let c = CscMatrix::from_dense(&Matrix::identity(3), 0.0);
        let b = Matrix::zeros(2, 1);
        let l = Matrix::zeros(1, 3);
        assert!(SparseTransferEvaluator::new(&g, &c, b, l).is_err());
        let c4 = CscMatrix::from_dense(&Matrix::identity(4), 0.0);
        assert!(
            SparseTransferEvaluator::new(&g, &c4, Matrix::zeros(3, 1), Matrix::zeros(1, 3))
                .is_err()
        );
    }

    #[test]
    fn sweep_evaluates_every_frequency() {
        let (g, c, b, l) = scalar_rc();
        let ev = TransferEvaluator::new(g, c, b, l).unwrap();
        let hs = ev.eval_jomega_sweep(&[1.0, 2.0, 4.0]).unwrap();
        assert_eq!(hs.len(), 3);
        // |H| decreases with frequency for a one-pole lowpass.
        assert!(hs[0][(0, 0)].abs() > hs[2][(0, 0)].abs());
    }

    #[test]
    fn rel_err_zero_for_identical_samples() {
        let (g, c, b, l) = scalar_rc();
        let h = eval_transfer(&g, &c, &b, &l, Complex64::jomega(1.0)).unwrap();
        assert_eq!(transfer_rel_err(&h, &h.clone()), 0.0);
    }
}
