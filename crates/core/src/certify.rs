//! The trust layer of the `Certify` stage: typed certificates a served
//! ROM can carry around.
//!
//! The residual check the adaptive loop always ran (now
//! [`ResidualSweep`]) says *how far* a ROM is from the full model on a
//! grid. This module upgrades the stage into properties a downstream
//! co-simulation actually relies on:
//!
//! - **Passivity** ([`PassivityCertificate`]): semidefiniteness margins of
//!   `sym(G_r)` and `C_r` (an RC descriptor with `sym(G) ⪰ 0`, `C ⪰ 0`
//!   cannot generate energy), plus positive-real sampling of the reduced
//!   transfer function — the smallest eigenvalue of the Hermitian part of
//!   `H(jω)` per grid frequency, with violating frequencies localized.
//! - **Stability** ([`StabilityCertificate`]): the Lyapunov sufficient
//!   condition (`V = xᵀC_r x` decays when `sym(G_r) ⪰ 0`, `C_r ⪰ 0`) and,
//!   when `C_r` admits a Cholesky factorization, the exact spectral
//!   abscissa of the reduced pencil `(−G_r, C_r)`.
//! - **A posteriori error bands** ([`ErrorBand`]): the residual sweep
//!   folded into per-log-frequency-band worst-case bounds.
//!
//! Congruence reduction preserves semidefiniteness exactly in exact
//! arithmetic — these checks certify that *floating-point* reduction did
//! not break it, which is precisely the guarantee a stranger consuming the
//! artifact needs. Eigenvalue margins on large reduced pencils go through
//! [`bdsm_linalg::sym_eig_extremes`] (tridiagonalize + Sturm bisection);
//! the small per-frequency Hermitian samples go through the full
//! [`SymEig`] Jacobi decomposition via the real `2p×2p` embedding.
//!
//! Everything here is deterministic: fixed bisection schedules, no
//! data-dependent thread interaction — certificates are bitwise-identical
//! for any `BDSM_THREADS`.

use crate::reduce::Result;
use crate::transfer::{CMatrix, TransferEvaluator};
use bdsm_linalg::{sym_eig_extremes, Matrix, SymEig};

/// Knobs of the certification pass, carried on
/// [`ReductionOpts`](crate::reduce::ReductionOpts).
#[derive(Debug, Clone, PartialEq)]
pub struct CertifyOpts {
    /// Relative eigenvalue tolerance: a margin `λ_min ≥ −tol·max(1, ‖A‖)`
    /// still counts as semidefinite (roundoff allowance).
    pub tol: f64,
}

impl Default for CertifyOpts {
    fn default() -> Self {
        CertifyOpts { tol: 1e-8 }
    }
}

/// Per-frequency relative transfer residuals of a ROM against the full
/// model — the quantitative half of the Certify stage (previously named
/// `Certificate`, before certificates grew typed property checks).
#[derive(Debug, Clone)]
pub struct ResidualSweep {
    /// The evaluation grid (angular frequencies).
    pub omegas: Vec<f64>,
    /// `‖H(jω) − Ĥ(jω)‖_F / ‖H(jω)‖_F` per grid point.
    pub residuals: Vec<f64>,
    /// Largest residual on the grid.
    pub worst: f64,
    /// Frequency carrying the largest residual.
    pub worst_omega: f64,
}

/// Verdict of one property check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckOutcome {
    /// The property holds within the configured margin.
    Pass,
    /// The property is violated beyond the margin.
    Fail,
    /// The check did not run (no sample grid, non-square transfer, …).
    Skipped,
}

/// Overall certificate verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CertStatus {
    /// Every executed check passed.
    Certified,
    /// At least one check failed.
    Violated,
    /// No check ran — e.g. a pre-certificate (format v2) artifact.
    Unknown,
}

/// Passivity evidence: semidefiniteness margins of the reduced pencil and
/// positive-real sampling of the reduced transfer function.
#[derive(Debug, Clone, PartialEq)]
pub struct PassivityCertificate {
    /// The relative eigenvalue tolerance the margins were judged against.
    pub tol: f64,
    /// Smallest eigenvalue of `sym(G_r)`.
    pub g_sym_min_eig: f64,
    /// Smallest eigenvalue of `C_r` (symmetrized).
    pub c_min_eig: f64,
    /// Frequencies where `Re H(jω)` was sampled (empty when the transfer
    /// matrix is not square or no grid was available).
    pub sample_omegas: Vec<f64>,
    /// Smallest eigenvalue of the Hermitian part of `H(jω)` per sample.
    pub sample_min_eigs: Vec<f64>,
    /// Indices into the samples where positive-realness is violated —
    /// the localization a debugging consumer needs.
    pub violations: Vec<usize>,
    /// The verdict.
    pub outcome: CheckOutcome,
}

/// Stability evidence for the reduced pencil `(−G_r, C_r)`.
#[derive(Debug, Clone, PartialEq)]
pub struct StabilityCertificate {
    /// Lyapunov margin from `sym(G_r)`: `V = xᵀC_r x` decays when ≥ 0.
    pub lyapunov_margin_g: f64,
    /// Lyapunov margin from `C_r`.
    pub lyapunov_margin_c: f64,
    /// Exact spectral abscissa `max Re λ` of the pencil, when `C_r`
    /// admitted a Cholesky factorization (`None` when singular /
    /// indefinite — the Lyapunov condition then carries the verdict).
    pub spectral_abscissa: Option<f64>,
    /// The verdict.
    pub outcome: CheckOutcome,
}

/// Worst a posteriori residual over one log-frequency band.
#[derive(Debug, Clone, PartialEq)]
pub struct ErrorBand {
    /// Band lower edge (angular frequency, inclusive).
    pub omega_lo: f64,
    /// Band upper edge (inclusive).
    pub omega_hi: f64,
    /// Largest relative transfer residual observed in the band.
    pub worst_residual: f64,
    /// Number of grid samples the bound is supported by.
    pub samples: usize,
}

/// The typed output of the Certify stage, persisted in artifact
/// provenance (format v3) and enforced by the query envelope of
/// `RomServer`.
#[derive(Debug, Clone, PartialEq)]
pub struct Certificate {
    /// Passivity evidence.
    pub passivity: PassivityCertificate,
    /// Stability evidence.
    pub stability: StabilityCertificate,
    /// Per-band a posteriori error bounds (empty when no full-model
    /// residual sweep was available, e.g. the fixed shift path).
    pub error_bands: Vec<ErrorBand>,
    /// Overall verdict.
    pub status: CertStatus,
}

impl Default for Certificate {
    fn default() -> Self {
        Certificate::unknown()
    }
}

impl Certificate {
    /// The no-information certificate: every check [`CheckOutcome::Skipped`],
    /// status [`CertStatus::Unknown`] — what a pre-certificate (v2)
    /// artifact reports after loading.
    pub fn unknown() -> Self {
        Certificate {
            passivity: PassivityCertificate {
                tol: 0.0,
                g_sym_min_eig: 0.0,
                c_min_eig: 0.0,
                sample_omegas: Vec::new(),
                sample_min_eigs: Vec::new(),
                violations: Vec::new(),
                outcome: CheckOutcome::Skipped,
            },
            stability: StabilityCertificate {
                lyapunov_margin_g: 0.0,
                lyapunov_margin_c: 0.0,
                spectral_abscissa: None,
                outcome: CheckOutcome::Skipped,
            },
            error_bands: Vec::new(),
            status: CertStatus::Unknown,
        }
    }

    /// The certified frequency envelope `[ω_lo, ω_hi]`: the span of
    /// frequencies any evidence (positive-real samples or error bands)
    /// covers. `None` when the certificate is [`CertStatus::Unknown`] or
    /// carries no frequency-resolved evidence — an envelope-enforcing
    /// server then has nothing to enforce.
    pub fn frequency_envelope(&self) -> Option<(f64, f64)> {
        if self.status == CertStatus::Unknown {
            return None;
        }
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for &w in &self.passivity.sample_omegas {
            lo = lo.min(w);
            hi = hi.max(w);
        }
        for b in &self.error_bands {
            lo = lo.min(b.omega_lo);
            hi = hi.max(b.omega_hi);
        }
        (lo <= hi).then_some((lo, hi))
    }

    /// The smallest transient step inside the certified envelope: a
    /// backward-Euler step `h` resolves content up to `ω ≈ 1/h`, so
    /// `h < 1/ω_hi` queries the model above its certified band.
    pub fn min_transient_step(&self) -> Option<f64> {
        self.frequency_envelope()
            .map(|(_, hi)| 1.0 / hi)
            .filter(|h| h.is_finite() && *h > 0.0)
    }

    /// JSON object (no trailing newline) — the debug/CI dump shape.
    pub fn to_json(&self) -> String {
        let p = &self.passivity;
        let s = &self.stability;
        let bands: Vec<String> = self
            .error_bands
            .iter()
            .map(|b| {
                format!(
                    "{{\"omega_lo\": {:e}, \"omega_hi\": {:e}, \"worst_residual\": {:e}, \"samples\": {}}}",
                    b.omega_lo, b.omega_hi, b.worst_residual, b.samples
                )
            })
            .collect();
        let envelope = match self.frequency_envelope() {
            Some((lo, hi)) => format!("{{\"omega_lo\": {lo:e}, \"omega_hi\": {hi:e}}}"),
            None => "null".into(),
        };
        format!(
            "{{\"status\": \"{}\", \"passivity\": {{\"outcome\": \"{}\", \"tol\": {:e}, \
             \"g_sym_min_eig\": {:e}, \"c_min_eig\": {:e}, \"samples\": {}, \"violations\": {}}}, \
             \"stability\": {{\"outcome\": \"{}\", \"lyapunov_margin_g\": {:e}, \
             \"lyapunov_margin_c\": {:e}, \"spectral_abscissa\": {}}}, \
             \"error_bands\": [{}], \"envelope\": {}}}",
            status_str(self.status),
            outcome_str(p.outcome),
            p.tol,
            p.g_sym_min_eig,
            p.c_min_eig,
            p.sample_omegas.len(),
            p.violations.len(),
            outcome_str(s.outcome),
            s.lyapunov_margin_g,
            s.lyapunov_margin_c,
            s.spectral_abscissa
                .map_or("null".into(), |a| format!("{a:e}")),
            bands.join(", "),
            envelope,
        )
    }
}

fn status_str(s: CertStatus) -> &'static str {
    match s {
        CertStatus::Certified => "certified",
        CertStatus::Violated => "violated",
        CertStatus::Unknown => "unknown",
    }
}

fn outcome_str(o: CheckOutcome) -> &'static str {
    match o {
        CheckOutcome::Pass => "pass",
        CheckOutcome::Fail => "fail",
        CheckOutcome::Skipped => "skipped",
    }
}

/// Certifies a reduced descriptor `(G_r, C_r, B_r, L_r)`.
///
/// `omegas` is the sampling grid for the positive-real check;
/// `rom_samples`, when provided, must be `H(jω)` at exactly those
/// frequencies (the adaptive loop already has them — recomputing would
/// double the certification cost). `residuals`, when provided, feeds the
/// a posteriori error bands.
///
/// # Errors
///
/// Propagates eigensolver failures and singular transfer evaluations
/// (a grid point sitting on a pole of the ROM).
#[allow(clippy::too_many_arguments)] // the descriptor alone is four matrices
pub fn certify_reduced(
    g: &Matrix,
    c: &Matrix,
    b: &Matrix,
    l: &Matrix,
    omegas: &[f64],
    rom_samples: Option<&[CMatrix]>,
    residuals: Option<&ResidualSweep>,
    opts: &CertifyOpts,
) -> Result<Certificate> {
    let q = g.nrows();
    if q == 0 {
        return Ok(Certificate::unknown());
    }
    let g_thresh = opts.tol * g.norm_max().max(1.0);
    let c_thresh = opts.tol * c.norm_max().max(1.0);
    let (g_sym_min_eig, _) = sym_eig_extremes(g)?;
    let (c_min_eig, _) = sym_eig_extremes(c)?;
    let matrices_pass = g_sym_min_eig >= -g_thresh && c_min_eig >= -c_thresh;

    // Positive-real sampling: only defined for a square transfer matrix
    // (inputs and outputs must pair up for `uᴴ H u` to be a power).
    let square = b.ncols() == l.nrows() && b.ncols() > 0;
    let (sample_omegas, sample_min_eigs, violations) = if square && !omegas.is_empty() {
        let samples = match rom_samples {
            Some(s) => s.to_vec(),
            None => TransferEvaluator::new(g.clone(), c.clone(), b.clone(), l.clone())?
                .eval_jomega_sweep(omegas)?,
        };
        let mut mins = Vec::with_capacity(samples.len());
        let mut bad = Vec::new();
        for (k, h) in samples.iter().enumerate() {
            let (min_eig, scale) = hermitian_part_min_eig(h)?;
            if min_eig < -opts.tol * scale.max(1.0) {
                bad.push(k);
            }
            mins.push(min_eig);
        }
        (omegas.to_vec(), mins, bad)
    } else {
        (Vec::new(), Vec::new(), Vec::new())
    };
    let passivity_outcome = if !matrices_pass || !violations.is_empty() {
        CheckOutcome::Fail
    } else {
        CheckOutcome::Pass
    };

    let spectral_abscissa = spectral_abscissa(g, c);
    let stable = match spectral_abscissa {
        Some(a) => a <= g_thresh.max(c_thresh),
        None => matrices_pass,
    };
    let stability_outcome = if stable {
        CheckOutcome::Pass
    } else {
        CheckOutcome::Fail
    };

    let error_bands = residuals
        .map(|r| error_bands(&r.omegas, &r.residuals, 6))
        .unwrap_or_default();

    let status =
        if passivity_outcome == CheckOutcome::Fail || stability_outcome == CheckOutcome::Fail {
            CertStatus::Violated
        } else {
            CertStatus::Certified
        };
    Ok(Certificate {
        passivity: PassivityCertificate {
            tol: opts.tol,
            g_sym_min_eig,
            c_min_eig,
            sample_omegas,
            sample_min_eigs,
            violations,
            outcome: passivity_outcome,
        },
        stability: StabilityCertificate {
            lyapunov_margin_g: g_sym_min_eig,
            lyapunov_margin_c: c_min_eig,
            spectral_abscissa,
            outcome: stability_outcome,
        },
        error_bands,
        status,
    })
}

/// Smallest eigenvalue of the Hermitian part `M = (H + Hᴴ)/2` of a square
/// complex matrix, plus `‖M‖_max` as the tolerance scale. Computed through
/// the real symmetric `2p×2p` embedding `[[Re M, −Im M], [Im M, Re M]]`,
/// whose spectrum is that of `M` with every eigenvalue doubled — the port
/// count is small, so the full Jacobi [`SymEig`] is the right tool.
fn hermitian_part_min_eig(h: &CMatrix) -> Result<(f64, f64)> {
    let p = h.nrows();
    let mut scale = 0.0_f64;
    let mut e = Matrix::zeros(2 * p, 2 * p);
    for i in 0..p {
        for j in 0..p {
            let re = 0.5 * (h[(i, j)].re + h[(j, i)].re);
            let im = 0.5 * (h[(i, j)].im - h[(j, i)].im);
            scale = scale.max(re.abs()).max(im.abs());
            e[(i, j)] = re;
            e[(i + p, j + p)] = re;
            e[(i, j + p)] = -im;
            e[(i + p, j)] = im;
        }
    }
    let eig = SymEig::compute(&e)?;
    Ok((eig.min().unwrap_or(0.0), scale))
}

/// Exact spectral abscissa `max Re λ` of the pencil `−G x = λ C x`, via the
/// symmetric-definite reduction `S = L⁻¹ sym(G) L⁻ᵀ` over the Cholesky
/// factor `C = LLᵀ`: the pencil eigenvalues are `−eig(S)`, so the abscissa
/// is `−λ_min(S)`. Returns `None` when `C` is not positive definite
/// (Cholesky breakdown) — the Lyapunov condition then decides stability.
fn spectral_abscissa(g: &Matrix, c: &Matrix) -> Option<f64> {
    let n = c.nrows();
    let l = cholesky(c)?;
    // X = L⁻¹ sym(G): forward-substitute each column of sym(G).
    let sym_g = Matrix::from_fn(n, n, |i, j| 0.5 * (g[(i, j)] + g[(j, i)]));
    let x = forward_solve_cols(&l, &sym_g);
    // S = X L⁻ᵀ = (L⁻¹ Xᵀ)ᵀ — X is `L⁻¹ sym(G)`, so S is symmetric.
    let s = forward_solve_cols(&l, &x.transpose()).transpose();
    let (lo, _) = sym_eig_extremes(&s).ok()?;
    Some(-lo)
}

/// Unpivoted Cholesky `A = LLᵀ` of the symmetrized input; `None` on a
/// non-positive pivot (not positive definite).
fn cholesky(a: &Matrix) -> Option<Matrix> {
    let n = a.nrows();
    let mut l = Matrix::zeros(n, n);
    for j in 0..n {
        let mut d = 0.5 * (a[(j, j)] + a[(j, j)]);
        for k in 0..j {
            d -= l[(j, k)] * l[(j, k)];
        }
        if d.is_nan() || d <= 0.0 {
            return None;
        }
        let dj = d.sqrt();
        l[(j, j)] = dj;
        for i in (j + 1)..n {
            let mut v = 0.5 * (a[(i, j)] + a[(j, i)]);
            for k in 0..j {
                v -= l[(i, k)] * l[(j, k)];
            }
            l[(i, j)] = v / dj;
        }
    }
    Some(l)
}

/// Solves `L X = B` column-wise for lower-triangular `L`.
fn forward_solve_cols(l: &Matrix, b: &Matrix) -> Matrix {
    let (n, m) = b.shape();
    let mut x = b.clone();
    for j in 0..m {
        for i in 0..n {
            let mut v = x[(i, j)];
            for k in 0..i {
                v -= l[(i, k)] * x[(k, j)];
            }
            x[(i, j)] = v / l[(i, i)];
        }
    }
    x
}

/// Folds a residual sweep into at most `max_bands` log-frequency bands,
/// each carrying its worst observed residual. Bands with no samples are
/// dropped; a degenerate grid (single frequency) yields one band.
pub fn error_bands(omegas: &[f64], residuals: &[f64], max_bands: usize) -> Vec<ErrorBand> {
    let n = omegas.len().min(residuals.len());
    if n == 0 || max_bands == 0 {
        return Vec::new();
    }
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for &w in &omegas[..n] {
        lo = lo.min(w);
        hi = hi.max(w);
    }
    if !(lo > 0.0 && hi.is_finite()) {
        return Vec::new();
    }
    let nb = max_bands.min(n);
    if hi <= lo || nb == 1 {
        let worst = residuals[..n].iter().fold(0.0_f64, |m, &r| m.max(r));
        return vec![ErrorBand {
            omega_lo: lo,
            omega_hi: hi,
            worst_residual: worst,
            samples: n,
        }];
    }
    let (llo, lhi) = (lo.ln(), hi.ln());
    // Outer edges pinned exactly so the bands cover [lo, hi] verbatim
    // (exp(ln x) can drift an ulp).
    let edge = |k: usize| {
        if k == 0 {
            lo
        } else if k == nb {
            hi
        } else {
            (llo + (lhi - llo) * k as f64 / nb as f64).exp()
        }
    };
    let mut bands: Vec<ErrorBand> = (0..nb)
        .map(|k| ErrorBand {
            omega_lo: edge(k),
            omega_hi: edge(k + 1),
            worst_residual: 0.0,
            samples: 0,
        })
        .collect();
    for (&w, &r) in omegas[..n].iter().zip(&residuals[..n]) {
        let t = (w.ln() - llo) / (lhi - llo);
        let k = ((t * nb as f64) as usize).min(nb - 1);
        bands[k].worst_residual = bands[k].worst_residual.max(r);
        bands[k].samples += 1;
    }
    bands.retain(|b| b.samples > 0);
    bands
}

#[cfg(test)]
mod tests {
    use super::*;
    use bdsm_linalg::Complex64;

    fn spd(n: usize, shift: f64) -> Matrix {
        Matrix::from_fn(n, n, |i, j| {
            if i == j {
                shift
            } else if i.abs_diff(j) == 1 {
                -1.0
            } else {
                0.0
            }
        })
    }

    fn certify_plain(g: &Matrix, c: &Matrix, b: &Matrix, l: &Matrix) -> Certificate {
        certify_reduced(
            g,
            c,
            b,
            l,
            &[1.0, 10.0, 100.0],
            None,
            None,
            &CertifyOpts::default(),
        )
        .unwrap()
    }

    #[test]
    fn passive_stable_rc_pencil_certifies() {
        let n = 6;
        let g = spd(n, 3.0);
        let c = spd(n, 2.5);
        let b = Matrix::from_fn(n, 2, |i, j| if i == j { 1.0 } else { 0.0 });
        let l = b.transpose();
        let cert = certify_plain(&g, &c, &b, &l);
        assert_eq!(cert.status, CertStatus::Certified);
        assert_eq!(cert.passivity.outcome, CheckOutcome::Pass);
        assert_eq!(cert.stability.outcome, CheckOutcome::Pass);
        assert!(cert.passivity.g_sym_min_eig > 0.0);
        assert!(cert.passivity.c_min_eig > 0.0);
        assert!(cert.passivity.violations.is_empty());
        assert_eq!(cert.passivity.sample_min_eigs.len(), 3);
        assert!(cert.passivity.sample_min_eigs.iter().all(|&m| m >= 0.0));
        let a = cert.stability.spectral_abscissa.expect("C is SPD");
        assert!(a < 0.0, "RC pencil abscissa {a} not negative");
        assert_eq!(cert.frequency_envelope(), Some((1.0, 100.0)));
        assert!(cert.to_json().contains("\"status\": \"certified\""));
    }

    #[test]
    fn indefinite_g_is_violated_and_localized() {
        let n = 4;
        let mut g = spd(n, 3.0);
        g[(0, 0)] = -5.0; // actively generating: non-passive, unstable
        let c = spd(n, 2.5);
        let b = Matrix::from_fn(n, 1, |i, _| if i == 0 { 1.0 } else { 0.0 });
        let l = b.transpose();
        let cert = certify_plain(&g, &c, &b, &l);
        assert_eq!(cert.status, CertStatus::Violated);
        assert_eq!(cert.passivity.outcome, CheckOutcome::Fail);
        assert!(cert.passivity.g_sym_min_eig < 0.0);
        assert_eq!(cert.stability.outcome, CheckOutcome::Fail);
        assert!(cert.stability.spectral_abscissa.unwrap() > 0.0);
        // The driving-point H(jω) of an active one-port goes non-positive-
        // real somewhere on the grid — the violation list localizes it.
        assert!(
            !cert.passivity.violations.is_empty(),
            "sampled min eigs: {:?}",
            cert.passivity.sample_min_eigs
        );
    }

    #[test]
    fn singular_c_skips_spectral_but_lyapunov_decides() {
        let n = 4;
        let g = spd(n, 3.0);
        let mut c = spd(n, 2.5);
        // Zero out a row/col: C ⪰ 0 but singular — Cholesky must refuse.
        for k in 0..n {
            c[(0, k)] = 0.0;
            c[(k, 0)] = 0.0;
        }
        let b = Matrix::from_fn(n, 1, |i, _| if i == 0 { 1.0 } else { 0.0 });
        let l = b.transpose();
        let cert = certify_plain(&g, &c, &b, &l);
        assert_eq!(cert.stability.spectral_abscissa, None);
        assert_eq!(cert.stability.outcome, CheckOutcome::Pass);
        assert_eq!(cert.status, CertStatus::Certified);
    }

    #[test]
    fn non_square_transfer_skips_sampling() {
        let n = 4;
        let g = spd(n, 3.0);
        let c = spd(n, 2.5);
        let b = Matrix::from_fn(n, 1, |i, _| if i == 0 { 1.0 } else { 0.0 });
        let l = Matrix::from_fn(2, n, |i, j| if i == j { 1.0 } else { 0.0 });
        let cert = certify_plain(&g, &c, &b, &l);
        assert!(cert.passivity.sample_omegas.is_empty());
        assert_eq!(cert.passivity.outcome, CheckOutcome::Pass);
        // No samples and no bands: nothing frequency-resolved to envelope.
        assert_eq!(cert.frequency_envelope(), None);
    }

    #[test]
    fn unknown_certificate_has_no_envelope() {
        let cert = Certificate::unknown();
        assert_eq!(cert.status, CertStatus::Unknown);
        assert_eq!(cert.frequency_envelope(), None);
        assert_eq!(cert.min_transient_step(), None);
        assert!(cert.to_json().contains("\"status\": \"unknown\""));
    }

    #[test]
    fn error_bands_cover_and_bound_the_sweep() {
        let omegas: Vec<f64> = (0..24).map(|i| 10.0_f64 * 2.0_f64.powi(i)).collect();
        let residuals: Vec<f64> = (0..24).map(|i| 1e-9 * (i as f64 + 1.0)).collect();
        let bands = error_bands(&omegas, &residuals, 6);
        assert_eq!(bands.len(), 6);
        assert_eq!(bands.iter().map(|b| b.samples).sum::<usize>(), 24);
        assert_eq!(bands[0].omega_lo, 10.0);
        let worst = residuals.iter().fold(0.0_f64, |m, &r| m.max(r));
        assert_eq!(
            bands.iter().fold(0.0_f64, |m, b| m.max(b.worst_residual)),
            worst
        );
        for w in bands.windows(2) {
            assert!(w[0].omega_hi <= w[1].omega_lo * (1.0 + 1e-12));
        }
        // Degenerate grids still produce a (single) band.
        assert_eq!(error_bands(&[50.0], &[1e-7], 6).len(), 1);
        assert!(error_bands(&[], &[], 6).is_empty());
    }

    #[test]
    fn hermitian_embedding_matches_known_spectrum() {
        // M = [[2, i], [-i, 2]] has eigenvalues 1 and 3.
        let mut h = CMatrix::zeros(2, 2);
        h[(0, 0)] = Complex64::from_real(2.0);
        h[(1, 1)] = Complex64::from_real(2.0);
        h[(0, 1)] = Complex64::new(0.0, 1.0);
        h[(1, 0)] = Complex64::new(0.0, -1.0);
        let (min_eig, scale) = hermitian_part_min_eig(&h).unwrap();
        assert!((min_eig - 1.0).abs() < 1e-12);
        assert!((scale - 2.0).abs() < 1e-15);
    }

    #[test]
    fn min_transient_step_tracks_envelope() {
        let n = 3;
        let cert = certify_reduced(
            &spd(n, 3.0),
            &spd(n, 2.5),
            &Matrix::from_fn(n, 1, |i, _| if i == 0 { 1.0 } else { 0.0 }),
            &Matrix::from_fn(1, n, |_, j| if j == 0 { 1.0 } else { 0.0 }),
            &[1.0e2, 1.0e3, 4.0e3],
            None,
            None,
            &CertifyOpts::default(),
        )
        .unwrap();
        assert_eq!(cert.min_transient_step(), Some(1.0 / 4.0e3));
    }
}
