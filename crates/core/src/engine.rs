//! The staged reduction engine: an explicit `Plan → Basis → Project →
//! Certify` pipeline behind [`crate::reduce::reduce_network`].
//!
//! Each stage is a public method on [`ReductionEngine`], so callers can
//! run the monolithic pipeline ([`ReductionEngine::run`]) or drive the
//! stages individually — rebuild a basis with different shifts over the
//! same [`Plan`], certify an existing ROM on a fresh frequency grid, and
//! so on. Two strategy axes select the interesting behaviour:
//!
//! - [`ShiftStrategy`] decides **where the Krylov expansion points sit**.
//!   [`ShiftStrategy::Fixed`] uses the hand-picked points of
//!   [`KrylovOpts`](crate::krylov::KrylovOpts) exactly as the historical pipeline did (and
//!   reproduces it bitwise). [`ShiftStrategy::Adaptive`] starts from the
//!   coarse [`KrylovOpts`](crate::krylov::KrylovOpts) set and **greedily adds the worst-residual
//!   candidate**: each round evaluates the sparse transfer residual
//!   `‖H(jω) − Ĥ(jω)‖_F / ‖H‖_F` on a candidate grid (full-model samples
//!   computed once through the parallel sparse sweep, ROM samples per
//!   round) and promotes the frequency where the ROM is worst to a new
//!   expansion point, until the tolerance or the shift budget is hit.
//!   The pencil's symbolic analysis and the per-point candidate sets are
//!   cached across rounds, so a greedy round costs one new shifted
//!   factorization plus the merge/SVD/congruence of the grown basis.
//! - [`InterfacePolicy`] (see [`crate::projector`]) decides how interface
//!   buses are treated: folded into the block SVD bases, or preserved
//!   **exactly** via identity columns so boundary voltages survive the
//!   reduction verbatim.
//!
//! Every stage inherits the determinism contract of [`crate::par`]: the
//! greedy selection is driven by bitwise-deterministic sweeps and
//! first-wins arg-max, so adaptive reductions are identical for any
//! `BDSM_THREADS`.

use crate::certify::{certify_reduced, Certificate, ResidualSweep};
use crate::krylov::{collect_points, merge_candidate_sets, merge_candidates, ExpansionPoint};
use crate::projector::{BlockDiagProjector, InterfacePolicy};
use crate::reduce::{
    CoreError, DenseDescriptor, ReducedModel, ReductionOpts, Result, SolverBackend,
    SparseDescriptor, StageTimings,
};
use crate::transfer::{transfer_rel_err, CMatrix, SparseTransferEvaluator, TransferEvaluator};
use bdsm_circuit::{
    grouped_state_order, interface_state_indices, mna, partition_network_with, CircuitError,
    Network, Partition, ReductionSet,
};
use bdsm_linalg::{LinalgError, Matrix};
use bdsm_obs::{timing_span, Trace};
use bdsm_sparse::ShiftedPencil;

/// How the Basis stage chooses its Krylov expansion points.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum ShiftStrategy {
    /// Use the [`KrylovOpts`](crate::krylov::KrylovOpts) points verbatim —
    /// the historical behaviour and the default.
    #[default]
    Fixed,
    /// Greedy residual-driven placement: start from the (coarse)
    /// [`KrylovOpts`](crate::krylov::KrylovOpts) points and repeatedly add
    /// the candidate frequency with the worst transfer residual.
    Adaptive(AdaptiveShiftOpts),
}

/// Options of the greedy adaptive shift selection.
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptiveShiftOpts {
    /// Candidate angular frequencies: both the residual-evaluation grid
    /// and the pool greedy selection promotes shifts from.
    pub candidate_omegas: Vec<f64>,
    /// Stop once the worst relative transfer residual on the candidate
    /// grid drops to this tolerance.
    pub tol: f64,
    /// Hard budget on the total number of expansion points (initial coarse
    /// set included) — the knob bounding selection cost.
    pub max_shifts: usize,
}

impl AdaptiveShiftOpts {
    /// `count` log-spaced angular frequencies in `[lo, hi]` — the usual
    /// shape of a candidate grid spanning the band of interest.
    ///
    /// # Panics
    ///
    /// Panics if `count < 2` or the bounds are not positive and ordered
    /// (candidate grids are caller-chosen test infrastructure).
    pub fn log_grid(lo: f64, hi: f64, count: usize) -> Vec<f64> {
        assert!(count >= 2 && lo > 0.0 && hi > lo, "bad candidate grid");
        let (llo, lhi) = (lo.ln(), hi.ln());
        (0..count)
            .map(|i| (llo + (lhi - llo) * i as f64 / (count - 1) as f64).exp())
            .collect()
    }
}

impl Default for AdaptiveShiftOpts {
    fn default() -> Self {
        AdaptiveShiftOpts {
            candidate_omegas: Self::log_grid(1.0e1, 1.0e4, 10),
            tol: 1e-6,
            max_shifts: 6,
        }
    }
}

/// Output of the Plan stage: everything about the reduction that does not
/// depend on the expansion points — the partition, the permuted sparse
/// full model, the interface-state export, and the shared symbolic
/// factorization of the shifted pencil.
#[derive(Debug, Clone)]
pub struct Plan {
    /// The bus partition behind the block structure.
    pub partition: Partition,
    /// State permutation (`new_of_old`) into block-contiguous order.
    pub state_order: Vec<usize>,
    /// Per-block state counts after grouping.
    pub block_sizes: Vec<usize>,
    /// Interface states (permuted indices, sorted) exported by
    /// `bdsm_circuit::partition` — the paper's boundary set.
    pub interface_states: Vec<usize>,
    /// The permuted full model, kept sparse.
    pub full: SparseDescriptor,
    /// Interface rows per block in local coordinates (empty lists under
    /// [`InterfacePolicy::Folded`]).
    interface_local: Vec<Vec<usize>>,
    /// Shared symbolic analysis of `G + sC` (sparse backend).
    pencil: Option<ShiftedPencil>,
    /// Densified oracle model (dense backend).
    dense: Option<DenseDescriptor>,
}

/// Output of the Project stage: the block-diagonal projector plus the
/// congruence-reduced descriptor.
#[derive(Debug, Clone)]
pub struct Rom {
    /// The block-diagonal projector that produced the reduction.
    pub projector: BlockDiagProjector,
    /// Reduced conductance `VᵀGV`.
    pub g: Matrix,
    /// Reduced storage `VᵀCV`.
    pub c: Matrix,
    /// Reduced input map `VᵀB`.
    pub b: Matrix,
    /// Reduced output map `LV`.
    pub l: Matrix,
}

impl Rom {
    /// Reduced state dimension `q`.
    pub fn reduced_dim(&self) -> usize {
        self.g.nrows()
    }
}

/// One greedy round of the adaptive loop, for the audit trail (and the
/// scaling benchmark's adaptive record).
#[derive(Debug, Clone)]
pub struct RoundRecord {
    /// Expansion points active during this round.
    pub points: usize,
    /// Global basis columns the round's merge produced.
    pub basis_cols: usize,
    /// Reduced dimension of the round's ROM.
    pub reduced_dim: usize,
    /// Worst candidate-grid residual of the round's ROM.
    pub worst_residual: f64,
    /// Frequency carrying the worst residual.
    pub worst_omega: f64,
    /// The shift the greedy step promoted afterwards (`None` on the final
    /// round).
    pub added_omega: Option<f64>,
}

/// What the engine did: the final shift set, the per-round residual
/// trajectory, and whether the adaptive loop certified its tolerance.
#[derive(Debug, Clone, Default)]
pub struct EngineReport {
    /// Expansion points of the final basis, in merge order.
    pub shifts: Vec<ExpansionPoint>,
    /// Columns of the final global Krylov basis (total Krylov vectors).
    pub basis_cols: usize,
    /// Greedy rounds, in order (empty for [`ShiftStrategy::Fixed`]).
    pub rounds: Vec<RoundRecord>,
    /// `true` when the adaptive loop met its residual tolerance on the
    /// candidate grid (always `false` for the uncertified fixed path).
    pub certified: bool,
    /// Typed property certificate of the reduced pencil — passivity,
    /// stability, and a posteriori error bands (see [`crate::certify`]).
    /// [`CertStatus::Unknown`](crate::certify::CertStatus::Unknown) for
    /// stage-recomposition callers that never ran the Certify stage.
    pub certificate: Certificate,
    /// The span trace of the run (stage spans always; per-shift/per-block
    /// spans when `BDSM_OBS=spans`). Empty for stage-recomposition
    /// callers that never went through [`ReductionEngine::run`].
    pub trace: Trace,
}

/// The staged reduction engine. Construct with [`ReductionEngine::new`],
/// then either [`run`](Self::run) the whole pipeline or drive the stages
/// ([`plan`](Self::plan), [`basis`](Self::basis),
/// [`projector`](Self::projector) + [`congruence`](Self::congruence),
/// [`certify`](Self::certify)) individually.
#[derive(Debug, Clone)]
pub struct ReductionEngine<'n> {
    net: &'n Network,
    opts: ReductionOpts,
}

impl<'n> ReductionEngine<'n> {
    /// Builds an engine over a network, validating the options up front.
    ///
    /// # Errors
    ///
    /// [`CoreError::Circuit`] for a portless network,
    /// [`CoreError::InvalidOptions`] for an inconsistent adaptive
    /// configuration.
    pub fn new(net: &'n Network, opts: &ReductionOpts) -> Result<Self> {
        if net.num_inputs() == 0 || net.num_outputs() == 0 {
            return Err(CircuitError::NoPorts.into());
        }
        if let ShiftStrategy::Adaptive(a) = &opts.shift_strategy {
            if a.candidate_omegas.is_empty() {
                return Err(CoreError::InvalidOptions(
                    "adaptive: candidate frequency grid is empty",
                ));
            }
            if !(a.tol > 0.0 && a.tol.is_finite()) {
                return Err(CoreError::InvalidOptions(
                    "adaptive: residual tolerance must be positive and finite",
                ));
            }
            if a.max_shifts == 0 {
                return Err(CoreError::InvalidOptions(
                    "adaptive: shift budget must be at least 1",
                ));
            }
        }
        Ok(ReductionEngine {
            net,
            opts: opts.clone(),
        })
    }

    /// The options the engine runs with.
    pub fn opts(&self) -> &ReductionOpts {
        &self.opts
    }

    /// **Plan** stage: MNA assembly, partitioning, block-contiguous
    /// permutation, interface export, and the shared symbolic
    /// factorization — everything independent of the expansion points.
    ///
    /// # Errors
    ///
    /// Propagates assembly/partitioning failures and rejects a reduced
    /// dimension budget below the block count.
    pub fn plan(&self) -> Result<Plan> {
        let _stage = timing_span!("stage.plan");
        let desc = mna::assemble(self.net)?;
        let partition = {
            let _s = timing_span!("stage.partition");
            match &self.opts.kept_buses {
                Some(kept) => ReductionSet::keep_buses(self.net, kept)?.to_partition(self.net)?,
                None => partition_network_with(
                    self.net,
                    self.opts.num_blocks,
                    self.opts.partition_strategy,
                )?,
            }
        };
        let (new_of_old, block_sizes) = grouped_state_order(self.net, &desc, &partition);
        let full = SparseDescriptor {
            g: desc.g.permute_symmetric(&new_of_old).to_csc(),
            c: desc.c.permute_symmetric(&new_of_old).to_csc(),
            b: desc.b.permute_rows(&new_of_old).to_dense(),
            l: desc.l.permute_cols(&new_of_old).to_dense(),
        };
        let interface_states = interface_state_indices(&desc, &partition, &new_of_old);

        if let Some(total) = self.opts.max_reduced_dim {
            // Every block keeps at least one state, so a budget below k is
            // unsatisfiable; fail loudly instead of silently exceeding it.
            if total < block_sizes.len() {
                return Err(CoreError::InvalidOptions(
                    "max_reduced_dim is smaller than the number of blocks",
                ));
            }
        }
        // Per-block local interface rows, only materialized when the exact
        // policy will consume them.
        let mut interface_local = vec![Vec::new(); block_sizes.len()];
        if self.opts.interface_policy == InterfacePolicy::Exact {
            let mut offsets = vec![0usize; block_sizes.len() + 1];
            for (i, &sz) in block_sizes.iter().enumerate() {
                offsets[i + 1] = offsets[i] + sz;
            }
            for &s in &interface_states {
                let bi = offsets.partition_point(|&o| o <= s) - 1;
                interface_local[bi].push(s - offsets[bi]);
            }
        }
        // The dense oracle densifies exactly once, shared by the Krylov
        // basis and the congruence products; the sparse path instead pays
        // its one-off symbolic pencil analysis here, shared by every shift
        // of every adaptive round.
        let (pencil, dense) = match self.opts.backend {
            SolverBackend::Sparse => (Some(ShiftedPencil::new(&full.g, &full.c)?), None),
            SolverBackend::Dense => (None, Some(full.to_dense())),
        };
        Ok(Plan {
            partition,
            state_order: new_of_old,
            block_sizes,
            interface_states,
            full,
            interface_local,
            pencil,
            dense,
        })
    }

    /// **Basis** stage: the global moment-matching basis for an explicit
    /// set of expansion points, through the plan's backend.
    ///
    /// # Errors
    ///
    /// Rejects an empty point set / zero moments and propagates singular
    /// shifted factorizations.
    pub fn basis(&self, plan: &Plan, points: &[ExpansionPoint]) -> Result<Matrix> {
        self.validate_points(points)?;
        let raw = self.candidate_sets(plan, points);
        Ok(merge_candidates(
            raw,
            self.opts.krylov.deflation_tol,
            self.opts.krylov.ortho,
        )?)
    }

    fn validate_points(&self, points: &[ExpansionPoint]) -> Result<()> {
        if points.is_empty() || self.opts.krylov.moments_per_point == 0 {
            return Err(CoreError::Linalg(LinalgError::InvalidArgument {
                what: "krylov: need at least one expansion point and one moment",
            }));
        }
        Ok(())
    }

    /// Per-point candidate sets through the plan's backend (the raw
    /// material [`crate::krylov`] merges into a basis).
    fn candidate_sets(
        &self,
        plan: &Plan,
        points: &[ExpansionPoint],
    ) -> Vec<bdsm_linalg::Result<Vec<Vec<f64>>>> {
        match (&plan.pencil, &plan.dense) {
            (Some(pencil), _) => crate::krylov::candidates_for_points_sparse(
                pencil,
                &plan.full.c,
                &plan.full.b,
                &self.opts.krylov,
                points,
            ),
            (None, Some(dense)) => crate::krylov::candidates_for_points_dense(
                &dense.g,
                &dense.c,
                &dense.b,
                &self.opts.krylov,
                points,
            ),
            (None, None) => unreachable!("plan always carries a backend"),
        }
    }

    /// **Project** stage, first half: the block-diagonal projector for a
    /// global basis, honouring the configured [`InterfacePolicy`].
    ///
    /// # Errors
    ///
    /// Propagates SVD failures and interface-list validation errors.
    pub fn projector(&self, plan: &Plan, global: &Matrix) -> Result<BlockDiagProjector> {
        let max_block_dim = self
            .opts
            .max_reduced_dim
            .map(|total| total / plan.block_sizes.len());
        let proj = match self.opts.interface_policy {
            InterfacePolicy::Folded => BlockDiagProjector::from_global_basis(
                global,
                &plan.block_sizes,
                self.opts.rank_tol,
                max_block_dim,
            )?,
            InterfacePolicy::Exact => BlockDiagProjector::from_global_basis_with_interface(
                global,
                &plan.block_sizes,
                self.opts.rank_tol,
                max_block_dim,
                &plan.interface_local,
            )?,
        };
        Ok(proj)
    }

    /// **Project** stage, second half: the congruence transforms
    /// `VᵀGV`, `VᵀCV`, `VᵀB`, `LV` through the plan's backend.
    ///
    /// # Errors
    ///
    /// Propagates shape mismatches from the projector.
    pub fn congruence(&self, plan: &Plan, projector: &BlockDiagProjector) -> Result<Rom> {
        let (g_r, c_r) = match &plan.dense {
            None => (
                projector.project_square_sparse(&plan.full.g)?,
                projector.project_square_sparse(&plan.full.c)?,
            ),
            Some(dense) => (
                projector.project_square(&dense.g)?,
                projector.project_square(&dense.c)?,
            ),
        };
        let b_r = projector.project_input(&plan.full.b)?;
        let l_r = projector.project_output(&plan.full.l)?;
        Ok(Rom {
            projector: projector.clone(),
            g: g_r,
            c: c_r,
            b: b_r,
            l: l_r,
        })
    }

    /// **Certify** stage, quantitative half: relative transfer residuals
    /// of a ROM against the sparse full model on a `jω` grid, both sides
    /// evaluated through the existing parallel sweeps.
    ///
    /// # Errors
    ///
    /// Propagates singular evaluations (a grid point hitting a pole).
    pub fn certify(&self, plan: &Plan, rom: &Rom, omegas: &[f64]) -> Result<ResidualSweep> {
        let full = self.full_sweep(plan, omegas)?;
        self.certify_against(rom, omegas, &full).map(|(s, _)| s)
    }

    /// **Certify** stage, full form: residual sweep against the full model
    /// **plus** the typed property certificate (passivity sampling reuses
    /// the ROM sweep, so certification costs one extra eigenpass, not a
    /// second sweep).
    ///
    /// # Errors
    ///
    /// Propagates singular evaluations and eigensolver failures.
    pub fn certify_full(&self, plan: &Plan, rom: &Rom, omegas: &[f64]) -> Result<Certificate> {
        let full = self.full_sweep(plan, omegas)?;
        let (sweep, rom_sweep) = self.certify_against(rom, omegas, &full)?;
        certify_reduced(
            &rom.g,
            &rom.c,
            &rom.b,
            &rom.l,
            omegas,
            Some(&rom_sweep),
            Some(&sweep),
            &self.opts.certify,
        )
    }

    /// Full-model reference sweep on a grid (one sparse complex
    /// refactorization per frequency, fanned out over workers).
    fn full_sweep(&self, plan: &Plan, omegas: &[f64]) -> Result<Vec<CMatrix>> {
        let ev = SparseTransferEvaluator::new(
            &plan.full.g,
            &plan.full.c,
            plan.full.b.clone(),
            plan.full.l.clone(),
        )?;
        Ok(ev.eval_jomega_sweep(omegas)?)
    }

    /// Residuals of a ROM against precomputed full-model samples — the
    /// cached shape the adaptive loop runs every round. Also returns the
    /// ROM's own sweep so the final round's passivity sampling is free.
    fn certify_against(
        &self,
        rom: &Rom,
        omegas: &[f64],
        full: &[CMatrix],
    ) -> Result<(ResidualSweep, Vec<CMatrix>)> {
        let rom_ev =
            TransferEvaluator::new(rom.g.clone(), rom.c.clone(), rom.b.clone(), rom.l.clone())?;
        let rom_sweep = rom_ev.eval_jomega_sweep(omegas)?;
        let residuals: Vec<f64> = full
            .iter()
            .zip(&rom_sweep)
            .map(|(hf, hr)| transfer_rel_err(hf, hr))
            .collect();
        let mut worst = 0.0_f64;
        let mut worst_omega = omegas.first().copied().unwrap_or(0.0);
        for (&r, &w) in residuals.iter().zip(omegas) {
            if r > worst {
                worst = r;
                worst_omega = w;
            }
        }
        let sweep = ResidualSweep {
            omegas: omegas.to_vec(),
            residuals,
            worst,
            worst_omega,
        };
        Ok((sweep, rom_sweep))
    }

    /// Runs the full staged pipeline.
    ///
    /// # Errors
    ///
    /// Any stage failure; see the stage methods.
    pub fn run(&self) -> Result<(ReducedModel, EngineReport)> {
        self.run_timed().map(|(rm, report, _)| (rm, report))
    }

    /// [`run`](Self::run) with the per-stage wall-clock breakdown.
    ///
    /// The whole pipeline executes inside a `bdsm_obs` trace session, so
    /// the returned [`StageTimings`] is a view over the span trace (also
    /// surfaced on [`EngineReport::trace`]); `BDSM_OBS=spans` adds
    /// per-shift / per-block / per-frequency detail to the same trace.
    ///
    /// # Errors
    ///
    /// Same as [`run`](Self::run).
    pub fn run_timed(&self) -> Result<(ReducedModel, EngineReport, StageTimings)> {
        let (result, trace) = Trace::collect(|| self.run_staged());
        let (rm, mut report) = result?;
        let mut stages = StageTimings::from_trace(&trace);
        stages.threads = crate::par::max_threads();
        stages.adaptive_rounds = report.rounds.len();
        report.trace = trace;
        Ok((rm, report, stages))
    }

    /// The pipeline body `run_timed` traces: Plan, then the strategy's
    /// Basis → Project (→ Certify) loop, then descriptor assembly.
    fn run_staged(&self) -> Result<(ReducedModel, EngineReport)> {
        let plan = self.plan()?;
        let (rom, report) = match self.opts.shift_strategy.clone() {
            ShiftStrategy::Fixed => self.run_fixed(&plan)?,
            ShiftStrategy::Adaptive(a) => self.run_adaptive(&plan, &a)?,
        };
        let rm = ReducedModel {
            g: rom.g,
            c: rom.c,
            b: rom.b,
            l: rom.l,
            projector: rom.projector,
            partition: plan.partition,
            state_order: plan.state_order,
            block_sizes: plan.block_sizes,
            interface_states: plan.interface_states,
            full: plan.full,
            backend: self.opts.backend,
        };
        Ok((rm, report))
    }

    /// One pass of Basis → Project with the fixed [`KrylovOpts`](crate::krylov::KrylovOpts) points —
    /// the historical pipeline, stage by stage.
    fn run_fixed(&self, plan: &Plan) -> Result<(Rom, EngineReport)> {
        let points = collect_points(&self.opts.krylov);
        let global = {
            let _s = timing_span!("stage.krylov", points = points.len());
            self.basis(plan, &points)?
        };
        let projector = {
            let _s = timing_span!("stage.svd");
            self.projector(plan, &global)?
        };
        let rom = {
            let _s = timing_span!("stage.project");
            self.congruence(plan, &projector)?
        };
        // The fixed path never measures residuals against the full model,
        // but the property checks (passivity/stability of the reduced
        // pencil) are cheap and still apply — sampled at the `jω` expansion
        // points, with no error bands.
        let certificate = {
            let _s = timing_span!("stage.certify");
            let omegas: Vec<f64> = points
                .iter()
                .filter_map(|p| match *p {
                    ExpansionPoint::Jomega(w) => Some(w),
                    ExpansionPoint::Real(_) => None,
                })
                .collect();
            certify_reduced(
                &rom.g,
                &rom.c,
                &rom.b,
                &rom.l,
                &omegas,
                None,
                None,
                &self.opts.certify,
            )?
        };
        let report = EngineReport {
            shifts: points,
            basis_cols: global.ncols(),
            rounds: Vec::new(),
            certified: false,
            certificate,
            trace: Trace::default(),
        };
        Ok((rom, report))
    }

    /// The greedy adaptive loop: grow the shift set from the coarse
    /// initial points, one worst-residual candidate at a time, re-using
    /// the symbolic pencil and the per-point candidate cache across
    /// rounds.
    fn run_adaptive(&self, plan: &Plan, a: &AdaptiveShiftOpts) -> Result<(Rom, EngineReport)> {
        let mut points = collect_points(&self.opts.krylov);
        if points.is_empty() {
            // Coarse seed: the geometric middle of the candidate grid.
            let mid = a.candidate_omegas[a.candidate_omegas.len() / 2];
            points.push(ExpansionPoint::Jomega(mid));
        }
        self.validate_points(&points)?;

        // Per-point candidate cache, in merge order (initial points, then
        // greedy additions). A point's candidates are a pure function of
        // that point, so they are computed exactly once.
        let mut cache = {
            let _s = timing_span!("stage.krylov", points = points.len());
            collect_ok(self.candidate_sets(plan, &points))?
        };

        // The full model never changes across rounds: its candidate-grid
        // sweep is computed once and re-used by every certification.
        let full_sweep = {
            let _s = timing_span!("stage.certify", grid = a.candidate_omegas.len());
            self.full_sweep(plan, &a.candidate_omegas)?
        };

        let mut rounds: Vec<RoundRecord> = Vec::new();
        let mut certified = false;
        let (rom, basis_cols, cert, rom_sweep) = loop {
            let global = {
                let _s = timing_span!("stage.krylov");
                merge_candidate_sets(
                    &cache,
                    self.opts.krylov.deflation_tol,
                    self.opts.krylov.ortho,
                )?
            };
            let projector = {
                let _s = timing_span!("stage.svd");
                self.projector(plan, &global)?
            };
            let rom = {
                let _s = timing_span!("stage.project");
                self.congruence(plan, &projector)?
            };
            let (cert, rom_sweep) = {
                let _s = timing_span!("stage.certify");
                self.certify_against(&rom, &a.candidate_omegas, &full_sweep)?
            };

            rounds.push(RoundRecord {
                points: points.len(),
                basis_cols: global.ncols(),
                reduced_dim: rom.reduced_dim(),
                worst_residual: cert.worst,
                worst_omega: cert.worst_omega,
                added_omega: None,
            });
            if cert.worst <= a.tol {
                certified = true;
                break (rom, global.ncols(), cert, rom_sweep);
            }
            if points.len() >= a.max_shifts {
                break (rom, global.ncols(), cert, rom_sweep);
            }
            // Greedy step: the worst-residual candidate not already an
            // expansion point (first-wins tie-break keeps this — and hence
            // the whole loop — deterministic for any worker count).
            let mut pick: Option<(f64, f64)> = None;
            for (&w, &r) in cert.omegas.iter().zip(&cert.residuals) {
                let used = points
                    .iter()
                    .any(|p| matches!(*p, ExpansionPoint::Jomega(x) if x == w));
                if used {
                    continue;
                }
                if pick.is_none_or(|(_, pr)| r > pr) {
                    pick = Some((w, r));
                }
            }
            let Some((w_next, _)) = pick else {
                break (rom, global.ncols(), cert, rom_sweep); // pool exhausted
            };
            rounds.last_mut().expect("round pushed").added_omega = Some(w_next);
            let pt = ExpansionPoint::Jomega(w_next);
            {
                let _s = timing_span!("stage.krylov");
                cache.extend(collect_ok(self.candidate_sets(plan, &[pt]))?);
            }
            points.push(pt);
        };
        // Property certificate of the final ROM: the passivity sampling
        // reuses the last round's ROM sweep, the error bands fold the last
        // round's residuals — no extra transfer evaluations.
        let certificate = {
            let _s = timing_span!("stage.certify");
            certify_reduced(
                &rom.g,
                &rom.c,
                &rom.b,
                &rom.l,
                &a.candidate_omegas,
                Some(&rom_sweep),
                Some(&cert),
                &self.opts.certify,
            )?
        };
        let report = EngineReport {
            shifts: points,
            basis_cols,
            rounds,
            certified,
            certificate,
            trace: Trace::default(),
        };
        Ok((rom, report))
    }
}

/// Collects per-point candidate results, surfacing the first failure (in
/// point order, matching the fixed-path merge semantics).
fn collect_ok(raw: Vec<bdsm_linalg::Result<Vec<Vec<f64>>>>) -> Result<Vec<Vec<Vec<f64>>>> {
    let mut out = Vec::with_capacity(raw.len());
    for r in raw {
        out.push(r?);
    }
    Ok(out)
}
