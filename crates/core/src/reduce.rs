//! The BDSM pipeline entry points: network → partition → block bases →
//! reduced model.
//!
//! This is the **low-level engine path**. The supported public API lives
//! one layer up in the `bdsm-rom` crate (re-exported as `bdsm::rom`):
//! its `Reducer` builder validates a whole configuration before any
//! factorization work starts, and its `RomArtifact`/`RomServer` types add
//! persistence and concurrent serving on top of the [`ReducedModel`]
//! produced here. The free functions below stay stable for callers that
//! drive the engine stages directly.
//!
//! [`reduce_network`] is a thin wrapper over the staged
//! [`crate::engine::ReductionEngine`], which runs the explicit
//! `Plan → Basis → Project → Certify` pipeline:
//!
//! 1. **Plan** — MNA assembly (`bdsm_circuit::mna`), BFS partition into
//!    `k` connected blocks, the block-contiguous state permutation, the
//!    interface-state export, and the shared symbolic pencil analysis;
//! 2. **Basis** — a global moment-matching Krylov basis
//!    ([`crate::krylov`]), with expansion points either fixed or chosen
//!    adaptively ([`ShiftStrategy`]);
//! 3. **Project** — the block-diagonal projector `V = diag(V₁,…,V_k)`
//!    ([`crate::projector`], folded or exact-interface per
//!    [`InterfacePolicy`]) and the congruence transforms `G_r = VᵀGV`,
//!    `C_r = VᵀCV`, `B_r = VᵀB`, `L_r = LV`;
//! 4. **Certify** — transfer-residual evaluation on a `jω` grid, which is
//!    also what drives the adaptive greedy shift selection.
//!
//! The shifted solves and congruence products run on a selectable
//! [`SolverBackend`]: the sparse subsystem (`bdsm_sparse`) by default —
//! the full model is never densified, which is what admits `n ≫ 10⁴`
//! grids — or the original dense kernels as a verification oracle.

use crate::certify::CertifyOpts;
use crate::engine::{EngineReport, ReductionEngine, ShiftStrategy};
use crate::krylov::KrylovOpts;
use crate::projector::{BlockDiagProjector, InterfacePolicy};
use bdsm_circuit::{CircuitError, Network, Partition, PartitionStrategy};
use bdsm_linalg::{LinalgError, Matrix};
use bdsm_sparse::CscMatrix;
use std::fmt;

/// Errors from the reduction pipeline.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CoreError {
    /// Circuit-layer failure (assembly, partitioning, validation).
    Circuit(CircuitError),
    /// Numerical failure in the linear-algebra kernels.
    Linalg(LinalgError),
    /// Inconsistent [`ReductionOpts`].
    InvalidOptions(&'static str),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Circuit(e) => write!(f, "circuit error: {e}"),
            CoreError::Linalg(e) => write!(f, "linear algebra error: {e}"),
            CoreError::InvalidOptions(what) => write!(f, "invalid reduction options: {what}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Circuit(e) => Some(e),
            CoreError::Linalg(e) => Some(e),
            CoreError::InvalidOptions(_) => None,
        }
    }
}

impl From<CircuitError> for CoreError {
    fn from(e: CircuitError) -> Self {
        CoreError::Circuit(e)
    }
}

impl From<LinalgError> for CoreError {
    fn from(e: LinalgError) -> Self {
        CoreError::Linalg(e)
    }
}

/// Result alias for the reduction pipeline.
pub type Result<T> = std::result::Result<T, CoreError>;

/// Which factorization backend carries the full-model linear algebra
/// (shifted Krylov solves and congruence products).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SolverBackend {
    /// Sparse CSC + fill-reducing ordering + sparse LU (`bdsm_sparse`) —
    /// the default, and the only route that scales past `n ≈ 10³`.
    #[default]
    Sparse,
    /// Densify and use the dense kernels of `bdsm_linalg`. Kept as the
    /// verification oracle the sparse path is cross-checked against.
    Dense,
}

/// Options for [`reduce_network`].
#[derive(Debug, Clone)]
pub struct ReductionOpts {
    /// Number of partition blocks `k`.
    pub num_blocks: usize,
    /// Moment-matching options for the global basis. Under
    /// [`ShiftStrategy::Adaptive`] these points form the initial coarse
    /// shift set the greedy selection grows from.
    pub krylov: KrylovOpts,
    /// Relative singular-value threshold for per-block rank truncation.
    pub rank_tol: f64,
    /// Optional total reduced-dimension budget `q_max`; enforced by capping
    /// every block at `q_max / k` dominant directions. Must be at least the
    /// number of blocks (each block keeps one state minimum). Under
    /// [`InterfacePolicy::Exact`] the cap applies to the appended Krylov
    /// directions only — interface columns are mandatory.
    pub max_reduced_dim: Option<usize>,
    /// Factorization backend for the full-model solves.
    pub backend: SolverBackend,
    /// How expansion points are chosen — fixed (the default, reproducing
    /// the historical pipeline bitwise) or adaptive greedy selection.
    pub shift_strategy: ShiftStrategy,
    /// How interface buses are treated by the projector — folded (the
    /// default) or preserved exactly.
    pub interface_policy: InterfacePolicy,
    /// How the bus graph is split into blocks — BFS growth (the default,
    /// reproducing the historical pipeline bitwise) or separator-minimising
    /// nested dissection. Ignored when [`kept_buses`](Self::kept_buses) is
    /// set.
    pub partition_strategy: PartitionStrategy,
    /// User-designated reduction region: when set, these buses are kept and
    /// every other bus is eliminated, overriding `num_blocks` and
    /// `partition_strategy` (the partition is derived from the kept set via
    /// [`ReductionSet`]). Pair with [`InterfacePolicy::Exact`] to read kept
    /// boundary voltages off the ROM verbatim.
    pub kept_buses: Option<Vec<usize>>,
    /// Knobs of the Certify stage's property checks (passivity/stability
    /// margins); see [`CertifyOpts`].
    pub certify: CertifyOpts,
}

impl Default for ReductionOpts {
    fn default() -> Self {
        ReductionOpts {
            num_blocks: 4,
            krylov: KrylovOpts::default(),
            rank_tol: 1e-12,
            max_reduced_dim: None,
            backend: SolverBackend::default(),
            shift_strategy: ShiftStrategy::default(),
            interface_policy: InterfacePolicy::default(),
            partition_strategy: PartitionStrategy::default(),
            kept_buses: None,
            certify: CertifyOpts::default(),
        }
    }
}

/// A dense descriptor model `(G, C, B, L)` in block-grouped state order.
#[derive(Debug, Clone)]
pub struct DenseDescriptor {
    /// Conductance matrix.
    pub g: Matrix,
    /// Storage matrix.
    pub c: Matrix,
    /// Input map.
    pub b: Matrix,
    /// Output map.
    pub l: Matrix,
}

impl DenseDescriptor {
    /// State dimension.
    pub fn dim(&self) -> usize {
        self.g.nrows()
    }
}

/// A sparse descriptor model `(G, C, B, L)` in block-grouped state order.
///
/// `G` and `C` stay in CSC form — at `n = 10⁵` their dense counterparts
/// would need 160 GB — while the thin input/output maps (`n × m`, `p × n`
/// with small `m`, `p`) remain dense.
#[derive(Debug, Clone)]
pub struct SparseDescriptor {
    /// Conductance matrix.
    pub g: CscMatrix<f64>,
    /// Storage matrix.
    pub c: CscMatrix<f64>,
    /// Input map.
    pub b: Matrix,
    /// Output map.
    pub l: Matrix,
}

impl SparseDescriptor {
    /// State dimension.
    pub fn dim(&self) -> usize {
        self.g.nrows()
    }

    /// Densifies `G` and `C` — the bridge to the dense verification
    /// oracle. Only sensible for small models.
    pub fn to_dense(&self) -> DenseDescriptor {
        DenseDescriptor {
            g: self.g.to_dense(),
            c: self.c.to_dense(),
            b: self.b.clone(),
            l: self.l.clone(),
        }
    }
}

/// Output of the BDSM pipeline: the reduced model plus everything needed to
/// audit it (projector, partition, permuted full model).
#[derive(Debug, Clone)]
pub struct ReducedModel {
    /// Reduced conductance `VᵀGV`.
    pub g: Matrix,
    /// Reduced storage `VᵀCV`.
    pub c: Matrix,
    /// Reduced input map `VᵀB`.
    pub b: Matrix,
    /// Reduced output map `LV`.
    pub l: Matrix,
    /// The block-diagonal projector used.
    pub projector: BlockDiagProjector,
    /// The bus partition behind the block structure.
    pub partition: Partition,
    /// State permutation (`new_of_old`) applied before projection.
    pub state_order: Vec<usize>,
    /// Per-block state counts of the permuted full model.
    pub block_sizes: Vec<usize>,
    /// Interface states of the permuted full model (sorted) — the boundary
    /// set exported by the partitioner, regardless of policy.
    pub interface_states: Vec<usize>,
    /// The permuted full model, kept sparse (for validation and
    /// comparison; densify via [`SparseDescriptor::to_dense`] when a dense
    /// oracle is wanted and `n` is small).
    pub full: SparseDescriptor,
    /// The backend that carried the full-model solves.
    pub backend: SolverBackend,
}

impl ReducedModel {
    /// Full state dimension `n`.
    pub fn full_dim(&self) -> usize {
        self.full.dim()
    }

    /// Reduced state dimension `q`.
    pub fn reduced_dim(&self) -> usize {
        self.g.nrows()
    }

    /// The `(full state row, reduced column)` pairs of exactly-preserved
    /// interface states — non-empty only under [`InterfacePolicy::Exact`],
    /// where the reduced state vector carries each listed boundary voltage
    /// verbatim at the given coordinate.
    pub fn interface_map(&self) -> &[(usize, usize)] {
        self.projector.interface_map()
    }
}

/// Wall-clock breakdown of one [`reduce_network_timed`] run, in
/// microseconds per pipeline stage — the payload behind the scaling
/// benchmark's per-stage artifact trail.
#[derive(Debug, Clone, Copy, Default)]
pub struct StageTimings {
    /// MNA assembly, the block-contiguous state permutation, and the
    /// plan's one-off backend setup (symbolic pencil analysis or oracle
    /// densification).
    pub assemble_us: f64,
    /// BFS partitioning of the bus graph.
    pub partition_us: f64,
    /// Global Krylov basis: shifted factorizations + block recurrences
    /// (fans out per expansion point), plus the per-round merges of the
    /// adaptive loop.
    pub krylov_us: f64,
    /// The per-point slice of `krylov_us`: `krylov.point` spans (pipelined
    /// factorizations + block recurrences). Zero when the ambient obs
    /// level was below `Timings` during the run.
    pub krylov_point_us: f64,
    /// The merge slice of `krylov_us`: `krylov.merge` spans (the blocked
    /// panel-merge tree, or the sequential MGS merge under the oracle
    /// kernel). Zero when the ambient obs level was below `Timings`.
    pub krylov_merge_us: f64,
    /// Projector construction: per-block SVD compression (fans out per
    /// block), summed over adaptive rounds.
    pub svd_us: f64,
    /// The congruence products `VᵀGV`, `VᵀCV`, `VᵀB`, `LV` (block pairs
    /// fan out per pair), summed over adaptive rounds.
    pub project_us: f64,
    /// Transfer-residual certification: the one-off full-model candidate
    /// sweep plus the per-round ROM sweeps. Zero for the fixed strategy.
    pub certify_us: f64,
    /// Greedy rounds the adaptive loop ran (zero for the fixed strategy).
    pub adaptive_rounds: usize,
    /// Worker cap the fan-out stages ran under (`par::max_threads`).
    pub threads: usize,
}

impl StageTimings {
    /// Total across the instrumented stages.
    pub fn total_us(&self) -> f64 {
        self.assemble_us
            + self.partition_us
            + self.krylov_us
            + self.svd_us
            + self.project_us
            + self.certify_us
    }

    /// The stage view of an engine span trace: same-named `stage.*`
    /// spans sum across adaptive rounds, and assembly is the part of
    /// `stage.plan` not spent partitioning. `adaptive_rounds` and
    /// `threads` are not derivable from spans; the engine fills them in.
    pub fn from_trace(trace: &bdsm_obs::Trace) -> StageTimings {
        let partition_us = trace.total_us("stage.partition");
        StageTimings {
            assemble_us: (trace.total_us("stage.plan") - partition_us).max(0.0),
            partition_us,
            krylov_us: trace.total_us("stage.krylov"),
            krylov_point_us: trace.total_us("krylov.point"),
            krylov_merge_us: trace.total_us("krylov.merge"),
            svd_us: trace.total_us("stage.svd"),
            project_us: trace.total_us("stage.project"),
            certify_us: trace.total_us("stage.certify"),
            adaptive_rounds: 0,
            threads: 0,
        }
    }
}

/// Runs the full BDSM reduction pipeline on a network.
///
/// # Errors
///
/// - [`CoreError::Circuit`] if the network is empty, has no ports, or the
///   partition request is invalid;
/// - [`CoreError::Linalg`] if a factorization fails (e.g. a singular
///   `G + s₀C` at an expansion point);
/// - [`CoreError::InvalidOptions`] for inconsistent budgets or adaptive
///   configuration.
pub fn reduce_network(net: &Network, opts: &ReductionOpts) -> Result<ReducedModel> {
    reduce_network_timed(net, opts).map(|(rm, _)| rm)
}

/// [`reduce_network`] with a per-stage wall-clock breakdown attached.
///
/// # Errors
///
/// Same as [`reduce_network`].
pub fn reduce_network_timed(
    net: &Network,
    opts: &ReductionOpts,
) -> Result<(ReducedModel, StageTimings)> {
    let (rm, _report, stages) = reduce_network_traced(net, opts)?;
    Ok((rm, stages))
}

/// [`reduce_network`] with the full observability bundle: the audit
/// report — whose [`EngineReport::trace`] carries the span trace of the
/// run, at whatever detail the ambient `bdsm_obs` level recorded — plus
/// the [`StageTimings`] view derived from that trace.
///
/// # Errors
///
/// Same as [`reduce_network`].
pub fn reduce_network_traced(
    net: &Network,
    opts: &ReductionOpts,
) -> Result<(ReducedModel, EngineReport, StageTimings)> {
    ReductionEngine::new(net, opts)?.run_timed()
}

/// [`reduce_network`] with the engine's audit report attached: the final
/// shift set, the per-round residual trajectory of the adaptive loop, and
/// whether the residual tolerance was certified.
///
/// # Errors
///
/// Same as [`reduce_network`].
pub fn reduce_network_with_report(
    net: &Network,
    opts: &ReductionOpts,
) -> Result<(ReducedModel, EngineReport)> {
    ReductionEngine::new(net, opts)?.run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::rc_ladder;
    use crate::transfer::{eval_transfer, transfer_rel_err, TransferEvaluator};
    use bdsm_linalg::Complex64;

    fn ladder_opts(k: usize, s0: f64, moments: usize) -> ReductionOpts {
        ReductionOpts {
            num_blocks: k,
            krylov: KrylovOpts {
                expansion_points: vec![s0],
                jomega_points: vec![],
                moments_per_point: moments,
                deflation_tol: 1e-10,
                ortho: Default::default(),
            },
            rank_tol: 1e-12,
            max_reduced_dim: None,
            backend: SolverBackend::Sparse,
            ..ReductionOpts::default()
        }
    }

    #[test]
    fn pipeline_produces_consistent_shapes() {
        let net = rc_ladder(24, 1.0, 1e-3, 2.0);
        let rm = reduce_network(&net, &ladder_opts(3, 1.0e3, 3)).unwrap();
        assert_eq!(rm.full_dim(), 24);
        assert_eq!(rm.block_sizes.iter().sum::<usize>(), 24);
        let q = rm.reduced_dim();
        assert!(q < 24);
        assert_eq!(rm.g.shape(), (q, q));
        assert_eq!(rm.c.shape(), (q, q));
        assert_eq!(rm.b.shape(), (q, 2));
        assert_eq!(rm.l.shape(), (2, q));
        assert_eq!(rm.projector.num_blocks(), 3);
        assert!(rm.projector.orthonormality_error() < 1e-12);
    }

    #[test]
    fn dense_backend_is_consistent_with_sparse_backend() {
        let net = rc_ladder(30, 1.0, 1e-3, 2.0);
        let mut opts = ladder_opts(3, 1.0e3, 3);
        let rm_sparse = reduce_network(&net, &opts).unwrap();
        assert_eq!(rm_sparse.backend, SolverBackend::Sparse);
        opts.backend = SolverBackend::Dense;
        let rm_dense = reduce_network(&net, &opts).unwrap();
        assert_eq!(rm_dense.backend, SolverBackend::Dense);
        assert_eq!(rm_sparse.reduced_dim(), rm_dense.reduced_dim());
        // Same reduced transfer function from both backends.
        for &w in &[1.0e2, 5.0e2, 2.0e3] {
            let s = Complex64::jomega(w);
            let hs =
                eval_transfer(&rm_sparse.g, &rm_sparse.c, &rm_sparse.b, &rm_sparse.l, s).unwrap();
            let hd = eval_transfer(&rm_dense.g, &rm_dense.c, &rm_dense.b, &rm_dense.l, s).unwrap();
            assert!(
                transfer_rel_err(&hd, &hs) < 1e-9,
                "backends disagree at ω={w}"
            );
        }
    }

    #[test]
    fn reduced_model_matches_at_expansion_point_region() {
        let net = rc_ladder(24, 1.0, 1e-3, 2.0);
        let s0 = 1.0e3;
        let rm = reduce_network(&net, &ladder_opts(3, s0, 4)).unwrap();
        // Near the (real) expansion point the match must be tight.
        let s = Complex64::jomega(s0 * 0.5);
        let hf = {
            let full = rm.full.to_dense();
            let ev = TransferEvaluator::new(full.g, full.c, full.b, full.l).unwrap();
            ev.eval(s).unwrap()
        };
        let hr = eval_transfer(&rm.g, &rm.c, &rm.b, &rm.l, s).unwrap();
        assert!(transfer_rel_err(&hf, &hr) < 1e-8);
    }

    #[test]
    fn permutation_preserves_transfer_function() {
        // The permuted full model must have the same transfer function as
        // the original descriptor: H is invariant under state reordering.
        let net = rc_ladder(12, 1.0, 1e-3, 2.0);
        let desc = bdsm_circuit::mna::assemble(&net).unwrap();
        let rm = reduce_network(&net, &ladder_opts(2, 1.0e3, 2)).unwrap();
        let s = Complex64::jomega(500.0);
        let h_orig = eval_transfer(
            &desc.g.to_dense(),
            &desc.c.to_dense(),
            &desc.b.to_dense(),
            &desc.l.to_dense(),
            s,
        )
        .unwrap();
        let full = rm.full.to_dense();
        let h_perm = eval_transfer(&full.g, &full.c, &full.b, &full.l, s).unwrap();
        assert!(transfer_rel_err(&h_orig, &h_perm) < 1e-13);
    }

    #[test]
    fn portless_network_rejected() {
        let mut net = Network::new();
        let a = net.add_bus("a");
        net.add_resistor(a, bdsm_circuit::GROUND, 1.0).unwrap();
        assert!(matches!(
            reduce_network(&net, &ReductionOpts::default()),
            Err(CoreError::Circuit(CircuitError::NoPorts))
        ));
    }

    #[test]
    fn budget_below_block_count_rejected() {
        let net = rc_ladder(12, 1.0, 1e-3, 2.0);
        let mut opts = ladder_opts(3, 1.0e3, 2);
        opts.max_reduced_dim = Some(2); // 3 blocks need at least 3 states
        assert!(matches!(
            reduce_network(&net, &opts),
            Err(CoreError::InvalidOptions(_))
        ));
    }

    #[test]
    fn error_conversions_and_display() {
        let e: CoreError = CircuitError::EmptyNetwork.into();
        assert!(e.to_string().contains("circuit"));
        let e: CoreError = LinalgError::Singular { at: 3 }.into();
        assert!(e.to_string().contains("singular"));
        assert!(std::error::Error::source(&e).is_some());
    }
}
