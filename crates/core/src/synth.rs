//! Synthetic power-grid topologies for tests and benchmarks.
//!
//! Three families, in increasing structural richness, all built so that
//! every bus carries a shunt capacitor (making `C` diagonal and positive,
//! which both keeps the descriptor regular and enables the Hessenberg fast
//! path of the transfer evaluator):
//!
//! - [`rc_ladder`] — the classic driver/line/load chain;
//! - [`rc_grid`] — a 2-D mesh, the paper's structured power-grid testcase;
//! - [`ieee_like_feeder`] — a radial substation-plus-feeders layout with
//!   series line inductance, loosely shaped after IEEE distribution feeders.

use bdsm_circuit::{Network, GROUND};

/// An RC transmission-line ladder with `sections` buses.
///
/// Series resistors `r` chain the buses; every bus has a shunt capacitor
/// `c`; the last bus carries a load resistor `load_r` to ground (which keeps
/// `G` nonsingular). Ports (current injection + voltage probe) sit at the
/// first and last bus.
///
/// # Panics
///
/// Panics if `sections == 0` or any value is non-positive (synthetic
/// generators are test infrastructure; garbage input is a programmer error).
pub fn rc_ladder(sections: usize, r: f64, c: f64, load_r: f64) -> Network {
    assert!(sections > 0, "rc_ladder: need at least one section");
    let mut net = Network::new();
    let buses: Vec<usize> = (0..sections)
        .map(|i| net.add_bus(format!("n{i}")))
        .collect();
    for w in buses.windows(2) {
        net.add_resistor(w[0], w[1], r)
            .expect("valid ladder resistor");
    }
    for &b in &buses {
        net.add_capacitor(b, GROUND, c)
            .expect("valid ladder capacitor");
    }
    net.add_resistor(buses[sections - 1], GROUND, load_r)
        .expect("valid load resistor");
    net.add_port(buses[0]).expect("valid driver port");
    net.add_port(buses[sections - 1]).expect("valid load port");
    net
}

/// An RC ladder with distributed load taps: like [`rc_ladder`], but every
/// `load_stride`-th bus also carries a shunt load resistor `load_r` to
/// ground, the way distribution lines serve loads along their length.
/// Distributed shunt conductance bounds the slowest poles away from zero,
/// which is both physically typical and much friendlier to moment matching.
///
/// # Panics
///
/// Panics if `sections == 0`, `load_stride == 0`, or any value is
/// non-positive.
pub fn rc_ladder_loaded(
    sections: usize,
    r: f64,
    c: f64,
    load_r: f64,
    load_stride: usize,
) -> Network {
    assert!(load_stride > 0, "rc_ladder_loaded: stride must be positive");
    let mut net = rc_ladder(sections, r, c, load_r);
    for bus in (0..sections).step_by(load_stride) {
        net.add_resistor(bus, GROUND, load_r)
            .expect("valid load tap");
    }
    net
}

/// An `rows × cols` RC mesh grid.
///
/// Resistors `r` connect 4-neighbours; every bus has a shunt capacitor `c`;
/// load resistors `load_r` tie the four corners to ground. Ports sit at the
/// top-left and bottom-right corners.
///
/// # Panics
///
/// Panics if either dimension is zero or any value is non-positive.
pub fn rc_grid(rows: usize, cols: usize, r: f64, c: f64, load_r: f64) -> Network {
    assert!(rows > 0 && cols > 0, "rc_grid: dimensions must be positive");
    let mut net = Network::new();
    let mut idx = vec![vec![0usize; cols]; rows];
    for (i, row) in idx.iter_mut().enumerate() {
        for (j, slot) in row.iter_mut().enumerate() {
            *slot = net.add_bus(format!("g{i}_{j}"));
        }
    }
    for i in 0..rows {
        for j in 0..cols {
            if j + 1 < cols {
                net.add_resistor(idx[i][j], idx[i][j + 1], r)
                    .expect("grid resistor");
            }
            if i + 1 < rows {
                net.add_resistor(idx[i][j], idx[i + 1][j], r)
                    .expect("grid resistor");
            }
            net.add_capacitor(idx[i][j], GROUND, c)
                .expect("grid capacitor");
        }
    }
    for &(ci, cj) in &[(0, 0), (0, cols - 1), (rows - 1, 0), (rows - 1, cols - 1)] {
        net.add_resistor(idx[ci][cj], GROUND, load_r)
            .expect("corner load");
    }
    net.add_port(idx[0][0]).expect("grid port");
    net.add_port(idx[rows - 1][cols - 1]).expect("grid port");
    net
}

/// A radial, IEEE-distribution-flavoured layout: one substation bus feeding
/// `feeders` chains of `buses_per_feeder` buses each.
///
/// Each feeder starts with a series inductor `line_l` (line reactance), then
/// chains resistors `r`; every bus has a shunt capacitor `c`, and each
/// feeder end carries a load resistor `load_r` to ground. Ports sit at the
/// substation and at the end of the first feeder.
///
/// # Panics
///
/// Panics if `feeders == 0` or `buses_per_feeder == 0` or any value is
/// non-positive.
pub fn ieee_like_feeder(
    feeders: usize,
    buses_per_feeder: usize,
    r: f64,
    c: f64,
    line_l: f64,
    load_r: f64,
) -> Network {
    assert!(
        feeders > 0 && buses_per_feeder > 0,
        "ieee_like_feeder: need at least one feeder and one bus"
    );
    let mut net = Network::new();
    let substation = net.add_bus("substation");
    net.add_capacitor(substation, GROUND, c)
        .expect("substation capacitor");
    net.add_resistor(substation, GROUND, load_r)
        .expect("substation ground tie");
    let mut first_feeder_end = substation;
    for f in 0..feeders {
        let mut prev = substation;
        for k in 0..buses_per_feeder {
            let bus = net.add_bus(format!("f{f}_{k}"));
            if k == 0 {
                net.add_inductor(prev, bus, line_l)
                    .expect("feeder line inductor");
            } else {
                net.add_resistor(prev, bus, r).expect("feeder resistor");
            }
            net.add_capacitor(bus, GROUND, c).expect("feeder capacitor");
            // Load taps every tenth bus: feeders serve customers along
            // their whole length, not just at the end.
            if k % 10 == 5 {
                net.add_resistor(bus, GROUND, load_r)
                    .expect("feeder load tap");
            }
            prev = bus;
        }
        net.add_resistor(prev, GROUND, load_r).expect("feeder load");
        if f == 0 {
            first_feeder_end = prev;
        }
    }
    net.add_port(substation).expect("substation port");
    net.add_port(first_feeder_end).expect("feeder-end port");
    net
}

#[cfg(test)]
mod tests {
    use super::*;
    use bdsm_circuit::mna;

    #[test]
    fn ladder_shapes() {
        let net = rc_ladder(10, 1.0, 1e-3, 2.0);
        assert_eq!(net.num_buses(), 10);
        assert_eq!(net.num_inputs(), 2);
        assert_eq!(net.num_outputs(), 2);
        let d = mna::assemble(&net).unwrap();
        assert_eq!(d.dim(), 10);
    }

    #[test]
    fn grid_is_connected_with_expected_size() {
        let net = rc_grid(4, 5, 1.0, 1e-3, 2.0);
        assert_eq!(net.num_buses(), 20);
        // BFS from bus 0 must reach everything.
        let adj = net.adjacency();
        let mut seen = [false; 20];
        seen[0] = true;
        let mut stack = vec![0usize];
        while let Some(u) = stack.pop() {
            for &v in &adj[u] {
                if !seen[v] {
                    seen[v] = true;
                    stack.push(v);
                }
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn feeder_has_inductor_states() {
        let net = ieee_like_feeder(3, 4, 1.0, 1e-3, 1e-4, 5.0);
        assert_eq!(net.num_buses(), 1 + 3 * 4);
        let d = mna::assemble(&net).unwrap();
        // One inductor current state per feeder.
        assert_eq!(d.dim(), 13 + 3);
    }

    #[test]
    #[should_panic(expected = "at least one section")]
    fn ladder_rejects_zero_sections() {
        rc_ladder(0, 1.0, 1.0, 1.0);
    }
}
