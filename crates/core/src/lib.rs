//! BDSM reduction engine: block-Krylov moment matching, block-diagonal
//! projection, congruence transforms, and transfer-function evaluation.
//!
//! The crate implements the paper's core contribution — a block-diagonal
//! structured model reduction scheme for power grid networks — on top of the
//! circuit layer (`bdsm-circuit`) and the dense kernels (`bdsm-linalg`):
//!
//! - [`engine`] is the staged pipeline (`Plan → Basis → Project →
//!   Certify`) behind every reduction: each stage is a public method of
//!   [`engine::ReductionEngine`], the expansion points are either fixed
//!   or chosen by greedy residual-driven adaptation
//!   ([`engine::ShiftStrategy`]), and interface buses can be preserved
//!   exactly ([`projector::InterfacePolicy`]);
//! - [`krylov`] builds a global moment-matching basis with block Arnoldi,
//!   through either the sparse factorization subsystem (`bdsm-sparse`,
//!   default, with blocked multi-RHS start blocks) or the dense oracle
//!   kernels;
//! - [`par`] is the threading substrate: scoped-thread fan-out over a
//!   shared work queue (no external deps), used by the per-point Krylov
//!   factorizations, the per-block SVDs, the block-pair congruence, and
//!   the per-frequency sweeps — all bitwise-deterministic for any worker
//!   count;
//! - [`projector`] splits it into the structured projector
//!   `V = diag(V₁,…,V_k)` (per-block SVD compression fanned out over
//!   [`par`]; identity columns on interface states under the exact
//!   policy) and applies congruence transforms, including a sparse-input
//!   variant that never densifies the full model and fans out per block
//!   pair;
//! - [`reduce`] wires network → MNA → partition → basis → reduced model,
//!   dispatching on [`reduce::SolverBackend`];
//!   [`reduce::reduce_network_timed`] additionally reports per-stage wall
//!   times, and [`reduce::reduce_network_with_report`] the adaptive
//!   engine's audit trail;
//! - [`certify`] is the trust layer of the Certify stage: typed
//!   passivity/stability certificates of the reduced pencil (eigenvalue
//!   margins, positive-real sampling with violation localization,
//!   Lyapunov/spectral verification) plus per-band a posteriori error
//!   bounds, recorded on [`engine::EngineReport::certificate`];
//! - [`transfer`] evaluates `H(s) = L(G + sC)⁻¹B` for full and reduced
//!   models so they can be compared frequency by frequency — dense,
//!   Hessenberg, and sparse ([`transfer::SparseTransferEvaluator`]) paths,
//!   with `jω` sweeps fanned out per frequency;
//! - [`synth`] generates ladder/grid/feeder test topologies.
//!
//! # Examples
//!
//! ```
//! use bdsm_core::{reduce::reduce_network, reduce::ReductionOpts, synth};
//!
//! let net = synth::rc_ladder(40, 1.0, 1e-3, 2.0);
//! let mut opts = ReductionOpts::default();
//! opts.krylov.expansion_points = vec![1.0e3];
//! let rm = reduce_network(&net, &opts)?;
//! assert!(rm.reduced_dim() < rm.full_dim());
//! # Ok::<(), bdsm_core::CoreError>(())
//! ```

pub mod certify;
pub mod engine;
pub mod krylov;
pub mod par;
pub mod projector;
pub mod reduce;
pub mod synth;
pub mod transfer;

pub use certify::{
    certify_reduced, CertStatus, Certificate, CertifyOpts, CheckOutcome, ErrorBand,
    PassivityCertificate, ResidualSweep, StabilityCertificate,
};
pub use engine::{
    AdaptiveShiftOpts, EngineReport, Plan, ReductionEngine, Rom, RoundRecord, ShiftStrategy,
};
pub use krylov::{
    collect_points, global_krylov_basis, global_krylov_basis_sparse, ExpansionPoint, KrylovOpts,
};
pub use projector::{BlockDiagProjector, InterfacePolicy};
pub use reduce::{
    reduce_network, reduce_network_timed, reduce_network_with_report, CoreError, DenseDescriptor,
    ReducedModel, ReductionOpts, SolverBackend, SparseDescriptor, StageTimings,
};
pub use transfer::{
    eval_transfer, eval_transfer_factored, transfer_rel_err, CMatrix, SparseTransferEvaluator,
    TransferEvaluator, ZLu,
};

/// Version of the reduction engine, recorded in ROM artifact provenance so
/// a loaded artifact names the code that built it.
pub const ENGINE_VERSION: &str = env!("CARGO_PKG_VERSION");
