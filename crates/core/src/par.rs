//! Scoped-thread fan-out utilities — the reduction engine's threading
//! model, in one place.
//!
//! # Threading model
//!
//! Everything runs on `std::thread::scope` — plain scoped OS threads, no
//! external dependencies, no global pool, no work lingering past the call
//! that spawned it. Each [`parallel_map`] call spawns up to
//! [`worker_count`] workers that drain a **shared work queue** (an atomic
//! next-index counter over the item slice), so uneven item costs —
//! expansion points whose factorizations fill differently, frequency
//! samples near poles — balance dynamically instead of being pinned by
//! static chunking.
//!
//! Three pipeline stages fan out through this module: per-block SVD
//! compression in the projector, per-expansion-point Krylov factorization,
//! and per-frequency transfer sweeps. [`parallel_map_with`] additionally
//! gives every worker a private state value (in practice a
//! `bdsm_sparse::LuWorkspace`), so refactorization scratch is allocated
//! once per worker rather than once per item.
//!
//! # The factor-queue pipeline
//!
//! [`pipelined_map_with`] splits each item into a **produce** stage and a
//! **consume** stage connected by a shared ready queue. The Krylov basis
//! stage is the motivating client: *produce* is a shift's numeric
//! refactorization (`ShiftedPencil::factor_*_with` on a worker's private
//! workspace), *consume* is that shift's block recurrence. Workers prefer
//! draining the ready queue (keeping the pipeline shallow) and otherwise
//! claim the next unfactored shift, so refactorization of upcoming shifts
//! overlaps basis accumulation of earlier ones — with 3–8 shifts this
//! roughly doubles the usable parallelism over a plain per-shift map, and
//! uneven shifts (complex vs real factorizations) rebalance dynamically.
//! Both stages must be pure functions of their item; the per-worker state
//! is scratch only. Queue occupancy is recorded on the
//! `bdsm_obs` metrics registry (`factor_queue_peak`).
//!
//! # Determinism
//!
//! Results are returned **in item order**, and each item's output is a
//! pure function of that item alone — workers never share mutable state
//! beyond the queue cursors. Consequently every map is
//! bitwise-deterministic regardless of the worker count: running with
//! `BDSM_THREADS=1` and with 32 workers produces identical bytes. The same
//! holds for [`pipelined_map_with`] (which worker factors or consumes a
//! shift never changes its bytes) and for the Krylov **panel-merge tree**
//! built on [`parallel_map`]: the tree's shape is fixed by the number of
//! expansion points alone, every node merge is a pure function of its two
//! child panels, and level results are collected in node order — worker
//! count only decides how many sibling merges run concurrently, never
//! which merges happen or in what operand order. The reduction pipeline's
//! tests assert exactly that on whole reduced models.
//!
//! # Sizing
//!
//! The worker count is `min(available_parallelism, items)`, overridable
//! with the `BDSM_THREADS` environment variable (useful for pinning CI
//! measurements or for forcing the threaded code paths on small machines).
//! One item — or one hardware thread — short-circuits to a plain serial
//! loop with zero spawn overhead.
//!
//! # Observability
//!
//! When the caller holds a live `bdsm_obs` trace session, each spawned
//! worker records a `par.worker` span (items claimed, busy time, queue
//! wait) plus whatever spans the mapped closure opens; worker buffers
//! are merged back **in spawn order**, so traces are as deterministic
//! as the results. With observability off this costs one atomic load
//! per fan-out.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};

/// Upper bound on workers per fan-out: the `BDSM_THREADS` override when
/// set to a positive integer, otherwise the machine's available
/// parallelism.
pub fn max_threads() -> usize {
    if let Ok(v) = std::env::var("BDSM_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
}

/// Workers a fan-out over `items` work items will use: never more threads
/// than items, never fewer than one.
pub fn worker_count(items: usize) -> usize {
    max_threads().clamp(1, items.max(1))
}

/// Maps `f` over `items` on scoped worker threads, returning outputs in
/// item order. `f` receives the item index alongside the item so callers
/// can label or seed per-item work deterministically.
pub fn parallel_map<I, O, F>(items: &[I], f: F) -> Vec<O>
where
    I: Sync,
    O: Send,
    F: Fn(usize, &I) -> O + Sync,
{
    parallel_map_with(items, || (), |(), i, item| f(i, item))
}

/// Like [`parallel_map`], but every worker first builds a private state
/// with `init` and threads it through all items it claims — the pattern
/// for reusable factorization workspaces.
pub fn parallel_map_with<S, I, O, FS, F>(items: &[I], init: FS, f: F) -> Vec<O>
where
    I: Sync,
    O: Send,
    FS: Fn() -> S + Sync,
    F: Fn(&mut S, usize, &I) -> O + Sync,
{
    let workers = worker_count(items.len());
    if workers <= 1 || items.len() <= 1 {
        let mut state = init();
        return items
            .iter()
            .enumerate()
            .map(|(i, item)| {
                bdsm_obs::faultpoint!("par.item");
                f(&mut state, i, item)
            })
            .collect();
    }
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<O>> = std::iter::repeat_with(|| None).take(items.len()).collect();
    // Inert (and free) unless the calling thread holds a live trace
    // session: workers then record their spans into private buffers that
    // are adopted below in spawn order, keeping traces deterministic.
    let obs = bdsm_obs::fork();
    std::thread::scope(|scope| {
        let next = &next;
        let init = &init;
        let f = &f;
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                scope.spawn(move || {
                    bdsm_obs::with_worker(obs, w as u32 + 1, || {
                        let mut span = bdsm_obs::span!("par.worker", worker = w);
                        let mut state = init();
                        let mut out: Vec<(usize, O)> = Vec::new();
                        let mut busy_ns = 0u64;
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= items.len() {
                                break;
                            }
                            let t = span.is_recording().then(std::time::Instant::now);
                            bdsm_obs::faultpoint!("par.item");
                            out.push((i, f(&mut state, i, &items[i])));
                            if let Some(t) = t {
                                busy_ns += t.elapsed().as_nanos() as u64;
                            }
                        }
                        if span.is_recording() {
                            // Queue wait = lifetime minus time spent in items.
                            let wait_ns = span.elapsed_ns().saturating_sub(busy_ns);
                            span.attr("items", out.len());
                            span.attr("busy_us", busy_ns / 1_000);
                            span.attr("wait_us", wait_ns / 1_000);
                        }
                        out
                    })
                })
            })
            .collect();
        for h in handles {
            let (out, events) = h.join().expect("fan-out worker panicked");
            bdsm_obs::adopt(events);
            for (i, o) in out {
                slots[i] = Some(o);
            }
        }
    });
    slots
        .into_iter()
        .map(|o| o.expect("every queue index was claimed exactly once"))
        .collect()
}

/// A worker's next unit of work in the two-stage pipeline.
enum Step<P> {
    Produce(usize),
    Consume(usize, P),
    Exit,
}

/// Two-stage pipelined fan-out: every item is first `produce`d, then
/// `consume`d, and the stages of *different* items overlap freely across
/// workers (the factor queue — see the module docs). Outputs are returned
/// in item order.
///
/// Workers prefer consuming ready items over producing new ones, so the
/// queue between the stages stays shallow; when nothing is ready they
/// claim the next unproduced item, and when everything is produced they
/// block until the remaining consumes finish. Per-worker `init` state is
/// threaded through both stages exactly as in [`parallel_map_with`], and
/// both stages must be pure functions of their item for the map to stay
/// bitwise-deterministic — which worker runs a stage is scheduling, never
/// semantics.
pub fn pipelined_map_with<S, I, P, O, FS, FP, FC>(
    items: &[I],
    init: FS,
    produce: FP,
    consume: FC,
) -> Vec<O>
where
    I: Sync,
    P: Send,
    O: Send,
    FS: Fn() -> S + Sync,
    FP: Fn(&mut S, usize, &I) -> P + Sync,
    FC: Fn(&mut S, usize, &I, P) -> O + Sync,
{
    // Two tasks per item, so the pipeline can use up to twice as many
    // workers as there are items.
    let workers = max_threads().clamp(1, (2 * items.len()).max(1));
    if workers <= 1 || items.len() <= 1 {
        let mut state = init();
        return items
            .iter()
            .enumerate()
            .map(|(i, item)| {
                bdsm_obs::faultpoint!("par.item");
                let p = produce(&mut state, i, item);
                consume(&mut state, i, item, p)
            })
            .collect();
    }
    let next_produce = AtomicUsize::new(0);
    let consumed = AtomicUsize::new(0);
    let peak_depth = AtomicUsize::new(0);
    let ready: Mutex<VecDeque<(usize, P)>> = Mutex::new(VecDeque::new());
    let wakeup = Condvar::new();
    let mut slots: Vec<Option<O>> = std::iter::repeat_with(|| None).take(items.len()).collect();
    let obs = bdsm_obs::fork();
    std::thread::scope(|scope| {
        let (next_produce, consumed, peak_depth) = (&next_produce, &consumed, &peak_depth);
        let (ready, wakeup) = (&ready, &wakeup);
        let (init, produce, consume) = (&init, &produce, &consume);
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                scope.spawn(move || {
                    bdsm_obs::with_worker(obs, w as u32 + 1, || {
                        let mut span = bdsm_obs::span!("par.worker", worker = w);
                        let mut state = init();
                        let mut out: Vec<(usize, O)> = Vec::new();
                        let mut tasks = 0usize;
                        let mut busy_ns = 0u64;
                        loop {
                            let step = {
                                let mut q = ready.lock().expect("factor queue poisoned");
                                loop {
                                    // Drain ready work first: consuming
                                    // promptly keeps the queue shallow and
                                    // the memory high-water mark low.
                                    if let Some((i, p)) = q.pop_front() {
                                        break Step::Consume(i, p);
                                    }
                                    let i = next_produce.fetch_add(1, Ordering::Relaxed);
                                    if i < items.len() {
                                        break Step::Produce(i);
                                    }
                                    if consumed.load(Ordering::Acquire) >= items.len() {
                                        break Step::Exit;
                                    }
                                    // Everything is produced or in flight;
                                    // wait for a producer or the final
                                    // consumer to wake us.
                                    q = wakeup.wait(q).expect("factor queue poisoned");
                                }
                            };
                            let t = span.is_recording().then(std::time::Instant::now);
                            match step {
                                Step::Produce(i) => {
                                    bdsm_obs::faultpoint!("par.item");
                                    let p = produce(&mut state, i, &items[i]);
                                    let mut q = ready.lock().expect("factor queue poisoned");
                                    q.push_back((i, p));
                                    peak_depth.fetch_max(q.len(), Ordering::Relaxed);
                                    drop(q);
                                    wakeup.notify_one();
                                }
                                Step::Consume(i, p) => {
                                    out.push((i, consume(&mut state, i, &items[i], p)));
                                    if consumed.fetch_add(1, Ordering::AcqRel) + 1 >= items.len() {
                                        // Last item done: take the lock so
                                        // no waiter is between its check
                                        // and its wait, then wake everyone.
                                        drop(ready.lock().expect("factor queue poisoned"));
                                        wakeup.notify_all();
                                    }
                                }
                                Step::Exit => break,
                            }
                            tasks += 1;
                            if let Some(t) = t {
                                busy_ns += t.elapsed().as_nanos() as u64;
                            }
                        }
                        if span.is_recording() {
                            let wait_ns = span.elapsed_ns().saturating_sub(busy_ns);
                            span.attr("items", tasks);
                            span.attr("busy_us", busy_ns / 1_000);
                            span.attr("wait_us", wait_ns / 1_000);
                        }
                        out
                    })
                })
            })
            .collect();
        for h in handles {
            let (out, events) = h.join().expect("fan-out worker panicked");
            bdsm_obs::adopt(events);
            for (i, o) in out {
                slots[i] = Some(o);
            }
        }
    });
    if bdsm_obs::enabled(bdsm_obs::ObsLevel::Timings) {
        bdsm_obs::metrics()
            .factor_queue_peak
            .set(peak_depth.load(Ordering::Relaxed) as u64);
    }
    slots
        .into_iter()
        .map(|o| o.expect("every pipeline item was consumed exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_in_order() {
        let items: Vec<usize> = (0..257).collect();
        let out = parallel_map(&items, |i, &v| {
            assert_eq!(i, v);
            v * 3 + 1
        });
        assert_eq!(out.len(), items.len());
        for (i, o) in out.iter().enumerate() {
            assert_eq!(*o, i * 3 + 1);
        }
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let none: Vec<u32> = Vec::new();
        assert!(parallel_map(&none, |_, v| *v).is_empty());
        assert_eq!(parallel_map(&[7u32], |_, v| v + 1), vec![8]);
    }

    #[test]
    fn worker_state_is_reused_not_shared() {
        // Each worker's counter only ever increments within that worker,
        // and the per-item outputs stay a pure function of the item.
        let items: Vec<usize> = (0..64).collect();
        let out = parallel_map_with(
            &items,
            || 0usize,
            |calls, _, &v| {
                *calls += 1;
                (v * v, *calls)
            },
        );
        for (i, &(sq, calls)) in out.iter().enumerate() {
            assert_eq!(sq, i * i);
            assert!(calls >= 1 && calls <= items.len());
        }
    }

    #[test]
    fn pipelined_map_runs_both_stages_in_order() {
        let items: Vec<usize> = (0..197).collect();
        let out = pipelined_map_with(
            &items,
            || 0usize,
            |_, i, &v| {
                assert_eq!(i, v);
                v * 2
            },
            |_, i, &v, p| {
                assert_eq!(p, v * 2);
                p + i
            },
        );
        assert_eq!(out.len(), items.len());
        for (i, &o) in out.iter().enumerate() {
            assert_eq!(o, i * 3);
        }
    }

    #[test]
    fn pipelined_empty_and_singleton_inputs() {
        let none: Vec<u32> = Vec::new();
        assert!(pipelined_map_with(&none, || (), |(), _, v| *v, |(), _, _, p| p).is_empty());
        let one = pipelined_map_with(&[5u32], || (), |(), _, v| v + 1, |(), _, _, p| p * 10);
        assert_eq!(one, vec![60]);
    }

    #[test]
    fn pipelined_state_spans_both_stages() {
        // The same per-worker state value must be visible to produce and
        // consume; outputs stay a pure function of the item regardless.
        let items: Vec<usize> = (0..64).collect();
        let out = pipelined_map_with(
            &items,
            || 0usize,
            |calls, _, &v| {
                *calls += 1;
                v
            },
            |calls, _, _, p: usize| {
                *calls += 1;
                (p, *calls)
            },
        );
        for (i, &(v, calls)) in out.iter().enumerate() {
            assert_eq!(v, i);
            assert!(calls >= 2 && calls <= 2 * items.len());
        }
    }

    #[test]
    fn worker_count_clamps() {
        assert_eq!(worker_count(0), 1);
        assert_eq!(worker_count(1), 1);
        assert!(worker_count(1 << 20) >= 1);
        assert!(max_threads() >= 1);
    }
}
