//! Block-diagonal projection `V = diag(V₁, …, V_k)` and congruence
//! transforms — the "structured" part of BDSM.
//!
//! Given a global moment-matching basis `V_g` and a block partition of the
//! states, each block takes the column space of its own row slice of `V_g`
//! (compressed by SVD with a rank tolerance). Because
//! `span(diag(V₁,…,V_k)) ⊇ span(V_g)`, the block-diagonal projector matches
//! at least as many moments as the global one while keeping the reduced
//! matrices block-structured — sparsity the flat projector destroys.

use bdsm_linalg::{LinalgError, Matrix, Result, Svd};
use bdsm_sparse::{CscMatrix, Scalar};

/// An orthonormal block-diagonal projection matrix.
#[derive(Debug, Clone)]
pub struct BlockDiagProjector {
    blocks: Vec<Matrix>,
    row_offsets: Vec<usize>,
    col_offsets: Vec<usize>,
}

impl BlockDiagProjector {
    /// Builds the projector from a global basis and per-block state counts.
    ///
    /// Block `i` keeps the left singular vectors of its (column-normalized)
    /// row slice of `global` whose singular values exceed `rank_tol · σ_max`,
    /// capped at `max_block_dim` dominant directions when given (the knob
    /// that enforces a reduced-dimension budget). A block whose slice is
    /// numerically zero keeps a single canonical unit vector so every block
    /// retains at least one reduced state.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::InvalidArgument`] if the block sizes do not
    /// sum to the basis row count or contain a zero, and propagates SVD
    /// failures.
    pub fn from_global_basis(
        global: &Matrix,
        block_sizes: &[usize],
        rank_tol: f64,
        max_block_dim: Option<usize>,
    ) -> Result<Self> {
        if block_sizes.iter().sum::<usize>() != global.nrows() {
            return Err(LinalgError::InvalidArgument {
                what: "projector: block sizes must sum to the state dimension",
            });
        }
        if block_sizes.contains(&0) {
            return Err(LinalgError::InvalidArgument {
                what: "projector: empty blocks are not allowed",
            });
        }
        // Blocks are independent, so the per-block SVD compression fans out
        // over the shared work queue of `crate::par` — dynamic scheduling
        // absorbs whatever imbalance the rank structure introduces, and the
        // results land in block order, keeping the projector deterministic
        // for any worker count.
        let mut slices = Vec::with_capacity(block_sizes.len());
        let mut row0 = 0;
        for &size in block_sizes {
            slices.push(global.submatrix(row0, row0 + size, 0, global.ncols()));
            row0 += size;
        }
        let blocks = crate::par::parallel_map(&slices, |_, slice| {
            compress_block_slice(slice, rank_tol, max_block_dim)
        })
        .into_iter()
        .collect::<Result<Vec<Matrix>>>()?;
        Ok(Self::from_blocks(blocks))
    }

    /// Congruence transform `VᵀAV` of a *sparse* matrix, accumulating one
    /// rank-one block contribution per stored entry — `O(nnz · qᵢqⱼ)` work
    /// and no `n × q` intermediate, which is what keeps the projection step
    /// viable at `n ≫ 10⁴`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `a` is not `n × n`.
    pub fn project_square_sparse(&self, a: &CscMatrix<f64>) -> Result<Matrix> {
        let n = self.nrows();
        if a.shape() != (n, n) {
            return Err(LinalgError::ShapeMismatch {
                op: "project-square-sparse",
                lhs: (n, n),
                rhs: a.shape(),
            });
        }
        // row → owning block, computable once from the row offsets.
        let mut block_of_row = vec![0usize; n];
        for bi in 0..self.num_blocks() {
            block_of_row[self.row_offsets[bi]..self.row_offsets[bi + 1]].fill(bi);
        }
        let mut out = Matrix::zeros(self.ncols(), self.ncols());
        for (r, c, v) in a.iter() {
            if Scalar::is_zero(v) {
                continue;
            }
            let (bi, bj) = (block_of_row[r], block_of_row[c]);
            let vi = &self.blocks[bi];
            let vj = &self.blocks[bj];
            let li = r - self.row_offsets[bi];
            let lj = c - self.row_offsets[bj];
            let (oi, oj) = (self.col_offsets[bi], self.col_offsets[bj]);
            // out[oi + a, oj + b] += Vi[li, a] · v · Vj[lj, b].
            for aa in 0..vi.ncols() {
                let w = vi[(li, aa)] * v;
                if w == 0.0 {
                    continue;
                }
                for bb in 0..vj.ncols() {
                    out[(oi + aa, oj + bb)] += w * vj[(lj, bb)];
                }
            }
        }
        Ok(out)
    }

    /// Assembles a projector directly from per-block orthonormal bases.
    pub fn from_blocks(blocks: Vec<Matrix>) -> Self {
        let mut row_offsets = vec![0];
        let mut col_offsets = vec![0];
        for b in &blocks {
            row_offsets.push(row_offsets.last().unwrap() + b.nrows());
            col_offsets.push(col_offsets.last().unwrap() + b.ncols());
        }
        BlockDiagProjector {
            blocks,
            row_offsets,
            col_offsets,
        }
    }

    /// Number of blocks `k`.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Full state dimension `n` (sum of block rows).
    pub fn nrows(&self) -> usize {
        *self.row_offsets.last().unwrap()
    }

    /// Reduced dimension `q` (sum of block columns).
    pub fn ncols(&self) -> usize {
        *self.col_offsets.last().unwrap()
    }

    /// The per-block reduced dimensions `qᵢ`.
    pub fn block_dims(&self) -> Vec<usize> {
        self.blocks.iter().map(Matrix::ncols).collect()
    }

    /// Basis of block `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn block(&self, i: usize) -> &Matrix {
        &self.blocks[i]
    }

    /// Densifies `V = diag(V₁, …, V_k)`; off-block entries are exactly zero.
    pub fn to_dense(&self) -> Matrix {
        let mut v = Matrix::zeros(self.nrows(), self.ncols());
        for (i, b) in self.blocks.iter().enumerate() {
            v.set_block(self.row_offsets[i], self.col_offsets[i], b);
        }
        v
    }

    /// Worst per-block deviation from orthonormality, `max‖VᵢᵀVᵢ − I‖_max`.
    pub fn orthonormality_error(&self) -> f64 {
        self.blocks
            .iter()
            .map(|b| {
                let gram = b.transpose().matmul(b).expect("square product");
                gram.sub(&Matrix::identity(b.ncols()))
                    .expect("same shape")
                    .norm_max()
            })
            .fold(0.0, f64::max)
    }

    /// Congruence transform `VᵀAV`, computed block-pair by block-pair so the
    /// cost scales with the block structure rather than `n²q²`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `a` is not `n × n`.
    pub fn project_square(&self, a: &Matrix) -> Result<Matrix> {
        let n = self.nrows();
        if a.shape() != (n, n) {
            return Err(LinalgError::ShapeMismatch {
                op: "project-square",
                lhs: (n, n),
                rhs: a.shape(),
            });
        }
        let mut out = Matrix::zeros(self.ncols(), self.ncols());
        for i in 0..self.num_blocks() {
            let (r0, r1) = (self.row_offsets[i], self.row_offsets[i + 1]);
            for j in 0..self.num_blocks() {
                let (c0, c1) = (self.row_offsets[j], self.row_offsets[j + 1]);
                let aij = a.submatrix(r0, r1, c0, c1);
                let prod = self.blocks[i]
                    .transpose()
                    .matmul(&aij)?
                    .matmul(&self.blocks[j])?;
                out.set_block(self.col_offsets[i], self.col_offsets[j], &prod);
            }
        }
        Ok(out)
    }

    /// Input projection `VᵀB` (`q × m`).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `b` does not have `n` rows.
    pub fn project_input(&self, b: &Matrix) -> Result<Matrix> {
        let n = self.nrows();
        if b.nrows() != n {
            return Err(LinalgError::ShapeMismatch {
                op: "project-input",
                lhs: (n, n),
                rhs: b.shape(),
            });
        }
        let mut out = Matrix::zeros(self.ncols(), b.ncols());
        for (i, blk) in self.blocks.iter().enumerate() {
            let slice = b.submatrix(self.row_offsets[i], self.row_offsets[i + 1], 0, b.ncols());
            let prod = blk.transpose().matmul(&slice)?;
            out.set_block(self.col_offsets[i], 0, &prod);
        }
        Ok(out)
    }

    /// Output projection `LV` (`p × q`).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `l` does not have `n` columns.
    pub fn project_output(&self, l: &Matrix) -> Result<Matrix> {
        let n = self.nrows();
        if l.ncols() != n {
            return Err(LinalgError::ShapeMismatch {
                op: "project-output",
                lhs: (n, n),
                rhs: l.shape(),
            });
        }
        let mut out = Matrix::zeros(l.nrows(), self.ncols());
        for (i, blk) in self.blocks.iter().enumerate() {
            let slice = l.submatrix(0, l.nrows(), self.row_offsets[i], self.row_offsets[i + 1]);
            let prod = slice.matmul(blk)?;
            out.set_block(0, self.col_offsets[i], &prod);
        }
        Ok(out)
    }
}

/// Compresses one block's row slice of the global basis into an
/// orthonormal block basis.
///
/// Krylov content decays exponentially away from the ports, so a far
/// block's slice can be tiny down to subnormal. Normalizing each column
/// (and dropping numerically dead ones) keeps every moment direction that
/// reaches the block, at any magnitude, and protects the Jacobi SVD from
/// under/overflow. A block whose slice is numerically zero keeps a single
/// canonical unit vector so every block retains at least one reduced state.
fn compress_block_slice(
    slice: &Matrix,
    rank_tol: f64,
    max_block_dim: Option<usize>,
) -> Result<Matrix> {
    let size = slice.nrows();
    let mut cols: Vec<Vec<f64>> = Vec::new();
    for j in 0..slice.ncols() {
        let mut col = slice.col(j);
        let norm = bdsm_linalg::vector::norm2(&col);
        if norm > 1e-150 {
            bdsm_linalg::vector::scale(1.0 / norm, &mut col);
            cols.push(col);
        }
    }
    if cols.is_empty() {
        let mut e = Matrix::zeros(size, 1);
        e[(0, 0)] = 1.0;
        return Ok(e);
    }
    let svd = Svd::compute(&Matrix::from_cols(&cols))?;
    let sigma_max = svd.sigma.first().copied().unwrap_or(0.0);
    let mut rank = svd
        .sigma
        .iter()
        .filter(|&&s| s > rank_tol * sigma_max)
        .count()
        .max(1);
    if let Some(cap) = max_block_dim {
        rank = rank.min(cap.max(1));
    }
    Ok(svd.u.submatrix(0, size, 0, rank))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_basis() -> Matrix {
        // 6 states, 2 basis columns with energy in every block.
        Matrix::from_fn(6, 2, |i, j| ((i + 1) as f64 * 0.3 + j as f64).sin() + 0.5)
    }

    #[test]
    fn block_structure_and_orthonormality() {
        let v = demo_basis();
        let p = BlockDiagProjector::from_global_basis(&v, &[2, 2, 2], 1e-12, None).unwrap();
        assert_eq!(p.num_blocks(), 3);
        assert_eq!(p.nrows(), 6);
        assert!(p.orthonormality_error() < 1e-13);
        let dense = p.to_dense();
        // Off-block entries are exactly zero by construction.
        let dims = p.block_dims();
        let mut c0 = 0;
        for (bi, &q) in dims.iter().enumerate() {
            for i in 0..6 {
                for j in c0..c0 + q {
                    if i / 2 != bi {
                        assert_eq!(dense[(i, j)], 0.0);
                    }
                }
            }
            c0 += q;
        }
    }

    #[test]
    fn span_contains_global_basis() {
        // diag-blocks span every row slice, so V Vᵀ v_g = v_g for each
        // global column.
        let vg = demo_basis();
        let p = BlockDiagProjector::from_global_basis(&vg, &[3, 3], 1e-12, None).unwrap();
        let v = p.to_dense();
        for j in 0..vg.ncols() {
            let col = vg.col(j);
            let coeffs = v.tr_matvec(&col).unwrap();
            let back = v.matvec(&coeffs).unwrap();
            let resid: Vec<f64> = col.iter().zip(&back).map(|(a, b)| a - b).collect();
            assert!(bdsm_linalg::vector::norm2(&resid) < 1e-12);
        }
    }

    #[test]
    fn projections_match_dense_products() {
        let vg = demo_basis();
        let p = BlockDiagProjector::from_global_basis(&vg, &[2, 4], 1e-12, None).unwrap();
        let v = p.to_dense();
        let a = Matrix::from_fn(6, 6, |i, j| ((i * 7 + j) as f64 * 0.11).cos());
        let b = Matrix::from_fn(6, 2, |i, j| (i + j) as f64);
        let l = Matrix::from_fn(3, 6, |i, j| (i as f64 - j as f64) * 0.2);

        let ref_a = v.transpose().matmul(&a).unwrap().matmul(&v).unwrap();
        let got_a = p.project_square(&a).unwrap();
        assert!(got_a.sub(&ref_a).unwrap().norm_max() < 1e-13);

        let ref_b = v.transpose().matmul(&b).unwrap();
        assert!(p.project_input(&b).unwrap().sub(&ref_b).unwrap().norm_max() < 1e-13);

        let ref_l = l.matmul(&v).unwrap();
        assert!(
            p.project_output(&l)
                .unwrap()
                .sub(&ref_l)
                .unwrap()
                .norm_max()
                < 1e-13
        );
    }

    #[test]
    fn sparse_congruence_matches_dense() {
        let vg = demo_basis();
        let p = BlockDiagProjector::from_global_basis(&vg, &[2, 4], 1e-12, None).unwrap();
        let a = Matrix::from_fn(6, 6, |i, j| {
            // A sparse-ish pattern with off-block coupling.
            if i == j || (i + 2 * j) % 5 == 0 {
                ((i * 3 + j) as f64 * 0.17).sin()
            } else {
                0.0
            }
        });
        let sparse = CscMatrix::from_dense(&a, 0.0);
        let dense_result = p.project_square(&a).unwrap();
        let sparse_result = p.project_square_sparse(&sparse).unwrap();
        assert!(sparse_result.sub(&dense_result).unwrap().norm_max() < 1e-13);
        let bad = CscMatrix::from_dense(&Matrix::zeros(5, 5), 0.0);
        assert!(p.project_square_sparse(&bad).is_err());
    }

    #[test]
    fn zero_slice_gets_canonical_vector() {
        // Basis with no energy in the second block.
        let mut vg = Matrix::zeros(4, 1);
        vg[(0, 0)] = 1.0;
        vg[(1, 0)] = -1.0;
        let p = BlockDiagProjector::from_global_basis(&vg, &[2, 2], 1e-12, None).unwrap();
        assert_eq!(p.block_dims(), vec![1, 1]);
        assert_eq!(p.block(1)[(0, 0)], 1.0);
        assert!(p.orthonormality_error() < 1e-15);
    }

    #[test]
    fn rank_tolerance_truncates() {
        // Two nearly identical columns → rank 1 slice at loose tolerance.
        let vg = Matrix::from_fn(4, 2, |i, j| (i + 1) as f64 + 1e-13 * j as f64);
        let p = BlockDiagProjector::from_global_basis(&vg, &[4], 1e-8, None).unwrap();
        assert_eq!(p.ncols(), 1);
    }

    #[test]
    fn bad_sizes_rejected() {
        let vg = demo_basis();
        assert!(BlockDiagProjector::from_global_basis(&vg, &[2, 2], 1e-12, None).is_err());
        assert!(BlockDiagProjector::from_global_basis(&vg, &[6, 0], 1e-12, None).is_err());
        let p = BlockDiagProjector::from_global_basis(&vg, &[3, 3], 1e-12, None).unwrap();
        assert!(p.project_square(&Matrix::zeros(5, 5)).is_err());
        assert!(p.project_input(&Matrix::zeros(5, 1)).is_err());
        assert!(p.project_output(&Matrix::zeros(1, 5)).is_err());
    }
}
