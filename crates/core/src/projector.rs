//! Block-diagonal projection `V = diag(V₁, …, V_k)` and congruence
//! transforms — the "structured" part of BDSM.
//!
//! Given a global moment-matching basis `V_g` and a block partition of the
//! states, each block takes the column space of its own row slice of `V_g`
//! (compressed by SVD with a rank tolerance). Because
//! `span(diag(V₁,…,V_k)) ⊇ span(V_g)`, the block-diagonal projector matches
//! at least as many moments as the global one while keeping the reduced
//! matrices block-structured — sparsity the flat projector destroys.

use bdsm_linalg::{LinalgError, Matrix, Result, Svd};
use bdsm_sparse::{CscMatrix, Scalar};

/// How interface (boundary) states are treated by the projector — the
/// paper's exact boundary treatment versus the folded approximation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum InterfacePolicy {
    /// Interface states are folded into the per-block SVD bases like any
    /// other state. The historical behaviour, and the default.
    #[default]
    Folded,
    /// Interface states are preserved **exactly**: each block basis is
    /// augmented with identity columns on its interface rows (deduplicated
    /// against the block's SVD directions), so interface-bus voltages are
    /// reproduced verbatim by the reduced model — its state vector carries
    /// them as plain coordinates.
    Exact,
}

/// An orthonormal block-diagonal projection matrix.
#[derive(Debug, Clone)]
pub struct BlockDiagProjector {
    blocks: Vec<Matrix>,
    row_offsets: Vec<usize>,
    col_offsets: Vec<usize>,
    /// `(full state row, reduced column)` pairs of exactly-preserved
    /// interface states; empty under [`InterfacePolicy::Folded`].
    interface: Vec<(usize, usize)>,
}

impl BlockDiagProjector {
    /// Builds the projector from a global basis and per-block state counts.
    ///
    /// Block `i` keeps the left singular vectors of its (column-normalized)
    /// row slice of `global` whose singular values exceed `rank_tol · σ_max`,
    /// capped at `max_block_dim` dominant directions when given (the knob
    /// that enforces a reduced-dimension budget). A block whose slice is
    /// numerically zero keeps a single canonical unit vector so every block
    /// retains at least one reduced state.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::InvalidArgument`] if the block sizes do not
    /// sum to the basis row count or contain a zero, and propagates SVD
    /// failures.
    pub fn from_global_basis(
        global: &Matrix,
        block_sizes: &[usize],
        rank_tol: f64,
        max_block_dim: Option<usize>,
    ) -> Result<Self> {
        let none: Vec<Vec<usize>> = vec![Vec::new(); block_sizes.len()];
        Self::from_global_basis_with_interface(global, block_sizes, rank_tol, max_block_dim, &none)
    }

    /// [`from_global_basis`](Self::from_global_basis) with the paper's
    /// exact boundary treatment: `interface_local[i]` lists the local row
    /// indices (sorted, unique) of block `i` that are interface states.
    ///
    /// Each listed row gets a dedicated identity column placed **ahead**
    /// of the block's SVD directions, and the Krylov slice is exactly
    /// orthogonalized against those unit columns (its interface rows are
    /// zeroed) before compression — so the interface rows of the final
    /// basis are exact unit vectors and the reduced state carries the
    /// interface voltages verbatim. Krylov columns whose content was
    /// (numerically) pure interface energy are deduplicated away instead
    /// of polluting the SVD. `max_block_dim` caps only the appended SVD
    /// directions; identity columns are mandatory and never truncated.
    ///
    /// # Errors
    ///
    /// [`LinalgError::InvalidArgument`] on inconsistent block sizes or
    /// out-of-range/unsorted interface indices; SVD failures propagate.
    pub fn from_global_basis_with_interface(
        global: &Matrix,
        block_sizes: &[usize],
        rank_tol: f64,
        max_block_dim: Option<usize>,
        interface_local: &[Vec<usize>],
    ) -> Result<Self> {
        if block_sizes.iter().sum::<usize>() != global.nrows() {
            return Err(LinalgError::InvalidArgument {
                what: "projector: block sizes must sum to the state dimension",
            });
        }
        if block_sizes.contains(&0) {
            return Err(LinalgError::InvalidArgument {
                what: "projector: empty blocks are not allowed",
            });
        }
        if interface_local.len() != block_sizes.len() {
            return Err(LinalgError::InvalidArgument {
                what: "projector: interface lists must match the block count",
            });
        }
        for (size, iface) in block_sizes.iter().zip(interface_local) {
            let in_range = iface.iter().all(|&li| li < *size);
            let sorted_unique = iface.windows(2).all(|w| w[0] < w[1]);
            if !in_range || !sorted_unique {
                return Err(LinalgError::InvalidArgument {
                    what: "projector: interface rows must be sorted, unique, in range",
                });
            }
        }
        // Blocks are independent, so the per-block SVD compression fans out
        // over the shared work queue of `crate::par` — dynamic scheduling
        // absorbs whatever imbalance the rank structure introduces, and the
        // results land in block order, keeping the projector deterministic
        // for any worker count.
        let mut slices = Vec::with_capacity(block_sizes.len());
        let mut row0 = 0;
        for (bi, &size) in block_sizes.iter().enumerate() {
            slices.push((
                global.submatrix(row0, row0 + size, 0, global.ncols()),
                &interface_local[bi],
            ));
            row0 += size;
        }
        let blocks = crate::par::parallel_map(&slices, |bi, (slice, iface)| {
            let _s = bdsm_obs::span!("svd.block", block = bi, rows = slice.nrows());
            compress_block_interface(slice, rank_tol, max_block_dim, iface)
        })
        .into_iter()
        .collect::<Result<Vec<Matrix>>>()?;
        let mut proj = Self::from_blocks(blocks);
        for (bi, iface) in interface_local.iter().enumerate() {
            for (t, &li) in iface.iter().enumerate() {
                proj.interface
                    .push((proj.row_offsets[bi] + li, proj.col_offsets[bi] + t));
            }
        }
        Ok(proj)
    }

    /// The `(full state row, reduced column)` pairs of exactly-preserved
    /// interface states, in block order. Empty when the projector was
    /// built with [`InterfacePolicy::Folded`] semantics.
    pub fn interface_map(&self) -> &[(usize, usize)] {
        &self.interface
    }

    /// Congruence transform `VᵀAV` of a *sparse* matrix, accumulating one
    /// rank-one block contribution per stored entry — `O(nnz · qᵢqⱼ)` work
    /// and no `n × q` intermediate, which is what keeps the projection step
    /// viable at `n ≫ 10⁴`.
    ///
    /// The work is partitioned into **block pairs** `(i, j)` — a fixed
    /// decomposition independent of the worker count — that fan out over
    /// [`crate::par`]: pair `(i, j)` owns exactly the entries of `A` in
    /// block `i`'s row band and block `j`'s column band, and writes the
    /// disjoint output block `(VᵢᵀAᵢⱼVⱼ)`. Within a pair, entries are
    /// consumed in CSC order (columns ascending, rows ascending inside a
    /// column) — the same accumulation order per output entry as a serial
    /// sweep over the whole matrix — so the result is bitwise-identical
    /// for **any** `BDSM_THREADS`, including the historical serial code.
    /// Structural zeros of the basis rows (the interface identity columns
    /// of [`InterfacePolicy::Exact`]) are skipped via per-row nonzero
    /// lists, making the exact-interface congruence `O(nnz · kᵢkⱼ)` in the
    /// per-row Krylov ranks instead of the inflated block dimensions.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `a` is not `n × n`.
    pub fn project_square_sparse(&self, a: &CscMatrix<f64>) -> Result<Matrix> {
        let n = self.nrows();
        if a.shape() != (n, n) {
            return Err(LinalgError::ShapeMismatch {
                op: "project-square-sparse",
                lhs: (n, n),
                rhs: a.shape(),
            });
        }
        let k = self.num_blocks();
        // Per-block row → nonzero (column, value) lists. Skipping an exact
        // zero drops only `±0.0` additions, which cannot change any
        // accumulator bit (a finite accumulator is unchanged by adding
        // ±0.0, and products with a zero factor contribute exactly ±0.0),
        // so the row lists preserve bitwise equality with the dense scan.
        let row_nz: Vec<Vec<Vec<(usize, f64)>>> = self
            .blocks
            .iter()
            .map(|blk| {
                (0..blk.nrows())
                    .map(|li| {
                        (0..blk.ncols())
                            .filter_map(|aa| {
                                let v = blk[(li, aa)];
                                (v != 0.0).then_some((aa, v))
                            })
                            .collect()
                    })
                    .collect()
            })
            .collect();
        // Diagonal pairs first: they carry most of the entries on grid
        // matrices, and fronting them keeps the shared work queue busy.
        let mut pairs: Vec<(usize, usize)> = (0..k).map(|i| (i, i)).collect();
        for i in 0..k {
            for j in 0..k {
                if i != j {
                    pairs.push((i, j));
                }
            }
        }
        let partials = crate::par::parallel_map(&pairs, |_, &(bi, bj)| {
            let _s = bdsm_obs::span!("project.pair", i = bi, j = bj);
            self.project_block_pair(a, bi, bj, &row_nz[bi], &row_nz[bj])
        });
        let mut out = Matrix::zeros(self.ncols(), self.ncols());
        for (&(bi, bj), partial) in pairs.iter().zip(&partials) {
            out.set_block(self.col_offsets[bi], self.col_offsets[bj], partial);
        }
        Ok(out)
    }

    /// One block pair's congruence contribution `VᵢᵀAᵢⱼVⱼ` (`qᵢ × qⱼ`),
    /// scanning the CSC columns of block `j`'s band and binary-searching
    /// each column's sorted rows for block `i`'s band.
    fn project_block_pair(
        &self,
        a: &CscMatrix<f64>,
        bi: usize,
        bj: usize,
        rows_i: &[Vec<(usize, f64)>],
        rows_j: &[Vec<(usize, f64)>],
    ) -> Matrix {
        let (r0, r1) = (self.row_offsets[bi], self.row_offsets[bi + 1]);
        let (c0, c1) = (self.row_offsets[bj], self.row_offsets[bj + 1]);
        let mut out = Matrix::zeros(self.blocks[bi].ncols(), self.blocks[bj].ncols());
        for c in c0..c1 {
            let rows = a.col_rows(c);
            let vals = a.col_values(c);
            let lo = rows.partition_point(|&r| r < r0);
            let hi = rows.partition_point(|&r| r < r1);
            let lj = c - c0;
            for (&r, &v) in rows[lo..hi].iter().zip(&vals[lo..hi]) {
                if Scalar::is_zero(v) {
                    continue;
                }
                // out[aa, bb] += Vi[li, aa] · v · Vj[lj, bb].
                for &(aa, via) in &rows_i[r - r0] {
                    let w = via * v;
                    for &(bb, vjb) in &rows_j[lj] {
                        out[(aa, bb)] += w * vjb;
                    }
                }
            }
        }
        out
    }

    /// Assembles a projector directly from per-block orthonormal bases.
    pub fn from_blocks(blocks: Vec<Matrix>) -> Self {
        let mut row_offsets = vec![0];
        let mut col_offsets = vec![0];
        for b in &blocks {
            row_offsets.push(row_offsets.last().unwrap() + b.nrows());
            col_offsets.push(col_offsets.last().unwrap() + b.ncols());
        }
        BlockDiagProjector {
            blocks,
            row_offsets,
            col_offsets,
            interface: Vec::new(),
        }
    }

    /// Number of blocks `k`.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Full state dimension `n` (sum of block rows).
    pub fn nrows(&self) -> usize {
        *self.row_offsets.last().unwrap()
    }

    /// Reduced dimension `q` (sum of block columns).
    pub fn ncols(&self) -> usize {
        *self.col_offsets.last().unwrap()
    }

    /// The per-block reduced dimensions `qᵢ`.
    pub fn block_dims(&self) -> Vec<usize> {
        self.blocks.iter().map(Matrix::ncols).collect()
    }

    /// Basis of block `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn block(&self, i: usize) -> &Matrix {
        &self.blocks[i]
    }

    /// Densifies `V = diag(V₁, …, V_k)`; off-block entries are exactly zero.
    pub fn to_dense(&self) -> Matrix {
        let mut v = Matrix::zeros(self.nrows(), self.ncols());
        for (i, b) in self.blocks.iter().enumerate() {
            v.set_block(self.row_offsets[i], self.col_offsets[i], b);
        }
        v
    }

    /// Worst per-block deviation from orthonormality, `max‖VᵢᵀVᵢ − I‖_max`.
    pub fn orthonormality_error(&self) -> f64 {
        self.blocks
            .iter()
            .map(|b| {
                let gram = b.transpose().matmul(b).expect("square product");
                gram.sub(&Matrix::identity(b.ncols()))
                    .expect("same shape")
                    .norm_max()
            })
            .fold(0.0, f64::max)
    }

    /// Congruence transform `VᵀAV`, computed block-pair by block-pair so the
    /// cost scales with the block structure rather than `n²q²`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `a` is not `n × n`.
    pub fn project_square(&self, a: &Matrix) -> Result<Matrix> {
        let n = self.nrows();
        if a.shape() != (n, n) {
            return Err(LinalgError::ShapeMismatch {
                op: "project-square",
                lhs: (n, n),
                rhs: a.shape(),
            });
        }
        let mut out = Matrix::zeros(self.ncols(), self.ncols());
        for i in 0..self.num_blocks() {
            let (r0, r1) = (self.row_offsets[i], self.row_offsets[i + 1]);
            for j in 0..self.num_blocks() {
                let (c0, c1) = (self.row_offsets[j], self.row_offsets[j + 1]);
                let aij = a.submatrix(r0, r1, c0, c1);
                let prod = self.blocks[i]
                    .transpose()
                    .matmul(&aij)?
                    .matmul(&self.blocks[j])?;
                out.set_block(self.col_offsets[i], self.col_offsets[j], &prod);
            }
        }
        Ok(out)
    }

    /// Input projection `VᵀB` (`q × m`).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `b` does not have `n` rows.
    pub fn project_input(&self, b: &Matrix) -> Result<Matrix> {
        let n = self.nrows();
        if b.nrows() != n {
            return Err(LinalgError::ShapeMismatch {
                op: "project-input",
                lhs: (n, n),
                rhs: b.shape(),
            });
        }
        let mut out = Matrix::zeros(self.ncols(), b.ncols());
        for (i, blk) in self.blocks.iter().enumerate() {
            let slice = b.submatrix(self.row_offsets[i], self.row_offsets[i + 1], 0, b.ncols());
            let prod = blk.transpose().matmul(&slice)?;
            out.set_block(self.col_offsets[i], 0, &prod);
        }
        Ok(out)
    }

    /// Output projection `LV` (`p × q`).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `l` does not have `n` columns.
    pub fn project_output(&self, l: &Matrix) -> Result<Matrix> {
        let n = self.nrows();
        if l.ncols() != n {
            return Err(LinalgError::ShapeMismatch {
                op: "project-output",
                lhs: (n, n),
                rhs: l.shape(),
            });
        }
        let mut out = Matrix::zeros(l.nrows(), self.ncols());
        for (i, blk) in self.blocks.iter().enumerate() {
            let slice = l.submatrix(0, l.nrows(), self.row_offsets[i], self.row_offsets[i + 1]);
            let prod = slice.matmul(blk)?;
            out.set_block(0, self.col_offsets[i], &prod);
        }
        Ok(out)
    }
}

/// Compresses one block's slice under the exact interface policy: unit
/// columns on the interface rows first, then the SVD directions of the
/// slice with its interface rows zeroed (exact orthogonalization against
/// the unit columns). Columns whose energy was (numerically) pure
/// interface content are deduplicated away — the unit columns already
/// span them. With no interface rows this is exactly
/// [`compress_block_slice`].
fn compress_block_interface(
    slice: &Matrix,
    rank_tol: f64,
    max_block_dim: Option<usize>,
    iface: &[usize],
) -> Result<Matrix> {
    if iface.is_empty() {
        return compress_block_slice(slice, rank_tol, max_block_dim);
    }
    let size = slice.nrows();
    // Zero the interface rows of every Krylov column; drop a column when
    // that removes (numerically) all of it — its content lives in the
    // identity columns already — and renormalize the survivors.
    let mut cols: Vec<Vec<f64>> = Vec::new();
    for j in 0..slice.ncols() {
        let mut col = slice.col(j);
        let pre = bdsm_linalg::vector::norm2(&col);
        for &li in iface {
            col[li] = 0.0;
        }
        let post = bdsm_linalg::vector::norm2(&col);
        if pre > 1e-150 && post > 1e-12 * pre {
            bdsm_linalg::vector::scale(1.0 / post, &mut col);
            cols.push(col);
        }
    }
    // The budget cap applies to the appended SVD directions only: identity
    // columns are the exactness contract and are never truncated.
    let max_extra = max_block_dim.map(|cap| cap.saturating_sub(iface.len()));
    let extra = if cols.is_empty() || max_extra == Some(0) {
        None
    } else {
        let svd = Svd::compute(&Matrix::from_cols(&cols))?;
        let sigma_max = svd.sigma.first().copied().unwrap_or(0.0);
        let mut rank = svd
            .sigma
            .iter()
            .filter(|&&s| s > rank_tol * sigma_max)
            .count();
        if let Some(cap) = max_extra {
            rank = rank.min(cap);
        }
        (rank > 0).then(|| svd.u.submatrix(0, size, 0, rank))
    };
    let extra_cols = extra.as_ref().map_or(0, Matrix::ncols);
    let mut out = Matrix::zeros(size, iface.len() + extra_cols);
    for (t, &li) in iface.iter().enumerate() {
        out[(li, t)] = 1.0;
    }
    if let Some(u) = extra {
        out.set_block(0, iface.len(), &u);
    }
    Ok(out)
}

/// Compresses one block's row slice of the global basis into an
/// orthonormal block basis.
///
/// Krylov content decays exponentially away from the ports, so a far
/// block's slice can be tiny down to subnormal. Normalizing each column
/// (and dropping numerically dead ones) keeps every moment direction that
/// reaches the block, at any magnitude, and protects the Jacobi SVD from
/// under/overflow. A block whose slice is numerically zero keeps a single
/// canonical unit vector so every block retains at least one reduced state.
fn compress_block_slice(
    slice: &Matrix,
    rank_tol: f64,
    max_block_dim: Option<usize>,
) -> Result<Matrix> {
    let size = slice.nrows();
    let mut cols: Vec<Vec<f64>> = Vec::new();
    for j in 0..slice.ncols() {
        let mut col = slice.col(j);
        let norm = bdsm_linalg::vector::norm2(&col);
        if norm > 1e-150 {
            bdsm_linalg::vector::scale(1.0 / norm, &mut col);
            cols.push(col);
        }
    }
    if cols.is_empty() {
        let mut e = Matrix::zeros(size, 1);
        e[(0, 0)] = 1.0;
        return Ok(e);
    }
    let svd = Svd::compute(&Matrix::from_cols(&cols))?;
    let sigma_max = svd.sigma.first().copied().unwrap_or(0.0);
    let mut rank = svd
        .sigma
        .iter()
        .filter(|&&s| s > rank_tol * sigma_max)
        .count()
        .max(1);
    if let Some(cap) = max_block_dim {
        rank = rank.min(cap.max(1));
    }
    Ok(svd.u.submatrix(0, size, 0, rank))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_basis() -> Matrix {
        // 6 states, 2 basis columns with energy in every block.
        Matrix::from_fn(6, 2, |i, j| ((i + 1) as f64 * 0.3 + j as f64).sin() + 0.5)
    }

    #[test]
    fn block_structure_and_orthonormality() {
        let v = demo_basis();
        let p = BlockDiagProjector::from_global_basis(&v, &[2, 2, 2], 1e-12, None).unwrap();
        assert_eq!(p.num_blocks(), 3);
        assert_eq!(p.nrows(), 6);
        assert!(p.orthonormality_error() < 1e-13);
        let dense = p.to_dense();
        // Off-block entries are exactly zero by construction.
        let dims = p.block_dims();
        let mut c0 = 0;
        for (bi, &q) in dims.iter().enumerate() {
            for i in 0..6 {
                for j in c0..c0 + q {
                    if i / 2 != bi {
                        assert_eq!(dense[(i, j)], 0.0);
                    }
                }
            }
            c0 += q;
        }
    }

    #[test]
    fn span_contains_global_basis() {
        // diag-blocks span every row slice, so V Vᵀ v_g = v_g for each
        // global column.
        let vg = demo_basis();
        let p = BlockDiagProjector::from_global_basis(&vg, &[3, 3], 1e-12, None).unwrap();
        let v = p.to_dense();
        for j in 0..vg.ncols() {
            let col = vg.col(j);
            let coeffs = v.tr_matvec(&col).unwrap();
            let back = v.matvec(&coeffs).unwrap();
            let resid: Vec<f64> = col.iter().zip(&back).map(|(a, b)| a - b).collect();
            assert!(bdsm_linalg::vector::norm2(&resid) < 1e-12);
        }
    }

    #[test]
    fn projections_match_dense_products() {
        let vg = demo_basis();
        let p = BlockDiagProjector::from_global_basis(&vg, &[2, 4], 1e-12, None).unwrap();
        let v = p.to_dense();
        let a = Matrix::from_fn(6, 6, |i, j| ((i * 7 + j) as f64 * 0.11).cos());
        let b = Matrix::from_fn(6, 2, |i, j| (i + j) as f64);
        let l = Matrix::from_fn(3, 6, |i, j| (i as f64 - j as f64) * 0.2);

        let ref_a = v.transpose().matmul(&a).unwrap().matmul(&v).unwrap();
        let got_a = p.project_square(&a).unwrap();
        assert!(got_a.sub(&ref_a).unwrap().norm_max() < 1e-13);

        let ref_b = v.transpose().matmul(&b).unwrap();
        assert!(p.project_input(&b).unwrap().sub(&ref_b).unwrap().norm_max() < 1e-13);

        let ref_l = l.matmul(&v).unwrap();
        assert!(
            p.project_output(&l)
                .unwrap()
                .sub(&ref_l)
                .unwrap()
                .norm_max()
                < 1e-13
        );
    }

    #[test]
    fn sparse_congruence_matches_dense() {
        let vg = demo_basis();
        let p = BlockDiagProjector::from_global_basis(&vg, &[2, 4], 1e-12, None).unwrap();
        let a = Matrix::from_fn(6, 6, |i, j| {
            // A sparse-ish pattern with off-block coupling.
            if i == j || (i + 2 * j) % 5 == 0 {
                ((i * 3 + j) as f64 * 0.17).sin()
            } else {
                0.0
            }
        });
        let sparse = CscMatrix::from_dense(&a, 0.0);
        let dense_result = p.project_square(&a).unwrap();
        let sparse_result = p.project_square_sparse(&sparse).unwrap();
        assert!(sparse_result.sub(&dense_result).unwrap().norm_max() < 1e-13);
        let bad = CscMatrix::from_dense(&Matrix::zeros(5, 5), 0.0);
        assert!(p.project_square_sparse(&bad).is_err());
    }

    #[test]
    fn zero_slice_gets_canonical_vector() {
        // Basis with no energy in the second block.
        let mut vg = Matrix::zeros(4, 1);
        vg[(0, 0)] = 1.0;
        vg[(1, 0)] = -1.0;
        let p = BlockDiagProjector::from_global_basis(&vg, &[2, 2], 1e-12, None).unwrap();
        assert_eq!(p.block_dims(), vec![1, 1]);
        assert_eq!(p.block(1)[(0, 0)], 1.0);
        assert!(p.orthonormality_error() < 1e-15);
    }

    #[test]
    fn exact_interface_rows_are_unit_vectors() {
        let vg = demo_basis();
        let iface = vec![vec![1], vec![0, 2]];
        let p =
            BlockDiagProjector::from_global_basis_with_interface(&vg, &[3, 3], 1e-12, None, &iface)
                .unwrap();
        // Interface map points at exact unit rows.
        let map = p.interface_map().to_vec();
        assert_eq!(map.len(), 3);
        let dense = p.to_dense();
        for &(row, col) in &map {
            for j in 0..dense.ncols() {
                let expect = if j == col { 1.0 } else { 0.0 };
                assert_eq!(dense[(row, j)], expect, "row {row} not a unit vector");
            }
        }
        assert_eq!(map[0], (1, 0)); // block 0, local row 1 → first column
        assert!(p.orthonormality_error() < 1e-12);
        // The augmented span still contains every global basis column.
        let v = p.to_dense();
        for j in 0..vg.ncols() {
            let col = vg.col(j);
            let coeffs = v.tr_matvec(&col).unwrap();
            let back = v.matvec(&coeffs).unwrap();
            let resid: Vec<f64> = col.iter().zip(&back).map(|(a, b)| a - b).collect();
            assert!(bdsm_linalg::vector::norm2(&resid) < 1e-12);
        }
    }

    #[test]
    fn interface_only_columns_are_deduplicated() {
        // A basis column living purely on the interface row must not add
        // an SVD direction beyond the identity column.
        let mut vg = Matrix::zeros(4, 2);
        vg[(1, 0)] = 1.0; // pure interface content
        vg[(0, 1)] = 0.5;
        vg[(3, 1)] = -0.5;
        let p = BlockDiagProjector::from_global_basis_with_interface(
            &vg,
            &[4],
            1e-12,
            None,
            &[vec![1]],
        )
        .unwrap();
        // 1 identity column + 1 surviving Krylov direction.
        assert_eq!(p.ncols(), 2);
        assert!(p.orthonormality_error() < 1e-14);
    }

    #[test]
    fn interface_budget_caps_only_extra_directions() {
        let vg = demo_basis();
        let p = BlockDiagProjector::from_global_basis_with_interface(
            &vg,
            &[6],
            1e-12,
            Some(2),
            &[vec![0, 3, 5]],
        )
        .unwrap();
        // Cap 2 < 3 identity columns: identities survive, no extras fit.
        assert_eq!(p.ncols(), 3);
        assert_eq!(p.interface_map().len(), 3);
    }

    #[test]
    fn interface_validation_rejects_bad_lists() {
        let vg = demo_basis();
        let bad_len = vec![vec![0]];
        assert!(BlockDiagProjector::from_global_basis_with_interface(
            &vg,
            &[3, 3],
            1e-12,
            None,
            &bad_len
        )
        .is_err());
        let out_of_range = vec![vec![5], vec![]];
        assert!(BlockDiagProjector::from_global_basis_with_interface(
            &vg,
            &[3, 3],
            1e-12,
            None,
            &out_of_range
        )
        .is_err());
        let unsorted = vec![vec![2, 1], vec![]];
        assert!(BlockDiagProjector::from_global_basis_with_interface(
            &vg,
            &[3, 3],
            1e-12,
            None,
            &unsorted
        )
        .is_err());
    }

    #[test]
    fn interface_congruence_matches_dense_reference() {
        let vg = demo_basis();
        let p = BlockDiagProjector::from_global_basis_with_interface(
            &vg,
            &[2, 4],
            1e-12,
            None,
            &[vec![1], vec![0, 3]],
        )
        .unwrap();
        let a = Matrix::from_fn(6, 6, |i, j| {
            if i == j || (i + 2 * j) % 4 == 0 {
                ((i * 5 + j) as f64 * 0.23).sin()
            } else {
                0.0
            }
        });
        let sparse = CscMatrix::from_dense(&a, 0.0);
        let dense_result = p.project_square(&a).unwrap();
        let sparse_result = p.project_square_sparse(&sparse).unwrap();
        assert!(sparse_result.sub(&dense_result).unwrap().norm_max() < 1e-13);
    }

    #[test]
    fn parallel_congruence_matches_serial_accumulation_bitwise() {
        // The block-pair fan-out's contract: contributions to each output
        // entry accumulate in exactly the order of a serial CSC sweep over
        // the whole matrix, so the parallel result is byte-for-byte the
        // serial one whatever the ambient worker count. Pin it against an
        // inline reimplementation of that serial sweep (the historical
        // code) rather than by mutating BDSM_THREADS, which would race
        // sibling tests reading the environment from worker threads.
        let vg = Matrix::from_fn(24, 4, |i, j| ((i * 3 + 2 * j) as f64 * 0.13).sin());
        let p = BlockDiagProjector::from_global_basis(&vg, &[6, 6, 6, 6], 1e-12, None).unwrap();
        let a = Matrix::from_fn(24, 24, |i, j| {
            if i.abs_diff(j) <= 2 {
                ((i * 7 + j) as f64 * 0.11).cos()
            } else {
                0.0
            }
        });
        let sparse = CscMatrix::from_dense(&a, 0.0);
        let parallel = p.project_square_sparse(&sparse).unwrap();

        let mut block_of_row = vec![0usize; p.nrows()];
        for bi in 0..p.num_blocks() {
            block_of_row[p.row_offsets[bi]..p.row_offsets[bi + 1]].fill(bi);
        }
        let mut serial = Matrix::zeros(p.ncols(), p.ncols());
        for (r, c, v) in sparse.iter() {
            if v == 0.0 {
                continue;
            }
            let (bi, bj) = (block_of_row[r], block_of_row[c]);
            let (vi, vj) = (&p.blocks[bi], &p.blocks[bj]);
            let (li, lj) = (r - p.row_offsets[bi], c - p.row_offsets[bj]);
            let (oi, oj) = (p.col_offsets[bi], p.col_offsets[bj]);
            for aa in 0..vi.ncols() {
                let w = vi[(li, aa)] * v;
                if w == 0.0 {
                    continue;
                }
                for bb in 0..vj.ncols() {
                    serial[(oi + aa, oj + bb)] += w * vj[(lj, bb)];
                }
            }
        }
        assert_eq!(parallel.as_slice(), serial.as_slice());
        let dense_ref = p.project_square(&a).unwrap();
        assert!(parallel.sub(&dense_ref).unwrap().norm_max() < 1e-13);
    }

    #[test]
    fn rank_tolerance_truncates() {
        // Two nearly identical columns → rank 1 slice at loose tolerance.
        let vg = Matrix::from_fn(4, 2, |i, j| (i + 1) as f64 + 1e-13 * j as f64);
        let p = BlockDiagProjector::from_global_basis(&vg, &[4], 1e-8, None).unwrap();
        assert_eq!(p.ncols(), 1);
    }

    #[test]
    fn bad_sizes_rejected() {
        let vg = demo_basis();
        assert!(BlockDiagProjector::from_global_basis(&vg, &[2, 2], 1e-12, None).is_err());
        assert!(BlockDiagProjector::from_global_basis(&vg, &[6, 0], 1e-12, None).is_err());
        let p = BlockDiagProjector::from_global_basis(&vg, &[3, 3], 1e-12, None).unwrap();
        assert!(p.project_square(&Matrix::zeros(5, 5)).is_err());
        assert!(p.project_input(&Matrix::zeros(5, 1)).is_err());
        assert!(p.project_output(&Matrix::zeros(1, 5)).is_err());
    }
}
