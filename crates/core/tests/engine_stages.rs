//! Acceptance tests for the staged reduction engine: the fixed path must
//! reproduce the legacy pipeline composition bitwise, the adaptive greedy
//! shift selection must certify ≤ 1e-6 on the e2e network families with
//! no more Krylov vectors than the fixed-shift baseline, and the exact
//! interface policy must reproduce boundary voltages to machine accuracy.

use bdsm_circuit::{grouped_state_order, mna, partition_network};
use bdsm_core::engine::{AdaptiveShiftOpts, ReductionEngine, ShiftStrategy};
use bdsm_core::krylov::{global_krylov_basis_sparse, KrylovOpts};
use bdsm_core::projector::{BlockDiagProjector, InterfacePolicy};
use bdsm_core::reduce::{reduce_network, reduce_network_with_report, ReductionOpts, SolverBackend};
use bdsm_core::synth::{ieee_like_feeder, rc_grid, rc_ladder_loaded};
use bdsm_core::transfer::{eval_transfer, transfer_rel_err, SparseTransferEvaluator};
use bdsm_linalg::Complex64;
use bdsm_sparse::ShiftedPencil;

/// The fixed-shift e2e configuration shared by the acceptance tests.
fn fixed_opts(num_blocks: usize, max_dim: usize) -> ReductionOpts {
    ReductionOpts {
        num_blocks,
        krylov: KrylovOpts {
            expansion_points: vec![],
            jomega_points: vec![5.0e1, 4.5e2, 4.0e3],
            moments_per_point: 2,
            deflation_tol: 1e-12,
            ortho: Default::default(),
        },
        rank_tol: 1e-12,
        max_reduced_dim: Some(max_dim),
        backend: SolverBackend::Sparse,
        ..ReductionOpts::default()
    }
}

/// Adaptive variant: one coarse mid-band shift, candidates spanning the
/// same band, and a budget equal to the fixed baseline's shift count.
fn adaptive_opts(num_blocks: usize, max_dim: usize) -> ReductionOpts {
    let mut opts = fixed_opts(num_blocks, max_dim);
    opts.krylov.jomega_points = vec![4.5e2];
    opts.shift_strategy = ShiftStrategy::Adaptive(AdaptiveShiftOpts {
        candidate_omegas: AdaptiveShiftOpts::log_grid(5.0e1, 4.0e3, 12),
        tol: 1e-6,
        max_shifts: 3,
    });
    opts
}

#[test]
fn fixed_engine_reproduces_legacy_composition_bitwise() {
    // ReductionOpts::default() semantics (Fixed + Folded) must equal the
    // hand-composed legacy pipeline byte for byte: same permuted model,
    // same Krylov basis, same projector, same congruence products.
    let net = rc_grid(12, 15, 1.0, 1e-3, 2.0);
    let opts = fixed_opts(4, 60);
    let rm = reduce_network(&net, &opts).expect("engine reduction");
    assert_eq!(opts.shift_strategy, ShiftStrategy::Fixed);
    assert_eq!(opts.interface_policy, InterfacePolicy::Folded);

    let desc = mna::assemble(&net).unwrap();
    let part = partition_network(&net, 4).unwrap();
    let (order, sizes) = grouped_state_order(&net, &desc, &part);
    let g = desc.g.permute_symmetric(&order).to_csc();
    let c = desc.c.permute_symmetric(&order).to_csc();
    let b = desc.b.permute_rows(&order).to_dense();
    let l = desc.l.permute_cols(&order).to_dense();
    let global = global_krylov_basis_sparse(&g, &c, &b, &opts.krylov).unwrap();
    let proj =
        BlockDiagProjector::from_global_basis(&global, &sizes, 1e-12, Some(60 / sizes.len()))
            .unwrap();
    assert_eq!(
        rm.g.as_slice(),
        proj.project_square_sparse(&g).unwrap().as_slice()
    );
    assert_eq!(
        rm.c.as_slice(),
        proj.project_square_sparse(&c).unwrap().as_slice()
    );
    assert_eq!(rm.b.as_slice(), proj.project_input(&b).unwrap().as_slice());
    assert_eq!(rm.l.as_slice(), proj.project_output(&l).unwrap().as_slice());
    // Folded policy exports the boundary set but maps nothing exactly.
    assert!(!rm.interface_states.is_empty());
    assert!(rm.interface_map().is_empty());
}

/// Runs the adaptive-vs-fixed comparison on one network and asserts the
/// satellite contract: certified ≤ 1e-6 with no more Krylov vectors.
fn check_adaptive_converges(net: &bdsm_circuit::Network, num_blocks: usize, max_dim: usize) {
    let (_, fixed_report) =
        reduce_network_with_report(net, &fixed_opts(num_blocks, max_dim)).expect("fixed reduction");
    let (rm, report) = reduce_network_with_report(net, &adaptive_opts(num_blocks, max_dim))
        .expect("adaptive reduction");
    assert!(
        report.certified,
        "adaptive loop failed to certify 1e-6: rounds {:?}",
        report
            .rounds
            .iter()
            .map(|r| r.worst_residual)
            .collect::<Vec<_>>()
    );
    assert!(report.basis_cols <= fixed_report.basis_cols);
    assert!(!report.rounds.is_empty());
    assert!(report.shifts.len() <= 3);
    // Independent verification: the certified residual holds against a
    // fresh full-model evaluation on the candidate grid.
    let full_ev =
        SparseTransferEvaluator::new(&rm.full.g, &rm.full.c, rm.full.b.clone(), rm.full.l.clone())
            .unwrap();
    let mut worst = 0.0_f64;
    for &w in &AdaptiveShiftOpts::log_grid(5.0e1, 4.0e3, 12) {
        let s = Complex64::jomega(w);
        let hf = full_ev.eval(s).unwrap();
        let hr = eval_transfer(&rm.g, &rm.c, &rm.b, &rm.l, s).unwrap();
        worst = worst.max(transfer_rel_err(&hf, &hr));
    }
    assert!(
        worst <= 1e-6,
        "independent residual check failed: {worst:.3e}"
    );
}

#[test]
fn adaptive_converges_on_ladder() {
    let net = rc_ladder_loaded(500, 1.0, 1e-3, 5.0, 5);
    check_adaptive_converges(&net, 4, 100);
}

#[test]
fn adaptive_converges_on_grid() {
    let net = rc_grid(20, 25, 1.0, 1e-3, 2.0);
    check_adaptive_converges(&net, 4, 100);
}

#[test]
fn adaptive_converges_on_feeder() {
    let net = ieee_like_feeder(4, 120, 1.0, 1e-3, 1e-5, 2.0);
    check_adaptive_converges(&net, 4, 97);
}

#[test]
fn exact_interface_rows_and_boundary_voltages() {
    let net = rc_grid(20, 25, 1.0, 1e-3, 2.0);
    let mut opts = fixed_opts(4, 200);
    // No budget: boundary exactness needs the full Krylov span alongside
    // the mandatory interface columns (a tight cap starves the moment
    // directions and is tested separately).
    opts.max_reduced_dim = None;
    opts.interface_policy = InterfacePolicy::Exact;
    let rm = reduce_network(&net, &opts).expect("exact-interface reduction");
    let map = rm.interface_map().to_vec();
    assert_eq!(map.len(), rm.interface_states.len());
    let mut rows: Vec<usize> = map.iter().map(|&(r, _)| r).collect();
    rows.sort_unstable();
    assert_eq!(rows, rm.interface_states);

    // 1. Interface rows of the reduced basis are exact unit vectors.
    let v = rm.projector.to_dense();
    for &(row, col) in &map {
        for j in 0..v.ncols() {
            let expect = if j == col { 1.0 } else { 0.0 };
            assert_eq!(v[(row, j)], expect, "basis row {row} is not e_{col}");
        }
    }

    // 2. ROM boundary voltages match the full model to ≤ 1e-10 at a
    //    matched frequency: x(s₀) lies in span(V), so the Galerkin
    //    reduction reproduces the full state — and the interface rows of
    //    V·x_r are the ROM coordinates themselves.
    let s = Complex64::jomega(4.5e2);
    let pencil = ShiftedPencil::new(&rm.full.g, &rm.full.c).unwrap();
    let full_lu = pencil.factor_complex(s).unwrap();
    let rom_lu = bdsm_core::transfer::ZLu::factor_shifted(&rm.g, &rm.c, s).unwrap();
    for input in 0..rm.full.b.ncols() {
        let x_full = full_lu.solve_real(&rm.full.b.col(input)).unwrap();
        let x_rom = rom_lu.solve_real(&rm.b.col(input)).unwrap();
        let scale = x_full
            .iter()
            .map(|z| z.abs())
            .fold(0.0_f64, f64::max)
            .max(f64::MIN_POSITIVE);
        for &(row, col) in &map {
            // Reconstruction at an interface row IS the ROM coordinate:
            // the row of V is a unit vector.
            let recon = x_rom[col];
            let err = (recon - x_full[row]).abs() / scale;
            assert!(
                err <= 1e-10,
                "boundary voltage at state {row} off by {err:.3e} (input {input})"
            );
        }
    }
}

#[test]
fn engine_stages_compose_to_run() {
    // Driving the stages by hand must give the same model as run().
    let net = rc_ladder_loaded(120, 1.0, 1e-3, 5.0, 5);
    let mut opts = fixed_opts(3, 48);
    opts.interface_policy = InterfacePolicy::Exact;
    let engine = ReductionEngine::new(&net, &opts).unwrap();
    let plan = engine.plan().unwrap();
    assert_eq!(plan.block_sizes.iter().sum::<usize>(), 120);
    assert!(!plan.interface_states.is_empty());
    let points = bdsm_core::krylov::collect_points(&opts.krylov);
    let global = engine.basis(&plan, &points).unwrap();
    let projector = engine.projector(&plan, &global).unwrap();
    let rom = engine.congruence(&plan, &projector).unwrap();
    let cert = engine.certify(&plan, &rom, &[5.0e1, 4.5e2, 4.0e3]).unwrap();
    assert_eq!(cert.residuals.len(), 3);
    assert!(cert.worst <= 1e-6, "staged ROM residual {:.3e}", cert.worst);
    assert!(cert.worst_omega > 0.0);

    let (rm, report) = engine.run().unwrap();
    assert_eq!(rm.g.as_slice(), rom.g.as_slice());
    assert_eq!(rm.c.as_slice(), rom.c.as_slice());
    assert_eq!(report.basis_cols, global.ncols());
    assert!(!report.certified); // fixed path never certifies
}

#[test]
fn adaptive_options_are_validated() {
    let net = rc_ladder_loaded(40, 1.0, 1e-3, 5.0, 5);
    let mut opts = ReductionOpts {
        shift_strategy: ShiftStrategy::Adaptive(AdaptiveShiftOpts {
            candidate_omegas: vec![],
            tol: 1e-6,
            max_shifts: 4,
        }),
        ..ReductionOpts::default()
    };
    assert!(reduce_network(&net, &opts).is_err());
    opts.shift_strategy = ShiftStrategy::Adaptive(AdaptiveShiftOpts {
        candidate_omegas: vec![1.0, 10.0],
        tol: 0.0,
        max_shifts: 4,
    });
    assert!(reduce_network(&net, &opts).is_err());
    opts.shift_strategy = ShiftStrategy::Adaptive(AdaptiveShiftOpts {
        candidate_omegas: vec![1.0, 10.0],
        tol: 1e-6,
        max_shifts: 0,
    });
    assert!(reduce_network(&net, &opts).is_err());
}

#[test]
fn adaptive_with_empty_initial_points_seeds_from_candidates() {
    // No KrylovOpts points at all: the engine seeds the coarse set from
    // the candidate grid's geometric middle and still reduces.
    let net = rc_ladder_loaded(200, 1.0, 1e-3, 5.0, 5);
    let mut opts = fixed_opts(4, 64);
    opts.krylov.jomega_points.clear();
    opts.shift_strategy = ShiftStrategy::Adaptive(AdaptiveShiftOpts {
        candidate_omegas: AdaptiveShiftOpts::log_grid(5.0e1, 4.0e3, 10),
        tol: 1e-6,
        max_shifts: 3,
    });
    let (rm, report) = reduce_network_with_report(&net, &opts).expect("seeded adaptive");
    assert!(report.certified, "rounds: {:?}", report.rounds.len());
    assert!(rm.reduced_dim() <= 64);
    assert!(rm.reduced_dim() < rm.full_dim());
}
