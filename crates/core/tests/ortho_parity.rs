//! Blocked-vs-MGS orthogonalization parity: the panel-blocked kernel
//! (`OrthoKernel::Blocked`, the default) must build the **same subspace**
//! as the sequential MGS oracle (`OrthoKernel::Mgs`) — same
//! accepted/deflated column counts, both bases orthonormal to 1e-12, and
//! each basis contained in the other's span.
//!
//! The kernels differ in floating-point summation order, so the contract
//! is span equality at tolerance, not bitwise equality; bitwise guarantees
//! live in `parallel_determinism.rs` (thread-count invariance of the
//! blocked path itself). The comparisons run at two moments per point:
//! deeper recurrences are seeded with the kept columns of the previous
//! block, so a kernel-dependent *rotation* of that block is amplified
//! through the next ill-conditioned solve into a genuine span difference —
//! the oracle disagrees with a reordered copy of itself there just as much
//! as with the blocked kernel (verified while writing this suite: the
//! ladder stays at 4e-9 at three moments, the mesh degrades to 1e-1 for
//! both kernels). Subspace-exhaustion deflation is covered separately,
//! where the accept/deflate margins are decades wide and decisions must
//! agree exactly.

use bdsm_circuit::mna;
use bdsm_core::krylov::{global_krylov_basis, global_krylov_basis_sparse, KrylovOpts, OrthoKernel};
use bdsm_core::synth::{ieee_like_feeder, rc_grid, rc_ladder_loaded};
use bdsm_linalg::Matrix;

fn opts(kernel: OrthoKernel, moments: usize) -> KrylovOpts {
    KrylovOpts {
        expansion_points: vec![0.0, 50.0],
        jomega_points: vec![2.0e2, 1.5e3, 9.0e3],
        moments_per_point: moments,
        deflation_tol: 1e-8,
        ortho: kernel,
    }
}

/// max |QᵀQ − I| over all entries.
fn orthonormality_defect(q: &Matrix) -> f64 {
    let (n, k) = q.shape();
    let mut worst = 0.0_f64;
    for i in 0..k {
        let qi = q.col(i);
        for j in i..k {
            let qj = q.col(j);
            let dot: f64 = (0..n).map(|r| qi[r] * qj[r]).sum();
            let target = if i == j { 1.0 } else { 0.0 };
            worst = worst.max((dot - target).abs());
        }
    }
    worst
}

/// Worst residual of any column of `a` after projecting onto the
/// (orthonormal) columns of `b` — zero iff span(a) ⊆ span(b).
fn span_defect(a: &Matrix, b: &Matrix) -> f64 {
    let (n, ka) = a.shape();
    let kb = b.ncols();
    let mut worst = 0.0_f64;
    for i in 0..ka {
        let ai = a.col(i);
        let mut resid = ai.clone();
        for j in 0..kb {
            let bj = b.col(j);
            let dot: f64 = (0..n).map(|r| ai[r] * bj[r]).sum();
            for r in 0..n {
                resid[r] -= dot * bj[r];
            }
        }
        let norm: f64 = resid.iter().map(|v| v * v).sum::<f64>().sqrt();
        worst = worst.max(norm);
    }
    worst
}

fn assert_parity(qb: &Matrix, qm: &Matrix, span_tol: f64, label: &str) {
    assert_eq!(
        qb.ncols(),
        qm.ncols(),
        "{label}: blocked accepted {} columns, MGS oracle {} — the kernels \
         disagree on deflation",
        qb.ncols(),
        qm.ncols(),
    );
    let (db, dm) = (orthonormality_defect(qb), orthonormality_defect(qm));
    assert!(
        db <= 1e-12,
        "{label}: blocked basis defect {db:.3e} > 1e-12"
    );
    assert!(dm <= 1e-12, "{label}: MGS basis defect {dm:.3e} > 1e-12");
    let (sb, sm) = (span_defect(qb, qm), span_defect(qm, qb));
    assert!(
        sb <= span_tol && sm <= span_tol,
        "{label}: spans differ (blocked-in-MGS residual {sb:.3e}, \
         MGS-in-blocked residual {sm:.3e}, allowed {span_tol:.0e})"
    );
}

/// Runs both kernels through the sparse subsystem on one network and
/// checks the full parity contract.
fn sparse_parity_on(net: &bdsm_circuit::Network, moments: usize, span_tol: f64, label: &str) {
    let desc = mna::assemble(net).unwrap();
    let (g, c) = (desc.g.to_csc(), desc.c.to_csc());
    let b = desc.b.to_dense();
    let qb = global_krylov_basis_sparse(&g, &c, &b, &opts(OrthoKernel::Blocked, moments)).unwrap();
    let qm = global_krylov_basis_sparse(&g, &c, &b, &opts(OrthoKernel::Mgs, moments)).unwrap();
    assert!(qb.ncols() > 0, "{label}: empty basis");
    assert_parity(&qb, &qm, span_tol, label);
}

#[test]
fn blocked_matches_mgs_on_loaded_ladder() {
    // The ladder's moment blocks stay well-conditioned to depth 3 — hold
    // it to the tight bar at both depths.
    sparse_parity_on(
        &rc_ladder_loaded(220, 1.0, 1e-3, 5.0, 7),
        2,
        1e-8,
        "ladder m=2",
    );
    sparse_parity_on(
        &rc_ladder_loaded(220, 1.0, 1e-3, 5.0, 7),
        3,
        1e-6,
        "ladder m=3",
    );
}

#[test]
fn blocked_matches_mgs_on_rc_grid() {
    sparse_parity_on(&rc_grid(13, 14, 1.0, 1e-3, 2.0), 2, 1e-6, "grid");
}

#[test]
fn blocked_matches_mgs_on_feeder() {
    sparse_parity_on(
        &ieee_like_feeder(4, 30, 0.8, 2e-3, 1e-4, 4.0),
        2,
        1e-6,
        "feeder",
    );
}

#[test]
fn blocked_matches_mgs_through_dense_oracle() {
    // The dense pipeline shares the merge but runs its own factor queue —
    // cover it on a size where densification is cheap.
    let net = rc_ladder_loaded(90, 1.0, 1e-3, 5.0, 4);
    let desc = mna::assemble(&net).unwrap();
    let (g, c) = (desc.g.to_dense(), desc.c.to_dense());
    let b = desc.b.to_dense();
    let qb = global_krylov_basis(&g, &c, &b, &opts(OrthoKernel::Blocked, 2)).unwrap();
    let qm = global_krylov_basis(&g, &c, &b, &opts(OrthoKernel::Mgs, 2)).unwrap();
    assert_parity(&qb, &qm, 1e-8, "dense ladder");
}

#[test]
fn blocked_matches_mgs_deflation_under_exhaustion() {
    // A deep recurrence on a small ladder exhausts the reachable subspace,
    // so most late candidates deflate — with decades of margin, not at the
    // tolerance edge. Both kernels must make the identical accept/deflate
    // calls (same final count, strictly below the raw candidate count) and
    // still agree on the span.
    let net = rc_ladder_loaded(36, 1.0, 1e-3, 5.0, 4);
    let desc = mna::assemble(&net).unwrap();
    let (g, c) = (desc.g.to_csc(), desc.c.to_csc());
    let b = desc.b.to_dense();
    let moments = 12;
    let raw_cols = (2 + 2 * 3) * moments * b.ncols();
    let qb = global_krylov_basis_sparse(&g, &c, &b, &opts(OrthoKernel::Blocked, moments)).unwrap();
    let qm = global_krylov_basis_sparse(&g, &c, &b, &opts(OrthoKernel::Mgs, moments)).unwrap();
    assert!(
        qb.ncols() < raw_cols,
        "exhaustion produced no deflation (kept all {raw_cols} candidates); \
         the test lost its subject"
    );
    assert_parity(&qb, &qm, 1e-6, "exhausted ladder");
}
