//! Property tests for the sparse factorization subsystem against the dense
//! oracles, on the matrices the pipeline actually produces: MNA descriptors
//! of randomized ladder / grid / feeder networks.
//!
//! Checked properties:
//!
//! - sparse LU solves of `G + sC` match `DenseLu` (real shifts) and `ZLu`
//!   (imaginary shifts) to near machine precision;
//! - the solution is invariant under the fill-reducing ordering (AMD, RCM,
//!   natural) and under symmetric permutation round-trips;
//! - structurally/numerically singular matrices fail loudly with
//!   `LinalgError::Singular`.

use bdsm_circuit::{mna, Network, GROUND};
use bdsm_core::synth::{ieee_like_feeder, rc_grid, rc_ladder_loaded};
use bdsm_linalg::{Complex64, DenseLu, LinalgError};
use bdsm_sparse::{CscMatrix, FillOrdering, LuWorkspace, NumericKernel, ShiftedPencil, SparseLu};

/// Deterministic xorshift in `[0, 1)`, so the "random" networks are
/// reproducible across runs.
fn rng(seed: u64) -> impl FnMut() -> f64 {
    let mut s = seed.max(1);
    move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        (s >> 11) as f64 / (1u64 << 53) as f64
    }
}

fn test_networks() -> Vec<(&'static str, Network)> {
    let mut r = rng(0x5eed);
    vec![
        (
            "ladder",
            rc_ladder_loaded(80, 0.5 + r(), 1e-3 * (1.0 + r()), 2.0 + 3.0 * r(), 7),
        ),
        ("grid", rc_grid(9, 11, 0.5 + r(), 1e-3 * (1.0 + r()), 2.0)),
        (
            "feeder",
            ieee_like_feeder(3, 25, 0.5 + r(), 1e-3, 1e-5 * (1.0 + r()), 2.0),
        ),
    ]
}

#[test]
fn sparse_real_shift_solves_match_dense_lu() {
    for (name, net) in test_networks() {
        let d = mna::assemble(&net).unwrap();
        let (g, c) = (d.g.to_csc(), d.c.to_csc());
        let n = g.nrows();
        let pencil = ShiftedPencil::new(&g, &c).unwrap();
        let mut r = rng(0xabcd ^ n as u64);
        let b: Vec<f64> = (0..n).map(|_| r() - 0.5).collect();
        for &s in &[1.0, 1.0e2, 1.0e4] {
            let xs = pencil.factor_real(s).unwrap().solve(&b).unwrap();
            let dense = g.to_dense().add(&c.to_dense().scaled(s)).unwrap();
            let xd = DenseLu::factor(&dense).unwrap().solve(&b).unwrap();
            let rel = bdsm_linalg::vector::rel_err(&xs, &xd, 1e-30);
            assert!(rel < 1e-10, "{name}: sparse vs dense at s={s}: {rel}");
        }
    }
}

#[test]
fn sparse_complex_shift_solves_match_zlu() {
    for (name, net) in test_networks() {
        let d = mna::assemble(&net).unwrap();
        let (g, c) = (d.g.to_csc(), d.c.to_csc());
        let n = g.nrows();
        let pencil = ShiftedPencil::new(&g, &c).unwrap();
        let mut r = rng(0x1234 ^ n as u64);
        let b: Vec<f64> = (0..n).map(|_| r() - 0.5).collect();
        for &w in &[5.0e1, 4.0e3] {
            let s = Complex64::jomega(w);
            let xs = pencil.factor_complex(s).unwrap().solve_real(&b).unwrap();
            let zlu =
                bdsm_core::transfer::ZLu::factor_shifted(&g.to_dense(), &c.to_dense(), s).unwrap();
            let xd = zlu.solve_real(&b).unwrap();
            let num: f64 = xs
                .iter()
                .zip(&xd)
                .map(|(a, bb)| (*a - *bb).abs_sq())
                .sum::<f64>()
                .sqrt();
            let den: f64 = xd.iter().map(|z| z.abs_sq()).sum::<f64>().sqrt();
            assert!(
                num / den < 1e-10,
                "{name}: sparse vs ZLu at ω={w}: {}",
                num / den
            );
        }
    }
}

#[test]
fn solution_invariant_under_ordering_choice() {
    for (name, net) in test_networks() {
        let d = mna::assemble(&net).unwrap();
        let g = d.g.to_csc();
        let n = g.nrows();
        // G alone can be singular at DC for feeders (inductor branch rows),
        // so factor G + 100·C, which is regular for every test topology.
        let assembled = {
            let mut t: Vec<(usize, usize, f64)> = g.iter().collect();
            t.extend(d.c.to_csc().iter().map(|(i, j, v)| (i, j, 100.0 * v)));
            CscMatrix::from_triplets(n, n, &t).unwrap()
        };
        let mut r = rng(0x77 ^ n as u64);
        let b: Vec<f64> = (0..n).map(|_| r() - 0.5).collect();
        let mut solutions = Vec::new();
        for kind in [FillOrdering::Amd, FillOrdering::Rcm, FillOrdering::Natural] {
            let x = SparseLu::factor_ordered(&assembled, kind)
                .unwrap()
                .solve(&b)
                .unwrap();
            solutions.push((kind, x));
        }
        let (_, ref x0) = solutions[0];
        for (kind, x) in &solutions[1..] {
            let rel = bdsm_linalg::vector::rel_err(x, x0, 1e-30);
            assert!(rel < 1e-9, "{name}: {kind:?} disagrees with AMD: {rel}");
        }
    }
}

#[test]
fn symmetric_permutation_round_trips() {
    let net = rc_grid(8, 8, 1.0, 1e-3, 2.0);
    let d = mna::assemble(&net).unwrap();
    let g = d.g.to_csc();
    let n = g.nrows();
    // A deterministic shuffle and its inverse.
    let mut perm: Vec<usize> = (0..n).collect();
    let mut r = rng(0xfeed);
    for i in (1..n).rev() {
        let j = (r() * (i + 1) as f64) as usize;
        perm.swap(i, j);
    }
    let mut inv = vec![0usize; n];
    for (i, &p) in perm.iter().enumerate() {
        inv[p] = i;
    }
    let back = g
        .permute_symmetric(&perm)
        .unwrap()
        .permute_symmetric(&inv)
        .unwrap();
    assert_eq!(g, back, "permutation round-trip altered the matrix");

    // Solving the permuted system gives the permuted solution.
    let mut rr = rng(0xbeef);
    let b: Vec<f64> = (0..n).map(|_| rr() - 0.5).collect();
    let x = SparseLu::factor(&g).unwrap().solve(&b).unwrap();
    let gp = g.permute_symmetric(&perm).unwrap();
    let bp: Vec<f64> = {
        let mut out = vec![0.0; n];
        for i in 0..n {
            out[perm[i]] = b[i];
        }
        out
    };
    let xp = SparseLu::factor(&gp).unwrap().solve(&bp).unwrap();
    let x_back: Vec<f64> = (0..n).map(|i| xp[perm[i]]).collect();
    assert!(bdsm_linalg::vector::rel_err(&x_back, &x, 1e-30) < 1e-10);
}

/// The supernodal kernel against the scalar oracle, on the matrices the
/// pipeline actually factors: real shifts across every test topology, one
/// shared workspace reused for all of them.
#[test]
fn supernodal_kernel_matches_scalar_on_mna_real_shifts() {
    let mut ws_scalar = LuWorkspace::<f64>::new();
    let mut ws_super = LuWorkspace::<f64>::new();
    for (name, net) in test_networks() {
        let d = mna::assemble(&net).unwrap();
        let (g, c) = (d.g.to_csc(), d.c.to_csc());
        let n = g.nrows();
        let scalar = ShiftedPencil::new(&g, &c)
            .unwrap()
            .with_numeric_kernel(NumericKernel::Scalar);
        let blocked = ShiftedPencil::new(&g, &c).unwrap();
        assert_eq!(blocked.numeric_kernel(), NumericKernel::Supernodal);
        let mut r = rng(0x9e37 ^ n as u64);
        let b: Vec<f64> = (0..n).map(|_| r() - 0.5).collect();
        for &s in &[1.0, 1.0e2, 1.0e4] {
            let lu_s = scalar.factor_real_with(s, &mut ws_scalar).unwrap();
            let lu_b = blocked.factor_real_with(s, &mut ws_super).unwrap();
            assert_eq!(
                lu_s.factor_nnz(),
                lu_b.factor_nnz(),
                "{name}: kernels disagree on fill at s={s}"
            );
            let xs = lu_s.solve(&b).unwrap();
            let xb = lu_b.solve(&b).unwrap();
            let rel = bdsm_linalg::vector::rel_err(&xb, &xs, 1e-30);
            assert!(rel <= 1e-10, "{name}: kernels disagree at s={s}: {rel}");
        }
    }
}

/// Same cross-check at complex shifts `s = jω` — the frequency-sweep and
/// `jω`-Krylov shape — including agreement with the dense `ZLu` oracle.
#[test]
fn supernodal_kernel_matches_scalar_on_mna_complex_shifts() {
    let mut ws = LuWorkspace::<Complex64>::new();
    for (name, net) in test_networks() {
        let d = mna::assemble(&net).unwrap();
        let (g, c) = (d.g.to_csc(), d.c.to_csc());
        let n = g.nrows();
        let scalar = ShiftedPencil::new(&g, &c)
            .unwrap()
            .with_numeric_kernel(NumericKernel::Scalar);
        let blocked = ShiftedPencil::new(&g, &c).unwrap();
        let mut r = rng(0x517e ^ n as u64);
        let b: Vec<f64> = (0..n).map(|_| r() - 0.5).collect();
        for &w in &[5.0e1, 4.0e3] {
            let s = Complex64::jomega(w);
            let xs = scalar.factor_complex(s).unwrap().solve_real(&b).unwrap();
            let xb = blocked
                .factor_complex_with(s, &mut ws)
                .unwrap()
                .solve_real(&b)
                .unwrap();
            let num: f64 = xs
                .iter()
                .zip(&xb)
                .map(|(p, q)| (*p - *q).abs_sq())
                .sum::<f64>()
                .sqrt();
            let den: f64 = xs.iter().map(|z| z.abs_sq()).sum::<f64>().sqrt();
            assert!(
                num / den <= 1e-10,
                "{name}: kernels disagree at ω={w}: {}",
                num / den
            );
            let zlu =
                bdsm_core::transfer::ZLu::factor_shifted(&g.to_dense(), &c.to_dense(), s).unwrap();
            let xd = zlu.solve_real(&b).unwrap();
            let numd: f64 = xb
                .iter()
                .zip(&xd)
                .map(|(p, q)| (*p - *q).abs_sq())
                .sum::<f64>()
                .sqrt();
            assert!(
                numd / den <= 1e-10,
                "{name}: supernodal vs ZLu at ω={w}: {}",
                numd / den
            );
        }
    }
}

/// Both kernels must report the same singular failure on a structurally
/// singular MNA matrix, and must leave their workspaces reusable.
#[test]
fn both_kernels_report_singular_and_recover() {
    let mut net = Network::new();
    let a = net.add_bus("a");
    let b = net.add_bus("floating");
    net.add_resistor(a, GROUND, 1.0).unwrap();
    net.add_capacitor(a, b, 1e-3).unwrap();
    net.add_port(a).unwrap();
    let d = mna::assemble(&net).unwrap();
    let (g, c) = (d.g.to_csc(), d.c.to_csc());
    for kernel in [NumericKernel::Scalar, NumericKernel::Supernodal] {
        let pencil = ShiftedPencil::new(&g, &c)
            .unwrap()
            .with_numeric_kernel(kernel);
        let mut ws = LuWorkspace::<f64>::new();
        assert!(
            matches!(
                pencil.factor_real_with(0.0, &mut ws),
                Err(LinalgError::Singular { .. })
            ),
            "{kernel:?} missed the singular G"
        );
        // The workspace must be clean after the failure: the regular
        // shift factors through the same workspace.
        assert!(pencil.factor_real_with(10.0, &mut ws).is_ok());
    }
}

#[test]
fn singular_mna_matrix_fails_loudly() {
    // A bus connected only through a capacitor has no DC path: G is
    // structurally singular, and factoring at s = 0 must report it.
    let mut net = Network::new();
    let a = net.add_bus("a");
    let b = net.add_bus("floating");
    net.add_resistor(a, GROUND, 1.0).unwrap();
    net.add_capacitor(a, b, 1e-3).unwrap();
    net.add_port(a).unwrap();
    let d = mna::assemble(&net).unwrap();
    let g = d.g.to_csc();
    assert!(matches!(
        SparseLu::factor(&g),
        Err(LinalgError::Singular { .. })
    ));
    // With the capacitor mass added (s > 0) the pencil becomes regular.
    let pencil = ShiftedPencil::new(&g, &d.c.to_csc()).unwrap();
    assert!(pencil.factor_real(0.0).is_err());
    assert!(pencil.factor_real(10.0).is_ok());
}
