//! Scale acceptance tests for the sparse backend.
//!
//! The point of `bdsm-sparse`: the pipeline that used to top out around
//! 500 states now reduces a ≥ 10,000-state synthetic grid — full-model
//! Krylov solves, congruence projection, and the reference transfer
//! evaluation all through sparse factorizations — within the ordinary test
//! budget, at the same ≤ 1e-6 transfer accuracy. A companion test pins the
//! sparse path against the dense oracle at ~500 states to 1e-10.

use bdsm_core::krylov::KrylovOpts;
use bdsm_core::reduce::{reduce_network, ReductionOpts, SolverBackend};
use bdsm_core::synth::rc_grid;
use bdsm_core::transfer::{
    eval_transfer, transfer_rel_err, SparseTransferEvaluator, TransferEvaluator,
};
use bdsm_linalg::Complex64;

/// Log-spaced angular frequencies in `[lo, hi]`.
fn log_freqs(lo: f64, hi: f64, count: usize) -> Vec<f64> {
    let (llo, lhi) = (lo.ln(), hi.ln());
    (0..count)
        .map(|i| (llo + (lhi - llo) * i as f64 / (count - 1) as f64).exp())
        .collect()
}

#[test]
fn sparse_backend_reduces_10k_state_grid() {
    // 100 × 100 RC mesh → 10,000 states: two orders of magnitude past the
    // dense ceiling (a dense G alone would be 800 MB).
    let net = rc_grid(100, 100, 1.0, 1e-3, 2.0);
    let opts = ReductionOpts {
        num_blocks: 8,
        krylov: KrylovOpts {
            expansion_points: vec![],
            jomega_points: vec![5.0e1, 4.5e2, 4.0e3],
            moments_per_point: 2,
            deflation_tol: 1e-12,
            ortho: Default::default(),
        },
        rank_tol: 1e-12,
        max_reduced_dim: Some(2000),
        backend: SolverBackend::Sparse,
        ..ReductionOpts::default()
    };
    let rm = reduce_network(&net, &opts).expect("10k-state sparse reduction");
    assert_eq!(rm.full_dim(), 10_000);
    assert_eq!(rm.backend, SolverBackend::Sparse);
    assert!(rm.projector.num_blocks() >= 8);
    assert!(
        rm.reduced_dim() * 5 <= rm.full_dim(),
        "reduced dim {} not ≤ n/5",
        rm.reduced_dim()
    );

    // Reference transfer through the sparse full-model path at 12
    // log-spaced frequencies spanning the expansion band.
    let full_ev =
        SparseTransferEvaluator::new(&rm.full.g, &rm.full.c, rm.full.b.clone(), rm.full.l.clone())
            .expect("sparse full evaluator");
    let mut worst = (0.0_f64, 0.0_f64);
    for &w in &log_freqs(50.0, 4.0e3, 12) {
        let s = Complex64::jomega(w);
        let hf = full_ev.eval(s).expect("full sample");
        let hr = eval_transfer(&rm.g, &rm.c, &rm.b, &rm.l, s).expect("reduced sample");
        let rel = transfer_rel_err(&hf, &hr);
        if rel > worst.0 {
            worst = (rel, w);
        }
    }
    assert!(
        worst.0 <= 1e-6,
        "worst relative error {:.3e} exceeds 1e-6 at ω = {:.3e} (q = {})",
        worst.0,
        worst.1,
        rm.reduced_dim()
    );
}

#[test]
fn sparse_and_dense_backends_agree_at_500_states() {
    // ~500-state grid, small enough for the dense oracle. Two agreements
    // are pinned at ≤ 1e-10:
    // 1. the sparse full-model evaluator vs the dense evaluator, frequency
    //    by frequency;
    // 2. the reduced transfer functions produced by the two pipeline
    //    backends.
    let net = rc_grid(20, 25, 1.0, 1e-3, 2.0);
    let mut opts = ReductionOpts {
        num_blocks: 4,
        krylov: KrylovOpts {
            expansion_points: vec![],
            jomega_points: vec![5.0e1, 4.5e2, 4.0e3],
            moments_per_point: 2,
            deflation_tol: 1e-12,
            ortho: Default::default(),
        },
        rank_tol: 1e-12,
        max_reduced_dim: Some(100),
        backend: SolverBackend::Sparse,
        ..ReductionOpts::default()
    };
    let rm_sparse = reduce_network(&net, &opts).expect("sparse reduction");
    opts.backend = SolverBackend::Dense;
    let rm_dense = reduce_network(&net, &opts).expect("dense reduction");
    assert_eq!(rm_sparse.full_dim(), 500);
    assert_eq!(rm_sparse.reduced_dim(), rm_dense.reduced_dim());

    let sparse_ev = SparseTransferEvaluator::new(
        &rm_sparse.full.g,
        &rm_sparse.full.c,
        rm_sparse.full.b.clone(),
        rm_sparse.full.l.clone(),
    )
    .expect("sparse evaluator");
    let full = rm_sparse.full.to_dense();
    let dense_ev = TransferEvaluator::new(full.g, full.c, full.b, full.l).expect("dense evaluator");

    for &w in &log_freqs(50.0, 4.0e3, 12) {
        let s = Complex64::jomega(w);
        let hs = sparse_ev.eval(s).expect("sparse sample");
        let hd = dense_ev.eval(s).expect("dense sample");
        let rel = transfer_rel_err(&hd, &hs);
        assert!(rel <= 1e-10, "full-model backends disagree at ω={w}: {rel}");

        let hrs = eval_transfer(&rm_sparse.g, &rm_sparse.c, &rm_sparse.b, &rm_sparse.l, s)
            .expect("sparse-backend ROM sample");
        let hrd = eval_transfer(&rm_dense.g, &rm_dense.c, &rm_dense.b, &rm_dense.l, s)
            .expect("dense-backend ROM sample");
        let rel_rom = transfer_rel_err(&hrd, &hrs);
        assert!(
            rel_rom <= 1e-10,
            "pipeline backends disagree at ω={w}: {rel_rom}"
        );
    }
}
