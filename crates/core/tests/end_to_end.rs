//! End-to-end acceptance tests for the BDSM pipeline.
//!
//! On synthetic RC ladder/grid networks with n ≥ 200 states and k ≥ 4
//! blocks, the reduced transfer function must match the full model at ≥ 10
//! sample frequencies with relative error ≤ 1e-6, the projector must be
//! verifiably block-diagonal, and the reduced dimension must be ≤ n/5.

use bdsm_core::krylov::KrylovOpts;
use bdsm_core::reduce::{reduce_network, ReducedModel, ReductionOpts, SolverBackend};
use bdsm_core::synth::{ieee_like_feeder, rc_grid, rc_ladder, rc_ladder_loaded};
use bdsm_core::transfer::{eval_transfer, transfer_rel_err, SparseTransferEvaluator};
use bdsm_linalg::Complex64;

/// Log-spaced angular frequencies in `[lo, hi]`.
fn log_freqs(lo: f64, hi: f64, count: usize) -> Vec<f64> {
    let (llo, lhi) = (lo.ln(), hi.ln());
    (0..count)
        .map(|i| (llo + (lhi - llo) * i as f64 / (count - 1) as f64).exp())
        .collect()
}

/// Asserts the three acceptance properties on a reduced model.
fn check_acceptance(rm: &ReducedModel, min_blocks: usize, omegas: &[f64], tol: f64) {
    let n = rm.full_dim();
    let q = rm.reduced_dim();

    // 1. Reduced dimension ≤ n/5.
    assert!(
        q * 5 <= n,
        "reduced dim {q} exceeds n/5 = {} (n = {n})",
        n / 5
    );

    // 2. Projector is verifiably block-diagonal with ≥ min_blocks blocks,
    //    orthonormal per block, and exactly zero off the block structure.
    assert!(rm.projector.num_blocks() >= min_blocks);
    assert!(rm.projector.orthonormality_error() < 1e-10);
    let dense = rm.projector.to_dense();
    let dims = rm.projector.block_dims();
    let mut r0 = 0;
    let mut c0 = 0;
    for (bi, &rows) in rm.block_sizes.iter().enumerate() {
        let cols = dims[bi];
        for i in 0..dense.nrows() {
            for j in 0..dense.ncols() {
                // An entry in this block's row band or column band but not
                // both lies off the block diagonal: must be exactly zero.
                let in_row_band = i >= r0 && i < r0 + rows;
                let in_col_band = j >= c0 && j < c0 + cols;
                if in_row_band != in_col_band {
                    assert_eq!(
                        dense[(i, j)],
                        0.0,
                        "projector has off-block leakage at ({i}, {j})"
                    );
                }
            }
        }
        r0 += rows;
        c0 += cols;
    }

    // 3. Transfer-function match at every sample frequency, with the full
    //    model evaluated through the sparse path (never densified).
    assert!(omegas.len() >= 10, "need at least 10 sample frequencies");
    let full_ev =
        SparseTransferEvaluator::new(&rm.full.g, &rm.full.c, rm.full.b.clone(), rm.full.l.clone())
            .expect("full evaluator");
    let mut worst = (0.0_f64, 0.0_f64);
    for &w in omegas {
        let s = Complex64::jomega(w);
        let hf = full_ev.eval(s).expect("full transfer sample");
        let hr = eval_transfer(&rm.g, &rm.c, &rm.b, &rm.l, s).expect("reduced transfer sample");
        let rel = transfer_rel_err(&hf, &hr);
        if rel > worst.0 {
            worst = (rel, w);
        }
    }
    assert!(
        worst.0 <= tol,
        "worst relative error {:.3e} exceeds {tol:.1e} (at ω = {:.3e}; q = {q}, n = {n})",
        worst.0,
        worst.1
    );
}

#[test]
fn rc_ladder_500_states_5_blocks() {
    // 500 buses → 500 states; load taps every 10 buses keep the slowest
    // poles bounded away from zero, as on a real distribution line.
    let net = rc_ladder_loaded(500, 1.0, 1e-3, 5.0, 5);
    let opts = ReductionOpts {
        num_blocks: 4,
        krylov: KrylovOpts {
            expansion_points: vec![],
            jomega_points: vec![5.0e1, 4.5e2, 4.0e3],
            moments_per_point: 2,
            deflation_tol: 1e-12,
            ortho: Default::default(),
        },
        rank_tol: 1e-12,
        max_reduced_dim: Some(100),
        backend: SolverBackend::Sparse,
        ..ReductionOpts::default()
    };
    let rm = reduce_network(&net, &opts).expect("reduction");
    assert_eq!(rm.full_dim(), 500);
    let omegas = log_freqs(50.0, 4.0e3, 12);
    check_acceptance(&rm, 4, &omegas, 1e-6);
}

#[test]
fn rc_grid_500_states_5_blocks() {
    // 20 × 25 mesh → 500 states.
    let net = rc_grid(20, 25, 1.0, 1e-3, 2.0);
    let opts = ReductionOpts {
        num_blocks: 4,
        krylov: KrylovOpts {
            expansion_points: vec![],
            jomega_points: vec![5.0e1, 4.5e2, 4.0e3],
            moments_per_point: 2,
            deflation_tol: 1e-12,
            ortho: Default::default(),
        },
        rank_tol: 1e-12,
        max_reduced_dim: Some(100),
        backend: SolverBackend::Sparse,
        ..ReductionOpts::default()
    };
    let rm = reduce_network(&net, &opts).expect("reduction");
    assert_eq!(rm.full_dim(), 500);
    let omegas = log_freqs(50.0, 4.0e3, 12);
    check_acceptance(&rm, 4, &omegas, 1e-6);
}

#[test]
fn feeder_with_inductors_reduces_accurately() {
    // Radial feeder network with series inductance: 4 feeders × 120 buses
    // + substation = 481 buses, + 4 inductor currents = 485 states.
    let net = ieee_like_feeder(4, 120, 1.0, 1e-3, 1e-5, 2.0);
    let opts = ReductionOpts {
        num_blocks: 4,
        krylov: KrylovOpts {
            expansion_points: vec![],
            jomega_points: vec![5.0e1, 4.5e2, 4.0e3],
            moments_per_point: 2,
            deflation_tol: 1e-12,
            ortho: Default::default(),
        },
        rank_tol: 1e-12,
        max_reduced_dim: Some(97),
        backend: SolverBackend::Sparse,
        ..ReductionOpts::default()
    };
    let rm = reduce_network(&net, &opts).expect("reduction");
    assert!(rm.full_dim() >= 200);
    let omegas = log_freqs(50.0, 4.0e3, 12);
    check_acceptance(&rm, 4, &omegas, 1e-6);
}

#[test]
fn reduction_ratio_is_substantial() {
    let net = rc_ladder(250, 1.0, 1e-3, 2.0);
    let opts = ReductionOpts {
        num_blocks: 5,
        krylov: KrylovOpts {
            expansion_points: vec![5.0e1, 1.0e3],
            jomega_points: vec![],
            moments_per_point: 2,
            deflation_tol: 1e-10,
            ortho: Default::default(),
        },
        rank_tol: 1e-12,
        max_reduced_dim: None,
        backend: SolverBackend::Sparse,
        ..ReductionOpts::default()
    };
    let rm = reduce_network(&net, &opts).expect("reduction");
    // Block-diagonal reduced G/C keep block sparsity: entries coupling
    // non-adjacent blocks of a chain stay (numerically) tiny.
    assert!(rm.reduced_dim() * 5 <= rm.full_dim());
    assert!(rm.projector.num_blocks() == 5);
}
