//! Span-tree contract of the `core::par` fan-out: worker spans nest
//! under the span that was open at fork time, carry their worker index as
//! the logical tid, and are merged into the parent trace **in spawn
//! order** — so the trace layout is deterministic no matter how the OS
//! actually interleaved the workers.
//!
//! These tests mutate the process-global obs level and `BDSM_THREADS`,
//! so they serialize behind one lock.

use bdsm_core::par;
use bdsm_obs::{span, timing_span, ObsLevel, Trace};
use std::sync::Mutex;

static ENV_LOCK: Mutex<()> = Mutex::new(());

/// Scoped override of `BDSM_THREADS` + obs level, restored on drop.
struct Scope {
    prev_threads: Option<String>,
    prev_level: ObsLevel,
}

impl Scope {
    fn new(threads: &str, level: ObsLevel) -> Scope {
        let prev_threads = std::env::var("BDSM_THREADS").ok();
        let prev_level = bdsm_obs::level();
        std::env::set_var("BDSM_THREADS", threads);
        bdsm_obs::set_level(level);
        Scope {
            prev_threads,
            prev_level,
        }
    }
}

impl Drop for Scope {
    fn drop(&mut self) {
        bdsm_obs::set_level(self.prev_level);
        match &self.prev_threads {
            Some(v) => std::env::set_var("BDSM_THREADS", v),
            None => std::env::remove_var("BDSM_THREADS"),
        }
    }
}

/// A tiny traced fan-out: an outer timing span, then `parallel_map` over
/// `items` work items with one fine span each.
fn traced_fanout(items: usize) -> Trace {
    let data: Vec<usize> = (0..items).collect();
    let (_, trace) = Trace::collect(|| {
        let _outer = timing_span!("test.outer");
        par::parallel_map(&data, |i, &x| {
            let _s = span!("test.item", item = i);
            x * 2
        })
    });
    trace
}

#[test]
fn worker_spans_nest_in_spawn_order_with_logical_tids() {
    let _guard = ENV_LOCK.lock().unwrap();
    let _scope = Scope::new("3", ObsLevel::Spans);
    let trace = traced_fanout(8);

    // One outer span at the session root, on the session thread.
    let outer: Vec<_> = trace
        .events
        .iter()
        .filter(|e| e.name == "test.outer")
        .collect();
    assert_eq!(outer.len(), 1);
    assert_eq!((outer[0].depth, outer[0].tid), (0, 0));

    // Three workers, each with a `par.worker` span nested one level under
    // the outer span and a distinct logical tid.
    let workers: Vec<_> = trace
        .events
        .iter()
        .filter(|e| e.name == "par.worker")
        .collect();
    assert_eq!(workers.len(), 3, "one par.worker span per worker");
    // Adoption happens at join in spawn order, so the merged trace lists
    // worker 1's events, then worker 2's, then worker 3's.
    let tids: Vec<u32> = workers.iter().map(|e| e.tid).collect();
    assert_eq!(tids, vec![1, 2, 3]);
    for w in &workers {
        assert_eq!(w.depth, 1, "worker span nests under the outer span");
    }

    // Every item span sits inside some worker's span: one level deeper,
    // same logical tid as a worker.
    let items: Vec<_> = trace
        .events
        .iter()
        .filter(|e| e.name == "test.item")
        .collect();
    assert_eq!(items.len(), 8, "one span per work item");
    for e in &items {
        assert_eq!(e.depth, 2, "item span nests under its worker span");
        assert!((1..=3).contains(&e.tid), "item span carries a worker tid");
    }

    // The merged event order groups each worker's items contiguously
    // (spawn-order adoption), regardless of actual interleaving.
    let item_tids: Vec<u32> = trace
        .events
        .iter()
        .filter(|e| e.name == "test.item")
        .map(|e| e.tid)
        .collect();
    let mut sorted = item_tids.clone();
    sorted.sort_unstable();
    assert_eq!(item_tids, sorted, "worker events adopt in spawn order");
}

#[test]
fn serial_fanout_records_inline_without_worker_spans() {
    let _guard = ENV_LOCK.lock().unwrap();
    let _scope = Scope::new("1", ObsLevel::Spans);
    let trace = traced_fanout(5);
    // The single-worker short-circuit runs on the session thread: no
    // worker spans, item spans directly under the outer span on tid 0.
    assert_eq!(trace.count("par.worker"), 0);
    let items: Vec<_> = trace
        .events
        .iter()
        .filter(|e| e.name == "test.item")
        .collect();
    assert_eq!(items.len(), 5);
    for e in &items {
        assert_eq!((e.depth, e.tid), (1, 0));
    }
}

#[test]
fn fine_spans_are_gated_by_level_but_timing_spans_survive_off() {
    let _guard = ENV_LOCK.lock().unwrap();
    // At Off, a trace session still collects Timings-tier spans (that is
    // how `StageTimings` keeps working with observability disabled), but
    // fine `span!` sites stay dark — on the session thread and on
    // workers alike.
    let _scope = Scope::new("3", ObsLevel::Off);
    let trace = traced_fanout(6);
    assert_eq!(trace.count("test.outer"), 1);
    assert_eq!(
        trace.count("test.item"),
        0,
        "fine spans must stay dark at Off"
    );
    assert_eq!(
        trace.count("par.worker"),
        0,
        "worker spans are fine-grained"
    );

    bdsm_obs::set_level(ObsLevel::Timings);
    let trace = traced_fanout(6);
    assert_eq!(trace.count("test.outer"), 1);
    assert_eq!(trace.count("test.item"), 0);

    bdsm_obs::set_level(ObsLevel::Spans);
    let trace = traced_fanout(6);
    assert_eq!(trace.count("test.item"), 6);
}
