//! The parallel reduction engine's contract: fan-out changes wall-clock,
//! never bytes. Reduced models and frequency sweeps must be
//! **bitwise-identical** for any worker count, because every work item
//! (expansion point, block SVD, frequency sample) is a pure function of
//! its inputs and results are merged in item order.

use bdsm_circuit::PartitionStrategy;
use bdsm_core::krylov::KrylovOpts;
use bdsm_core::reduce::{reduce_network, reduce_network_timed, ReductionOpts, SolverBackend};
use bdsm_core::synth::{rc_grid, rc_ladder_loaded};
use bdsm_core::transfer::SparseTransferEvaluator;
use bdsm_linalg::Complex64;
use std::sync::Mutex;

/// One test mutates `BDSM_THREADS`, which the fan-out workers of every
/// other test read via `getenv`; concurrent `setenv`/`getenv` is a data
/// race, so all tests in this binary serialize behind this lock.
static ENV_LOCK: Mutex<()> = Mutex::new(());

fn engine_opts() -> ReductionOpts {
    ReductionOpts {
        num_blocks: 6,
        krylov: KrylovOpts {
            expansion_points: vec![1.0e2],
            jomega_points: vec![5.0e1, 4.5e2, 4.0e3],
            moments_per_point: 2,
            deflation_tol: 1e-12,
            ortho: Default::default(),
        },
        rank_tol: 1e-12,
        max_reduced_dim: Some(48),
        backend: SolverBackend::Sparse,
        ..ReductionOpts::default()
    }
}

fn model_bytes(rm: &bdsm_core::ReducedModel) -> Vec<f64> {
    let mut out = Vec::new();
    for m in [&rm.g, &rm.c, &rm.b, &rm.l] {
        out.extend_from_slice(m.as_slice());
    }
    out
}

/// Runs the same reduction under worker counts 1, 2, and 5 (forced via
/// `BDSM_THREADS`, which deliberately oversubscribes small machines) and
/// requires identical bytes. Restores the environment afterwards.
#[test]
fn reduced_model_is_bitwise_invariant_under_thread_count() {
    let _guard = ENV_LOCK.lock().unwrap();
    let net = rc_ladder_loaded(400, 1.0, 1e-3, 5.0, 5);
    let opts = engine_opts();
    let prev = std::env::var("BDSM_THREADS").ok();
    let mut outputs = Vec::new();
    for threads in ["1", "2", "5"] {
        std::env::set_var("BDSM_THREADS", threads);
        let (rm, stages) = reduce_network_timed(&net, &opts).unwrap();
        assert_eq!(stages.threads, threads.parse::<usize>().unwrap());
        assert!(stages.krylov_us > 0.0 && stages.total_us() > 0.0);
        outputs.push((threads, model_bytes(&rm)));
    }
    match prev {
        Some(v) => std::env::set_var("BDSM_THREADS", v),
        None => std::env::remove_var("BDSM_THREADS"),
    }
    let (_, ref reference) = outputs[0];
    for (threads, bytes) in &outputs[1..] {
        assert_eq!(
            bytes, reference,
            "reduced model differs between 1 and {threads} workers"
        );
    }
}

/// The tentpole bar at scale: a full 10⁴-state reduce — pipelined shift
/// factorizations feeding the panel-blocked merge tree — must stay
/// bitwise-identical across worker counts. The merge tree's shape is a
/// function of the expansion-point count alone and every produce/consume
/// stage is a pure function of its point, so `BDSM_THREADS` ∈ {1, 2, 5}
/// may only change wall-clock. Options stay lean (one moment, three
/// points) to keep the debug-build cost of three 10⁴ reductions sane.
#[test]
fn full_reduce_at_1e4_is_bitwise_invariant_under_thread_count() {
    let _guard = ENV_LOCK.lock().unwrap();
    let net = rc_grid(100, 100, 1.0, 1e-3, 2.0);
    let opts = ReductionOpts {
        num_blocks: 8,
        krylov: KrylovOpts {
            expansion_points: vec![1.0e2],
            jomega_points: vec![4.5e2, 4.0e3],
            moments_per_point: 1,
            deflation_tol: 1e-12,
            ortho: Default::default(),
        },
        rank_tol: 1e-12,
        max_reduced_dim: Some(40),
        backend: SolverBackend::Sparse,
        ..ReductionOpts::default()
    };
    let prev = std::env::var("BDSM_THREADS").ok();
    let mut outputs = Vec::new();
    for threads in ["1", "2", "5"] {
        std::env::set_var("BDSM_THREADS", threads);
        let (rm, stages) = reduce_network_timed(&net, &opts).unwrap();
        // The timed path must also see the per-point/merge split the
        // scaling bench records.
        assert!(
            stages.krylov_point_us > 0.0 && stages.krylov_merge_us > 0.0,
            "krylov point/merge spans missing from the timed trace"
        );
        outputs.push((threads, model_bytes(&rm)));
    }
    match prev {
        Some(v) => std::env::set_var("BDSM_THREADS", v),
        None => std::env::remove_var("BDSM_THREADS"),
    }
    let (_, ref reference) = outputs[0];
    for (threads, bytes) in &outputs[1..] {
        assert_eq!(
            bytes, reference,
            "10^4-state reduced model differs between 1 and {threads} workers"
        );
    }
}

/// The observability layer's zero-interference contract: recording spans
/// and metrics must never change a numerical result. The same reduction
/// runs under every `ObsLevel` × worker-count combination, and all six
/// reduced models must be byte-identical.
#[test]
fn reduced_model_is_bitwise_invariant_under_obs_level() {
    use bdsm_obs::ObsLevel;
    let _guard = ENV_LOCK.lock().unwrap();
    let net = rc_ladder_loaded(400, 1.0, 1e-3, 5.0, 5);
    let opts = engine_opts();
    let prev = std::env::var("BDSM_THREADS").ok();
    let prev_level = bdsm_obs::level();
    let mut outputs = Vec::new();
    for level in [ObsLevel::Off, ObsLevel::Timings, ObsLevel::Spans] {
        bdsm_obs::set_level(level);
        for threads in ["1", "5"] {
            std::env::set_var("BDSM_THREADS", threads);
            let rm = reduce_network(&net, &opts).unwrap();
            outputs.push((level, threads, model_bytes(&rm)));
        }
    }
    bdsm_obs::set_level(prev_level);
    match prev {
        Some(v) => std::env::set_var("BDSM_THREADS", v),
        None => std::env::remove_var("BDSM_THREADS"),
    }
    let (_, _, ref reference) = outputs[0];
    for (level, threads, bytes) in &outputs[1..] {
        assert_eq!(
            bytes, reference,
            "reduced model differs at obs level {level:?} with {threads} workers"
        );
    }
}

/// Same contract for the nested-dissection partitioner: the strategy runs
/// before the fan-out, so worker count must not leak into the separator
/// choice or anything downstream of it — reduced models stay
/// bitwise-identical under `BDSM_THREADS` ∈ {1, 2, 5}.
#[test]
fn nested_dissection_reduction_is_bitwise_invariant_under_thread_count() {
    let _guard = ENV_LOCK.lock().unwrap();
    let net = rc_grid(25, 24, 1.0, 1e-3, 2.0);
    let opts = ReductionOpts {
        partition_strategy: PartitionStrategy::NestedDissection,
        ..engine_opts()
    };
    let prev = std::env::var("BDSM_THREADS").ok();
    let mut outputs = Vec::new();
    for threads in ["1", "2", "5"] {
        std::env::set_var("BDSM_THREADS", threads);
        let rm = reduce_network(&net, &opts).unwrap();
        outputs.push((threads, model_bytes(&rm)));
    }
    match prev {
        Some(v) => std::env::set_var("BDSM_THREADS", v),
        None => std::env::remove_var("BDSM_THREADS"),
    }
    let (_, ref reference) = outputs[0];
    for (threads, bytes) in &outputs[1..] {
        assert_eq!(
            bytes, reference,
            "ND-partitioned model differs between 1 and {threads} workers"
        );
    }
}

/// The parallel frequency sweep must reproduce the one-at-a-time
/// evaluations exactly, sample for sample.
#[test]
fn parallel_sweep_matches_serial_evals_bitwise() {
    let _guard = ENV_LOCK.lock().unwrap();
    let net = rc_grid(12, 14, 1.0, 1e-3, 2.0);
    let rm = reduce_network(&net, &engine_opts()).unwrap();
    let ev =
        SparseTransferEvaluator::new(&rm.full.g, &rm.full.c, rm.full.b.clone(), rm.full.l.clone())
            .unwrap();
    let omegas: Vec<f64> = (0..12).map(|i| 10.0_f64 * 1.7_f64.powi(i)).collect();
    let sweep = ev.eval_jomega_sweep(&omegas).unwrap();
    assert_eq!(sweep.len(), omegas.len());
    for (k, &w) in omegas.iter().enumerate() {
        let one = ev.eval(Complex64::jomega(w)).unwrap();
        assert_eq!(sweep[k], one, "sweep sample at ω={w} differs");
    }
}

/// Stage timings must decompose the pipeline: every stage non-negative,
/// and the reduced model identical to the untimed entry point's.
#[test]
fn timed_reduction_matches_untimed() {
    let _guard = ENV_LOCK.lock().unwrap();
    let net = rc_ladder_loaded(200, 1.0, 1e-3, 5.0, 5);
    let opts = engine_opts();
    let rm_a = reduce_network(&net, &opts).unwrap();
    let (rm_b, stages) = reduce_network_timed(&net, &opts).unwrap();
    assert_eq!(model_bytes(&rm_a), model_bytes(&rm_b));
    assert!(stages.assemble_us >= 0.0);
    assert!(stages.partition_us >= 0.0);
    assert!(stages.krylov_us > 0.0);
    assert!(stages.project_us > 0.0);
    assert!(stages.threads >= 1);
    let q = rm_b.reduced_dim();
    assert!(q <= 48 && q >= rm_b.block_sizes.len());
}
