//! Scale acceptance for the staged engine's headline mode: adaptive
//! greedy shift selection plus exact interface preservation on a
//! 10,000-state grid, bitwise-deterministic across worker counts.
//!
//! This file holds a single test because it manipulates `BDSM_THREADS`;
//! keeping it alone in its binary avoids env races with sibling tests.

use bdsm_core::engine::{AdaptiveShiftOpts, ShiftStrategy};
use bdsm_core::krylov::KrylovOpts;
use bdsm_core::projector::InterfacePolicy;
use bdsm_core::reduce::{reduce_network_with_report, ReductionOpts, SolverBackend};
use bdsm_core::synth::rc_grid;
use bdsm_core::transfer::{eval_transfer, transfer_rel_err, SparseTransferEvaluator, ZLu};
use bdsm_linalg::Complex64;

fn model_bytes(rm: &bdsm_core::ReducedModel) -> Vec<f64> {
    let mut out = Vec::new();
    for m in [&rm.g, &rm.c, &rm.b, &rm.l] {
        out.extend_from_slice(m.as_slice());
    }
    out
}

#[test]
fn adaptive_exact_10k_grid_is_deterministic_and_accurate() {
    // 100 × 100 RC mesh → 10,000 states.
    let net = rc_grid(100, 100, 1.0, 1e-3, 2.0);
    let opts = ReductionOpts {
        num_blocks: 4,
        krylov: KrylovOpts {
            expansion_points: vec![],
            jomega_points: vec![4.5e2], // coarse initial shift
            moments_per_point: 2,
            deflation_tol: 1e-12,
            ortho: Default::default(),
        },
        rank_tol: 1e-12,
        max_reduced_dim: Some(2000),
        backend: SolverBackend::Sparse,
        shift_strategy: ShiftStrategy::Adaptive(AdaptiveShiftOpts {
            candidate_omegas: AdaptiveShiftOpts::log_grid(5.0e1, 4.0e3, 6),
            tol: 1e-6,
            max_shifts: 4,
        }),
        interface_policy: InterfacePolicy::Exact,
        ..ReductionOpts::default()
    };

    // The greedy loop (residual-driven selection included) must produce
    // bitwise-identical models under 1, 2, and 5 workers.
    let prev = std::env::var("BDSM_THREADS").ok();
    let mut outputs = Vec::new();
    for threads in ["1", "2", "5"] {
        std::env::set_var("BDSM_THREADS", threads);
        let (rm, report) = reduce_network_with_report(&net, &opts).expect("adaptive reduction");
        assert!(
            report.certified,
            "loop did not certify under {threads} workers"
        );
        outputs.push((threads, model_bytes(&rm), rm, report));
    }
    match prev {
        Some(v) => std::env::set_var("BDSM_THREADS", v),
        None => std::env::remove_var("BDSM_THREADS"),
    }
    let (_, reference_bytes, rm, report) = &outputs[0];
    for (threads, bytes, _, rep) in &outputs[1..] {
        assert_eq!(
            bytes, reference_bytes,
            "adaptive reduction differs between 1 and {threads} workers"
        );
        assert_eq!(rep.shifts, report.shifts, "shift selection diverged");
    }

    // Acceptance: ≤ n/5 states, certified ≤ 1e-6 on the candidate grid,
    // and independently ≤ 1e-6 at 12 log-spaced frequencies.
    assert_eq!(rm.full_dim(), 10_000);
    assert!(
        rm.reduced_dim() * 5 <= rm.full_dim(),
        "reduced dim {} not ≤ n/5",
        rm.reduced_dim()
    );
    assert!(!report.rounds.is_empty() && report.shifts.len() <= 4);
    let full_ev =
        SparseTransferEvaluator::new(&rm.full.g, &rm.full.c, rm.full.b.clone(), rm.full.l.clone())
            .expect("full evaluator");
    let mut worst = 0.0_f64;
    for &w in &AdaptiveShiftOpts::log_grid(5.0e1, 4.0e3, 12) {
        let s = Complex64::jomega(w);
        let hf = full_ev.eval(s).expect("full sample");
        let hr = eval_transfer(&rm.g, &rm.c, &rm.b, &rm.l, s).expect("reduced sample");
        worst = worst.max(transfer_rel_err(&hf, &hr));
    }
    assert!(worst <= 1e-6, "worst transfer error {worst:.3e} > 1e-6");

    // Machine-exact interface reproduction: every interface row of the
    // reduced basis is an exact unit vector, so the reconstruction at an
    // interface bus IS the corresponding ROM coordinate, bit for bit.
    let map = rm.interface_map();
    assert_eq!(map.len(), rm.interface_states.len());
    assert!(!map.is_empty());
    for &(row, col) in map {
        let (bi, local_row, local_col) = locate(rm, row, col);
        let block = rm.projector.block(bi);
        for j in 0..block.ncols() {
            let expect = if j == local_col { 1.0 } else { 0.0 };
            assert_eq!(block[(local_row, j)], expect, "row {row} not unit");
        }
    }

    // And the boundary voltages agree with the full model at the coarse
    // (matched) shift.
    let s = Complex64::jomega(4.5e2);
    let full_lu = bdsm_sparse::ShiftedPencil::new(&rm.full.g, &rm.full.c)
        .unwrap()
        .factor_complex(s)
        .unwrap();
    let rom_lu = ZLu::factor_shifted(&rm.g, &rm.c, s).unwrap();
    let x_full = full_lu.solve_real(&rm.full.b.col(0)).unwrap();
    let x_rom = rom_lu.solve_real(&rm.b.col(0)).unwrap();
    let scale = x_full
        .iter()
        .map(|z| z.abs())
        .fold(0.0_f64, f64::max)
        .max(f64::MIN_POSITIVE);
    let mut worst_boundary = 0.0_f64;
    for &(row, col) in map {
        worst_boundary = worst_boundary.max((x_rom[col] - x_full[row]).abs() / scale);
    }
    assert!(
        worst_boundary <= 1e-9,
        "boundary voltages off by {worst_boundary:.3e}"
    );
}

/// Maps a global (row, col) pair onto (block, local row, local col).
fn locate(rm: &bdsm_core::ReducedModel, row: usize, col: usize) -> (usize, usize, usize) {
    let mut r0 = 0;
    let mut c0 = 0;
    for (bi, &rows) in rm.block_sizes.iter().enumerate() {
        let cols = rm.projector.block(bi).ncols();
        if row < r0 + rows {
            assert!(col >= c0 && col < c0 + cols, "interface col outside block");
            return (bi, row - r0, col - c0);
        }
        r0 += rows;
        c0 += cols;
    }
    panic!("row {row} beyond state dimension");
}
