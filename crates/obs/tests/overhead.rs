//! The zero-cost contract: with observability off, an instrumented hot
//! path pays one relaxed atomic load per span site and records nothing.
//!
//! This binary holds a single test so nothing else in the process can
//! flip the global level underneath the measurement.

use std::time::Instant;

use bdsm_obs::{span, ObsLevel, Trace};

fn span_site(i: u64) -> u64 {
    let _s = span!("hot.loop", i = i);
    // A token amount of real work so the loop body is not pure span.
    i.wrapping_mul(0x9e3779b97f4a7c15).rotate_left(7)
}

#[test]
fn disabled_span_sites_are_nearly_free() {
    bdsm_obs::set_level(ObsLevel::Off);

    // Nothing is recorded outside a session / at Off.
    let mut acc = 0u64;
    for i in 0..1_000 {
        acc ^= span_site(i);
    }
    let ((), trace) = Trace::collect(|| {
        // Session floor is Timings; span!() sites still skip at Off.
        acc ^= span_site(0);
    });
    assert_eq!(trace.count("hot.loop"), 0);

    // Timing assertion: generous bound (CI machines are noisy), but
    // tight enough to catch an accidental allocation, TLS borrow, or
    // Instant::now() on the disabled path. Average over many calls.
    const N: u64 = 2_000_000;
    let t = Instant::now();
    for i in 0..N {
        acc = acc.wrapping_add(span_site(i));
    }
    let per_call_ns = t.elapsed().as_nanos() as f64 / N as f64;
    // Keep the accumulator observable so the loop cannot be elided.
    assert_ne!(acc, 1);
    assert!(
        per_call_ns < 150.0,
        "disabled span site costs {per_call_ns:.1} ns/call (expected ~single atomic load)"
    );
}

/// Strict probe for humans: prints the measured cost per disabled span
/// site. Run with `cargo test -p bdsm-obs --release -- --ignored --nocapture`.
#[test]
#[ignore]
fn report_disabled_span_cost() {
    bdsm_obs::set_level(ObsLevel::Off);
    const N: u64 = 20_000_000;
    let mut acc = 0u64;
    let t = Instant::now();
    for i in 0..N {
        acc = acc.wrapping_add(span_site(i));
    }
    let per_call_ns = t.elapsed().as_nanos() as f64 / N as f64;
    println!("disabled span site: {per_call_ns:.2} ns/call (acc {acc})");
}
