//! Zero-cost observability for the BDSM pipeline.
//!
//! Three pieces, all dependency-free:
//!
//! * **Hierarchical span tracing** — RAII spans ([`span!`] /
//!   [`timing_span!`]) record monotonic start/duration plus key/value
//!   attributes into a per-thread buffer. Worker buffers from
//!   `core::par` are merged back in spawn order, so the final event
//!   list is deterministic for a deterministic workload. A finished
//!   [`Trace`] exports as Chrome trace-event JSON
//!   ([`Trace::save_chrome`], viewable in `chrome://tracing` or
//!   Perfetto) or as a nested text tree ([`Trace::render_tree`]).
//! * **Metrics registry** — process-global [`Counter`]s and [`Gauge`]s
//!   ([`metrics()`]) plus embeddable [`CacheStats`] and fixed-bucket
//!   latency [`Histogram`]s, snapshot to JSON via [`MetricsSnapshot`].
//! * **Fault injection** — named [`faultpoint!`] sites robustness tests
//!   arm ([`fault::arm`]) to panic on demand, proving typed-error
//!   recovery paths; free (one relaxed atomic load) while disarmed.
//! * **Zero overhead when disabled** — a process-global [`ObsLevel`]
//!   (env override `BDSM_OBS=off|timings|spans`) gates every
//!   instrumented path behind a single relaxed atomic load, and spans
//!   are only recorded inside an explicit [`Trace::collect`] session,
//!   so library code sprinkled with spans costs nothing for callers
//!   that never ask for a trace. Instrumentation never feeds back into
//!   numerical results: the engine's bitwise-determinism suites run at
//!   every level.
//!
//! # Example
//!
//! ```
//! use bdsm_obs::{span, timing_span, ObsLevel, Trace};
//!
//! bdsm_obs::set_level(ObsLevel::Spans);
//! let (value, trace) = Trace::collect(|| {
//!     let _stage = timing_span!("stage.demo");
//!     let mut sum = 0u64;
//!     for i in 0..4u64 {
//!         let _s = span!("demo.item", item = i);
//!         sum += i * i;
//!     }
//!     sum
//! });
//! assert_eq!(value, 14);
//! assert_eq!(trace.count("demo.item"), 4);
//! assert_eq!(trace.count("stage.demo"), 1);
//! bdsm_obs::set_level(ObsLevel::Off);
//! ```

use std::cell::RefCell;
use std::sync::atomic::{AtomicU32, AtomicU8, Ordering};
use std::time::Instant;

pub mod fault;
mod metrics;
mod trace;

pub use metrics::{
    metrics, CacheStats, CacheStatsSnapshot, Counter, Gauge, Histogram, HistogramSnapshot, Metrics,
    MetricsSnapshot,
};
pub use trace::{AttrValue, SpanEvent, Trace};

// ---------------------------------------------------------------------------
// Observability level
// ---------------------------------------------------------------------------

/// How much instrumentation is live, process-wide.
///
/// Levels are ordered: `Spans` implies `Timings`. The default is `Off`,
/// overridable by the `BDSM_OBS` environment variable (read once, on
/// first query) or programmatically via [`set_level`] (which wins over
/// the environment and is what tests and benches should use — mutating
/// the process environment races with other threads).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum ObsLevel {
    /// No metrics, no spans. Instrumented paths cost one relaxed
    /// atomic load each.
    Off = 0,
    /// Metrics (counters/gauges/histograms) and coarse stage spans.
    Timings = 1,
    /// Everything: per-shift / per-block / per-query spans too.
    Spans = 2,
}

impl ObsLevel {
    /// Parse a `BDSM_OBS` value, case-insensitively.
    ///
    /// Accepts `off`/`0`, `timings`/`1`, `spans`/`2`; anything else is
    /// `None` (treated as `Off` by the env reader).
    pub fn parse(s: &str) -> Option<ObsLevel> {
        match s.trim().to_ascii_lowercase().as_str() {
            "off" | "0" | "" => Some(ObsLevel::Off),
            "timings" | "timing" | "1" => Some(ObsLevel::Timings),
            "spans" | "span" | "2" => Some(ObsLevel::Spans),
            _ => None,
        }
    }

    fn from_u8(v: u8) -> ObsLevel {
        match v {
            2 => ObsLevel::Spans,
            1 => ObsLevel::Timings,
            _ => ObsLevel::Off,
        }
    }
}

/// Sentinel: `CONFIGURED` not yet initialised from the environment.
const LEVEL_UNSET: u8 = 0xFF;

/// Level requested by env/`set_level`.
static CONFIGURED: AtomicU8 = AtomicU8::new(LEVEL_UNSET);
/// Number of live `Trace::collect` sessions (process-wide).
static SESSIONS: AtomicU32 = AtomicU32::new(0);
/// `max(configured, sessions > 0 ? Timings : Off)` — the single byte
/// every span checks. Kept denormalized so the hot path is one load.
static EFFECTIVE: AtomicU8 = AtomicU8::new(0);

fn configured() -> u8 {
    let v = CONFIGURED.load(Ordering::Relaxed);
    if v != LEVEL_UNSET {
        return v;
    }
    let from_env = std::env::var("BDSM_OBS")
        .ok()
        .and_then(|s| ObsLevel::parse(&s))
        .unwrap_or(ObsLevel::Off) as u8;
    // First writer wins; a concurrent set_level() may already have stored.
    let _ =
        CONFIGURED.compare_exchange(LEVEL_UNSET, from_env, Ordering::Relaxed, Ordering::Relaxed);
    let v = CONFIGURED.load(Ordering::Relaxed);
    recompute_effective(v);
    v
}

fn recompute_effective(cfg: u8) {
    let floor = if SESSIONS.load(Ordering::Relaxed) > 0 {
        ObsLevel::Timings as u8
    } else {
        ObsLevel::Off as u8
    };
    EFFECTIVE.store(cfg.max(floor), Ordering::Relaxed);
}

/// The configured observability level (env `BDSM_OBS` or [`set_level`]).
pub fn level() -> ObsLevel {
    ObsLevel::from_u8(configured())
}

/// True when the configured level is at least `min`.
///
/// This is the gate for *metrics*: counters and gauges record only when
/// the user asked for observability. Spans additionally require a live
/// [`Trace::collect`] session (which raises the effective level to
/// `Timings` on its own, so stage timings work even at `BDSM_OBS=off`).
#[inline]
pub fn enabled(min: ObsLevel) -> bool {
    configured() >= min as u8
}

/// Set the process-wide level programmatically. Overrides `BDSM_OBS`.
pub fn set_level(level: ObsLevel) {
    CONFIGURED.store(level as u8, Ordering::Relaxed);
    recompute_effective(level as u8);
}

/// Effective level for span recording: configured level, floored at
/// `Timings` while any trace session is live.
#[inline]
fn effective_at_least(min: ObsLevel) -> bool {
    let v = EFFECTIVE.load(Ordering::Relaxed);
    if v >= min as u8 {
        return true;
    }
    // EFFECTIVE starts at Off before the first env read; make sure the
    // env has been consulted once before concluding "disabled".
    if CONFIGURED.load(Ordering::Relaxed) == LEVEL_UNSET {
        configured();
        return EFFECTIVE.load(Ordering::Relaxed) >= min as u8;
    }
    false
}

// ---------------------------------------------------------------------------
// Per-thread session state
// ---------------------------------------------------------------------------

struct ThreadObs {
    /// Nesting count of live sessions on this thread (0 = inactive).
    active: u32,
    /// Logical thread id in the trace: 0 = session thread, ≥1 = worker.
    tid: u32,
    /// Current span nesting depth.
    depth: u32,
    /// Session epoch all timestamps are relative to.
    epoch: Option<Instant>,
    events: Vec<SpanEvent>,
}

thread_local! {
    static TLS: RefCell<ThreadObs> = const {
        RefCell::new(ThreadObs {
            active: 0,
            tid: 0,
            depth: 0,
            epoch: None,
            events: Vec::new(),
        })
    };
}

pub(crate) fn session_collect<T>(f: impl FnOnce() -> T) -> (T, Trace) {
    let fresh = TLS.with(|t| {
        let mut t = t.borrow_mut();
        if t.active > 0 {
            // Nested collect piggybacks on the outer session: its spans
            // land in the outer trace and it returns an empty one.
            t.active += 1;
            false
        } else {
            t.active = 1;
            t.tid = 0;
            t.depth = 0;
            t.epoch = Some(Instant::now());
            t.events.clear();
            SESSIONS.fetch_add(1, Ordering::Relaxed);
            recompute_effective(configured());
            true
        }
    });
    let out = f();
    let trace = TLS.with(|t| {
        let mut t = t.borrow_mut();
        t.active -= 1;
        if fresh {
            t.epoch = None;
            SESSIONS.fetch_sub(1, Ordering::Relaxed);
            recompute_effective(configured());
            Trace {
                events: std::mem::take(&mut t.events),
            }
        } else {
            Trace::default()
        }
    });
    (out, trace)
}

// ---------------------------------------------------------------------------
// Spans
// ---------------------------------------------------------------------------

struct OpenSpan {
    name: &'static str,
    t_open: Instant,
    start_ns: u64,
    depth: u32,
    tid: u32,
    attrs: Vec<(&'static str, AttrValue)>,
}

/// RAII guard for an open span; records a [`SpanEvent`] on drop.
///
/// A disabled span (level too low, or no live session on this thread)
/// is a no-op `None` and costs one atomic load to construct.
#[must_use = "a span measures the scope it is bound to; binding it to _ drops it immediately"]
pub struct Span(Option<OpenSpan>);

impl Span {
    /// A span that records nothing.
    pub fn disabled() -> Span {
        Span(None)
    }

    /// True when this span will record an event on drop.
    #[inline]
    pub fn is_recording(&self) -> bool {
        self.0.is_some()
    }

    /// Attach an attribute after opening (e.g. a count known at close).
    pub fn attr(&mut self, key: &'static str, value: impl Into<AttrValue>) {
        if let Some(s) = self.0.as_mut() {
            s.attrs.push((key, value.into()));
        }
    }

    /// Nanoseconds since the span opened (0 when disabled).
    pub fn elapsed_ns(&self) -> u64 {
        self.0
            .as_ref()
            .map(|s| s.t_open.elapsed().as_nanos() as u64)
            .unwrap_or(0)
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(s) = self.0.take() {
            let dur_ns = s.t_open.elapsed().as_nanos() as u64;
            TLS.with(|t| {
                let mut t = t.borrow_mut();
                t.depth = s.depth;
                t.events.push(SpanEvent {
                    name: s.name,
                    start_ns: s.start_ns,
                    dur_ns,
                    depth: s.depth,
                    tid: s.tid,
                    attrs: s.attrs,
                });
            });
        }
    }
}

/// Open a span if `min` is met and a session is live on this thread.
///
/// Prefer the [`span!`] / [`timing_span!`] macros; this is their
/// runtime entry point.
pub fn open_span(min: ObsLevel, name: &'static str, attrs: &[(&'static str, AttrValue)]) -> Span {
    if !effective_at_least(min) {
        return Span(None);
    }
    TLS.with(|t| {
        let mut t = t.borrow_mut();
        if t.active == 0 {
            return Span(None);
        }
        let epoch = t.epoch.expect("active session has an epoch");
        let now = Instant::now();
        let open = OpenSpan {
            name,
            t_open: now,
            start_ns: now.saturating_duration_since(epoch).as_nanos() as u64,
            depth: t.depth,
            tid: t.tid,
            attrs: attrs.to_vec(),
        };
        t.depth += 1;
        Span(Some(open))
    })
}

/// Open a fine-grained span (recorded at `ObsLevel::Spans`).
///
/// `span!("krylov.point", shift = s, point = i)` — attribute values are
/// anything `Into<AttrValue>` (unsigned/signed ints, floats, `&'static
/// str`, bool).
#[macro_export]
macro_rules! span {
    ($name:expr $(, $key:ident = $val:expr)* $(,)?) => {
        $crate::open_span(
            $crate::ObsLevel::Spans,
            $name,
            &[$((stringify!($key), $crate::AttrValue::from($val))),*],
        )
    };
}

/// Open a coarse stage span (recorded at `ObsLevel::Timings`, which any
/// live [`Trace::collect`] session implies).
#[macro_export]
macro_rules! timing_span {
    ($name:expr $(, $key:ident = $val:expr)* $(,)?) => {
        $crate::open_span(
            $crate::ObsLevel::Timings,
            $name,
            &[$((stringify!($key), $crate::AttrValue::from($val))),*],
        )
    };
}

// ---------------------------------------------------------------------------
// Worker fork/adopt protocol (used by core::par)
// ---------------------------------------------------------------------------

/// Capture of the calling thread's session, to hand to spawned workers.
///
/// `Copy` so a scoped-thread closure can capture it by value. When the
/// capturing thread had no live session (or observability is off) the
/// context is inert and [`with_worker`] adds zero overhead.
#[derive(Debug, Clone, Copy)]
pub struct ForkCtx(Option<ForkInner>);

#[derive(Debug, Clone, Copy)]
struct ForkInner {
    epoch: Instant,
    base_depth: u32,
}

/// Capture the current session for worker threads about to be spawned.
pub fn fork() -> ForkCtx {
    if !effective_at_least(ObsLevel::Timings) {
        return ForkCtx(None);
    }
    TLS.with(|t| {
        let t = t.borrow();
        if t.active == 0 {
            ForkCtx(None)
        } else {
            ForkCtx(Some(ForkInner {
                epoch: t.epoch.expect("active session has an epoch"),
                base_depth: t.depth,
            }))
        }
    })
}

/// Run `f` on a (fresh) worker thread under the forked session.
///
/// Returns `f`'s result plus the span events the worker recorded; the
/// parent must pass those to [`adopt`] **in spawn order** at join time —
/// that fixed merge order is what keeps traces deterministic regardless
/// of how the work was actually interleaved. `worker` becomes the
/// events' logical tid (use `index + 1`; 0 is the session thread).
pub fn with_worker<T>(ctx: ForkCtx, worker: u32, f: impl FnOnce() -> T) -> (T, Vec<SpanEvent>) {
    let Some(inner) = ctx.0 else {
        return (f(), Vec::new());
    };
    TLS.with(|t| {
        let mut t = t.borrow_mut();
        t.active = 1;
        t.tid = worker;
        t.depth = inner.base_depth;
        t.epoch = Some(inner.epoch);
        t.events.clear();
    });
    let out = f();
    let events = TLS.with(|t| {
        let mut t = t.borrow_mut();
        t.active = 0;
        t.epoch = None;
        std::mem::take(&mut t.events)
    });
    (out, events)
}

/// Merge worker events (from [`with_worker`]) into this thread's live
/// session. Call once per worker, in spawn order.
pub fn adopt(mut events: Vec<SpanEvent>) {
    if events.is_empty() {
        return;
    }
    TLS.with(|t| {
        let mut t = t.borrow_mut();
        if t.active > 0 {
            t.events.append(&mut events);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    // set_level is process-global; serialize the tests that touch it.
    static LEVEL_LOCK: Mutex<()> = Mutex::new(());

    fn locked() -> std::sync::MutexGuard<'static, ()> {
        LEVEL_LOCK.lock().unwrap_or_else(|p| p.into_inner())
    }

    #[test]
    fn parse_levels() {
        assert_eq!(ObsLevel::parse("off"), Some(ObsLevel::Off));
        assert_eq!(ObsLevel::parse("OFF"), Some(ObsLevel::Off));
        assert_eq!(ObsLevel::parse("0"), Some(ObsLevel::Off));
        assert_eq!(ObsLevel::parse(""), Some(ObsLevel::Off));
        assert_eq!(ObsLevel::parse("timings"), Some(ObsLevel::Timings));
        assert_eq!(ObsLevel::parse("Timing"), Some(ObsLevel::Timings));
        assert_eq!(ObsLevel::parse(" spans "), Some(ObsLevel::Spans));
        assert_eq!(ObsLevel::parse("2"), Some(ObsLevel::Spans));
        assert_eq!(ObsLevel::parse("verbose"), None);
        assert!(ObsLevel::Spans > ObsLevel::Timings);
    }

    #[test]
    fn spans_need_a_session() {
        let _g = locked();
        set_level(ObsLevel::Spans);
        // No session: the span is inert even at the highest level.
        let s = span!("orphan", k = 1u64);
        assert!(!s.is_recording());
        drop(s);
        set_level(ObsLevel::Off);
    }

    #[test]
    fn session_forces_timings_but_not_spans() {
        let _g = locked();
        set_level(ObsLevel::Off);
        let ((), trace) = Trace::collect(|| {
            let stage = timing_span!("stage.x");
            assert!(stage.is_recording());
            let fine = span!("fine.x");
            assert!(!fine.is_recording());
        });
        assert_eq!(trace.count("stage.x"), 1);
        assert_eq!(trace.count("fine.x"), 0);
        set_level(ObsLevel::Off);
    }

    #[test]
    fn nesting_depth_and_attrs() {
        let _g = locked();
        set_level(ObsLevel::Spans);
        let ((), trace) = Trace::collect(|| {
            let _a = span!("outer", tag = "o");
            {
                let mut b = span!("inner", idx = 3u64);
                b.attr("late", 2.5f64);
            }
            let _c = span!("sibling");
        });
        set_level(ObsLevel::Off);
        assert_eq!(trace.events.len(), 3);
        let inner = trace.events.iter().find(|e| e.name == "inner").unwrap();
        assert_eq!(inner.depth, 1);
        assert_eq!(inner.attrs.len(), 2);
        assert_eq!(inner.attrs[1], ("late", AttrValue::F64(2.5)));
        let sibling = trace.events.iter().find(|e| e.name == "sibling").unwrap();
        assert_eq!(sibling.depth, 1);
        let outer = trace.events.iter().find(|e| e.name == "outer").unwrap();
        assert_eq!(outer.depth, 0);
        assert!(outer.dur_ns >= inner.dur_ns);
    }

    #[test]
    fn nested_collect_piggybacks() {
        let _g = locked();
        set_level(ObsLevel::Spans);
        let ((), outer) = Trace::collect(|| {
            let _a = span!("a");
            let ((), inner) = Trace::collect(|| {
                let _b = span!("b");
            });
            assert!(inner.is_empty());
        });
        set_level(ObsLevel::Off);
        assert_eq!(outer.count("a"), 1);
        assert_eq!(outer.count("b"), 1);
    }

    #[test]
    fn fork_and_adopt_merge_in_call_order() {
        let _g = locked();
        set_level(ObsLevel::Spans);
        let ((), trace) = Trace::collect(|| {
            let _p = span!("parent");
            let ctx = fork();
            let mut buffers = Vec::new();
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..3u32)
                    .map(|w| {
                        scope.spawn(move || {
                            with_worker(ctx, w + 1, || {
                                let _s = span!("work", worker = w);
                            })
                            .1
                        })
                    })
                    .collect();
                for h in handles {
                    buffers.push(h.join().unwrap());
                }
            });
            for events in buffers {
                adopt(events);
            }
        });
        set_level(ObsLevel::Off);
        let tids: Vec<u32> = trace
            .events
            .iter()
            .filter(|e| e.name == "work")
            .map(|e| e.tid)
            .collect();
        // Adopted in spawn order, regardless of completion order.
        assert_eq!(tids, vec![1, 2, 3]);
        // Worker spans nest under the parent span that was open at fork.
        assert!(trace
            .events
            .iter()
            .filter(|e| e.name == "work")
            .all(|e| e.depth == 1));
    }

    #[test]
    fn inert_fork_costs_nothing() {
        let _g = locked();
        set_level(ObsLevel::Off);
        let ctx = fork(); // no session either
        let (v, events) = with_worker(ctx, 1, || 42);
        assert_eq!(v, 42);
        assert!(events.is_empty());
    }
}
